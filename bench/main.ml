(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§6).

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe table2     -- grouping statistics
     dune exec bench/main.exe table3     -- execution times, Xeon model
     dune exec bench/main.exe table4     -- execution times, Opteron model
     dune exec bench/main.exe table5     -- cache fractions, Unsharp tiles
     dune exec bench/main.exe figure7    -- scaling over PolyMageDP seq
     dune exec bench/main.exe ablation   -- model ablations (ours)
     dune exec bench/main.exe bechamel   -- Bechamel micro-benchmarks

   Environment: PMDP_SCALE (default 8) divides the paper's image
   extents; PMDP_REPS (default 2) repetitions per measurement.  The
   16-core timings are reconstructed from measured per-tile durations
   under OpenMP-static scheduling (DESIGN.md, substitutions); the
   model decisions themselves use the paper's exact machine
   descriptors and Table 1 weights. *)

module Machine = Pmdp_machine.Machine
module Pipeline = Pmdp_dsl.Pipeline
module Cost_model = Pmdp_core.Cost_model
module Scheduler = Pmdp_core.Scheduler
module Schedule_spec = Pmdp_core.Schedule_spec
module Dp_grouping = Pmdp_core.Dp_grouping
module Inc_grouping = Pmdp_core.Inc_grouping
module Tiled_exec = Pmdp_exec.Tiled_exec
module Pool = Pmdp_runtime.Pool
module Registry = Pmdp_apps.Registry
module Table = Pmdp_report.Table
module Sim = Pmdp_bench.Sim
module Runner = Pmdp_bench.Runner

let scale = try int_of_string (Sys.getenv "PMDP_SCALE") with _ -> 8
let reps = try int_of_string (Sys.getenv "PMDP_REPS") with _ -> 2
let cores = 16 (* the paper evaluates on 16 cores *)

(* ------------------------------------------------------------------ *)
(* Measurement (shared with `pmdp bench`, see Pmdp_bench)              *)

let measure_schedule sched inputs : Sim.measurement =
  Sim.measure_schedule ~reps ~cores sched inputs

let via sch config p = lazy (Scheduler.schedule (Scheduler.for_pipeline sch p) config p)
let dp_schedule config p = Lazy.force (via Scheduler.Dp config p)

let configs machine p =
  let config = Cost_model.default_config machine in
  [
    ("H-manual", via Scheduler.Manual config p);
    ("H-auto", via Scheduler.Halide config p);
    ("PolyMage-A", via Scheduler.Autotune config p);
    ("PolyMageDP", via Scheduler.Dp config p);
  ]

type app_result = { app : Registry.app; times : (string * Sim.measurement) list }

let measure_app machine (app : Registry.app) =
  let p = app.Registry.build ~scale in
  let inputs = app.Registry.inputs ~seed:1 p in
  let times =
    List.map
      (fun (name, sched) -> (name, measure_schedule (Lazy.force sched) inputs))
      (configs machine p)
  in
  { app; times }

(* ------------------------------------------------------------------ *)
(* Table 1: cost-function weights                                      *)

let table1 () =
  let t = Table.create [ "System"; "w1"; "w2"; "w3"; "w4"; "IMTS"; "L1"; "L2"; "cores" ] in
  let row (m : Machine.t) =
    Table.add_row t
      [
        m.Machine.name;
        string_of_float m.Machine.w1;
        string_of_float m.Machine.w2;
        string_of_float m.Machine.w3;
        string_of_float m.Machine.w4;
        string_of_int m.Machine.innermost_tile_size;
        string_of_int (m.Machine.l1_bytes / 1024) ^ "K";
        string_of_int (m.Machine.l2_bytes / 1024) ^ "K";
        string_of_int m.Machine.cores;
      ]
  in
  row Machine.xeon;
  row Machine.opteron;
  Table.print ~title:"Table 1: weights and machine parameters" t

(* ------------------------------------------------------------------ *)
(* Table 2: grouping statistics                                        *)

let table2 () =
  let config = Cost_model.default_config Machine.xeon in
  let t =
    Table.create
      [ "Benchmark"; "Stages"; "max|succ|"; "enum l=inf"; "l=32"; "l=16"; "l=8";
        "t(inf)s"; "t(32)s"; "t(16)s"; "t(8)s" ]
  in
  List.iter
    (fun (app : Registry.app) ->
      let p = app.Registry.build ~scale in
      let n = Pipeline.n_stages p in
      (* Unbounded DP only where tractable; '-' marks an intractable
         unbounded run (the paper's '-' is the mirror case: bounded
         runs that were not needed). *)
      let inf_enum, inf_time, max_succ =
        let o = Dp_grouping.run ~state_budget:2_000_000 ~config p in
        ( string_of_int o.Dp_grouping.enumerated
          ^ (if o.Dp_grouping.complete then "" else "+"),
          Printf.sprintf "%.2f" o.Dp_grouping.elapsed,
          string_of_int o.Dp_grouping.max_succ )
      in
      let bounded l =
        if n <= 12 then ("-", "-")
        else begin
          let inc = Inc_grouping.run ~initial_limit:l ~final_unbounded:false ~config p in
          ( string_of_int inc.Inc_grouping.total_enumerated,
            Printf.sprintf "%.2f" inc.Inc_grouping.total_elapsed )
        end
      in
      let e32, t32 = bounded 32 in
      let e16, t16 = bounded 16 in
      let e8, t8 = bounded 8 in
      Table.add_row t
        [ app.Registry.name; string_of_int n; max_succ; inf_enum; e32; e16; e8;
          inf_time; t32; t16; t8 ])
    Registry.benchmarks;
  Table.print
    ~title:
      (Printf.sprintf "Table 2: fusion choices enumerated and grouping time (scale 1/%d)" scale)
    t

(* ------------------------------------------------------------------ *)
(* Tables 3 and 4: execution times                                     *)

let exec_table machine title =
  let t =
    Table.create
      [ "Benchmark"; "H-man 1"; "H-man 16"; "H-auto 1"; "H-auto 16"; "PM-A 1"; "PM-A 16";
        "PMDP 1"; "PMDP 16"; "vs H-man"; "vs H-auto"; "vs PM-A" ]
  in
  let results = List.map (measure_app machine) Registry.benchmarks in
  List.iter
    (fun r ->
      let get name = List.assoc name r.times in
      let hm = get "H-manual" in
      let ha = get "H-auto" in
      let pa = get "PolyMage-A" in
      let dp = get "PolyMageDP" in
      let ms v = Table.fms (v *. 1000.0) in
      Table.add_row t
        [
          r.app.Registry.name;
          ms hm.Sim.t1; ms hm.Sim.t16; ms ha.Sim.t1; ms ha.Sim.t16; ms pa.Sim.t1; ms pa.Sim.t16; ms dp.Sim.t1; ms dp.Sim.t16;
          Table.fx (hm.Sim.t16 /. dp.Sim.t16);
          Table.fx (ha.Sim.t16 /. dp.Sim.t16);
          Table.fx (pa.Sim.t16 /. dp.Sim.t16);
        ])
    results;
  Table.print ~title t;
  results

let table3 () =
  ignore
    (exec_table Machine.xeon
       (Printf.sprintf
          "Table 3: execution times (ms) on the Xeon model, 1 and 16 cores (scale 1/%d, %d reps)"
          scale reps))

let table4 () =
  ignore
    (exec_table Machine.opteron
       (Printf.sprintf
          "Table 4: execution times (ms) on the Opteron model, 1 and 16 cores (scale 1/%d, %d reps)"
          scale reps))

(* ------------------------------------------------------------------ *)
(* Figure 7: scaling normalized to PolyMageDP sequential               *)

let figure7 () =
  let results = exec_table Machine.xeon "Figure 7 base data: execution times on the Xeon model" in
  let t = Table.create [ "Benchmark"; "Config"; "speedup @1"; "speedup @16" ] in
  List.iter
    (fun r ->
      let base = (List.assoc "PolyMageDP" r.times).Sim.t1 in
      List.iter
        (fun (name, m) ->
          Table.add_row t
            [
              r.app.Registry.name; name;
              Printf.sprintf "%.2f" (base /. m.Sim.t1);
              Printf.sprintf "%.2f" (base /. m.Sim.t16);
            ])
        r.times)
    results;
  Table.print ~title:"Figure 7: speedup over PolyMageDP sequential (Xeon model)" t;
  (* Full scaling curve of the PolyMageDP schedules, from the same
     measured per-tile durations under static scheduling. *)
  let t2 =
    Table.create [ "Benchmark"; "@1"; "@2"; "@4"; "@8"; "@16"; "tiles" ]
  in
  let config = Cost_model.default_config Machine.xeon in
  List.iter
    (fun (app : Registry.app) ->
      let p = app.Registry.build ~scale in
      let inputs = app.Registry.inputs ~seed:1 p in
      let sched = dp_schedule config p in
      let plan = Tiled_exec.plan sched in
      let _, timings = Tiled_exec.run_timed plan ~inputs in
      let total w =
        List.fold_left
          (fun acc (g : Tiled_exec.group_timing) ->
            acc
            +. Pool.simulate_makespan ~sched:Pool.Static ~workers:w g.Tiled_exec.tile_durations)
          0.0 timings
      in
      let base = total 1 in
      Table.add_row t2
        (app.Registry.name
        :: List.map (fun w -> Printf.sprintf "%.2f" (base /. total w)) [ 1; 2; 4; 8; 16 ]
        @ [ string_of_int (Tiled_exec.total_tiles plan) ]))
    Registry.benchmarks;
  Table.print ~title:"Figure 7 (extended): PolyMageDP scaling, 1..16 simulated cores" t2

(* ------------------------------------------------------------------ *)
(* Table 5: cache behaviour of Unsharp Mask tile sizes                 *)

let table5 () =
  let machine = Machine.xeon in
  let p = Pmdp_apps.Unsharp.build ~scale () in
  let inputs = Pmdp_apps.Unsharp.inputs p in
  let stages = List.init (Pipeline.n_stages p) Fun.id in
  let t = Table.create [ "Tile size"; "L1 HIT %"; "L2 HIT %"; "L2 MISS %"; "Runtime (ms)" ] in
  List.iter
    (fun (tx, ty) ->
      let sched = Schedule_spec.with_tiles p [ (stages, [| 3; tx; ty |]) ] in
      let h = Pmdp_cachesim.Hierarchy.create machine in
      Pmdp_cachesim.Trace_exec.run ~max_tiles:64 sched ~hierarchy:h;
      let f = Pmdp_cachesim.Hierarchy.fractions h in
      let m = measure_schedule sched inputs in
      Table.add_row t
        [
          Printf.sprintf "%dx%d" tx ty;
          Printf.sprintf "%.2f" (100.0 *. f.Pmdp_cachesim.Hierarchy.l1_hit);
          Printf.sprintf "%.2f" (100.0 *. f.Pmdp_cachesim.Hierarchy.l2_hit);
          Printf.sprintf "%.2f" (100.0 *. f.Pmdp_cachesim.Hierarchy.l2_miss);
          Table.fms (m.Sim.t1 *. 1000.0);
        ])
    [ (128, 256); (16, 256); (8, 416); (5, 256) ];
  Table.print
    ~title:
      (Printf.sprintf
         "Table 5: simulated cache fractions for Unsharp Mask tiles (Xeon hierarchy, scale 1/%d)"
         scale)
    t;
  (* What does the model itself pick? *)
  let config = Cost_model.default_config machine in
  let v = Cost_model.cost config p stages in
  Format.printf "model's own choice for the fused group: %a@." Cost_model.pp_verdict v

(* ------------------------------------------------------------------ *)
(* Ablations (ours): model variants the paper motivates                *)

let ablation () =
  let machine = Machine.xeon in
  let t = Table.create [ "Variant"; "UM groups"; "UM t16(ms)"; "HC groups"; "HC t16(ms)" ] in
  let variants =
    [
      ("default", Cost_model.default_config machine);
      ( "literal w2 (paper's printed form)",
        { (Cost_model.default_config machine) with Cost_model.w2_mode = Cost_model.Literal } );
      ( "actual tile count for w2",
        { (Cost_model.default_config machine) with Cost_model.paper_n_tiles = false } );
      ("IMTS 128", Cost_model.default_config { machine with Machine.innermost_tile_size = 128 });
      ( "fuse reductions",
        { (Cost_model.default_config machine) with Cost_model.fuse_reductions = true } );
    ]
  in
  let apps = [ Registry.find_exn "unsharp"; Registry.find_exn "harris" ] in
  List.iter
    (fun (name, config) ->
      let cells =
        List.concat_map
          (fun (app : Registry.app) ->
            let p = app.Registry.build ~scale in
            let inputs = app.Registry.inputs ~seed:1 p in
            let sched = fst (Schedule_spec.dp config p) in
            let m = measure_schedule sched inputs in
            [ string_of_int (Schedule_spec.n_groups sched); Table.fms (m.Sim.t16 *. 1000.0) ])
          apps
      in
      Table.add_row t (name :: cells))
    variants;
  Table.print ~title:"Ablation: cost-model variants (DP grouping, Xeon model)" t;
  (* Inlining (the paper's §6.2 explanation for H-manual's camera-pipe
     advantage): scheduling the camera pipeline after inlining its
     cheap wrapper stages. *)
  let t2 = Table.create [ "Camera pipeline variant"; "stages"; "groups"; "t1(ms)"; "t16(ms)" ] in
  let config = Cost_model.default_config machine in
  let app = Registry.find_exn "camera_pipe" in
  List.iter
    (fun (name, transform) ->
      let p = transform (app.Registry.build ~scale) in
      let inputs = app.Registry.inputs ~seed:1 p in
      let sched = dp_schedule config p in
      let m = measure_schedule sched inputs in
      Table.add_row t2
        [
          name;
          string_of_int (Pipeline.n_stages p);
          string_of_int (Schedule_spec.n_groups sched);
          Table.fms (m.Sim.t1 *. 1000.0);
          Table.fms (m.Sim.t16 *. 1000.0);
        ])
    [
      ("as written (32 stages)", Fun.id);
      ("inline_all (cheap wrappers folded)", Pmdp_dsl.Inline.inline_all ~max_cost:3);
    ];
  Table.print ~title:"Ablation: stage inlining on Camera Pipeline (paper 6.2)" t2

(* ------------------------------------------------------------------ *)
(* Cross-pollination (paper §6.2): the paper isolates grouping from
   tile sizes by transplanting PolyMageDP's grouping (and then also
   its tile sizes) into H-manual, taking Harris from 33.0 to 12.6 to
   8.8 ms.  We run the full 2x2 matrix {grouping} x {tile sizes} for
   the manual schedule and the DP model.                               *)

let cross_pollination () =
  let machine = Machine.xeon in
  let config = Cost_model.default_config machine in
  let t =
    Table.create [ "Benchmark"; "Grouping"; "Tile sizes"; "t1 (ms)"; "t16 (ms)" ]
  in
  List.iter
    (fun name ->
      let app = Registry.find_exn name in
      let p = app.Registry.build ~scale in
      let inputs = app.Registry.inputs ~seed:1 p in
      let manual = Pmdp_baselines.Manual.schedule p in
      let dp = fst (Schedule_spec.dp config p) in
      let groups_of (s : Schedule_spec.t) =
        List.map (fun (g : Schedule_spec.group) -> g.Schedule_spec.stages) s.Schedule_spec.groups
      in
      (* a grouping with the tile sizes the model would pick for it *)
      let with_model_tiles grouping = Schedule_spec.of_grouping config p grouping in
      (* a grouping with the manual schedule's uniform tile shape *)
      let manual_tile_shape =
        match manual.Schedule_spec.groups with
        | g :: _ -> g.Schedule_spec.tile_sizes
        | [] -> [| 32; 256 |]
      in
      let with_manual_tiles grouping =
        Schedule_spec.with_tiles p (List.map (fun g -> (g, manual_tile_shape)) grouping)
      in
      List.iter
        (fun (glabel, grouping) ->
          List.iter
            (fun (tlabel, make) ->
              let sched = make grouping in
              let m = measure_schedule sched inputs in
              Table.add_row t
                [ name; glabel; tlabel; Table.fms (m.Sim.t1 *. 1000.0); Table.fms (m.Sim.t16 *. 1000.0) ])
            [ ("manual", with_manual_tiles); ("model", with_model_tiles) ])
        [ ("manual", groups_of manual); ("PolyMageDP", groups_of dp) ])
    [ "harris"; "unsharp" ];
  Table.print
    ~title:
      (Printf.sprintf
         "Cross-pollination (paper 6.2): grouping x tile-size transplants (scale 1/%d)" scale)
    t

(* ------------------------------------------------------------------ *)
(* Tile sweep: how close is the model's analytic tile choice to the
   measured optimum?  (The question behind the paper's Table 5.)      *)

let tile_sweep () =
  let machine = Machine.xeon in
  let p = Pmdp_apps.Unsharp.build ~scale () in
  let inputs = Pmdp_apps.Unsharp.inputs p in
  let stages = List.init (Pipeline.n_stages p) Fun.id in
  let t = Table.create [ "Tile (x)"; "Tile (y)"; "t1 (ms)"; "t16 (ms)" ] in
  let best = ref (infinity, (0, 0)) in
  let xs = [ 4; 5; 8; 16; 32; 64; 128 ] and ys = [ 64; 128; 256; 416 ] in
  List.iter
    (fun tx ->
      List.iter
        (fun ty ->
          let sched = Schedule_spec.with_tiles p [ (stages, [| 3; tx; ty |]) ] in
          let m = measure_schedule sched inputs in
          if m.Sim.t16 < fst !best then best := (m.Sim.t16, (tx, ty));
          Table.add_row t
            [ string_of_int tx; string_of_int ty; Table.fms (m.Sim.t1 *. 1000.0);
              Table.fms (m.Sim.t16 *. 1000.0) ])
        ys)
    xs;
  Table.print
    ~title:
      (Printf.sprintf "Tile sweep: Unsharp Mask fused group, %d tile shapes (scale 1/%d)"
         (List.length xs * List.length ys) scale)
    t;
  let config = Cost_model.default_config machine in
  let v = Cost_model.cost config p stages in
  let _, (bx, by) = !best in
  Format.printf "measured best: %dx%d; model's analytic choice: %a@." bx by
    Cost_model.pp_verdict v

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)

let bechamel () =
  let open Bechamel in
  let um = Registry.find_exn "unsharp" in
  let p = um.Registry.build ~scale:(scale * 2) in
  let inputs = um.Registry.inputs ~seed:1 p in
  let config = Cost_model.default_config Machine.xeon in
  let sched = fst (Schedule_spec.dp config p) in
  let plan = Tiled_exec.plan sched in
  let tests =
    [
      Test.make ~name:"table2.dp_grouping_harris"
        (Staged.stage (fun () ->
             ignore (Dp_grouping.run ~config (Pmdp_apps.Harris.build ~scale:32 ()))));
      Test.make ~name:"table3.unsharp_dp_execution"
        (Staged.stage (fun () -> ignore (Tiled_exec.run plan ~inputs)));
      Test.make ~name:"table4.opteron_model_cost"
        (Staged.stage (fun () ->
             ignore
               (Cost_model.cost
                  (Cost_model.default_config Machine.opteron)
                  p
                  (List.init (Pipeline.n_stages p) Fun.id))));
      Test.make ~name:"table5.cachesim_unsharp_tile"
        (Staged.stage (fun () ->
             let h = Pmdp_cachesim.Hierarchy.create Machine.xeon in
             Pmdp_cachesim.Trace_exec.run ~max_tiles:4 sched ~hierarchy:h));
      Test.make ~name:"figure7.makespan_simulation"
        (Staged.stage (fun () ->
             let durations = Array.init 4096 (fun i -> float_of_int (i mod 97) *. 1e-6) in
             ignore (Pool.simulate_makespan ~workers:16 durations)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        instance results
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-42s %14.1f ns/run\n%!" name est
        | _ -> Printf.printf "  %-42s (no estimate)\n%!" name)
      results
  in
  print_endline "Bechamel micro-benchmarks (one per table/figure):";
  List.iter benchmark tests

(* ------------------------------------------------------------------ *)

let () =
  Pmdp_baselines.Schedulers.install ();
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let t0 = Unix.gettimeofday () in
  (match which with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "table3" -> table3 ()
  | "table4" -> table4 ()
  | "table5" -> table5 ()
  | "figure7" -> figure7 ()
  | "ablation" -> ablation ()
  | "tilesweep" -> tile_sweep ()
  | "crosspollination" -> cross_pollination ()
  | "bechamel" -> bechamel ()
  | "all" ->
      table1 ();
      table2 ();
      table3 ();
      table4 ();
      table5 ();
      figure7 ();
      ablation ();
      tile_sweep ();
      cross_pollination ()
  | other ->
      Printf.eprintf "unknown target %S\n" other;
      exit 2);
  Printf.printf "\n[bench completed in %.1fs]\n" (Unix.gettimeofday () -. t0)

module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage
module Group_analysis = Pmdp_analysis.Group_analysis
module Footprint = Pmdp_analysis.Footprint
module Schedule_spec = Pmdp_core.Schedule_spec
module Pool = Pmdp_runtime.Pool
module Fault = Pmdp_runtime.Fault
module Profile = Pmdp_report.Profile
module Pmdp_error = Pmdp_util.Pmdp_error
module Trace = Pmdp_trace.Trace

type slot = In_group of int | External of string

type member_plan = {
  sid : int;
  stage : Stage.t;
  liveout : bool;
  direct : bool;
      (* live-out whose region is always exactly the tile box: writes
         go straight to the full buffer *)
  max_scratch : int;  (* arena size covering any tile's region *)
  slots : slot array;
  compiled : Compile.compiled;
}

type group_plan = {
  ga : Group_analysis.t;
  tile : int array;
  tiles_per_dim : int array;
  n_tiles : int;
  members : member_plan array;
}

type plan = {
  pipeline : Pipeline.t;
  groups : group_plan array;
  liveouts : string list;
  ir : Pmdp_plan.t;
}

let member_scratch_extents = Pmdp_plan.member_scratch_extents

(* Instantiation: IR -> closures.  All the analysis already happened in
   Pmdp_plan.of_spec (or the IR came from disk); what remains is
   compiling member bodies, resolving load slots, and re-deriving the
   executor-safety quantities (tiles_per_dim, direct, max_scratch) from
   the reconstructed analysis rather than trusting the IR's claims —
   the static checker reports IR/formula disagreements, but the
   executor must stay sound even on an unchecked plan. *)
let instantiate p (ir : Pmdp_plan.t) =
  if ir.Pmdp_plan.pipeline <> p.Pipeline.name || ir.Pmdp_plan.n_stages <> Pipeline.n_stages p
  then
    Pmdp_error.raise_
      (Pmdp_error.Plan_invalid
         {
           context = "Tiled_exec.instantiate";
           reason =
             Printf.sprintf "plan is for pipeline %s with %d stages, not %s with %d stages"
               ir.Pmdp_plan.pipeline ir.Pmdp_plan.n_stages p.Pipeline.name (Pipeline.n_stages p);
         });
  let groups =
    Array.map
      (fun (g : Pmdp_plan.group) ->
        let ga = Pmdp_plan.group_analysis p g in
        let tile = g.Pmdp_plan.tile in
        let tiles_per_dim =
          Array.init ga.Group_analysis.n_dims (fun d ->
              let extent = Group_analysis.dim_extent ga d in
              (extent + tile.(d) - 1) / tile.(d))
        in
        let n_tiles = Array.fold_left ( * ) 1 tiles_per_dim in
        let in_group name =
          Array.fold_left
            (fun acc (m, sid) ->
              match acc with
              | Some _ -> acc
              | None ->
                  if (Pipeline.stage p sid).Stage.name = name then Some m else None)
            None
            (Array.mapi (fun m sid -> (m, sid)) ga.Group_analysis.members)
        in
        let members =
          Array.mapi
            (fun m sid ->
              let stage = Pipeline.stage p sid in
              let names, compiled = Compile.compile_stage stage in
              let slots =
                Array.map
                  (fun name ->
                    match in_group name with
                    | Some m -> In_group m
                    | None -> External name)
                  names
              in
              let liveout = ga.Group_analysis.liveouts.(m) in
              let own_nd = Stage.ndims stage in
              let direct = ref liveout in
              for k = 0 to own_nd - 1 do
                let g = ga.Group_analysis.dim_of_stage.(m).(k) in
                let s = ga.Group_analysis.scales.(m).(g) in
                let elo, ehi = ga.Group_analysis.expansions.(m).(g) in
                if
                  (elo, ehi) <> (0, 0) || s <> 1
                  || ga.Group_analysis.scaled_lo.(m).(g) <> ga.Group_analysis.dim_lo.(g)
                  || ga.Group_analysis.scaled_hi.(m).(g) <> ga.Group_analysis.dim_hi.(g)
                then direct := false
              done;
              let max_scratch =
                Array.fold_left ( * ) 1 (member_scratch_extents ga ~member:m ~tile)
              in
              for g = 0 to ga.Group_analysis.n_dims - 1 do
                if ga.Group_analysis.expansions.(m).(g) <> (0, 0) then direct := false
              done;
              {
                sid;
                stage;
                liveout;
                direct = !direct;
                max_scratch = (if !direct then 0 else max_scratch);
                slots;
                compiled;
              })
            ga.Group_analysis.members
        in
        { ga; tile; tiles_per_dim; n_tiles; members })
      ir.Pmdp_plan.groups
  in
  let liveouts =
    List.concat_map
      (fun gp ->
        List.filter_map
          (fun (mp : member_plan) -> if mp.liveout then Some mp.stage.Stage.name else None)
          (Array.to_list gp.members))
      (Array.to_list groups)
  in
  { pipeline = p; groups; liveouts; ir }

let instantiate_result p ir =
  match instantiate p ir with
  | plan -> Ok plan
  | exception Pmdp_error.Error e -> Error e

let plan (spec : Schedule_spec.t) =
  instantiate spec.Schedule_spec.pipeline (Pmdp_plan.of_spec spec)

let plan_result spec =
  match plan spec with
  | p -> Ok p
  | exception Pmdp_error.Error e -> Error e
  | exception Invalid_argument reason ->
      Error (Pmdp_error.Plan_invalid { context = "Schedule_spec.validate"; reason })

let ir plan = plan.ir

let liveout_stages plan = plan.liveouts
let pipeline plan = plan.pipeline
let total_tiles plan = Array.fold_left (fun acc g -> acc + g.n_tiles) 0 plan.groups

let ceil_div a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)
let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

(* A per-worker scratch arena: one reusable buffer per non-direct
   member, sized for the largest possible tile region. *)
let make_arena gp =
  Array.map
    (fun (mp : member_plan) ->
      if mp.direct then [||] else Array.make mp.max_scratch 0.0)
    gp.members

(* Execute one tile of one group.  [externals] maps each member to its
   pre-resolved external views (lazily shared across tiles); [arena]
   is this worker's reusable scratch store; [copy_out], when
   profiling, accumulates the bytes live-outs copy from scratch back
   to their full buffers. *)
let run_tile ?fault ?cancel ?copy_out gp (buffers : (string, Buffer.t) Hashtbl.t) externals arena
    tile_index =
  (match cancel with
  | Some tk when Fault.is_cancelled tk ->
      Pmdp_error.raise_
        (Pmdp_error.Cancelled { reason = "Tiled_exec: cooperative cancellation before tile" })
  | _ -> ());
  (match fault with Some f -> Fault.tile_tick f | None -> ());
  let ga = gp.ga in
  let nd = ga.Group_analysis.n_dims in
  (* Decompose the linear tile index, row-major over tiles_per_dim. *)
  let tlo = Array.make nd 0 and thi = Array.make nd 0 in
  let rem = ref tile_index in
  for d = nd - 1 downto 0 do
    let tc = !rem mod gp.tiles_per_dim.(d) in
    rem := !rem / gp.tiles_per_dim.(d);
    tlo.(d) <- ga.Group_analysis.dim_lo.(d) + (tc * gp.tile.(d));
    thi.(d) <- min (tlo.(d) + gp.tile.(d) - 1) ga.Group_analysis.dim_hi.(d)
  done;
  let n_members = Array.length gp.members in
  let views : Compile.view option array = Array.make n_members None in
  for mi = 0 to n_members - 1 do
    let mp = gp.members.(mi) in
    let stage = mp.stage in
    let own_nd = Stage.ndims stage in
    (* Region of this member in its own coordinates: the tile box
       expanded by the member's overlap expansion, clamped into the
       member's domain but kept nonempty so boundary clamping matches
       the reference executor. *)
    let own_lo = Array.make own_nd 0 and own_hi = Array.make own_nd 0 in
    for k = 0 to own_nd - 1 do
      let g = ga.Group_analysis.dim_of_stage.(mi).(k) in
      let s = ga.Group_analysis.scales.(mi).(g) in
      let elo, ehi = ga.Group_analysis.expansions.(mi).(g) in
      let dim = stage.Stage.dims.(k) in
      let dlo = dim.Stage.lo and dhi = dim.Stage.lo + dim.Stage.extent - 1 in
      let clamp x = if x < dlo then dlo else if x > dhi then dhi else x in
      own_lo.(k) <- clamp (floor_div (tlo.(g) - elo) s);
      own_hi.(k) <- clamp (ceil_div (thi.(g) + ehi) s)
    done;
    let env =
      Array.map
        (function
          | In_group m -> (
              match views.(m) with
              | Some v -> v
              | None ->
                  Pmdp_error.raise_
                    (Pmdp_error.Plan_invalid
                       {
                         context = "Tiled_exec.run_tile";
                         reason = "producer region missing (member ordering invariant broken)";
                       }))
          | External name -> List.assoc name externals.(mi))
        mp.slots
    in
    let exts = Array.init own_nd (fun k -> own_hi.(k) - own_lo.(k) + 1) in
    let stride = Array.make own_nd 1 in
    for k = own_nd - 2 downto 0 do
      stride.(k) <- stride.(k + 1) * exts.(k + 1)
    done;
    let direct = mp.direct in
    let dest_data, dest_stride, dest_base =
      if direct then begin
        let buf = Hashtbl.find buffers stage.Stage.name in
        let base = ref 0 in
        Array.iteri
          (fun k (d : Stage.dim) -> base := !base - (d.Stage.lo * buf.Buffer.stride.(k)))
          buf.Buffer.dims;
        (buf.Buffer.data, buf.Buffer.stride, !base)
      end
      else begin
        let data = arena.(mi) in
        assert (Array.fold_left ( * ) 1 exts <= Array.length data);
        let base = ref 0 in
        for k = 0 to own_nd - 1 do
          base := !base - (own_lo.(k) * stride.(k))
        done;
        (data, stride, !base)
      end
    in
    (* Compute the region. *)
    let vars = Array.make (Stage.n_iter_vars stage) 0 in
    (match stage.Stage.def with
    | Stage.Pointwise _ ->
        let rec go k off =
          if k = own_nd then dest_data.(off) <- mp.compiled env vars
          else
            for x = own_lo.(k) to own_hi.(k) do
              vars.(k) <- x;
              go (k + 1) (off + (x * dest_stride.(k)))
            done
        in
        go 0 dest_base
    | Stage.Reduction { op; init; rdom; _ } ->
        let nr = Array.length rdom in
        let fold =
          match op with
          | Stage.Rsum -> ( +. )
          | Stage.Rmax -> Float.max
          | Stage.Rmin -> Float.min
        in
        let rec red r acc =
          if r = nr then fold acc (mp.compiled env vars)
          else begin
            let lo, ext = rdom.(r) in
            let acc = ref acc in
            for x = lo to lo + ext - 1 do
              vars.(own_nd + r) <- x;
              acc := red (r + 1) !acc
            done;
            !acc
          end
        in
        let rec go k off =
          if k = own_nd then dest_data.(off) <- red 0 init
          else
            for x = own_lo.(k) to own_hi.(k) do
              vars.(k) <- x;
              go (k + 1) (off + (x * dest_stride.(k)))
            done
        in
        go 0 dest_base);
    views.(mi) <-
      Some
        {
          Compile.data = dest_data;
          lo = own_lo;
          hi = own_hi;
          stride = dest_stride;
          base = dest_base;
        };
    (* Live-outs computed in scratch copy their exact tile box out. *)
    if mp.liveout && not direct then begin
      let buf = Hashtbl.find buffers stage.Stage.name in
      (* Intersection of the member's own points with this tile: the
         only points this tile legitimately owns.  May be empty. *)
      let exact_lo = Array.make own_nd 0 and exact_hi = Array.make own_nd 0 in
      let empty = ref false in
      for k = 0 to own_nd - 1 do
        let g = ga.Group_analysis.dim_of_stage.(mi).(k) in
        let s = ga.Group_analysis.scales.(mi).(g) in
        let dim = stage.Stage.dims.(k) in
        let dlo = dim.Stage.lo and dhi = dim.Stage.lo + dim.Stage.extent - 1 in
        exact_lo.(k) <- max dlo (ceil_div tlo.(g) s);
        exact_hi.(k) <- min dhi (floor_div thi.(g) s);
        if exact_hi.(k) < exact_lo.(k) then empty := true
      done;
      if not !empty then begin
      (if copy_out <> None || Trace.on () then begin
         let points = ref 1 in
         for k = 0 to own_nd - 1 do
           points := !points * (exact_hi.(k) - exact_lo.(k) + 1)
         done;
         (match copy_out with
         | Some acc -> ignore (Atomic.fetch_and_add acc (!points * 8))
         | None -> ());
         if Trace.on () then Trace.count "copy_out_bytes" (!points * 8)
       end);
      let idx = Array.copy exact_lo in
      let rec copy k src_off =
        if k = own_nd then begin
          let dst = ref 0 in
          for d = 0 to own_nd - 1 do
            dst := !dst + ((idx.(d) - buf.Buffer.dims.(d).Stage.lo) * buf.Buffer.stride.(d))
          done;
          buf.Buffer.data.(!dst) <- dest_data.(src_off)
        end
        else
          for x = exact_lo.(k) to exact_hi.(k) do
            idx.(k) <- x;
            copy (k + 1) (src_off + (x * dest_stride.(k)))
          done
      in
      copy 0 dest_base
      end
    end
  done

let prepare plan ~inputs =
  let buffers : (string, Buffer.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (name, b) -> Hashtbl.replace buffers name b) inputs;
  Array.iter
    (fun gp ->
      Array.iter
        (fun (mp : member_plan) ->
          if mp.liveout then Hashtbl.replace buffers mp.stage.Stage.name (Buffer.of_stage mp.stage))
        gp.members)
    plan.groups;
  buffers

(* External views must be resolved per group, after earlier groups
   have allocated their live-out buffers. *)
let externals_for gp buffers =
  Array.map
    (fun (mp : member_plan) ->
      Array.to_list
        (Array.map
           (fun slot ->
             match slot with
             | In_group _ -> ("", Compile.view_of_buffer (Buffer.create "unused" [| { Stage.dim_name = "d"; lo = 0; extent = 1 } |]))
             | External name -> (
                 match Hashtbl.find_opt buffers name with
                 | Some b -> (name, Compile.view_of_buffer b)
                 | None ->
                     Pmdp_error.raise_
                       (Pmdp_error.Unresolved_external
                          { name; context = "Tiled_exec: stage " ^ mp.stage.Stage.name })))
           mp.slots))
    gp.members

let collect_results plan buffers =
  List.map (fun name -> (name, Hashtbl.find buffers name)) plan.liveouts

let arena_bytes gp =
  Array.fold_left
    (fun acc (mp : member_plan) -> if mp.direct then acc else acc + (mp.max_scratch * 8))
    0 gp.members

(* Pre-flight resource-guard inputs: the scratch a single worker's
   arena costs in the worst group, and the bytes of full (live-out)
   buffers the plan must keep resident. *)
let scratch_bytes_per_worker plan =
  Array.fold_left (fun acc gp -> max acc (arena_bytes gp)) 0 plan.groups

let working_set_bytes plan =
  Array.fold_left
    (fun acc gp ->
      Array.fold_left
        (fun acc (mp : member_plan) ->
          if mp.liveout then acc + (Stage.domain_points mp.stage * 8) else acc)
        acc gp.members)
    0 plan.groups

(* Tile-space coordinates of a linear tile index, for trace span
   arguments: "2,5" means third tile along dim 0, sixth along dim 1. *)
let tile_coords gp tile_index =
  let nd = Array.length gp.tiles_per_dim in
  let parts = Array.make nd "" in
  let rem = ref tile_index in
  for d = nd - 1 downto 0 do
    parts.(d) <- string_of_int (!rem mod gp.tiles_per_dim.(d));
    rem := !rem / gp.tiles_per_dim.(d)
  done;
  String.concat "," (Array.to_list parts)

let run_group ?pool ?sched ?profile ?fault ?cancel ~index gp buffers =
  let externals = externals_for gp buffers in
  let copy_out =
    match (profile, Trace.on ()) with
    | Some _, _ | _, true -> Some (Atomic.make 0)
    | None, false -> None
  in
  let arenas = Atomic.make 0 in
  let make_arena_checked () =
    (match fault with Some f -> Fault.alloc_tick f | None -> ());
    Atomic.incr arenas;
    if Trace.on () then Trace.count "scratch_bytes" (arena_bytes gp);
    make_arena gp
  in
  let exec_tile arena t = run_tile ?fault ?cancel ?copy_out gp buffers externals arena t in
  let exec_tile arena t =
    if not (Trace.on ()) then exec_tile arena t
    else begin
      Trace.count "tiles" 1;
      Trace.with_span ~cat:"exec"
        ~args:
          [
            ("group", Trace.Int index);
            ("tile", Trace.Int t);
            ("at", Trace.Str (tile_coords gp t));
          ]
        "tile"
        (fun () -> exec_tile arena t)
    end
  in
  let ts_group = if Trace.on () then Trace.now () else Float.nan in
  let t0 = Unix.gettimeofday () in
  let occupancy =
    match pool with
    | Some pool when gp.n_tiles > 1 ->
        Pool.parallel_for_init ?sched pool ~n:gp.n_tiles ~init:make_arena_checked exec_tile;
        Pool.last_occupancy pool
    | _ ->
        let arena = make_arena_checked () in
        for t = 0 to gp.n_tiles - 1 do
          exec_tile arena t
        done;
        1
  in
  if Trace.on () && not (Float.is_nan ts_group) then
    Trace.complete ~cat:"exec"
      ~args:
        [
          ("group", Trace.Int index);
          ("stages",
           Trace.Str
             (String.concat ","
                (Array.to_list
                   (Array.map (fun (mp : member_plan) -> mp.stage.Stage.name) gp.members))));
          ("tiles", Trace.Int gp.n_tiles);
          ("occupancy", Trace.Int occupancy);
          ("scratch_bytes", Trace.Int (Atomic.get arenas * arena_bytes gp));
          ("copy_out_bytes",
           Trace.Int (match copy_out with Some a -> Atomic.get a | None -> 0));
        ]
      ~name:"group" ~ts:ts_group ();
  (* A tile sleeping through a watchdog deadline returns normally; the
     group boundary is the last place to refuse to report success for
     work that was cancelled mid-flight. *)
  (match cancel with
  | Some tk when Fault.is_cancelled tk ->
      Pmdp_error.raise_
        (Pmdp_error.Cancelled { reason = "Tiled_exec: cooperative cancellation after group" })
  | _ -> ());
  match profile with
  | None -> ()
  | Some c ->
      Profile.add_group c
        {
          Profile.index;
          stages =
            Array.to_list
              (Array.map (fun (mp : member_plan) -> mp.stage.Stage.name) gp.members);
          tiles = gp.n_tiles;
          occupancy;
          scratch_bytes = Atomic.get arenas * arena_bytes gp;
          copy_out_bytes = (match copy_out with Some a -> Atomic.get a | None -> 0);
          wall_seconds = Unix.gettimeofday () -. t0;
        }

let run ?pool ?sched ?profile ?fault ?cancel ?(reuse_buffers = false) plan ~inputs =
  Reference.check_inputs plan.pipeline inputs;
  if not reuse_buffers then begin
    let buffers = prepare plan ~inputs in
    Array.iteri
      (fun gi gp -> run_group ?pool ?sched ?profile ?fault ?cancel ~index:gi gp buffers)
      plan.groups;
    collect_results plan buffers
  end
  else begin
    (* Storage optimization: live-out buffers past their last consumer
       group are recycled (capacity-keyed first fit).  Only pipeline
       outputs survive to the result list. *)
    let p = plan.pipeline in
    let buffers : (string, Buffer.t) Hashtbl.t = Hashtbl.create 64 in
    List.iter (fun (name, b) -> Hashtbl.replace buffers name b) inputs;
    let group_of_stage = Array.make (Pipeline.n_stages p) 0 in
    Array.iteri
      (fun gi gp ->
        Array.iter (fun (mp : member_plan) -> group_of_stage.(mp.sid) <- gi) gp.members)
      plan.groups;
    let dies sid =
      if Pipeline.is_output p sid then max_int
      else
        List.fold_left
          (fun acc c -> max acc group_of_stage.(c))
          group_of_stage.(sid) (Pipeline.consumers p sid)
    in
    let free : Buffer.t list ref = ref [] in
    let rec remove_first x = function
      | [] -> []
      | y :: rest -> if y == x then rest else y :: remove_first x rest
    in
    let alloc (stage : Stage.t) =
      let needed = Stage.domain_points stage in
      (* pipeline outputs keep exact-size fresh buffers (they are
         returned to the caller and never recycled anyway) *)
      if Pipeline.is_output p (Pipeline.stage_id p stage.Stage.name) then Buffer.of_stage stage
      else begin
        let fits =
          List.filter (fun (b : Buffer.t) -> Array.length b.Buffer.data >= needed) !free
        in
        match
          List.sort
            (fun (a : Buffer.t) b -> compare (Array.length a.Buffer.data) (Array.length b.Buffer.data))
            fits
        with
        | b :: _ ->
            free := remove_first b !free;
            Buffer.with_data stage.Stage.name stage.Stage.dims b.Buffer.data
        | [] -> Buffer.of_stage stage
      end
    in
    Array.iteri
      (fun gi gp ->
        Array.iter
          (fun (mp : member_plan) ->
            if mp.liveout then Hashtbl.replace buffers mp.stage.Stage.name (alloc mp.stage))
          gp.members;
        run_group ?pool ?sched ?profile ?fault ?cancel ~index:gi gp buffers;
        (* release buffers whose last consumer group just ran *)
        Array.iteri
          (fun gj gp' ->
            if gj <= gi then
              Array.iter
                (fun (mp : member_plan) ->
                  if mp.liveout && dies mp.sid = gi then
                    match Hashtbl.find_opt buffers mp.stage.Stage.name with
                    | Some b ->
                        free := b :: !free;
                        Hashtbl.remove buffers mp.stage.Stage.name
                    | None -> ())
                gp'.members)
          plan.groups)
      plan.groups;
    List.filter_map
      (fun sid ->
        let name = (Pipeline.stage p sid).Stage.name in
        Option.map (fun b -> (name, b)) (Hashtbl.find_opt buffers name))
      p.Pipeline.outputs
  end

type group_timing = { group_stages : string list; tile_durations : float array }

let run_timed plan ~inputs =
  Reference.check_inputs plan.pipeline inputs;
  let buffers = prepare plan ~inputs in
  let timings =
    Array.map
      (fun gp ->
        let externals = externals_for gp buffers in
        let arena = make_arena gp in
        let durations = Array.make gp.n_tiles 0.0 in
        for t = 0 to gp.n_tiles - 1 do
          let t0 = Unix.gettimeofday () in
          run_tile gp buffers externals arena t;
          durations.(t) <- Unix.gettimeofday () -. t0
        done;
        {
          group_stages =
            Array.to_list (Array.map (fun (mp : member_plan) -> mp.stage.Stage.name) gp.members);
          tile_durations = durations;
        })
      plan.groups
  in
  (collect_results plan buffers, Array.to_list timings)

let pp ppf plan =
  Format.fprintf ppf "@[<v>plan for %s: %d groups, %d tiles@," plan.pipeline.Pipeline.name
    (Array.length plan.groups) (total_tiles plan);
  Array.iteri
    (fun i gp ->
      Format.fprintf ppf "  group %d: {%s} tile=[%s] tiles=%d@," i
        (String.concat ","
           (Array.to_list (Array.map (fun (mp : member_plan) -> mp.stage.Stage.name) gp.members)))
        (String.concat "x" (Array.to_list (Array.map string_of_int gp.tile)))
        gp.n_tiles)
    plan.groups;
  Format.fprintf ppf "@]"

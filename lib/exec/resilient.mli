(** Resilient execution driver: typed errors, pre-flight resource
    guards, and a tiled-parallel → tiled-serial → reference fallback
    chain.

    {!Tiled_exec.run} trusts its plan; this driver does not.  It
    plans via {!Tiled_exec.plan_result}, checks the plan's memory
    demand against a budget before allocating, and then walks a chain
    of execution strategies until one completes:

    + [native] — the compiled-kernel backend, when one has been
      installed via {!set_native_runner} (a missing toolchain, failed
      compile, or rejected kernel degrades to the next step);
    + [tiled-parallel] — the pool-backed tiled executor (only when a
      pool is supplied and the parallel scratch fits the budget);
    + [tiled-serial] — the tiled executor with the pool bypassed (one
      scratch arena instead of one per worker);
    + [reference] — the unfused reference executor, the correctness
      backstop that needs no plan at all.

    Every step is recorded in the {!Pmdp_report.Profile} collector
    (and in the returned {!outcome}); a run that needed any fallback
    is flagged [degraded] but still returns [Ok].  Only when every
    strategy fails — or the working set alone exceeds the budget — is
    the last typed error returned.

    A watchdog ([timeout]) arms a cooperative-cancellation token per
    attempt: tiles observe it at tile granularity, the attempt fails
    with a typed [Timeout], and the chain continues.  Fault injection
    ([fault], {!Pmdp_runtime.Fault}) is threaded through tile bodies,
    arena allocation, and — for worker kills — the pool's job hook;
    random injection positions are resolved against the plan's total
    tile count, so a seed fully determines the fault. *)

type step = Plan_step | Native | Tiled_parallel | Tiled_serial | Reference_fallback

val step_name : step -> string
(** "plan", "native", "tiled-parallel", "tiled-serial", "reference". *)

type native_runner =
  plan:Tiled_exec.plan ->
  workers:int ->
  inputs:(string * Buffer.t) list ->
  (string * Buffer.t) list
(** A compiled-kernel executor: run [plan] natively with [workers]
    OpenMP threads and return the live-out buffers.  Raises (typically
    a typed [Kernel_unavailable]) to make the chain fall through to
    the interpreter. *)

val set_native_runner : native_runner option -> unit
(** Install (or clear) the process-wide native backend — called by
    [Pmdp_kernel.Native_exec.install].  A hook rather than a library
    dependency, because the kernel backend layers {e above} this
    library; when none is installed the native step is skipped without
    being recorded, so interpreter-only runs are not flagged
    degraded. *)

type outcome = {
  results : (string * Buffer.t) list;
      (** live-out buffers of the strategy that completed (the
          reference fallback returns every stage, a superset) *)
  degraded : bool;  (** some step failed or was skipped over budget *)
  attempts : (step * Pmdp_util.Pmdp_error.t option) list;
      (** chain record in order: [None] = step succeeded *)
}

val run :
  ?pool:Pmdp_runtime.Pool.t ->
  ?sched:Pmdp_runtime.Pool.sched ->
  ?profile:Pmdp_report.Profile.collector ->
  ?machine:Pmdp_machine.Machine.t ->
  ?mem_budget:int ->
  ?fault:Pmdp_runtime.Fault.t ->
  ?timeout:float ->
  Pmdp_core.Schedule_spec.t ->
  inputs:(string * Buffer.t) list ->
  (outcome, Pmdp_util.Pmdp_error.t) result
(** [mem_budget] defaults to
    [Machine.default_mem_budget machine] ([machine] defaults to
    {!Pmdp_machine.Machine.xeon}).  [timeout] is per attempt, in
    seconds.  Uncategorized exceptions from an attempt are folded
    into typed [Worker_crash] errors; nothing escapes except through
    the [Error] return. *)

val run_plan :
  ?pool:Pmdp_runtime.Pool.t ->
  ?sched:Pmdp_runtime.Pool.sched ->
  ?profile:Pmdp_report.Profile.collector ->
  ?machine:Pmdp_machine.Machine.t ->
  ?mem_budget:int ->
  ?fault:Pmdp_runtime.Fault.t ->
  ?timeout:float ->
  Tiled_exec.plan ->
  inputs:(string * Buffer.t) list ->
  (outcome, Pmdp_util.Pmdp_error.t) result
(** {!run} for a plan the caller already lowered (the plan step is
    recorded as succeeded).  Lets repeated executions of one schedule
    — e.g. benchmark repetitions ({!Pmdp_bench.Runner}) — share the
    plan while still getting the budget guards, the fallback chain,
    and the step record. *)

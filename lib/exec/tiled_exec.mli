(** Overlapped-tiling executor.

    Executes a {!Pmdp_core.Schedule_spec.t}: groups run in order;
    within a group, the fused tile-space loop runs every member stage
    over its overlap-expanded region (paper Fig. 2/3).  Non-live-out
    members compute into per-tile scratch buffers (the producer-
    consumer locality the fusion model optimizes for); live-outs
    write to full buffers.  Tiles of a group are independent — the
    overlap recomputation breaks inter-tile dependences — so they can
    run in parallel.

    Results are bitwise-equal to {!Reference.run} for the live-out
    stages. *)

type plan

val member_scratch_extents :
  Pmdp_analysis.Group_analysis.t -> member:int -> tile:int array -> int array
(** Per own-dimension extents of the reusable arena slot allocated for
    a member's per-tile region (the executor sizes its scratch arena
    by their product).  Delegates to
    {!Pmdp_plan.member_scratch_extents} — the one sizing formula the
    executor, the IR, and the static bounds checker
    ({!Pmdp_verify}) share. *)

val instantiate : Pmdp_dsl.Pipeline.t -> Pmdp_plan.t -> plan
(** The cheap half of lowering: turn a serializable plan IR into an
    executable plan by compiling member bodies and resolving load
    slots.  Executor-safety quantities (tile counts, scratch sizes,
    direct flags) are re-derived from the reconstructed analysis, not
    trusted from the IR.
    @raise Pmdp_util.Pmdp_error.Error ([Plan_invalid]) when the IR does
    not fit the pipeline (wrong pipeline name or stage count, stale
    stage names or extents, inconsistent tables). *)

val instantiate_result :
  Pmdp_dsl.Pipeline.t -> Pmdp_plan.t -> (plan, Pmdp_util.Pmdp_error.t) result

val plan : Pmdp_core.Schedule_spec.t -> plan
(** Lower a schedule end to end: {!Pmdp_plan.of_spec} (analyze each
    group, fit tile sizes) followed by {!instantiate} (compile member
    bodies, resolve load slots).
    @raise Pmdp_util.Pmdp_error.Error ([Plan_invalid] for failed
    validation or group analysis, [Arity_mismatch] for a wrong-length
    tile-size vector).  Schedules from the in-tree schedulers never
    fail. *)

val plan_result : Pmdp_core.Schedule_spec.t -> (plan, Pmdp_util.Pmdp_error.t) result
(** {!plan} as a [result]: every raising boundary — including
    [Schedule_spec.validate]'s [Invalid_argument] — is converted to a
    typed {!Pmdp_util.Pmdp_error.t}. *)

val ir : plan -> Pmdp_plan.t
(** The serializable IR this plan was instantiated from. *)

val scratch_bytes_per_worker : plan -> int
(** Bytes of per-worker scratch arena in the plan's most
    scratch-hungry group (each pool worker allocates this much at
    most, one group at a time). *)

val working_set_bytes : plan -> int
(** Bytes of full (live-out) buffers the plan allocates over a run,
    ignoring recycling — the resident-set input to the pre-flight
    resource guard of {!Resilient}. *)

val liveout_stages : plan -> string list
(** Names of stages materialized into full buffers (group live-outs,
    including all pipeline outputs). *)

val pipeline : plan -> Pmdp_dsl.Pipeline.t
(** The pipeline the plan lowers — what the reference fallback of
    {!Resilient.run_plan} executes when the plan itself cannot. *)

val run :
  ?pool:Pmdp_runtime.Pool.t ->
  ?sched:Pmdp_runtime.Pool.sched ->
  ?profile:Pmdp_report.Profile.collector ->
  ?fault:Pmdp_runtime.Fault.t ->
  ?cancel:Pmdp_runtime.Fault.token ->
  ?reuse_buffers:bool ->
  plan ->
  inputs:(string * Buffer.t) list ->
  (string * Buffer.t) list
(** Execute; returns the live-out buffers by stage name.  With
    [pool], each group's tiles are distributed over the pool's
    persistent workers, claimed under [sched] (default chunked
    dynamic, see {!Pmdp_runtime.Pool.parallel_for}).  With [profile],
    one {!Pmdp_report.Profile.group} record per group is appended to
    the collector: tiles executed, worker occupancy, scratch and
    copy-out bytes, and wall-clock.  With [fault], the injection
    points fire: {!Pmdp_runtime.Fault.tile_tick} at each tile,
    {!Pmdp_runtime.Fault.alloc_tick} at each arena allocation.  With
    [cancel], every tile first checks the token and raises a typed
    [Cancelled] error once it is set (the cooperative-cancellation
    path a watchdog uses).  With [reuse_buffers] (default false),
    full buffers past their last consumer group are recycled — the
    paper's §6.2 "storage optimizations" — and only the pipeline's
    declared outputs are returned (see {!Storage} for the
    analysis/report). *)

type group_timing = {
  group_stages : string list;
  tile_durations : float array;  (** measured sequentially, seconds *)
}

val run_timed :
  plan -> inputs:(string * Buffer.t) list -> (string * Buffer.t) list * group_timing list
(** Execute sequentially, recording per-tile wall-clock durations per
    group — the input to {!Pmdp_runtime.Pool.simulate_makespan} for
    simulated multicore timings. *)

val total_tiles : plan -> int
val pp : Format.formatter -> plan -> unit

module Expr = Pmdp_dsl.Expr
module Stage = Pmdp_dsl.Stage
module Rational = Pmdp_util.Rational

type view = {
  data : float array;
  lo : int array;
  hi : int array;
  stride : int array;
  base : int;
}

let view_of_buffer (b : Buffer.t) =
  let n = Array.length b.Buffer.dims in
  let lo = Array.map (fun d -> d.Stage.lo) b.Buffer.dims in
  let hi = Array.map (fun d -> d.Stage.lo + d.Stage.extent - 1) b.Buffer.dims in
  let base = ref 0 in
  for d = 0 to n - 1 do
    base := !base - (lo.(d) * b.Buffer.stride.(d))
  done;
  { data = b.Buffer.data; lo; hi; stride = b.Buffer.stride; base = !base }

let clamp v d x =
  let x = if x < v.lo.(d) then v.lo.(d) else x in
  if x > v.hi.(d) then v.hi.(d) else x

let read1 v x0 = v.data.(v.base + (clamp v 0 x0 * v.stride.(0)))

let read2 v x0 x1 =
  v.data.(v.base + (clamp v 0 x0 * v.stride.(0)) + (clamp v 1 x1 * v.stride.(1)))

let read3 v x0 x1 x2 =
  v.data.(v.base
          + (clamp v 0 x0 * v.stride.(0))
          + (clamp v 1 x1 * v.stride.(1))
          + (clamp v 2 x2 * v.stride.(2)))

let read v idx =
  let off = ref v.base in
  for d = 0 to Array.length v.stride - 1 do
    off := !off + (clamp v d idx.(d) * v.stride.(d))
  done;
  v.data.(!off)

type compiled = view array -> int array -> float

(* Floor division for possibly negative numerators. *)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let slots e =
  let names = ref [] in
  let record () name _ = if not (List.mem name !names) then names := name :: !names in
  Expr.fold_loads record () e;
  Array.of_list (List.rev !names)

let rec compile ~slot_of (e : Expr.t) : compiled =
  match e with
  | Expr.Const f -> fun _ _ -> f
  | Expr.Var i -> fun _ vars -> float_of_int vars.(i)
  | Expr.Load (name, coords) -> compile_load ~slot_of name coords
  | Expr.Binop (op, a, b) ->
      let ca = compile ~slot_of a and cb = compile ~slot_of b in
      (match op with
      | Expr.Add -> fun env vars -> ca env vars +. cb env vars
      | Expr.Sub -> fun env vars -> ca env vars -. cb env vars
      | Expr.Mul -> fun env vars -> ca env vars *. cb env vars
      | Expr.Div -> fun env vars -> ca env vars /. cb env vars
      | Expr.Min -> fun env vars -> Float.min (ca env vars) (cb env vars)
      | Expr.Max -> fun env vars -> Float.max (ca env vars) (cb env vars)
      | Expr.Mod ->
          fun env vars ->
            float_of_int (int_of_float (ca env vars) mod int_of_float (cb env vars)))
  | Expr.Unop (op, a) ->
      let ca = compile ~slot_of a in
      (match op with
      | Expr.Neg -> fun env vars -> -.ca env vars
      | Expr.Abs -> fun env vars -> Float.abs (ca env vars)
      | Expr.Sqrt -> fun env vars -> Float.sqrt (ca env vars)
      | Expr.Exp -> fun env vars -> Float.exp (ca env vars)
      | Expr.Log -> fun env vars -> Float.log (ca env vars)
      | Expr.Floor -> fun env vars -> Float.of_int (int_of_float (Float.floor (ca env vars)))
      | Expr.Sin -> fun env vars -> Float.sin (ca env vars)
      | Expr.Cos -> fun env vars -> Float.cos (ca env vars))
  | Expr.Select (c, a, b) ->
      let cc = compile_cond ~slot_of c and ca = compile ~slot_of a and cb = compile ~slot_of b in
      fun env vars -> if cc env vars then ca env vars else cb env vars

and compile_cond ~slot_of (c : Expr.cond) : view array -> int array -> bool =
  match c with
  | Expr.Cmp (op, a, b) ->
      let ca = compile ~slot_of a and cb = compile ~slot_of b in
      (match op with
      | Expr.Lt -> fun env vars -> ca env vars < cb env vars
      | Expr.Le -> fun env vars -> ca env vars <= cb env vars
      | Expr.Gt -> fun env vars -> ca env vars > cb env vars
      | Expr.Ge -> fun env vars -> ca env vars >= cb env vars
      | Expr.Eq -> fun env vars -> Float.equal (ca env vars) (cb env vars)
      | Expr.Ne -> fun env vars -> not (Float.equal (ca env vars) (cb env vars)))
  | Expr.And (a, b) ->
      let ca = compile_cond ~slot_of a and cb = compile_cond ~slot_of b in
      fun env vars -> ca env vars && cb env vars
  | Expr.Or (a, b) ->
      let ca = compile_cond ~slot_of a and cb = compile_cond ~slot_of b in
      fun env vars -> ca env vars || cb env vars
  | Expr.Not a ->
      let ca = compile_cond ~slot_of a in
      fun env vars -> not (ca env vars)

and compile_coord ~slot_of (c : Expr.coord) : view array -> int array -> int =
  match c with
  | Expr.Cvar { var; scale; offset }
    when Rational.equal scale Rational.one && Rational.is_integer offset ->
      let k = Rational.to_int_exn offset in
      if k = 0 then fun _ vars -> vars.(var) else fun _ vars -> vars.(var) + k
  | Expr.Cvar { var; scale; offset } ->
      (* floor(scale*v + offset) = fdiv (p*v + q) r *)
      let p = scale.Rational.num * offset.Rational.den in
      let q = offset.Rational.num * scale.Rational.den in
      let r = scale.Rational.den * offset.Rational.den in
      fun _ vars -> fdiv ((p * vars.(var)) + q) r
  | Expr.Cdyn e ->
      let ce = compile ~slot_of e in
      fun env vars -> int_of_float (Float.floor (ce env vars))

and compile_load ~slot_of name coords : compiled =
  let s = slot_of name in
  match coords with
  | [| c0 |] ->
      let f0 = compile_coord ~slot_of c0 in
      fun env vars -> read1 env.(s) (f0 env vars)
  | [| c0; c1 |] ->
      let f0 = compile_coord ~slot_of c0 and f1 = compile_coord ~slot_of c1 in
      fun env vars -> read2 env.(s) (f0 env vars) (f1 env vars)
  | [| c0; c1; c2 |] ->
      let f0 = compile_coord ~slot_of c0
      and f1 = compile_coord ~slot_of c1
      and f2 = compile_coord ~slot_of c2 in
      fun env vars -> read3 env.(s) (f0 env vars) (f1 env vars) (f2 env vars)
  | _ ->
      let fs = Array.map (compile_coord ~slot_of) coords in
      fun env vars -> read env.(s) (Array.map (fun f -> f env vars) fs)

let compile_stage (stage : Stage.t) =
  let body = Stage.body_expr stage in
  let names = slots body in
  let slot_of name =
    let rec go i =
      if i >= Array.length names then
        (* [slots] collects every load target of [body], so this only
           fires on an internal inconsistency — name it instead of
           surfacing an anonymous Not_found from deep in evaluation. *)
        Pmdp_util.Pmdp_error.(
          raise_
            (Unresolved_external
               { name; context = "Compile.compile_stage: stage " ^ stage.Stage.name }))
      else if names.(i) = name then i
      else go (i + 1)
    in
    go 0
  in
  (names, compile ~slot_of body)

(** Compilation of DSL expressions to closures.

    A stage body is compiled once; at execution time it receives an
    environment of {!view}s (one per distinct loaded name, in a slot
    order fixed at compile time) and the current iteration variables.
    Views carry their own bounding box and clamp reads into it —
    giving both the boundary semantics at domain edges and the
    scratch-region semantics inside fused tiles. *)

type view = {
  data : float array;
  lo : int array;  (** box lower corner, in producer coordinates *)
  hi : int array;  (** box upper corner, inclusive *)
  stride : int array;  (** per-dimension stride into [data] *)
  base : int;  (** offset of coordinate origin: addr = base + Σ idx*stride *)
}

val view_of_buffer : Buffer.t -> view
(** Whole-domain view of a full buffer. *)

val read : view -> int array -> float
(** Clamped read (arity must match the view's rank). *)

type compiled = view array -> int array -> float
(** [f env vars]: evaluate at iteration point [vars] (stage dims
    followed by reduction variables). *)

val slots : Pmdp_dsl.Expr.t -> string array
(** Distinct loaded names in first-occurrence order; the compiled
    closure expects views in exactly this order. *)

val compile : slot_of:(string -> int) -> Pmdp_dsl.Expr.t -> compiled
(** Compile with an explicit name-to-slot mapping.
    @raise Not_found from [slot_of] for unknown names. *)

val compile_stage : Pmdp_dsl.Stage.t -> string array * compiled
(** [slots] of the stage body paired with its compiled form; an
    internally inconsistent slot table surfaces as a typed
    [Pmdp_util.Pmdp_error.Error (Unresolved_external _)] naming the
    missing binding and the stage, not an anonymous [Not_found]. *)

module Pool = Pmdp_runtime.Pool
module Fault = Pmdp_runtime.Fault
module Profile = Pmdp_report.Profile
module Machine = Pmdp_machine.Machine
module Pmdp_error = Pmdp_util.Pmdp_error
module Trace = Pmdp_trace.Trace

type step = Plan_step | Native | Tiled_parallel | Tiled_serial | Reference_fallback

let step_name = function
  | Plan_step -> "plan"
  | Native -> "native"
  | Tiled_parallel -> "tiled-parallel"
  | Tiled_serial -> "tiled-serial"
  | Reference_fallback -> "reference"

type native_runner =
  plan:Tiled_exec.plan ->
  workers:int ->
  inputs:(string * Buffer.t) list ->
  (string * Buffer.t) list

(* Installed by [Pmdp_kernel.Native_exec.install]; a hook (rather than
   a direct dependency) because pmdp_kernel sits above pmdp_exec in
   the library graph — same pattern as [Pmdp_baselines.Schedulers.
   install].  When no backend is installed the native step is not
   attempted (and not recorded), so interpreter-only runs stay
   undegraded. *)
let native_hook : native_runner option ref = ref None
let set_native_runner r = native_hook := r

type outcome = {
  results : (string * Buffer.t) list;
  degraded : bool;
  attempts : (step * Pmdp_error.t option) list;
}

(* Fold any exception an attempt lets escape into the taxonomy; an
   unrecognized exception is a crash of whatever was executing. *)
let classify context = function
  | Pmdp_error.Error e -> e
  | Invalid_argument reason -> Pmdp_error.Plan_invalid { context; reason }
  | Not_found ->
      Pmdp_error.Unresolved_external { name = "<unknown>"; context = context ^ ": Not_found" }
  | Fault.Injected detail -> Pmdp_error.Worker_crash { worker = -1; detail }
  | e -> Pmdp_error.Worker_crash { worker = -1; detail = context ^ ": " ^ Printexc.to_string e }

(* Run [f] with a watchdog that flips [cancel] after [timeout]
   seconds.  Tiles observe the token cooperatively, so the cancelled
   attempt unwinds through the normal error path; the Cancelled it
   raises is upgraded to a Timeout here, where the deadline is
   known.  The watchdog is a helper thread and must not record trace
   events itself (per-domain buffers are single-writer); the
   [watchdog.fired] instant is recorded by the caller when it observes
   the expiry. *)
let with_watchdog ?timeout ~cancel context f =
  match timeout with
  | None -> f ()
  | Some limit ->
      let finished = Atomic.make false in
      let fired = Atomic.make false in
      let dog =
        Thread.create
          (fun () ->
            let deadline = Unix.gettimeofday () +. limit in
            while (not (Atomic.get finished)) && Unix.gettimeofday () < deadline do
              Thread.yield ();
              Unix.sleepf 0.002
            done;
            if not (Atomic.get finished) then begin
              Atomic.set fired true;
              Fault.cancel cancel
            end)
          ()
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set finished true;
          Thread.join dog)
        (fun () ->
          try f ()
          with _ when Atomic.get fired ->
            if Trace.on () then
              Trace.instant ~cat:"resilient"
                ~args:[ ("context", Trace.Str context); ("seconds", Trace.Float limit) ]
                "watchdog.fired";
            Pmdp_error.raise_ (Pmdp_error.Timeout { seconds = limit; context }))

(* The fallback chain shared by {!run} (plans itself) and {!run_plan}
   (caller supplies the plan).  [planned] carries the plan or the
   typed error planning produced. *)
let run_chain ?pool ?sched ?profile ?machine ?mem_budget ?fault ?timeout ~planned ~pipeline
    ~inputs () =
  let machine = Option.value machine ~default:Machine.xeon in
  let budget =
    match mem_budget with Some b -> b | None -> Machine.default_mem_budget machine
  in
  let attempts = ref [] in
  let record st err =
    attempts := (st, err) :: !attempts;
    if Trace.on () then
      Trace.instant ~cat:"resilient"
        ~args:
          (("step", Trace.Str (step_name st))
          ::
          (match err with
          | None -> [ ("ok", Trace.Bool true) ]
          | Some e -> [ ("error", Trace.Str (Pmdp_error.to_string e)) ]))
        "resilient.step";
    Option.iter
      (fun c ->
        Profile.add_step c ~name:(step_name st) ~error:(Option.map Pmdp_error.to_string err))
      profile
  in
  let finish results =
    let degraded = List.exists (fun (_, e) -> e <> None) !attempts in
    Option.iter (fun c -> Profile.set_degraded c degraded) profile;
    Ok { results; degraded; attempts = List.rev !attempts }
  in
  let input_bytes =
    List.fold_left (fun acc (_, b) -> acc + (Buffer.size b * 8)) 0 inputs
  in
  (* One strategy of the chain: returns [Some results] to stop,
     [None] to continue down the chain. *)
  let attempt st f =
    let cancel = Fault.new_token () in
    let body () =
      if not (Trace.on ()) then f ~cancel
      else
        Trace.with_span ~cat:"resilient"
          ~args:[ ("step", Trace.Str (step_name st)) ]
          (step_name st)
          (fun () -> f ~cancel)
    in
    match with_watchdog ?timeout ~cancel (step_name st) body with
    | results ->
        record st None;
        Some results
    | exception e ->
        record st (Some (classify (step_name st) e));
        None
  in
  let reference () =
    attempt Reference_fallback (fun ~cancel:_ -> Reference.run pipeline ~inputs)
  in
  match planned with
  | Error e -> (
      (* The schedule cannot be lowered at all; the reference executor
         needs no plan, so degrade straight to it. *)
      record Plan_step (Some e);
      match reference () with Some r -> finish r | None -> Error e)
  | Ok plan -> (
      Option.iter (fun f -> Fault.resolve f ~n:(Tiled_exec.total_tiles plan)) fault;
      record Plan_step None;
      let resident = input_bytes + Tiled_exec.working_set_bytes plan in
      let scratch = Tiled_exec.scratch_bytes_per_worker plan in
      if resident > budget then
        (* Even the serial/reference backstops need the full buffers
           resident: nothing can run under this budget. *)
        Error
          (Pmdp_error.Scratch_over_budget
             {
               required_bytes = resident;
               budget_bytes = budget;
               context = "Resilient: working set (inputs + live-out buffers)";
             })
      else begin
        let over_budget st required =
          if Trace.on () then
            Trace.instant ~cat:"resilient"
              ~args:
                [
                  ("step", Trace.Str (step_name st));
                  ("required_bytes", Trace.Int required);
                  ("budget_bytes", Trace.Int budget);
                ]
              "budget.skip";
          record st
            (Some
               (Pmdp_error.Scratch_over_budget
                  {
                    required_bytes = required;
                    budget_bytes = budget;
                    context = step_name st ^ ": working set + scratch arenas";
                  }))
        in
        let tiled ~use_pool =
          match (use_pool, pool) with
          | true, Some pool ->
              attempt Tiled_parallel (fun ~cancel ->
                  (* Worker-kill injections fire from the pool's job
                     hook, where a raise takes the domain down. *)
                  let hook =
                    Option.map (fun f w -> Fault.job_tick f ~worker:w) fault
                  in
                  Pool.set_job_hook pool hook;
                  Fun.protect
                    ~finally:(fun () -> Pool.set_job_hook pool None)
                    (fun () ->
                      Tiled_exec.run ~pool ?sched ?profile ?fault ~cancel plan ~inputs))
          | _ -> attempt Tiled_serial (fun ~cancel ->
                     Tiled_exec.run ?sched ?profile ?fault ~cancel plan ~inputs)
        in
        let try_parallel () =
          match pool with
          | None -> None
          | Some p ->
              let required = resident + (scratch * Pool.n_workers p) in
              if required > budget then begin
                over_budget Tiled_parallel required;
                None
              end
              else tiled ~use_pool:true
        in
        let try_serial () =
          let required = resident + scratch in
          if required > budget then begin
            over_budget Tiled_serial required;
            None
          end
          else tiled ~use_pool:false
        in
        let try_native () =
          match !native_hook with
          | None -> None
          | Some runner ->
              (* The backend mirrors inputs and live-outs into
                 Bigarray storage, so a native run holds roughly two
                 copies of the working set. *)
              let required = 2 * resident in
              if required > budget then begin
                over_budget Native required;
                None
              end
              else
                let workers =
                  match pool with Some p -> Pool.n_workers p | None -> 1
                in
                attempt Native (fun ~cancel:_ -> runner ~plan ~workers ~inputs)
        in
        match try_native () with
        | Some r -> finish r
        | None -> (
        match try_parallel () with
        | Some r -> finish r
        | None -> (
            match try_serial () with
            | Some r -> finish r
            | None -> (
                match reference () with
                | Some r -> finish r
                | None -> (
                    (* every strategy failed: surface the last error *)
                    match !attempts with
                    | (_, Some e) :: _ -> Error e
                    | _ ->
                        Error
                          (Pmdp_error.Plan_invalid
                             { context = "Resilient"; reason = "no strategy available" })))))
      end)

let run ?pool ?sched ?profile ?machine ?mem_budget ?fault ?timeout spec ~inputs =
  run_chain ?pool ?sched ?profile ?machine ?mem_budget ?fault ?timeout
    ~planned:(Tiled_exec.plan_result spec)
    ~pipeline:spec.Pmdp_core.Schedule_spec.pipeline ~inputs ()

let run_plan ?pool ?sched ?profile ?machine ?mem_budget ?fault ?timeout plan ~inputs =
  run_chain ?pool ?sched ?profile ?machine ?mem_budget ?fault ?timeout ~planned:(Ok plan)
    ~pipeline:(Tiled_exec.pipeline plan) ~inputs ()

(** Dense row-major float buffers for stage domains and inputs. *)

type t = {
  name : string;
  dims : Pmdp_dsl.Stage.dim array;
  stride : int array;  (** row-major strides over extents *)
  data : float array;
}

val create : string -> Pmdp_dsl.Stage.dim array -> t
(** Zero-initialized buffer covering the given domain. *)

val with_data : string -> Pmdp_dsl.Stage.dim array -> float array -> t
(** Wrap existing storage (for buffer recycling); the array must be at
    least as large as the domain.
    @raise Pmdp_util.Pmdp_error.Error ([Plan_invalid]) if not. *)

val of_stage : Pmdp_dsl.Stage.t -> t
val size : t -> int

val get_clamped : t -> int array -> float
(** Read with per-dimension clamping into the domain (the boundary
    semantics of the executors). *)

val set : t -> int array -> float -> unit
(** @raise Invalid_argument if out of the domain. *)

val fill : t -> (int array -> float) -> unit
(** Fill every point from a function of its coordinates. *)

val max_abs_diff : t -> t -> float
(** Largest absolute element difference.
    @raise Invalid_argument on shape mismatch. *)

val checksum : t -> float
(** Order-independent sum of elements (for quick regression checks). *)

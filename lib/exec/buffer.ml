module Stage = Pmdp_dsl.Stage

type t = {
  name : string;
  dims : Stage.dim array;
  stride : int array;
  data : float array;
}

let strides_of dims =
  let n = Array.length dims in
  let stride = Array.make n 1 in
  for d = n - 2 downto 0 do
    stride.(d) <- stride.(d + 1) * dims.(d + 1).Stage.extent
  done;
  stride

let create name dims =
  let size = Array.fold_left (fun acc d -> acc * d.Stage.extent) 1 dims in
  { name; dims; stride = strides_of dims; data = Array.make size 0.0 }

let of_stage (s : Stage.t) = create s.Stage.name s.Stage.dims

let with_data name dims data =
  let size = Array.fold_left (fun acc d -> acc * d.Stage.extent) 1 dims in
  if Array.length data < size then
    Pmdp_util.Pmdp_error.(
      raise_
        (Plan_invalid
           {
             context = "Buffer.with_data: " ^ name;
             reason =
               Printf.sprintf "recycled storage holds %d elements, stage needs %d"
                 (Array.length data) size;
           }));
  { name; dims; stride = strides_of dims; data }
let size t = Array.length t.data

let get_clamped t idx =
  let off = ref 0 in
  for d = 0 to Array.length t.dims - 1 do
    let dim = t.dims.(d) in
    let x = idx.(d) in
    let x = if x < dim.Stage.lo then dim.Stage.lo else x in
    let hi = dim.Stage.lo + dim.Stage.extent - 1 in
    let x = if x > hi then hi else x in
    off := !off + ((x - dim.Stage.lo) * t.stride.(d))
  done;
  t.data.(!off)

let offset_exn t idx =
  let off = ref 0 in
  for d = 0 to Array.length t.dims - 1 do
    let dim = t.dims.(d) in
    let x = idx.(d) in
    if x < dim.Stage.lo || x >= dim.Stage.lo + dim.Stage.extent then
      invalid_arg (Printf.sprintf "Buffer.set: %s index %d out of dim %d" t.name x d);
    off := !off + ((x - dim.Stage.lo) * t.stride.(d))
  done;
  !off

let set t idx v = t.data.(offset_exn t idx) <- v

let fill t f =
  let n = Array.length t.dims in
  let idx = Array.map (fun d -> d.Stage.lo) t.dims in
  let rec go d =
    if d = n then t.data.(offset_exn t idx) <- f idx
    else
      let dim = t.dims.(d) in
      for x = dim.Stage.lo to dim.Stage.lo + dim.Stage.extent - 1 do
        idx.(d) <- x;
        go (d + 1)
      done
  in
  go 0

let max_abs_diff a b =
  if Array.length a.data <> Array.length b.data then
    invalid_arg "Buffer.max_abs_diff: shape mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = Float.abs (x -. b.data.(i)) in
      if d > !worst then worst := d)
    a.data;
  !worst

let checksum t = Array.fold_left ( +. ) 0.0 t.data

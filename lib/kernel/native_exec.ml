module Pipeline = Pmdp_dsl.Pipeline
module C_emit = Pmdp_codegen.C_emit
module Tiled_exec = Pmdp_exec.Tiled_exec
module Buffer = Pmdp_exec.Buffer
module Reference = Pmdp_exec.Reference
module Resilient = Pmdp_exec.Resilient
module Fault = Pmdp_runtime.Fault
module Pmdp_error = Pmdp_util.Pmdp_error
module Rng = Pmdp_util.Rng
module Trace = Pmdp_trace.Trace

external dl_open : string -> nativeint = "pmdp_dl_open"
external dl_sym : nativeint -> string -> nativeint = "pmdp_dl_sym"
external dl_close : nativeint -> unit = "pmdp_dl_close"

external call_kernel :
  nativeint ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t array ->
  int ->
  unit = "pmdp_call_kernel"

let _ = dl_close (* handles live for the process; kept for completeness *)

type kernel = {
  handle : nativeint;
  group_fns : nativeint array;  (* one per plan group, execution order *)
  slots : string list;  (* inputs then live-outs; the bufs vector order *)
  validation : string;  (* "bitwise" | "epsilon" *)
}

type stats = {
  compiles : int;
  compile_failures : int;
  validations : int;
  validation_failures : int;
  disk_hits : int;
  runs : int;
  unavailable : int;
}

type t = {
  toolchain : Toolchain.t option;
  cache : Kernel_cache.t option;
  fault : Fault.t option;
  eps : float;
  march : bool;
  keep_sources : bool;
  table : (string, kernel) Hashtbl.t;
  failed : (string, Pmdp_error.t) Hashtbl.t;
  lock : Mutex.t;
  mutable compiles : int;
  mutable compile_failures : int;
  mutable validations : int;
  mutable validation_failures : int;
  mutable disk_hits : int;
  mutable runs : int;
  mutable unavailable : int;
}

let create ?fault ?cache_dir ?cc ?(eps = 1e-6) ?(march = false) () =
  {
    toolchain = Toolchain.probe ?cc ~march ();
    cache = Option.map (fun dir -> Kernel_cache.create ~dir ()) cache_dir;
    fault;
    eps;
    march;
    keep_sources = Sys.getenv_opt "PMDP_KEEP_KERNEL_SRC" <> None;
    table = Hashtbl.create 16;
    failed = Hashtbl.create 16;
    lock = Mutex.create ();
    compiles = 0;
    compile_failures = 0;
    validations = 0;
    validation_failures = 0;
    disk_hits = 0;
    runs = 0;
    unavailable = 0;
  }

let toolchain t = t.toolchain
let cache_stats t = Option.map Kernel_cache.stats t.cache

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      compiles = t.compiles;
      compile_failures = t.compile_failures;
      validations = t.validations;
      validation_failures = t.validation_failures;
      disk_hits = t.disk_hits;
      runs = t.runs;
      unavailable = t.unavailable;
    }
  in
  Mutex.unlock t.lock;
  s

let bump t f =
  Mutex.lock t.lock;
  f t;
  Mutex.unlock t.lock

(* ---- raw execution -------------------------------------------------- *)

let ba_of_data (data : float array) =
  Bigarray.Array1.of_array Bigarray.float64 Bigarray.c_layout data

(* Run the compiled groups over Bigarray mirrors of the buffers.
   Inputs are copied in, live-outs zero-initialized (every domain
   point is covered by some tile's copy-out, but zeroing keeps the
   failure mode of a short write deterministic), and live-outs copied
   back into fresh interpreter-side buffers afterwards. *)
let exec_kernel kernel plan ~workers ~inputs =
  let p = Tiled_exec.pipeline plan in
  Reference.check_inputs p inputs;
  let outs = ref [] in
  let bufs =
    Array.of_list
      (List.map
         (fun name ->
           match List.assoc_opt name inputs with
           | Some (b : Buffer.t) -> ba_of_data b.Buffer.data
           | None ->
               let b = Buffer.of_stage (Pipeline.stage p (Pipeline.stage_id p name)) in
               let ba = ba_of_data b.Buffer.data in
               outs := (name, b, ba) :: !outs;
               ba)
         kernel.slots)
  in
  Array.iter (fun fn -> call_kernel fn bufs workers) kernel.group_fns;
  List.rev_map
    (fun ((name : string), (b : Buffer.t), ba) ->
      for k = 0 to Array.length b.Buffer.data - 1 do
        b.Buffer.data.(k) <- Bigarray.Array1.unsafe_get ba k
      done;
      (name, b))
    !outs

(* ---- the validation gate -------------------------------------------- *)

let validation_inputs (p : Pipeline.t) =
  Array.to_list
    (Array.map
       (fun (i : Pipeline.input) ->
         let b = Buffer.create i.Pipeline.in_name i.Pipeline.in_dims in
         let rng = Rng.create (Hashtbl.hash i.Pipeline.in_name) in
         for k = 0 to Array.length b.Buffer.data - 1 do
           b.Buffer.data.(k) <- Rng.float rng 1.0
         done;
         (i.Pipeline.in_name, b))
       p.Pipeline.inputs)

let max_abs (b : Buffer.t) = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 b.Buffer.data

(* Admission: the kernel's live-outs on deterministic inputs must be
   bitwise equal to {!Reference.run}, or within [eps] relative when
   libm or rounding drift sneaks in.  Anything worse is rejected. *)
let validate t kernel plan =
  bump t (fun t -> t.validations <- t.validations + 1);
  let p = Tiled_exec.pipeline plan in
  let inputs = validation_inputs p in
  let native = exec_kernel kernel plan ~workers:1 ~inputs in
  let reference = Reference.run p ~inputs in
  let worst_abs = ref 0.0 and worst_rel = ref 0.0 in
  List.iter
    (fun (name, b) ->
      match List.assoc_opt name reference with
      | None -> ()
      | Some r ->
          let d = Buffer.max_abs_diff b r in
          worst_abs := Float.max !worst_abs d;
          worst_rel := Float.max !worst_rel (d /. Float.max 1e-30 (max_abs r)))
    native;
  (* -march=native kernels are never admitted "bitwise", even when a
     particular run happens to match exactly: the label is a promise
     about the compilation mode, not one lucky comparison. *)
  if !worst_abs = 0.0 && not t.march then Ok ("bitwise", 0.0)
  else if !worst_rel <= t.eps then Ok ("epsilon", Float.max !worst_abs 0.0)
  else begin
    bump t (fun t -> t.validation_failures <- t.validation_failures + 1);
    Error
      (Printf.sprintf "validation failed: max |native - reference| = %g (relative %g > %g)"
         !worst_abs !worst_rel t.eps)
  end

(* ---- admission ------------------------------------------------------ *)

let dlopen_kernel ~n_groups ~slots so_path =
  let handle = dl_open so_path in
  let group_fns = Array.init n_groups (fun gi -> dl_sym handle (C_emit.kernel_symbol gi)) in
  { handle; group_fns; slots; validation = "" }

let try_disk t plan ~kd ~n_groups ~slots =
  match t.cache with
  | None -> None
  | Some cache -> (
      match Kernel_cache.load cache ~kernel_digest:kd ~abi:Pmdp_plan.kernel_abi_version with
      | None -> None
      | Some (so_path, _meta) -> (
          match dlopen_kernel ~n_groups ~slots so_path with
          | exception Failure reason ->
              Kernel_cache.quarantine cache ~kernel_digest:kd ~reason;
              None
          | kernel -> (
              (* Checksummed or not, nothing reaches the executor
                 without passing the gate in this process. *)
              match validate t kernel plan with
              | Ok (verdict, _) ->
                  bump t (fun t -> t.disk_hits <- t.disk_hits + 1);
                  Some { kernel with validation = verdict }
              | Error reason ->
                  Kernel_cache.quarantine cache ~kernel_digest:kd ~reason;
                  None)))

let compile_fresh t plan ~kd ~n_groups ~slots =
  match t.toolchain with
  | None -> Error "no working C compiler (tried $PMDP_CC, cc, gcc, clang)"
  | Some tc -> (
      let p = Tiled_exec.pipeline plan in
      let ir = Tiled_exec.ir plan in
      bump t (fun t -> t.compiles <- t.compiles + 1);
      let src = Filename.temp_file ("pmdp_kernel_" ^ kd) ".c" in
      let so = Filename.temp_file ("pmdp_kernel_" ^ kd) ".so" in
      let cleanup () =
        if not t.keep_sources then begin
          (try Sys.remove src with Sys_error _ -> ());
          (try Sys.remove so with Sys_error _ -> ())
        end
      in
      let oc = open_out src in
      output_string oc (C_emit.emit_kernels p ir);
      close_out oc;
      match Toolchain.compile ?fault:t.fault tc ~src ~out:so with
      | Error reason ->
          bump t (fun t -> t.compile_failures <- t.compile_failures + 1);
          cleanup ();
          Error ("compile failed: " ^ reason)
      | exception Fault.Injected reason ->
          bump t (fun t -> t.compile_failures <- t.compile_failures + 1);
          cleanup ();
          Error reason
      | Ok () -> (
          match dlopen_kernel ~n_groups ~slots so with
          | exception Failure reason ->
              cleanup ();
              Error ("dlopen failed: " ^ reason)
          | kernel -> (
              match validate t kernel plan with
              | Error reason ->
                  cleanup ();
                  Error reason
              | Ok (verdict, worst) ->
                  Option.iter
                    (fun cache ->
                      Kernel_cache.store cache ~kernel_digest:kd
                        {
                          Kernel_cache.pipeline = p.Pipeline.name;
                          plan_digest = Pmdp_plan.digest ir;
                          abi = Pmdp_plan.kernel_abi_version;
                          so_md5 = Digest.to_hex (Digest.file so);
                          compiler = tc.Toolchain.version;
                          openmp = tc.Toolchain.openmp;
                          validation = verdict;
                          max_abs_diff = worst;
                        }
                        ~so_src:so)
                    t.cache;
                  cleanup ();
                  Ok { kernel with validation = verdict })))

let acquire t plan =
  let ir = Tiled_exec.ir plan in
  (* March objects get their own cache/memoization key: a plain build
     must never dlopen a vectorized object (or vice versa) from a
     previous process. *)
  let kd =
    let kd = Pmdp_plan.kernel_digest ir in
    if t.march then kd ^ "+march" else kd
  in
  Mutex.lock t.lock;
  let hit = Hashtbl.find_opt t.table kd in
  let dead = Hashtbl.find_opt t.failed kd in
  Mutex.unlock t.lock;
  match (hit, dead) with
  | Some k, _ -> Ok k
  | None, Some e -> Error e
  | None, None -> (
      let p = Tiled_exec.pipeline plan in
      let slots = C_emit.kernel_slots p ir in
      let n_groups = Pmdp_plan.n_groups ir in
      let admit () =
        match try_disk t plan ~kd ~n_groups ~slots with
        | Some kernel -> Ok kernel
        | None -> compile_fresh t plan ~kd ~n_groups ~slots
      in
      match (try admit () with e -> Error (Printexc.to_string e)) with
      | Ok kernel ->
          bump t (fun t -> Hashtbl.replace t.table kd kernel);
          if Trace.on () then
            Trace.instant ~cat:"kernel"
              ~args:
                [
                  ("kernel", Trace.Str kd);
                  ("pipeline", Trace.Str p.Pipeline.name);
                  ("validation", Trace.Str kernel.validation);
                ]
              "kernel.admitted";
          Ok kernel
      | Error reason ->
          let e = Pmdp_error.Kernel_unavailable { reason; context = "Native_exec" } in
          bump t (fun t ->
              Hashtbl.replace t.failed kd e;
              t.unavailable <- t.unavailable + 1);
          if Trace.on () then
            Trace.instant ~cat:"kernel"
              ~args:[ ("kernel", Trace.Str kd); ("reason", Trace.Str reason) ]
              "kernel.unavailable";
          Error e)

let run t plan ~workers ~inputs =
  match acquire t plan with
  | Error e -> Pmdp_error.raise_ e
  | Ok kernel ->
      bump t (fun t -> t.runs <- t.runs + 1);
      let body () = exec_kernel kernel plan ~workers ~inputs in
      if not (Trace.on ()) then body ()
      else begin
        Trace.count "kernel.native.runs" 1;
        Trace.with_span ~cat:"kernel"
          ~args:
            [
              ("pipeline", Trace.Str (Tiled_exec.pipeline plan).Pipeline.name);
              ("workers", Trace.Int workers);
              ("validation", Trace.Str kernel.validation);
            ]
          "kernel.run" body
      end

let install t = Resilient.set_native_runner (Some (fun ~plan ~workers ~inputs -> run t plan ~workers ~inputs))
let uninstall () = Resilient.set_native_runner None

(** Persistent on-disk kernel cache: compiled shared objects, one per
    {!Pmdp_plan.kernel_digest}, so a restarted process answers its
    first hot request without re-invoking the C compiler.

    Each entry is two files, [<kernel_digest>.so] (the artifact) and
    [<kernel_digest>.json] (provenance: pipeline name, plan digest,
    emitter ABI, compiler line, and the validation verdict the kernel
    was admitted under), plus an MD5 of the shared object.  {!load}
    refuses — and quarantines to [.bad], the same convention as
    {!Pmdp_service.Disk_cache} — entries whose checksum, ABI, or
    metadata do not hold up, so a tampered or stale object is
    recompiled, never [dlopen]ed.

    Writes are atomic (temp file + rename, [.so] before metadata) and
    best-effort: a full or read-only disk degrades the cache to a
    no-op, counted in {!stats}, never failing a request. *)

type t

type meta = {
  pipeline : string;
  plan_digest : string;  (** {!Pmdp_plan.digest} of the plan the kernel executes *)
  abi : int;  (** {!Pmdp_plan.kernel_abi_version} at emission time *)
  so_md5 : string;  (** hex MD5 of the shared object as stored *)
  compiler : string;  (** first line of [cc --version] *)
  openmp : bool;  (** compiled with [-fopenmp] *)
  validation : string;  (** admission verdict: ["bitwise"] or ["epsilon"] *)
  max_abs_diff : float;  (** worst |native - reference| at admission *)
}

val default_dir : unit -> string
(** [$XDG_CACHE_HOME/pmdp/kernels], falling back to
    [~/.cache/pmdp/kernels] (or a temp-dir-rooted path when even
    [$HOME] is unset). *)

val create : dir:string -> unit -> t
(** Create [dir] (and parents) if needed.
    @raise Invalid_argument when [dir] exists but is not a directory.
    @raise Unix.Unix_error when it cannot be created. *)

val dir : t -> string

val store : t -> kernel_digest:string -> meta -> so_src:string -> unit
(** Copy the compiled object at [so_src] into the cache and write its
    metadata beside it, both atomically.  Failures are swallowed (and
    counted) — persistence is an optimization. *)

val load : t -> kernel_digest:string -> abi:int -> (string * meta) option
(** The path of a verified shared object and its metadata, or [None]
    after counting a miss.  Any damaged entry — orphaned half,
    unparseable metadata, ABI mismatch, checksum mismatch — is
    quarantined on the way out.  The caller still owns semantic
    admission (re-validating against the reference executor). *)

val quarantine : t -> kernel_digest:string -> reason:string -> unit
(** Rename both entry files to [.bad]: out of the lookup namespace,
    still on disk for inspection.  Best-effort, idempotent, counted. *)

type stats = {
  stores : int;  (** entries written *)
  store_failures : int;  (** writes that failed (disk full, perms) *)
  hits : int;  (** loads that returned a verified object *)
  misses : int;  (** loads that found nothing usable *)
  quarantined : int;  (** entries renamed to [.bad] *)
}

val stats : t -> stats

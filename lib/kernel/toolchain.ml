module Fault = Pmdp_runtime.Fault

type t = { cc : string; openmp : bool; march : bool; version : string }

(* One flag set everywhere: -ffp-contract=off forbids fused
   multiply-adds, which would otherwise round differently from the
   interpreter's one-operation-at-a-time double arithmetic and break
   the bitwise validation gate. *)
let base_flags = "-O2 -shared -fPIC -ffp-contract=off"

(* -march=native is an explicit opt-in (`--native-march`): it lets the
   compiler vectorize with FMA and wider registers, which reorders and
   contracts float arithmetic — so kernels built with it can never be
   admitted bitwise, only under the epsilon gate. *)
let flags t =
  base_flags
  ^ (if t.march then " -march=native" else "")
  ^ if t.openmp then " -fopenmp" else ""

let first_line_of cmd =
  try
    let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    line
  with _ -> ""

let probe_one ~march cc =
  if Sys.command (Printf.sprintf "command -v %s > /dev/null 2>&1" (Filename.quote cc)) <> 0
  then None
  else begin
    let src = Filename.temp_file "pmdp_probe" ".c" in
    let so = Filename.temp_file "pmdp_probe" ".so" in
    let oc = open_out src in
    output_string oc "int pmdp_probe(void) { return 42; }\n";
    close_out oc;
    let ok extra =
      Sys.command
        (Printf.sprintf "%s %s%s %s -o %s > /dev/null 2>&1" (Filename.quote cc) base_flags
           extra (Filename.quote src) (Filename.quote so))
      = 0
    in
    (* A compiler that fails with -march=native (cross toolchains,
       exotic hosts) is no use when the caller demanded it; fall back
       to the interpreter rather than silently dropping the flag. *)
    let works = if march then ok " -march=native" else ok "" in
    let openmp =
      works && ok ((if march then " -march=native" else "") ^ " -fopenmp")
    in
    (try Sys.remove src with Sys_error _ -> ());
    (try Sys.remove so with Sys_error _ -> ());
    if works then
      Some { cc; openmp; march; version = first_line_of (Filename.quote cc ^ " --version") }
    else None
  end

let probe ?cc ?(march = false) () =
  let candidates =
    match cc with
    | Some c -> [ c ]
    | None -> (
        (match Sys.getenv_opt "PMDP_CC" with Some c when c <> "" -> [ c ] | _ -> [])
        @ [ "cc"; "gcc"; "clang" ])
  in
  List.find_map (probe_one ~march) candidates

let read_all path =
  try
    let ic = open_in_bin path in
    let n = min (in_channel_length ic) 2000 in
    let s = really_input_string ic n in
    close_in ic;
    s
  with _ -> ""

let compile ?fault t ~src ~out =
  Option.iter Fault.kernel_tick fault;
  let err = Filename.temp_file "pmdp_cc" ".err" in
  let rc =
    Sys.command
      (Printf.sprintf "%s %s %s -o %s -lm 2> %s" (Filename.quote t.cc) (flags t)
         (Filename.quote src) (Filename.quote out) (Filename.quote err))
  in
  let diagnostics = String.trim (read_all err) in
  (try Sys.remove err with Sys_error _ -> ());
  if rc = 0 then Ok ()
  else
    Error
      (Printf.sprintf "%s exited with %d%s" t.cc rc
         (if diagnostics = "" then "" else ": " ^ diagnostics))

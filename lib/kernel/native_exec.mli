(** The native kernel backend: compile, cache, validate, and execute
    the emitted C.

    For each plan ({!Pmdp_exec.Tiled_exec.plan}) the backend obtains a
    compiled kernel keyed by {!Pmdp_plan.kernel_digest}:

    + process memo table — already admitted this process;
    + {!Kernel_cache} — a checksum-verified shared object from a
      previous process, [dlopen]ed and re-validated;
    + fresh compile — {!Pmdp_codegen.C_emit.emit_kernels} through
      {!Toolchain.compile}, then [dlopen].

    Whatever the path, {b nothing executes a request before passing
    the validation gate}: the kernel runs once on deterministic seeded
    inputs and its live-outs are compared against
    {!Pmdp_exec.Reference.run} — bitwise equality expected (the
    kernels mirror the interpreter's double arithmetic and are
    compiled with [-ffp-contract=off]), an [eps] relative tolerance
    accepted, anything worse rejected (and quarantined, when it came
    from disk).  Admission failures are memoized per digest, so a
    missing toolchain costs one probe, not one per request.

    Execution copies inputs into Bigarray storage (data outside the
    OCaml heap, stable across GC), releases the runtime lock, and
    calls each group's [pmdp_kernel_group_<i>(double **bufs,
    n_threads)] in plan order.

    {!install} registers the backend as
    {!Pmdp_exec.Resilient.set_native_runner}, making [native] the
    first step of the fallback chain; every failure mode above
    surfaces as a typed [Kernel_unavailable] that degrades the run to
    the interpreter instead of failing it. *)

type t

val create :
  ?fault:Pmdp_runtime.Fault.t ->
  ?cache_dir:string ->
  ?cc:string ->
  ?eps:float ->
  ?march:bool ->
  unit ->
  t
(** Probe the toolchain and open the on-disk cache ([cache_dir]
    omitted = no persistence).  [cc] forces a single compiler
    candidate (tests use an impossible one to simulate a host without
    a toolchain); [fault] arms the seeded compile-failure injection;
    [eps] (default [1e-6]) is the relative tolerance of the
    validation gate.  [march] (default false, the `--native-march`
    opt-in) compiles kernels with [-march=native]: vectorization may
    contract/reorder float arithmetic, so bitwise admission is
    disabled — kernels are admitted under the [eps] gate only, and
    compiled objects are cached under a salted key so plain and march
    builds never share artifacts. *)

val toolchain : t -> Toolchain.t option
(** [None] on a host with no working C compiler. *)

val run :
  t ->
  Pmdp_exec.Tiled_exec.plan ->
  workers:int ->
  inputs:(string * Pmdp_exec.Buffer.t) list ->
  (string * Pmdp_exec.Buffer.t) list
(** Execute the plan natively with [workers] OpenMP threads; returns
    the live-out buffers by stage name (the same contract as
    {!Pmdp_exec.Tiled_exec.run}).
    @raise Pmdp_util.Pmdp_error.Error ([Kernel_unavailable]) when no
    kernel can be admitted — the signal the resilient chain folds
    into a degraded interpreter run. *)

val install : t -> unit
(** Register this backend as the process-wide native runner of
    {!Pmdp_exec.Resilient}. *)

val uninstall : unit -> unit
(** Clear the process-wide native runner (tests; also useful to pin
    an interpreter-only run). *)

type stats = {
  compiles : int;  (** fresh compiler invocations *)
  compile_failures : int;  (** including seeded [kernel@K] injections *)
  validations : int;  (** gate runs (fresh and disk-loaded kernels) *)
  validation_failures : int;  (** kernels rejected by the gate *)
  disk_hits : int;  (** kernels admitted from the on-disk cache *)
  runs : int;  (** native executions *)
  unavailable : int;  (** digests memoized as unavailable *)
}

val stats : t -> stats
val cache_stats : t -> Kernel_cache.stats option

module Json = Pmdp_report.Json
module Trace = Pmdp_trace.Trace

type meta = {
  pipeline : string;
  plan_digest : string;
  abi : int;
  so_md5 : string;
  compiler : string;
  openmp : bool;
  validation : string;
  max_abs_diff : float;
}

type stats = {
  stores : int;
  store_failures : int;
  hits : int;
  misses : int;
  quarantined : int;
}

type t = {
  dir : string;
  lock : Mutex.t;
  mutable stores : int;
  mutable store_failures : int;
  mutable hits : int;
  mutable misses : int;
  mutable quarantined : int;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ()
  end

let default_dir () =
  let base =
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> d
    | _ -> (
        match Sys.getenv_opt "HOME" with
        | Some h when h <> "" -> Filename.concat h ".cache"
        | _ -> Filename.concat (Filename.get_temp_dir_name ()) "pmdp-cache")
  in
  Filename.concat (Filename.concat base "pmdp") "kernels"

let create ~dir () =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Kernel_cache.create: %s is not a directory" dir);
  { dir; lock = Mutex.create (); stores = 0; store_failures = 0; hits = 0; misses = 0;
    quarantined = 0 }

let dir t = t.dir
let so_path t kd = Filename.concat t.dir (kd ^ ".so")
let meta_path t kd = Filename.concat t.dir (kd ^ ".json")

let bump t f =
  Mutex.lock t.lock;
  f t;
  Mutex.unlock t.lock

let json_of_meta m =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("pipeline", Json.String m.pipeline);
      ("plan_digest", Json.String m.plan_digest);
      ("abi", Json.Int m.abi);
      ("so_md5", Json.String m.so_md5);
      ("compiler", Json.String m.compiler);
      ("openmp", Json.Bool m.openmp);
      ("validation", Json.String m.validation);
      ("max_abs_diff", Json.Float m.max_abs_diff);
    ]

let meta_of_json j =
  let str name = Option.bind (Json.member name j) Json.to_string_opt in
  let int name = Option.bind (Json.member name j) Json.to_int_opt in
  let boolean name = Option.bind (Json.member name j) Json.to_bool_opt in
  let flt name = Option.bind (Json.member name j) Json.to_float_opt in
  match
    ( str "pipeline", str "plan_digest", int "abi", str "so_md5", str "compiler",
      boolean "openmp", str "validation" )
  with
  | Some pipeline, Some plan_digest, Some abi, Some so_md5, Some compiler, Some openmp,
    Some validation ->
      Some
        {
          pipeline;
          plan_digest;
          abi;
          so_md5;
          compiler;
          openmp;
          validation;
          max_abs_diff = Option.value (flt "max_abs_diff") ~default:0.0;
        }
  | _ -> None

(* Rename both halves of an entry out of the lookup namespace but keep
   them on disk for inspection — the same .bad convention as
   {!Pmdp_service.Disk_cache}. *)
let quarantine t ~kernel_digest ~reason =
  let moved = ref false in
  List.iter
    (fun path ->
      if Sys.file_exists path then
        match Unix.rename path (path ^ ".bad") with
        | () -> moved := true
        | exception Unix.Unix_error _ -> ())
    [ so_path t kernel_digest; meta_path t kernel_digest ];
  if !moved then begin
    bump t (fun t -> t.quarantined <- t.quarantined + 1);
    if Trace.on () then
      Trace.instant ~cat:"kernel"
        ~args:[ ("kernel", Trace.Str kernel_digest); ("reason", Trace.Str reason) ]
        "kernel_cache.quarantine"
  end

let copy_file src dst =
  let ic = open_in_bin src in
  let oc = open_out_bin dst in
  let buf = Bytes.create 65536 in
  let rec loop () =
    let n = input ic buf 0 (Bytes.length buf) in
    if n > 0 then begin
      output oc buf 0 n;
      loop ()
    end
  in
  loop ();
  close_in ic;
  close_out oc

(* Atomic and best-effort, like every persistent store in the repo:
   temp file + rename for each half, .so first so a crash between the
   two renames leaves a .so without meta — an unusable (and therefore
   harmless) orphan that the next load quarantines. *)
let store t ~kernel_digest meta ~so_src =
  let so_final = so_path t kernel_digest in
  let meta_final = meta_path t kernel_digest in
  let so_tmp = Printf.sprintf "%s.tmp.%d" so_final (Unix.getpid ()) in
  let meta_tmp = Printf.sprintf "%s.tmp.%d" meta_final (Unix.getpid ()) in
  match
    copy_file so_src so_tmp;
    Unix.rename so_tmp so_final;
    Json.to_file meta_tmp (json_of_meta meta);
    Unix.rename meta_tmp meta_final
  with
  | () -> bump t (fun t -> t.stores <- t.stores + 1)
  | exception _ ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ so_tmp; meta_tmp ];
      bump t (fun t -> t.store_failures <- t.store_failures + 1)

let load t ~kernel_digest ~abi =
  let so = so_path t kernel_digest in
  let mp = meta_path t kernel_digest in
  let miss () =
    bump t (fun t -> t.misses <- t.misses + 1);
    None
  in
  let reject reason =
    quarantine t ~kernel_digest ~reason;
    miss ()
  in
  if not (Sys.file_exists mp) then
    if Sys.file_exists so then reject "shared object without metadata" else miss ()
  else if not (Sys.file_exists so) then reject "metadata without shared object"
  else
    match Json.of_file mp with
    | Error e -> reject ("unparseable metadata: " ^ e)
    | Ok j -> (
        match meta_of_json j with
        | None -> reject "metadata missing required fields"
        | Some meta ->
            if meta.abi <> abi then reject (Printf.sprintf "stale ABI %d (want %d)" meta.abi abi)
            else
              let md5 = try Digest.to_hex (Digest.file so) with _ -> "" in
              if md5 <> meta.so_md5 then
                reject
                  (Printf.sprintf "shared object checksum %s does not match recorded %s"
                     (if md5 = "" then "<unreadable>" else md5)
                     meta.so_md5)
              else begin
                bump t (fun t -> t.hits <- t.hits + 1);
                Some (so, meta)
              end)

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      stores = t.stores;
      store_failures = t.store_failures;
      hits = t.hits;
      misses = t.misses;
      quarantined = t.quarantined;
    }
  in
  Mutex.unlock t.lock;
  s

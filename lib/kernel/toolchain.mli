(** C toolchain probing and kernel compilation.

    The native backend never assumes a compiler exists: {!probe} runs
    at backend creation, test-compiles a one-function shared object
    with each candidate, and separately checks whether [-fopenmp] is
    accepted.  A host without any working compiler simply yields
    [None] — the backend then reports every plan as
    [Kernel_unavailable] and the resilient chain stays on the
    interpreter. *)

type t = {
  cc : string;  (** compiler command that passed the probe *)
  openmp : bool;  (** [-fopenmp] accepted (kernels are serial-correct without it) *)
  march : bool;
      (** compile with [-march=native] — opt-in, forfeits bitwise
          reproducibility (see {!flags}) *)
  version : string;  (** first line of [cc --version], for cache metadata *)
}

val base_flags : string
(** ["-O2 -shared -fPIC -ffp-contract=off"] — contraction is disabled
    so kernel arithmetic rounds exactly like the interpreter's. *)

val flags : t -> string
(** {!base_flags} plus [-march=native] when [march] and [-fopenmp]
    when the probe accepted it.  [-march=native] lets the compiler
    vectorize with FMA and wider registers, which reorders and
    contracts float arithmetic — kernels built with it can never be
    admitted bitwise, only under the epsilon gate
    ({!Native_exec.create}). *)

val probe : ?cc:string -> ?march:bool -> unit -> t option
(** Find a working compiler by test-compiling a shared object.
    Candidates, in order: [cc] when given (and nothing else — the
    forced-toolchain hook tests use), else [$PMDP_CC], then [cc],
    [gcc], [clang].  With [march] (default false) the probe itself
    compiles with [-march=native]; a compiler that rejects the flag
    yields [None] (interpreter fallback) rather than silently
    dropping the opt-in. *)

val compile : ?fault:Pmdp_runtime.Fault.t -> t -> src:string -> out:string -> (unit, string) result
(** Compile [src] to the shared object [out] ([cc <flags> src -o out
    -lm]); the error carries the compiler's (truncated) diagnostics.
    [fault] arms {!Pmdp_runtime.Fault.kernel_tick} before the
    invocation, so a seeded [kernel@K] spec raises
    [Fault.Injected] here — the deterministic stand-in for a broken
    toolchain. *)

/* dlopen/dlsym FFI and the kernel call shim for the native backend.
 *
 * The repository deliberately carries no ctypes dependency; these few
 * stubs are the entire foreign surface.  Handles and function
 * pointers cross into OCaml as nativeint — they are opaque tokens the
 * OCaml side only stores and passes back.
 */

#include <caml/alloc.h>
#include <caml/bigarray.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>
#include <dlfcn.h>

CAMLprim value pmdp_dl_open(value path)
{
  CAMLparam1(path);
  void *h = dlopen(String_val(path), RTLD_NOW | RTLD_LOCAL);
  if (h == NULL) {
    const char *e = dlerror();
    caml_failwith(e ? e : "dlopen failed");
  }
  CAMLreturn(caml_copy_nativeint((intnat) h));
}

CAMLprim value pmdp_dl_sym(value handle, value name)
{
  CAMLparam2(handle, name);
  void *h = (void *) Nativeint_val(handle);
  dlerror(); /* clear, so a NULL result can be told from an error */
  void *s = dlsym(h, String_val(name));
  if (s == NULL) {
    const char *e = dlerror();
    caml_failwith(e ? e : "dlsym: symbol resolved to NULL");
  }
  CAMLreturn(caml_copy_nativeint((intnat) s));
}

CAMLprim value pmdp_dl_close(value handle)
{
  dlclose((void *) Nativeint_val(handle));
  return Val_unit;
}

/* Call void kernel(double **bufs, int n_threads) with the data
 * pointers of an array of 1-D float64 bigarrays.  The pointers are
 * collected while the runtime lock is still held; bigarray data lives
 * outside the OCaml heap, so they stay valid after the lock is
 * released for the (possibly long, OpenMP-parallel) kernel call. */
#define PMDP_MAX_BUFS 256

CAMLprim value pmdp_call_kernel(value fn, value bufs, value nt)
{
  CAMLparam3(fn, bufs, nt);
  void (*kernel)(double **, int) = (void (*)(double **, int)) Nativeint_val(fn);
  mlsize_t n = Wosize_val(bufs);
  double *argv[PMDP_MAX_BUFS];
  if (n > PMDP_MAX_BUFS)
    caml_invalid_argument("pmdp_call_kernel: too many buffers");
  for (mlsize_t i = 0; i < n; i++)
    argv[i] = (double *) Caml_ba_data_val(Field(bufs, i));
  int threads = Int_val(nt);
  caml_release_runtime_system();
  kernel(argv, threads);
  caml_acquire_runtime_system();
  CAMLreturn(Val_unit);
}

module Json = Pmdp_report.Json
module Scheduler = Pmdp_core.Scheduler
module Machine = Pmdp_machine.Machine

type meta = {
  app : string;
  scale : int;
  scheduler : Scheduler.t;
  machine : string;
  cores : int;
}

type stats = { stores : int; store_failures : int; hits : int; misses : int }

type t = {
  dir : string;
  lock : Mutex.t;
  mutable stores : int;
  mutable store_failures : int;
  mutable hits : int;
  mutable misses : int;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ()
  end

let default_dir () =
  let base =
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> d
    | _ -> (
        match Sys.getenv_opt "HOME" with
        | Some h when h <> "" -> Filename.concat h ".cache"
        | _ -> Filename.concat (Filename.get_temp_dir_name ()) "pmdp-cache")
  in
  Filename.concat (Filename.concat base "pmdp") "plans"

let create ~dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Disk_cache.create: %s is not a directory" dir);
  { dir; lock = Mutex.create (); stores = 0; store_failures = 0; hits = 0; misses = 0 }

let dir t = t.dir
let path t fingerprint = Filename.concat t.dir (fingerprint ^ ".json")

let bump t f =
  Mutex.lock t.lock;
  f t;
  Mutex.unlock t.lock

let meta_of_request ~app ~scale ~scheduler ~(machine : Machine.t) =
  { app; scale; scheduler; machine = machine.Machine.name; cores = machine.Machine.cores }

let json_of_meta m =
  Json.Obj
    [
      ("app", Json.String m.app);
      ("scale", Json.Int m.scale);
      ("scheduler", Json.String (Scheduler.to_string m.scheduler));
      ("machine", Json.String m.machine);
      ("cores", Json.Int m.cores);
    ]

let meta_of_json j =
  let int name = Option.bind (Json.member name j) Json.to_int_opt in
  let str name = Option.bind (Json.member name j) Json.to_string_opt in
  match (str "app", int "scale", str "scheduler", str "machine", int "cores") with
  | Some app, Some scale, Some sch, Some machine, Some cores -> (
      match Scheduler.of_string sch with
      | Some scheduler -> Some { app; scale; scheduler; machine; cores }
      | None -> None)
  | _ -> None

(* The file is the PR 6 plan envelope — {schema_version, digest, plan},
   the format Pmdp_plan.read parses — extended with a "request" member
   recording the bindings the fingerprint was computed from, so a
   restarted server can re-derive the pipeline to admit the plan
   against. *)
let store t meta ~fingerprint ~(ir : Pmdp_plan.t) =
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ("digest", Json.String (Pmdp_plan.digest ir));
        ("request", json_of_meta meta);
        ("plan", Pmdp_plan.to_json ir);
      ]
  in
  let final = path t fingerprint in
  let tmp = Printf.sprintf "%s.tmp.%d" final (Unix.getpid ()) in
  match
    Json.to_file tmp doc;
    Unix.rename tmp final
  with
  | () -> bump t (fun t -> t.stores <- t.stores + 1)
  | exception (Sys_error _ | Unix.Unix_error _) ->
      (try Sys.remove tmp with Sys_error _ -> ());
      bump t (fun t -> t.store_failures <- t.store_failures + 1)

let parse_file file =
  match Json.of_file file with
  | Error e -> Error e
  | Ok j -> (
      match
        ( Option.bind (Json.member "digest" j) Json.to_string_opt,
          Option.map Pmdp_plan.of_json (Json.member "plan" j),
          Option.bind (Json.member "request" j) meta_of_json )
      with
      | Some digest, Some (Ok ir), Some meta -> Ok (ir, digest, meta)
      | Some _, Some (Error e), _ -> Error e
      | _ -> Error "expected an envelope with digest, plan, and request members")

let load t ~fingerprint =
  let file = path t fingerprint in
  if not (Sys.file_exists file) then begin
    bump t (fun t -> t.misses <- t.misses + 1);
    None
  end
  else
    match parse_file file with
    | Ok (ir, digest, _) ->
        bump t (fun t -> t.hits <- t.hits + 1);
        Some (ir, digest)
    | Error _ ->
        (* Unparseable is indistinguishable from absent for the caller:
           the plan cache falls back to compiling. *)
        bump t (fun t -> t.misses <- t.misses + 1);
        None

let scan t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if not (Filename.check_suffix name ".json") then None
             else
               let fingerprint = Filename.chop_suffix name ".json" in
               match parse_file (Filename.concat t.dir name) with
               | Ok (_, _, meta) -> Some (fingerprint, meta)
               | Error _ -> None)
      |> List.sort compare

let stats t =
  Mutex.lock t.lock;
  let s =
    { stores = t.stores; store_failures = t.store_failures; hits = t.hits; misses = t.misses }
  in
  Mutex.unlock t.lock;
  s

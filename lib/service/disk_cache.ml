module Json = Pmdp_report.Json
module Scheduler = Pmdp_core.Scheduler
module Machine = Pmdp_machine.Machine
module Fault = Pmdp_runtime.Fault
module Trace = Pmdp_trace.Trace

type meta = {
  app : string;
  scale : int;
  scheduler : Scheduler.t;
  machine : string;
  cores : int;
}

type stats = {
  stores : int;
  store_failures : int;
  hits : int;
  misses : int;
  quarantined : int;
}

type t = {
  dir : string;
  lock : Mutex.t;
  fault : Fault.t option;
  mutable stores : int;
  mutable store_failures : int;
  mutable hits : int;
  mutable misses : int;
  mutable quarantined : int;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ()
  end

let default_dir () =
  let base =
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> d
    | _ -> (
        match Sys.getenv_opt "HOME" with
        | Some h when h <> "" -> Filename.concat h ".cache"
        | _ -> Filename.concat (Filename.get_temp_dir_name ()) "pmdp-cache")
  in
  Filename.concat (Filename.concat base "pmdp") "plans"

let create ?fault ~dir () =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Disk_cache.create: %s is not a directory" dir);
  {
    dir;
    lock = Mutex.create ();
    fault;
    stores = 0;
    store_failures = 0;
    hits = 0;
    misses = 0;
    quarantined = 0;
  }

let dir t = t.dir
let path t fingerprint = Filename.concat t.dir (fingerprint ^ ".json")
let bad_path t fingerprint = Filename.concat t.dir (fingerprint ^ ".bad")

let bump t f =
  Mutex.lock t.lock;
  f t;
  Mutex.unlock t.lock

let meta_of_request ~app ~scale ~scheduler ~(machine : Machine.t) =
  { app; scale; scheduler; machine = machine.Machine.name; cores = machine.Machine.cores }

let json_of_meta m =
  Json.Obj
    [
      ("app", Json.String m.app);
      ("scale", Json.Int m.scale);
      ("scheduler", Json.String (Scheduler.to_string m.scheduler));
      ("machine", Json.String m.machine);
      ("cores", Json.Int m.cores);
    ]

let meta_of_json j =
  let int name = Option.bind (Json.member name j) Json.to_int_opt in
  let str name = Option.bind (Json.member name j) Json.to_string_opt in
  match (str "app", int "scale", str "scheduler", str "machine", int "cores") with
  | Some app, Some scale, Some sch, Some machine, Some cores -> (
      match Scheduler.of_string sch with
      | Some scheduler -> Some { app; scale; scheduler; machine; cores }
      | None -> None)
  | _ -> None

(* The file is the PR 6 plan envelope — {schema_version, digest, plan},
   the format Pmdp_plan.read parses — extended with a "request" member
   recording the bindings the fingerprint was computed from, so a
   restarted server can re-derive the pipeline to admit the plan
   against. *)
let store t meta ~fingerprint ~(ir : Pmdp_plan.t) =
  (* Chaos hooks model the two silent ways a write goes bad: a torn
     write persists only a prefix (power cut between write and fsync),
     a corrupt write persists well-formed JSON whose claimed digest is
     wrong (bit rot, buggy serializer).  Both count as stores — the
     writer believed it succeeded; detection is the reader's job. *)
  let directive = match t.fault with Some f -> Fault.store_tick f | None -> `Pass in
  let digest =
    match directive with
    | `Corrupt -> "corrupt-" ^ Pmdp_plan.digest ir
    | `Pass | `Torn -> Pmdp_plan.digest ir
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ("digest", Json.String digest);
        ("request", json_of_meta meta);
        ("plan", Pmdp_plan.to_json ir);
      ]
  in
  let final = path t fingerprint in
  let tmp = Printf.sprintf "%s.tmp.%d" final (Unix.getpid ()) in
  let write () =
    match directive with
    | `Pass | `Corrupt -> Json.to_file tmp doc
    | `Torn ->
        let s = Json.to_string doc in
        let oc = open_out_bin tmp in
        output_string oc (String.sub s 0 (String.length s / 2));
        close_out oc
  in
  match
    write ();
    Unix.rename tmp final
  with
  | () -> bump t (fun t -> t.stores <- t.stores + 1)
  | exception (Sys_error _ | Unix.Unix_error _) ->
      (try Sys.remove tmp with Sys_error _ -> ());
      bump t (fun t -> t.store_failures <- t.store_failures + 1)

(* Move a bad envelope out of the lookup path.  Leaving it in place
   would re-reject it on every warm start and shadow the re-store of a
   fresh compile; renaming to <fingerprint>.bad keeps the evidence for
   inspection while freeing the .json slot.  Best-effort and
   idempotent (a second quarantine of the same fingerprint finds no
   file and counts nothing). *)
let quarantine t ~fingerprint ~reason =
  let file = path t fingerprint in
  if Sys.file_exists file then begin
    match Unix.rename file (bad_path t fingerprint) with
    | () ->
        bump t (fun t -> t.quarantined <- t.quarantined + 1);
        if Trace.on () then begin
          Trace.count "service.disk.quarantine" 1;
          Trace.instant ~cat:"service"
            ~args:[ ("fingerprint", Trace.Str fingerprint); ("reason", Trace.Str reason) ]
            "service.disk.quarantine"
        end
    | exception Unix.Unix_error _ -> ()
  end

let parse_file file =
  match Json.of_file file with
  | Error e -> Error e
  | Ok j -> (
      match
        ( Option.bind (Json.member "digest" j) Json.to_string_opt,
          Option.map Pmdp_plan.of_json (Json.member "plan" j),
          Option.bind (Json.member "request" j) meta_of_json )
      with
      | Some digest, Some (Ok ir), Some meta -> Ok (ir, digest, meta)
      | Some _, Some (Error e), _ -> Error e
      | _ -> Error "expected an envelope with digest, plan, and request members")

let load t ~fingerprint =
  let file = path t fingerprint in
  if not (Sys.file_exists file) then begin
    bump t (fun t -> t.misses <- t.misses + 1);
    None
  end
  else
    match parse_file file with
    | Ok (ir, digest, _) ->
        bump t (fun t -> t.hits <- t.hits + 1);
        Some (ir, digest)
    | Error _ ->
        (* Unparseable is indistinguishable from absent for the caller
           (the plan cache falls back to compiling), but the file is
           quarantined so the next store is not shadowed by it. *)
        quarantine t ~fingerprint ~reason:"load: unparseable envelope";
        bump t (fun t -> t.misses <- t.misses + 1);
        None

let scan t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if not (Filename.check_suffix name ".json") then None
             else
               let fingerprint = Filename.chop_suffix name ".json" in
               match parse_file (Filename.concat t.dir name) with
               | Ok (_, _, meta) -> Some (fingerprint, meta)
               | Error _ ->
                   quarantine t ~fingerprint ~reason:"scan: unparseable envelope";
                   None)
      |> List.sort compare

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      stores = t.stores;
      store_failures = t.store_failures;
      hits = t.hits;
      misses = t.misses;
      quarantined = t.quarantined;
    }
  in
  Mutex.unlock t.lock;
  s

module Machine = Pmdp_machine.Machine
module Registry = Pmdp_apps.Registry
module Scheduler = Pmdp_core.Scheduler
module Cost_model = Pmdp_core.Cost_model
module Tiled_exec = Pmdp_exec.Tiled_exec
module Resilient = Pmdp_exec.Resilient
module Stats = Pmdp_util.Stats
module Trace = Pmdp_trace.Trace
module Search = Pmdp_tune.Search

(* Online re-optimization: per-fingerprint latency EWMAs fed by the
   shard dispatchers, a background tuner thread that searches for
   better tiles under the (calibrated) cost model, and a guarded A/B
   gate so a cached plan is only ever swapped for a candidate that
   measurably wins.  The tuner never touches a plan cache directly —
   the service supplies the commit callback (Plan_cache.swap plus the
   disk-cache write-back), so every swap goes through the same
   admission-gated path as any other entry. *)

type config = {
  hot_threshold : int;
  margin : float;
  ab_reps : int;
  budget : int;
  seed : int;
  propose : (Pmdp_plan.t -> int array array option) option;
}

let default_config =
  { hot_threshold = 8; margin = 0.05; ab_reps = 3; budget = 48; seed = 0x7e5e; propose = None }

type job = {
  fingerprint : string;
  app : Registry.app;
  scale : int;
  scheduler : Scheduler.t;
  input_seed : int;
  cache : Plan_cache.t;
  entry : Plan_cache.entry;
}

type counters = {
  observed : int;
  hot : int;
  started : int;
  wins : int;
  losses : int;
  swaps : int;
}

(* Per-fingerprint latency state.  [attempted] makes retuning
   at-most-once per fingerprint per process: a plan that already went
   through the A/B gate (win or lose) is left alone. *)
type fp_state = { mutable ewma : float; mutable count : int; mutable attempted : bool }

type t = {
  config : config;
  machine : Machine.t;
  calib : Cost_model.calibration option;
  commit : job -> Plan_cache.entry -> bool;
  lock : Mutex.t;
  work_ready : Condition.t;
  states : (string, fp_state) Hashtbl.t;
  queue : job Queue.t;
  mutable stop : bool;
  mutable tuner : Thread.t option;
  mutable observed : int;
  mutable hot : int;
  mutable started : int;
  mutable wins : int;
  mutable losses : int;
  mutable swaps : int;
}

(* EWMA smoothing factor: recent executions dominate, but one outlier
   does not flip a fingerprint hot. *)
let alpha = 0.3

let observe t ~fingerprint ~wall ~job =
  Mutex.lock t.lock;
  if not t.stop then begin
    t.observed <- t.observed + 1;
    let st =
      match Hashtbl.find_opt t.states fingerprint with
      | Some st -> st
      | None ->
          let st = { ewma = wall; count = 0; attempted = false } in
          Hashtbl.add t.states fingerprint st;
          st
    in
    st.ewma <- (alpha *. wall) +. ((1.0 -. alpha) *. st.ewma);
    st.count <- st.count + 1;
    if st.count >= t.config.hot_threshold && not st.attempted then begin
      st.attempted <- true;
      t.hot <- t.hot + 1;
      Queue.add (job ()) t.queue;
      Condition.signal t.work_ready
    end
  end;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* The tuner thread *)

let median_wall plan ~machine ~inputs ~reps =
  let walls =
    Array.init reps (fun _ ->
        let start = Unix.gettimeofday () in
        match Resilient.run_plan ~machine plan ~inputs with
        | Ok _ -> Unix.gettimeofday () -. start
        | Error _ -> Float.infinity)
  in
  Stats.median walls

let lose t =
  Mutex.lock t.lock;
  t.losses <- t.losses + 1;
  Mutex.unlock t.lock;
  if Trace.on () then Trace.count "service.retune.lose" 1

(* One retune attempt: propose tiles (model-guided search, or the test
   hook), retile the IR, pass it through the full admission gate, then
   A/B both plans on the request's own inputs.  The swap happens only
   when the candidate beats the incumbent by the configured margin —
   and only through the service's commit callback. *)
let process t (j : job) =
  Mutex.lock t.lock;
  t.started <- t.started + 1;
  Mutex.unlock t.lock;
  if Trace.on () then Trace.count "service.retune.start" 1;
  let ir = j.entry.Plan_cache.ir in
  let pipeline = Tiled_exec.pipeline j.entry.Plan_cache.plan in
  let proposal =
    match t.config.propose with
    | Some f -> ( try f ir with _ -> None)
    | None ->
        let config = Cost_model.config_of_machine ?calib:t.calib t.machine in
        let tiles, _ =
          Search.tune_ir ~seed:t.config.seed ~budget:t.config.budget ~config ~pipeline ir
        in
        Some tiles
  in
  match proposal with
  | None -> lose t
  | Some tiles -> (
      match Pmdp_plan.retile_result pipeline ir tiles with
      | Error _ -> lose t
      | Ok cand_ir -> (
          let digest = Pmdp_plan.digest cand_ir in
          if digest = j.entry.Plan_cache.digest then lose t (* search kept the tiles *)
          else
            (* Same gate as every other path into a cache slot:
               digest + whole-plan analyzer + instantiation. *)
            match Plan_cache.load ~pipeline ~ir:cand_ir ~digest with
            | Error _ -> lose t
            | Ok cand_plan ->
                let inputs = j.app.Registry.inputs ~seed:j.input_seed pipeline in
                let t_cur =
                  median_wall j.entry.Plan_cache.plan ~machine:t.machine ~inputs
                    ~reps:t.config.ab_reps
                in
                let t_cand =
                  median_wall cand_plan ~machine:t.machine ~inputs ~reps:t.config.ab_reps
                in
                if Float.is_finite t_cand && t_cand < t_cur *. (1.0 -. t.config.margin)
                then begin
                  Mutex.lock t.lock;
                  t.wins <- t.wins + 1;
                  Mutex.unlock t.lock;
                  if Trace.on () then Trace.count "service.retune.win" 1;
                  let entry =
                    {
                      j.entry with
                      Plan_cache.spec = None;
                      plan = cand_plan;
                      ir = cand_ir;
                      digest;
                    }
                  in
                  if t.commit j entry then begin
                    Mutex.lock t.lock;
                    t.swaps <- t.swaps + 1;
                    Mutex.unlock t.lock;
                    if Trace.on () then Trace.count "service.retune.swap" 1
                  end
                end
                else lose t))

let run_tuner t =
  let continue = ref true in
  while !continue do
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.work_ready t.lock
    done;
    if t.stop then begin
      Mutex.unlock t.lock;
      continue := false
    end
    else begin
      let j = Queue.pop t.queue in
      Mutex.unlock t.lock;
      (* A tuner crash must never take the service down: fold any
         escaped exception into a loss and keep serving. *)
      try process t j with _ -> lose t
    end
  done

let create ?calib ~config ~machine ~commit () =
  if config.hot_threshold < 1 then invalid_arg "Retune.create: hot_threshold < 1";
  if config.ab_reps < 1 then invalid_arg "Retune.create: ab_reps < 1";
  if config.budget < 1 then invalid_arg "Retune.create: budget < 1";
  if not (config.margin >= 0.0 && config.margin < 1.0) then
    invalid_arg "Retune.create: margin outside [0, 1)";
  let t =
    {
      config;
      machine;
      calib;
      commit;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      states = Hashtbl.create 16;
      queue = Queue.create ();
      stop = false;
      tuner = None;
      observed = 0;
      hot = 0;
      started = 0;
      wins = 0;
      losses = 0;
      swaps = 0;
    }
  in
  t.tuner <- Some (Thread.create run_tuner t);
  t

let counters t =
  Mutex.lock t.lock;
  let c =
    {
      observed = t.observed;
      hot = t.hot;
      started = t.started;
      wins = t.wins;
      losses = t.losses;
      swaps = t.swaps;
    }
  in
  Mutex.unlock t.lock;
  c

let shutdown t =
  Mutex.lock t.lock;
  if t.stop then Mutex.unlock t.lock
  else begin
    t.stop <- true;
    Queue.clear t.queue;
    Condition.signal t.work_ready;
    Mutex.unlock t.lock;
    Option.iter Thread.join t.tuner;
    t.tuner <- None
  end

(** Transport abstraction under {!Server} and {!Client}: where the
    length-prefixed {!Protocol} frames flow.  The same wire format runs
    over a Unix-domain socket ([Uds]) or a TCP connection ([Tcp]); only
    the address family, the socket options (TCP gets [TCP_NODELAY] and
    [SO_REUSEADDR]), and the teardown (a UDS file is unlinked) differ. *)

type endpoint =
  | Uds of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host (name or dotted quad), port *)

val of_string : string -> (endpoint, string) result
(** Parse ["unix:///run/pmdp.sock"], ["tcp://127.0.0.1:9900"], or a
    bare path (treated as [Uds], the pre-endpoint [--socket] form).
    Unknown [scheme://] prefixes, empty hosts/paths, and out-of-range
    ports are errors. *)

val to_string : endpoint -> string
(** Canonical rendering: ["unix://<path>"] / ["tcp://<host>:<port>"]. *)

val listen : ?backlog:int -> endpoint -> Unix.file_descr
(** Bind and listen ([backlog] defaults to 16).  For [Uds], a stale
    socket file at the path is replaced (a non-socket is not — bind
    fails).  For [Tcp], the socket gets [SO_REUSEADDR], and port [0]
    lets the kernel pick ({!bound_endpoint} reports the choice).
    @raise Unix.Unix_error when the endpoint cannot be bound or the
    host cannot be resolved. *)

val bound_endpoint : endpoint -> Unix.file_descr -> endpoint
(** The endpoint a {!listen}-ed socket actually answers on — identical
    to the input except that a TCP port of 0 is replaced by the
    kernel-assigned port. *)

val connect : endpoint -> Unix.file_descr
(** Connect a fresh stream socket ([TCP_NODELAY] set on TCP).
    @raise Unix.Unix_error when nothing is listening there. *)

val nodelay : Unix.file_descr -> unit
(** Set [TCP_NODELAY], ignoring failures — servers call it on accepted
    TCP connections; harmless on a UDS descriptor. *)

val cleanup : endpoint -> unit
(** Remove what {!listen} left in the filesystem: unlink a [Uds]
    path (ignoring errors); nothing for [Tcp]. *)

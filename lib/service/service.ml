module Machine = Pmdp_machine.Machine
module Registry = Pmdp_apps.Registry
module Scheduler = Pmdp_core.Scheduler
module Tiled_exec = Pmdp_exec.Tiled_exec
module Resilient = Pmdp_exec.Resilient
module Reference = Pmdp_exec.Reference
module Buffer = Pmdp_exec.Buffer
module Pool = Pmdp_runtime.Pool
module Pmdp_error = Pmdp_util.Pmdp_error
module Trace = Pmdp_trace.Trace

type request = { app : string; scale : int; scheduler : Scheduler.t; seed : int }

let request ?(scale = 32) ?(scheduler = Scheduler.Dp) ?(seed = 1) app =
  { app; scale; scheduler; seed }

type response = {
  id : int;
  fingerprint : string;
  cache_hit : bool;
  batch_size : int;
  degraded : bool;
  wall_seconds : float;
  queue_seconds : float;
  checksum : float;
  results : (string * Buffer.t) list;
  max_abs_diff : float option;
}

type status = Queued | Running | Done | Failed of Pmdp_error.t

type phase = P_queued | P_running

type pending = {
  id : int;
  req : request;
  app_entry : Registry.app;
  entry : Plan_cache.entry;
  cache_hit : bool;
  est_bytes : int;  (** admission charge: working set + pool scratch *)
  submitted_at : float;
  trace_ts : float;  (** {!Trace.now} at submit; nan when tracing off *)
  mutable phase : phase;
  mutable outcome : (response, Pmdp_error.t) result option;
}

type stats = {
  submitted : int;
  completed : int;
  failed : int;
  rejected : int;
  batches : int;
  batched_requests : int;
  executions : int;
  queue_depth : int;
  inflight_bytes : int;
  cache : Plan_cache.stats;
}

type t = {
  machine : Machine.t;
  budget : int;
  max_inflight : int;
  batch_window : float;
  validate : bool;
  pool : Pool.t option;
  workers : int;
  cache : Plan_cache.t;
  lock : Mutex.t;  (* protects queue/tickets/counters/stop *)
  work_ready : Condition.t;
  request_done : Condition.t;
  queue : pending Queue.t;
  tickets : (int, pending) Hashtbl.t;
  refs : (string, (string * Buffer.t) list) Hashtbl.t;
      (* batch key -> reference results; dispatcher-thread only *)
  mutable next_id : int;
  mutable unfinished : int;  (* admitted, not yet completed/failed *)
  mutable stop : bool;
  mutable dispatcher : Thread.t option;
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable rejected : int;
  mutable batches : int;
  mutable batched_requests : int;
  mutable executions : int;
  mutable inflight_bytes : int;
}

let machine t = t.machine
let mem_budget t = t.budget
let batch_key (p : pending) = p.entry.Plan_cache.fingerprint ^ ":" ^ string_of_int p.req.seed

(* ------------------------------------------------------------------ *)
(* Dispatcher *)

(* Pull every queued request with batch key [key]; caller holds the
   lock.  Matches are marked running on the way out. *)
let drain_matching t key =
  let matched = ref [] in
  let rest = Queue.create () in
  Queue.iter
    (fun p ->
      if batch_key p = key then begin
        p.phase <- P_running;
        matched := p :: !matched
      end
      else Queue.add p rest)
    t.queue;
  Queue.clear t.queue;
  Queue.transfer rest t.queue;
  List.rev !matched

(* Settle one request; caller holds the lock. *)
let settle t (p : pending) outcome =
  p.outcome <- Some outcome;
  (match outcome with
  | Ok _ -> t.completed <- t.completed + 1
  | Error _ -> t.failed <- t.failed + 1);
  t.unfinished <- t.unfinished - 1;
  t.inflight_bytes <- t.inflight_bytes - p.est_bytes

(* Reference results per batch key, memoized so validation costs one
   reference run per distinct request, not one per request.
   Dispatcher-thread only. *)
let reference_for t key (p : pending) =
  match Hashtbl.find_opt t.refs key with
  | Some r -> r
  | None ->
      let pipeline = Tiled_exec.pipeline p.entry.Plan_cache.plan in
      let inputs = p.app_entry.Registry.inputs ~seed:p.req.seed pipeline in
      let r = Reference.run pipeline ~inputs in
      if Hashtbl.length t.refs < 128 then Hashtbl.add t.refs key r;
      r

let execute_batch t key (batch : pending list) =
  let p0 = List.hd batch in
  let size = List.length batch in
  let pipeline = Tiled_exec.pipeline p0.entry.Plan_cache.plan in
  let inputs = p0.app_entry.Registry.inputs ~seed:p0.req.seed pipeline in
  let exec_start = Unix.gettimeofday () in
  let run () =
    Resilient.run_plan ?pool:t.pool ~machine:t.machine ~mem_budget:t.budget
      p0.entry.Plan_cache.plan ~inputs
  in
  let result =
    if not (Trace.on ()) then run ()
    else
      Trace.with_span ~cat:"service"
        ~args:
          [
            ("app", Trace.Str p0.req.app);
            ("fingerprint", Trace.Str (String.sub key 0 (min 12 (String.length key))));
            ("requests", Trace.Int size);
          ]
        "service.execute" run
  in
  let wall = Unix.gettimeofday () -. exec_start in
  if Trace.on () && size > 1 then begin
    Trace.count "service.batch" 1;
    Trace.count "service.batch.requests" size
  end;
  let outcome_of p =
    match result with
    | Error e -> Error e
    | Ok { Resilient.results; degraded; attempts = _ } ->
        let checksum = List.fold_left (fun acc (_, b) -> acc +. Buffer.checksum b) 0.0 results in
        let max_abs_diff =
          if not t.validate then None
          else
            let reference = reference_for t key p0 in
            Some
              (List.fold_left
                 (fun acc (n, b) ->
                   match List.assoc_opt n reference with
                   | Some r -> Float.max acc (Buffer.max_abs_diff b r)
                   | None -> acc)
                 0.0 results)
        in
        Ok
          {
            id = p.id;
            fingerprint = p.entry.Plan_cache.fingerprint;
            cache_hit = p.cache_hit;
            batch_size = size;
            degraded;
            wall_seconds = wall;
            queue_seconds = Float.max 0.0 (exec_start -. p.submitted_at);
            checksum;
            results;
            max_abs_diff;
          }
  in
  Mutex.lock t.lock;
  t.executions <- t.executions + 1;
  if size > 1 then begin
    t.batches <- t.batches + 1;
    t.batched_requests <- t.batched_requests + size
  end;
  List.iter (fun p -> settle t p (outcome_of p)) batch;
  Condition.broadcast t.request_done;
  Mutex.unlock t.lock;
  if Trace.on () then
    List.iter
      (fun p ->
        Trace.count "service.request" 1;
        if not (Float.is_nan p.trace_ts) then
          Trace.complete ~cat:"service"
            ~args:
              [
                ("id", Trace.Int p.id);
                ("app", Trace.Str p.req.app);
                ("cache_hit", Trace.Bool p.cache_hit);
                ("batch", Trace.Int size);
              ]
            ~name:"service.request" ~ts:p.trace_ts ())
      batch

let run_dispatcher t =
  let continue = ref true in
  while !continue do
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.work_ready t.lock
    done;
    if t.stop then begin
      (* Drain: whatever is still queued fails typed, then exit. *)
      Queue.iter
        (fun p -> settle t p (Error (Pmdp_error.Cancelled { reason = "service shutdown" })))
        t.queue;
      Queue.clear t.queue;
      Condition.broadcast t.request_done;
      Mutex.unlock t.lock;
      continue := false
    end
    else begin
      let head = Queue.pop t.queue in
      head.phase <- P_running;
      let key = batch_key head in
      let batch = head :: drain_matching t key in
      Mutex.unlock t.lock;
      (* Linger so same-key requests arriving right now can share the
         execution; anything that queued while we slept is collected
         in one more sweep. *)
      let batch =
        if t.batch_window <= 0.0 then batch
        else begin
          Thread.delay t.batch_window;
          Mutex.lock t.lock;
          let more = drain_matching t key in
          Mutex.unlock t.lock;
          batch @ more
        end
      in
      execute_batch t key batch
    end
  done

(* ------------------------------------------------------------------ *)
(* Client-side API *)

let create ?(workers = 4) ?mem_budget ?(max_inflight = 64) ?(batch_window = 0.0)
    ?(validate = false) ~machine () =
  if workers < 1 then invalid_arg "Service.create: workers < 1";
  if max_inflight < 1 then invalid_arg "Service.create: max_inflight < 1";
  let budget =
    match mem_budget with Some b -> b | None -> Machine.default_mem_budget machine
  in
  Pmdp_baselines.Schedulers.install ();
  let t =
    {
      machine;
      budget;
      max_inflight;
      batch_window;
      validate;
      pool = (if workers > 1 then Some (Pool.create workers) else None);
      workers;
      cache = Plan_cache.create ();
      lock = Mutex.create ();
      work_ready = Condition.create ();
      request_done = Condition.create ();
      queue = Queue.create ();
      tickets = Hashtbl.create 64;
      refs = Hashtbl.create 8;
      next_id = 1;
      unfinished = 0;
      stop = false;
      dispatcher = None;
      submitted = 0;
      completed = 0;
      failed = 0;
      rejected = 0;
      batches = 0;
      batched_requests = 0;
      executions = 0;
      inflight_bytes = 0;
    }
  in
  t.dispatcher <- Some (Thread.create run_dispatcher t);
  t

let reject t e =
  Mutex.lock t.lock;
  t.rejected <- t.rejected + 1;
  Mutex.unlock t.lock;
  if Trace.on () then begin
    Trace.count "service.admission.reject" 1;
    Trace.instant ~cat:"service"
      ~args:[ ("error", Trace.Str (Pmdp_error.to_string e)) ]
      "service.reject"
  end;
  Error e

let submit_async t (req : request) =
  match Registry.find req.app with
  | None ->
      reject t
        (Pmdp_error.Unresolved_external
           { name = req.app; context = "service: unknown app (see `pmdp list`)" })
  | Some app -> (
      match
        Plan_cache.get t.cache ~app ~scale:req.scale ~scheduler:req.scheduler ~machine:t.machine
      with
      | Error e -> reject t e
      | Ok (entry, hit) ->
          let plan = entry.Plan_cache.plan in
          let est =
            Tiled_exec.working_set_bytes plan
            + (Tiled_exec.scratch_bytes_per_worker plan * t.workers)
          in
          Mutex.lock t.lock;
          if t.stop then begin
            Mutex.unlock t.lock;
            reject t (Pmdp_error.Pool_shutdown { context = "service: submit after shutdown" })
          end
          else if t.unfinished >= t.max_inflight then begin
            let unfinished = t.unfinished in
            Mutex.unlock t.lock;
            reject t
              (Pmdp_error.Cancelled
                 {
                   reason =
                     Printf.sprintf "service admission: %d requests in flight (limit %d)"
                       unfinished t.max_inflight;
                 })
          end
          else if t.inflight_bytes + est > t.budget then begin
            let required = t.inflight_bytes + est in
            Mutex.unlock t.lock;
            reject t
              (Pmdp_error.Scratch_over_budget
                 {
                   required_bytes = required;
                   budget_bytes = t.budget;
                   context = "service admission: in-flight working sets + scratch arenas";
                 })
          end
          else begin
            let id = t.next_id in
            t.next_id <- t.next_id + 1;
            let p =
              {
                id;
                req;
                app_entry = app;
                entry;
                cache_hit = (match hit with `Hit -> true | `Miss -> false);
                est_bytes = est;
                submitted_at = Unix.gettimeofday ();
                trace_ts = (if Trace.on () then Trace.now () else Float.nan);
                phase = P_queued;
                outcome = None;
              }
            in
            Hashtbl.add t.tickets id p;
            Queue.add p t.queue;
            t.submitted <- t.submitted + 1;
            t.unfinished <- t.unfinished + 1;
            t.inflight_bytes <- t.inflight_bytes + est;
            Condition.signal t.work_ready;
            Mutex.unlock t.lock;
            Ok id
          end)

let await t id =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.tickets id with
  | None ->
      Mutex.unlock t.lock;
      Error
        (Pmdp_error.Plan_invalid
           {
             context = "service: await";
             reason = Printf.sprintf "unknown or already-collected request id %d" id;
           })
  | Some p ->
      while p.outcome = None do
        Condition.wait t.request_done t.lock
      done;
      Hashtbl.remove t.tickets id;
      let r = Option.get p.outcome in
      Mutex.unlock t.lock;
      r

let submit t req = match submit_async t req with Error e -> Error e | Ok id -> await t id

let status t id =
  Mutex.lock t.lock;
  let s =
    Option.map
      (fun p ->
        match (p.outcome, p.phase) with
        | Some (Ok _), _ -> Done
        | Some (Error e), _ -> Failed e
        | None, P_running -> Running
        | None, P_queued -> Queued)
      (Hashtbl.find_opt t.tickets id)
  in
  Mutex.unlock t.lock;
  s

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      submitted = t.submitted;
      completed = t.completed;
      failed = t.failed;
      rejected = t.rejected;
      batches = t.batches;
      batched_requests = t.batched_requests;
      executions = t.executions;
      queue_depth = Queue.length t.queue;
      inflight_bytes = t.inflight_bytes;
      cache = { Plan_cache.hits = 0; misses = 0; compiles = 0; entries = 0 };
    }
  in
  Mutex.unlock t.lock;
  { s with cache = Plan_cache.stats t.cache }

let shutdown t =
  Mutex.lock t.lock;
  if t.stop then Mutex.unlock t.lock
  else begin
    t.stop <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    Option.iter Thread.join t.dispatcher;
    Option.iter Pool.shutdown t.pool
  end

module Machine = Pmdp_machine.Machine
module Registry = Pmdp_apps.Registry
module Scheduler = Pmdp_core.Scheduler
module Tiled_exec = Pmdp_exec.Tiled_exec
module Buffer = Pmdp_exec.Buffer
module Pmdp_error = Pmdp_util.Pmdp_error
module Trace = Pmdp_trace.Trace

type request = Shard.request = {
  app : string;
  scale : int;
  scheduler : Scheduler.t;
  seed : int;
  priority : int;
  deadline : float option;
}

let request ?(scale = 32) ?(scheduler = Scheduler.Dp) ?(seed = 1) ?(priority = 0) ?deadline app =
  { app; scale; scheduler; seed; priority; deadline }

type response = Shard.response = {
  id : int;
  fingerprint : string;
  cache_hit : bool;
  batch_size : int;
  degraded : bool;
  wall_seconds : float;
  queue_seconds : float;
  checksum : float;
  results : (string * Buffer.t) list;
  max_abs_diff : float option;
}

type status = Queued | Running | Done | Failed of Pmdp_error.t

type counters = {
  submitted : int;
  completed : int;
  failed : int;
  rejected : int;
  shed : int;
  expired : int;
  batches : int;
  batched_requests : int;
  executions : int;
  restarts : int;
  queue_depth : int;
  inflight_bytes : int;
  cache : Plan_cache.stats;
}

type stats = {
  shards : counters array;
  total : counters;
  disk : Disk_cache.stats option;
  breaker : Breaker.counters;
  retune : Retune.counters option;
}

type health = {
  draining : bool;
  shards : Shard.health array;
  breaker : Breaker.counters;
  circuits : Breaker.snapshot list;
}

type t = {
  shared : Shard.shared;
  ring : Shard.Ring.t;
  shards : Shard.t array;
  disk : Disk_cache.t option;
  kernel : Pmdp_kernel.Native_exec.t option;
  max_inflight : int;
  tickets : (int, Shard.pending) Hashtbl.t;
  mutable next_id : int;
  mutable stop : bool;
  mutable draining : bool;  (* refusing new work while in-flight settles *)
  mutable unrouted_rejected : int;  (* rejections before a shard was chosen *)
}

let machine t = t.shared.Shard.machine
let mem_budget t = t.shared.Shard.budget
let shard_count t = Array.length t.shards
let shard_of_fingerprint t fp = Shard.Ring.route t.ring fp

(* ------------------------------------------------------------------ *)
(* Startup *)

(* Admit every plan the disk cache holds for this machine into the
   shard that will serve it, through the full gate.  Rejections
   (tampered files, stale analyzer) quarantine the envelope — the
   first request recompiles and re-stores — and are visible as
   [load_rejects] and [quarantined]. *)
let warm_load t disk =
  List.iter
    (fun (fp, (m : Disk_cache.meta)) ->
      let machine = t.shared.Shard.machine in
      if m.Disk_cache.machine = machine.Machine.name && m.Disk_cache.cores = machine.Machine.cores
      then
        match Registry.find m.Disk_cache.app with
        | None -> ()
        | Some app ->
            let expected =
              Plan_cache.fingerprint ~app:app.Registry.name ~scale:m.Disk_cache.scale
                ~scheduler:m.Disk_cache.scheduler ~machine
            in
            if expected = fp then
              match Disk_cache.load disk ~fingerprint:fp with
              | None -> ()
              | Some (ir, digest) -> (
                  let shard = t.shards.(shard_of_fingerprint t fp) in
                  match
                    Plan_cache.preload (Shard.cache shard) ~app ~scale:m.Disk_cache.scale
                      ~scheduler:m.Disk_cache.scheduler ~machine ~ir ~digest
                  with
                  | Ok _ -> ()
                  | Error _ ->
                      Disk_cache.quarantine disk ~fingerprint:fp
                        ~reason:"warm load: plan cache rejected the envelope"))
    (Disk_cache.scan disk)

let create ?(workers = 4) ?mem_budget ?(max_inflight = 64) ?(batch_window = 0.0)
    ?(validate = false) ?(shards = 1) ?(queue_limit = 128) ?cache_dir ?fault
    ?(breaker_threshold = 3) ?(breaker_cooldown = 5.0) ?(native = false) ?kernel_cache_dir
    ?(native_march = false) ?calib ?retune ~machine () =
  if workers < 1 then invalid_arg "Service.create: workers < 1";
  if max_inflight < 1 then invalid_arg "Service.create: max_inflight < 1";
  if shards < 1 then invalid_arg "Service.create: shards < 1";
  if queue_limit < 1 then invalid_arg "Service.create: queue_limit < 1";
  let budget =
    match mem_budget with Some b -> b | None -> Machine.default_mem_budget machine
  in
  Pmdp_baselines.Schedulers.install ();
  let disk = Option.map (fun dir -> Disk_cache.create ?fault ~dir ()) cache_dir in
  (* The retuner commits through the same paths as a fresh compile:
     the owning shard's cache slot (atomic swap) and the disk cache,
     so the tuned plan survives a restart. *)
  let retuner =
    Option.map
      (fun config ->
        Retune.create ?calib ~config ~machine
          ~commit:(fun (j : Retune.job) entry ->
            let swapped =
              Plan_cache.swap j.Retune.cache ~fingerprint:j.Retune.fingerprint ~entry
            in
            if swapped then
              Option.iter
                (fun d ->
                  let meta =
                    Disk_cache.meta_of_request ~app:j.Retune.app.Registry.name
                      ~scale:j.Retune.scale ~scheduler:j.Retune.scheduler ~machine
                  in
                  Disk_cache.store d meta ~fingerprint:j.Retune.fingerprint
                    ~ir:entry.Plan_cache.ir)
                disk;
            swapped)
          ())
      retune
  in
  let shared =
    {
      Shard.lock = Mutex.create ();
      request_done = Condition.create ();
      machine;
      budget;
      validate;
      breaker = Breaker.create ~threshold:breaker_threshold ~cooldown:breaker_cooldown ();
      fault;
      calib;
      retune = retuner;
      draining = false;
      unfinished = 0;
      inflight_bytes = 0;
      queued = 0;
    }
  in
  (* Naming a kernel cache dir is enough of an opt-in: persistence
     only makes sense when kernels run.  [native_march] implies the
     backend too — asking for vectorized kernels is asking for
     kernels. *)
  let kernel =
    if native || native_march || kernel_cache_dir <> None then
      Some
        (Pmdp_kernel.Native_exec.create ?fault ?cache_dir:kernel_cache_dir
           ~march:native_march ())
    else None
  in
  let t =
    {
      shared;
      ring = Shard.Ring.create ~shards;
      shards =
        Array.init shards (fun index ->
            Shard.create ~index ~shared ~workers ~batch_window ~queue_limit);
      disk;
      kernel;
      max_inflight;
      tickets = Hashtbl.create 64;
      next_id = 1;
      stop = false;
      draining = false;
      unrouted_rejected = 0;
    }
  in
  Option.iter Pmdp_kernel.Native_exec.install kernel;
  Option.iter (warm_load t) t.disk;
  t

let kernel_stats t = Option.map Pmdp_kernel.Native_exec.stats t.kernel
let kernel_cache_stats t = Option.bind t.kernel Pmdp_kernel.Native_exec.cache_stats

(* ------------------------------------------------------------------ *)
(* Admission *)

let reject t shard e =
  Mutex.lock t.shared.Shard.lock;
  (match shard with
  | Some s -> Shard.note_rejected s
  | None -> t.unrouted_rejected <- t.unrouted_rejected + 1);
  Mutex.unlock t.shared.Shard.lock;
  if Trace.on () then begin
    Trace.count "service.admission.reject" 1;
    Trace.instant ~cat:"service"
      ~args:[ ("error", Trace.Str (Pmdp_error.to_string e)) ]
      "service.reject"
  end;
  Error e

let submit_async t (req : request) =
  match Registry.find req.app with
  | None ->
      reject t None
        (Pmdp_error.Unresolved_external
           { name = req.app; context = "service: unknown app (see `pmdp list`)" })
  | Some app -> (
      let fp =
        Plan_cache.fingerprint ~app:app.Registry.name ~scale:req.scale ~scheduler:req.scheduler
          ~machine:t.shared.Shard.machine
      in
      let shard = t.shards.(shard_of_fingerprint t fp) in
      (* The breaker gates admission before any compile or queue work:
         an open circuit answers in O(1). *)
      match Breaker.check t.shared.Shard.breaker fp with
      | `Reject (failures, retry_after) ->
          reject t (Some shard)
            (Pmdp_error.Circuit_open
               {
                 fingerprint = fp;
                 failures;
                 retry_after;
                 context = "service admission: circuit breaker open for this plan";
               })
      | `Proceed | `Probe -> (
      let load =
        Option.map (fun d () -> Disk_cache.load d ~fingerprint:fp) t.disk
      in
      let store =
        Option.map
          (fun d ~ir ~digest:_ ->
            let meta =
              Disk_cache.meta_of_request ~app:app.Registry.name ~scale:req.scale
                ~scheduler:req.scheduler ~machine:t.shared.Shard.machine
            in
            Disk_cache.store d meta ~fingerprint:fp ~ir)
          t.disk
      in
      let quarantine =
        Option.map
          (fun d () ->
            Disk_cache.quarantine d ~fingerprint:fp
              ~reason:"submit: plan cache rejected the loaded envelope")
          t.disk
      in
      match
        Plan_cache.get (Shard.cache shard) ?load ?store ?quarantine
          ?calib:t.shared.Shard.calib ~app ~scale:req.scale ~scheduler:req.scheduler
          ~machine:t.shared.Shard.machine ()
      with
      | Error e ->
          (* A compile failure is a plan failure: it feeds the breaker
             so a poison plan trips open even though it never reaches
             a dispatcher. *)
          Breaker.failure t.shared.Shard.breaker fp;
          reject t (Some shard) e
      | Ok (entry, hit) ->
          let plan = entry.Plan_cache.plan in
          let est =
            Tiled_exec.working_set_bytes plan
            + (Tiled_exec.scratch_bytes_per_worker plan * Shard.workers shard)
          in
          Mutex.lock t.shared.Shard.lock;
          if t.stop then begin
            Mutex.unlock t.shared.Shard.lock;
            reject t (Some shard)
              (Pmdp_error.Pool_shutdown { context = "service: submit after shutdown" })
          end
          else if t.draining then begin
            let unfinished = t.shared.Shard.unfinished in
            Mutex.unlock t.shared.Shard.lock;
            reject t (Some shard)
              (Pmdp_error.Overloaded
                 {
                   shard = Shard.index shard;
                   depth = unfinished;
                   limit = t.max_inflight;
                   context = "service draining: not accepting new requests";
                 })
          end
          else if t.shared.Shard.unfinished >= t.max_inflight then begin
            let unfinished = t.shared.Shard.unfinished in
            Mutex.unlock t.shared.Shard.lock;
            reject t (Some shard)
              (Pmdp_error.Cancelled
                 {
                   reason =
                     Printf.sprintf "service admission: %d requests in flight (limit %d)"
                       unfinished t.max_inflight;
                 })
          end
          else if t.shared.Shard.inflight_bytes + est > t.shared.Shard.budget then begin
            let required = t.shared.Shard.inflight_bytes + est in
            Mutex.unlock t.shared.Shard.lock;
            reject t (Some shard)
              (Pmdp_error.Scratch_over_budget
                 {
                   required_bytes = required;
                   budget_bytes = t.shared.Shard.budget;
                   context = "service admission: in-flight working sets + scratch arenas";
                 })
          end
          else begin
            let id = t.next_id in
            t.next_id <- t.next_id + 1;
            let p =
              {
                Shard.id;
                req;
                app_entry = app;
                entry;
                cache_hit = (match hit with `Hit | `Loaded -> true | `Miss -> false);
                est_bytes = est;
                submitted_at = Unix.gettimeofday ();
                trace_ts = (if Trace.on () then Trace.now () else Float.nan);
                phase = Shard.P_queued;
                outcome = None;
              }
            in
            t.shared.Shard.unfinished <- t.shared.Shard.unfinished + 1;
            t.shared.Shard.inflight_bytes <- t.shared.Shard.inflight_bytes + est;
            match Shard.try_enqueue shard p with
            | Ok () ->
                Hashtbl.add t.tickets id p;
                Mutex.unlock t.shared.Shard.lock;
                Ok id
            | Error e ->
                (* Refused by backpressure: undo the admission charge. *)
                t.shared.Shard.unfinished <- t.shared.Shard.unfinished - 1;
                t.shared.Shard.inflight_bytes <- t.shared.Shard.inflight_bytes - est;
                Mutex.unlock t.shared.Shard.lock;
                if Trace.on () then Trace.count "service.shed" 1;
                reject t (Some shard) e
          end))

let await t id =
  Mutex.lock t.shared.Shard.lock;
  match Hashtbl.find_opt t.tickets id with
  | None ->
      Mutex.unlock t.shared.Shard.lock;
      Error
        (Pmdp_error.Plan_invalid
           {
             context = "service: await";
             reason = Printf.sprintf "unknown or already-collected request id %d" id;
           })
  | Some p ->
      while p.Shard.outcome = None do
        Condition.wait t.shared.Shard.request_done t.shared.Shard.lock
      done;
      Hashtbl.remove t.tickets id;
      let r = Option.get p.Shard.outcome in
      Mutex.unlock t.shared.Shard.lock;
      r

let submit t req = match submit_async t req with Error e -> Error e | Ok id -> await t id

let status t id =
  Mutex.lock t.shared.Shard.lock;
  let s =
    Option.map
      (fun (p : Shard.pending) ->
        match (p.Shard.outcome, p.Shard.phase) with
        | Some (Ok _), _ -> Done
        | Some (Error e), _ -> Failed e
        | None, Shard.P_running -> Running
        | None, Shard.P_queued -> Queued)
      (Hashtbl.find_opt t.tickets id)
  in
  Mutex.unlock t.shared.Shard.lock;
  s

(* ------------------------------------------------------------------ *)
(* Stats *)

let zero_cache =
  { Plan_cache.hits = 0; misses = 0; compiles = 0; loads = 0; load_rejects = 0; entries = 0 }

let add_cache (a : Plan_cache.stats) (b : Plan_cache.stats) =
  {
    Plan_cache.hits = a.Plan_cache.hits + b.Plan_cache.hits;
    misses = a.Plan_cache.misses + b.Plan_cache.misses;
    compiles = a.Plan_cache.compiles + b.Plan_cache.compiles;
    loads = a.Plan_cache.loads + b.Plan_cache.loads;
    load_rejects = a.Plan_cache.load_rejects + b.Plan_cache.load_rejects;
    entries = a.Plan_cache.entries + b.Plan_cache.entries;
  }

let zero_counters =
  {
    submitted = 0;
    completed = 0;
    failed = 0;
    rejected = 0;
    shed = 0;
    expired = 0;
    batches = 0;
    batched_requests = 0;
    executions = 0;
    restarts = 0;
    queue_depth = 0;
    inflight_bytes = 0;
    cache = zero_cache;
  }

let add_counters a b =
  {
    submitted = a.submitted + b.submitted;
    completed = a.completed + b.completed;
    failed = a.failed + b.failed;
    rejected = a.rejected + b.rejected;
    shed = a.shed + b.shed;
    expired = a.expired + b.expired;
    batches = a.batches + b.batches;
    batched_requests = a.batched_requests + b.batched_requests;
    executions = a.executions + b.executions;
    restarts = a.restarts + b.restarts;
    queue_depth = a.queue_depth + b.queue_depth;
    inflight_bytes = a.inflight_bytes + b.inflight_bytes;
    cache = add_cache a.cache b.cache;
  }

let stats t =
  Mutex.lock t.shared.Shard.lock;
  let raw = Array.map Shard.counters t.shards in
  let unrouted = t.unrouted_rejected in
  Mutex.unlock t.shared.Shard.lock;
  let shards =
    Array.map2
      (fun (c : Shard.counters) cache ->
        {
          submitted = c.Shard.submitted;
          completed = c.Shard.completed;
          failed = c.Shard.failed;
          rejected = c.Shard.rejected;
          shed = c.Shard.shed;
          expired = c.Shard.expired;
          batches = c.Shard.batches;
          batched_requests = c.Shard.batched_requests;
          executions = c.Shard.executions;
          restarts = c.Shard.restarts;
          queue_depth = c.Shard.queue_depth;
          inflight_bytes = c.Shard.inflight_bytes;
          cache;
        })
      raw
      (Array.map (fun s -> Plan_cache.stats (Shard.cache s)) t.shards)
  in
  let total = Array.fold_left add_counters zero_counters shards in
  let total = { total with rejected = total.rejected + unrouted } in
  {
    shards;
    total;
    disk = Option.map Disk_cache.stats t.disk;
    breaker = Breaker.counters t.shared.Shard.breaker;
    retune = Option.map Retune.counters t.shared.Shard.retune;
  }

let health t =
  Mutex.lock t.shared.Shard.lock;
  let shards = Array.map Shard.health t.shards in
  let draining = t.draining in
  Mutex.unlock t.shared.Shard.lock;
  {
    draining;
    shards;
    breaker = Breaker.counters t.shared.Shard.breaker;
    circuits =
      List.filter
        (fun (s : Breaker.snapshot) -> s.Breaker.state <> Breaker.Closed)
        (Breaker.snapshot t.shared.Shard.breaker);
  }

let shutdown t =
  Mutex.lock t.shared.Shard.lock;
  if t.stop then Mutex.unlock t.shared.Shard.lock
  else begin
    t.stop <- true;
    Array.iter Shard.signal_stop t.shards;
    Mutex.unlock t.shared.Shard.lock;
    Option.iter Retune.shutdown t.shared.Shard.retune;
    Array.iter Shard.join t.shards;
    (* The native runner is a process-wide hook; a service that
       installed it takes it back down with the shards. *)
    if t.kernel <> None then Pmdp_kernel.Native_exec.uninstall ()
  end

(* Graceful drain: refuse new admissions, wait (bounded) for in-flight
   work to settle, then shut down.  Whatever is still queued when the
   deadline passes settles as retryable [Overloaded] — the stop-path
   settle error is switched by [shared.draining] — so a client with a
   retry policy resubmits elsewhere.  OCaml's [Condition] has no timed
   wait, so the bounded wait is a poll loop. *)
let drain ?(timeout = 5.0) t =
  Mutex.lock t.shared.Shard.lock;
  if t.stop then Mutex.unlock t.shared.Shard.lock
  else begin
    t.draining <- true;
    Mutex.unlock t.shared.Shard.lock;
    if Trace.on () then Trace.count "service.drain" 1;
    let deadline = Unix.gettimeofday () +. Float.max 0.0 timeout in
    let rec wait () =
      Mutex.lock t.shared.Shard.lock;
      let left = t.shared.Shard.unfinished in
      Mutex.unlock t.shared.Shard.lock;
      if left > 0 && Unix.gettimeofday () < deadline then begin
        Thread.delay 0.01;
        wait ()
      end
    in
    wait ();
    Mutex.lock t.shared.Shard.lock;
    t.shared.Shard.draining <- true;
    Mutex.unlock t.shared.Shard.lock;
    shutdown t
  end

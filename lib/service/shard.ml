module Machine = Pmdp_machine.Machine
module Registry = Pmdp_apps.Registry
module Scheduler = Pmdp_core.Scheduler
module Tiled_exec = Pmdp_exec.Tiled_exec
module Resilient = Pmdp_exec.Resilient
module Reference = Pmdp_exec.Reference
module Buffer = Pmdp_exec.Buffer
module Pool = Pmdp_runtime.Pool
module Fault = Pmdp_runtime.Fault
module Pmdp_error = Pmdp_util.Pmdp_error
module Rng = Pmdp_util.Rng
module Trace = Pmdp_trace.Trace

(* ------------------------------------------------------------------ *)
(* Consistent-hash ring *)

module Ring = struct
  type t = { points : (string * int) array }

  let vnodes = 64

  (* Every hash input is a fixed string of the shard/vnode indices or
     the fingerprint — no randomness, no process state — so the same
     fingerprint routes to the same shard across restarts. *)
  let point shard vnode = Digest.to_hex (Digest.string (Printf.sprintf "pmdp-ring|%d|%d" shard vnode))
  let key fingerprint = Digest.to_hex (Digest.string ("pmdp-ring-key|" ^ fingerprint))

  let create ~shards =
    if shards < 1 then invalid_arg "Ring.create: shards < 1";
    let points =
      Array.init (shards * vnodes) (fun i ->
          let shard = i / vnodes and vnode = i mod vnodes in
          (point shard vnode, shard))
    in
    Array.sort compare points;
    { points }

  let route t fingerprint =
    let k = key fingerprint in
    let n = Array.length t.points in
    (* First point clockwise of the key; wrap to the first point. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if fst t.points.(mid) < k then search (mid + 1) hi else search lo mid
    in
    let i = search 0 n in
    snd t.points.(if i = n then 0 else i)
end

(* ------------------------------------------------------------------ *)
(* Request/response types (re-exported by Service) *)

type request = {
  app : string;
  scale : int;
  scheduler : Scheduler.t;
  seed : int;
  priority : int;
  deadline : float option;
}

type response = {
  id : int;
  fingerprint : string;
  cache_hit : bool;
  batch_size : int;
  degraded : bool;
  wall_seconds : float;
  queue_seconds : float;
  checksum : float;
  results : (string * Buffer.t) list;
  max_abs_diff : float option;
}

type phase = P_queued | P_running

type pending = {
  id : int;
  req : request;
  app_entry : Registry.app;
  entry : Plan_cache.entry;
  cache_hit : bool;
  est_bytes : int;  (** admission charge: working set + pool scratch *)
  submitted_at : float;
  trace_ts : float;  (** {!Trace.now} at submit; nan when tracing off *)
  mutable phase : phase;
  mutable outcome : (response, Pmdp_error.t) result option;
}

(* State shared by every shard of one service: the single lock, the
   cross-shard admission ledger, and the execution configuration. *)
type shared = {
  lock : Mutex.t;
  request_done : Condition.t;
  machine : Machine.t;
  budget : int;
  validate : bool;
  breaker : Breaker.t;
  fault : Fault.t option;
  calib : Pmdp_core.Cost_model.calibration option;
  retune : Retune.t option;
  mutable draining : bool;  (* drain deadline passed: settle leftovers Overloaded *)
  mutable unfinished : int;  (* admitted, not yet settled, all shards *)
  mutable inflight_bytes : int;
  mutable queued : int;  (* sum of queue lengths, for the depth gauge *)
}

type counters = {
  submitted : int;
  completed : int;
  failed : int;
  rejected : int;
  shed : int;
  expired : int;
  batches : int;
  batched_requests : int;
  executions : int;
  restarts : int;
  queue_depth : int;
  inflight_bytes : int;
}

type t = {
  index : int;
  shared : shared;
  cache : Plan_cache.t;
  pool : Pool.t option;
  workers : int;
  batch_window : float;
  queue_limit : int;
  work_ready : Condition.t;  (* per-shard, on shared.lock *)
  queue : pending Queue.t;
  refs : (string, (string * Buffer.t) list) Hashtbl.t;
      (* batch key -> reference results; dispatcher-thread only *)
  mutable stop : bool;
  mutable dispatcher : Thread.t option;  (* the supervisor thread *)
  mutable running : pending list;  (* batch owned by the dispatcher right now *)
  mutable alive : bool;  (* dispatcher up (false while the supervisor backs off) *)
  mutable restarts : int;
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable rejected : int;
  mutable shed : int;
  mutable expired : int;
  mutable batches : int;
  mutable batched_requests : int;
  mutable executions : int;
  mutable inflight_bytes : int;
}

let index t = t.index
let cache t = t.cache
let workers t = t.workers
let batch_key (p : pending) = p.entry.Plan_cache.fingerprint ^ ":" ^ string_of_int p.req.seed

let gauge_depth shared = if Trace.on () then Trace.gauge "service.queue_depth" shared.queued

(* ------------------------------------------------------------------ *)
(* Settlement (caller holds shared.lock) *)

let settle t (p : pending) outcome tally =
  p.outcome <- Some outcome;
  (match tally with
  | `Completed -> t.completed <- t.completed + 1
  | `Failed -> t.failed <- t.failed + 1
  | `Shed -> t.shed <- t.shed + 1
  | `Expired -> t.expired <- t.expired + 1);
  t.shared.unfinished <- t.shared.unfinished - 1;
  t.shared.inflight_bytes <- t.shared.inflight_bytes - p.est_bytes;
  t.inflight_bytes <- t.inflight_bytes - p.est_bytes

(* ------------------------------------------------------------------ *)
(* Graduated backpressure *)

(* Admit [p] into the bounded queue; caller holds shared.lock and has
   already charged the admission ledger.  When the queue is full, the
   lowest-priority queued request loses: if that is a queued victim
   with strictly lower priority than [p], the victim is shed (settled
   with [Overloaded]) and [p] takes its place; otherwise [p] itself is
   refused and the caller must undo its ledger charge. *)
let try_enqueue t (p : pending) =
  if Queue.length t.queue < t.queue_limit then begin
    Queue.add p t.queue;
    t.submitted <- t.submitted + 1;
    t.inflight_bytes <- t.inflight_bytes + p.est_bytes;
    t.shared.queued <- t.shared.queued + 1;
    gauge_depth t.shared;
    Condition.signal t.work_ready;
    Ok ()
  end
  else begin
    let victim = ref None in
    Queue.iter
      (fun q ->
        match !victim with
        | None when q.req.priority < p.req.priority -> victim := Some q
        | Some v when q.req.priority < v.req.priority -> victim := Some q
        | _ -> ())
      t.queue;
    let overloaded context =
      Pmdp_error.Overloaded
        { shard = t.index; depth = Queue.length t.queue; limit = t.queue_limit; context }
    in
    match !victim with
    | None -> Error (overloaded "service backpressure: request refused")
    | Some v ->
        (* Rebuild the queue without the victim (Queue has no remove). *)
        let rest = Queue.create () in
        let dropped = ref false in
        Queue.iter
          (fun q -> if (not !dropped) && q.id = v.id then dropped := true else Queue.add q rest)
          t.queue;
        Queue.clear t.queue;
        Queue.transfer rest t.queue;
        settle t v (Error (overloaded "service backpressure: shed for a higher-priority request"))
          `Shed;
        Queue.add p t.queue;
        t.submitted <- t.submitted + 1;
        t.inflight_bytes <- t.inflight_bytes + p.est_bytes;
        gauge_depth t.shared;
        if Trace.on () then Trace.count "service.shed" 1;
        Condition.broadcast t.shared.request_done;
        Condition.signal t.work_ready;
        Ok ()
  end

(* Split [batch] into still-live requests and ones whose deadline
   passed while they were queued; caller holds shared.lock.  Expired
   requests are settled on the spot. *)
let drop_expired t batch =
  let now = Unix.gettimeofday () in
  let live, dead =
    List.partition
      (fun p ->
        match p.req.deadline with None -> true | Some d -> now -. p.submitted_at <= d)
      batch
  in
  List.iter
    (fun p ->
      let waited = now -. p.submitted_at in
      let deadline = Option.value ~default:0.0 p.req.deadline in
      settle t p
        (Error
           (Pmdp_error.Deadline_exceeded
              { deadline; waited; context = "service dispatch: request expired in queue" }))
        `Expired;
      if Trace.on () then Trace.count "service.shed" 1)
    dead;
  if dead <> [] then Condition.broadcast t.shared.request_done;
  live

(* ------------------------------------------------------------------ *)
(* Dispatcher *)

(* Pull every queued request with batch key [key]; caller holds the
   lock.  Matches are marked running on the way out. *)
let drain_matching t key =
  let matched = ref [] in
  let rest = Queue.create () in
  Queue.iter
    (fun p ->
      if batch_key p = key then begin
        p.phase <- P_running;
        matched := p :: !matched
      end
      else Queue.add p rest)
    t.queue;
  Queue.clear t.queue;
  Queue.transfer rest t.queue;
  let matched = List.rev !matched in
  t.shared.queued <- t.shared.queued - List.length matched;
  gauge_depth t.shared;
  matched

(* Reference results per batch key, memoized so validation costs one
   reference run per distinct request, not one per request.
   Dispatcher-thread only. *)
let reference_for t key (p : pending) =
  match Hashtbl.find_opt t.refs key with
  | Some r -> r
  | None ->
      let pipeline = Tiled_exec.pipeline p.entry.Plan_cache.plan in
      let inputs = p.app_entry.Registry.inputs ~seed:p.req.seed pipeline in
      let r = Reference.run pipeline ~inputs in
      if Hashtbl.length t.refs < 128 then Hashtbl.add t.refs key r;
      r

let execute_batch t key (batch : pending list) =
  (* A firing [Shard_kill] spec raises out of the dispatcher thread
     here, before any request settles — exactly the window the
     supervisor must cover. *)
  Option.iter Fault.shard_tick t.shared.fault;
  let p0 = List.hd batch in
  let size = List.length batch in
  let pipeline = Tiled_exec.pipeline p0.entry.Plan_cache.plan in
  let inputs = p0.app_entry.Registry.inputs ~seed:p0.req.seed pipeline in
  let exec_start = Unix.gettimeofday () in
  let run () =
    Resilient.run_plan ?pool:t.pool ?fault:t.shared.fault ~machine:t.shared.machine
      ~mem_budget:t.shared.budget p0.entry.Plan_cache.plan ~inputs
  in
  let result =
    if not (Trace.on ()) then run ()
    else
      Trace.with_span ~cat:"service"
        ~args:
          [
            ("app", Trace.Str p0.req.app);
            ("shard", Trace.Int t.index);
            ("fingerprint", Trace.Str (String.sub key 0 (min 12 (String.length key))));
            ("requests", Trace.Int size);
          ]
        "service.execute" run
  in
  let wall = Unix.gettimeofday () -. exec_start in
  if Trace.on () && size > 1 then begin
    Trace.count "service.batch" 1;
    Trace.count "service.batch.requests" size
  end;
  (* Per-execution kernel accounting: answered by the native step, or
     native attempted and the chain fell back to the interpreter.  An
     execution with no native attempt (no backend installed) counts as
     neither. *)
  (if Trace.on () then
     match result with
     | Error _ -> ()
     | Ok { Resilient.attempts; _ } -> (
         match List.rev attempts with
         | (step, None) :: _ when Resilient.step_name step = "native" ->
             Trace.count "service.kernel.native" 1
         | _ ->
             if
               List.exists
                 (fun (st, e) -> Resilient.step_name st = "native" && e <> None)
                 attempts
             then Trace.count "service.kernel.fallback" 1));
  let outcome_of p =
    match result with
    | Error e -> Error e
    | Ok { Resilient.results; degraded; attempts = _ } ->
        let checksum = List.fold_left (fun acc (_, b) -> acc +. Buffer.checksum b) 0.0 results in
        let max_abs_diff =
          if not t.shared.validate then None
          else
            let reference = reference_for t key p0 in
            Some
              (List.fold_left
                 (fun acc (n, b) ->
                   match List.assoc_opt n reference with
                   | Some r -> Float.max acc (Buffer.max_abs_diff b r)
                   | None -> acc)
                 0.0 results)
        in
        Ok
          {
            id = p.id;
            fingerprint = p.entry.Plan_cache.fingerprint;
            cache_hit = p.cache_hit;
            batch_size = size;
            degraded;
            wall_seconds = wall;
            queue_seconds = Float.max 0.0 (exec_start -. p.submitted_at);
            checksum;
            results;
            max_abs_diff;
          }
  in
  (* Feed the circuit breaker one verdict per execution, not one per
     coalesced request (leaf lock; take it before shared.lock). *)
  (match result with
  | Ok _ -> Breaker.success t.shared.breaker p0.entry.Plan_cache.fingerprint
  | Error _ -> Breaker.failure t.shared.breaker p0.entry.Plan_cache.fingerprint);
  (* Feed the online retuner one latency sample per successful
     execution (its own leaf lock); the job thunk is only forced when
     this sample makes the fingerprint hot. *)
  (match (t.shared.retune, result) with
  | Some r, Ok _ ->
      Retune.observe r ~fingerprint:p0.entry.Plan_cache.fingerprint ~wall ~job:(fun () ->
          {
            Retune.fingerprint = p0.entry.Plan_cache.fingerprint;
            app = p0.app_entry;
            scale = p0.req.scale;
            scheduler = p0.req.scheduler;
            input_seed = p0.req.seed;
            cache = t.cache;
            entry = p0.entry;
          })
  | _ -> ());
  Mutex.lock t.shared.lock;
  t.executions <- t.executions + 1;
  if size > 1 then begin
    t.batches <- t.batches + 1;
    t.batched_requests <- t.batched_requests + size
  end;
  List.iter
    (fun p ->
      let o = outcome_of p in
      settle t p o (match o with Ok _ -> `Completed | Error _ -> `Failed))
    batch;
  t.running <- [];
  Condition.broadcast t.shared.request_done;
  Mutex.unlock t.shared.lock;
  if Trace.on () then
    List.iter
      (fun p ->
        Trace.count "service.request" 1;
        if not (Float.is_nan p.trace_ts) then
          Trace.complete ~cat:"service"
            ~args:
              [
                ("id", Trace.Int p.id);
                ("app", Trace.Str p.req.app);
                ("shard", Trace.Int t.index);
                ("cache_hit", Trace.Bool p.cache_hit);
                ("batch", Trace.Int size);
              ]
            ~name:"service.request" ~ts:p.trace_ts ())
      batch

let run_dispatcher t =
  let continue = ref true in
  while !continue do
    Mutex.lock t.shared.lock;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.work_ready t.shared.lock
    done;
    if t.stop then begin
      (* Drain: whatever is still queued fails typed, then exit.  A
         graceful drain that ran out of time settles the remainder as
         retryable [Overloaded]; a plain shutdown as [Cancelled]. *)
      let leftover context =
        if t.shared.draining then
          Pmdp_error.Overloaded
            { shard = t.index; depth = Queue.length t.queue; limit = t.queue_limit; context }
        else Pmdp_error.Cancelled { reason = "service shutdown" }
      in
      Queue.iter
        (fun p ->
          settle t p (Error (leftover "service drain: request still queued at the deadline"))
            `Failed)
        t.queue;
      t.shared.queued <- t.shared.queued - Queue.length t.queue;
      Queue.clear t.queue;
      Condition.broadcast t.shared.request_done;
      Mutex.unlock t.shared.lock;
      continue := false
    end
    else begin
      let head = Queue.pop t.queue in
      head.phase <- P_running;
      t.shared.queued <- t.shared.queued - 1;
      let key = batch_key head in
      let batch = drop_expired t (head :: drain_matching t key) in
      (* From here until settlement this batch exists only in the
         dispatcher; publish it so the supervisor can settle it if the
         thread dies mid-execution. *)
      t.running <- batch;
      Mutex.unlock t.shared.lock;
      (* Linger so same-key requests arriving right now can share the
         execution; anything that queued while we slept is collected
         in one more sweep. *)
      let batch =
        if t.batch_window <= 0.0 || batch = [] then batch
        else begin
          Thread.delay t.batch_window;
          Mutex.lock t.shared.lock;
          let more = drop_expired t (drain_matching t key) in
          let batch = batch @ more in
          t.running <- batch;
          Mutex.unlock t.shared.lock;
          batch
        end
      in
      if batch <> [] then execute_batch t key batch
      else begin
        Mutex.lock t.shared.lock;
        t.running <- [];
        Mutex.unlock t.shared.lock
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Supervision *)

(* The dispatcher runs under a supervisor thread (Pool's self-heal,
   one level up): when the dispatcher dies — an injected Shard_kill, a
   bug, anything an execution raised that Resilient did not fold into
   a result — the supervisor settles the batch the dispatcher owned
   with a typed retryable error, backs off with seeded jitter, and
   respawns.  A clean stop-driven exit ends supervision. *)
let supervise t =
  let rng = Rng.create (0x5eed + t.index) in
  let continue = ref true in
  while !continue do
    let crashed = ref None in
    let th =
      Thread.create
        (fun () -> try run_dispatcher t with e -> crashed := Some (Printexc.to_string e))
        ()
    in
    Thread.join th;
    match !crashed with
    | None -> continue := false
    | Some detail ->
        Mutex.lock t.shared.lock;
        t.alive <- false;
        t.restarts <- t.restarts + 1;
        let orphans = List.filter (fun p -> Option.is_none p.outcome) t.running in
        List.iter
          (fun p ->
            settle t p
              (Error
                 (Pmdp_error.Worker_crash
                    {
                      worker = -1;
                      detail =
                        Printf.sprintf "shard %d dispatcher died: %s (respawning)" t.index
                          detail;
                    }))
              `Failed)
          orphans;
        t.running <- [];
        if orphans <> [] then Condition.broadcast t.shared.request_done;
        Mutex.unlock t.shared.lock;
        if Trace.on () then Trace.count "service.shard.restart" 1;
        (* Jittered exponential backoff, cut short by stop: the queue
           is intact, so a stop-time respawn still drains it. *)
        let d = Float.min 1.0 (0.025 *. (2.0 ** float_of_int (min 5 (t.restarts - 1)))) in
        let d = d *. (0.5 +. Rng.float rng 0.5) in
        let slept = ref 0.0 in
        while !slept < d && not t.stop do
          Thread.delay 0.005;
          slept := !slept +. 0.005
        done;
        Mutex.lock t.shared.lock;
        t.alive <- true;
        Mutex.unlock t.shared.lock
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let create ~index ~shared ~workers ~batch_window ~queue_limit =
  if workers < 1 then invalid_arg "Shard.create: workers < 1";
  if queue_limit < 1 then invalid_arg "Shard.create: queue_limit < 1";
  let t =
    {
      index;
      shared;
      cache = Plan_cache.create ();
      pool = (if workers > 1 then Some (Pool.create workers) else None);
      workers;
      batch_window;
      queue_limit;
      work_ready = Condition.create ();
      queue = Queue.create ();
      refs = Hashtbl.create 8;
      stop = false;
      dispatcher = None;
      running = [];
      alive = true;
      restarts = 0;
      submitted = 0;
      completed = 0;
      failed = 0;
      rejected = 0;
      shed = 0;
      expired = 0;
      batches = 0;
      batched_requests = 0;
      executions = 0;
      inflight_bytes = 0;
    }
  in
  t.dispatcher <- Some (Thread.create supervise t);
  t

let note_rejected t = t.rejected <- t.rejected + 1

let signal_stop t =
  t.stop <- true;
  Condition.broadcast t.work_ready

let join t =
  Option.iter Thread.join t.dispatcher;
  t.dispatcher <- None;
  Option.iter Pool.shutdown t.pool

let counters t =
  {
    submitted = t.submitted;
    completed = t.completed;
    failed = t.failed;
    rejected = t.rejected;
    shed = t.shed;
    expired = t.expired;
    batches = t.batches;
    batched_requests = t.batched_requests;
    executions = t.executions;
    restarts = t.restarts;
    queue_depth = Queue.length t.queue;
    inflight_bytes = t.inflight_bytes;
  }

type health = {
  shard : int;
  alive : bool;
  queue_depth : int;
  running : int;
  restarts : int;
}

let health t =
  {
    shard = t.index;
    alive = t.alive;
    queue_depth = Queue.length t.queue;
    running = List.length (List.filter (fun p -> Option.is_none p.outcome) t.running);
    restarts = t.restarts;
  }

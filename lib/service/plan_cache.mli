(** Compiled-plan cache: the amortization layer of the execution
    service.

    Every [pmdp run] pays the full DSL → analysis → DP-grouping →
    compile cost and exits; a service must not.  The cache memoizes
    the {!Pmdp_core.Schedule_spec.t} and lowered
    {!Pmdp_exec.Tiled_exec.plan} per {!fingerprint} of the
    plan-relevant request bindings — (app name, param bindings,
    scheduler, machine) — so repeat requests skip grouping and
    compilation entirely.

    Concurrency: the cache is shared across domains and threads.  A
    key is compiled exactly once — the first requester claims the slot
    and compiles outside the lock while later requesters for the same
    key block until the slot is ready; they are counted as hits
    (they did not compile).  Failed compiles are cached too (the same
    schedule fails the same way), so the one-compile-per-key
    invariant holds unconditionally.

    External plan sources: {!get} accepts optional [load]/[store]
    hooks so a persistent store (see {!Disk_cache}) can supply a
    previously compiled IR — admitted through the same gate as every
    other path into a slot — and receive freshly compiled ones, and
    {!preload} warm-loads a plan eagerly at startup.

    Observability: hits and misses are recorded as the
    [service.cache.hit] / [service.cache.miss] trace counters
    ({!Pmdp_trace.Trace.count}) and mirrored, with compile/load and
    entry counts, in mutex-protected {!stats}. *)

type entry = {
  fingerprint : string;
  resolved : Pmdp_core.Scheduler.t;
      (** after {!Pmdp_core.Scheduler.for_pipeline} *)
  spec : Pmdp_core.Schedule_spec.t option;
      (** [Some] when the plan was scheduled in this process; [None]
          when the IR was admitted from an external source (the spec
          never crossed the serialization boundary) *)
  plan : Pmdp_exec.Tiled_exec.plan;
  ir : Pmdp_plan.t;  (** the serializable IR the plan was instantiated from *)
  digest : string;  (** {!Pmdp_plan.digest} of [ir] *)
}

type t

val create : unit -> t

val fingerprint :
  app:string ->
  scale:int ->
  scheduler:Pmdp_core.Scheduler.t ->
  machine:Pmdp_machine.Machine.t ->
  string
(** Stable hex digest of the plan-relevant bindings.  Identical
    bindings always produce the same fingerprint (within and across
    processes); changing any of app, scale, scheduler, machine name,
    or machine core count changes it. *)

val get :
  t ->
  ?load:(unit -> (Pmdp_plan.t * string) option) ->
  ?store:(ir:Pmdp_plan.t -> digest:string -> unit) ->
  ?quarantine:(unit -> unit) ->
  ?calib:Pmdp_core.Cost_model.calibration ->
  app:Pmdp_apps.Registry.app ->
  scale:int ->
  scheduler:Pmdp_core.Scheduler.t ->
  machine:Pmdp_machine.Machine.t ->
  unit ->
  (entry * [ `Hit | `Miss | `Loaded ], Pmdp_util.Pmdp_error.t) result
(** The memoized schedule + plan for the request's fingerprint,
    compiling it (once, whatever the concurrency) on first use.
    [`Hit] is a ready slot (including waiters that blocked on an
    in-flight build).  The one requester per key that finds the slot
    empty first consults [load] (if given): an IR it returns that
    passes the admission gate becomes the entry with outcome
    [`Loaded] — no compilation; one that fails the gate is counted as
    a load reject, reported to [quarantine] (so the source can move
    the bad envelope aside), and discarded.  Otherwise the requester
    compiles
    ([`Miss]) and, on success, offers the fresh IR to [store].
    [calib] threads fitted cost-model weights into the scheduling
    config ({!Pmdp_core.Cost_model.config_of_machine}); it does not
    enter the fingerprint — a server runs one calibration
    process-wide, and cached plans swap via {!swap} when the online
    retuner wins, so keys stay stable across calibration updates.
    Never raises: compile failures surface as the cached typed error.
    A slot only becomes [Ready] after its plan IR passes the digest
    check and the whole-plan static analyzer
    ({!Pmdp_verify.Verify.check_plan_result}) — the gate applies to
    loaded plans exactly as to compiled ones. *)

val preload :
  t ->
  app:Pmdp_apps.Registry.app ->
  scale:int ->
  scheduler:Pmdp_core.Scheduler.t ->
  machine:Pmdp_machine.Machine.t ->
  ir:Pmdp_plan.t ->
  digest:string ->
  (unit, Pmdp_util.Pmdp_error.t) result
(** Eagerly admit an externally supplied IR into the slot for these
    bindings (startup warm-load).  The full gate applies.  A rejection
    — tampered digest, analyzer failure — leaves the slot {e empty},
    not poisoned: the first real request recompiles from scratch.
    An already-occupied slot is left alone ([Ok ()]).  Does not count
    as a hit or miss; successes count in [loads], rejections in
    [load_rejects]. *)

val load :
  pipeline:Pmdp_dsl.Pipeline.t ->
  ir:Pmdp_plan.t ->
  digest:string ->
  (Pmdp_exec.Tiled_exec.plan, Pmdp_util.Pmdp_error.t) result
(** Admit an externally supplied plan IR (e.g. parsed from a
    {!Pmdp_plan.read} file) through the same gate [get] applies before
    marking a slot [Ready]: the claimed [digest] must equal
    [Pmdp_plan.digest ir] (otherwise the plan was tampered with or
    corrupted) and the whole-plan static analyzer must report no
    errors; only then is the IR instantiated.  Every rejection is a
    typed [Plan_invalid] — nothing is ever executed from a plan that
    fails the gate. *)

val swap : t -> fingerprint:string -> entry:entry -> bool
(** Atomically replace the Ready entry for [fingerprint] — the online
    retuner's commit.  [false] (and no change) unless the slot
    currently holds a successfully built entry: a Building slot has a
    requester waiting on it and an absent slot was never served here,
    so a late-arriving tuner loses cleanly.  The caller is responsible
    for having passed the new entry's IR through the same admission
    gate as every other path ({!load}). *)

type stats = {
  hits : int;  (** requests served from a ready slot (incl. waiters) *)
  misses : int;  (** requests that claimed an empty slot *)
  compiles : int;  (** compilations actually executed *)
  loads : int;  (** entries admitted from an external source *)
  load_rejects : int;  (** external IRs that failed the admission gate *)
  entries : int;  (** ready slots currently cached *)
}

val stats : t -> stats

val clear : t -> unit
(** Drop ready entries (counters are kept).  Slots currently being
    compiled are left alone and land in the cache when done. *)

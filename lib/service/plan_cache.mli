(** Compiled-plan cache: the amortization layer of the execution
    service.

    Every [pmdp run] pays the full DSL → analysis → DP-grouping →
    compile cost and exits; a service must not.  The cache memoizes
    the {!Pmdp_core.Schedule_spec.t} and lowered
    {!Pmdp_exec.Tiled_exec.plan} per {!fingerprint} of the
    plan-relevant request bindings — (app name, param bindings,
    scheduler, machine) — so repeat requests skip grouping and
    compilation entirely.

    Concurrency: the cache is shared across domains and threads.  A
    key is compiled exactly once — the first requester claims the slot
    and compiles outside the lock while later requesters for the same
    key block until the slot is ready; they are counted as hits
    (they did not compile).  Failed compiles are cached too (the same
    schedule fails the same way), so the one-compile-per-key
    invariant holds unconditionally.

    Observability: hits and misses are recorded as the
    [service.cache.hit] / [service.cache.miss] trace counters
    ({!Pmdp_trace.Trace.count}) and mirrored, with compile and entry
    counts, in mutex-protected {!stats}. *)

type entry = {
  fingerprint : string;
  resolved : Pmdp_core.Scheduler.t;
      (** after {!Pmdp_core.Scheduler.for_pipeline} *)
  spec : Pmdp_core.Schedule_spec.t;
  plan : Pmdp_exec.Tiled_exec.plan;
  ir : Pmdp_plan.t;  (** the serializable IR the plan was instantiated from *)
  digest : string;  (** {!Pmdp_plan.digest} of [ir] *)
}

type t

val create : unit -> t

val fingerprint :
  app:string ->
  scale:int ->
  scheduler:Pmdp_core.Scheduler.t ->
  machine:Pmdp_machine.Machine.t ->
  string
(** Stable hex digest of the plan-relevant bindings.  Identical
    bindings always produce the same fingerprint (within and across
    processes); changing any of app, scale, scheduler, machine name,
    or machine core count changes it. *)

val get :
  t ->
  app:Pmdp_apps.Registry.app ->
  scale:int ->
  scheduler:Pmdp_core.Scheduler.t ->
  machine:Pmdp_machine.Machine.t ->
  (entry * [ `Hit | `Miss ], Pmdp_util.Pmdp_error.t) result
(** The memoized schedule + plan for the request's fingerprint,
    compiling it (once, whatever the concurrency) on first use.
    [`Miss] marks the one requester per key that compiled; waiters
    that blocked on an in-flight compile return [`Hit] like any
    later requester.  Never raises: compile failures surface as the
    cached typed error.  A slot only becomes [Ready] after its plan
    IR passes the digest check and the whole-plan static analyzer
    ({!Pmdp_verify.Verify.check_plan_result}). *)

val load :
  pipeline:Pmdp_dsl.Pipeline.t ->
  ir:Pmdp_plan.t ->
  digest:string ->
  (Pmdp_exec.Tiled_exec.plan, Pmdp_util.Pmdp_error.t) result
(** Admit an externally supplied plan IR (e.g. parsed from a
    {!Pmdp_plan.read} file) through the same gate [get] applies before
    marking a slot [Ready]: the claimed [digest] must equal
    [Pmdp_plan.digest ir] (otherwise the plan was tampered with or
    corrupted) and the whole-plan static analyzer must report no
    errors; only then is the IR instantiated.  Every rejection is a
    typed [Plan_invalid] — nothing is ever executed from a plan that
    fails the gate. *)

type stats = {
  hits : int;  (** requests served from a ready slot (incl. waiters) *)
  misses : int;  (** requests that claimed an empty slot *)
  compiles : int;  (** compilations actually executed; = distinct keys *)
  entries : int;  (** ready slots currently cached *)
}

val stats : t -> stats

val clear : t -> unit
(** Drop ready entries (counters are kept).  Slots currently being
    compiled are left alone and land in the cache when done. *)

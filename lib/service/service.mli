(** The pipeline-execution service: a long-running layer over the
    whole existing stack — a fleet of dispatcher {!Shard}s, each with
    its own {!Plan_cache} in front of the
    DSL→analysis→grouping→compile path, admission control and
    graduated backpressure in front of the memory budget and the
    bounded per-shard queues, same-pipeline request batching in front
    of {!Pmdp_exec.Resilient.run_plan} on each shard's persistent
    {!Pmdp_runtime.Pool}, and optionally a persistent {!Disk_cache} so
    compiled plans survive restarts.

    This is the in-process API; [pmdp serve] exposes it over a
    Unix-domain or TCP socket ({!Server}, {!Transport}, {!Protocol})
    and [pmdp load] drives either form ({!Load}).

    {2 Lifecycle of a request}

    + {b Routing}: the request's plan fingerprint is hashed onto the
      consistent ring ({!Shard.Ring}); everything after admission
      happens on that one shard.  Routing is deterministic across
      processes, so same-plan requests always share a shard — and
      therefore still coalesce into one execution — however many
      shards the service runs.
    + {b Admission} ({!submit_async}, on the caller's thread): the app
      name is resolved against {!Pmdp_apps.Registry}; the plan comes
      from the shard's {!Plan_cache} (compiled at most once per
      fingerprint, or admitted from the disk cache without
      compiling); the plan's memory demand — working set plus
      per-worker scratch — is charged against the service-wide
      budget.  Over-budget requests are rejected with the typed
      [Scratch_over_budget], too many in flight with [Cancelled]; a
      full shard queue refuses with [Overloaded] unless the incoming
      request outranks a queued one, in which case the {e victim} is
      shed with [Overloaded] instead.  All rejections count the
      [service.admission.reject] trace counter; sheds count
      [service.shed].
    + {b Batching} (shard dispatcher thread): queued requests that
      share a batch key (plan fingerprint + input seed) execute as one
      {!Pmdp_exec.Resilient.run_plan} over the shard's pool.
      Requests whose [deadline] passed while queued are dropped with
      [Deadline_exceeded] instead of executed.
    + {b Completion}: every batched request receives the same
      {!response} (shared, read-only result buffers) with its own id
      and queue time; {!await} collects it.

    Threads: callers may submit from any thread or domain.  All
    execution happens on the owning shard's dispatcher thread;
    parallelism comes from each shard's worker domains. *)

type request = Shard.request = {
  app : string;  (** registry name or short code, e.g. "unsharp"/"UM" *)
  scale : int;  (** divides the paper's image extents *)
  scheduler : Pmdp_core.Scheduler.t;
  seed : int;  (** input-synthesis seed ({!Pmdp_apps.Registry.app}) *)
  priority : int;  (** higher outranks lower under backpressure *)
  deadline : float option;  (** drop rather than execute after this many seconds queued *)
}

val request :
  ?scale:int ->
  ?scheduler:Pmdp_core.Scheduler.t ->
  ?seed:int ->
  ?priority:int ->
  ?deadline:float ->
  string ->
  request
(** Request for an app by name; [scale] defaults to 32, [scheduler]
    to [Dp], [seed] to 1, [priority] to 0, [deadline] to none. *)

type response = Shard.response = {
  id : int;
  fingerprint : string;  (** plan-cache key the request hashed to *)
  cache_hit : bool;  (** plan served without compiling (memory or disk) *)
  batch_size : int;  (** requests sharing this execution (>= 1) *)
  degraded : bool;  (** the resilient chain needed a fallback step *)
  wall_seconds : float;  (** execution wall-clock of the shared run *)
  queue_seconds : float;  (** this request's submit → execution-start wait *)
  checksum : float;  (** sum of {!Pmdp_exec.Buffer.checksum} over live-outs *)
  results : (string * Pmdp_exec.Buffer.t) list;
      (** live-out buffers, shared verbatim across the batch — treat
          as read-only *)
  max_abs_diff : float option;
      (** vs {!Pmdp_exec.Reference.run}, when the service was created
          with [~validate:true]; [0.0] = bitwise-equal *)
}

type status = Queued | Running | Done | Failed of Pmdp_util.Pmdp_error.t
(** Admission rejections never get an id — the typed error goes
    straight back to the submitter — so there is no rejected phase. *)

type counters = {
  submitted : int;  (** requests admitted (to this shard) *)
  completed : int;
  failed : int;  (** admitted but every fallback step died *)
  rejected : int;  (** refused at admission *)
  shed : int;  (** evicted from the queue by a higher-priority request *)
  expired : int;  (** dropped: deadline passed while queued *)
  batches : int;  (** executions that served more than one request *)
  batched_requests : int;  (** requests served by those executions *)
  executions : int;  (** Resilient.run_plan calls issued *)
  restarts : int;  (** dispatcher respawns by this shard's supervisor *)
  queue_depth : int;  (** currently queued (not yet executing) *)
  inflight_bytes : int;  (** admission-charged bytes currently in flight *)
  cache : Plan_cache.stats;
}
(** One shard's ledger; also the shape of the cross-shard rollup. *)

type stats = {
  shards : counters array;  (** indexed by shard *)
  total : counters;
      (** field-wise sum over [shards], plus rejections that happened
          before a shard was chosen (unknown app) *)
  disk : Disk_cache.stats option;  (** when created with [?cache_dir] *)
  breaker : Breaker.counters;  (** fleet-wide circuit-breaker ledger *)
  retune : Retune.counters option;  (** when created with [?retune] *)
}

type health = {
  draining : bool;  (** a graceful drain is in progress (or done) *)
  shards : Shard.health array;  (** per-shard liveness/queue/restarts *)
  breaker : Breaker.counters;
  circuits : Breaker.snapshot list;  (** only open/half-open circuits *)
}

type t

val create :
  ?workers:int ->
  ?mem_budget:int ->
  ?max_inflight:int ->
  ?batch_window:float ->
  ?validate:bool ->
  ?shards:int ->
  ?queue_limit:int ->
  ?cache_dir:string ->
  ?fault:Pmdp_runtime.Fault.t ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:float ->
  ?native:bool ->
  ?kernel_cache_dir:string ->
  ?native_march:bool ->
  ?calib:Pmdp_core.Cost_model.calibration ->
  ?retune:Retune.config ->
  machine:Pmdp_machine.Machine.t ->
  unit ->
  t
(** Start a service of [shards] (default 1) dispatcher shards, each
    with its own plan cache, bounded queue, and persistent pool of
    [workers] (default 4) domains.  [mem_budget] (default
    {!Pmdp_machine.Machine.default_mem_budget}) bounds admission
    across the whole fleet and the resilient driver's pre-flight
    guard.  [max_inflight] (default 64) bounds
    admitted-but-unfinished requests fleet-wide; [queue_limit]
    (default 128) bounds each shard's queue — beyond it, graduated
    backpressure sheds by priority.  [batch_window] (default 0,
    seconds) is how long a dispatcher lingers after picking a request
    to let same-key requests join its batch; 0 still batches whatever
    already queued up behind a running execution.  [validate]
    (default false) checks every batch's results against the
    reference executor (memoized per batch key) and fills
    [max_abs_diff].  [cache_dir] enables the persistent disk cache:
    plans already there are warm-loaded (through the admission gate)
    at startup, and every fresh compile is written back; envelopes the
    gate rejects are quarantined to [<fingerprint>.bad].  [fault]
    threads chaos injection through the whole stack: [Shard_kill]
    fires at dispatcher batch starts, [Torn_write]/[Corrupt_write] at
    disk-cache stores, and the same fault reaches
    [Resilient.run_plan] so worker kills and tile crashes hit service
    executions.  [breaker_threshold] (default 3) consecutive
    compile/execution failures of one fingerprint trip its circuit
    open; [breaker_cooldown] (default 5s) later a half-open probe is
    admitted.  [native] (default false) — or naming a
    [kernel_cache_dir] — creates a {!Pmdp_kernel.Native_exec} backend
    and installs it as the resilient chain's first step, so shard
    executions run the compiled-C kernels when one is admitted for
    the plan and degrade to the interpreter when not; executions then
    count the [service.kernel.native] / [service.kernel.fallback]
    trace counters.  [kernel_cache_dir] persists compiled kernels so
    a restarted service answers its first request without invoking
    the C compiler.  [native_march] (default false, the
    [--native-march] flag) additionally compiles kernels with
    [-march=native] — implies the native backend, forfeits bitwise
    admission (epsilon gate only; see {!Pmdp_kernel.Native_exec}).
    [calib] threads fitted cost-model weights
    ({!Pmdp_tune.Calibration}) into every plan compile and into the
    retuner's tile search; it does not change plan fingerprints.
    [retune] starts the online re-optimizer ({!Retune}): hot
    fingerprints are re-tiled under the (calibrated) model and the
    cached plan is swapped only after the candidate wins a guarded
    A/B — watch it via [stats.retune] and the [service.retune.*]
    trace counters. *)

val machine : t -> Pmdp_machine.Machine.t
val mem_budget : t -> int
val shard_count : t -> int

val shard_of_fingerprint : t -> string -> int
(** The shard index a plan fingerprint routes to — deterministic and
    stable across restarts (see {!Shard.Ring}). *)

val submit_async : t -> request -> (int, Pmdp_util.Pmdp_error.t) result
(** Admit, route, and enqueue; returns the request id to {!await} on.
    Rejections are immediate and typed: unknown app
    ([Unresolved_external]), open circuit ([Circuit_open]), plan
    compile failure (the cached typed error, which also feeds the
    breaker), over budget ([Scratch_over_budget]), too many in flight
    ([Cancelled]), draining ([Overloaded]), full shard queue
    ([Overloaded]), service shut down ([Pool_shutdown]). *)

val await : t -> int -> (response, Pmdp_util.Pmdp_error.t) result
(** Block until the request finishes; collects its outcome (the id is
    forgotten afterwards — a second await on it returns
    [Plan_invalid]).  A shed or expired request's awaiter gets the
    typed [Overloaded] / [Deadline_exceeded]. *)

val submit : t -> request -> (response, Pmdp_util.Pmdp_error.t) result
(** [submit_async] + [await]. *)

val status : t -> int -> status option
(** Phase of a live (submitted, not yet awaited) request; [None] for
    ids never issued or already collected. *)

val stats : t -> stats

val kernel_stats : t -> Pmdp_kernel.Native_exec.stats option
(** Native-backend ledger (compiles, validations, disk hits, runs);
    [None] unless the service was created with [~native:true] or a
    [~kernel_cache_dir]. *)

val kernel_cache_stats : t -> Pmdp_kernel.Kernel_cache.stats option
(** On-disk kernel-cache ledger; [None] without a [~kernel_cache_dir]. *)

val health : t -> health
(** Liveness snapshot: per-shard dispatcher state, queue depths,
    supervisor restarts, and the circuit-breaker ledger. *)

val shutdown : t -> unit
(** Stop every shard dispatcher (requests still queued fail with the
    typed [Cancelled]), join them, and shut the pools down.
    Idempotent. *)

val drain : ?timeout:float -> t -> unit
(** Graceful shutdown: stop admitting (new submits are refused with a
    retryable [Overloaded]), wait up to [timeout] (default 5s) for
    in-flight requests to settle, then {!shutdown}.  Requests still
    queued at the deadline settle as retryable [Overloaded] instead of
    [Cancelled], so retrying clients resubmit cleanly.  Idempotent
    with {!shutdown}. *)

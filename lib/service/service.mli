(** The pipeline-execution service: a long-running layer over the
    whole existing stack — {!Plan_cache} in front of the
    DSL→analysis→grouping→compile path, admission control in front of
    the memory budget, same-pipeline request batching in front of
    {!Pmdp_exec.Resilient.run_plan} on one persistent
    {!Pmdp_runtime.Pool}.

    This is the in-process API; [pmdp serve] exposes it over a
    Unix-domain socket ({!Server}, {!Protocol}) and [pmdp load]
    drives either form ({!Load}).

    {2 Lifecycle of a request}

    + {b Admission} ({!submit_async}, on the caller's thread): the app
      name is resolved against {!Pmdp_apps.Registry}, the plan comes
      from the {!Plan_cache} (compiled at most once per fingerprint),
      and the plan's memory demand — working set plus per-worker
      scratch across the pool — is charged against the service's
      budget.  Over-budget requests are rejected with the typed
      [Scratch_over_budget]; a full queue rejects with [Cancelled];
      both count the [service.admission.reject] trace counter.
    + {b Batching} (dispatcher thread): queued requests that share a
      batch key (plan fingerprint + input seed) execute as one
      {!Pmdp_exec.Resilient.run_plan} over the shared pool.  Each
      shared execution of more than one request counts the
      [service.batch] counter; every request gets its own
      [service.request] span covering queue wait + execution.
    + {b Completion}: every batched request receives the same
      {!response} (shared, read-only result buffers) with its own id
      and queue time; {!await} collects it.

    Threads: callers may submit from any thread or domain.  All
    execution — and all execution-path trace recording — happens on
    the single dispatcher thread; parallelism comes from the pool's
    worker domains. *)

type request = {
  app : string;  (** registry name or short code, e.g. "unsharp"/"UM" *)
  scale : int;  (** divides the paper's image extents *)
  scheduler : Pmdp_core.Scheduler.t;
  seed : int;  (** input-synthesis seed ({!Pmdp_apps.Registry.app}) *)
}

val request :
  ?scale:int -> ?scheduler:Pmdp_core.Scheduler.t -> ?seed:int -> string -> request
(** Request for an app by name; [scale] defaults to 32, [scheduler]
    to [Dp], [seed] to 1. *)

type response = {
  id : int;
  fingerprint : string;  (** plan-cache key the request hashed to *)
  cache_hit : bool;  (** plan served without compiling *)
  batch_size : int;  (** requests sharing this execution (>= 1) *)
  degraded : bool;  (** the resilient chain needed a fallback step *)
  wall_seconds : float;  (** execution wall-clock of the shared run *)
  queue_seconds : float;  (** this request's submit → execution-start wait *)
  checksum : float;  (** sum of {!Pmdp_exec.Buffer.checksum} over live-outs *)
  results : (string * Pmdp_exec.Buffer.t) list;
      (** live-out buffers, shared verbatim across the batch — treat
          as read-only *)
  max_abs_diff : float option;
      (** vs {!Pmdp_exec.Reference.run}, when the service was created
          with [~validate:true]; [0.0] = bitwise-equal *)
}

type status = Queued | Running | Done | Failed of Pmdp_util.Pmdp_error.t
(** Admission rejections never get an id — the typed error goes
    straight back to the submitter — so there is no rejected phase. *)

type stats = {
  submitted : int;  (** requests admitted *)
  completed : int;
  failed : int;  (** admitted but every fallback step died *)
  rejected : int;  (** refused at admission *)
  batches : int;  (** executions that served more than one request *)
  batched_requests : int;  (** requests served by those executions *)
  executions : int;  (** Resilient.run_plan calls issued *)
  queue_depth : int;  (** currently queued (not yet executing) *)
  inflight_bytes : int;  (** admission-charged bytes currently in flight *)
  cache : Plan_cache.stats;
}

type t

val create :
  ?workers:int ->
  ?mem_budget:int ->
  ?max_inflight:int ->
  ?batch_window:float ->
  ?validate:bool ->
  machine:Pmdp_machine.Machine.t ->
  unit ->
  t
(** Start a service: one plan cache, one admission controller, one
    persistent pool of [workers] (default 4) domains, one dispatcher
    thread.  [mem_budget] (default
    {!Pmdp_machine.Machine.default_mem_budget}) bounds both admission
    and the resilient driver's pre-flight guard.  [max_inflight]
    (default 64) bounds admitted-but-unfinished requests.
    [batch_window] (default 0, seconds) is how long the dispatcher
    lingers after picking a request to let same-key requests join its
    batch; 0 still batches whatever already queued up behind a
    running execution.  [validate] (default false) checks every
    batch's results against the reference executor (memoized per
    batch key) and fills [max_abs_diff]. *)

val machine : t -> Pmdp_machine.Machine.t
val mem_budget : t -> int

val submit_async : t -> request -> (int, Pmdp_util.Pmdp_error.t) result
(** Admit and enqueue; returns the request id to {!await} on.
    Rejections are immediate and typed: unknown app
    ([Unresolved_external]), plan compile failure (the cached typed
    error), over budget ([Scratch_over_budget]), queue full
    ([Cancelled]), service shut down ([Pool_shutdown]). *)

val await : t -> int -> (response, Pmdp_util.Pmdp_error.t) result
(** Block until the request finishes; collects its outcome (the id is
    forgotten afterwards — a second await on it returns
    [Plan_invalid]). *)

val submit : t -> request -> (response, Pmdp_util.Pmdp_error.t) result
(** [submit_async] + [await]. *)

val status : t -> int -> status option
(** Phase of a live (submitted, not yet awaited) request; [None] for
    ids never issued or already collected. *)

val stats : t -> stats

val shutdown : t -> unit
(** Stop the dispatcher (requests still queued fail with the typed
    [Cancelled]), join it, and shut the pool down.  Idempotent. *)

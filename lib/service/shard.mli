(** One dispatcher shard of the sharded execution service: a bounded
    request queue, a private {!Plan_cache}, a private worker pool, and
    a dispatcher thread that coalesces same-(fingerprint, seed)
    requests into one {!Pmdp_exec.Resilient.run_plan}.

    {!Service} owns a ring of these.  All shards of one service share
    a single mutex and the cross-shard admission ledger (the {!shared}
    record); each shard has its own condition variable, so waking one
    dispatcher does not stampede the fleet.

    Graduated backpressure: the queue is bounded ([queue_limit]).
    When it is full, {!try_enqueue} sheds the lowest-priority queued
    request if the incoming one outranks it — the victim fails with a
    typed [Overloaded] — and otherwise refuses the incoming request.
    The dispatcher drops requests whose deadline passed while queued
    ([Deadline_exceeded]).  Both show up in the [service.shed] trace
    counter and the per-shard {!counters}. *)

module Ring : sig
  (** Consistent-hash ring over shard indices.  Deterministic — every
      hash input is a pure function of the shard/vnode index or the
      routed fingerprint — so the same fingerprint lands on the same
      shard in every process, every run.  That is what keeps
      same-plan requests coalescing into one batch even behind a
      fleet, and what lets a warm disk cache be preloaded into the
      shard that will serve it. *)

  type t

  val create : shards:int -> t
  (** [shards] ≥ 1; each shard contributes 64 virtual nodes. *)

  val route : t -> string -> int
  (** Shard index in [\[0, shards)] for a plan fingerprint. *)
end

type request = {
  app : string;
  scale : int;
  scheduler : Pmdp_core.Scheduler.t;
  seed : int;
  priority : int;  (** higher wins under backpressure; default 0 *)
  deadline : float option;
      (** seconds from submit after which the request may be dropped
          rather than executed *)
}

type response = {
  id : int;
  fingerprint : string;
  cache_hit : bool;
  batch_size : int;
  degraded : bool;
  wall_seconds : float;
  queue_seconds : float;
  checksum : float;
  results : (string * Pmdp_exec.Buffer.t) list;
  max_abs_diff : float option;
}

type phase = P_queued | P_running

type pending = {
  id : int;
  req : request;
  app_entry : Pmdp_apps.Registry.app;
  entry : Plan_cache.entry;
  cache_hit : bool;
  est_bytes : int;
  submitted_at : float;
  trace_ts : float;
  mutable phase : phase;
  mutable outcome : (response, Pmdp_util.Pmdp_error.t) result option;
}

type shared = {
  lock : Mutex.t;  (** the one service-wide mutex *)
  request_done : Condition.t;  (** broadcast whenever any pending settles *)
  machine : Pmdp_machine.Machine.t;
  budget : int;
  validate : bool;
  breaker : Breaker.t;  (** per-fingerprint circuit breaker, all shards *)
  fault : Pmdp_runtime.Fault.t option;
      (** chaos injection: [Shard_kill] fires at batch start, and the
          fault is threaded into [Resilient.run_plan] so worker kills
          and tile crashes reach service executions too *)
  calib : Pmdp_core.Cost_model.calibration option;
      (** fitted cost-model weights, threaded into every plan compile
          ({!Plan_cache.get}) and into the retuner's tile search *)
  retune : Retune.t option;
      (** the online re-optimizer; dispatchers report successful
          execution walls to it ({!Retune.observe}) *)
  mutable draining : bool;
      (** set once a graceful drain's deadline passes: dispatchers
          settle leftovers as retryable [Overloaded] instead of
          [Cancelled] *)
  mutable unfinished : int;
  mutable inflight_bytes : int;
  mutable queued : int;
}

type counters = {
  submitted : int;
  completed : int;
  failed : int;
  rejected : int;
  shed : int;  (** evicted from a full queue by a higher-priority request *)
  expired : int;  (** dropped because the deadline passed while queued *)
  batches : int;
  batched_requests : int;
  executions : int;
  restarts : int;  (** dispatcher respawns by the supervisor *)
  queue_depth : int;
  inflight_bytes : int;
}

type t

val create :
  index:int -> shared:shared -> workers:int -> batch_window:float -> queue_limit:int -> t
(** Start the shard: private plan cache, private pool ([workers] > 1),
    dispatcher thread running under a supervisor.  When the dispatcher
    thread dies (injected [Shard_kill], escaped execution exception),
    the supervisor settles the batch it owned with a typed retryable
    [Worker_crash], backs off with seeded jitter (25 ms doubling to
    1 s), and respawns it; the queue survives across the respawn. *)

val index : t -> int
val cache : t -> Plan_cache.t
val workers : t -> int

val batch_key : pending -> string
(** [fingerprint ^ ":" ^ seed] — requests with equal keys compute the
    same result and are coalesced. *)

val try_enqueue : t -> pending -> (unit, Pmdp_util.Pmdp_error.t) result
(** Admit into the bounded queue.  Caller MUST hold [shared.lock] and
    MUST have already charged [shared.unfinished] /
    [shared.inflight_bytes] for the request; on [Error] (queue full,
    nothing outranked) the caller undoes that charge.  May shed a
    lower-priority queued request to make room — the victim settles
    with [Overloaded] and its charge is released here. *)

val note_rejected : t -> unit
(** Attribute an admission rejection to this shard (caller holds
    [shared.lock]). *)

val signal_stop : t -> unit
(** Ask the dispatcher to drain and exit (caller holds
    [shared.lock]). *)

val join : t -> unit
(** Join the dispatcher thread and shut the pool down.  Call without
    the lock, after {!signal_stop}. *)

val counters : t -> counters
(** Snapshot (caller holds [shared.lock]). *)

(** Liveness view for the [health] op. *)
type health = {
  shard : int;
  alive : bool;  (** dispatcher thread up (false during a respawn backoff) *)
  queue_depth : int;
  running : int;  (** requests in the batch being executed right now *)
  restarts : int;
}

val health : t -> health
(** Snapshot (caller holds [shared.lock]). *)

(** Load generator behind [pmdp load]: concurrent clients driving a
    service — over its socket or in process — and a latency/throughput
    report.

    Requests are numbered [0 .. requests-1] and drawn deterministically
    from the configured mix: app = round-robin over [apps], seed
    rotates through [1 .. seeds] (fewer distinct seeds = more batching
    opportunity, since the batch key is plan fingerprint + seed).

    - {b Closed loop} ([arrival_rate = None]): each of the [clients]
      workers keeps exactly one request in flight — classic
      concurrency-[N] load.  Latency is the submit round trip.
    - {b Open loop} ([arrival_rate = Some r]): request [k] is due at
      [k / r] seconds from the start, dealt round-robin to the
      workers; latency is measured from the request's {e due} time, so
      a server that falls behind the arrival rate shows queueing delay
      in its percentiles, not just service time.

    Every worker uses its own connection (the server replies in order
    per connection), so [clients] bounds in-flight requests in both
    loops. *)

type config = {
  clients : int;  (** concurrent workers (= connections, remote) *)
  requests : int;  (** total requests to issue *)
  arrival_rate : float option;  (** req/s; [None] = closed loop *)
  apps : string list;  (** request mix, round-robin; must be non-empty *)
  scale : int;
  scheduler : Pmdp_core.Scheduler.t;
  seeds : int;  (** rotate seed through [1 .. seeds] *)
  retry : Client.Retry_policy.t;
      (** applied per worker (each with its own jitter seed); the
          in-process runner applies the same policy to retryable typed
          errors *)
}

val config :
  ?clients:int ->
  ?requests:int ->
  ?arrival_rate:float ->
  ?apps:string list ->
  ?scale:int ->
  ?scheduler:Pmdp_core.Scheduler.t ->
  ?seeds:int ->
  ?retry:Client.Retry_policy.t ->
  unit ->
  config
(** Defaults: 4 clients, 100 requests, closed loop, ["blur"], scale
    32, [Dp], 1 seed, no retries ({!Client.Retry_policy.none}). *)

type report = {
  config : config;
  wall_seconds : float;  (** first issue → last completion *)
  succeeded : int;
  failed : int;  (** typed-error outcomes, admission rejections included *)
  throughput_rps : float;  (** succeeded / wall *)
  latency_ms : float array;  (** per successful request, in issue order *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;  (** nearest-rank percentiles; 0 when nothing succeeded *)
  mean_ms : float;
  max_ms : float;
  cache_hits : int;  (** successful responses served from the plan cache *)
  batched : int;  (** successful responses with batch_size > 1 *)
  errors : (string * int) list;  (** error kind -> count, sorted by kind *)
  retry : Client.retry_stats;  (** summed over all workers *)
  service_stats : Pmdp_report.Json.t option;
      (** server stats snapshot after the run, when obtainable *)
}

val run_remote : endpoint:Transport.endpoint -> config -> report
(** Drive a [pmdp serve] endpoint (Unix-domain or TCP).  Connection
    failures surface as failed requests (kind ["worker-crash"]), not
    exceptions. *)

val run_inproc : Service.t -> config -> report
(** Drive a service in process (no sockets) — same report, used by
    tests and [pmdp load --inproc]. *)

val schema_version : int
(** Version stamped into {!to_json} documents (2: adds the ["retry"]
    totals and the retry policy under ["config"]). *)

val to_json : report -> Pmdp_report.Json.t
(** Report document with a [schema_version] field, suitable for
    [LOAD_<machine>.json]. *)

val write_json : path:string -> report -> (unit, Pmdp_util.Pmdp_error.t) result
(** Write {!to_json} to [path] — unless a file already there is not
    verifiably a pmdp-load report of this writer's schema version, in
    which case refuse with a typed [Plan_invalid] (same guard as the
    bench runner's merge: never silently clobber another schema's
    data). *)

val default_path : Pmdp_machine.Machine.t -> string
(** ["LOAD_<machine>.json"]. *)

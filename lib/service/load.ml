module Json = Pmdp_report.Json
module Stats = Pmdp_util.Stats
module Scheduler = Pmdp_core.Scheduler
module Pmdp_error = Pmdp_util.Pmdp_error
module Machine = Pmdp_machine.Machine

type config = {
  clients : int;
  requests : int;
  arrival_rate : float option;
  apps : string list;
  scale : int;
  scheduler : Scheduler.t;
  seeds : int;
  retry : Client.Retry_policy.t;
}

let config ?(clients = 4) ?(requests = 100) ?arrival_rate ?(apps = [ "blur" ]) ?(scale = 32)
    ?(scheduler = Scheduler.Dp) ?(seeds = 1) ?(retry = Client.Retry_policy.none) () =
  if clients < 1 then invalid_arg "Load.config: clients < 1";
  if requests < 1 then invalid_arg "Load.config: requests < 1";
  if apps = [] then invalid_arg "Load.config: empty app mix";
  if seeds < 1 then invalid_arg "Load.config: seeds < 1";
  (match arrival_rate with
  | Some r when r <= 0.0 -> invalid_arg "Load.config: arrival_rate <= 0"
  | _ -> ());
  { clients; requests; arrival_rate; apps; scale; scheduler; seeds; retry }

type sample = {
  ok : bool;
  cache_hit : bool;
  batched : bool;
  kind : string option;  (** error kind when not ok *)
  latency : float;  (** seconds; meaningful when ok *)
}

type report = {
  config : config;
  wall_seconds : float;
  succeeded : int;
  failed : int;
  throughput_rps : float;
  latency_ms : float array;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
  cache_hits : int;
  batched : int;
  errors : (string * int) list;
  retry : Client.retry_stats;
  service_stats : Json.t option;
}

let request_for cfg i =
  let apps = Array.of_list cfg.apps in
  Service.request
    ~scale:cfg.scale ~scheduler:cfg.scheduler
    ~seed:(1 + (i mod cfg.seeds))
    apps.(i mod Array.length apps)

let to_sample outcome latency =
  match outcome with
  | Ok (cache_hit, batch_size) ->
      { ok = true; cache_hit; batched = batch_size > 1; kind = None; latency }
  | Error e ->
      { ok = false; cache_hit = false; batched = false; kind = Some (Pmdp_error.kind e); latency }

(* The loop core, parameterized over how a worker submits.
   [make_worker w] is called once per worker thread and returns
   (submit, close); remote workers get their own connection, and
   [close] hands back that worker's retry accounting. *)
let run_core ~make_worker ~finish cfg =
  let n = cfg.requests in
  let samples = Array.make n None in
  let retry_totals = ref Client.zero_retry_stats in
  let retry_lock = Mutex.create () in
  let next = Atomic.make 0 in
  let start = Unix.gettimeofday () in
  let worker w =
    let submit, close = make_worker w in
    (match cfg.arrival_rate with
    | None ->
        (* Closed loop: each worker keeps one request in flight. *)
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else begin
            let t0 = Unix.gettimeofday () in
            let r = submit (request_for cfg i) in
            samples.(i) <- Some (to_sample r (Unix.gettimeofday () -. t0))
          end
        done
    | Some rate ->
        (* Open loop: request i is due at i/rate, dealt round-robin;
           latency counts from the due time, so falling behind the
           arrival schedule shows up as queueing delay. *)
        let i = ref w in
        while !i < n do
          let due = start +. (float_of_int !i /. rate) in
          let now = Unix.gettimeofday () in
          if due > now then Thread.delay (due -. now);
          let r = submit (request_for cfg !i) in
          samples.(!i) <- Some (to_sample r (Unix.gettimeofday () -. due));
          i := !i + cfg.clients
        done);
    let rs = close () in
    Mutex.lock retry_lock;
    retry_totals := Client.add_retry_stats !retry_totals rs;
    Mutex.unlock retry_lock
  in
  let threads = List.init cfg.clients (fun w -> Thread.create worker w) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. start in
  let service_stats = finish () in
  let samples = Array.to_list samples |> List.filter_map Fun.id in
  let oks = List.filter (fun s -> s.ok) samples in
  let latency_ms = Array.of_list (List.map (fun s -> s.latency *. 1000.0) oks) in
  let pct p = if Array.length latency_ms = 0 then 0.0 else Stats.percentile p latency_ms in
  let errors =
    List.sort_uniq compare (List.filter_map (fun s -> s.kind) samples)
    |> List.map (fun k ->
           (k, List.length (List.filter (fun s -> s.kind = Some k) samples)))
  in
  {
    config = cfg;
    wall_seconds = wall;
    succeeded = List.length oks;
    failed = List.length samples - List.length oks;
    throughput_rps = (if wall > 0.0 then float_of_int (List.length oks) /. wall else 0.0);
    latency_ms;
    p50_ms = pct 50.0;
    p95_ms = pct 95.0;
    p99_ms = pct 99.0;
    mean_ms =
      (if Array.length latency_ms = 0 then 0.0
       else Array.fold_left ( +. ) 0.0 latency_ms /. float_of_int (Array.length latency_ms));
    max_ms = Array.fold_left Float.max 0.0 latency_ms;
    cache_hits = List.length (List.filter (fun s -> s.cache_hit) oks);
    batched = List.length (List.filter (fun (s : sample) -> s.batched) oks);
    errors;
    retry = !retry_totals;
    service_stats;
  }

(* Each worker gets its own jitter stream: identical streams would
   synchronize the backoff sleeps and re-collide every retry wave. *)
let worker_policy (cfg : config) w =
  let p = cfg.retry in
  Client.Retry_policy.{ p with seed = p.seed + w }

let run_remote ~endpoint cfg =
  let make_worker w =
    match Client.connect ~retry:(worker_policy cfg w) ~endpoint () with
    | Ok client ->
        ( (fun req ->
            Result.map
              (fun (r : Client.remote_response) -> (r.Client.cache_hit, r.Client.batch_size))
              (Client.submit client req)),
          fun () ->
            let rs = Client.retry_stats client in
            Client.close client;
            rs )
    | Error e ->
        (* No listener even after the connect retries: every request
           of this worker fails with that typed error. *)
        ((fun _ -> Error e), fun () -> Client.zero_retry_stats)
  in
  let finish () =
    match Client.connect ~endpoint () with
    | Error _ -> None
    | Ok client ->
        let s = Client.stats client in
        Client.close client;
        Result.to_option s
  in
  run_core ~make_worker ~finish cfg

let run_inproc service cfg =
  let make_worker w =
    (* The same retry semantics as the remote path, minus the
       transport: typed retryable errors (shed, expired, supervisor-
       settled, open circuit) are re-submitted with the same backoff
       and accounting. *)
    let p = worker_policy cfg w in
    let rng = Pmdp_util.Rng.create p.Client.Retry_policy.seed in
    let rs = ref Client.zero_retry_stats in
    let submit req =
      let rec go attempt =
        rs := Client.add_retry_stats !rs { Client.attempts = 1; retried = 0; gave_up = 0 };
        match Service.submit service req with
        | Ok r -> Ok (r.Service.cache_hit, r.Service.batch_size)
        | Error e
          when attempt < p.Client.Retry_policy.max_attempts && Client.Retry_policy.retryable e ->
            if attempt = 1 then
              rs := Client.add_retry_stats !rs { Client.attempts = 0; retried = 1; gave_up = 0 };
            Thread.delay (Client.Retry_policy.delay p ~rng ~attempt);
            go (attempt + 1)
        | Error e ->
            if Client.Retry_policy.retryable e then
              rs := Client.add_retry_stats !rs { Client.attempts = 0; retried = 0; gave_up = 1 };
            Error e
      in
      go 1
    in
    (submit, fun () -> !rs)
  in
  let finish () = Some (Protocol.json_of_stats (Service.stats service)) in
  run_core ~make_worker ~finish cfg

(* v2: adds the ["retry"] totals object, the retry policy in
   ["config"], and writes through the schema guard in {!write_json}. *)
let schema_version = 2

let to_json r =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("kind", Json.String "pmdp-load");
      ( "config",
        Json.Obj
          [
            ("clients", Json.Int r.config.clients);
            ("requests", Json.Int r.config.requests);
            ( "arrival_rate",
              match r.config.arrival_rate with None -> Json.Null | Some x -> Json.Float x );
            ("apps", Json.List (List.map (fun a -> Json.String a) r.config.apps));
            ("scale", Json.Int r.config.scale);
            ("scheduler", Json.String (Scheduler.to_string r.config.scheduler));
            ("seeds", Json.Int r.config.seeds);
            ( "retry_policy",
              Json.Obj
                [
                  ("max_attempts", Json.Int r.config.retry.Client.Retry_policy.max_attempts);
                  ("base_delay", Json.Float r.config.retry.Client.Retry_policy.base_delay);
                  ("max_delay", Json.Float r.config.retry.Client.Retry_policy.max_delay);
                  ("multiplier", Json.Float r.config.retry.Client.Retry_policy.multiplier);
                ] );
          ] );
      ("wall_seconds", Json.Float r.wall_seconds);
      ("succeeded", Json.Int r.succeeded);
      ("failed", Json.Int r.failed);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("p50_ms", Json.Float r.p50_ms);
      ("p95_ms", Json.Float r.p95_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("mean_ms", Json.Float r.mean_ms);
      ("max_ms", Json.Float r.max_ms);
      ("cache_hits", Json.Int r.cache_hits);
      ("batched", Json.Int r.batched);
      ("errors", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) r.errors));
      ( "retry",
        Json.Obj
          [
            ("attempts", Json.Int r.retry.Client.attempts);
            ("retried", Json.Int r.retry.Client.retried);
            ("gave_up", Json.Int r.retry.Client.gave_up);
          ] );
      ("latency_ms", Json.List (Array.to_list (Array.map (fun x -> Json.Float x) r.latency_ms)));
      ("service_stats", Option.value ~default:Json.Null r.service_stats);
    ]

let default_path (machine : Machine.t) = Printf.sprintf "LOAD_%s.json" machine.Machine.name

(* Same guard as the bench runner's merge path: a pre-existing output
   file is only replaced when it is verifiably a load report of the
   schema this writer produces — overwriting a file written under a
   different (or unknown) schema would silently destroy data a reader
   of that schema still expects. *)
let write_json ~path r =
  let invalid reason =
    Error (Pmdp_error.Plan_invalid { context = "load: " ^ path; reason })
  in
  let check =
    if not (Sys.file_exists path) then Ok ()
    else
      match Json.of_file path with
      | Error msg -> invalid ("existing file not parseable as JSON: " ^ msg)
      | Ok doc -> (
          match
            ( Option.bind (Json.member "kind" doc) Json.to_string_opt,
              Option.bind (Json.member "schema_version" doc) Json.to_int_opt )
          with
          | Some "pmdp-load", Some v when v = schema_version -> Ok ()
          | Some "pmdp-load", Some v ->
              invalid
                (Printf.sprintf "schema_version %d, but this writer produces v%d" v schema_version)
          | Some "pmdp-load", None ->
              invalid "missing schema_version; refusing to replace an unknown schema"
          | _ -> invalid "not a pmdp-load report; refusing to overwrite")
  in
  match check with
  | Error _ as e -> e
  | Ok () ->
      Json.to_file path (to_json r);
      Ok ()

(** Online re-optimization of served plans.

    Shard dispatchers feed per-fingerprint execution wall times into
    {!observe}, which keeps a latency EWMA per fingerprint.  Once a
    fingerprint has been executed [hot_threshold] times it is declared
    {e hot} and queued (at most once per process) for the background
    tuner thread, which:

    + proposes candidate tile sizes for the cached plan's IR — a
      seeded, budgeted {!Pmdp_tune.Search.tune_ir} hill-climb under
      the service's (calibrated) cost model, or the [propose] test
      hook;
    + {!Pmdp_plan.retile}s the IR and passes the result through the
      {b full admission gate} ({!Plan_cache.load}: digest +
      whole-plan analyzer + instantiation) — nothing unverified is
      ever measured, let alone served;
    + runs a guarded A/B: both the incumbent and the candidate plan
      execute [ab_reps] times on the request's own inputs, and the
      candidate wins only when its median wall beats the incumbent's
      by at least [margin];
    + on a win, hands the new entry to the service's [commit]
      callback ({!Plan_cache.swap} + disk-cache write-back).  The
      swap is atomic and only replaces a Ready slot.

    Lifecycle counters ([service.retune.start] / [.win] / [.lose] /
    [.swap] trace counters, mirrored in {!counters}) make the
    whole loop observable. *)

type config = {
  hot_threshold : int;  (** executions before a fingerprint is hot (>= 1) *)
  margin : float;
      (** fraction of the incumbent's median the candidate must beat
          ([0.05] = at least 5% faster); in [\[0, 1)] *)
  ab_reps : int;  (** A/B executions per side (>= 1) *)
  budget : int;  (** model-search evaluations per attempt (>= 1) *)
  seed : int;  (** search seed — retuning is deterministic per process *)
  propose : (Pmdp_plan.t -> int array array option) option;
      (** test hook: supply candidate tiles directly instead of
          searching; [None] from the hook means "no proposal" (counted
          as a loss) *)
}

val default_config : config
(** [hot_threshold = 8], [margin = 0.05], [ab_reps = 3],
    [budget = 48], fixed seed, no propose hook. *)

type job = {
  fingerprint : string;
  app : Pmdp_apps.Registry.app;
  scale : int;
  scheduler : Pmdp_core.Scheduler.t;
  input_seed : int;  (** the hot request's input seed — A/B runs reuse it *)
  cache : Plan_cache.t;  (** the owning shard's cache (the swap target) *)
  entry : Plan_cache.entry;  (** the incumbent at the moment it went hot *)
}
(** Everything the tuner needs to re-optimize one fingerprint,
    captured by the shard at observe time. *)

type counters = {
  observed : int;  (** successful executions reported by the shards *)
  hot : int;  (** fingerprints that crossed the threshold *)
  started : int;  (** retune attempts the tuner thread began *)
  wins : int;  (** candidates that beat the incumbent by the margin *)
  losses : int;  (** attempts that kept the incumbent *)
  swaps : int;  (** wins the commit callback actually installed *)
}

type t

val create :
  ?calib:Pmdp_core.Cost_model.calibration ->
  config:config ->
  machine:Pmdp_machine.Machine.t ->
  commit:(job -> Plan_cache.entry -> bool) ->
  unit ->
  t
(** Start the background tuner thread.  [calib] selects the calibrated
    cost model for the tile search ({!Pmdp_core.Cost_model.config_of_machine}).
    [commit] installs a winning entry — the service wires it to
    {!Plan_cache.swap} on the owning shard plus the disk-cache
    write-back — and returns whether the swap took.
    @raise Invalid_argument on out-of-range config fields. *)

val observe : t -> fingerprint:string -> wall:float -> job:(unit -> job) -> unit
(** Report one successful execution ([wall] seconds).  Cheap unless
    this observation crosses the hot threshold, in which case [job] is
    forced and queued.  Thread-safe; never blocks on tuning work. *)

val counters : t -> counters

val shutdown : t -> unit
(** Stop the tuner thread (queued jobs are dropped; an attempt already
    running finishes first) and join it.  Idempotent. *)

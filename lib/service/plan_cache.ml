module Scheduler = Pmdp_core.Scheduler
module Machine = Pmdp_machine.Machine
module Registry = Pmdp_apps.Registry
module Tiled_exec = Pmdp_exec.Tiled_exec
module Pmdp_error = Pmdp_util.Pmdp_error
module Trace = Pmdp_trace.Trace

type entry = {
  fingerprint : string;
  resolved : Scheduler.t;
  spec : Pmdp_core.Schedule_spec.t option;
  plan : Tiled_exec.plan;
  ir : Pmdp_plan.t;
  digest : string;
}

(* [Building] is claimed by exactly one requester; everyone else for
   the same key waits on [built] until the slot becomes [Ready]. *)
type slot = Building | Ready of (entry, Pmdp_error.t) result

type t = {
  lock : Mutex.t;
  built : Condition.t;
  table : (string, slot) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable compiles : int;
  mutable loads : int;
  mutable load_rejects : int;
}

type stats = {
  hits : int;
  misses : int;
  compiles : int;
  loads : int;
  load_rejects : int;
  entries : int;
}

let create () =
  {
    lock = Mutex.create ();
    built = Condition.create ();
    table = Hashtbl.create 32;
    hits = 0;
    misses = 0;
    compiles = 0;
    loads = 0;
    load_rejects = 0;
  }

let fingerprint ~app ~scale ~scheduler ~(machine : Machine.t) =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "pmdp-plan-v1|app=%s|scale=%d|scheduler=%s|machine=%s|cores=%d" app scale
          (Scheduler.to_string scheduler) machine.Machine.name machine.Machine.cores))

(* Instantiate a plan IR for [pipeline] with the gate every path into
   a Ready slot shares: the claimed digest must match the IR's content
   (tamper/corruption), and the whole-plan static analyzer must pass
   (soundness) — both before any closure is handed out. *)
let admit_ir ~pipeline ~(ir : Pmdp_plan.t) ~digest:claimed =
  let actual = Pmdp_plan.digest ir in
  if actual <> claimed then
    Error
      (Pmdp_error.Plan_invalid
         {
           context = "plan-cache: digest";
           reason =
             Printf.sprintf "plan claims digest %s but its content digests to %s" claimed actual;
         })
  else
    match Pmdp_verify.Verify.check_plan_result pipeline ir with
    | Error e -> Error e
    | Ok () -> Tiled_exec.instantiate_result pipeline ir

let wrap_raises ~context f =
  try f () with
  | Pmdp_error.Error e -> Error e
  | Invalid_argument reason -> Error (Pmdp_error.Plan_invalid { context; reason })
  | e -> Error (Pmdp_error.Plan_invalid { context; reason = Printexc.to_string e })

let build_pipeline (app : Registry.app) ~scale =
  wrap_raises ~context:("plan-cache: " ^ app.Registry.name) (fun () ->
      Ok (app.Registry.build ~scale))

(* Full scheduling + lowering, with every raising boundary folded into
   the typed taxonomy: a cache must return errors, not leak them. *)
let compile ?calib ~fp ~(app : Registry.app) ~pipeline ~scheduler ~machine () =
  wrap_raises ~context:("plan-cache: " ^ app.Registry.name) (fun () ->
      let resolved = Scheduler.for_pipeline scheduler pipeline in
      let spec =
        Scheduler.schedule resolved
          (Pmdp_core.Cost_model.config_of_machine ?calib machine)
          pipeline
      in
      match Pmdp_plan.of_spec_result spec with
      | Error e -> Error e
      | Ok ir -> (
          let digest = Pmdp_plan.digest ir in
          match admit_ir ~pipeline ~ir ~digest with
          | Error e -> Error e
          | Ok plan -> Ok { fingerprint = fp; resolved; spec = Some spec; plan; ir; digest }))

(* An entry admitted from an externally supplied IR: the gate ran, but
   nothing was scheduled in this process, so there is no spec. *)
let admit_loaded ~fp ~(app : Registry.app) ~pipeline ~scheduler ~ir ~digest =
  wrap_raises ~context:("plan-cache: " ^ app.Registry.name) (fun () ->
      match admit_ir ~pipeline ~ir ~digest with
      | Error e -> Error e
      | Ok plan ->
          let resolved = Scheduler.for_pipeline scheduler pipeline in
          Ok { fingerprint = fp; resolved; spec = None; plan; ir; digest })

let load ~pipeline ~ir ~digest = admit_ir ~pipeline ~ir ~digest

let get t ?load ?store ?quarantine ?calib ~(app : Registry.app) ~scale ~scheduler ~machine () =
  let fp = fingerprint ~app:app.Registry.name ~scale ~scheduler ~machine in
  Mutex.lock t.lock;
  let rec obtain () =
    match Hashtbl.find_opt t.table fp with
    | Some (Ready r) ->
        t.hits <- t.hits + 1;
        Mutex.unlock t.lock;
        if Trace.on () then Trace.count "service.cache.hit" 1;
        Result.map (fun e -> (e, `Hit)) r
    | Some Building ->
        Condition.wait t.built t.lock;
        obtain ()
    | None ->
        t.misses <- t.misses + 1;
        Hashtbl.replace t.table fp Building;
        Mutex.unlock t.lock;
        if Trace.on () then Trace.count "service.cache.miss" 1;
        (* Outside the lock: try the external source first (a plan that
           passes the gate skips scheduling entirely), fall back to a
           compile — which is offered back to the source via [store]. *)
        let outcome, rejected, r =
          match build_pipeline app ~scale with
          | Error e -> (`Miss, false, Error e)
          | Ok pipeline -> (
              let loaded, rejected =
                match load with
                | None -> (None, false)
                | Some f -> (
                    match f () with
                    | None -> (None, false)
                    | Some (ir, digest) -> (
                        match admit_loaded ~fp ~app ~pipeline ~scheduler ~ir ~digest with
                        | Ok e -> (Some e, false)
                        | Error _ ->
                            (* The source handed us a bad envelope:
                               tell it (the disk cache quarantines the
                               file) and compile instead. *)
                            Option.iter (fun q -> q ()) quarantine;
                            (None, true)))
              in
              match loaded with
              | Some e -> (`Loaded, rejected, Ok e)
              | None ->
                  let r = compile ?calib ~fp ~app ~pipeline ~scheduler ~machine () in
                  (match (r, store) with
                  | Ok e, Some put -> put ~ir:e.ir ~digest:e.digest
                  | _ -> ());
                  (`Miss, rejected, r))
        in
        Mutex.lock t.lock;
        (match outcome with
        | `Loaded -> t.loads <- t.loads + 1
        | `Miss -> t.compiles <- t.compiles + 1);
        if rejected then t.load_rejects <- t.load_rejects + 1;
        Hashtbl.replace t.table fp (Ready r);
        Condition.broadcast t.built;
        Mutex.unlock t.lock;
        Result.map (fun e -> (e, (outcome :> [ `Hit | `Miss | `Loaded ]))) r
  in
  obtain ()

let preload t ~(app : Registry.app) ~scale ~scheduler ~machine ~ir ~digest =
  let fp = fingerprint ~app:app.Registry.name ~scale ~scheduler ~machine in
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table fp with
  | Some _ ->
      Mutex.unlock t.lock;
      Ok ()
  | None -> (
      Hashtbl.replace t.table fp Building;
      Mutex.unlock t.lock;
      let r =
        match build_pipeline app ~scale with
        | Error e -> Error e
        | Ok pipeline -> admit_loaded ~fp ~app ~pipeline ~scheduler ~ir ~digest
      in
      Mutex.lock t.lock;
      (match r with
      | Ok entry ->
          t.loads <- t.loads + 1;
          Hashtbl.replace t.table fp (Ready (Ok entry))
      | Error _ ->
          (* A rejected warm-load must not poison the slot: leave it
             empty so the first request compiles fresh. *)
          t.load_rejects <- t.load_rejects + 1;
          Hashtbl.remove t.table fp);
      Condition.broadcast t.built;
      Mutex.unlock t.lock;
      Result.map (fun _ -> ()) r)

(* Atomically replace a Ready slot — the online retuner's swap.  Only
   an existing, successfully built entry may be replaced (a Building
   slot has a requester waiting on it; an absent one means the
   fingerprint was never served here), so a racing eviction or a
   late-arriving tuner loses cleanly. *)
let swap t ~fingerprint ~entry =
  Mutex.lock t.lock;
  let swapped =
    match Hashtbl.find_opt t.table fingerprint with
    | Some (Ready (Ok _)) ->
        Hashtbl.replace t.table fingerprint (Ready (Ok entry));
        true
    | _ -> false
  in
  Mutex.unlock t.lock;
  swapped

let stats t =
  Mutex.lock t.lock;
  let entries =
    Hashtbl.fold (fun _ slot acc -> match slot with Ready _ -> acc + 1 | Building -> acc) t.table 0
  in
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      compiles = t.compiles;
      loads = t.loads;
      load_rejects = t.load_rejects;
      entries;
    }
  in
  Mutex.unlock t.lock;
  s

let clear t =
  Mutex.lock t.lock;
  let ready =
    Hashtbl.fold (fun k slot acc -> match slot with Ready _ -> k :: acc | Building -> acc) t.table []
  in
  List.iter (Hashtbl.remove t.table) ready;
  Mutex.unlock t.lock

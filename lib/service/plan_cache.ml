module Scheduler = Pmdp_core.Scheduler
module Machine = Pmdp_machine.Machine
module Registry = Pmdp_apps.Registry
module Tiled_exec = Pmdp_exec.Tiled_exec
module Pmdp_error = Pmdp_util.Pmdp_error
module Trace = Pmdp_trace.Trace

type entry = {
  fingerprint : string;
  resolved : Scheduler.t;
  spec : Pmdp_core.Schedule_spec.t;
  plan : Tiled_exec.plan;
  ir : Pmdp_plan.t;
  digest : string;
}

(* [Building] is claimed by exactly one requester; everyone else for
   the same key waits on [built] until the slot becomes [Ready]. *)
type slot = Building | Ready of (entry, Pmdp_error.t) result

type t = {
  lock : Mutex.t;
  built : Condition.t;
  table : (string, slot) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable compiles : int;
}

type stats = { hits : int; misses : int; compiles : int; entries : int }

let create () =
  {
    lock = Mutex.create ();
    built = Condition.create ();
    table = Hashtbl.create 32;
    hits = 0;
    misses = 0;
    compiles = 0;
  }

let fingerprint ~app ~scale ~scheduler ~(machine : Machine.t) =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "pmdp-plan-v1|app=%s|scale=%d|scheduler=%s|machine=%s|cores=%d" app scale
          (Scheduler.to_string scheduler) machine.Machine.name machine.Machine.cores))

(* Instantiate a plan IR for [pipeline] with the gate every path into
   a Ready slot shares: the claimed digest must match the IR's content
   (tamper/corruption), and the whole-plan static analyzer must pass
   (soundness) — both before any closure is handed out. *)
let admit_ir ~pipeline ~(ir : Pmdp_plan.t) ~digest:claimed =
  let actual = Pmdp_plan.digest ir in
  if actual <> claimed then
    Error
      (Pmdp_error.Plan_invalid
         {
           context = "plan-cache: digest";
           reason =
             Printf.sprintf "plan claims digest %s but its content digests to %s" claimed actual;
         })
  else
    match Pmdp_verify.Verify.check_plan_result pipeline ir with
    | Error e -> Error e
    | Ok () -> Tiled_exec.instantiate_result pipeline ir

(* Full scheduling + lowering, with every raising boundary folded into
   the typed taxonomy: a cache must return errors, not leak them. *)
let compile ~fp ~(app : Registry.app) ~scale ~scheduler ~machine =
  let context = "plan-cache: " ^ app.Registry.name in
  try
    let pipeline = app.Registry.build ~scale in
    let resolved = Scheduler.for_pipeline scheduler pipeline in
    let spec =
      Scheduler.schedule resolved (Pmdp_core.Cost_model.default_config machine) pipeline
    in
    match Pmdp_plan.of_spec_result spec with
    | Error e -> Error e
    | Ok ir -> (
        let digest = Pmdp_plan.digest ir in
        match admit_ir ~pipeline ~ir ~digest with
        | Error e -> Error e
        | Ok plan -> Ok { fingerprint = fp; resolved; spec; plan; ir; digest })
  with
  | Pmdp_error.Error e -> Error e
  | Invalid_argument reason -> Error (Pmdp_error.Plan_invalid { context; reason })
  | e -> Error (Pmdp_error.Plan_invalid { context; reason = Printexc.to_string e })

let load ~pipeline ~ir ~digest = admit_ir ~pipeline ~ir ~digest

let get t ~(app : Registry.app) ~scale ~scheduler ~machine =
  let fp = fingerprint ~app:app.Registry.name ~scale ~scheduler ~machine in
  Mutex.lock t.lock;
  let rec obtain () =
    match Hashtbl.find_opt t.table fp with
    | Some (Ready r) ->
        t.hits <- t.hits + 1;
        Mutex.unlock t.lock;
        if Trace.on () then Trace.count "service.cache.hit" 1;
        Result.map (fun e -> (e, `Hit)) r
    | Some Building ->
        Condition.wait t.built t.lock;
        obtain ()
    | None ->
        t.misses <- t.misses + 1;
        Hashtbl.replace t.table fp Building;
        Mutex.unlock t.lock;
        if Trace.on () then Trace.count "service.cache.miss" 1;
        let r = compile ~fp ~app ~scale ~scheduler ~machine in
        Mutex.lock t.lock;
        t.compiles <- t.compiles + 1;
        Hashtbl.replace t.table fp (Ready r);
        Condition.broadcast t.built;
        Mutex.unlock t.lock;
        Result.map (fun e -> (e, `Miss)) r
  in
  obtain ()

let stats t =
  Mutex.lock t.lock;
  let entries =
    Hashtbl.fold (fun _ slot acc -> match slot with Ready _ -> acc + 1 | Building -> acc) t.table 0
  in
  let s = { hits = t.hits; misses = t.misses; compiles = t.compiles; entries } in
  Mutex.unlock t.lock;
  s

let clear t =
  Mutex.lock t.lock;
  let ready =
    Hashtbl.fold (fun k slot acc -> match slot with Ready _ -> k :: acc | Building -> acc) t.table []
  in
  List.iter (Hashtbl.remove t.table) ready;
  Mutex.unlock t.lock

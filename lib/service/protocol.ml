module Json = Pmdp_report.Json
module Pmdp_error = Pmdp_util.Pmdp_error
module Scheduler = Pmdp_core.Scheduler
module Buffer_ = Pmdp_exec.Buffer

exception Closed

let max_frame_bytes = 1 lsl 20
let proto_version = 3

(* ------------------------------------------------------------------ *)
(* Framing *)

let really_write fd buf =
  let n = Bytes.length buf in
  let off = ref 0 in
  (try
     while !off < n do
       off := !off + Unix.write fd buf !off (n - !off)
     done
   with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> raise Closed)

(* [really_read] distinguishes EOF at offset 0 (peer closed between
   frames: a clean end of stream) from EOF mid-buffer (truncated
   frame). *)
let really_read fd buf =
  let n = Bytes.length buf in
  let off = ref 0 in
  (try
     while !off < n do
       match Unix.read fd buf !off (n - !off) with
       | 0 -> if !off = 0 then raise Exit else raise Closed
       | k -> off := !off + k
     done;
     true
   with
  | Exit -> false
  | Unix.Unix_error (ECONNRESET, _, _) -> if !off = 0 then false else raise Closed)

let write_frame fd json =
  let payload = Bytes.unsafe_of_string (Json.to_string json) in
  let n = Bytes.length payload in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int n);
  really_write fd header;
  really_write fd payload

(* Chaos writers: wire-level misbehaviour the client must survive.
   [write_truncated] sends the header and only half the payload, then
   the caller closes the socket — a mid-frame connection loss.
   [write_garbage] sends a well-framed payload that is not JSON — a
   corrupted but correctly-length-prefixed frame. *)
let write_truncated fd json =
  let payload = Bytes.unsafe_of_string (Json.to_string json) in
  let n = Bytes.length payload in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int n);
  really_write fd header;
  really_write fd (Bytes.sub payload 0 (n / 2))

let write_garbage fd =
  let payload = Bytes.of_string "\xfe\xedpmdp-chaos-not-json\x00\x01\x02" in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (Bytes.length payload));
  really_write fd header;
  really_write fd payload

let read_frame fd =
  let header = Bytes.create 4 in
  if not (really_read fd header) then None
  else begin
    let n = Int32.to_int (Bytes.get_int32_be header 0) in
    if n < 0 || n > max_frame_bytes then
      failwith (Printf.sprintf "protocol: frame length %d outside [0, %d]" n max_frame_bytes);
    let payload = Bytes.create n in
    if not (really_read fd payload) then raise Closed;
    match Json.of_string (Bytes.unsafe_to_string payload) with
    | Ok j -> Some j
    | Error e -> failwith ("protocol: bad frame payload: " ^ e)
  end

(* ------------------------------------------------------------------ *)
(* Codecs *)

let json_of_hello proto = Json.Obj [ ("op", Json.String "hello"); ("proto", Json.Int proto) ]

let request_of_json j =
  let invalid reason = Error (Pmdp_error.Plan_invalid { context = "protocol: submit"; reason }) in
  (* Distinguish a missing field (use the default) from an ill-typed
     one (reject): a client that sends ["scale": "big"] should hear
     about it, not silently run at scale 32. *)
  let field name decode ~default =
    match Json.member name j with
    | None -> Ok default
    | Some v -> (
        match decode v with
        | Some x -> Ok x
        | None -> invalid (Printf.sprintf "field %S is ill-typed" name))
  in
  let ( let* ) = Result.bind in
  match Option.bind (Json.member "app" j) Json.to_string_opt with
  | None -> invalid "missing or ill-typed field \"app\""
  | Some app ->
      let d = Service.request app in
      let* scale = field "scale" Json.to_int_opt ~default:d.Service.scale in
      let* seed = field "seed" Json.to_int_opt ~default:d.Service.seed in
      let* priority = field "priority" Json.to_int_opt ~default:d.Service.priority in
      let* deadline =
        field "deadline"
          (function Json.Null -> Some None | v -> Option.map Option.some (Json.to_float_opt v))
          ~default:d.Service.deadline
      in
      let* scheduler =
        field "scheduler"
          (fun v -> Option.bind (Json.to_string_opt v) Scheduler.of_string)
          ~default:d.Service.scheduler
      in
      if scale < 1 then invalid "field \"scale\" must be >= 1"
      else if (match deadline with Some d -> d <= 0.0 | None -> false) then
        invalid "field \"deadline\" must be > 0"
      else Ok { Service.app; scale; seed; scheduler; priority; deadline }

let json_of_request (r : Service.request) =
  Json.Obj
    (("op", Json.String "submit")
    :: ("app", Json.String r.Service.app)
    :: ("scale", Json.Int r.Service.scale)
    :: ("scheduler", Json.String (Scheduler.to_string r.Service.scheduler))
    :: ("seed", Json.Int r.Service.seed)
    :: ("priority", Json.Int r.Service.priority)
    ::
    (match r.Service.deadline with
    | None -> []
    | Some d -> [ ("deadline", Json.Float d) ]))

let json_of_error e =
  Json.Obj
    (("kind", Json.String (Pmdp_error.kind e))
    :: ("message", Json.String (Pmdp_error.message e))
    :: List.map
         (fun (name, f) ->
           ( name,
             match f with
             | Pmdp_error.Int i -> Json.Int i
             | Pmdp_error.Float x -> Json.Float x
             | Pmdp_error.Str s -> Json.String s ))
         (Pmdp_error.fields e))

let error_of_json j =
  let str name ~default =
    Option.value ~default (Option.bind (Json.member name j) Json.to_string_opt)
  in
  let int name ~default =
    Option.value ~default (Option.bind (Json.member name j) Json.to_int_opt)
  in
  let flt name ~default =
    Option.value ~default (Option.bind (Json.member name j) Json.to_float_opt)
  in
  let context = str "context" ~default:"(remote)" in
  match str "kind" ~default:"" with
  | "arity-mismatch" ->
      Pmdp_error.Arity_mismatch
        { context; expected = int "expected" ~default:0; got = int "got" ~default:0 }
  | "unresolved-external" ->
      Pmdp_error.Unresolved_external { name = str "name" ~default:"?"; context }
  | "scratch-over-budget" ->
      Pmdp_error.Scratch_over_budget
        {
          required_bytes = int "required_bytes" ~default:0;
          budget_bytes = int "budget_bytes" ~default:0;
          context;
        }
  | "worker-crash" ->
      Pmdp_error.Worker_crash
        { worker = int "worker" ~default:(-1); detail = str "detail" ~default:"(remote)" }
  | "timeout" -> Pmdp_error.Timeout { seconds = flt "seconds" ~default:0.0; context }
  | "cancelled" -> Pmdp_error.Cancelled { reason = str "reason" ~default:"(remote)" }
  | "pool-shutdown" -> Pmdp_error.Pool_shutdown { context }
  | "overloaded" ->
      Pmdp_error.Overloaded
        {
          shard = int "shard" ~default:(-1);
          depth = int "depth" ~default:0;
          limit = int "limit" ~default:0;
          context;
        }
  | "deadline-exceeded" ->
      Pmdp_error.Deadline_exceeded
        { deadline = flt "deadline" ~default:0.0; waited = flt "waited" ~default:0.0; context }
  | "plan-invalid" ->
      Pmdp_error.Plan_invalid { context; reason = str "reason" ~default:"(remote)" }
  | "circuit-open" ->
      Pmdp_error.Circuit_open
        {
          fingerprint = str "fingerprint" ~default:"?";
          failures = int "failures" ~default:0;
          retry_after = flt "retry_after" ~default:0.0;
          context;
        }
  | other ->
      Pmdp_error.Plan_invalid
        {
          context = "protocol: error frame";
          reason =
            (if other = "" then "missing error kind"
             else Printf.sprintf "unknown error kind %S: %s" other (str "message" ~default:""));
        }

let json_of_response (r : Service.response) =
  Json.Obj
    [
      ("id", Json.Int r.Service.id);
      ("fingerprint", Json.String r.Service.fingerprint);
      ("cache_hit", Json.Bool r.Service.cache_hit);
      ("batch_size", Json.Int r.Service.batch_size);
      ("degraded", Json.Bool r.Service.degraded);
      ("wall_seconds", Json.Float r.Service.wall_seconds);
      ("queue_seconds", Json.Float r.Service.queue_seconds);
      ("checksum", Json.Float r.Service.checksum);
      ( "outputs",
        Json.List
          (List.map
             (fun (name, buf) ->
               Json.Obj
                 [ ("name", Json.String name); ("checksum", Json.Float (Buffer_.checksum buf)) ])
             r.Service.results) );
      ( "max_abs_diff",
        match r.Service.max_abs_diff with None -> Json.Null | Some d -> Json.Float d );
    ]

let fields_of_counters (c : Service.counters) =
  [
    ("submitted", Json.Int c.Service.submitted);
    ("completed", Json.Int c.Service.completed);
    ("failed", Json.Int c.Service.failed);
    ("rejected", Json.Int c.Service.rejected);
    ("shed", Json.Int c.Service.shed);
    ("expired", Json.Int c.Service.expired);
    ("batches", Json.Int c.Service.batches);
    ("batched_requests", Json.Int c.Service.batched_requests);
    ("executions", Json.Int c.Service.executions);
    ("restarts", Json.Int c.Service.restarts);
    ("queue_depth", Json.Int c.Service.queue_depth);
    ("inflight_bytes", Json.Int c.Service.inflight_bytes);
    ( "cache",
      Json.Obj
        [
          ("hits", Json.Int c.Service.cache.Plan_cache.hits);
          ("misses", Json.Int c.Service.cache.Plan_cache.misses);
          ("compiles", Json.Int c.Service.cache.Plan_cache.compiles);
          ("loads", Json.Int c.Service.cache.Plan_cache.loads);
          ("load_rejects", Json.Int c.Service.cache.Plan_cache.load_rejects);
          ("entries", Json.Int c.Service.cache.Plan_cache.entries);
        ] );
  ]

let json_of_breaker (b : Breaker.counters) =
  Json.Obj
    [
      ("trips", Json.Int b.Breaker.trips);
      ("rejects", Json.Int b.Breaker.rejects);
      ("probes", Json.Int b.Breaker.probes);
      ("closes", Json.Int b.Breaker.closes);
      ("open_now", Json.Int b.Breaker.open_now);
      ("tracked", Json.Int b.Breaker.tracked);
    ]

let json_of_stats (s : Service.stats) =
  Json.Obj
    [
      ( "shards",
        Json.List
          (Array.to_list
             (Array.mapi
                (fun i c -> Json.Obj (("shard", Json.Int i) :: fields_of_counters c))
                s.Service.shards)) );
      ("totals", Json.Obj (fields_of_counters s.Service.total));
      ("breaker", json_of_breaker s.Service.breaker);
      ( "retune",
        match s.Service.retune with
        | None -> Json.Null
        | Some r ->
            Json.Obj
              [
                ("observed", Json.Int r.Retune.observed);
                ("hot", Json.Int r.Retune.hot);
                ("started", Json.Int r.Retune.started);
                ("wins", Json.Int r.Retune.wins);
                ("losses", Json.Int r.Retune.losses);
                ("swaps", Json.Int r.Retune.swaps);
              ] );
      ( "disk",
        match s.Service.disk with
        | None -> Json.Null
        | Some d ->
            Json.Obj
              [
                ("stores", Json.Int d.Disk_cache.stores);
                ("store_failures", Json.Int d.Disk_cache.store_failures);
                ("hits", Json.Int d.Disk_cache.hits);
                ("misses", Json.Int d.Disk_cache.misses);
                ("quarantined", Json.Int d.Disk_cache.quarantined);
              ] );
    ]

(* ------------------------------------------------------------------ *)
(* Health codec *)

let json_of_health (h : Service.health) =
  Json.Obj
    [
      ("draining", Json.Bool h.Service.draining);
      ( "shards",
        Json.List
          (Array.to_list
             (Array.map
                (fun (sh : Shard.health) ->
                  Json.Obj
                    [
                      ("shard", Json.Int sh.Shard.shard);
                      ("alive", Json.Bool sh.Shard.alive);
                      ("queue_depth", Json.Int sh.Shard.queue_depth);
                      ("running", Json.Int sh.Shard.running);
                      ("restarts", Json.Int sh.Shard.restarts);
                    ])
                h.Service.shards)) );
      ("breaker", json_of_breaker h.Service.breaker);
      ( "circuits",
        Json.List
          (List.map
             (fun (c : Breaker.snapshot) ->
               Json.Obj
                 [
                   ("fingerprint", Json.String c.Breaker.fingerprint);
                   ("state", Json.String (Breaker.state_to_string c.Breaker.state));
                   ("failures", Json.Int c.Breaker.failures);
                   ("trips", Json.Int c.Breaker.trips);
                 ])
             h.Service.circuits) );
    ]

let health_of_json j =
  let malformed reason =
    Error (Pmdp_error.Plan_invalid { context = "protocol: health frame"; reason })
  in
  let int j name ~default = Option.value ~default (Option.bind (Json.member name j) Json.to_int_opt) in
  match
    ( Option.bind (Json.member "draining" j) Json.to_bool_opt,
      Option.bind (Json.member "shards" j) Json.to_list_opt )
  with
  | None, _ | _, None -> malformed "expected draining and shards members"
  | Some draining, Some shards ->
      let shards =
        Array.of_list
          (List.map
             (fun sj ->
               {
                 Shard.shard = int sj "shard" ~default:(-1);
                 alive = Option.value ~default:false (Option.bind (Json.member "alive" sj) Json.to_bool_opt);
                 queue_depth = int sj "queue_depth" ~default:0;
                 running = int sj "running" ~default:0;
                 restarts = int sj "restarts" ~default:0;
               })
             shards)
      in
      let breaker =
        let bj = Option.value ~default:(Json.Obj []) (Json.member "breaker" j) in
        {
          Breaker.trips = int bj "trips" ~default:0;
          rejects = int bj "rejects" ~default:0;
          probes = int bj "probes" ~default:0;
          closes = int bj "closes" ~default:0;
          open_now = int bj "open_now" ~default:0;
          tracked = int bj "tracked" ~default:0;
        }
      in
      let circuits =
        match Option.bind (Json.member "circuits" j) Json.to_list_opt with
        | None -> []
        | Some cs ->
            List.filter_map
              (fun cj ->
                match Option.bind (Json.member "fingerprint" cj) Json.to_string_opt with
                | None -> None
                | Some fingerprint ->
                    let state =
                      Option.value ~default:"open"
                        (Option.bind (Json.member "state" cj) Json.to_string_opt)
                    in
                    Some
                      {
                        Breaker.fingerprint;
                        state =
                          (match Breaker.state_of_string state with
                          | Some s -> s
                          | None -> Breaker.Open);
                        failures = int cj "failures" ~default:0;
                        trips = int cj "trips" ~default:0;
                      })
              cs
      in
      Ok { Service.draining; shards; breaker; circuits }

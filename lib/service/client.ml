module Json = Pmdp_report.Json
module Pmdp_error = Pmdp_util.Pmdp_error

type t = { fd : Unix.file_descr; mutable proto : int; mutable closed : bool }

type remote_response = {
  id : int;
  fingerprint : string;
  cache_hit : bool;
  batch_size : int;
  degraded : bool;
  wall_seconds : float;
  queue_seconds : float;
  checksum : float;
  outputs : (string * float) list;
  max_abs_diff : float option;
}

(* Offer our highest version; a v2 server pins the connection and
   echoes the negotiated version, a v1 server answers the hello with
   an unknown-operation error — which is itself the answer: v1. *)
let handshake t =
  match
    Protocol.write_frame t.fd (Protocol.json_of_hello Protocol.proto_version);
    Protocol.read_frame t.fd
  with
  | Some reply
    when Option.bind (Json.member "ok" reply) Json.to_bool_opt = Some true ->
      t.proto <-
        Option.value ~default:1 (Option.bind (Json.member "proto" reply) Json.to_int_opt)
  | Some _ | None -> t.proto <- 1
  | exception (Protocol.Closed | Failure _ | Unix.Unix_error _) -> t.proto <- 1

let connect ~endpoint =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Transport.connect endpoint in
  let t = { fd; proto = 1; closed = false } in
  handshake t;
  t

let connect_path ~path = connect ~endpoint:(Transport.Uds path)
let proto t = t.proto

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let transport_error detail = Pmdp_error.Worker_crash { worker = -1; detail = "client: " ^ detail }

(* One request frame out, one reply frame back, with every transport
   failure mode folded into a typed error. *)
let round_trip t req =
  if t.closed then Error (transport_error "connection already closed")
  else
    match
      Protocol.write_frame t.fd req;
      Protocol.read_frame t.fd
    with
    | None -> Error (transport_error "server closed the connection")
    | Some reply -> Ok reply
    | exception Protocol.Closed -> Error (transport_error "connection dropped mid-frame")
    | exception Failure reason -> Error (transport_error reason)
    | exception Unix.Unix_error (e, _, _) -> Error (transport_error (Unix.error_message e))

(* Unwrap the {"ok": ...} envelope. *)
let expect_ok t req =
  match round_trip t req with
  | Error _ as e -> e
  | Ok reply -> (
      match Option.bind (Json.member "ok" reply) Json.to_bool_opt with
      | Some true -> Ok reply
      | Some false -> (
          match Json.member "error" reply with
          | Some e -> Error (Protocol.error_of_json e)
          | None -> Error (transport_error "error reply without an error object"))
      | None -> Error (transport_error "reply without an \"ok\" field"))

let remote_response_of_json j =
  let int name = Option.bind (Json.member name j) Json.to_int_opt in
  let float name = Option.bind (Json.member name j) Json.to_float_opt in
  let bool name = Option.bind (Json.member name j) Json.to_bool_opt in
  match (int "id", Json.member "fingerprint" j) with
  | Some id, Some (Json.String fingerprint) ->
      Ok
        {
          id;
          fingerprint;
          cache_hit = Option.value ~default:false (bool "cache_hit");
          batch_size = Option.value ~default:1 (int "batch_size");
          degraded = Option.value ~default:false (bool "degraded");
          wall_seconds = Option.value ~default:0.0 (float "wall_seconds");
          queue_seconds = Option.value ~default:0.0 (float "queue_seconds");
          checksum = Option.value ~default:Float.nan (float "checksum");
          outputs =
            (match Option.bind (Json.member "outputs" j) Json.to_list_opt with
            | None -> []
            | Some l ->
                List.filter_map
                  (fun o ->
                    match
                      ( Option.bind (Json.member "name" o) Json.to_string_opt,
                        Option.bind (Json.member "checksum" o) Json.to_float_opt )
                    with
                    | Some n, Some c -> Some (n, c)
                    | _ -> None)
                  l);
          max_abs_diff = Option.bind (Json.member "max_abs_diff" j) Json.to_float_opt;
        }
  | _ -> Error (transport_error "response frame lacks id/fingerprint")

let submit t r =
  match expect_ok t (Protocol.json_of_request r) with
  | Error _ as e -> e
  | Ok reply -> (
      match Json.member "response" reply with
      | None -> Error (transport_error "ok reply without a response object")
      | Some resp -> remote_response_of_json resp)

let stats t =
  match expect_ok t (Json.Obj [ ("op", Json.String "stats") ]) with
  | Error _ as e -> e
  | Ok reply -> (
      match Json.member "stats" reply with
      | None -> Error (transport_error "ok reply without a stats object")
      | Some s -> Ok s)

let shutdown_server t =
  match expect_ok t (Json.Obj [ ("op", Json.String "shutdown") ]) with
  | Error _ as e -> e
  | Ok _ -> Ok ()

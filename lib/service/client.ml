module Json = Pmdp_report.Json
module Pmdp_error = Pmdp_util.Pmdp_error
module Rng = Pmdp_util.Rng

module Retry_policy = struct
  type t = {
    max_attempts : int;
    base_delay : float;
    max_delay : float;
    multiplier : float;
    seed : int;
  }

  let none = { max_attempts = 1; base_delay = 0.0; max_delay = 0.0; multiplier = 1.0; seed = 0 }

  let create ?(max_attempts = 4) ?(base_delay = 0.005) ?(max_delay = 0.5) ?(multiplier = 2.0)
      ?(seed = 0) () =
    {
      max_attempts = max 1 max_attempts;
      base_delay = Float.max 0.0 base_delay;
      max_delay = Float.max 0.0 max_delay;
      multiplier = Float.max 1.0 multiplier;
      seed;
    }

  let default = create ()

  (* Which failures are worth a retry?  Transient conditions — a full
     queue, a missed deadline, a crashed worker or dropped connection,
     an open circuit that will cool down — may clear; a plan that does
     not lower, a wrong arity, or an unknown input never will. *)
  let retryable = function
    | Pmdp_error.Overloaded _ | Pmdp_error.Deadline_exceeded _ | Pmdp_error.Timeout _
    | Pmdp_error.Worker_crash _ | Pmdp_error.Cancelled _ | Pmdp_error.Circuit_open _ ->
        true
    | Pmdp_error.Plan_invalid _ | Pmdp_error.Arity_mismatch _ | Pmdp_error.Unresolved_external _
    | Pmdp_error.Scratch_over_budget _ | Pmdp_error.Pool_shutdown _
    (* a missing toolchain or unloadable kernel is deterministic —
       and the server falls back to the interpreter anyway, so this
       should never surface to a client *)
    | Pmdp_error.Kernel_unavailable _ ->
        false

  (* Full-jitter-ish exponential backoff: the k-th retry sleeps in
     [d/2, d] with d = min(max_delay, base * multiplier^(k-1)), drawn
     from the policy's seeded stream so a given load run backs off
     identically every time. *)
  let delay p ~rng ~attempt =
    let d = Float.min p.max_delay (p.base_delay *. (p.multiplier ** float_of_int (attempt - 1))) in
    if d <= 0.0 then 0.0 else d *. (0.5 +. Rng.float rng 0.5)
end

type retry_stats = { attempts : int; retried : int; gave_up : int }

let zero_retry_stats = { attempts = 0; retried = 0; gave_up = 0 }

let add_retry_stats a b =
  {
    attempts = a.attempts + b.attempts;
    retried = a.retried + b.retried;
    gave_up = a.gave_up + b.gave_up;
  }

type conn = { fd : Unix.file_descr; mutable proto : int }

type t = {
  endpoint : Transport.endpoint;
  retry : Retry_policy.t;
  rng : Rng.t;
  mutable conn : conn option;
  mutable closed : bool;
  mutable attempts : int;
  mutable retried : int;
  mutable gave_up : int;
}

type remote_response = {
  id : int;
  fingerprint : string;
  cache_hit : bool;
  batch_size : int;
  degraded : bool;
  wall_seconds : float;
  queue_seconds : float;
  checksum : float;
  outputs : (string * float) list;
  max_abs_diff : float option;
}

let transport_error detail = Pmdp_error.Worker_crash { worker = -1; detail = "client: " ^ detail }

let connect_error endpoint e =
  Pmdp_error.Worker_crash
    {
      worker = -1;
      detail =
        Printf.sprintf "client: connect %s: %s" (Transport.to_string endpoint)
          (Unix.error_message e);
    }

(* Offer our highest version; an older server pins the connection and
   echoes the negotiated version, a v1 server answers the hello with
   an unknown-operation error — which is itself the answer: v1. *)
let handshake c =
  match
    Protocol.write_frame c.fd (Protocol.json_of_hello Protocol.proto_version);
    Protocol.read_frame c.fd
  with
  | Some reply when Option.bind (Json.member "ok" reply) Json.to_bool_opt = Some true ->
      c.proto <-
        Option.value ~default:1 (Option.bind (Json.member "proto" reply) Json.to_int_opt)
  | Some _ | None -> c.proto <- 1
  | exception (Protocol.Closed | Failure _ | Unix.Unix_error _) -> c.proto <- 1

let dial t =
  match Transport.connect t.endpoint with
  | fd ->
      let c = { fd; proto = 1 } in
      handshake c;
      t.conn <- Some c;
      Ok c
  | exception Unix.Unix_error (e, _, _) -> Error (connect_error t.endpoint e)

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some c ->
      t.conn <- None;
      (try Unix.close c.fd with Unix.Unix_error _ -> ())

let connect ?(retry = Retry_policy.none) ~endpoint () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let t =
    {
      endpoint;
      retry;
      rng = Rng.create retry.Retry_policy.seed;
      conn = None;
      closed = false;
      attempts = 0;
      retried = 0;
      gave_up = 0;
    }
  in
  let rec go attempt =
    match dial t with
    | Ok _ -> Ok t
    | Error _ when attempt < retry.Retry_policy.max_attempts ->
        Unix.sleepf (Retry_policy.delay retry ~rng:t.rng ~attempt);
        go (attempt + 1)
    | Error _ as e -> e
  in
  match go 1 with Ok t -> Ok t | Error e -> Error e

let proto t = match t.conn with Some c -> c.proto | None -> 0
let retry_stats t = { attempts = t.attempts; retried = t.retried; gave_up = t.gave_up }

let close t =
  if not t.closed then begin
    t.closed <- true;
    drop_conn t
  end

(* One request frame out, one reply frame back, with every transport
   failure mode folded into a typed error. *)
let round_trip c req =
  match
    Protocol.write_frame c.fd req;
    Protocol.read_frame c.fd
  with
  | None -> Error (transport_error "server closed the connection")
  | Some reply -> Ok reply
  | exception Protocol.Closed -> Error (transport_error "connection dropped mid-frame")
  | exception Failure reason -> Error (transport_error reason)
  | exception Unix.Unix_error (e, _, _) -> Error (transport_error (Unix.error_message e))

(* One attempt: (re)connect if needed, round-trip, unwrap the
   {"ok": ...} envelope.  [`Transport] failures poison the connection
   (the stream may hold a half-written frame), [`Typed] ones come from
   a healthy server and keep it. *)
let attempt_once t req =
  match (match t.conn with Some c -> Ok c | None -> dial t) with
  | Error e -> `Transport e
  | Ok c -> (
      match round_trip c req with
      | Error e -> `Transport e
      | Ok reply -> (
          match Option.bind (Json.member "ok" reply) Json.to_bool_opt with
          | Some true -> `Ok reply
          | Some false -> (
              match Json.member "error" reply with
              | Some e -> `Typed (Protocol.error_of_json e)
              | None -> `Transport (transport_error "error reply without an error object"))
          | None -> `Transport (transport_error "reply without an \"ok\" field")))

(* The retry loop.  Requests are pure, deterministic computations, so
   re-sending after a lost reply frame at worst recomputes (or hits
   the plan cache); there is no at-most-once hazard. *)
let request t req =
  if t.closed then Error (transport_error "connection already closed")
  else begin
    let p = t.retry in
    let rec go attempt =
      t.attempts <- t.attempts + 1;
      let retry e =
        if attempt < p.Retry_policy.max_attempts && Retry_policy.retryable e then begin
          if attempt = 1 then t.retried <- t.retried + 1;
          Unix.sleepf (Retry_policy.delay p ~rng:t.rng ~attempt);
          go (attempt + 1)
        end
        else begin
          if Retry_policy.retryable e then t.gave_up <- t.gave_up + 1;
          Error e
        end
      in
      match attempt_once t req with
      | `Ok reply -> Ok reply
      | `Transport e ->
          drop_conn t;
          retry e
      | `Typed e -> retry e
    in
    go 1
  end

let remote_response_of_json j =
  let int name = Option.bind (Json.member name j) Json.to_int_opt in
  let float name = Option.bind (Json.member name j) Json.to_float_opt in
  let bool name = Option.bind (Json.member name j) Json.to_bool_opt in
  match (int "id", Json.member "fingerprint" j) with
  | Some id, Some (Json.String fingerprint) ->
      Ok
        {
          id;
          fingerprint;
          cache_hit = Option.value ~default:false (bool "cache_hit");
          batch_size = Option.value ~default:1 (int "batch_size");
          degraded = Option.value ~default:false (bool "degraded");
          wall_seconds = Option.value ~default:0.0 (float "wall_seconds");
          queue_seconds = Option.value ~default:0.0 (float "queue_seconds");
          checksum = Option.value ~default:Float.nan (float "checksum");
          outputs =
            (match Option.bind (Json.member "outputs" j) Json.to_list_opt with
            | None -> []
            | Some l ->
                List.filter_map
                  (fun o ->
                    match
                      ( Option.bind (Json.member "name" o) Json.to_string_opt,
                        Option.bind (Json.member "checksum" o) Json.to_float_opt )
                    with
                    | Some n, Some c -> Some (n, c)
                    | _ -> None)
                  l);
          max_abs_diff = Option.bind (Json.member "max_abs_diff" j) Json.to_float_opt;
        }
  | _ -> Error (transport_error "response frame lacks id/fingerprint")

let submit t r =
  match request t (Protocol.json_of_request r) with
  | Error _ as e -> e
  | Ok reply -> (
      match Json.member "response" reply with
      | None -> Error (transport_error "ok reply without a response object")
      | Some resp -> remote_response_of_json resp)

let stats t =
  match request t (Json.Obj [ ("op", Json.String "stats") ]) with
  | Error _ as e -> e
  | Ok reply -> (
      match Json.member "stats" reply with
      | None -> Error (transport_error "ok reply without a stats object")
      | Some s -> Ok s)

let health t =
  match request t (Json.Obj [ ("op", Json.String "health") ]) with
  | Error _ as e -> e
  | Ok reply -> (
      match Json.member "health" reply with
      | None -> Error (transport_error "ok reply without a health object")
      | Some h -> Protocol.health_of_json h)

(* Single attempt, deliberately outside the retry loop: re-sending a
   shutdown after a lost ack could take down a freshly restarted
   server. *)
let shutdown_server t =
  if t.closed then Error (transport_error "connection already closed")
  else
    match attempt_once t (Json.Obj [ ("op", Json.String "shutdown") ]) with
    | `Ok _ -> Ok ()
    | `Typed e -> Error e
    | `Transport e ->
        drop_conn t;
        Error e

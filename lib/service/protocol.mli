(** Wire protocol of [pmdp serve]: length-prefixed JSON frames over a
    Unix-domain or TCP stream ({!Transport}).

    Each frame is a 4-byte big-endian payload length followed by that
    many bytes of UTF-8 JSON (one value per frame).  The client sends
    one request frame and reads one response frame; connections are
    persistent, so a client can issue any number of requests before
    closing.

    {2 Versioning}

    The protocol is versioned ({!proto_version}, currently 3).  A
    connection starts at version 1 — everything a v1 client can say
    still means the same thing — and upgrades by sending
    [{"op": "hello", "proto": N}]; the server answers
    [{"ok": true, "proto": min N proto_version}] and pins the
    connection to that version.  v2 added the handshake itself, the
    [priority]/[deadline] submit fields, and the sharded stats shape;
    v3 added the [health] operation, the ["circuit-open"] error kind,
    and the breaker/restart counters in stats.  Unknown-operation
    errors name the connection's negotiated version, so a client
    talking past the server finds out which dialect it was heard
    in.

    {2 Operations}

    Every request object carries an ["op"] field:

    - [{"op": "hello", "proto": N}] — negotiate the protocol version
      (see above).
    - [{"op": "submit", "app": ..., "scale": ..., "scheduler": ...,
      "seed": ..., "priority": ..., "deadline": ...}] — run a
      pipeline (all fields but [app] optional, with
      {!Service.request} defaults).  The server replies
      [{"ok": true, "response": {...}}] with the scalar half of the
      {!Service.response} — id, fingerprint, cache_hit, batch_size,
      degraded, wall_seconds, queue_seconds, checksum, per-output
      checksums, max_abs_diff — never the buffers.
    - [{"op": "status", "id": N}] — phase of a live request:
      [{"ok": true, "status": "queued" | "running" | "done" |
      "failed" | "unknown"}].
    - [{"op": "stats"}] — [{"ok": true, "stats": {"shards": [...],
      "totals": {...}, "breaker": {...}, "disk": ...}}]: one counters
      object per dispatcher shard (each tagged with its ["shard"]
      index), their field-wise sum, the circuit-breaker ledger, and
      the disk-cache counters (or [null] when no [--cache-dir] is
      configured).
    - [{"op": "health"}] (v3) — [{"ok": true, "health": {"draining":
      ..., "shards": [...], "breaker": {...}, "circuits": [...]}}]:
      per-shard dispatcher liveness, queue depth, in-flight count and
      supervisor restarts, plus every non-closed circuit.
    - [{"op": "shutdown"}] — drain and stop the server; acknowledged
      with [{"ok": true}] before the listener exits.

    Failures reply [{"ok": false, "error": {"kind": ..., "message":
    ..., <payload fields>}}] with the typed
    {!Pmdp_util.Pmdp_error.t} rendering. *)

exception Closed
(** Peer hung up mid-frame (a clean EOF at a frame boundary reads as
    [None] instead). *)

val max_frame_bytes : int
(** Refuse frames larger than this (1 MiB) — a corrupt or hostile
    length prefix must not trigger a giant allocation. *)

val proto_version : int
(** The highest protocol version this build speaks (3). *)

val write_frame : Unix.file_descr -> Pmdp_report.Json.t -> unit
(** Serialize compactly and send one frame.
    @raise Closed on a broken pipe. *)

val read_frame : Unix.file_descr -> Pmdp_report.Json.t option
(** Read one frame; [None] on clean EOF before any byte of a frame.
    @raise Closed on EOF mid-frame.
    @raise Failure on an oversized frame or unparseable payload. *)

(** {2 Chaos writers}

    Wire-level misbehaviour injected by the server under a
    {!Pmdp_runtime.Fault} plan — the failure modes a resilient client
    must survive. *)

val write_truncated : Unix.file_descr -> Pmdp_report.Json.t -> unit
(** Send the length header but only half the payload (the caller then
    closes the socket): a mid-frame connection loss, which the reader
    surfaces as {!Closed}. *)

val write_garbage : Unix.file_descr -> unit
(** Send a correctly length-prefixed frame whose payload is not JSON:
    the reader surfaces it as [Failure]. *)

(** {2 Codecs} *)

val json_of_hello : int -> Pmdp_report.Json.t
(** The version-negotiation operation for a client that speaks
    [proto]. *)

val request_of_json :
  Pmdp_report.Json.t -> (Service.request, Pmdp_util.Pmdp_error.t) result
(** Decode a submit operation's fields.  Missing optional fields take
    the {!Service.request} defaults; a missing ["app"], an unknown
    scheduler name, a non-positive deadline, or ill-typed fields are
    [Plan_invalid]. *)

val json_of_request : Service.request -> Pmdp_report.Json.t
(** The submit operation for a request (includes ["op"]; [deadline]
    is omitted when [None]). *)

val json_of_error : Pmdp_util.Pmdp_error.t -> Pmdp_report.Json.t
(** [{"kind": ..., "message": ..., <structured payload fields>}]. *)

val error_of_json : Pmdp_report.Json.t -> Pmdp_util.Pmdp_error.t
(** Best-effort inverse of {!json_of_error} for the client side: the
    kind and message survive the round trip; unknown kinds decode as
    [Plan_invalid]. *)

val json_of_response : Service.response -> Pmdp_report.Json.t
(** Scalar fields plus per-output checksums; buffers stay
    server-side. *)

val json_of_stats : Service.stats -> Pmdp_report.Json.t
(** The sharded shape: [{"shards": [...], "totals": {...},
    "breaker": {...}, "disk": ...}]. *)

val json_of_breaker : Breaker.counters -> Pmdp_report.Json.t
(** The circuit-breaker ledger object shared by stats and health. *)

val json_of_health : Service.health -> Pmdp_report.Json.t
(** The v3 health shape: [{"draining": ..., "shards": [...],
    "breaker": {...}, "circuits": [...]}]. *)

val health_of_json :
  Pmdp_report.Json.t -> (Service.health, Pmdp_util.Pmdp_error.t) result
(** Inverse of {!json_of_health} for the client side; a frame without
    the required members is [Plan_invalid]. *)

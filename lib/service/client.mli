(** Client side of the {!Protocol}: one connection to a [pmdp serve]
    endpoint (Unix-domain or TCP).

    A connection carries one request at a time (the server replies in
    order); for concurrent load, open one client per in-flight
    request — {!Load} does exactly that.  Not thread-safe: share a
    client between threads only with external locking. *)

type t

(** What a submit returns over the wire — the scalar half of
    {!Service.response}; buffers stay in the server. *)
type remote_response = {
  id : int;
  fingerprint : string;
  cache_hit : bool;
  batch_size : int;
  degraded : bool;
  wall_seconds : float;
  queue_seconds : float;
  checksum : float;
  outputs : (string * float) list;  (** live-out name, checksum *)
  max_abs_diff : float option;
}

val connect : endpoint:Transport.endpoint -> t
(** Connect and negotiate the protocol version (one hello round trip;
    a v1 server that rejects the hello pins the connection to v1).
    @raise Unix.Unix_error when nothing is listening there. *)

val connect_path : path:string -> t
  [@@ocaml.deprecated "use Client.connect ~endpoint:(Transport.Uds path)"]
(** Pre-endpoint spelling of {!connect} for a Unix socket path. *)

val proto : t -> int
(** The negotiated protocol version (1 or 2). *)

val submit : t -> Service.request -> (remote_response, Pmdp_util.Pmdp_error.t) result
(** Round-trip one submit.  Transport and protocol failures are
    folded into typed errors ([Worker_crash { worker = -1; _ }] for a
    dropped connection), never raised. *)

val stats : t -> (Pmdp_report.Json.t, Pmdp_util.Pmdp_error.t) result
(** The server's stats object, as JSON (see {!Protocol.json_of_stats}
    for the fields). *)

val shutdown_server : t -> (unit, Pmdp_util.Pmdp_error.t) result
(** Ask the server to drain and stop; returns once acknowledged. *)

val close : t -> unit
(** Idempotent. *)

(** Client side of the {!Protocol}: one connection to a [pmdp serve]
    endpoint (Unix-domain or TCP), with typed retries.

    A connection carries one request at a time (the server replies in
    order); for concurrent load, open one client per in-flight
    request — {!Load} does exactly that.  Not thread-safe: share a
    client between threads only with external locking.

    Every transport failure (refused connection, dropped or short
    frame, garbage reply) is folded into a typed retryable
    [Pmdp_error.Worker_crash { worker = -1; _ }]; nothing raises.
    When a {!Retry_policy} allows more than one attempt, the client
    reconnects and re-sends retryable failures itself, sleeping an
    exponentially growing, seeded-jittered delay between attempts.
    Requests are pure, deterministic computations, so a re-send after
    a lost reply frame at worst recomputes (or hits the server's plan
    cache). *)

(** When and how to retry, derived from the [Pmdp_error] taxonomy. *)
module Retry_policy : sig
  type t = {
    max_attempts : int;  (** total attempts, including the first (>= 1) *)
    base_delay : float;  (** seconds before the first retry *)
    max_delay : float;  (** backoff ceiling, seconds *)
    multiplier : float;  (** exponential growth factor (>= 1) *)
    seed : int;  (** drives the jitter stream *)
  }

  val none : t
  (** One attempt, no retries — the pre-PR-8 behavior. *)

  val default : t
  (** 4 attempts, 5 ms base, x2 growth, 500 ms ceiling, seed 0. *)

  val create :
    ?max_attempts:int ->
    ?base_delay:float ->
    ?max_delay:float ->
    ?multiplier:float ->
    ?seed:int ->
    unit ->
    t

  val retryable : Pmdp_util.Pmdp_error.t -> bool
  (** Transient failures retry: [Overloaded], [Deadline_exceeded],
      [Timeout], [Worker_crash] (which covers every client transport
      failure and supervisor-settled request), [Cancelled],
      [Circuit_open].  Permanent ones do not: [Plan_invalid],
      [Arity_mismatch], [Unresolved_external], [Scratch_over_budget],
      [Pool_shutdown]. *)

  val delay : t -> rng:Pmdp_util.Rng.t -> attempt:int -> float
  (** Sleep before retry number [attempt] (1-based): uniform in
      [d/2, d] where [d = min max_delay (base * multiplier^(attempt-1))]. *)
end

(** Cumulative per-client retry accounting, surfaced by {!Load}. *)
type retry_stats = {
  attempts : int;  (** wire attempts, including first sends *)
  retried : int;  (** requests that needed more than one attempt *)
  gave_up : int;  (** requests that still failed retryably at the end *)
}

val zero_retry_stats : retry_stats
val add_retry_stats : retry_stats -> retry_stats -> retry_stats

type t

(** What a submit returns over the wire — the scalar half of
    {!Service.response}; buffers stay in the server. *)
type remote_response = {
  id : int;
  fingerprint : string;
  cache_hit : bool;
  batch_size : int;
  degraded : bool;
  wall_seconds : float;
  queue_seconds : float;
  checksum : float;
  outputs : (string * float) list;  (** live-out name, checksum *)
  max_abs_diff : float option;
}

val connect :
  ?retry:Retry_policy.t -> endpoint:Transport.endpoint -> unit -> (t, Pmdp_util.Pmdp_error.t) result
(** Connect and negotiate the protocol version (one hello round trip;
    a v1 server that rejects the hello pins the connection to v1).  A
    refused/missing endpoint is a typed, retryable error naming the
    endpoint — never a raw [Unix.Unix_error] — and is itself retried
    under [retry] (default {!Retry_policy.none}).  The policy is
    remembered and applied to every subsequent {!submit}. *)

val proto : t -> int
(** The negotiated protocol version (0 when disconnected). *)

val retry_stats : t -> retry_stats

val submit : t -> Service.request -> (remote_response, Pmdp_util.Pmdp_error.t) result
(** Round-trip one submit, retrying and reconnecting per the policy
    given at {!connect}.  Transport and protocol failures are folded
    into typed errors, never raised. *)

val stats : t -> (Pmdp_report.Json.t, Pmdp_util.Pmdp_error.t) result
(** The server's stats object, as JSON (see {!Protocol.json_of_stats}
    for the fields).  Retries per the policy. *)

val health : t -> (Service.health, Pmdp_util.Pmdp_error.t) result
(** Per-shard liveness, queue depth, restarts, and circuit-breaker
    state.  Retries per the policy. *)

val shutdown_server : t -> (unit, Pmdp_util.Pmdp_error.t) result
(** Ask the server to drain and stop; returns once acknowledged.
    Never retried: re-sending after a lost ack could take down a
    freshly restarted server. *)

val close : t -> unit
(** Idempotent. *)

(* Endpoint abstraction under Server/Client: the same length-prefixed
   frames flow over a Unix-domain socket or a TCP connection; only the
   address family and the socket options differ. *)

type endpoint = Uds of string | Tcp of string * int

let to_string = function
  | Uds path -> "unix://" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp://%s:%d" host port

let strip_prefix ~prefix s =
  let np = String.length prefix and ns = String.length s in
  if ns >= np && String.sub s 0 np = prefix then Some (String.sub s np (ns - np)) else None

let of_string s =
  match strip_prefix ~prefix:"unix://" s with
  | Some "" -> Error "unix:// endpoint needs a socket path"
  | Some path -> Ok (Uds path)
  | None -> (
      match strip_prefix ~prefix:"tcp://" s with
      | Some rest -> (
          (* host:port, split at the last colon so IPv6-ish hosts with
             colons still parse; the port must be a whole number. *)
          match String.rindex_opt rest ':' with
          | None -> Error (Printf.sprintf "tcp:// endpoint %S needs host:port" rest)
          | Some i -> (
              let host = String.sub rest 0 i in
              let port_s = String.sub rest (i + 1) (String.length rest - i - 1) in
              match int_of_string_opt port_s with
              | _ when host = "" -> Error "tcp:// endpoint needs a host"
              | None -> Error (Printf.sprintf "tcp:// port %S is not a number" port_s)
              | Some p when p < 0 || p > 65535 ->
                  Error (Printf.sprintf "tcp:// port %d outside [0, 65535]" p)
              | Some p -> Ok (Tcp (host, p))))
      | None ->
          if String.length s = 0 then Error "empty endpoint"
          else
            (* A scheme we do not speak is an error; anything else is a
               bare Unix-socket path (the pre-endpoint --socket form). *)
            let has_scheme =
              match String.index_opt s ':' with
              | Some i ->
                  i + 2 < String.length s && s.[i + 1] = '/' && s.[i + 2] = '/'
              | None -> false
            in
            if has_scheme then
              Error (Printf.sprintf "unknown endpoint scheme in %S (unix:// or tcp://)" s)
            else Ok (Uds s))

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host))
      | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let sockaddr = function
  | Uds path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (resolve_host host, port)

let domain = function Uds _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

(* Nagle batches our small frames behind the previous ACK; a
   request/response protocol wants them on the wire immediately. *)
let nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ | Invalid_argument _ -> ()

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let listen ?(backlog = 16) ep =
  (match ep with
  | Uds path -> (
      (* Replace only what is provably a stale socket; anything else is
         not ours — let bind fail with EADDRINUSE/EEXIST. *)
      match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> ()
      | exception Unix.Unix_error (ENOENT, _, _) -> ())
  | Tcp _ -> ());
  let fd = Unix.socket (domain ep) Unix.SOCK_STREAM 0 in
  (try
     (match ep with
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Uds _ -> ());
     Unix.bind fd (sockaddr ep);
     Unix.listen fd backlog
   with e ->
     close_quietly fd;
     raise e);
  fd

let bound_endpoint ep fd =
  match ep with
  | Uds _ -> ep
  | Tcp (host, _) -> (
      (* Port 0 asks the kernel to pick; report what it picked so
         clients (and tests) can connect to the real port. *)
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> Tcp (host, port)
      | Unix.ADDR_UNIX _ | (exception Unix.Unix_error _) -> ep)

let connect ep =
  let fd = Unix.socket (domain ep) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr ep)
   with e ->
     close_quietly fd;
     raise e);
  (match ep with Tcp _ -> nodelay fd | Uds _ -> ());
  fd

let cleanup = function
  | Uds path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

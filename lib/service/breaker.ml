(* Per-fingerprint circuit breaker.

   A plan that keeps failing — a compile error replayed from the plan
   cache, or an execution that dies every time — burns queue slots,
   batch windows, and pool time on every retry.  The breaker sits in
   front of admission: after [threshold] consecutive failures for one
   fingerprint the circuit trips open and further requests for that
   plan are refused immediately with a typed [Circuit_open] error
   (cheap for the service, retryable for the client).  After
   [cooldown] seconds one probe request is admitted (half-open); its
   outcome closes the circuit or re-trips it.

   Successes and failures are reported per batch execution by the
   shard dispatcher, and per compile by admission; sheds and expiries
   are load-management outcomes, not plan failures, and must not be
   reported here.

   All state lives behind one mutex; every call is O(1) on a hashtable
   keyed by fingerprint.  The mutex is a leaf lock: no callback runs
   under it. *)

module Trace = Pmdp_trace.Trace

type config = { threshold : int; cooldown : float }

type state = Closed | Open | Half_open

type cell = {
  mutable failures : int;  (* consecutive failures *)
  mutable trips : int;  (* times this circuit went open *)
  mutable st : st;
}

and st =
  | S_closed
  | S_open of float  (* absolute time the cooldown ends *)
  | S_half_open of float  (* when the probe was admitted *)

type t = {
  config : config;
  lock : Mutex.t;
  cells : (string, cell) Hashtbl.t;
  mutable trips : int;
  mutable rejects : int;
  mutable probes : int;
  mutable closes : int;
}

let create ?(threshold = 3) ?(cooldown = 5.0) () =
  {
    config = { threshold = max 1 threshold; cooldown = max 0.0 cooldown };
    lock = Mutex.create ();
    cells = Hashtbl.create 16;
    trips = 0;
    rejects = 0;
    probes = 0;
    closes = 0;
  }

let config t = t.config

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let cell_of t fp =
  match Hashtbl.find_opt t.cells fp with
  | Some c -> c
  | None ->
      let c = { failures = 0; trips = 0; st = S_closed } in
      Hashtbl.add t.cells fp c;
      c

(* [`Probe] admits exactly one request through an open-but-cooled
   circuit; a probe that never reports back (shed before executing,
   client gone) must not wedge the circuit, so a half-open cell older
   than one cooldown admits a fresh probe. *)
let check t fp =
  let now = Unix.gettimeofday () in
  let decision =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.cells fp with
        | None -> `Proceed
        | Some c -> (
            match c.st with
            | S_closed -> `Proceed
            | S_open until when now >= until ->
                c.st <- S_half_open now;
                t.probes <- t.probes + 1;
                `Probe
            | S_open until ->
                t.rejects <- t.rejects + 1;
                `Reject (c.failures, until -. now)
            | S_half_open since when now -. since > t.config.cooldown ->
                c.st <- S_half_open now;
                t.probes <- t.probes + 1;
                `Probe
            | S_half_open _ ->
                t.rejects <- t.rejects + 1;
                `Reject (c.failures, t.config.cooldown)))
  in
  (match decision with
  | `Probe -> Trace.count "service.breaker.probe" 1
  | `Reject _ -> Trace.count "service.breaker.reject" 1
  | `Proceed -> ());
  decision

let success t fp =
  let closed =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.cells fp with
        | None -> false
        | Some c ->
            let was_open = c.st <> S_closed in
            Hashtbl.remove t.cells fp;
            if was_open then t.closes <- t.closes + 1;
            was_open)
  in
  if closed then Trace.count "service.breaker.close" 1

let failure t fp =
  let now = Unix.gettimeofday () in
  let tripped =
    with_lock t (fun () ->
        let c = cell_of t fp in
        c.failures <- c.failures + 1;
        let trip () =
          c.st <- S_open (now +. t.config.cooldown);
          c.trips <- c.trips + 1;
          t.trips <- t.trips + 1;
          true
        in
        match c.st with
        | S_half_open _ -> trip ()  (* probe failed: straight back open *)
        | S_closed when c.failures >= t.config.threshold -> trip ()
        | S_closed -> false
        | S_open _ -> false (* in-flight stragglers while already open *))
  in
  if tripped then Trace.count "service.breaker.trip" 1

type counters = {
  trips : int;
  rejects : int;
  probes : int;
  closes : int;
  open_now : int;
  tracked : int;
}

let counters t =
  with_lock t (fun () ->
      let open_now =
        Hashtbl.fold (fun _ c n -> if c.st <> S_closed then n + 1 else n) t.cells 0
      in
      {
        trips = t.trips;
        rejects = t.rejects;
        probes = t.probes;
        closes = t.closes;
        open_now;
        tracked = Hashtbl.length t.cells;
      })

type snapshot = { fingerprint : string; state : state; failures : int; trips : int }

let snapshot t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun fp c acc ->
          let state =
            match c.st with S_closed -> Closed | S_open _ -> Open | S_half_open _ -> Half_open
          in
          { fingerprint = fp; state; failures = c.failures; trips = c.trips } :: acc)
        t.cells [])
  |> List.sort (fun a b -> compare a.fingerprint b.fingerprint)

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let state_of_string = function
  | "closed" -> Some Closed
  | "open" -> Some Open
  | "half-open" -> Some Half_open
  | _ -> None

module Json = Pmdp_report.Json
module Pmdp_error = Pmdp_util.Pmdp_error
module Fault = Pmdp_runtime.Fault

type t = {
  service : Service.t;
  endpoint : Transport.endpoint;  (* as bound: TCP port 0 already resolved *)
  listener : Unix.file_descr;
  fault : Fault.t option;  (* chaos injection at the reply-write site *)
  lock : Mutex.t;
  stopped_cond : Condition.t;
  mutable conns : (Unix.file_descr * Thread.t) list;
  mutable accept_thread : Thread.t option;
  mutable draining : bool;  (* refusing new connections; settling in-flight *)
  mutable stopping : bool;  (* no new connections; existing ones being unblocked *)
  mutable stopped : bool;  (* everything joined; [wait] may return *)
}

(* Per-connection protocol state: every connection starts in v1 until
   its client says hello. *)
type conn = { mutable proto : int }

let endpoint t = t.endpoint

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)
let err e = Json.Obj [ ("ok", Json.Bool false); ("error", Protocol.json_of_error e) ]

let status_string = function
  | Some Service.Queued -> "queued"
  | Some Service.Running -> "running"
  | Some Service.Done -> "done"
  | Some (Service.Failed _) -> "failed"
  | None -> "unknown"

(* [dispatch] returns [(reply, shutdown_requested)]. *)
let dispatch t conn req =
  match Option.bind (Json.member "op" req) Json.to_string_opt with
  | Some "hello" -> (
      match Option.bind (Json.member "proto" req) Json.to_int_opt with
      | None ->
          ( err
              (Pmdp_error.Plan_invalid
                 { context = "protocol: hello"; reason = "missing or ill-typed field \"proto\"" }),
            false )
      | Some requested ->
          (* Speak the highest dialect both sides know; never below 1. *)
          conn.proto <- max 1 (min requested Protocol.proto_version);
          (ok [ ("proto", Json.Int conn.proto) ], false))
  | Some "submit" -> (
      match Protocol.request_of_json req with
      | Error e -> (err e, false)
      | Ok r -> (
          match Service.submit t.service r with
          | Ok resp -> (ok [ ("response", Protocol.json_of_response resp) ], false)
          | Error e -> (err e, false)))
  | Some "status" -> (
      match Option.bind (Json.member "id" req) Json.to_int_opt with
      | None ->
          ( err
              (Pmdp_error.Plan_invalid
                 { context = "protocol: status"; reason = "missing or ill-typed field \"id\"" }),
            false )
      | Some id -> (ok [ ("status", Json.String (status_string (Service.status t.service id))) ], false))
  | Some "stats" -> (ok [ ("stats", Protocol.json_of_stats (Service.stats t.service)) ], false)
  | Some "health" -> (ok [ ("health", Protocol.json_of_health (Service.health t.service)) ], false)
  | Some "shutdown" -> (ok [], true)
  | op ->
      ( err
          (Pmdp_error.Plan_invalid
             {
               context = "protocol: dispatch";
               reason =
                 (match op with
                 | None -> "missing operation field \"op\""
                 | Some op -> Printf.sprintf "unknown operation %S (protocol v%d)" op conn.proto);
             }),
        false )

let rec stop t =
  Mutex.lock t.lock;
  if t.stopping then begin
    (* Someone else is stopping (or has stopped); just wait it out —
       unless that someone is us, re-entering from a connection
       thread, in which case returning immediately is the only
       non-deadlocking option. *)
    let self = Thread.self () in
    let am_conn = List.exists (fun (_, th) -> Thread.id th = Thread.id self) t.conns in
    if am_conn then Mutex.unlock t.lock
    else begin
      while not t.stopped do
        Condition.wait t.stopped_cond t.lock
      done;
      Mutex.unlock t.lock
    end
  end
  else begin
    t.stopping <- true;
    let conns = t.conns in
    Mutex.unlock t.lock;
    (* shutdown(2), not close(2): closing an fd does not wake a thread
       already blocked in accept/read on it, shutting it down does.
       The listener is closed only after its thread is joined. *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    List.iter
      (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    let self_id = Thread.id (Thread.self ()) in
    List.iter (fun (_, th) -> if Thread.id th <> self_id then Thread.join th) conns;
    Service.shutdown t.service;
    Transport.cleanup t.endpoint;
    Mutex.lock t.lock;
    t.stopped <- true;
    Condition.broadcast t.stopped_cond;
    Mutex.unlock t.lock
  end

(* Enact a transport-fault directive at the reply-write site.  The
   request has already been processed — what the fault corrupts is the
   client's view of the outcome, which is exactly the failure mode a
   retrying client must survive (executions are deterministic, so a
   replay is bitwise-identical).  Returns [false] when the connection
   was deliberately killed. *)
and write_reply t fd reply =
  let directive =
    match t.fault with Some f -> Fault.frame_tick f | None -> `Pass
  in
  let kill () = try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> () in
  match directive with
  | `Pass ->
      Protocol.write_frame fd reply;
      true
  | `Delay d ->
      Thread.delay d;
      Protocol.write_frame fd reply;
      true
  | `Drop ->
      (* Reply vanishes: the client sees EOF where a frame was due. *)
      kill ();
      false
  | `Truncate ->
      (try Protocol.write_truncated fd reply with Protocol.Closed -> ());
      kill ();
      false
  | `Garbage ->
      (try Protocol.write_garbage fd with Protocol.Closed -> ());
      kill ();
      false

and handle_conn t fd =
  let conn = { proto = 1 } in
  let continue = ref true in
  (try
     while !continue do
       match Protocol.read_frame fd with
       | None -> continue := false
       | Some req ->
           let reply, shutdown_requested = dispatch t conn req in
           if not (write_reply t fd reply) then continue := false;
           if shutdown_requested then begin
             continue := false;
             (* Spawned, not called: this connection thread must stay
                joinable by the stopper. *)
             ignore (Thread.create (fun () -> stop t) ())
           end
     done
   with
  | Protocol.Closed -> ()
  | Failure reason -> (
      (* Protocol violation: tell the client if the pipe still works,
         then drop the connection. *)
      try Protocol.write_frame fd (err (Pmdp_error.Plan_invalid { context = "protocol"; reason }))
      with Protocol.Closed -> ())
  | Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ())

let accept_loop t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listener with
    | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
        (* EBADF/EINVAL: listener closed by [stop]; ECONNABORTED: the
           peer gave up first, keep accepting. *)
        Mutex.lock t.lock;
        if t.stopping then continue := false;
        Mutex.unlock t.lock
    | fd, _ ->
        (match t.endpoint with Transport.Tcp _ -> Transport.nodelay fd | Transport.Uds _ -> ());
        Mutex.lock t.lock;
        if t.stopping then begin
          Mutex.unlock t.lock;
          (try Unix.close fd with Unix.Unix_error _ -> ());
          continue := false
        end
        else if t.draining then begin
          (* Draining: refuse the connection but keep listening so the
             in-flight ones can finish; the close reads as a retryable
             connection error client-side. *)
          Mutex.unlock t.lock;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          let th = Thread.create (fun () -> handle_conn t fd) () in
          t.conns <- (fd, th) :: t.conns;
          Mutex.unlock t.lock
        end
  done

let start ?(backlog = 16) ?fault ~service ~endpoint () =
  (* A peer that disconnects mid-reply must surface as EPIPE (mapped
     to {!Protocol.Closed}), not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listener = Transport.listen ~backlog endpoint in
  let t =
    {
      service;
      endpoint = Transport.bound_endpoint endpoint listener;
      listener;
      fault;
      lock = Mutex.create ();
      stopped_cond = Condition.create ();
      conns = [];
      accept_thread = None;
      draining = false;
      stopping = false;
      stopped = false;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let wait t =
  Mutex.lock t.lock;
  while not t.stopped do
    Condition.wait t.stopped_cond t.lock
  done;
  Mutex.unlock t.lock

let stopped t =
  Mutex.lock t.lock;
  let s = t.stopped in
  Mutex.unlock t.lock;
  s

let drain ?timeout t =
  Mutex.lock t.lock;
  let first = not t.draining in
  t.draining <- true;
  Mutex.unlock t.lock;
  if first then begin
    (* Order matters: refuse new connections (the accept loop closes
       them while [draining]), let the service settle what is in
       flight — replies still flow over existing connections — then
       tear the listener down. *)
    Service.drain ?timeout t.service;
    stop t
  end
  else wait t

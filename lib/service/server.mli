(** Unix-domain socket front end of a {!Service}: the engine behind
    [pmdp serve].

    One listener thread accepts connections; each connection gets its
    own thread running a read-frame → dispatch → write-frame loop over
    the {!Protocol} (connections are persistent — any number of
    requests per connection).  Submits block their connection thread
    until the service finishes the request, so client-side concurrency
    maps one connection per in-flight request.

    A client ["shutdown"] operation — or {!stop} — closes the
    listener, unblocks and joins every connection, shuts the
    underlying service down (draining per {!Service.shutdown}
    semantics), and removes the socket file. *)

type t

val start : ?backlog:int -> service:Service.t -> path:string -> unit -> t
(** Bind [path] (an existing socket file is replaced; [backlog]
    defaults to 16) and start accepting.
    @raise Unix.Unix_error when the path cannot be bound. *)

val path : t -> string

val wait : t -> unit
(** Block until the server has stopped (via {!stop} or a client
    shutdown operation) and every connection is joined. *)

val stopped : t -> bool
(** [true] once the server has fully stopped ({!wait} would return
    immediately).  Non-blocking — lets a driver poll for shutdown
    while staying at an OCaml safepoint, which a thread parked in
    {!wait}'s condition wait is not: signal handlers cannot run if
    every thread is blocked in C. *)

val stop : t -> unit
(** Stop accepting, disconnect clients, join all threads, shut the
    service down, unlink the socket.  Idempotent; also safe from a
    connection thread (the join skips the calling thread). *)

(** Socket front end of a {!Service}: the engine behind [pmdp serve].
    Listens on any {!Transport.endpoint} — Unix-domain or TCP — with
    the same framing and operations.

    One listener thread accepts connections; each connection gets its
    own thread running a read-frame → dispatch → write-frame loop over
    the {!Protocol} (connections are persistent — any number of
    requests per connection).  Each connection carries its own
    negotiated protocol version (v1 until the client sends a hello).
    Submits block their connection thread until the service finishes
    the request, so client-side concurrency maps one connection per
    in-flight request.

    A client ["shutdown"] operation — or {!stop} — closes the
    listener, unblocks and joins every connection, shuts the
    underlying service down (draining per {!Service.shutdown}
    semantics), and removes a Unix socket file. *)

type t

val start :
  ?backlog:int ->
  ?fault:Pmdp_runtime.Fault.t ->
  service:Service.t ->
  endpoint:Transport.endpoint ->
  unit ->
  t
(** Bind the endpoint (a stale Unix socket file is replaced; [backlog]
    defaults to 16) and start accepting.  A TCP port of 0 binds a
    kernel-chosen port — read it back from {!endpoint}.  [fault]
    enables wire-level chaos at the reply-write site: a firing
    [Frame_drop] kills the connection instead of replying,
    [Frame_truncate] sends half a frame then kills it, [Frame_garbage]
    sends a well-framed non-JSON payload, [Frame_delay] sleeps before
    replying — the transport failures a retrying {!Client} must
    survive.
    @raise Unix.Unix_error when the endpoint cannot be bound. *)

val endpoint : t -> Transport.endpoint
(** The endpoint actually being served — for TCP, the real port even
    if {!start} was given port 0. *)

val wait : t -> unit
(** Block until the server has stopped (via {!stop} or a client
    shutdown operation) and every connection is joined. *)

val stopped : t -> bool
(** [true] once the server has fully stopped ({!wait} would return
    immediately).  Non-blocking — lets a driver poll for shutdown
    while staying at an OCaml safepoint, which a thread parked in
    {!wait}'s condition wait is not: signal handlers cannot run if
    every thread is blocked in C. *)

val stop : t -> unit
(** Stop accepting, disconnect clients, join all threads, shut the
    service down, clean up the endpoint.  Idempotent; also safe from
    a connection thread (the join skips the calling thread). *)

val drain : ?timeout:float -> t -> unit
(** Graceful shutdown (the SIGTERM path of [pmdp serve]): refuse new
    connections — existing ones keep their replies flowing — wait up
    to [timeout] (default 5s, see {!Service.drain}) for in-flight
    requests to settle, then {!stop}.  A concurrent second call just
    waits for the first to finish. *)

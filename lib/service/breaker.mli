(** Per-fingerprint circuit breaker for the execution service.

    A poison plan — one whose compile error is replayed from the plan
    cache on every submit, or whose execution fails every time —
    should stop consuming queue slots and pool time.  After
    [threshold] consecutive failures the fingerprint's circuit trips
    {e open}: admission refuses further requests for that plan with a
    typed [Pmdp_error.Circuit_open], which is retryable (the plan may
    recover) but instantaneous (nothing is compiled or queued).
    After [cooldown] seconds the next request is admitted as a
    {e half-open} probe; its success closes the circuit, its failure
    re-trips it.  A probe that never reports back (shed, expired,
    client gone) ages out after one more cooldown, so the circuit
    cannot wedge half-open.

    Thread-safe; every operation takes one leaf mutex.  Transitions
    emit [service.breaker.trip] / [reject] / [probe] / [close] trace
    counters when tracing is on. *)

type t

type config = { threshold : int; cooldown : float }

val create : ?threshold:int -> ?cooldown:float -> unit -> t
(** [threshold] (default 3, clamped to >= 1) consecutive failures trip
    the circuit; [cooldown] (default 5s) is the open->half-open
    delay. *)

val config : t -> config

val check : t -> string -> [ `Proceed | `Probe | `Reject of int * float ]
(** Admission decision for one fingerprint.  [`Reject (failures,
    retry_after)] means refuse without queueing; [`Probe] means this
    request is the half-open probe (admit it and make sure its outcome
    is reported); [`Proceed] is the normal closed-circuit path. *)

val success : t -> string -> unit
(** Report a successful execution: resets the failure streak and
    closes an open/half-open circuit. *)

val failure : t -> string -> unit
(** Report a compile or execution failure.  Sheds, expiries, and
    admission rejections are not plan failures — do not report
    them. *)

type counters = {
  trips : int;  (** circuits gone open (including re-trips) *)
  rejects : int;  (** requests refused while open/half-open *)
  probes : int;  (** half-open probes admitted *)
  closes : int;  (** circuits closed by a success *)
  open_now : int;  (** fingerprints currently open or half-open *)
  tracked : int;  (** fingerprints with a live failure streak *)
}

val counters : t -> counters

type state = Closed | Open | Half_open

type snapshot = { fingerprint : string; state : state; failures : int; trips : int }

val snapshot : t -> snapshot list
(** Per-fingerprint view (sorted by fingerprint) for the [health]
    op. *)

val state_to_string : state -> string
(** ["closed" | "open" | "half-open"]. *)

val state_of_string : string -> state option
(** Inverse of {!state_to_string} (used by the protocol codec). *)

(** Persistent on-disk plan cache: plan IRs as files, one per
    {!Plan_cache.fingerprint}, so a restarted server answers its first
    hot request without recompiling.

    Each entry is the PR-6 plan envelope ([{schema_version, digest,
    plan}], the format {!Pmdp_plan.read} parses) extended with a
    ["request"] member recording the bindings — app, scale, scheduler,
    machine name, core count — the fingerprint was computed from, so a
    fresh process can rebuild the pipeline and admit the plan against
    it.

    This module only moves bytes; it never instantiates a plan.  Every
    IR read from disk goes through the {!Plan_cache} admission gate
    (claimed digest = content digest, whole-plan static analyzer) on
    its way into a shard's memory cache — a tampered or stale file is
    rejected there and the plan is recompiled, never executed.

    Writes are atomic (temp file + rename) and best-effort: a full or
    read-only disk degrades the cache to a no-op (counted in
    {!stats}), it never fails a request. *)

type t

type meta = {
  app : string;
  scale : int;
  scheduler : Pmdp_core.Scheduler.t;
  machine : string;  (** machine model name, e.g. "xeon" *)
  cores : int;
}
(** The plan-relevant request bindings stored beside the IR. *)

val default_dir : unit -> string
(** [$XDG_CACHE_HOME/pmdp/plans], falling back to [~/.cache/pmdp/plans]
    (or a temp-dir-rooted path when even [$HOME] is unset). *)

val create : ?fault:Pmdp_runtime.Fault.t -> dir:string -> unit -> t
(** Create [dir] (and parents) if needed.  [fault] enables chaos
    injection at stores: a firing [Torn_write] persists only a prefix
    of the envelope, a [Corrupt_write] persists well-formed JSON with
    a wrong claimed digest — the two silent disk-failure modes the
    quarantine machinery must recover from.
    @raise Invalid_argument when [dir] exists but is not a directory.
    @raise Unix.Unix_error when it cannot be created. *)

val dir : t -> string

val meta_of_request :
  app:string ->
  scale:int ->
  scheduler:Pmdp_core.Scheduler.t ->
  machine:Pmdp_machine.Machine.t ->
  meta

val store : t -> meta -> fingerprint:string -> ir:Pmdp_plan.t -> unit
(** Write the envelope to [<dir>/<fingerprint>.json] atomically.
    Failures are swallowed (and counted) — persistence is an
    optimization, not a correctness requirement. *)

val load : t -> fingerprint:string -> (Pmdp_plan.t * string) option
(** The stored IR and the digest the file {e claims} — exactly the
    shape {!Plan_cache.get}'s [?load] hook wants.  [None] when the
    file is absent or unparseable (the caller compiles instead);
    an unparseable file is quarantined on the way.  Digest
    verification is the admission gate's job, not this module's. *)

val scan : t -> (string * meta) list
(** Every parseable entry as (fingerprint, request bindings), sorted —
    the startup warm-load walks this and admits each plan through the
    gate.  Unparseable files (torn writes, junk) are quarantined
    instead of silently skipped. *)

val quarantine : t -> fingerprint:string -> reason:string -> unit
(** Rename [<fingerprint>.json] to [<fingerprint>.bad]: the envelope
    stops shadowing future stores and warm loads but stays on disk
    for inspection.  Called internally for unparseable files; callers
    ({!Service}'s warm load, {!Plan_cache.get}'s rejection hook) call
    it for envelopes that parse but fail admission.  Best-effort,
    idempotent, counted in {!stats}. *)

type stats = {
  stores : int;  (** envelopes written *)
  store_failures : int;  (** writes that failed (disk full, perms) *)
  hits : int;  (** loads that found a parseable envelope *)
  misses : int;  (** loads that found nothing usable *)
  quarantined : int;  (** envelopes renamed to [.bad] *)
}

val stats : t -> stats

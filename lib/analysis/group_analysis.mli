(** Scaling, alignment, and dependence analysis of a fused group.

    Given a set of pipeline stages to be fused, this module performs
    the scaling-and-alignment step of PolyMage's overlapped tiling
    (paper §2.2): each stage's dimensions are right-aligned into a
    common group iteration space, and each stage receives an integer
    per-dimension scaling factor such that all intra-group dependences
    become constant (bounded) vectors in the scaled space.  Fusing
    through up/downsampling stages is what makes rational scales
    necessary; the final factors are normalized to integers.

    The result also carries the per-stage overlap expansions — how far
    each producer's per-tile region must extend beyond the tile so
    that all in-group consumers find their inputs locally (the
    trapezoid widening of the paper's Fig. 2) — because expansions
    depend only on the dependence vectors, not on tile sizes.

    Analysis fails (returns [Error]) exactly when the paper's cost
    function assigns infinite cost (Alg. 2 line 2): dynamic
    (data-dependent) intra-group accesses, inconsistent scaling,
    misaligned dimensions, reduction-variable indexing of an in-group
    producer, or a reduction stage fused with anything else. *)

type failure =
  | Dynamic_access of { producer : string; consumer : string }
  | Misaligned of { producer : string; consumer : string }
  | Inconsistent_scale of { stage : string; dim : int }
  | Fused_reduction of string
  | Rvar_access of { producer : string; consumer : string }
  | Zero_scale_access of { producer : string; consumer : string }
  | Not_connected

val failure_kind : failure -> string
(** Stable kebab-case slug per constructor (e.g. ["dynamic-access"]),
    for machine consumption. *)

val pp_failure : Format.formatter -> failure -> unit
(** One line, [kind: detail] with [kind] = {!failure_kind}, no
    embedded newlines — safe to parse and to embed in diagnostics. *)

type edge = {
  e_producer : int;  (** index into [members] *)
  e_consumer : int;  (** index into [members] *)
  offsets : (int * int) array list;
      (** one entry per access; per group dimension, the interval of
          scaled-space dependence offsets (producer = consumer +
          offset) *)
  hull : (int * int) array;  (** per-dimension hull of all accesses *)
}

type t = {
  pipeline : Pmdp_dsl.Pipeline.t;
  members : int array;  (** stage ids in topological order *)
  n_dims : int;  (** dimensionality of the group iteration space *)
  scales : int array array;  (** [scales.(m).(d)]: integer scale of member [m] along group dim [d]; 1 for dims the stage lacks *)
  dim_of_stage : int array array;
      (** [dim_of_stage.(m).(k)]: group dim of member [m]'s k-th own
          dimension (right-aligned) *)
  scaled_lo : int array array;  (** scaled domain bounds per member per group dim; for dims the member lacks, the group hull *)
  scaled_hi : int array array;
  dim_lo : int array;  (** per group dim, hull over members *)
  dim_hi : int array;
  edges : edge list;
  expansions : (int * int) array array;
      (** [(lo, hi)] overlap expansion per member per group dim, in
          scaled-space units; live-out members have (0, 0) *)
  liveouts : bool array;
      (** per member: consumed outside the group, or pipeline output *)
}

val analyze :
  ?allow_fused_reductions:bool -> Pmdp_dsl.Pipeline.t -> int list -> (t, failure) result
(** [analyze p group] analyzes the fused group consisting of the given
    stage ids.  [Error Not_connected] if the set does not induce a
    weakly connected subgraph, or is empty.

    [allow_fused_reductions] (default true) admits a reduction stage
    in a multi-stage group as long as none of its producers are in
    the group (the reduction then recomputes its tile region from
    external data, which the executor supports — this is how Halide
    groups Bilateral Grid's histogram).  Pass [false] to get the
    PolyMage rule the paper states: reductions are never fused. *)

val member_index : t -> int -> int
(** Local index of a stage id within [members].
    @raise Not_found if the stage is not a member. *)

val dim_extent : t -> int -> int
(** [dim_extent t d] is the scaled-space extent of group dimension
    [d] (hull). *)

val stage_points_in_scaled_box : t -> int -> lo:int array -> hi:int array -> int
(** Number of points of member [m]'s own domain that fall inside the
    scaled-space box [\[lo, hi\]] (inclusive), i.e. the work the
    member performs per tile of that box. The box is intersected with
    the member's scaled domain. *)

val pp : Format.formatter -> t -> unit

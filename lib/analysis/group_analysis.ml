module Rational = Pmdp_util.Rational
module Dag = Pmdp_dag.Dag
module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage
module Expr = Pmdp_dsl.Expr

type failure =
  | Dynamic_access of { producer : string; consumer : string }
  | Misaligned of { producer : string; consumer : string }
  | Inconsistent_scale of { stage : string; dim : int }
  | Fused_reduction of string
  | Rvar_access of { producer : string; consumer : string }
  | Zero_scale_access of { producer : string; consumer : string }
  | Not_connected

let failure_kind = function
  | Dynamic_access _ -> "dynamic-access"
  | Misaligned _ -> "misaligned"
  | Inconsistent_scale _ -> "inconsistent-scale"
  | Fused_reduction _ -> "fused-reduction"
  | Rvar_access _ -> "rvar-access"
  | Zero_scale_access _ -> "zero-scale-access"
  | Not_connected -> "not-connected"

(* One line, [kind: detail], no embedded newlines — consumed verbatim
   by tooling (pmdp check diagnostics), so keep the format stable. *)
let pp_failure ppf f =
  let detail =
    match f with
    | Dynamic_access { producer; consumer } ->
        Printf.sprintf "dynamic access from %s to %s" consumer producer
    | Misaligned { producer; consumer } ->
        Printf.sprintf "misaligned dimensions between %s and %s" consumer producer
    | Inconsistent_scale { stage; dim } ->
        Printf.sprintf "inconsistent scaling for %s along dim %d" stage dim
    | Fused_reduction s -> Printf.sprintf "reduction %s fused with other stages" s
    | Rvar_access { producer; consumer } ->
        Printf.sprintf "%s indexes %s with a reduction variable" consumer producer
    | Zero_scale_access { producer; consumer } ->
        Printf.sprintf "%s indexes %s with a constant coordinate" consumer producer
    | Not_connected -> "group is not a connected subgraph"
  in
  Format.fprintf ppf "%s: %s" (failure_kind f) detail

type edge = {
  e_producer : int;
  e_consumer : int;
  offsets : (int * int) array list;
  hull : (int * int) array;
}

type t = {
  pipeline : Pipeline.t;
  members : int array;
  n_dims : int;
  scales : int array array;
  dim_of_stage : int array array;
  scaled_lo : int array array;
  scaled_hi : int array array;
  dim_lo : int array;
  dim_hi : int array;
  edges : edge list;
  expansions : (int * int) array array;
  liveouts : bool array;
}

exception Fail of failure

(* A single scaling constraint derived from one access coordinate:
   [rs.(consumer).(gdim) = a * rs.(producer).(gdim)]. *)
type constraint_ = { c_member : int; p_member : int; gdim : int; a : Rational.t }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

(* Collect all (producer-local, consumer-local, coord array) accesses
   between group members, raising [Fail] on non-affine situations. *)
let collect_accesses p members local =
  let accesses = ref [] in
  Array.iteri
    (fun ci sid ->
      let stage = Pipeline.stage p sid in
      let cname = stage.Stage.name in
      let cdims = Stage.ndims stage in
      List.iter
        (fun prod_sid ->
          match Hashtbl.find_opt local prod_sid with
          | None -> ()
          | Some pi ->
              let pname = (Pipeline.stage p prod_sid).Stage.name in
              List.iter
                (fun coords ->
                  Array.iter
                    (fun c ->
                      match c with
                      | Expr.Cdyn _ -> raise (Fail (Dynamic_access { producer = pname; consumer = cname }))
                      | Expr.Cvar { var; scale; _ } ->
                          if var >= cdims then
                            raise (Fail (Rvar_access { producer = pname; consumer = cname }));
                          if Rational.sign scale = 0 then
                            raise (Fail (Zero_scale_access { producer = pname; consumer = cname })))
                    coords;
                  accesses := (pi, ci, coords) :: !accesses)
                (Pipeline.loads_between p ~consumer:sid ~producer:prod_sid))
        (Pipeline.producers p sid))
    members;
  List.rev !accesses

let analyze ?(allow_fused_reductions = true) p group =
  match group with
  | [] -> Error Not_connected
  | _ when not (Dag.is_connected_subset p.Pipeline.dag group) -> Error Not_connected
  | _ -> (
      try
        let members = Array.of_list (Dag.topo_sort_subset p.Pipeline.dag group) in
        let n = Array.length members in
        if n > 1 then
          Array.iter
            (fun sid ->
              let s = Pipeline.stage p sid in
              if Stage.is_reduction s then begin
                (* A fused reduction is executable only when it has no
                   in-group producers (its per-tile region can then be
                   recomputed from external data alone); when
                   disallowed entirely (the PolyMage rule the paper
                   states), any fusion of a reduction fails. *)
                let producer_in_group =
                  List.exists (fun pr -> List.mem pr group) (Pipeline.producers p sid)
                in
                if (not allow_fused_reductions) || producer_in_group then
                  raise (Fail (Fused_reduction s.Stage.name))
              end)
            members;
        let local = Hashtbl.create 16 in
        Array.iteri (fun i sid -> Hashtbl.add local sid i) members;
        let ndims_of m = Stage.ndims (Pipeline.stage p members.(m)) in
        let name_of m = (Pipeline.stage p members.(m)).Stage.name in
        let gdims = Array.fold_left (fun acc sid -> max acc (Stage.ndims (Pipeline.stage p sid))) 0 members in
        let dim_of_stage =
          Array.init n (fun m -> Array.init (ndims_of m) (fun k -> k + gdims - ndims_of m))
        in
        let accesses = collect_accesses p members local in
        (* Build scaling constraints, checking alignment. *)
        let constraints = ref [] in
        List.iter
          (fun (pi, ci, coords) ->
            Array.iteri
              (fun dp coord ->
                match coord with
                | Expr.Cvar { var = dc; scale = a; _ } ->
                    let gc = dim_of_stage.(ci).(dc) and gp = dim_of_stage.(pi).(dp) in
                    if gc <> gp then
                      raise (Fail (Misaligned { producer = name_of pi; consumer = name_of ci }));
                    constraints := { c_member = ci; p_member = pi; gdim = gc; a } :: !constraints
                | Expr.Cdyn _ -> assert false)
              coords)
          accesses;
        let constraints = !constraints in
        (* Solve rs.(m).(g) by fixpoint propagation with on-demand seeding. *)
        let rs : Rational.t option array array = Array.make_matrix n gdims None in
        List.iter (fun g -> rs.(0).(g) <- Some Rational.one)
          (Array.to_list dim_of_stage.(0));
        let set m g v =
          if Rational.sign v <= 0 then
            raise (Fail (Inconsistent_scale { stage = name_of m; dim = g }));
          match rs.(m).(g) with
          | None ->
              rs.(m).(g) <- Some v;
              true
          | Some v' ->
              if not (Rational.equal v v') then
                raise (Fail (Inconsistent_scale { stage = name_of m; dim = g }));
              false
        in
        let propagate () =
          let changed = ref true in
          while !changed do
            changed := false;
            List.iter
              (fun { c_member; p_member; gdim; a } ->
                match (rs.(c_member).(gdim), rs.(p_member).(gdim)) with
                | Some sc, _ ->
                    if set p_member gdim (Rational.div sc a) then changed := true
                | None, Some sp ->
                    if set c_member gdim (Rational.mul sp a) then changed := true
                | None, None -> ())
              constraints
          done
        in
        propagate ();
        (* Seed any constraint component untouched by member 0's dims. *)
        let rec seed_unresolved () =
          match
            List.find_opt
              (fun c -> rs.(c.c_member).(c.gdim) = None && rs.(c.p_member).(c.gdim) = None)
              constraints
          with
          | None -> ()
          | Some c ->
              ignore (set c.c_member c.gdim Rational.one);
              propagate ();
              seed_unresolved ()
        in
        seed_unresolved ();
        (* Unconstrained dims default to 1. *)
        let rs =
          Array.map (Array.map (function Some v -> v | None -> Rational.one)) rs
        in
        (* Normalize to integers per group dim. *)
        let scales = Array.make_matrix n gdims 1 in
        for g = 0 to gdims - 1 do
          let den = ref 1 in
          for m = 0 to n - 1 do
            den := lcm !den (Rational.div rs.(m).(g) Rational.one).Rational.den
          done;
          for m = 0 to n - 1 do
            scales.(m).(g) <- Rational.to_int_exn (Rational.mul rs.(m).(g) (Rational.of_int !den));
            rs.(m).(g) <- Rational.of_int scales.(m).(g)
          done
        done;
        (* Scaled-space offset intervals per access. *)
        let edge_tbl : (int * int, (int * int) array list) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun (pi, ci, coords) ->
            let offs = Array.make gdims (0, 0) in
            Array.iteri
              (fun dp coord ->
                match coord with
                | Expr.Cvar { var = dc; scale = a; offset = b } ->
                    let g = dim_of_stage.(ci).(dc) in
                    ignore dp;
                    let sp = Rational.of_int scales.(pi).(g) in
                    let m = a.Rational.den * b.Rational.den / gcd a.Rational.den b.Rational.den in
                    let center = Rational.mul sp b in
                    let slack =
                      Rational.mul sp (Rational.make (m - 1) m)
                    in
                    let lo = Rational.ceil (Rational.sub center slack) in
                    let hi = Rational.floor center in
                    offs.(g) <- (min lo hi, max lo hi)
                | Expr.Cdyn _ -> assert false)
              coords;
            let key = (pi, ci) in
            let prev = Option.value ~default:[] (Hashtbl.find_opt edge_tbl key) in
            Hashtbl.replace edge_tbl key (offs :: prev))
          accesses;
        let edges =
          Hashtbl.fold
            (fun (pi, ci) offsets acc ->
              let hull = Array.make gdims (0, 0) in
              (match offsets with
              | [] -> ()
              | first :: rest ->
                  Array.blit first 0 hull 0 gdims;
                  List.iter
                    (fun o ->
                      Array.iteri
                        (fun g (lo, hi) ->
                          let l, h = hull.(g) in
                          hull.(g) <- (min l lo, max h hi))
                        o)
                    rest);
              { e_producer = pi; e_consumer = ci; offsets; hull } :: acc)
            edge_tbl []
        in
        let edges =
          List.sort (fun a b -> compare (a.e_producer, a.e_consumer) (b.e_producer, b.e_consumer)) edges
        in
        (* Scaled domains and hulls. *)
        let scaled_lo = Array.make_matrix n gdims 0 in
        let scaled_hi = Array.make_matrix n gdims (-1) in
        let dim_lo = Array.make gdims max_int in
        let dim_hi = Array.make gdims min_int in
        for m = 0 to n - 1 do
          let s = Pipeline.stage p members.(m) in
          Array.iteri
            (fun k (d : Stage.dim) ->
              let g = dim_of_stage.(m).(k) in
              let sc = scales.(m).(g) in
              scaled_lo.(m).(g) <- sc * d.Stage.lo;
              scaled_hi.(m).(g) <- (sc * (d.Stage.lo + d.Stage.extent - 1));
              dim_lo.(g) <- min dim_lo.(g) scaled_lo.(m).(g);
              dim_hi.(g) <- max dim_hi.(g) scaled_hi.(m).(g))
            s.Stage.dims
        done;
        for g = 0 to gdims - 1 do
          if dim_lo.(g) > dim_hi.(g) then begin
            (* no member owns this dim: cannot happen since gdims = max ndims *)
            dim_lo.(g) <- 0;
            dim_hi.(g) <- 0
          end;
          for m = 0 to n - 1 do
            if scaled_hi.(m).(g) < scaled_lo.(m).(g) then begin
              scaled_lo.(m).(g) <- dim_lo.(g);
              scaled_hi.(m).(g) <- dim_hi.(g)
            end
          done
        done;
        (* Live-outs: consumed outside the group or pipeline outputs. *)
        let liveouts =
          Array.mapi
            (fun _ sid ->
              Pipeline.is_output p sid
              || List.exists (fun c -> not (Hashtbl.mem local c)) (Pipeline.consumers p sid))
            members
        in
        (* Overlap expansions by reverse-topological accumulation. *)
        let expansions = Array.init n (fun _ -> Array.make gdims (0, 0)) in
        for mi = n - 1 downto 0 do
          List.iter
            (fun e ->
              if e.e_producer = mi then begin
                let cexp = expansions.(e.e_consumer) in
                for g = 0 to gdims - 1 do
                  let off_lo, off_hi = e.hull.(g) in
                  let c_lo, c_hi = cexp.(g) in
                  let p_lo, p_hi = expansions.(mi).(g) in
                  expansions.(mi).(g) <-
                    (max p_lo (max 0 (c_lo - off_lo)), max p_hi (max 0 (c_hi + off_hi)))
                done
              end)
            edges
        done;
        Ok
          {
            pipeline = p;
            members;
            n_dims = gdims;
            scales;
            dim_of_stage;
            scaled_lo;
            scaled_hi;
            dim_lo;
            dim_hi;
            edges;
            expansions;
            liveouts;
          }
      with Fail f -> Error f)

let member_index t sid =
  let rec go i =
    if i >= Array.length t.members then raise Not_found
    else if t.members.(i) = sid then i
    else go (i + 1)
  in
  go 0

let dim_extent t d = t.dim_hi.(d) - t.dim_lo.(d) + 1

let stage_points_in_scaled_box t m ~lo ~hi =
  let stage = Pipeline.stage t.pipeline t.members.(m) in
  let nd = Stage.ndims stage in
  let points = ref 1 in
  for k = 0 to nd - 1 do
    let g = t.dim_of_stage.(m).(k) in
    let s = t.scales.(m).(g) in
    let l = max lo.(g) t.scaled_lo.(m).(g) in
    let h = min hi.(g) t.scaled_hi.(m).(g) in
    let cnt =
      if h < l then 0
      else
        let first = if l >= 0 then (l + s - 1) / s else -((-l) / s) in
        let last = if h >= 0 then h / s else -((-h + s - 1) / s) in
        max 0 (last - first + 1)
    in
    points := !points * cnt
  done;
  !points

let pp ppf t =
  Format.fprintf ppf "@[<v>group of %d stages, %d dims@," (Array.length t.members) t.n_dims;
  Array.iteri
    (fun m sid ->
      Format.fprintf ppf "  %s scales=[%s] exp=[%s]%s@,"
        (Pipeline.stage t.pipeline sid).Stage.name
        (String.concat ";" (Array.to_list (Array.map string_of_int t.scales.(m))))
        (String.concat ";"
           (Array.to_list (Array.map (fun (a, b) -> Printf.sprintf "%d,%d" a b) t.expansions.(m))))
        (if t.liveouts.(m) then " liveout" else ""))
    t.members;
  Format.fprintf ppf "@]"

(** Simulated-multicore measurement (the paper-table methodology).

    Real-pool wall-clock benchmarking lives in {!Runner}; this module
    is the complementary substitution used by the Table 3/4/Figure 7
    harness: measure every tile sequentially, then reconstruct the
    16-core time with {!Pmdp_runtime.Pool.simulate_makespan}. *)

type measurement = {
  t1 : float;  (** best total sequential seconds over the reps *)
  t16 : float;  (** best simulated [cores]-way seconds *)
}

val measure_schedule :
  reps:int ->
  cores:int ->
  Pmdp_core.Schedule_spec.t ->
  (string * Pmdp_exec.Buffer.t) list ->
  measurement

module Machine = Pmdp_machine.Machine
module Pipeline = Pmdp_dsl.Pipeline
module Cost_model = Pmdp_core.Cost_model
module Scheduler = Pmdp_core.Scheduler
module Schedule_spec = Pmdp_core.Schedule_spec
module Tiled_exec = Pmdp_exec.Tiled_exec
module Resilient = Pmdp_exec.Resilient
module Reference = Pmdp_exec.Reference
module Buffer = Pmdp_exec.Buffer
module Trace = Pmdp_trace.Trace
module Pool = Pmdp_runtime.Pool
module Registry = Pmdp_apps.Registry
module Profile = Pmdp_report.Profile
module Json = Pmdp_report.Json

(* One row of the calibration corpus: what the model predicted for a
   group's tile choice next to what a sequential timed run measured.
   Identical across a schedule's worker counts (computed once per
   schedule), duplicated into each case so every bench row is
   self-contained. *)
type group_cost = {
  gc_group : int;
  gc_features : Cost_model.features;
  gc_predicted : float;  (** model cost of the chosen tile (calibrated = seconds) *)
  gc_wall : float;  (** median across reps of the group's summed tile durations *)
}

type outcome = {
  app_name : string;
  scheduler : Scheduler.t;  (** as requested *)
  resolved : Scheduler.t;  (** after {!Scheduler.for_pipeline} *)
  workers : int;
  wall_seconds : float list;  (** effective, one per rep, in run order *)
  host_wall_seconds : float list;  (** what the host actually took *)
  simulated : bool;  (** effective times reconstructed from per-tile durations *)
  backend : string;  (** resilient step that answered the last rep, e.g. "native" *)
  median_s : float;
  min_s : float;
  max_abs_diff : float;  (** vs {!Reference.run}; 0.0 = bitwise valid *)
  n_groups : int;
  n_tiles : int;
  profile : Profile.t;  (** of the last rep *)
  failure : string option;  (** rendered typed error of a dead rep *)
  degraded : bool;  (** some rep needed a resilience fallback step *)
  group_costs : group_cost list;  (** predicted vs measured per group (schema v3) *)
}

let valid o = o.failure = None && o.max_abs_diff = 0.0

(* Per-case delta of the global trace counter totals, so each case's
   JSON carries only its own numbers. *)
let counter_delta ~before after =
  List.filter_map
    (fun (k, v) ->
      let v0 = Option.value (List.assoc_opt k before) ~default:0 in
      if v - v0 <> 0 then Some (k, v - v0) else None)
    after

let median_of sorted = List.nth sorted (List.length sorted / 2)

(* Reconstructed [w]-way wall-clock of one sequential-timed run:
   groups are barriers, tiles within a group distribute under the
   pool's claim policy. *)
let makespan_of_timings ~sched ~workers timings =
  List.fold_left
    (fun acc (g : Tiled_exec.group_timing) ->
      acc +. Pool.simulate_makespan ~sched ~workers g.Tiled_exec.tile_durations)
    0.0 timings

let run_app ?pool_sched ?(log = fun _ -> ()) ~reps ~scale ~machine ~workers ~schedulers
    (app : Registry.app) =
  if reps < 1 then invalid_arg "Runner.run_app: reps < 1";
  Pmdp_baselines.Schedulers.install ();
  let host_cores = Domain.recommended_domain_count () in
  let sim_sched = Option.value pool_sched ~default:(Pool.Chunked 0) in
  let p = app.Registry.build ~scale in
  let inputs = app.Registry.inputs ~seed:1 p in
  let reference = Reference.run p ~inputs in
  let config = Cost_model.config_of_machine machine in
  List.concat_map
    (fun scheduler ->
      let resolved = Scheduler.for_pipeline scheduler p in
      let spec = Scheduler.schedule resolved config p in
      let plan = Tiled_exec.plan spec in
      let n_groups = Schedule_spec.n_groups spec in
      let n_tiles = Tiled_exec.total_tiles plan in
      (* Sequential per-tile timings, for makespan reconstruction on
         hosts with fewer cores than the requested pool (the DESIGN.md
         multicore substitution).  Measured lazily, once per schedule. *)
      let timed_reps =
        lazy (List.init reps (fun _ -> snd (Tiled_exec.run_timed plan ~inputs)))
      in
      (* Predicted-vs-measured per group: the schedule's tile features
         under the model next to the median summed tile durations of
         the sequential timed runs — the calibration corpus
         (lib/tune).  Computed once per schedule; a schedule whose
         timed run dies contributes no rows rather than killing the
         sweep. *)
      let group_costs =
        lazy
          (let timings = try Lazy.force timed_reps with _ -> [] in
           let walls_per_rep =
             List.map
               (fun reps ->
                 List.map
                   (fun (gt : Tiled_exec.group_timing) ->
                     Array.fold_left ( +. ) 0.0 gt.Tiled_exec.tile_durations)
                   reps)
               timings
           in
           List.mapi
             (fun gi (g : Schedule_spec.group) ->
                  match
                    Cost_model.group_features config p ~stages:g.Schedule_spec.stages
                      ~tile:g.Schedule_spec.tile_sizes
                  with
                  | None -> None
                  | Some f -> (
                      let per_rep =
                        List.filter_map (fun rep -> List.nth_opt rep gi) walls_per_rep
                      in
                      match List.sort compare per_rep with
                      | [] -> None
                      | sorted ->
                          Some
                            {
                              gc_group = gi;
                              gc_features = f;
                              gc_predicted = Cost_model.predict config f;
                              gc_wall = median_of sorted;
                            }))
             spec.Schedule_spec.groups
           |> List.filter_map Fun.id)
      in
      List.map
        (fun w ->
          let collector = Profile.collector ~pipeline:p.Pipeline.name ~workers:w in
          let host_walls = ref [] and diff = ref 0.0 in
          let failure = ref None and degraded = ref false in
          let backend = ref "none" in
          (* Reps run through the resilient driver sharing the one
             plan, so a dying rep records which fallback step it
             reached (Profile.steps / the case's "resilience" JSON)
             instead of just a rendered error string. *)
          let one_rep rep pool =
            Profile.clear collector;
            let t0 = Unix.gettimeofday () in
            match
              Resilient.run_plan ?pool ?sched:pool_sched ~profile:collector ~machine plan
                ~inputs
            with
            | Ok { Resilient.results; degraded = d; attempts } ->
                host_walls := (Unix.gettimeofday () -. t0) :: !host_walls;
                if d then degraded := true;
                (match List.rev attempts with
                | (st, None) :: _ -> backend := Resilient.step_name st
                | _ -> ());
                List.iter
                  (fun (n, b) ->
                    match List.assoc_opt n reference with
                    | Some r -> diff := Float.max !diff (Buffer.max_abs_diff b r)
                    | None -> ())
                  results
            | Error e ->
                (* Record the case as failed and move on: one broken
                   schedule must not take the whole sweep down. *)
                ignore rep;
                failure := Some (Pmdp_util.Pmdp_error.to_string e)
          in
          let measure pool =
            for rep = 1 to reps do
              if !failure = None then
                if not (Trace.on ()) then one_rep rep pool
                else
                  Trace.with_span ~cat:"bench"
                    ~args:
                      [
                        ("app", Trace.Str app.Registry.name);
                        ("scheduler", Trace.Str (Scheduler.to_string scheduler));
                        ("workers", Trace.Int w);
                        ("rep", Trace.Int rep);
                      ]
                    "rep"
                    (fun () -> one_rep rep pool)
            done
          in
          let totals_before = if Trace.on () then Trace.counter_totals () else [] in
          if w > 1 then Pool.with_pool w (fun pool -> measure (Some pool)) else measure None;
          if Trace.on () then
            Profile.set_counters collector
              (counter_delta ~before:totals_before (Trace.counter_totals ()));
          let host_wall_seconds = List.rev !host_walls in
          (* Native kernels parallelize with real OS threads inside the
             shared object, so their host wall-clock is the effective
             time — the multicore substitution only models the
             interpreter pool's tile distribution. *)
          let simulated = w > 1 && host_cores < w && !backend <> "native" in
          let wall_seconds =
            if (not simulated) || !failure <> None then host_wall_seconds
            else
              List.map
                (fun timings -> makespan_of_timings ~sched:sim_sched ~workers:w timings)
                (Lazy.force timed_reps)
          in
          let sorted =
            match List.sort compare wall_seconds with [] -> [ Float.nan ] | s -> s
          in
          let gcs = Lazy.force group_costs in
          Profile.set_predicted collector
            (List.map (fun gc -> (gc.gc_group, gc.gc_predicted)) gcs);
          let o =
            {
              app_name = app.Registry.name;
              scheduler;
              resolved;
              workers = w;
              wall_seconds;
              host_wall_seconds;
              simulated;
              backend = !backend;
              median_s = median_of sorted;
              min_s = List.hd sorted;
              max_abs_diff = !diff;
              n_groups;
              n_tiles;
              profile = Profile.result collector;
              failure = !failure;
              degraded = !degraded;
              group_costs = gcs;
            }
          in
          log
            (Printf.sprintf "%-15s %-8s %2d workers  median %8.2f ms  min %8.2f ms%s%s%s%s"
               o.app_name (Scheduler.to_string scheduler) w (o.median_s *. 1000.0)
               (o.min_s *. 1000.0)
               (if o.backend = "native" then "  [native]" else "")
               (if simulated then "  (simulated)" else "")
               (if o.degraded then "  DEGRADED" else "")
               (match o.failure with
               | Some e -> "  FAILED " ^ e
               | None ->
                   if valid o then ""
                   else Printf.sprintf "  INVALID max|diff|=%g" o.max_abs_diff));
          o)
        workers)
    schedulers

let run_all ?pool_sched ?log ~reps ~scale ~machine ~workers ~schedulers apps =
  List.concat_map
    (fun app -> run_app ?pool_sched ?log ~reps ~scale ~machine ~workers ~schedulers app)
    apps

let json_of_group_cost gc =
  let f = gc.gc_features in
  Json.Obj
    [
      ("group", Json.Int gc.gc_group);
      ("f_mem", Json.Float f.Cost_model.f_mem);
      ("f_idle", Json.Float f.Cost_model.f_idle);
      ("f_overlap", Json.Float f.Cost_model.f_overlap);
      ("f_mismatch", Json.Float f.Cost_model.f_mismatch);
      ("predicted_cost", Json.Float gc.gc_predicted);
      ("median_wall_seconds", Json.Float gc.gc_wall);
    ]

let json_of_outcome o =
  Json.Obj
    [
      ("app", Json.String o.app_name);
      ("scheduler", Json.String (Scheduler.to_string o.scheduler));
      ("resolved_scheduler", Json.String (Scheduler.to_string o.resolved));
      ("workers", Json.Int o.workers);
      ("wall_seconds", Json.List (List.map (fun f -> Json.Float f) o.wall_seconds));
      ("host_wall_seconds", Json.List (List.map (fun f -> Json.Float f) o.host_wall_seconds));
      ("simulated", Json.Bool o.simulated);
      ("backend", Json.String o.backend);
      ("median_seconds", Json.Float o.median_s);
      ("min_seconds", Json.Float o.min_s);
      ("valid", Json.Bool (valid o));
      ("max_abs_diff", Json.Float o.max_abs_diff);
      ("n_groups", Json.Int o.n_groups);
      ("n_tiles", Json.Int o.n_tiles);
      ("failure", match o.failure with None -> Json.Null | Some e -> Json.String e);
      ("degraded", Json.Bool o.degraded);
      ("profile", Profile.to_json o.profile);
      ("group_costs", Json.List (List.map json_of_group_cost o.group_costs));
    ]

(* v3 added per-case "group_costs" (predicted-vs-measured per group,
   the calibration corpus); v2 files are refused for merge like any
   other foreign schema. *)
let schema_version = 3

let to_json ~machine ~scale ~reps outcomes =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("machine", Json.String machine.Machine.name);
      ("scale", Json.Int scale);
      ("reps", Json.Int reps);
      ("host_cores", Json.Int (Domain.recommended_domain_count ()));
      ("cases", Json.List (List.map json_of_outcome outcomes));
    ]

(* A pre-existing output file is merged into, not clobbered: its cases
   survive unless this run re-measured the same (app, scheduler,
   workers) cell.  Anything that is not verifiably a current-schema
   bench file is refused with a typed error — merging fields into a
   file written under a different schema (v1, v2, ...) would silently
   corrupt it. *)
let load_for_merge path =
  if not (Sys.file_exists path) then Ok None
  else
    let invalid reason =
      Error (Pmdp_util.Pmdp_error.Plan_invalid { context = "bench: " ^ path; reason })
    in
    match Json.of_file path with
    | Error msg -> invalid ("not parseable as JSON: " ^ msg)
    | Ok doc -> (
        match Option.bind (Json.member "schema_version" doc) Json.to_int_opt with
        | Some v when v = schema_version -> Ok (Some doc)
        | Some v ->
            invalid
              (Printf.sprintf "schema_version %d, but this runner writes (and merges) v%d" v
                 schema_version)
        | None -> invalid "missing schema_version; refusing to merge into an unknown schema")

let case_key j =
  ( Option.bind (Json.member "app" j) Json.to_string_opt,
    Option.bind (Json.member "scheduler" j) Json.to_string_opt,
    Option.bind (Json.member "workers" j) Json.to_int_opt )

let merge_cases ~existing fresh =
  let fresh_keys = List.map case_key fresh in
  let kept =
    match Option.bind (Json.member "cases" existing) Json.to_list_opt with
    | None -> []
    | Some cases -> List.filter (fun c -> not (List.mem (case_key c) fresh_keys)) cases
  in
  kept @ fresh

let write_json ~path ~machine ~scale ~reps outcomes =
  match load_for_merge path with
  | Error _ as e -> e
  | Ok existing ->
      let doc = to_json ~machine ~scale ~reps outcomes in
      let doc =
        match (existing, doc) with
        | Some old, Json.Obj fields ->
            let fresh =
              match List.assoc_opt "cases" fields with Some (Json.List l) -> l | _ -> []
            in
            Json.Obj
              (List.map
                 (fun (k, v) ->
                   if k = "cases" then (k, Json.List (merge_cases ~existing:old fresh))
                   else (k, v))
                 fields)
        | _ -> doc
      in
      Json.to_file path doc;
      Ok ()

let default_path machine = Printf.sprintf "BENCH_%s.json" machine.Machine.name

(** Real-pool benchmark runner behind both `pmdp bench` and the
    `bench/` harness: app x scheduler x worker-count cases, each
    validated bitwise against {!Pmdp_exec.Reference.run}, with the
    executor's per-group {!Pmdp_report.Profile} attached, serialized
    to the repository's [BENCH_<machine>.json] trajectory files. *)

type group_cost = {
  gc_group : int;  (** group position in the schedule *)
  gc_features : Pmdp_core.Cost_model.features;  (** regressors of the chosen tile *)
  gc_predicted : float;  (** model cost (calibrated configs predict seconds) *)
  gc_wall : float;
      (** median across reps of the group's summed sequential tile
          durations, seconds *)
}
(** One row of the calibration corpus ({!Pmdp_tune.Calibration}):
    predicted vs measured for one schedule group.  Computed once per
    schedule and attached to every worker case of that schedule. *)

type outcome = {
  app_name : string;
  scheduler : Pmdp_core.Scheduler.t;  (** as requested *)
  resolved : Pmdp_core.Scheduler.t;  (** after {!Pmdp_core.Scheduler.for_pipeline} *)
  workers : int;
  wall_seconds : float list;  (** effective, one per rep, in run order *)
  host_wall_seconds : float list;  (** what the host actually took *)
  simulated : bool;
      (** true when the host has fewer cores than [workers]: the
          effective times are then makespan reconstructions from
          sequentially measured per-tile durations (the DESIGN.md
          multicore substitution), while the real pooled runs still
          execute for validation and profiling; never set for
          native-backed reps, whose in-kernel threads are real *)
  backend : string;
      (** the {!Pmdp_exec.Resilient} step that answered the last
          repetition — ["native"] when a compiled kernel ran,
          ["tiled-parallel"]/["tiled-serial"] for the interpreter,
          ["none"] when every rep failed *)
  median_s : float;  (** median of [wall_seconds] (upper for even reps) *)
  min_s : float;
  max_abs_diff : float;  (** vs the reference executor; 0.0 = bitwise valid *)
  n_groups : int;
  n_tiles : int;
  profile : Pmdp_report.Profile.t;  (** of the last rep *)
  failure : string option;
      (** [Some e] when every fallback step of a repetition died: the
          case is recorded as invalid (with the chain in
          [profile.steps]) instead of taking the whole benchmark sweep
          down *)
  degraded : bool;
      (** some repetition completed only via a
          {!Pmdp_exec.Resilient} fallback step *)
  group_costs : group_cost list;
      (** predicted-vs-measured per group (empty when the timed run
          died or no group analyzed) *)
}

val valid : outcome -> bool
(** Bitwise equality with the reference executor and no typed
    execution failure. *)

val run_app :
  ?pool_sched:Pmdp_runtime.Pool.sched ->
  ?log:(string -> unit) ->
  reps:int ->
  scale:int ->
  machine:Pmdp_machine.Machine.t ->
  workers:int list ->
  schedulers:Pmdp_core.Scheduler.t list ->
  Pmdp_apps.Registry.app ->
  outcome list
(** Benchmark one app: the schedule and plan are built once per
    scheduler (DP included, via {!Pmdp_core.Scheduler.for_pipeline}),
    then each worker count runs [reps] repetitions on its own
    persistent pool.  Installs the baseline schedulers.  [log]
    receives one line per finished case.
    @raise Invalid_argument if [reps < 1]. *)

val run_all :
  ?pool_sched:Pmdp_runtime.Pool.sched ->
  ?log:(string -> unit) ->
  reps:int ->
  scale:int ->
  machine:Pmdp_machine.Machine.t ->
  workers:int list ->
  schedulers:Pmdp_core.Scheduler.t list ->
  Pmdp_apps.Registry.app list ->
  outcome list

val schema_version : int
(** The bench JSON schema this runner writes — and the only one
    {!write_json} will merge into. *)

val to_json :
  machine:Pmdp_machine.Machine.t -> scale:int -> reps:int -> outcome list -> Pmdp_report.Json.t

val write_json :
  path:string ->
  machine:Pmdp_machine.Machine.t ->
  scale:int ->
  reps:int ->
  outcome list ->
  (unit, Pmdp_util.Pmdp_error.t) result
(** Serialize the outcomes to [path].  When the file already exists it
    is merged into: its cases survive except where this run
    re-measured the same (app, scheduler, workers) cell; run metadata
    (machine, scale, reps, host_cores) comes from the new run.  A
    pre-existing file that is not parseable JSON, lacks a
    [schema_version], or carries one other than {!schema_version} is
    refused with a typed [Plan_invalid] naming the path and the
    version found — never an exception. *)

val default_path : Pmdp_machine.Machine.t -> string
(** ["BENCH_<machine>.json"]. *)

module Tiled_exec = Pmdp_exec.Tiled_exec
module Pool = Pmdp_runtime.Pool

type measurement = { t1 : float; t16 : float }

(* Sequential per-tile timing plus the OpenMP-static makespan
   reconstruction (DESIGN.md, substitutions): the measurement behind
   the paper-table harness.  [t1] is the best total sequential time
   over [reps] runs; [t16] the best simulated [cores]-way time. *)
let measure_schedule ~reps ~cores sched inputs =
  let plan = Tiled_exec.plan sched in
  let best = ref { t1 = infinity; t16 = infinity } in
  for _ = 1 to reps do
    let _, timings = Tiled_exec.run_timed plan ~inputs in
    let t1 =
      List.fold_left
        (fun acc (g : Tiled_exec.group_timing) ->
          acc +. Array.fold_left ( +. ) 0.0 g.Tiled_exec.tile_durations)
        0.0 timings
    in
    let t16 =
      List.fold_left
        (fun acc (g : Tiled_exec.group_timing) ->
          acc
          +. Pool.simulate_makespan ~sched:Pool.Static ~workers:cores
               g.Tiled_exec.tile_durations)
        0.0 timings
    in
    if t1 < !best.t1 then best := { t1; t16 = Float.min t16 !best.t16 }
    else if t16 < !best.t16 then best := { !best with t16 }
  done;
  !best

type app = {
  name : string;
  short : string;
  paper_stages : int;
  build : scale:int -> Pmdp_dsl.Pipeline.t;
  inputs : seed:int -> Pmdp_dsl.Pipeline.t -> (string * Pmdp_exec.Buffer.t) list;
}

let benchmarks =
  [
    {
      name = "unsharp";
      short = "UM";
      paper_stages = 4;
      build = (fun ~scale -> Unsharp.build ~scale ());
      inputs = (fun ~seed p -> Unsharp.inputs ~seed p);
    };
    {
      name = "harris";
      short = "HC";
      paper_stages = 11;
      build = (fun ~scale -> Harris.build ~scale ());
      inputs = (fun ~seed p -> Harris.inputs ~seed p);
    };
    {
      name = "bilateral_grid";
      short = "BG";
      paper_stages = 7;
      build = (fun ~scale -> Bilateral_grid.build ~scale ());
      inputs = (fun ~seed p -> Bilateral_grid.inputs ~seed p);
    };
    {
      name = "interpolate";
      short = "MI";
      paper_stages = 49;
      build = (fun ~scale -> Interpolate.build ~scale ());
      inputs = (fun ~seed p -> Interpolate.inputs ~seed p);
    };
    {
      name = "camera_pipe";
      short = "CP";
      paper_stages = 32;
      build = (fun ~scale -> Camera_pipe.build ~scale ());
      inputs = (fun ~seed p -> Camera_pipe.inputs ~seed p);
    };
    {
      name = "pyramid_blend";
      short = "PB";
      paper_stages = 44;
      build = (fun ~scale -> Pyramid_blend.build ~scale ());
      inputs = (fun ~seed p -> Pyramid_blend.inputs ~seed p);
    };
  ]

let all =
  benchmarks
  @ [
      {
        name = "blur";
        short = "BL";
        paper_stages = 2;
        build =
          (fun ~scale -> Blur.build ~rows:(max 16 (2046 / scale)) ~cols:(max 16 (2048 / scale)) ());
        inputs = (fun ~seed p -> Blur.inputs ~seed p);
      };
      (* beyond the paper's six: the classic hard scheduling case *)
      {
        name = "local_laplacian";
        short = "LL";
        paper_stages = 34;
        build = (fun ~scale -> Local_laplacian.build ~scale ());
        inputs = (fun ~seed p -> Local_laplacian.inputs ~seed p);
      };
      (* min/max stencil chains *)
      {
        name = "morphology";
        short = "MG";
        paper_stages = 10;
        build = (fun ~scale -> Morphology.build ~scale ());
        inputs = (fun ~seed p -> Morphology.inputs ~seed p);
      };
    ]

let find key =
  let k = String.lowercase_ascii key in
  List.find_opt
    (fun a -> String.lowercase_ascii a.name = k || String.lowercase_ascii a.short = k)
    all

let find_exn key =
  match find key with Some a -> a | None -> raise Not_found

let names () = String.concat ", " (List.map (fun a -> a.name) all)

(** Benchmark registry: the six applications of the paper's Table 2
    plus the blur running example. *)

type app = {
  name : string;  (** pipeline name, e.g. "unsharp" *)
  short : string;  (** the paper's abbreviation, e.g. "UM" *)
  paper_stages : int;  (** stage count reported in Table 2 *)
  build : scale:int -> Pmdp_dsl.Pipeline.t;
      (** [scale] divides the paper's image extents *)
  inputs : seed:int -> Pmdp_dsl.Pipeline.t -> (string * Pmdp_exec.Buffer.t) list;
}

val benchmarks : app list
(** The six Table 2 benchmarks, in the paper's order. *)

val all : app list
(** [benchmarks] plus blur. *)

val find : string -> app option
(** Lookup by [name] or [short] (case-insensitive). *)

val find_exn : string -> app
(** Like {!find}. @raise Not_found on unknown names — for callers
    (tests, benchmarks) that hard-code known-good names; CLI paths
    must use {!find} and report through their own error channel. *)

val names : unit -> string
(** Comma-separated names of {!all}, for error messages. *)

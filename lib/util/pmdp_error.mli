(** Typed error taxonomy for the execution stack.

    Every failure mode an executor, planner, or pool can hit is a
    variant with a structured payload, so callers can match on the
    failure kind instead of parsing [Invalid_argument] strings, and
    reports can render the payload as JSON.  The {!Error} exception is
    the raising form used at boundaries that cannot return a
    [result]; {!of_exn} recovers the typed value on the catching
    side. *)

type t =
  | Plan_invalid of { context : string; reason : string }
      (** A schedule could not be lowered to an executable plan
          (failed group analysis, validation, or an internal planner
          invariant). *)
  | Arity_mismatch of { context : string; expected : int; got : int }
      (** A tile-size vector (or similar indexed payload) has the
          wrong number of entries. *)
  | Unresolved_external of { name : string; context : string }
      (** A stage body loads from [name], but no buffer or producer
          with that name is in scope. *)
  | Scratch_over_budget of { required_bytes : int; budget_bytes : int; context : string }
      (** The pre-flight resource guard rejected an allocation: the
          plan needs [required_bytes] against a budget of
          [budget_bytes]. *)
  | Worker_crash of { worker : int; detail : string }
      (** A pool worker domain died (or an uncategorized exception
          escaped a tile body); [worker = -1] when the crashing worker
          is unknown. *)
  | Timeout of { seconds : float; context : string }
      (** A watchdog expired and cancelled the work. *)
  | Cancelled of { reason : string }
      (** Work observed its cooperative-cancellation token. *)
  | Pool_shutdown of { context : string }
      (** A [parallel_for] was issued on a pool whose domains have
          been joined. *)
  | Overloaded of { shard : int; depth : int; limit : int; context : string }
      (** Graduated backpressure: a dispatcher shard's bounded queue
          is full and the request's priority did not beat any queued
          request's, so it was refused (or a queued lower-priority
          request was shed to make room — the shed request fails with
          this too). *)
  | Deadline_exceeded of { deadline : float; waited : float; context : string }
      (** The request carried a deadline (seconds from submit) and was
          still queued when it passed; it was dropped without
          executing. *)
  | Circuit_open of { fingerprint : string; failures : int; retry_after : float; context : string }
      (** The per-fingerprint circuit breaker is open: this plan has
          failed [failures] times in a row, so the service refuses the
          request without compiling or queueing it.  [retry_after] is
          the remaining cooldown in seconds before a half-open probe
          will be admitted. *)
  | Kernel_unavailable of { reason : string; context : string }
      (** The native kernel backend could not produce or load a
          compiled kernel for this plan — no C toolchain on the host,
          a failed compile or [dlopen], or a kernel that failed the
          validation gate against the reference executor.  Always
          recoverable: the resilient chain records it and falls back
          to the interpreter. *)

exception Error of t

val kind : t -> string
(** Stable kebab-case slug of the variant ("plan-invalid",
    "worker-crash", ...); the machine-readable half of a rendering. *)

val message : t -> string
(** Human-readable description of the payload, without the kind. *)

val pp : Format.formatter -> t -> unit
(** ["kind: message"]. *)

val to_string : t -> string

type field = Int of int | Float of float | Str of string

val fields : t -> (string * field) list
(** Structured payload as named fields (for JSON emitters that do not
    depend on this library's rendering). *)

val raise_ : t -> 'a
(** [raise_ e] is [raise (Error e)]. *)

val of_exn : exn -> t option
(** [Some e] iff the exception is [Error e]. *)

(** Small statistics helpers used by the benchmark harness and the
    cost model (standard deviation of dimension extents, Alg. 2). *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on empty input. *)

val stddev : float array -> float
(** Population standard deviation. @raise Invalid_argument on empty
    input. *)

val coefficient_of_variation : float array -> float
(** [stddev xs /. mean xs]; 0 when the mean is 0. Used as the
    scale-free "relative difference between sizes of dimensions" term
    of the paper's cost function. *)

val min : float array -> float
val max : float array -> float
val median : float array -> float
(** @raise Invalid_argument on empty input. *)

val percentile : float -> float array -> float
(** [percentile p xs] is the nearest-rank p-th percentile (the
    smallest sample >= p% of the input), e.g. [percentile 99.0] for
    the service load generator's tail latency.  [percentile 100.0] is
    {!max}; small [p] round down to the smallest sample.
    @raise Invalid_argument on empty input or [p] outside [0, 100]. *)

let check xs = if Array.length xs = 0 then invalid_arg "Stats: empty input"

let mean xs =
  check xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  check xs;
  let m = mean xs in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  sqrt (acc /. float_of_int (Array.length xs))

let coefficient_of_variation xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else stddev xs /. m

let min xs =
  check xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check xs;
  Array.fold_left Stdlib.max xs.(0) xs

let median xs =
  check xs;
  let s = Array.copy xs in
  Array.sort compare s;
  let n = Array.length s in
  if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

let percentile p xs =
  check xs;
  if not (p >= 0.0 && p <= 100.0) then invalid_arg "Stats.percentile: p outside [0, 100]";
  let s = Array.copy xs in
  Array.sort compare s;
  let n = Array.length s in
  (* nearest-rank: the smallest element >= p% of the sample *)
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  s.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

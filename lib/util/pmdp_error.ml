type t =
  | Plan_invalid of { context : string; reason : string }
  | Arity_mismatch of { context : string; expected : int; got : int }
  | Unresolved_external of { name : string; context : string }
  | Scratch_over_budget of { required_bytes : int; budget_bytes : int; context : string }
  | Worker_crash of { worker : int; detail : string }
  | Timeout of { seconds : float; context : string }
  | Cancelled of { reason : string }
  | Pool_shutdown of { context : string }
  | Overloaded of { shard : int; depth : int; limit : int; context : string }
  | Deadline_exceeded of { deadline : float; waited : float; context : string }
  | Circuit_open of { fingerprint : string; failures : int; retry_after : float; context : string }
  | Kernel_unavailable of { reason : string; context : string }

exception Error of t

let kind = function
  | Plan_invalid _ -> "plan-invalid"
  | Arity_mismatch _ -> "arity-mismatch"
  | Unresolved_external _ -> "unresolved-external"
  | Scratch_over_budget _ -> "scratch-over-budget"
  | Worker_crash _ -> "worker-crash"
  | Timeout _ -> "timeout"
  | Cancelled _ -> "cancelled"
  | Pool_shutdown _ -> "pool-shutdown"
  | Overloaded _ -> "overloaded"
  | Deadline_exceeded _ -> "deadline-exceeded"
  | Circuit_open _ -> "circuit-open"
  | Kernel_unavailable _ -> "kernel-unavailable"

let message = function
  | Plan_invalid { context; reason } -> Printf.sprintf "%s: %s" context reason
  | Arity_mismatch { context; expected; got } ->
      Printf.sprintf "%s: expected %d entries, got %d" context expected got
  | Unresolved_external { name; context } ->
      Printf.sprintf "%s: no buffer or producer named %S is in scope" context name
  | Scratch_over_budget { required_bytes; budget_bytes; context } ->
      Printf.sprintf "%s: needs %d bytes but the memory budget is %d bytes" context
        required_bytes budget_bytes
  | Worker_crash { worker; detail } ->
      if worker < 0 then detail else Printf.sprintf "worker %d: %s" worker detail
  | Timeout { seconds; context } -> Printf.sprintf "%s: watchdog expired after %gs" context seconds
  | Cancelled { reason } -> reason
  | Pool_shutdown { context } -> Printf.sprintf "%s: pool has been shut down" context
  | Overloaded { shard; depth; limit; context } ->
      Printf.sprintf "%s: shard %d queue holds %d of at most %d requests" context shard depth
        limit
  | Deadline_exceeded { deadline; waited; context } ->
      Printf.sprintf "%s: deadline was %gs but the request waited %gs" context deadline waited
  | Circuit_open { fingerprint; failures; retry_after; context } ->
      Printf.sprintf "%s: circuit for plan %s is open after %d failures, retry in %gs" context
        fingerprint failures retry_after
  | Kernel_unavailable { reason; context } ->
      Printf.sprintf "%s: native kernel unavailable (%s)" context reason

let pp ppf e = Format.fprintf ppf "%s: %s" (kind e) (message e)
let to_string e = Format.asprintf "%a" pp e

type field = Int of int | Float of float | Str of string

let fields = function
  | Plan_invalid { context; reason } -> [ ("context", Str context); ("reason", Str reason) ]
  | Arity_mismatch { context; expected; got } ->
      [ ("context", Str context); ("expected", Int expected); ("got", Int got) ]
  | Unresolved_external { name; context } -> [ ("name", Str name); ("context", Str context) ]
  | Scratch_over_budget { required_bytes; budget_bytes; context } ->
      [
        ("required_bytes", Int required_bytes);
        ("budget_bytes", Int budget_bytes);
        ("context", Str context);
      ]
  | Worker_crash { worker; detail } -> [ ("worker", Int worker); ("detail", Str detail) ]
  | Timeout { seconds; context } -> [ ("seconds", Float seconds); ("context", Str context) ]
  | Cancelled { reason } -> [ ("reason", Str reason) ]
  | Pool_shutdown { context } -> [ ("context", Str context) ]
  | Overloaded { shard; depth; limit; context } ->
      [ ("shard", Int shard); ("depth", Int depth); ("limit", Int limit); ("context", Str context) ]
  | Deadline_exceeded { deadline; waited; context } ->
      [ ("deadline", Float deadline); ("waited", Float waited); ("context", Str context) ]
  | Circuit_open { fingerprint; failures; retry_after; context } ->
      [
        ("fingerprint", Str fingerprint);
        ("failures", Int failures);
        ("retry_after", Float retry_after);
        ("context", Str context);
      ]
  | Kernel_unavailable { reason; context } ->
      [ ("reason", Str reason); ("context", Str context) ]

let raise_ e = raise (Error e)
let of_exn = function Error e -> Some e | _ -> None

let () =
  Printexc.register_printer (function Error e -> Some ("Pmdp_error: " ^ to_string e) | _ -> None)

(** Machine descriptors consumed by the cost models.

    The paper evaluates on two systems (§6.1) and fixes the cost
    function weights per system (Table 1); both are provided as
    presets.  All model inputs are plain parameters, so the model can
    be evaluated for any machine regardless of the host running it. *)

type t = {
  name : string;
  l1_bytes : int;
  l2_bytes : int;
  l3_bytes : int;
  cores : int;
  vector_width : int;  (** in 32-bit lanes, as Halide's auto-scheduler counts it *)
  innermost_tile_size : int;  (** INNERMOSTTILESIZE of Alg. 2 *)
  w1 : float;  (** weight of live-data to computation ratio *)
  w2 : float;  (** weight of the cleanup-tile (load balance) bonus *)
  w3 : float;  (** weight of relative overlap (redundant computation) *)
  w4 : float;  (** weight of dimension-extent mismatch *)
}

val xeon : t
(** Intel Xeon E5-2630 v3 (Haswell): 32 KB L1, 256 KB L2, 20 MB L3,
    16 cores (dual socket), AVX2; weights of Table 1. *)

val opteron : t
(** AMD Opteron 6386 SE: 16 KB L1, 1 MB effective L2 (half of the
    2-core-shared 2 MB), 12 MB L3, 16 cores; weights of Table 1. *)

val by_name : string -> t option
(** Lookup by case-insensitive name ("xeon" or "opteron"). *)

val with_cores : t -> int -> t
(** Same machine with a different core count (used for the scaling
    experiment of Fig. 7). *)

val default_mem_budget : t -> int
(** Default memory budget (bytes) for the pre-flight resource guard
    of [Pmdp_exec.Resilient]: 64x the machine's L3.  Far above any
    benchmark working set, but low enough to reject runaway plans
    before they allocate. *)

type t = {
  name : string;
  l1_bytes : int;
  l2_bytes : int;
  l3_bytes : int;
  cores : int;
  vector_width : int;
  innermost_tile_size : int;
  w1 : float;
  w2 : float;
  w3 : float;
  w4 : float;
}

let xeon =
  {
    name = "xeon";
    l1_bytes = 32 * 1024;
    l2_bytes = 256 * 1024;
    l3_bytes = 20 * 1024 * 1024;
    cores = 16;
    vector_width = 16;
    innermost_tile_size = 256;
    w1 = 1.0;
    w2 = 100.0;
    w3 = 46875.0;
    w4 = 1.5;
  }

let opteron =
  {
    name = "opteron";
    l1_bytes = 16 * 1024;
    l2_bytes = 1024 * 1024;
    l3_bytes = 12 * 1024 * 1024;
    cores = 16;
    vector_width = 16;
    innermost_tile_size = 128;
    w1 = 0.3;
    w2 = 100.0;
    w3 = 46875.0;
    w4 = 2.0;
  }

let by_name s =
  match String.lowercase_ascii s with
  | "xeon" | "haswell" -> Some xeon
  | "opteron" | "amd" -> Some opteron
  | _ -> None

let with_cores t cores = { t with cores }

(* 64x the last-level cache: comfortably above any benchmark working
   set (full buffers live in RAM, not in L3) while still small enough
   that a runaway plan — scratch arenas or buffers in the gigabytes —
   is rejected before allocation instead of OOM-ing the process. *)
let default_mem_budget t = 64 * t.l3_bytes

module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage
module Group_analysis = Pmdp_analysis.Group_analysis
module Footprint = Pmdp_analysis.Footprint
module Schedule_spec = Pmdp_core.Schedule_spec
module Pmdp_error = Pmdp_util.Pmdp_error
module Json = Pmdp_report.Json

type member = {
  sid : int;
  name : string;
  dims : (int * int) array;
  liveout : bool;
  direct : bool;
  scratch_extents : int array;
  max_scratch : int;
}

type edge = { e_producer : int; e_consumer : int; hull : (int * int) array }

type group = {
  members : member array;
  tile : int array;
  tiles_per_dim : int array;
  n_tiles : int;
  n_dims : int;
  scales : int array array;
  dim_of_stage : int array array;
  scaled_lo : int array array;
  scaled_hi : int array array;
  dim_lo : int array;
  dim_hi : int array;
  expansions : (int * int) array array;
  edges : edge array;
}

type t = {
  version : int;
  pipeline : string;
  n_stages : int;
  groups : group array;
  liveouts : string list;
  working_set_bytes : int;
  scratch_bytes_per_worker : int;
}

let version = 1

(* The one scratch-sizing formula: widest possible clamped region of a
   member along each own dimension, for any tile position.  The
   interpreted executor's arena, the emitted C's stack allocation, and
   the static checker all agree with this by construction or by
   cross-check. *)
let member_scratch_extents (ga : Group_analysis.t) ~member:m ~tile =
  let stage = Pipeline.stage ga.Group_analysis.pipeline ga.Group_analysis.members.(m) in
  Array.init (Stage.ndims stage) (fun k ->
      let g = ga.Group_analysis.dim_of_stage.(m).(k) in
      let s = ga.Group_analysis.scales.(m).(g) in
      let elo, ehi = ga.Group_analysis.expansions.(m).(g) in
      let widest = ((tile.(g) + elo + ehi + s - 1) / s) + 2 in
      min stage.Stage.dims.(k).Stage.extent (max 1 widest))

(* ------------------------------------------------------------------ *)
(* Lowering: schedule spec -> IR (the analysis half of the old
   Tiled_exec.plan, minus closure compilation). *)

let lower_group p (g : Schedule_spec.group) =
  let ga =
    match Group_analysis.analyze p g.Schedule_spec.stages with
    | Ok ga -> ga
    | Error f ->
        Pmdp_error.raise_
          (Pmdp_error.Plan_invalid
             {
               context = "Pmdp_plan.of_spec";
               reason = Format.asprintf "group failed analysis: %a" Group_analysis.pp_failure f;
             })
  in
  if Array.length g.Schedule_spec.tile_sizes <> ga.Group_analysis.n_dims then
    Pmdp_error.raise_
      (Pmdp_error.Arity_mismatch
         {
           context = "Pmdp_plan.of_spec: tile sizes";
           expected = ga.Group_analysis.n_dims;
           got = Array.length g.Schedule_spec.tile_sizes;
         });
  let tile = Footprint.clamp_tile ga g.Schedule_spec.tile_sizes in
  let tiles_per_dim =
    Array.init ga.Group_analysis.n_dims (fun d ->
        let extent = Group_analysis.dim_extent ga d in
        (extent + tile.(d) - 1) / tile.(d))
  in
  let n_tiles = Array.fold_left ( * ) 1 tiles_per_dim in
  let members =
    Array.mapi
      (fun m sid ->
        let stage = Pipeline.stage p sid in
        let own_nd = Stage.ndims stage in
        let liveout = ga.Group_analysis.liveouts.(m) in
        (* A member is "direct" — writes straight to its full buffer —
           when its region is always exactly the tile box: no overlap
           expansion, unit scale, and a domain equal to the group
           hull.  Mirrors the executor's derivation exactly. *)
        let direct = ref liveout in
        for k = 0 to own_nd - 1 do
          let g = ga.Group_analysis.dim_of_stage.(m).(k) in
          let s = ga.Group_analysis.scales.(m).(g) in
          let elo, ehi = ga.Group_analysis.expansions.(m).(g) in
          if
            (elo, ehi) <> (0, 0) || s <> 1
            || ga.Group_analysis.scaled_lo.(m).(g) <> ga.Group_analysis.dim_lo.(g)
            || ga.Group_analysis.scaled_hi.(m).(g) <> ga.Group_analysis.dim_hi.(g)
          then direct := false
        done;
        for g = 0 to ga.Group_analysis.n_dims - 1 do
          if ga.Group_analysis.expansions.(m).(g) <> (0, 0) then direct := false
        done;
        let scratch_extents = member_scratch_extents ga ~member:m ~tile in
        let max_scratch =
          if !direct then 0 else Array.fold_left ( * ) 1 scratch_extents
        in
        {
          sid;
          name = stage.Stage.name;
          dims = Array.map (fun (d : Stage.dim) -> (d.Stage.lo, d.Stage.extent)) stage.Stage.dims;
          liveout;
          direct = !direct;
          scratch_extents;
          max_scratch;
        })
      ga.Group_analysis.members
  in
  {
    members;
    tile;
    tiles_per_dim;
    n_tiles;
    n_dims = ga.Group_analysis.n_dims;
    scales = ga.Group_analysis.scales;
    dim_of_stage = ga.Group_analysis.dim_of_stage;
    scaled_lo = ga.Group_analysis.scaled_lo;
    scaled_hi = ga.Group_analysis.scaled_hi;
    dim_lo = ga.Group_analysis.dim_lo;
    dim_hi = ga.Group_analysis.dim_hi;
    expansions = ga.Group_analysis.expansions;
    edges =
      Array.of_list
        (List.map
           (fun (e : Group_analysis.edge) ->
             {
               e_producer = e.Group_analysis.e_producer;
               e_consumer = e.Group_analysis.e_consumer;
               hull = e.Group_analysis.hull;
             })
           ga.Group_analysis.edges);
  }

let arena_bytes g =
  Array.fold_left
    (fun acc m -> if m.direct then acc else acc + (m.max_scratch * 8))
    0 g.members

let of_spec (spec : Schedule_spec.t) =
  Schedule_spec.validate spec;
  let p = spec.Schedule_spec.pipeline in
  let groups = Array.of_list (List.map (lower_group p) spec.Schedule_spec.groups) in
  let liveouts =
    List.concat_map
      (fun g ->
        List.filter_map
          (fun m -> if m.liveout then Some m.name else None)
          (Array.to_list g.members))
      (Array.to_list groups)
  in
  let working_set_bytes =
    Array.fold_left
      (fun acc g ->
        Array.fold_left
          (fun acc m ->
            if m.liveout then
              acc + (Array.fold_left (fun n (_, e) -> n * e) 1 m.dims * 8)
            else acc)
          acc g.members)
      0 groups
  in
  let scratch_bytes_per_worker =
    Array.fold_left (fun acc g -> max acc (arena_bytes g)) 0 groups
  in
  {
    version;
    pipeline = p.Pipeline.name;
    n_stages = Pipeline.n_stages p;
    groups;
    liveouts;
    working_set_bytes;
    scratch_bytes_per_worker;
  }

let of_spec_result spec =
  match of_spec spec with
  | ir -> Ok ir
  | exception Pmdp_error.Error e -> Error e
  | exception Invalid_argument reason ->
      Error (Pmdp_error.Plan_invalid { context = "Schedule_spec.validate"; reason })

(* ------------------------------------------------------------------ *)
(* Instantiation bridge: IR group -> Group_analysis.t, validated
   against the pipeline it claims to lower. *)

let plan_invalid fmt =
  Printf.ksprintf
    (fun reason -> Pmdp_error.raise_ (Pmdp_error.Plan_invalid { context = "Pmdp_plan"; reason }))
    fmt

let group_analysis p (g : group) : Group_analysis.t =
  let n = Array.length g.members in
  if n = 0 then plan_invalid "empty group";
  let check_rows what rows =
    if Array.length rows <> n then
      plan_invalid "%s has %d rows for %d members" what (Array.length rows) n;
    Array.iter
      (fun row ->
        if Array.length row <> g.n_dims then
          plan_invalid "%s row has %d entries for %d group dims" what (Array.length row) g.n_dims)
      rows
  in
  check_rows "scales" g.scales;
  check_rows "scaled_lo" g.scaled_lo;
  check_rows "scaled_hi" g.scaled_hi;
  check_rows "expansions" (Array.map (Array.map fst) g.expansions);
  if Array.length g.dim_of_stage <> n then
    plan_invalid "dim_of_stage has %d rows for %d members" (Array.length g.dim_of_stage) n;
  if Array.length g.dim_lo <> g.n_dims || Array.length g.dim_hi <> g.n_dims then
    plan_invalid "group-dim hull arity differs from n_dims %d" g.n_dims;
  if Array.length g.tile <> g.n_dims then
    plan_invalid "tile array has %d entries for %d group dims" (Array.length g.tile) g.n_dims;
  Array.iteri
    (fun d t -> if t < 1 then plan_invalid "tile size %d along group dim %d" t d)
    g.tile;
  Array.iteri
    (fun m (mir : member) ->
      if mir.sid < 0 || mir.sid >= Pipeline.n_stages p then
        plan_invalid "stage id %d out of range for pipeline %s" mir.sid p.Pipeline.name;
      let stage = Pipeline.stage p mir.sid in
      if stage.Stage.name <> mir.name then
        plan_invalid "member %d names %S but pipeline stage %d is %S (stale plan?)" m mir.name
          mir.sid stage.Stage.name;
      let dims = Array.map (fun (d : Stage.dim) -> (d.Stage.lo, d.Stage.extent)) stage.Stage.dims in
      if dims <> mir.dims then
        plan_invalid "member %s: buffer extents differ from the pipeline's (stale plan?)" mir.name;
      if Array.length g.dim_of_stage.(m) <> Stage.ndims stage then
        plan_invalid "member %s: dim_of_stage arity %d, stage has %d dims" mir.name
          (Array.length g.dim_of_stage.(m))
          (Stage.ndims stage);
      Array.iter
        (fun d ->
          if d < 0 || d >= g.n_dims then
            plan_invalid "member %s: own dim maps to group dim %d of %d" mir.name d g.n_dims)
        g.dim_of_stage.(m))
    g.members;
  Array.iter
    (fun (e : edge) ->
      if e.e_producer < 0 || e.e_producer >= n || e.e_consumer < 0 || e.e_consumer >= n then
        plan_invalid "edge endpoints (%d, %d) out of member range" e.e_producer e.e_consumer;
      if Array.length e.hull <> g.n_dims then
        plan_invalid "edge hull arity %d for %d group dims" (Array.length e.hull) g.n_dims)
    g.edges;
  {
    Group_analysis.pipeline = p;
    members = Array.map (fun m -> m.sid) g.members;
    n_dims = g.n_dims;
    scales = g.scales;
    dim_of_stage = g.dim_of_stage;
    scaled_lo = g.scaled_lo;
    scaled_hi = g.scaled_hi;
    dim_lo = g.dim_lo;
    dim_hi = g.dim_hi;
    edges =
      List.map
        (fun (e : edge) ->
          {
            Group_analysis.e_producer = e.e_producer;
            e_consumer = e.e_consumer;
            offsets = [ e.hull ];
            hull = e.hull;
          })
        (Array.to_list g.edges);
    expansions = g.expansions;
    liveouts = Array.map (fun m -> m.liveout) g.members;
  }

(* ------------------------------------------------------------------ *)
(* Re-tiling: same grouping, new tile sizes.  The tile search
   (lib/tune) and the service's online retuner perturb tiles on an
   already-admitted IR; everything tile-derived — tiles_per_dim,
   n_tiles, member scratch extents, arena sizes — is recomputed
   through the same formulas lowering uses, while grouping, liveouts
   and the working set are tile-independent and carried over.  The
   result is a fresh IR with a fresh digest that must pass the same
   admission gate as any other plan. *)

let retile p t tiles =
  let ngroups = Array.length t.groups in
  if Array.length tiles <> ngroups then
    Pmdp_error.raise_
      (Pmdp_error.Arity_mismatch
         {
           context = "Pmdp_plan.retile: groups";
           expected = ngroups;
           got = Array.length tiles;
         });
  let groups =
    Array.mapi
      (fun gi g ->
        let ga = group_analysis p g in
        if Array.length tiles.(gi) <> g.n_dims then
          Pmdp_error.raise_
            (Pmdp_error.Arity_mismatch
               {
                 context = "Pmdp_plan.retile: tile sizes";
                 expected = g.n_dims;
                 got = Array.length tiles.(gi);
               });
        Array.iteri
          (fun d s ->
            if s < 1 then
              plan_invalid "retile: tile size %d along group dim %d" s d)
          tiles.(gi);
        let tile = Footprint.clamp_tile ga tiles.(gi) in
        let tiles_per_dim =
          Array.init g.n_dims (fun d ->
              let extent = Group_analysis.dim_extent ga d in
              (extent + tile.(d) - 1) / tile.(d))
        in
        let n_tiles = Array.fold_left ( * ) 1 tiles_per_dim in
        let members =
          Array.mapi
            (fun m mir ->
              let scratch_extents = member_scratch_extents ga ~member:m ~tile in
              let max_scratch =
                if mir.direct then 0 else Array.fold_left ( * ) 1 scratch_extents
              in
              { mir with scratch_extents; max_scratch })
            g.members
        in
        { g with members; tile; tiles_per_dim; n_tiles })
      t.groups
  in
  let scratch_bytes_per_worker =
    Array.fold_left (fun acc g -> max acc (arena_bytes g)) 0 groups
  in
  { t with groups; scratch_bytes_per_worker }

let retile_result p t tiles =
  match retile p t tiles with
  | ir -> Ok ir
  | exception Pmdp_error.Error e -> Error e

(* ------------------------------------------------------------------ *)
(* JSON codec.  Field order is fixed; every emission path goes through
   these constructors, so equal IRs render byte-identically and the
   digest is a content address. *)

let j_ints a = Json.List (List.map (fun i -> Json.Int i) (Array.to_list a))
let j_mat m = Json.List (List.map j_ints (Array.to_list m))
let j_pair (a, b) = Json.List [ Json.Int a; Json.Int b ]
let j_pairs a = Json.List (List.map j_pair (Array.to_list a))
let j_pair_mat m = Json.List (List.map j_pairs (Array.to_list m))

let member_to_json (m : member) =
  Json.Obj
    [
      ("sid", Json.Int m.sid);
      ("name", Json.String m.name);
      ("dims", j_pairs m.dims);
      ("liveout", Json.Bool m.liveout);
      ("direct", Json.Bool m.direct);
      ("scratch_extents", j_ints m.scratch_extents);
      ("max_scratch", Json.Int m.max_scratch);
    ]

let edge_to_json (e : edge) =
  Json.Obj
    [
      ("producer", Json.Int e.e_producer);
      ("consumer", Json.Int e.e_consumer);
      ("hull", j_pairs e.hull);
    ]

let group_to_json (g : group) =
  Json.Obj
    [
      ("members", Json.List (List.map member_to_json (Array.to_list g.members)));
      ("tile", j_ints g.tile);
      ("tiles_per_dim", j_ints g.tiles_per_dim);
      ("n_tiles", Json.Int g.n_tiles);
      ("n_dims", Json.Int g.n_dims);
      ("scales", j_mat g.scales);
      ("dim_of_stage", j_mat g.dim_of_stage);
      ("scaled_lo", j_mat g.scaled_lo);
      ("scaled_hi", j_mat g.scaled_hi);
      ("dim_lo", j_ints g.dim_lo);
      ("dim_hi", j_ints g.dim_hi);
      ("expansions", j_pair_mat g.expansions);
      ("edges", Json.List (List.map edge_to_json (Array.to_list g.edges)));
    ]

let to_json (t : t) =
  Json.Obj
    [
      ("version", Json.Int t.version);
      ("pipeline", Json.String t.pipeline);
      ("n_stages", Json.Int t.n_stages);
      ("groups", Json.List (List.map group_to_json (Array.to_list t.groups)));
      ("liveouts", Json.List (List.map (fun s -> Json.String s) t.liveouts));
      ("working_set_bytes", Json.Int t.working_set_bytes);
      ("scratch_bytes_per_worker", Json.Int t.scratch_bytes_per_worker);
    ]

exception Parse of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

let field name j =
  match Json.member name j with Some v -> v | None -> fail "missing field %S" name

let p_int name j =
  match Json.to_int_opt (field name j) with
  | Some i -> i
  | None -> fail "field %S: expected an integer" name

let p_string name j =
  match Json.to_string_opt (field name j) with
  | Some s -> s
  | None -> fail "field %S: expected a string" name

let p_bool name j =
  match Json.to_bool_opt (field name j) with
  | Some b -> b
  | None -> fail "field %S: expected a bool" name

let p_list name j =
  match Json.to_list_opt (field name j) with
  | Some l -> l
  | None -> fail "field %S: expected a list" name

let as_int name j =
  match Json.to_int_opt j with Some i -> i | None -> fail "%s: expected an integer" name

let p_ints name j = Array.of_list (List.map (as_int name) (p_list name j))

let p_mat name j =
  Array.of_list
    (List.map
       (fun row ->
         match Json.to_list_opt row with
         | Some l -> Array.of_list (List.map (as_int name) l)
         | None -> fail "field %S: expected a list of lists" name)
       (p_list name j))

let as_pair name j =
  match Json.to_list_opt j with
  | Some [ a; b ] -> (as_int name a, as_int name b)
  | _ -> fail "%s: expected a [lo, hi] pair" name

let p_pairs name j = Array.of_list (List.map (as_pair name) (p_list name j))

let p_pair_mat name j =
  Array.of_list
    (List.map
       (fun row ->
         match Json.to_list_opt row with
         | Some l -> Array.of_list (List.map (as_pair name) l)
         | None -> fail "field %S: expected a list of pair lists" name)
       (p_list name j))

let member_of_json j =
  {
    sid = p_int "sid" j;
    name = p_string "name" j;
    dims = p_pairs "dims" j;
    liveout = p_bool "liveout" j;
    direct = p_bool "direct" j;
    scratch_extents = p_ints "scratch_extents" j;
    max_scratch = p_int "max_scratch" j;
  }

let edge_of_json j =
  { e_producer = p_int "producer" j; e_consumer = p_int "consumer" j; hull = p_pairs "hull" j }

let group_of_json j =
  {
    members = Array.of_list (List.map member_of_json (p_list "members" j));
    tile = p_ints "tile" j;
    tiles_per_dim = p_ints "tiles_per_dim" j;
    n_tiles = p_int "n_tiles" j;
    n_dims = p_int "n_dims" j;
    scales = p_mat "scales" j;
    dim_of_stage = p_mat "dim_of_stage" j;
    scaled_lo = p_mat "scaled_lo" j;
    scaled_hi = p_mat "scaled_hi" j;
    dim_lo = p_ints "dim_lo" j;
    dim_hi = p_ints "dim_hi" j;
    expansions = p_pair_mat "expansions" j;
    edges = Array.of_list (List.map edge_of_json (p_list "edges" j));
  }

let of_json j =
  match
    let v = p_int "version" j in
    if v <> version then fail "unsupported plan IR version %d (expected %d)" v version;
    {
      version = v;
      pipeline = p_string "pipeline" j;
      n_stages = p_int "n_stages" j;
      groups = Array.of_list (List.map group_of_json (p_list "groups" j));
      liveouts =
        List.map
          (fun s ->
            match Json.to_string_opt s with
            | Some s -> s
            | None -> fail "liveouts: expected strings")
          (p_list "liveouts" j);
      working_set_bytes = p_int "working_set_bytes" j;
      scratch_bytes_per_worker = p_int "scratch_bytes_per_worker" j;
    }
  with
  | t -> Ok t
  | exception Parse msg -> Error ("plan IR: " ^ msg)

let digest t = Digest.to_hex (Digest.string (Json.to_string (to_json t)))

(* The kernel digest keys compiled shared objects, so it must change
   whenever either the plan content or the extern ABI the emitter
   produces changes — hence the ABI-version salt. *)
let kernel_abi_version = 1

let kernel_digest t =
  Digest.to_hex
    (Digest.string (Printf.sprintf "pmdp-kernel-abi-%d:%s" kernel_abi_version (digest t)))

(* On-disk envelope: the IR plus the digest it was written with, so a
   reader can detect both tampering (recomputed digest differs) and
   drift (digest differs from a freshly lowered plan).  The kernel
   digest rides along so cache tooling can map a plan envelope to its
   compiled-kernel artifact without re-deriving the salt. *)
let write path t =
  Json.to_file path
    (Json.Obj
       [
         ("schema_version", Json.Int 1);
         ("digest", Json.String (digest t));
         ("kernel_digest", Json.String (kernel_digest t));
         ("plan", to_json t);
       ])

let read path =
  match Json.of_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok j -> (
      match (Json.member "digest" j, Json.member "plan" j) with
      | Some d, Some pj -> (
          match (Json.to_string_opt d, of_json pj) with
          | Some d, Ok ir -> Ok (ir, d)
          | None, _ -> Error (path ^ ": digest field is not a string")
          | _, Error e -> Error (Printf.sprintf "%s: %s" path e))
      | _ -> Error (path ^ ": expected an object with \"digest\" and \"plan\" fields"))

let n_groups t = Array.length t.groups
let total_tiles t = Array.fold_left (fun acc g -> acc + g.n_tiles) 0 t.groups

let pp ppf t =
  Format.fprintf ppf "@[<v>plan IR for %s: %d groups, %d tiles, digest %s@," t.pipeline
    (n_groups t) (total_tiles t) (String.sub (digest t) 0 12);
  Array.iteri
    (fun i g ->
      Format.fprintf ppf "  group %d: {%s} tile=[%s] tiles=%d scratch=%dB@," i
        (String.concat "," (Array.to_list (Array.map (fun m -> m.name) g.members)))
        (String.concat "x" (Array.to_list (Array.map string_of_int g.tile)))
        g.n_tiles (arena_bytes g))
    t.groups;
  Format.fprintf ppf "@]"

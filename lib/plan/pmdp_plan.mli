(** Serializable plan IR: the lowered form of a schedule, as data.

    {!Pmdp_exec.Tiled_exec} used to lower a
    {!Pmdp_core.Schedule_spec.t} straight into compiled OCaml closures,
    which made a "plan" opaque — impossible to persist, ship across
    machines, or audit after lowering.  This module is the missing
    middle layer: everything the executor derives from a schedule
    {e except} the closures — fused groups in execution order, member
    order, clamped tile sizes, the scaling/alignment tables, per-member
    overlap expansions and scratch extents, buffer extents, and the
    estimated working-set/scratch bytes — captured as plain data with a
    stable JSON codec and a content digest.

    Lowering is now [of_spec] (schedule → IR, all the analysis) followed
    by [Pmdp_exec.Tiled_exec.instantiate] (IR → closures, cheap), so a
    plan can be serialized between the two steps, verified by the
    whole-plan static analyzer ([Pmdp_verify.Plan_check]), cached on
    disk, or diffed against a golden corpus — without executing
    anything.

    The codec is deterministic: field order is fixed and
    [of_json (to_json t)] is digest-identical to [t], so {!digest} is a
    content address usable for cache keys and tamper detection. *)

module Group_analysis := Pmdp_analysis.Group_analysis

type member = {
  sid : int;  (** stage id in the pipeline *)
  name : string;  (** stage name (cross-checked at instantiation) *)
  dims : (int * int) array;  (** (lo, extent) per own dimension — the buffer extents *)
  liveout : bool;  (** materialized into a full buffer *)
  direct : bool;  (** live-out whose region is always exactly the tile box *)
  scratch_extents : int array;
      (** per own-dimension extents of the per-tile scratch region
          (also computed for direct members, whose arena is elided) *)
  max_scratch : int;  (** arena elements; 0 for direct members *)
}

type edge = {
  e_producer : int;  (** index into [members] *)
  e_consumer : int;
  hull : (int * int) array;  (** per-group-dim dependence-offset hull *)
}

type group = {
  members : member array;  (** topological (execution) order *)
  tile : int array;  (** clamped scaled-space tile sizes, one per group dim *)
  tiles_per_dim : int array;
  n_tiles : int;
  n_dims : int;
  scales : int array array;  (** per member per group dim *)
  dim_of_stage : int array array;  (** group dim of each member's own dim *)
  scaled_lo : int array array;
  scaled_hi : int array array;
  dim_lo : int array;  (** group-dim hull over members *)
  dim_hi : int array;
  expansions : (int * int) array array;  (** overlap expansion per member per group dim *)
  edges : edge array;
}

type t = {
  version : int;  (** codec version, currently 1 *)
  pipeline : string;
  n_stages : int;
  groups : group array;
  liveouts : string list;  (** names of all live-out stages, group order *)
  working_set_bytes : int;  (** full (live-out) buffer bytes, no recycling *)
  scratch_bytes_per_worker : int;  (** worst group's per-worker arena bytes *)
}

val version : int

val member_scratch_extents :
  Group_analysis.t -> member:int -> tile:int array -> int array
(** Per own-dimension extents of the reusable arena slot covering any
    tile's region of a member — the sizing formula shared by the
    interpreted executor ({!Pmdp_exec.Tiled_exec} delegates here), the
    IR, and the static checker. *)

val of_spec : Pmdp_core.Schedule_spec.t -> t
(** Lower a schedule to the IR: validate, analyze every group, clamp
    tile sizes, and derive all per-member quantities.
    @raise Pmdp_util.Pmdp_error.Error ([Plan_invalid] for failed
    validation or group analysis, [Arity_mismatch] for a wrong-length
    tile-size vector). *)

val of_spec_result : Pmdp_core.Schedule_spec.t -> (t, Pmdp_util.Pmdp_error.t) result
(** {!of_spec} with every raising boundary — including
    [Schedule_spec.validate]'s [Invalid_argument] — converted to a
    typed error. *)

val retile : Pmdp_dsl.Pipeline.t -> t -> int array array -> t
(** Same grouping, new tile sizes (one array per group, clamped to the
    group's scaled extents).  Everything tile-derived — tiles_per_dim,
    n_tiles, member scratch extents, arena sizes — is recomputed with
    the formulas lowering uses; grouping, liveouts and the working set
    are tile-independent and carried over.  The result is a fresh IR
    with a fresh digest that must pass the same admission gate as any
    other plan (the tile search and the service's online retuner build
    candidates this way).
    @raise Pmdp_util.Pmdp_error.Error ([Arity_mismatch] on a
    wrong-length outer or inner array, [Plan_invalid] on tile sizes
    < 1 or an IR that does not fit the pipeline). *)

val retile_result :
  Pmdp_dsl.Pipeline.t -> t -> int array array -> (t, Pmdp_util.Pmdp_error.t) result
(** {!retile} with raises converted to typed errors. *)

val group_analysis : Pmdp_dsl.Pipeline.t -> group -> Group_analysis.t
(** Reconstruct the analysis record an IR group denotes, against the
    given pipeline (edge offset lists collapse to their hulls).  This
    is the instantiation-time bridge back into the executor's world.
    @raise Pmdp_util.Pmdp_error.Error ([Plan_invalid]) when the group
    does not fit the pipeline: stage id out of range, stage name or
    buffer extents differing from the pipeline's (a stale or tampered
    plan), or internally inconsistent table dimensions. *)

val to_json : t -> Pmdp_report.Json.t
(** Deterministic: equal IRs produce byte-identical compact JSON. *)

val of_json : Pmdp_report.Json.t -> (t, string) result

val digest : t -> string
(** Hex content digest of the compact {!to_json} rendering. *)

val kernel_abi_version : int
(** Version of the native-kernel extern ABI
    ({!Pmdp_codegen.C_emit.emit_kernels} tracks it); salted into
    {!kernel_digest}. *)

val kernel_digest : t -> string
(** Content address of the plan's compiled native kernel: {!digest}
    salted with {!kernel_abi_version}, so an emitter-ABI change
    re-keys every cached shared object instead of loading stale ones
    with the wrong signature.  The key of {!Pmdp_kernel.Kernel_cache}
    entries. *)

val write : string -> t -> unit
(** Write [{ "schema_version"; "digest"; "kernel_digest"; "plan" }]
    (pretty JSON) to a file — the on-disk format of the golden-plan
    corpus and [pmdp check --plan-out].  {!read} ignores the kernel
    digest (it is derivable); it is recorded for cache tooling. *)

val read : string -> (t * string, string) result
(** Parse a {!write}-format file into the IR and the digest it
    {e claims} (not necessarily {!digest} of the parsed IR — callers
    must compare the two to detect tampering). *)

val n_groups : t -> int
val total_tiles : t -> int
val pp : Format.formatter -> t -> unit

(* Persistent domain pool.

   Domains are spawned once at [create] and parked on a condition
   variable between calls; each [parallel_for] publishes one job (an
   epoch-stamped closure) that every worker — including the calling
   domain, which acts as worker 0 — executes cooperatively.  Work is
   claimed either statically (contiguous per-worker blocks, OpenMP
   schedule(static)) or dynamically through an atomic counter, with an
   optional chunk size so the counter is not hammered once per index.

   Exceptions raised by a job body are captured inside the job closure
   and re-raised in the caller; they never take a domain down.  A
   worker domain can still die — in testing through the job hook
   (fault injection), in principle through a runtime error — in which
   case the worker quarantines itself: it records the crash, keeps the
   epoch accounting correct so the caller never hangs, and exits.  The
   caller gets a typed [Pmdp_error.Worker_crash] (tiles claimed by the
   dead worker may not have run), and the next dispatch heals the pool
   by joining and respawning dead domains. *)

module Pmdp_error = Pmdp_util.Pmdp_error
module Trace = Pmdp_trace.Trace

type sched = Static | Dynamic | Chunked of int

type t = {
  workers : int;
  mutable domains : unit Domain.t array;
  alive : bool array;  (* per spawned domain; protected by [lock] *)
  lock : Mutex.t;  (* protects epoch/job/unfinished/stop/alive/crash *)
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable epoch : int;
  mutable job : (int -> unit) option;  (* worker id -> unit; captures its own errors *)
  mutable unfinished : int;  (* spawned workers still running the current epoch *)
  mutable stop : bool;
  mutable crash : (int * string) option;  (* worker that died this epoch *)
  mutable hook : (int -> unit) option;  (* fault-injection probe, see [set_job_hook] *)
  dispatch : Mutex.t;  (* held for the duration of the one in-flight parallel_for *)
  occupancy : int Atomic.t;  (* workers that executed >= 1 index in the last call *)
  mutable shut : bool;  (* claimed under [lock]; only the claimant joins *)
}

let worker_loop t w ~epoch0 =
  let my_epoch = ref epoch0 in
  let continue = ref true in
  while !continue do
    (* Park/job spans give each worker domain its own timeline row in
       the trace: how long it waited versus how long it worked. *)
    let t_park = if Trace.on () then Trace.now () else Float.nan in
    Mutex.lock t.lock;
    while (not t.stop) && t.epoch = !my_epoch do
      Condition.wait t.work_ready t.lock
    done;
    if t.stop then begin
      continue := false;
      Mutex.unlock t.lock
    end
    else begin
      my_epoch := t.epoch;
      let job = t.job in
      let hook = t.hook in
      Mutex.unlock t.lock;
      if Trace.on () && not (Float.is_nan t_park) then
        Trace.complete ~cat:"pool" ~args:[ ("worker", Trace.Int w) ] ~name:"park" ~ts:t_park ();
      let t_job = if Trace.on () then Trace.now () else Float.nan in
      let crashed = ref None in
      (try
         (match hook with Some h -> h w | None -> ());
         match job with Some j -> j w | None -> ()
       with e -> crashed := Some (Printexc.to_string e));
      if Trace.on () && not (Float.is_nan t_job) then
        Trace.complete ~cat:"pool"
          ~args:[ ("worker", Trace.Int w); ("epoch", Trace.Int !my_epoch) ]
          ~name:"job" ~ts:t_job ();
      Mutex.lock t.lock;
      (match !crashed with
      | Some detail ->
          t.alive.(w - 1) <- false;
          t.crash <- Some (w, detail);
          continue := false
      | None -> ());
      t.unfinished <- t.unfinished - 1;
      if t.unfinished = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.lock
    end
  done

let create n =
  if n < 1 then invalid_arg "Pool.create: need at least one worker";
  let t =
    {
      workers = n;
      domains = [||];
      alive = Array.make (max 0 (n - 1)) true;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      epoch = 0;
      job = None;
      unfinished = 0;
      stop = false;
      crash = None;
      hook = None;
      dispatch = Mutex.create ();
      occupancy = Atomic.make 0;
      shut = false;
    }
  in
  t.domains <- Array.init (n - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1) ~epoch0:0));
  t

let n_workers t = t.workers
let last_occupancy t = Atomic.get t.occupancy

let alive_workers t =
  Mutex.lock t.lock;
  let n = 1 + Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.alive in
  Mutex.unlock t.lock;
  n

let set_job_hook t h = t.hook <- h

(* Join dead domains (they have exited their loop) and respawn them at
   the current epoch.  Runs with [dispatch] held — or from a caller
   that guarantees no parallel_for is in flight — so [t.epoch] is
   stable and the fresh domain cannot pick up a stale job. *)
let heal t =
  let respawned = ref 0 in
  Array.iteri
    (fun i alive ->
      if not alive then begin
        Domain.join t.domains.(i);
        let epoch0 = t.epoch in
        t.domains.(i) <- Domain.spawn (fun () -> worker_loop t (i + 1) ~epoch0);
        t.alive.(i) <- true;
        incr respawned
      end)
    t.alive;
  !respawned

(* Idempotent, including under concurrent callers: the shut flag is
   claimed under [lock], so exactly one caller joins the domains and
   every other call — second, tenth, or racing — is a no-op. *)
let shutdown t =
  Mutex.lock t.lock;
  if t.shut then Mutex.unlock t.lock
  else begin
    t.shut <- true;
    t.stop <- true;
    Condition.broadcast t.work_ready;
    let domains = t.domains in
    t.domains <- [||];
    Mutex.unlock t.lock;
    Array.iter Domain.join domains
  end

let with_pool n f =
  let t = create n in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_sequential ~n ~init f =
  if n > 0 then begin
    let state = init () in
    for i = 0 to n - 1 do
      f state i
    done
  end

(* The job each worker runs: claim indices under [sched], creating the
   worker's private state lazily on its first claimed index (so idle
   workers allocate nothing and [participated] counts real occupancy). *)
let make_job ~workers ~sched ~n ~init ~f ~error ~participated =
  let first_error e = ignore (Atomic.compare_and_set error None (Some e)) in
  match sched with
  | Static ->
      let chunk = (n + workers - 1) / workers in
      fun w ->
        let lo = w * chunk and hi = min n ((w + 1) * chunk) in
        if lo < hi && Atomic.get error = None then begin
          Atomic.incr participated;
          try
            let state = init () in
            let i = ref lo in
            while !i < hi && Atomic.get error = None do
              f state !i;
              incr i
            done
          with e -> first_error e
        end
  | Dynamic | Chunked _ ->
      let chunk =
        match sched with
        | Chunked c when c > 0 -> c
        | Chunked _ -> max 1 (n / (workers * 8))
        | _ -> 1
      in
      let next = Atomic.make 0 in
      fun _w ->
        let state = ref None in
        let continue = ref true in
        while !continue do
          let lo = Atomic.fetch_and_add next chunk in
          if lo >= n || Atomic.get error <> None then continue := false
          else begin
            try
              let st =
                match !state with
                | Some s -> s
                | None ->
                    Atomic.incr participated;
                    let s = init () in
                    state := Some s;
                    s
              in
              for i = lo to min n (lo + chunk) - 1 do
                f st i
              done
            with e ->
              first_error e;
              continue := false
          end
        done

let parallel_for_init ?(sched = Chunked 0) t ~n ~init f =
  if n < 0 then invalid_arg "Pool.parallel_for: negative count";
  if t.shut then Pmdp_error.raise_ (Pmdp_error.Pool_shutdown { context = "Pool.parallel_for" });
  if t.workers = 1 || n <= 1 then begin
    run_sequential ~n ~init f;
    Atomic.set t.occupancy (min n 1);
    if Trace.on () then Trace.gauge "pool.occupancy" (min n 1)
  end
  else if not (Mutex.try_lock t.dispatch) then
    (* A call is already in flight on this pool (nested parallel_for
       from a worker body, or a second user domain): run inline. *)
    run_sequential ~n ~init f
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.dispatch)
      (fun () ->
        ignore (heal t);
        t.crash <- None;
        let error = Atomic.make None in
        let participated = Atomic.make 0 in
        let job = make_job ~workers:t.workers ~sched ~n ~init ~f ~error ~participated in
        Mutex.lock t.lock;
        t.job <- Some job;
        t.unfinished <- Array.length t.domains;
        t.epoch <- t.epoch + 1;
        Condition.broadcast t.work_ready;
        Mutex.unlock t.lock;
        (* The calling domain is worker 0; a hook raise here must not
           kill the caller, so it is recorded like a worker crash. *)
        let t_job = if Trace.on () then Trace.now () else Float.nan in
        (try
           (match t.hook with Some h -> h 0 | None -> ());
           job 0
         with e ->
           Mutex.lock t.lock;
           t.crash <- Some (0, Printexc.to_string e);
           Mutex.unlock t.lock);
        if Trace.on () && not (Float.is_nan t_job) then
          Trace.complete ~cat:"pool"
            ~args:[ ("worker", Trace.Int 0); ("epoch", Trace.Int t.epoch) ]
            ~name:"job" ~ts:t_job ();
        Mutex.lock t.lock;
        while t.unfinished > 0 do
          Condition.wait t.work_done t.lock
        done;
        t.job <- None;
        let crash = t.crash in
        Mutex.unlock t.lock;
        Atomic.set t.occupancy (Atomic.get participated);
        if Trace.on () then Trace.gauge "pool.occupancy" (Atomic.get participated);
        (* A dead worker may have claimed indices it never ran, so a
           crash outranks an ordinary body exception. *)
        match crash with
        | Some (worker, detail) -> Pmdp_error.raise_ (Pmdp_error.Worker_crash { worker; detail })
        | None -> ( match Atomic.get error with Some e -> raise e | None -> ()))

let parallel_for ?sched t ~n f =
  parallel_for_init ?sched t ~n ~init:(fun () -> ()) (fun () i -> f i)

let simulate_makespan ?(sched = Static) ~workers durations =
  if workers < 1 then invalid_arg "Pool.simulate_makespan: workers < 1";
  let n = Array.length durations in
  match sched with
  | Static ->
      (* OpenMP schedule(static): contiguous chunks of ~n/workers. *)
      let makespan = ref 0.0 in
      let chunk = (n + workers - 1) / workers in
      let w = ref 0 in
      while !w * chunk < n do
        let lo = !w * chunk and hi = min n ((!w + 1) * chunk) in
        let sum = ref 0.0 in
        for i = lo to hi - 1 do
          sum := !sum +. durations.(i)
        done;
        if !sum > !makespan then makespan := !sum;
        incr w
      done;
      !makespan
  | Dynamic ->
      (* Self-scheduling: each next tile goes to the earliest-free
         worker (a min-heap would be overkill at these sizes). *)
      let free = Array.make workers 0.0 in
      Array.iter
        (fun d ->
          let best = ref 0 in
          for w = 1 to workers - 1 do
            if free.(w) < free.(!best) then best := w
          done;
          free.(!best) <- free.(!best) +. d)
        durations;
      Array.fold_left Float.max 0.0 free
  | Chunked c ->
      (* Chunked self-scheduling: contiguous chunks of [c] tiles to the
         earliest-free worker ([c <= 0] uses the same auto chunk as
         [parallel_for]). *)
      let c = if c > 0 then c else max 1 (n / (workers * 8)) in
      let free = Array.make workers 0.0 in
      let i = ref 0 in
      while !i < n do
        let hi = min n (!i + c) in
        let best = ref 0 in
        for w = 1 to workers - 1 do
          if free.(w) < free.(!best) then best := w
        done;
        for j = !i to hi - 1 do
          free.(!best) <- free.(!best) +. durations.(j)
        done;
        i := hi
      done;
      Array.fold_left Float.max 0.0 free

module Rng = Pmdp_util.Rng

type action =
  | Crash
  | Kill
  | Alloc_fail
  | Sleep of float
  | Frame_drop
  | Frame_truncate
  | Frame_garbage
  | Frame_delay of float
  | Shard_kill
  | Torn_write
  | Corrupt_write
  | Kernel_fail

type spec = { action : action; at : int }

exception Injected of string

type armed = { mutable pos : int; a : action; fired : bool Atomic.t }

type t = {
  seed : int;
  specs : armed list;
  tiles : int Atomic.t;
  allocs : int Atomic.t;
  jobs : int Atomic.t;
  frames : int Atomic.t;
  stores : int Atomic.t;
  batches : int Atomic.t;
  kernels : int Atomic.t;
  mutable resolved : bool;
}

let create ?(seed = 0) specs =
  {
    seed;
    specs = List.map (fun s -> { pos = s.at; a = s.action; fired = Atomic.make false }) specs;
    tiles = Atomic.make 0;
    allocs = Atomic.make 0;
    jobs = Atomic.make 0;
    frames = Atomic.make 0;
    stores = Atomic.make 0;
    batches = Atomic.make 0;
    kernels = Atomic.make 0;
    resolved = false;
  }

let spec_to_string s =
  let pos = if s.at < 0 then "r" else string_of_int s.at in
  match s.action with
  | Crash -> "crash@" ^ pos
  | Kill -> "kill@" ^ pos
  | Alloc_fail -> "alloc@" ^ pos
  | Sleep d -> Printf.sprintf "sleep@%s:%g" pos d
  | Frame_drop -> "drop@" ^ pos
  | Frame_truncate -> "truncate@" ^ pos
  | Frame_garbage -> "garbage@" ^ pos
  | Frame_delay d -> Printf.sprintf "fdelay@%s:%g" pos d
  | Shard_kill -> "shardkill@" ^ pos
  | Torn_write -> "torn@" ^ pos
  | Corrupt_write -> "corrupt@" ^ pos
  | Kernel_fail -> "kernel@" ^ pos

let parse s =
  let parse_pos p =
    if p = "r" then Ok (-1)
    else match int_of_string_opt p with
      | Some k when k >= 0 -> Ok k
      | _ -> Error (Printf.sprintf "bad position %S (a tick number or 'r')" p)
  in
  let parse_one item =
    match String.index_opt item '@' with
    | None -> Error (Printf.sprintf "bad injection %S (want ACTION@POS)" item)
    | Some i -> (
        let act = String.sub item 0 i in
        let rest = String.sub item (i + 1) (String.length item - i - 1) in
        let timed mk =
          match String.index_opt rest ':' with
          | None -> Error (Printf.sprintf "bad injection %S (want %s@POS:SECONDS)" item act)
          | Some j -> (
              let pos = String.sub rest 0 j in
              let dur = String.sub rest (j + 1) (String.length rest - j - 1) in
              match (parse_pos pos, float_of_string_opt dur) with
              | Ok at, Some d when d >= 0.0 -> Ok { action = mk d; at }
              | (Error _ as e), _ -> e
              | _, _ -> Error (Printf.sprintf "bad %s duration %S" act dur))
        in
        let plain a = Result.map (fun at -> { action = a; at }) (parse_pos rest) in
        match act with
        | "crash" -> plain Crash
        | "kill" -> plain Kill
        | "alloc" -> plain Alloc_fail
        | "sleep" -> timed (fun d -> Sleep d)
        | "drop" -> plain Frame_drop
        | "truncate" -> plain Frame_truncate
        | "garbage" -> plain Frame_garbage
        | "fdelay" -> timed (fun d -> Frame_delay d)
        | "shardkill" -> plain Shard_kill
        | "torn" -> plain Torn_write
        | "corrupt" -> plain Corrupt_write
        | "kernel" -> plain Kernel_fail
        | _ ->
            Error
              (Printf.sprintf
                 "unknown injection action %S \
                  (crash|kill|alloc|sleep|drop|truncate|garbage|fdelay|shardkill|torn|corrupt|kernel)"
                 act))
  in
  let items = String.split_on_char ',' (String.trim s) in
  List.fold_left
    (fun acc item ->
      match (acc, parse_one (String.trim item)) with
      | Error _, _ -> acc
      | _, Error e -> Error e
      | Ok specs, Ok sp -> Ok (specs @ [ sp ]))
    (Ok []) items

let resolve t ~n =
  if (not t.resolved) && n > 0 then begin
    t.resolved <- true;
    let rng = Rng.create t.seed in
    List.iter (fun a -> if a.pos < 0 then a.pos <- Rng.int rng n) t.specs
  end

(* Fire every unfired spec sitting on this tick.  The counter hands
   each caller a unique tick, so the fired flag is uncontended; it
   still guards against re-firing when a fallback attempt replays the
   same site with a fresh counter value. *)
let hit t counter site_matches describe =
  let i = Atomic.fetch_and_add counter 1 in
  List.iter
    (fun a ->
      if a.pos = i && site_matches a.a && not (Atomic.exchange a.fired true) then
        match a.a with
        | Sleep d -> Unix.sleepf d
        | _ -> raise (Injected (describe a.a i)))
    t.specs

let tile_tick t =
  hit t t.tiles
    (function Crash | Sleep _ -> true | _ -> false)
    (fun _ i -> Printf.sprintf "injected crash at tile tick %d" i)

let alloc_tick t =
  hit t t.allocs
    (function Alloc_fail -> true | _ -> false)
    (fun _ i -> Printf.sprintf "simulated allocation failure at arena %d" i)

let job_tick t ~worker =
  hit t t.jobs
    (function Kill -> true | _ -> false)
    (fun _ i -> Printf.sprintf "injected kill of worker %d at job start %d" worker i)

let shard_tick t =
  hit t t.batches
    (function Shard_kill -> true | _ -> false)
    (fun _ i -> Printf.sprintf "injected shard dispatcher kill at batch %d" i)

let kernel_tick t =
  hit t t.kernels
    (function Kernel_fail -> true | _ -> false)
    (fun _ i -> Printf.sprintf "injected kernel compile failure at compile %d" i)

(* Like [hit], but for sites where the caller enacts the fault itself
   (mangling a frame, tearing a write): return a directive instead of
   raising.  The first unfired matching spec on this tick wins. *)
let directive t counter pick =
  let i = Atomic.fetch_and_add counter 1 in
  List.fold_left
    (fun acc a ->
      match acc with
      | Some _ -> acc
      | None ->
          if a.pos = i && pick a.a <> None && not (Atomic.exchange a.fired true) then pick a.a
          else None)
    None t.specs

let frame_tick t =
  match
    directive t t.frames (function
      | Frame_drop -> Some `Drop
      | Frame_truncate -> Some `Truncate
      | Frame_garbage -> Some `Garbage
      | Frame_delay d -> Some (`Delay d)
      | _ -> None)
  with
  | Some d -> d
  | None -> `Pass

let store_tick t =
  match
    directive t t.stores (function
      | Torn_write -> Some `Torn
      | Corrupt_write -> Some `Corrupt
      | _ -> None)
  with
  | Some d -> d
  | None -> `Pass

type token = bool Atomic.t

let new_token () = Atomic.make false
let cancel tk = Atomic.set tk true
let is_cancelled tk = Atomic.get tk

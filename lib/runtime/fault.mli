(** Deterministic, seed-driven fault injection.

    The resilience machinery (pool self-heal, the fallback chain in
    [Pmdp_exec.Resilient]) is only trustworthy if every recovery path
    actually runs under test.  A {!t} carries a list of injection
    {!spec}s, each firing {e exactly once} when a site counter reaches
    the spec's position:

    - {!tile_tick} is called at the start of every executed tile
      (fires [Crash] and [Sleep] specs);
    - {!alloc_tick} is called before every scratch-arena allocation
      (fires [Alloc_fail] specs);
    - {!job_tick} is called by every pool worker as it starts a job
      (fires [Kill] specs — see [Pool.set_job_hook], where a raise
      escapes the job's own error capture and takes the worker domain
      down).

    Counters are global atomics, so the k-th tick is a deterministic
    event even under a parallel pool (which worker hits it is not, and
    does not need to be).  Positions written as [r] in {!parse} are
    resolved from the seed by {!resolve} once the total tile count is
    known, making randomized placement reproducible:
    [pmdp run --inject crash@r --seed 7] always crashes the same
    tick. *)

type action =
  | Crash  (** raise from inside a tile body *)
  | Kill  (** raise from the pool's job hook: the worker domain dies *)
  | Alloc_fail  (** simulated scratch-arena allocation failure *)
  | Sleep of float  (** slow tile: sleep this many seconds *)
  | Frame_drop  (** server drops a reply frame and closes the connection *)
  | Frame_truncate  (** server writes a short frame, then closes *)
  | Frame_garbage  (** server replies with a well-framed non-JSON payload *)
  | Frame_delay of float  (** server stalls this many seconds before replying *)
  | Shard_kill  (** raise inside a shard dispatcher thread: the shard dies *)
  | Torn_write  (** disk cache persists only a prefix of the envelope *)
  | Corrupt_write  (** disk cache persists an envelope with a wrong digest *)
  | Kernel_fail  (** native kernel compile fails (toolchain invocation seeded to die) *)

type spec = { action : action; at : int  (** 0-based tick; [-1] = seeded random *) }

exception Injected of string
(** Raised by a firing [Crash], [Kill], or [Alloc_fail] spec, carrying
    a description of what fired and where. *)

type t

val create : ?seed:int -> spec list -> t
(** [seed] (default 0) drives {!resolve} for [at = -1] specs. *)

val parse : string -> (spec list, string) result
(** Comma-separated spec syntax: [crash@K], [kill@K], [alloc@K],
    [sleep@K:SECONDS], [drop@K], [truncate@K], [garbage@K],
    [fdelay@K:SECONDS], [shardkill@K], [torn@K], [corrupt@K],
    [kernel@K], with [K] a tick number or [r] (seeded random).  E.g.
    ["crash@12,sleep@0:0.05"] or ["drop@3,shardkill@2,torn@0"]. *)

val spec_to_string : spec -> string

val resolve : t -> n:int -> unit
(** Fix every [at = -1] position to a seed-determined tick in
    [\[0, n)].  Idempotent; unresolved random specs never fire. *)

val tile_tick : t -> unit
val alloc_tick : t -> unit
val job_tick : t -> worker:int -> unit

val shard_tick : t -> unit
(** Called by a shard dispatcher at the start of every batch
    execution; fires [Shard_kill] specs by raising {!Injected}, which
    escapes the dispatcher loop and kills the thread (the shard
    supervisor is expected to notice and respawn). *)

val kernel_tick : t -> unit
(** Called by the native backend's toolchain driver before every
    kernel compile; fires [Kernel_fail] specs by raising {!Injected},
    which the backend folds into a typed [Kernel_unavailable] — the
    seeded way to prove the interpreter fallback path end to end
    without uninstalling the compiler. *)

val frame_tick : t -> [ `Pass | `Drop | `Truncate | `Garbage | `Delay of float ]
(** Called by the server before writing each reply frame.  Unlike the
    raising ticks, the caller enacts the fault (the fault layer cannot
    mangle a socket it does not own); [`Pass] means write normally.
    At most one spec fires per tick. *)

val store_tick : t -> [ `Pass | `Torn | `Corrupt ]
(** Called by the disk cache before persisting each envelope; the
    cache enacts [`Torn] (write only a prefix) or [`Corrupt] (persist
    a wrong digest) itself. *)

(** Cooperative cancellation: a token shared between a watchdog and
    the workers, checked at tile granularity. *)

type token

val new_token : unit -> token
val cancel : token -> unit
val is_cancelled : token -> bool

(** Persistent multicore work distribution over OCaml 5 domains.

    The tile-space loops of overlapped tiling are embarrassingly
    parallel (no inter-tile dependences, paper §2.1).  A pool spawns
    its worker domains once at {!create} and parks them on a
    condition variable between calls, so repeated [parallel_for]s —
    one per group per pipeline run — pay a wakeup, not a
    fork/join.  Work is claimed per call under a {!sched} policy:
    OpenMP-style static blocks, per-index dynamic self-scheduling
    through an atomic counter, or chunked-dynamic (the counter is
    claimed [chunk] indices at a time).

    Since real speedups require real cores — which the evaluation
    host may not have — {!simulate_makespan} reconstructs the
    multicore execution time from measured per-tile durations under
    the same three policies.  This is the multicore-hardware
    substitution documented in DESIGN.md. *)

type t

type sched =
  | Static  (** contiguous per-worker blocks, OpenMP [schedule(static)] *)
  | Dynamic  (** atomic self-scheduling, one index per claim *)
  | Chunked of int
      (** atomic self-scheduling, [chunk] indices per claim;
          [chunk <= 0] picks [max 1 (n / (8 * workers))] *)

val create : int -> t
(** [create n] is a pool of [n]-way parallelism ([n >= 1]): the
    calling domain plus [n - 1] worker domains spawned immediately
    and parked until work arrives.  Call {!shutdown} (or use
    {!with_pool}) when done; OCaml caps the number of live domains,
    so leaking pools eventually makes [create] fail.
    @raise Invalid_argument if [n < 1]. *)

val shutdown : t -> unit
(** Wake and join the pool's domains.  Idempotent — a second call,
    even one racing the first from another domain, is a no-op (never
    a typed error).  Subsequent [parallel_for] calls on the pool
    raise the typed [Pmdp_util.Pmdp_error.Error (Pool_shutdown _)]. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool n f] runs [f] with a fresh pool, shutting it down on
    return or exception. *)

val n_workers : t -> int

val last_occupancy : t -> int
(** Number of workers that executed at least one index during the
    pool's most recent (non-nested) [parallel_for] — the executor's
    occupancy counter.  0 before any call. *)

val alive_workers : t -> int
(** Workers currently able to claim work: the calling domain plus the
    spawned domains that have not crashed.  [n_workers] unless a
    worker died and the pool has not yet healed. *)

val heal : t -> int
(** Join and respawn any crashed worker domains; returns how many were
    respawned.  [parallel_for] heals automatically at dispatch, so a
    pool that lost a worker serves the next call at full width; call
    this directly only to re-arm a pool eagerly.  Must not race a
    [parallel_for] in flight. *)

val set_job_hook : t -> (int -> unit) option -> unit
(** Fault-injection probe: the hook is invoked with the worker id at
    the start of every job execution, {e outside} the job's own error
    capture — so a raising hook takes the worker domain down (the
    caller, worker 0, is shielded and records the crash instead).
    The epoch accounting stays correct: the dispatching call raises a
    typed [Worker_crash] rather than hanging, and the next dispatch
    respawns the dead domain.  Used by the fault harness to prove the
    crash-recovery path; [None] (the default) costs nothing.  Set only
    while no call is in flight. *)

val parallel_for : ?sched:sched -> t -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n f] runs [f 0 .. f (n-1)], distributing indices
    over the pool's parked workers; the calling domain participates
    as worker 0.  [sched] defaults to [Chunked 0].  Exceptions raised
    by [f] stop further claims and are re-raised in the caller after
    all workers finish.  A nested call on a pool whose [parallel_for]
    is already in flight runs inline sequentially.  If a worker domain
    dies mid-call (see {!set_job_hook}), the call raises the typed
    [Pmdp_util.Pmdp_error.Error (Worker_crash _)] — indices the dead
    worker claimed may not have run — and the next call self-heals. *)

val parallel_for_init :
  ?sched:sched -> t -> n:int -> init:(unit -> 'a) -> ('a -> int -> unit) -> unit
(** Like {!parallel_for} but each participating worker lazily creates
    private state with [init] on its first claimed index (e.g. a
    scratch arena) that is passed to every index it executes. *)

val simulate_makespan : ?sched:sched -> workers:int -> float array -> float
(** [simulate_makespan ~workers durations] is the simulated parallel
    wall-clock of executing tiles with the given measured durations
    on [workers] cores.  [Static] (default) splits the index range
    into [workers] contiguous chunks; [Dynamic] assigns each next
    tile — and [Chunked c] each next run of [c] tiles — to the
    earliest-free worker.
    @raise Invalid_argument if [workers < 1]. *)

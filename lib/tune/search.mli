(** Seeded, budgeted local search over per-group tile sizes.

    A move doubles or halves one dimension of one group's tile;
    candidates are deduplicated, scored by a caller-supplied evaluator
    (model cost or measured wall time), and accepted only when they
    improve on the best score — plain hill climbing, deterministic for
    a given seed/budget/evaluator.  Tile clamping and legality live in
    the evaluator's world ({!Pmdp_core.Schedule_spec.validate},
    {!Pmdp_plan.retile}, the plan admission gate), not here. *)

type stats = {
  evaluated : int;  (** distinct candidates scored, initial point included *)
  accepted : int;  (** moves that improved the best score *)
  rejected : int;  (** candidates the evaluator refused *)
}

type result = { tiles : int array array; score : float; stats : stats }

val run :
  seed:int ->
  budget:int ->
  init:int array array ->
  evaluate:(int array array -> float option) ->
  result
(** [budget] caps evaluator calls (the initial point counts).  The
    evaluator gets a private copy of the candidate; [None] (or a
    non-finite score) rejects it.
    @raise Invalid_argument if [budget < 1] or the initial point does
    not evaluate. *)

val tiles_of_spec : Pmdp_core.Schedule_spec.t -> int array array

val spec_with_tiles :
  Pmdp_core.Schedule_spec.t -> int array array -> Pmdp_core.Schedule_spec.t
(** Same grouping, new tile arrays (not validated). *)

val tune_spec :
  seed:int ->
  budget:int ->
  evaluate:(Pmdp_core.Schedule_spec.t -> float option) ->
  Pmdp_core.Schedule_spec.t ->
  Pmdp_core.Schedule_spec.t * result
(** Search from a schedule's own tiles; every candidate passes
    [Schedule_spec.validate] before the evaluator sees it. *)

val model_evaluate : Pmdp_core.Cost_model.config -> Pmdp_core.Schedule_spec.t -> float option
(** Sum of predicted per-group costs under [config] — deterministic
    and execution-free (calibrated configs predict seconds). *)

val tune_ir :
  seed:int ->
  budget:int ->
  config:Pmdp_core.Cost_model.config ->
  pipeline:Pmdp_dsl.Pipeline.t ->
  Pmdp_plan.t ->
  int array array * result
(** Model-guided search over an already-lowered plan's tiles, scoring
    candidates straight from the IR's stage lists; the caller
    [Pmdp_plan.retile]s the winning matrix and re-admits it. *)

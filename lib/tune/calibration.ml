module Machine = Pmdp_machine.Machine
module Cost_model = Pmdp_core.Cost_model
module Json = Pmdp_report.Json

(* One calibration sample: what the analytic model predicted for a
   (group, tile) choice and what a sequential timed run measured, as
   exported per case by the schema-v3 bench JSON (lib/bench). *)
type sample = {
  s_app : string;
  s_scheduler : string;
  s_group : int;
  s_features : Cost_model.features;
  s_predicted : float;
  s_wall : float;  (* median per-group wall, seconds *)
}

type t = {
  machine : string;
  weights : Cost_model.calibration;
  load_cost_scale : float;
  n_samples : int;
  mean_rel_err : float;
  analytic_mean_rel_err : float;
  scaled_analytic_mean_rel_err : float;
  source : string;
}

let schema_version = 1

(* ------------------------------------------------------------------ *)
(* Fitting *)

let tiny = 1e-12
let rel_err pred y = Float.abs (pred -. y) /. Float.max (Float.abs y) tiny

let mean_rel_err_of f samples =
  let n = List.length samples in
  List.fold_left (fun acc s -> acc +. rel_err (f s) s.s_wall) 0.0 samples
  /. float_of_int (max 1 n)

let row s =
  let f = s.s_features in
  [|
    1.0;
    f.Cost_model.f_mem;
    f.Cost_model.f_idle;
    f.Cost_model.f_overlap;
    f.Cost_model.f_mismatch;
  |]

let cal_of_vector (machine : Machine.t) x =
  {
    Cost_model.cal_machine = machine.Machine.name;
    c0 = x.(0);
    c_mem = x.(1);
    c_idle = x.(2);
    c_overlap = x.(3);
    c_mismatch = x.(4);
  }

let fit ~(machine : Machine.t) ?(source = "") samples =
  match samples with
  | [] -> Error "calibration: no samples to fit"
  | _ ->
      let n = List.length samples in
      let rows = Array.of_list (List.map row samples) in
      let ys = Array.of_list (List.map (fun s -> s.s_wall) samples) in
      (* Weight 1/y²: the normal equations then minimize mean squared
         *relative* error, so microsecond groups count as much as
         millisecond ones. *)
      let weights =
        Array.map (fun y -> 1.0 /. Float.max (y *. y) (tiny *. tiny)) ys
      in
      let analytic s = Cost_model.analytic_of_features machine s.s_features in
      (* Best single scale for the analytic model under the same loss:
         the strongest "analytic defaults" baseline (raw analytic
         costs are dimensionless, so comparing them to seconds without
         a scale would be a strawman).  The fitted 5-parameter model
         nests this 1-parameter family. *)
      let scale =
        let num = ref 0.0 and den = ref 0.0 in
        List.iteri
          (fun i s ->
            let a = analytic s in
            num := !num +. (weights.(i) *. a *. ys.(i));
            den := !den +. (weights.(i) *. a *. a))
          samples;
        if !den > 0.0 then !num /. !den else 1.0
      in
      let scaled_cal =
        {
          Cost_model.cal_machine = machine.Machine.name;
          c0 = 0.0;
          c_mem = scale *. machine.Machine.w1;
          c_idle = scale *. machine.Machine.w2;
          c_overlap = scale *. machine.Machine.w3;
          c_mismatch = scale *. machine.Machine.w4;
        }
      in
      let err_of cal =
        mean_rel_err_of
          (fun s -> Cost_model.calibrated_of_features cal s.s_features)
          samples
      in
      let scaled_err = err_of scaled_cal in
      (* The free fit minimizes weighted squared error over a superset
         of the scaled family; on the (different) mean-relative-error
         metric it could in principle come out behind, so keep
         whichever candidate reads better — the artifact then never
         regresses the baseline it is asserted against. *)
      let weights_cal, fitted_err =
        match Lstsq.fit ~rows ~ys ~weights with
        | None -> (scaled_cal, scaled_err)
        | Some x ->
            let cal = cal_of_vector machine x in
            let e = err_of cal in
            if e <= scaled_err then (cal, e) else (scaled_cal, scaled_err)
      in
      Ok
        {
          machine = machine.Machine.name;
          weights = weights_cal;
          load_cost_scale =
            (if machine.Machine.w1 = 0.0 then 0.0
             else weights_cal.Cost_model.c_mem /. machine.Machine.w1);
          n_samples = n;
          mean_rel_err = fitted_err;
          analytic_mean_rel_err = mean_rel_err_of analytic samples;
          scaled_analytic_mean_rel_err = scaled_err;
          source;
        }

let evaluate cal samples =
  mean_rel_err_of
    (fun s -> Cost_model.calibrated_of_features cal.weights s.s_features)
    samples

(* ------------------------------------------------------------------ *)
(* Bench-file corpus *)

let mem name j = Json.member name j
let fnum name j = Option.bind (mem name j) Json.to_float_opt

let samples_of_bench path =
  match Json.of_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok doc -> (
      match Option.bind (mem "schema_version" doc) Json.to_int_opt with
      | Some 3 -> (
          match Option.bind (mem "machine" doc) Json.to_string_opt with
          | None -> Error (path ^ ": missing machine name")
          | Some machine ->
              let cases =
                Option.bind (mem "cases" doc) Json.to_list_opt
                |> Option.value ~default:[]
              in
              (* Each schedule's rows repeat across its worker-count
                 cases; keep one copy per (app, scheduler, group) so
                 no schedule is overweighted. *)
              let seen = Hashtbl.create 64 in
              let samples =
                List.concat_map
                  (fun case ->
                    let str name =
                      Option.bind (mem name case) Json.to_string_opt
                      |> Option.value ~default:""
                    in
                    let app = str "app" and scheduler = str "scheduler" in
                    let valid =
                      Option.bind (mem "valid" case) Json.to_bool_opt
                      |> Option.value ~default:false
                    in
                    if not valid then []
                    else
                      Option.bind (mem "group_costs" case) Json.to_list_opt
                      |> Option.value ~default:[]
                      |> List.filter_map (fun gc ->
                             match
                               ( Option.bind (mem "group" gc) Json.to_int_opt,
                                 fnum "f_mem" gc,
                                 fnum "f_idle" gc,
                                 fnum "f_overlap" gc,
                                 fnum "f_mismatch" gc,
                                 fnum "predicted_cost" gc,
                                 fnum "median_wall_seconds" gc )
                             with
                             | ( Some g,
                                 Some f_mem,
                                 Some f_idle,
                                 Some f_overlap,
                                 Some f_mismatch,
                                 Some predicted,
                                 Some wall )
                               when wall > 0.0
                                    && not (Hashtbl.mem seen (app, scheduler, g))
                               ->
                                 Hashtbl.add seen (app, scheduler, g) ();
                                 Some
                                   {
                                     s_app = app;
                                     s_scheduler = scheduler;
                                     s_group = g;
                                     s_features =
                                       {
                                         Cost_model.f_mem;
                                         f_idle;
                                         f_overlap;
                                         f_mismatch;
                                       };
                                     s_predicted = predicted;
                                     s_wall = wall;
                                   }
                             | _ -> None))
                  cases
              in
              if samples = [] then
                Error (path ^ ": no usable group_costs rows (schema v3 but empty?)")
              else Ok (machine, samples))
      | Some v ->
          Error
            (Printf.sprintf
               "%s: bench schema_version %d; calibration needs v3 (re-run `pmdp bench`)"
               path v)
      | None -> Error (path ^ ": missing schema_version"))

(* ------------------------------------------------------------------ *)
(* Artifact: versioned, digest-stamped CALIB_<machine>.json.  The
   digest covers the payload's canonical compact serialization, so a
   reader detects tampering the same way the plan envelope does. *)

let payload_json t =
  let w = t.weights in
  Json.Obj
    [
      ("machine", Json.String t.machine);
      ("source", Json.String t.source);
      ("n_samples", Json.Int t.n_samples);
      ( "weights",
        Json.Obj
          [
            ("c0", Json.Float w.Cost_model.c0);
            ("c_mem", Json.Float w.Cost_model.c_mem);
            ("c_idle", Json.Float w.Cost_model.c_idle);
            ("c_overlap", Json.Float w.Cost_model.c_overlap);
            ("c_mismatch", Json.Float w.Cost_model.c_mismatch);
          ] );
      ("load_cost_scale", Json.Float t.load_cost_scale);
      ("mean_rel_err", Json.Float t.mean_rel_err);
      ("analytic_mean_rel_err", Json.Float t.analytic_mean_rel_err);
      ("scaled_analytic_mean_rel_err", Json.Float t.scaled_analytic_mean_rel_err);
    ]

let digest_of_payload j = Digest.to_hex (Digest.string (Json.to_string j))

let to_json t =
  let payload = payload_json t in
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("digest", Json.String (digest_of_payload payload));
      ("payload", payload);
    ]

let write path t = Json.to_file path (to_json t)

let of_json path j =
  match Option.bind (mem "schema_version" j) Json.to_int_opt with
  | Some v when v = schema_version -> (
      match (mem "digest" j, mem "payload" j) with
      | Some d, Some payload -> (
          let stored = Json.to_string_opt d |> Option.value ~default:"" in
          let recomputed = digest_of_payload payload in
          if stored <> recomputed then
            Error
              (Printf.sprintf "%s: digest mismatch (stored %s, content %s) — tampered?"
                 path
                 (String.sub stored 0 (min 12 (String.length stored)))
                 (String.sub recomputed 0 12))
          else
            let machine =
              Option.bind (mem "machine" payload) Json.to_string_opt
            in
            let wnum name =
              Option.bind (mem "weights" payload) (fnum name)
            in
            match
              ( machine,
                wnum "c0",
                wnum "c_mem",
                wnum "c_idle",
                wnum "c_overlap",
                wnum "c_mismatch" )
            with
            | Some machine, Some c0, Some c_mem, Some c_idle, Some c_overlap, Some c_mismatch
              ->
                Ok
                  {
                    machine;
                    weights =
                      {
                        Cost_model.cal_machine = machine;
                        c0;
                        c_mem;
                        c_idle;
                        c_overlap;
                        c_mismatch;
                      };
                    load_cost_scale =
                      fnum "load_cost_scale" payload |> Option.value ~default:0.0;
                    n_samples =
                      Option.bind (mem "n_samples" payload) Json.to_int_opt
                      |> Option.value ~default:0;
                    mean_rel_err =
                      fnum "mean_rel_err" payload |> Option.value ~default:Float.nan;
                    analytic_mean_rel_err =
                      fnum "analytic_mean_rel_err" payload
                      |> Option.value ~default:Float.nan;
                    scaled_analytic_mean_rel_err =
                      fnum "scaled_analytic_mean_rel_err" payload
                      |> Option.value ~default:Float.nan;
                    source =
                      Option.bind (mem "source" payload) Json.to_string_opt
                      |> Option.value ~default:"";
                  }
            | _ -> Error (path ^ ": payload missing machine or weight fields"))
      | _ -> Error (path ^ ": expected an object with \"digest\" and \"payload\""))
  | Some v ->
      Error
        (Printf.sprintf "%s: calibration schema_version %d (this build reads v%d)" path v
           schema_version)
  | None -> Error (path ^ ": missing schema_version")

let read path =
  match Json.of_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok j -> of_json path j

(* The `pmdp tune calibrate --check` gate: everything [read] checks
   (schema version, digest, weight fields) plus the machine match —
   without fitting or executing anything. *)
let validate path ~machine =
  match read path with
  | Error _ as e -> e
  | Ok t ->
      if t.machine <> machine then
        Error
          (Printf.sprintf "%s: calibrated for machine %S, expected %S" path t.machine
             machine)
      else if t.n_samples < 1 then Error (path ^ ": zero samples")
      else if not (Float.is_finite t.mean_rel_err) then
        Error (path ^ ": non-finite fit error")
      else Ok t

let default_path machine = Printf.sprintf "CALIB_%s.json" machine

let pp ppf t =
  let w = t.weights in
  Format.fprintf ppf
    "@[<v>calibration for %s (%d samples, source %s)@,\
    \  c0=%.3e  c_mem=%.3e  c_idle=%.3e  c_overlap=%.3e  c_mismatch=%.3e@,\
    \  load_cost_scale=%.3e@,\
    \  mean rel err: calibrated %.3f | analytic (raw) %.3f | analytic (best scale) %.3f@]"
    t.machine t.n_samples
    (if t.source = "" then "-" else String.sub t.source 0 (min 12 (String.length t.source)))
    w.Cost_model.c0 w.Cost_model.c_mem w.Cost_model.c_idle w.Cost_model.c_overlap
    w.Cost_model.c_mismatch t.load_cost_scale t.mean_rel_err t.analytic_mean_rel_err
    t.scaled_analytic_mean_rel_err

module Rng = Pmdp_util.Rng
module Cost_model = Pmdp_core.Cost_model
module Schedule_spec = Pmdp_core.Schedule_spec

(* Seeded, budgeted hill-climb over per-group tile sizes.  A move
   doubles or halves one dimension of one group's tile; candidates the
   evaluator rejects (illegal schedule, failed admission, execution
   error) score [None] and are skipped.  Deterministic for a given
   seed, budget, and evaluator: the only randomness is the move
   stream. *)

type stats = {
  evaluated : int;  (* distinct candidates scored, initial point included *)
  accepted : int;  (* moves that improved the best score *)
  rejected : int;  (* candidates the evaluator refused *)
}

type result = { tiles : int array array; score : float; stats : stats }

let copy_tiles t = Array.map Array.copy t

let signature tiles =
  String.concat ";"
    (Array.to_list
       (Array.map
          (fun row ->
            String.concat "," (Array.to_list (Array.map string_of_int row)))
          tiles))

let run ~seed ~budget ~init ~evaluate =
  if budget < 1 then invalid_arg "Search.run: budget < 1";
  let rng = Rng.create seed in
  let seen = Hashtbl.create 64 in
  let evaluated = ref 0 and accepted = ref 0 and rejected = ref 0 in
  let score tiles =
    Hashtbl.add seen (signature tiles) ();
    incr evaluated;
    match evaluate (copy_tiles tiles) with
    | Some s when Float.is_finite s -> Some s
    | _ ->
        incr rejected;
        None
  in
  let best = ref (copy_tiles init) in
  let best_score =
    match score init with
    | Some s -> ref s
    | None -> invalid_arg "Search.run: the initial point does not evaluate"
  in
  (* Up to [moves_per_eval] proposals per spent evaluation keeps the
     walk from stalling on duplicate/degenerate moves without making
     the budget unbounded. *)
  let proposals = ref 0 in
  let max_proposals = budget * 8 in
  while !evaluated < budget && !proposals < max_proposals do
    incr proposals;
    let ngroups = Array.length !best in
    if ngroups = 0 then proposals := max_proposals
    else begin
      let g = Rng.int rng ngroups in
      let nd = Array.length !best.(g) in
      if nd > 0 then begin
        let d = Rng.int rng nd in
        let t = !best.(g).(d) in
        let t' = if Rng.bool rng then t * 2 else max 1 (t / 2) in
        if t' <> t then begin
          let cand = copy_tiles !best in
          cand.(g).(d) <- t';
          if not (Hashtbl.mem seen (signature cand)) then
            match score cand with
            | Some s when s < !best_score ->
                best := cand;
                best_score := s;
                incr accepted
            | _ -> ()
        end
      end
    end
  done;
  {
    tiles = !best;
    score = !best_score;
    stats = { evaluated = !evaluated; accepted = !accepted; rejected = !rejected };
  }

(* ------------------------------------------------------------------ *)
(* Schedule-spec adapter: tiles <-> Schedule_spec groups, with the
   spec validator as the legality gate before the caller's evaluator
   sees a candidate. *)

let tiles_of_spec (spec : Schedule_spec.t) =
  Array.of_list
    (List.map
       (fun (g : Schedule_spec.group) -> Array.copy g.Schedule_spec.tile_sizes)
       spec.Schedule_spec.groups)

let spec_with_tiles (spec : Schedule_spec.t) tiles =
  let groups =
    List.mapi
      (fun i (g : Schedule_spec.group) ->
        { g with Schedule_spec.tile_sizes = Array.copy tiles.(i) })
      spec.Schedule_spec.groups
  in
  { spec with Schedule_spec.groups }

let tune_spec ~seed ~budget ~evaluate (spec : Schedule_spec.t) =
  let init = tiles_of_spec spec in
  let eval tiles =
    let cand = spec_with_tiles spec tiles in
    match Schedule_spec.validate cand with
    | () -> evaluate cand
    | exception Invalid_argument _ -> None
  in
  let r = run ~seed ~budget ~init ~evaluate:eval in
  (spec_with_tiles spec r.tiles, r)

(* Model-cost evaluator: sum of predicted per-group costs under
   [config] — deterministic and execution-free, so it drives both the
   service's background retuner and reproducible tests.  [None] when
   any group fails to analyze. *)
let model_evaluate config (spec : Schedule_spec.t) =
  let p = spec.Schedule_spec.pipeline in
  List.fold_left
    (fun acc (g : Schedule_spec.group) ->
      match acc with
      | None -> None
      | Some total -> (
          match
            Cost_model.group_features config p ~stages:g.Schedule_spec.stages
              ~tile:g.Schedule_spec.tile_sizes
          with
          | None -> None
          | Some f -> Some (total +. Cost_model.predict config f)))
    (Some 0.0) spec.Schedule_spec.groups

(* IR adapter for the online retuner: score candidate tile matrices
   for an already-lowered plan without re-lowering (features come
   straight from the IR's stage lists), then [Pmdp_plan.retile] only
   the winner. *)
let tune_ir ~seed ~budget ~config ~pipeline (ir : Pmdp_plan.t) =
  let stages_of_group (g : Pmdp_plan.group) =
    Array.to_list (Array.map (fun (m : Pmdp_plan.member) -> m.Pmdp_plan.sid) g.Pmdp_plan.members)
  in
  let groups = Array.to_list (Array.map stages_of_group ir.Pmdp_plan.groups) in
  let init =
    Array.map (fun (g : Pmdp_plan.group) -> Array.copy g.Pmdp_plan.tile) ir.Pmdp_plan.groups
  in
  let eval tiles =
    List.fold_left
      (fun acc (stages, tile) ->
        match acc with
        | None -> None
        | Some total -> (
            match Cost_model.group_features config pipeline ~stages ~tile with
            | None -> None
            | Some f -> Some (total +. Cost_model.predict config f)))
      (Some 0.0)
      (List.combine groups (Array.to_list tiles))
  in
  let r = run ~seed ~budget ~init ~evaluate:eval in
  (r.tiles, r)

(* Dense weighted least squares via normal equations — small systems
   only (the calibration fits an intercept plus four weights).
   Gaussian elimination with partial pivoting; a tiny ridge keeps
   rank-deficient designs (e.g. a feature constant across all
   samples) solvable instead of exploding. *)

let solve a b =
  let n = Array.length b in
  let m = Array.map Array.copy a in
  let b = Array.copy b in
  let singular = ref false in
  for col = 0 to n - 1 do
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs m.(r).(col) > Float.abs m.(!piv).(col) then piv := r
    done;
    if !piv <> col then begin
      let t = m.(col) in
      m.(col) <- m.(!piv);
      m.(!piv) <- t;
      let t = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- t
    end;
    let p = m.(col).(col) in
    if Float.abs p < 1e-300 then singular := true
    else
      for r = col + 1 to n - 1 do
        let f = m.(r).(col) /. p in
        if f <> 0.0 then begin
          for c = col to n - 1 do
            m.(r).(c) <- m.(r).(c) -. (f *. m.(col).(c))
          done;
          b.(r) <- b.(r) -. (f *. b.(col))
        end
      done
  done;
  if !singular then None
  else begin
    let x = Array.make n 0.0 in
    for r = n - 1 downto 0 do
      let s = ref b.(r) in
      for c = r + 1 to n - 1 do
        s := !s -. (m.(r).(c) *. x.(c))
      done;
      x.(r) <- !s /. m.(r).(r)
    done;
    if Array.for_all Float.is_finite x then Some x else None
  end

let fit ~rows ~ys ~weights =
  let n = Array.length rows in
  if n = 0 || Array.length ys <> n || Array.length weights <> n then None
  else begin
    let k = Array.length rows.(0) in
    let g = Array.make_matrix k k 0.0 in
    let h = Array.make k 0.0 in
    for i = 0 to n - 1 do
      let r = rows.(i) and w = weights.(i) and y = ys.(i) in
      for a = 0 to k - 1 do
        h.(a) <- h.(a) +. (w *. r.(a) *. y);
        for b = 0 to k - 1 do
          g.(a).(b) <- g.(a).(b) +. (w *. r.(a) *. r.(b))
        done
      done
    done;
    let trace = ref 0.0 in
    for a = 0 to k - 1 do
      trace := !trace +. g.(a).(a)
    done;
    let ridge = 1e-9 *. ((!trace /. float_of_int k) +. 1e-30) in
    for a = 0 to k - 1 do
      g.(a).(a) <- g.(a).(a) +. ridge
    done;
    solve g h
  end

(** Weighted linear least squares for tiny systems (the calibration's
    five parameters) — normal equations, Gaussian elimination with
    partial pivoting, and a [1e-9]-scaled ridge so rank-deficient
    designs degrade gracefully instead of failing. *)

val solve : float array array -> float array -> float array option
(** [solve a b] solves the square system [a x = b]; [None] when
    singular or the solution is non-finite. [a] and [b] are not
    mutated. *)

val fit :
  rows:float array array ->
  ys:float array ->
  weights:float array ->
  float array option
(** Minimize [Σ weights.(i) * (rows.(i)·x - ys.(i))²] over [x].
    [None] on empty/ragged input or a singular (post-ridge) system. *)

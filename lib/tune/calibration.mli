(** Cost-model calibration: fit the model's four weights (plus a
    per-group intercept) to measured per-group wall times, and persist
    the result as a versioned, digest-stamped [CALIB_<machine>.json]
    artifact that {!Pmdp_core.Cost_model.config_of_machine} can load.

    The corpus comes from schema-v3 bench files (lib/bench), whose
    cases carry predicted-vs-measured [group_costs] rows.  The fit is
    weighted least squares with weights [1/wall²] — i.e. it minimizes
    mean squared {e relative} error, so microsecond groups count as
    much as millisecond ones — and is guarded never to read worse (on
    mean relative error) than the best single-scale reweighting of the
    analytic defaults, which it nests. *)

type sample = {
  s_app : string;
  s_scheduler : string;
  s_group : int;
  s_features : Pmdp_core.Cost_model.features;
  s_predicted : float;  (** analytic model cost recorded at bench time *)
  s_wall : float;  (** measured median per-group wall, seconds *)
}

type t = {
  machine : string;
  weights : Pmdp_core.Cost_model.calibration;
  load_cost_scale : float;
      (** fitted memory-term weight relative to the analytic w1 — the
          factor by which measurement rescales the LOAD_COST currency *)
  n_samples : int;
  mean_rel_err : float;  (** calibrated model, on the fit corpus *)
  analytic_mean_rel_err : float;
      (** raw analytic costs read as seconds — the unscaled default *)
  scaled_analytic_mean_rel_err : float;
      (** the best single-scale analytic baseline (the fair one) *)
  source : string;  (** digest/name of the bench corpus fitted from *)
}

val schema_version : int

val fit :
  machine:Pmdp_machine.Machine.t -> ?source:string -> sample list -> (t, string) result
(** Weighted least squares over the samples.  Guaranteed
    [mean_rel_err <= scaled_analytic_mean_rel_err]. *)

val evaluate : t -> sample list -> float
(** Mean relative error of the calibrated weights on a corpus (not
    necessarily the one fitted on). *)

val samples_of_bench : string -> (string * sample list, string) result
(** Parse a schema-v3 bench JSON into [(machine_name, samples)],
    keeping one row per (app, scheduler, group) from valid cases.
    Typed refusal of other schema versions. *)

val to_json : t -> Pmdp_report.Json.t
val write : string -> t -> unit

val read : string -> (t, string) result
(** Parse and verify an artifact: schema version, digest over the
    payload's canonical serialization, weight fields. *)

val validate : string -> machine:string -> (t, string) result
(** {!read} plus the machine-name match and basic sanity (the
    [pmdp tune calibrate --check] gate); runs nothing. *)

val default_path : string -> string
(** ["CALIB_<machine>.json"]. *)

val pp : Format.formatter -> t -> unit

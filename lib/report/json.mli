(** Minimal JSON construction and serialization (no external deps).

    Only what the profiling and benchmark reports need: building a
    value and printing it.  Non-finite floats serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line. *)

val to_string_pretty : t -> string
(** 2-space indented, trailing newline — for files meant to be read
    and diffed. *)

val to_file : string -> t -> unit
(** Write the pretty form to a file (truncating). *)

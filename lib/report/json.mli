(** Minimal JSON construction, serialization, and parsing (no
    external deps).

    What the profiling and benchmark reports need — building a value
    and printing it — plus a small parser and accessors for the
    consumers of those files: the benchmark merger
    ({!Pmdp_bench.Runner}) and the execution service's length-prefixed
    wire protocol ([Pmdp_service.Protocol]).  Non-finite floats
    serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line. *)

val to_string_pretty : t -> string
(** 2-space indented, trailing newline — for files meant to be read
    and diffed. *)

val to_file : string -> t -> unit
(** Write the pretty form to a file (truncating). *)

val of_string : string -> (t, string) result
(** Parse one JSON value (standard syntax; [\u] escapes decode to
    UTF-8).  Numbers without a fraction or exponent parse as {!Int}
    (falling back to {!Float} beyond [int] range), everything else as
    {!Float}.  The error is a human-readable ["line L, column C: ..."]
    message. *)

val of_file : string -> (t, string) result
(** {!of_string} over a whole file; I/O errors are returned, not
    raised. *)

val member : string -> t -> t option
(** Field lookup in an {!Obj}; [None] on a missing field or any other
    constructor. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int]s widen to float. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON has no Infinity/NaN; timings need ~9 significant digits. *)
let float_repr f = if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          write b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 1024 in
  write b j;
  Buffer.contents b

(* Indented rendering, for files meant to be read and diffed. *)
let rec write_pretty b indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as j -> write b j
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad;
          write_pretty b (indent + 2) item)
        items;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ');
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad;
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          write_pretty b (indent + 2) v)
        fields;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ');
      Buffer.add_char b '}'

let to_string_pretty j =
  let b = Buffer.create 4096 in
  write_pretty b 0 j;
  Buffer.add_char b '\n';
  Buffer.contents b

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_pretty j))

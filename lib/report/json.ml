type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON has no Infinity/NaN.  The shortest representation that parses
   back to the exact same double: result checksums cross the wire
   through this printer, and the chaos harness compares them bitwise
   against a local reference run, so lossy formatting would read as
   corruption. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s
    else
      let s = Printf.sprintf "%.16g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          write b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 1024 in
  write b j;
  Buffer.contents b

(* Indented rendering, for files meant to be read and diffed. *)
let rec write_pretty b indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as j -> write b j
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad;
          write_pretty b (indent + 2) item)
        items;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ');
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad;
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          write_pretty b (indent + 2) v)
        fields;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ');
      Buffer.add_char b '}'

let to_string_pretty j =
  let b = Buffer.create 4096 in
  write_pretty b 0 j;
  Buffer.add_char b '\n';
  Buffer.contents b

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_pretty j))

(* ------------------------------------------------------------------ *)
(* Parsing.  Recursive descent over the input string; accepts exactly
   the JSON this module emits (plus standard escapes), which is all
   the service protocol and the bench-merge loader need. *)

exception Parse_error of string

let fail_at s i msg =
  let line = ref 1 and col = ref 1 in
  for j = 0 to Stdlib.min (i - 1) (String.length s - 1) do
    if s.[j] = '\n' then begin incr line; col := 1 end else incr col
  done;
  raise (Parse_error (Printf.sprintf "line %d, column %d: %s" !line !col msg))

let is_digit c = c >= '0' && c <= '9'

let parse_string_body s i =
  let b = Buffer.create 16 in
  let n = String.length s in
  let i = ref i in
  let finished = ref false in
  while not !finished do
    if !i >= n then fail_at s !i "unterminated string";
    (match s.[!i] with
    | '"' -> finished := true
    | '\\' ->
        if !i + 1 >= n then fail_at s !i "unterminated escape";
        incr i;
        (match s.[!i] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
            if !i + 4 >= n then fail_at s !i "truncated \\u escape";
            let hex = String.sub s (!i + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code >= 0 ->
                Buffer.add_utf_8_uchar b
                  (if Uchar.is_valid code then Uchar.of_int code else Uchar.rep)
            | _ -> fail_at s !i ("bad \\u escape: " ^ hex));
            i := !i + 4
        | c -> fail_at s !i (Printf.sprintf "bad escape '\\%c'" c))
    | c -> Buffer.add_char b c);
    incr i
  done;
  (* [!i] is one past the closing quote. *)
  (Buffer.contents b, !i)

let parse s =
  let n = String.length s in
  let i = ref 0 in
  let skip_ws () =
    while !i < n && (match s.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr i
    done
  in
  let expect c =
    if !i >= n || s.[!i] <> c then fail_at s !i (Printf.sprintf "expected '%c'" c);
    incr i
  in
  let literal word v =
    let l = String.length word in
    if !i + l <= n && String.sub s !i l = word then begin i := !i + l; v end
    else fail_at s !i ("expected " ^ word)
  in
  let number () =
    let start = !i in
    if !i < n && s.[!i] = '-' then incr i;
    while !i < n && is_digit s.[!i] do incr i done;
    let is_float = ref false in
    if !i < n && s.[!i] = '.' then begin
      is_float := true;
      incr i;
      while !i < n && is_digit s.[!i] do incr i done
    end;
    if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
      is_float := true;
      incr i;
      if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
      while !i < n && is_digit s.[!i] do incr i done
    end;
    let text = String.sub s start (!i - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail_at s start ("bad number: " ^ text)
    else
      match int_of_string_opt text with
      | Some v -> Int v
      | None -> (
          (* out of int range: fall back to float *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail_at s start ("bad number: " ^ text))
  in
  let rec value () =
    skip_ws ();
    if !i >= n then fail_at s !i "unexpected end of input";
    match s.[!i] with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' ->
        incr i;
        let str, j = parse_string_body s !i in
        i := j;
        String str
    | '[' ->
        incr i;
        skip_ws ();
        if !i < n && s.[!i] = ']' then begin incr i; List [] end
        else begin
          let items = ref [ value () ] in
          skip_ws ();
          while !i < n && s.[!i] = ',' do
            incr i;
            items := value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | '{' ->
        incr i;
        skip_ws ();
        if !i < n && s.[!i] = '}' then begin incr i; Obj [] end
        else begin
          let field () =
            skip_ws ();
            expect '"';
            let k, j = parse_string_body s !i in
            i := j;
            skip_ws ();
            expect ':';
            let v = value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while !i < n && s.[!i] = ',' do
            incr i;
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | '-' | '0' .. '9' -> number ()
    | c -> fail_at s !i (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = value () in
  skip_ws ();
  if !i <> n then fail_at s !i "trailing garbage after JSON value";
  v

let of_string s = try Ok (parse s) with Parse_error msg -> Error msg

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | content -> ( match of_string content with Ok v -> Ok v | Error e -> Error (path ^ ": " ^ e))

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_int_opt = function Int v -> Some v | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int v -> Some (float_of_int v)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List l -> Some l | _ -> None

(** Typed execution profiles recorded by the tiled executor.

    [Tiled_exec.run ?profile] appends one {!group} record per
    schedule group to a {!collector}; {!result} snapshots the whole
    run.  Counters are chosen to explain where a schedule's time
    goes: tile counts and wall-clock per group, how many pool workers
    actually claimed work (occupancy), how much scratch the overlap
    regions cost, and how many bytes live-outs computed in scratch
    had to copy back out. *)

type group = {
  index : int;  (** group position in the schedule *)
  stages : string list;  (** member stage names *)
  tiles : int;  (** tiles executed *)
  occupancy : int;  (** workers that executed >= 1 tile (1 when sequential) *)
  scratch_bytes : int;  (** arena bytes allocated, summed over workers *)
  copy_out_bytes : int;  (** bytes copied from scratch to full live-out buffers *)
  wall_seconds : float;  (** wall-clock of the group's tile loop *)
}

type step = {
  step_name : string;  (** fallback-chain step: "plan", "tiled-parallel", ... *)
  step_error : string option;  (** [None] = succeeded, [Some e] = failed with the typed error *)
}

type t = {
  pipeline : string;
  workers : int;  (** pool parallelism the run was launched with *)
  groups : group list;  (** in execution order *)
  total_seconds : float;  (** sum of group wall-clocks *)
  degraded : bool;  (** a resilience fallback step was taken *)
  steps : step list;  (** fallback-chain record, in attempt order *)
  counters : (string * int) list;
      (** trace counter totals ({!Pmdp_trace.Trace.counter_totals})
          for the run, when tracing was enabled; [] otherwise *)
  predicted : (int * float) list;
      (** model-predicted cost per group index, when a caller attached
          one ({!set_predicted}) — rendered next to the measured
          wall-clock by [pp]/[to_json] so predicted-vs-measured reads
          off one report *)
}

type collector

val collector : pipeline:string -> workers:int -> collector
val add_group : collector -> group -> unit

val add_step : collector -> name:string -> error:string option -> unit
(** Record one fallback-chain step ({!Pmdp_exec.Resilient}): the step
    name and, if it failed, the rendered typed error. *)

val set_degraded : collector -> bool -> unit

val set_counters : collector -> (string * int) list -> unit
(** Attach trace counter totals (typically the per-run delta of
    {!Pmdp_trace.Trace.counter_totals}) so profiles and bench JSON
    carry the same numbers the trace does. *)

val set_predicted : collector -> (int * float) list -> unit
(** Attach model-predicted costs keyed by group index (the executor
    does not know the cost model; schedulers and the bench runner
    do).  Cleared by {!clear} with everything else. *)

val result : collector -> t
(** Snapshot of everything collected so far, in execution order. *)

val clear : collector -> unit
(** Drop collected groups so the collector can record a fresh run. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t

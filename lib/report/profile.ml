type group = {
  index : int;
  stages : string list;
  tiles : int;
  occupancy : int;
  scratch_bytes : int;
  copy_out_bytes : int;
  wall_seconds : float;
}

type t = {
  pipeline : string;
  workers : int;
  groups : group list;
  total_seconds : float;
}

type collector = {
  c_pipeline : string;
  c_workers : int;
  mutable c_groups : group list;  (* reverse order *)
}

let collector ~pipeline ~workers = { c_pipeline = pipeline; c_workers = workers; c_groups = [] }
let add_group c g = c.c_groups <- g :: c.c_groups

let result c =
  let groups = List.rev c.c_groups in
  {
    pipeline = c.c_pipeline;
    workers = c.c_workers;
    groups;
    total_seconds = List.fold_left (fun acc g -> acc +. g.wall_seconds) 0.0 groups;
  }

let clear c = c.c_groups <- []

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %.3f ms over %d groups, %d workers@," t.pipeline
    (t.total_seconds *. 1000.0) (List.length t.groups) t.workers;
  List.iter
    (fun g ->
      Format.fprintf ppf
        "  group %d {%s}: %d tiles, %.3f ms, occupancy %d/%d, scratch %d B, copy-out %d B@,"
        g.index
        (String.concat "," g.stages)
        g.tiles (g.wall_seconds *. 1000.0) g.occupancy t.workers g.scratch_bytes
        g.copy_out_bytes)
    t.groups;
  Format.fprintf ppf "@]"

let group_to_json g =
  Json.Obj
    [
      ("group", Json.Int g.index);
      ("stages", Json.List (List.map (fun s -> Json.String s) g.stages));
      ("tiles", Json.Int g.tiles);
      ("occupancy", Json.Int g.occupancy);
      ("scratch_bytes", Json.Int g.scratch_bytes);
      ("copy_out_bytes", Json.Int g.copy_out_bytes);
      ("wall_seconds", Json.Float g.wall_seconds);
    ]

let to_json t =
  Json.Obj
    [
      ("pipeline", Json.String t.pipeline);
      ("workers", Json.Int t.workers);
      ("total_seconds", Json.Float t.total_seconds);
      ("groups", Json.List (List.map group_to_json t.groups));
    ]

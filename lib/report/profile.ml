type group = {
  index : int;
  stages : string list;
  tiles : int;
  occupancy : int;
  scratch_bytes : int;
  copy_out_bytes : int;
  wall_seconds : float;
}

type step = { step_name : string; step_error : string option }

type t = {
  pipeline : string;
  workers : int;
  groups : group list;
  total_seconds : float;
  degraded : bool;
  steps : step list;
  counters : (string * int) list;
  predicted : (int * float) list;
}

type collector = {
  c_pipeline : string;
  c_workers : int;
  mutable c_groups : group list;  (* reverse order *)
  mutable c_steps : step list;  (* reverse order *)
  mutable c_degraded : bool;
  mutable c_counters : (string * int) list;
  mutable c_predicted : (int * float) list;
}

let collector ~pipeline ~workers =
  {
    c_pipeline = pipeline;
    c_workers = workers;
    c_groups = [];
    c_steps = [];
    c_degraded = false;
    c_counters = [];
    c_predicted = [];
  }

let add_group c g = c.c_groups <- g :: c.c_groups
let add_step c ~name ~error = c.c_steps <- { step_name = name; step_error = error } :: c.c_steps
let set_degraded c d = c.c_degraded <- d
let set_counters c totals = c.c_counters <- totals
let set_predicted c preds = c.c_predicted <- preds

let result c =
  let groups = List.rev c.c_groups in
  {
    pipeline = c.c_pipeline;
    workers = c.c_workers;
    groups;
    total_seconds = List.fold_left (fun acc g -> acc +. g.wall_seconds) 0.0 groups;
    degraded = c.c_degraded;
    steps = List.rev c.c_steps;
    counters = c.c_counters;
    predicted = c.c_predicted;
  }

let clear c =
  c.c_groups <- [];
  c.c_steps <- [];
  c.c_degraded <- false;
  c.c_counters <- [];
  c.c_predicted <- []

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %.3f ms over %d groups, %d workers%s@," t.pipeline
    (t.total_seconds *. 1000.0) (List.length t.groups) t.workers
    (if t.degraded then "  [DEGRADED]" else "");
  List.iter
    (fun g ->
      Format.fprintf ppf
        "  group %d {%s}: %d tiles, %.3f ms, occupancy %d/%d, scratch %d B, copy-out %d B%s@,"
        g.index
        (String.concat "," g.stages)
        g.tiles (g.wall_seconds *. 1000.0) g.occupancy t.workers g.scratch_bytes
        g.copy_out_bytes
        (match List.assoc_opt g.index t.predicted with
        | Some c -> Printf.sprintf ", predicted %.4g" c
        | None -> ""))
    t.groups;
  List.iter
    (fun s ->
      match s.step_error with
      | None -> Format.fprintf ppf "  step %s: ok@," s.step_name
      | Some e -> Format.fprintf ppf "  step %s: FAILED (%s)@," s.step_name e)
    t.steps;
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  counter %s = %d@," name v)
    t.counters;
  Format.fprintf ppf "@]"

let group_to_json g =
  Json.Obj
    [
      ("group", Json.Int g.index);
      ("stages", Json.List (List.map (fun s -> Json.String s) g.stages));
      ("tiles", Json.Int g.tiles);
      ("occupancy", Json.Int g.occupancy);
      ("scratch_bytes", Json.Int g.scratch_bytes);
      ("copy_out_bytes", Json.Int g.copy_out_bytes);
      ("wall_seconds", Json.Float g.wall_seconds);
    ]

let step_to_json s =
  Json.Obj
    [
      ("step", Json.String s.step_name);
      ("error", match s.step_error with None -> Json.Null | Some e -> Json.String e);
    ]

let to_json t =
  let group_json g =
    match (group_to_json g, List.assoc_opt g.index t.predicted) with
    | Json.Obj fields, Some c -> Json.Obj (fields @ [ ("predicted_cost", Json.Float c) ])
    | j, _ -> j
  in
  Json.Obj
    [
      ("pipeline", Json.String t.pipeline);
      ("workers", Json.Int t.workers);
      ("total_seconds", Json.Float t.total_seconds);
      ("degraded", Json.Bool t.degraded);
      ("resilience", Json.List (List.map step_to_json t.steps));
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.counters));
      ("groups", Json.List (List.map group_json t.groups));
    ]

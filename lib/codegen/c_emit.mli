(** C++/OpenMP code generation for a tiled schedule.

    Emits code with the structure of the paper's Fig. 3: fused
    tile-space loops parallelized with [#pragma omp parallel for],
    per-tile scratch buffers for intermediate stages, overlap-expanded
    region loops per member stage, and [#pragma ivdep] innermost
    loops.  The emitted code is self-contained C++ (plus OpenMP) and
    is what PolyMage would hand to icpc/g++; in this repository it
    serves inspection and testing — execution goes through
    {!Pmdp_exec.Tiled_exec}. *)

val scratch_alloc_extents :
  Pmdp_analysis.Group_analysis.t -> member:int -> tile:int array -> int array
(** Per own-dimension extents of the on-stack scratch array the
    emitted code allocates for a member's per-tile region (the
    [float scr_f[N]] declaration uses their product).  Exposed so the
    static bounds checker ({!Pmdp_verify}) can prove every tile's
    region fits the allocation. *)

val emit : Pmdp_core.Schedule_spec.t -> string
(** Full translation unit for the schedule's pipeline.
    @raise Invalid_argument if a group fails analysis. *)

val emit_to_file : Pmdp_core.Schedule_spec.t -> string -> unit
(** Write [emit] output to the given path. *)

val emit_with_harness : Pmdp_core.Schedule_spec.t -> string
(** [emit] plus a [main] that reads every pipeline input from
    [<name>.bin] (raw little-endian float32, row-major), runs the
    pipeline, and writes every pipeline output stage to
    [<name>.out.bin].  Used by the differential test that runs the
    generated C++ against the OCaml executor. *)

(** C++/OpenMP code generation for a tiled schedule.

    Emits code with the structure of the paper's Fig. 3: fused
    tile-space loops parallelized with [#pragma omp parallel for],
    per-tile scratch buffers for intermediate stages, overlap-expanded
    region loops per member stage, and [#pragma ivdep] innermost
    loops.  The emitted code is self-contained C++ (plus OpenMP) and
    is what PolyMage would hand to icpc/g++; in this repository it
    serves inspection and testing — execution goes through
    {!Pmdp_exec.Tiled_exec}. *)

val scratch_alloc_extents :
  Pmdp_analysis.Group_analysis.t -> member:int -> tile:int array -> int array
(** Per own-dimension extents of the on-stack scratch array the
    emitted code allocates for a member's per-tile region (the
    [float scr_f[N]] declaration uses their product).  Exposed so the
    static bounds checker ({!Pmdp_verify}) can prove every tile's
    region fits the allocation. *)

val emit : Pmdp_core.Schedule_spec.t -> string
(** Full translation unit for the schedule's pipeline.
    @raise Invalid_argument if a group fails analysis. *)

val emit_to_file : Pmdp_core.Schedule_spec.t -> string -> unit
(** Write [emit] output to the given path. *)

val emit_with_harness : Pmdp_core.Schedule_spec.t -> string
(** [emit] plus a [main] that reads every pipeline input from
    [<name>.bin] (raw little-endian float32, row-major), runs the
    pipeline, and writes every pipeline output stage to
    [<name>.out.bin].  Used by the differential test that runs the
    generated C++ against the OCaml executor. *)

(** {2 Native kernels}

    Unlike {!emit} — float32, one whole-pipeline entry point, meant
    for inspection — the kernel emitter produces the translation unit
    the native backend ({!Pmdp_kernel}) actually compiles, loads, and
    executes: double precision throughout (so results can be compared
    bitwise against the double-precision interpreter and
    {!Pmdp_exec.Reference}), one [extern] function per fused group,
    and every buffer passed in from outside rather than held in
    [static] arrays. *)

val kernel_abi_version : int
(** Version of the emitted extern ABI below.  Salted into
    {!Pmdp_plan.kernel_digest}, so an ABI change re-keys every cached
    kernel instead of calling stale objects with the wrong signature. *)

val kernel_symbol : int -> string
(** [kernel_symbol gi] is the exported symbol of group [gi]:
    ["pmdp_kernel_group_<gi>"], with C signature
    [void (double **bufs, int n_threads)]. *)

val kernel_slots : Pmdp_dsl.Pipeline.t -> Pmdp_plan.t -> string list
(** Buffer-slot order of the [bufs] argument: pipeline inputs in
    declaration order, then live-out stages in plan order
    ([Pmdp_plan.t.liveouts]).  Every group function receives the full
    vector; each indexes only the slots it reads or writes. *)

val emit_kernels : Pmdp_dsl.Pipeline.t -> Pmdp_plan.t -> string
(** The kernel translation unit for a lowered plan: per-group tile
    loops under [#pragma omp parallel]/[#pragma omp for] (ignored —
    hence serial but still correct — when compiled without OpenMP),
    per-thread heap scratch arenas, and the same clamp/region/copy-out
    structure as {!emit}.  Arithmetic mirrors the interpreter
    ({!Pmdp_exec.Compile}) operation for operation — [double]
    literals via ["%.17g"], [fmin]/[fmax], [Floor] as
    [(double) (int) floor(x)] — so a kernel compiled with
    [-ffp-contract=off] is expected bitwise-equal to
    {!Pmdp_exec.Reference}.
    @raise Invalid_argument when the plan names a different pipeline.
    @raise Pmdp_util.Pmdp_error.Error ([Plan_invalid]) when a plan
    group does not fit the pipeline. *)

module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage
module Expr = Pmdp_dsl.Expr
module Rational = Pmdp_util.Rational
module Group_analysis = Pmdp_analysis.Group_analysis
module Footprint = Pmdp_analysis.Footprint
module Schedule_spec = Pmdp_core.Schedule_spec

let spf = Printf.sprintf

(* A valid C float literal: "%.9g" may omit the decimal point ("4"),
   which would make the trailing 'f' a user-defined-literal suffix. *)
let float_lit f =
  let s = spf "%.9g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s ^ "f"
  else s ^ ".0f"

(* C identifier for a buffer. *)
let buf name = "buf_" ^ name
let scratch name = "scr_" ^ name

(* A C double literal: "%.17g" round-trips every finite double, and a
   bare integer rendering ("4") is already an exact double in C. *)
let double_lit f = spf "%.17g" f

type ctx = {
  p : Pipeline.t;
  ga : Group_analysis.t;
  member : int;  (* current consumer member index *)
  in_group : string -> int option;  (* member index of an in-group stage *)
  f64 : bool;
      (* double-precision kernel mode: every float32 spelling (literal
         suffix, cast, libm call) switches to its double form, and
         Floor/Mod mirror the interpreter's int round-trip exactly so
         the compiled kernel can be bitwise-compared against
         [Pmdp_exec.Reference] *)
}

let lit ctx f = if ctx.f64 then double_lit f else float_lit f
let cast ctx = if ctx.f64 then "(double)" else "(float)"
let libm ctx name = if ctx.f64 then name else name ^ "f"

(* Bounds of a stage's own domain, as C constants. *)
let dim_bounds (d : Stage.dim) = (d.Stage.lo, d.Stage.lo + d.Stage.extent - 1)

let dims_size (dims : Stage.dim array) =
  Array.fold_left (fun acc d -> acc * d.Stage.extent) 1 dims

let var_name i = spf "v%d" i

let rec coord_to_c ctx (c : Expr.coord) =
  match c with
  | Expr.Cvar { var; scale; offset } ->
      if Rational.equal scale Rational.one && Rational.equal offset Rational.zero then
        var_name var
      else if Rational.equal scale Rational.one && Rational.is_integer offset then
        spf "(%s + %d)" (var_name var) (Rational.to_int_exn offset)
      else begin
        let p = scale.Rational.num * offset.Rational.den in
        let q = offset.Rational.num * scale.Rational.den in
        let r = scale.Rational.den * offset.Rational.den in
        spf "FDIV(%d * %s + %d, %d)" p (var_name var) q r
      end
  | Expr.Cdyn e -> spf "(int) %s(%s)" (libm ctx "floor") (expr_to_c ctx e)

(* A load: clamp each coordinate into the producer's box, then index.
   In-group non-live-out producers use the tile-local scratch buffer
   and region-relative strides; everything else uses the full buffer. *)
and load_to_c ctx name coords =
  let coord_strs = Array.map (coord_to_c ctx) coords in
  match ctx.in_group name with
  | Some _ ->
      (* In-group producers are always read from the tile-local
         scratch region (live-outs compute into scratch too and copy
         their exact tile part out afterwards — direct full-buffer
         reads would race with neighboring tiles at region edges). *)
      let parts =
        Array.mapi
          (fun d cs ->
            spf "(CLAMPI(%s, %s_lo%d, %s_hi%d) - %s_lo%d) * %s_st%d" cs (scratch name) d
              (scratch name) d (scratch name) d (scratch name) d)
          coord_strs
      in
      spf "%s[%s]" (scratch name) (String.concat " + " (Array.to_list parts))
  | None ->
      let dims =
        match
          Array.find_opt
            (fun (i : Pipeline.input) -> i.Pipeline.in_name = name)
            ctx.p.Pipeline.inputs
        with
        | Some i -> i.Pipeline.in_dims
        | None -> (Pipeline.stage ctx.p (Pipeline.stage_id ctx.p name)).Stage.dims
      in
      let n = Array.length dims in
      let stride = Array.make n 1 in
      for d = n - 2 downto 0 do
        stride.(d) <- stride.(d + 1) * dims.(d + 1).Stage.extent
      done;
      let parts =
        Array.mapi
          (fun d cs ->
            let lo, hi = dim_bounds dims.(d) in
            spf "(CLAMPI(%s, %d, %d) - %d) * %d" cs lo hi lo stride.(d))
          coord_strs
      in
      spf "%s[%s]" (buf name) (String.concat " + " (Array.to_list parts))

and expr_to_c ctx (e : Expr.t) =
  match e with
  | Expr.Const f -> lit ctx f
  | Expr.Var i -> spf "%s %s" (cast ctx) (var_name i)
  | Expr.Load (name, coords) -> load_to_c ctx name coords
  | Expr.Binop (op, a, b) -> (
      let ca = expr_to_c ctx a and cb = expr_to_c ctx b in
      match op with
      | Expr.Add -> spf "(%s + %s)" ca cb
      | Expr.Sub -> spf "(%s - %s)" ca cb
      | Expr.Mul -> spf "(%s * %s)" ca cb
      | Expr.Div -> spf "(%s / %s)" ca cb
      | Expr.Min -> spf "%s(%s, %s)" (libm ctx "fmin") ca cb
      | Expr.Max -> spf "%s(%s, %s)" (libm ctx "fmax") ca cb
      | Expr.Mod -> spf "%s ((int) (%s) %% (int) (%s))" (cast ctx) ca cb)
  | Expr.Unop (op, a) -> (
      let ca = expr_to_c ctx a in
      match op with
      | Expr.Neg -> spf "(-%s)" ca
      | Expr.Abs -> spf "%s(%s)" (libm ctx "fabs") ca
      | Expr.Sqrt -> spf "%s(%s)" (libm ctx "sqrt") ca
      | Expr.Exp -> spf "%s(%s)" (libm ctx "exp") ca
      | Expr.Log -> spf "%s(%s)" (libm ctx "log") ca
      | Expr.Floor ->
          (* The interpreter rounds through int ([Float.of_int
             (int_of_float (Float.floor x))]); the double kernel must
             spell exactly that to stay bitwise-comparable. *)
          if ctx.f64 then spf "(double) (int) floor(%s)" ca else spf "floorf(%s)" ca
      | Expr.Sin -> spf "%s(%s)" (libm ctx "sin") ca
      | Expr.Cos -> spf "%s(%s)" (libm ctx "cos") ca)
  | Expr.Select (c, a, b) ->
      spf "(%s ? %s : %s)" (cond_to_c ctx c) (expr_to_c ctx a) (expr_to_c ctx b)

and cond_to_c ctx (c : Expr.cond) =
  match c with
  | Expr.Cmp (op, a, b) ->
      let s = match op with
        | Expr.Lt -> "<" | Expr.Le -> "<=" | Expr.Gt -> ">"
        | Expr.Ge -> ">=" | Expr.Eq -> "==" | Expr.Ne -> "!="
      in
      spf "(%s %s %s)" (expr_to_c ctx a) s (expr_to_c ctx b)
  | Expr.And (a, b) -> spf "(%s && %s)" (cond_to_c ctx a) (cond_to_c ctx b)
  | Expr.Or (a, b) -> spf "(%s || %s)" (cond_to_c ctx a) (cond_to_c ctx b)
  | Expr.Not a -> spf "(!%s)" (cond_to_c ctx a)

let scratch_alloc_extents (ga : Group_analysis.t) ~member:m ~tile =
  let stage = Pipeline.stage ga.Group_analysis.pipeline ga.Group_analysis.members.(m) in
  Array.init (Stage.ndims stage) (fun k ->
      let g = ga.Group_analysis.dim_of_stage.(m).(k) in
      let s = ga.Group_analysis.scales.(m).(g) in
      let elo, ehi = ga.Group_analysis.expansions.(m).(g) in
      min stage.Stage.dims.(k).Stage.extent (((tile.(g) + elo + ehi) / s) + 2))

let emit (spec : Schedule_spec.t) =
  Schedule_spec.validate spec;
  let p = spec.Schedule_spec.pipeline in
  let b = Buffer.create (64 * 1024) in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  out "// Generated by polymage-dp (OCaml reproduction); pipeline: %s" p.Pipeline.name;
  out "#include <math.h>";
  out "#include <omp.h>";
  out "#define CLAMPI(x, lo, hi) ((x) < (lo) ? (lo) : ((x) > (hi) ? (hi) : (x)))";
  out "#define FDIV(a, b) ((a) >= 0 ? (a) / (b) : -((-(a) + (b) - 1) / (b)))";
  out "#define CDIV(a, b) ((a) >= 0 ? ((a) + (b) - 1) / (b) : -((-(a)) / (b)))";
  out "";
  let groups =
    List.map
      (fun (g : Schedule_spec.group) ->
        match Group_analysis.analyze p g.Schedule_spec.stages with
        | Ok ga -> (ga, Footprint.clamp_tile ga g.Schedule_spec.tile_sizes)
        | Error f ->
            invalid_arg
              (Format.asprintf "C_emit.emit: group failed analysis: %a" Group_analysis.pp_failure f))
      spec.Schedule_spec.groups
  in
  (* Full buffers for all live-outs. *)
  List.iter
    (fun ((ga : Group_analysis.t), _) ->
      Array.iteri
        (fun m sid ->
          if ga.Group_analysis.liveouts.(m) then begin
            let stage = Pipeline.stage p sid in
            out "static float %s[%d];  // live-out of its group" (buf stage.Stage.name)
              (Stage.domain_points stage)
          end)
        ga.Group_analysis.members)
    groups;
  out "";
  let params =
    String.concat ", "
      (Array.to_list
         (Array.map (fun (i : Pipeline.input) -> "const float *" ^ buf i.Pipeline.in_name) p.Pipeline.inputs))
  in
  out "void pipeline_%s(%s) {" p.Pipeline.name params;
  List.iteri
    (fun gi ((ga : Group_analysis.t), tile) ->
      let nd = ga.Group_analysis.n_dims in
      let names =
        String.concat ", "
          (Array.to_list
             (Array.map (fun sid -> (Pipeline.stage p sid).Stage.name) ga.Group_analysis.members))
      in
      out "  // ---- group %d: {%s}, tile [%s]" gi names
        (String.concat " x " (Array.to_list (Array.map string_of_int tile)));
      let tiles_per_dim =
        Array.init nd (fun d ->
            let e = Group_analysis.dim_extent ga d in
            (e + tile.(d) - 1) / tile.(d))
      in
      out "#pragma omp parallel for schedule(static) collapse(%d)" (min 2 nd);
      for d = 0 to nd - 1 do
        out "  %sfor (int t%d = 0; t%d < %d; t%d++) {" (String.make (2 * d) ' ') d d
          tiles_per_dim.(d) d
      done;
      let ind = String.make (2 * (nd + 1)) ' ' in
      for d = 0 to nd - 1 do
        out "  %sint tlo%d = %d + t%d * %d;" ind d ga.Group_analysis.dim_lo.(d) d tile.(d);
        out "  %sint thi%d = tlo%d + %d - 1; if (thi%d > %d) thi%d = %d;" ind d d tile.(d) d
          ga.Group_analysis.dim_hi.(d) d ga.Group_analysis.dim_hi.(d)
      done;
      let in_group name =
        let rec go m =
          if m = Array.length ga.Group_analysis.members then None
          else if (Pipeline.stage p ga.Group_analysis.members.(m)).Stage.name = name then Some m
          else go (m + 1)
        in
        go 0
      in
      Array.iteri
        (fun m sid ->
          let stage = Pipeline.stage p sid in
          let sname = stage.Stage.name in
          let own_nd = Stage.ndims stage in
          out "  %s// tile of function %s" ind sname;
          (* Region bounds in own coordinates. *)
          let allocs = scratch_alloc_extents ga ~member:m ~tile in
          let max_ext = Array.fold_left ( * ) 1 allocs in
          for k = 0 to own_nd - 1 do
            let g = ga.Group_analysis.dim_of_stage.(m).(k) in
            let s = ga.Group_analysis.scales.(m).(g) in
            let elo, ehi = ga.Group_analysis.expansions.(m).(g) in
            let lo, hi = dim_bounds stage.Stage.dims.(k) in
            out "  %sint %s_lo%d = CLAMPI(FDIV(tlo%d - %d, %d), %d, %d);" ind (scratch sname) k g
              elo s lo hi;
            out "  %sint %s_hi%d = CLAMPI(CDIV(thi%d + %d, %d), %d, %d);" ind (scratch sname) k g
              ehi s lo hi
          done;
          let liveout = ga.Group_analysis.liveouts.(m) in
          (* Every member computes into a tile-local scratch region;
             live-outs copy their exact tile part out afterwards
             (direct full-buffer writes of the overlap-expanded region
             would rewrite neighboring tiles' edge points). *)
          for k = own_nd - 1 downto 0 do
            if k = own_nd - 1 then out "  %sint %s_st%d = 1;" ind (scratch sname) k
            else
              out "  %sint %s_st%d = %s_st%d * (%s_hi%d - %s_lo%d + 1);" ind (scratch sname) k
                (scratch sname) (k + 1) (scratch sname) (k + 1) (scratch sname) (k + 1)
          done;
          out "  %sfloat %s[%d];" ind (scratch sname) max_ext;
          for k = 0 to own_nd - 1 do
            let pragma = if k = own_nd - 1 then spf "#pragma ivdep\n" else "" in
            if pragma <> "" then out "%s" "#pragma ivdep";
            out "  %s%sfor (int %s = %s_lo%d; %s <= %s_hi%d; %s++) {" ind
              (String.make (2 * k) ' ') (var_name k) (scratch sname) k (var_name k)
              (scratch sname) k (var_name k)
          done;
          let inner_ind = ind ^ String.make (2 * own_nd) ' ' in
          let ctx = { p; ga; member = m; in_group; f64 = false } in
          ignore ctx.member;
          let dest =
            let parts =
              List.init own_nd (fun d ->
                  spf "(%s - %s_lo%d) * %s_st%d" (var_name d) (scratch sname) d (scratch sname) d)
            in
            spf "%s[%s]" (scratch sname) (String.concat " + " parts)
          in
          (match stage.Stage.def with
          | Stage.Pointwise body -> out "  %s%s = %s;" inner_ind dest (expr_to_c ctx body)
          | Stage.Reduction { op; init; rdom; body } ->
              out "  %sfloat acc = %s;" inner_ind (float_lit init);
              Array.iteri
                (fun r (lo, ext) ->
                  out "  %sfor (int %s = %d; %s < %d; %s++) {" inner_ind
                    (var_name (own_nd + r)) lo (var_name (own_nd + r)) (lo + ext)
                    (var_name (own_nd + r)))
                rdom;
              let acc_op =
                match op with
                | Stage.Rsum -> spf "acc += %s;" (expr_to_c ctx body)
                | Stage.Rmax -> spf "acc = fmaxf(acc, %s);" (expr_to_c ctx body)
                | Stage.Rmin -> spf "acc = fminf(acc, %s);" (expr_to_c ctx body)
              in
              out "  %s  %s" inner_ind acc_op;
              Array.iteri (fun _ _ -> out "  %s}" inner_ind) rdom;
              out "  %s%s = acc;" inner_ind dest);
          for k = own_nd - 1 downto 0 do
            out "  %s%s}" ind (String.make (2 * k) ' ')
          done;
          (* Copy-out: the intersection of this tile with the member's
             own points (may be empty: the loops then do not run). *)
          if liveout then begin
            out "  %s// copy exact tile of %s to its full buffer" ind sname;
            for k = 0 to own_nd - 1 do
              let g = ga.Group_analysis.dim_of_stage.(m).(k) in
              let s = ga.Group_analysis.scales.(m).(g) in
              let dlo, dhi = dim_bounds stage.Stage.dims.(k) in
              out "  %sint cp_%s_lo%d = CDIV(tlo%d, %d); if (cp_%s_lo%d < %d) cp_%s_lo%d = %d;"
                ind sname k g s sname k dlo sname k dlo;
              out "  %sint cp_%s_hi%d = FDIV(thi%d, %d); if (cp_%s_hi%d > %d) cp_%s_hi%d = %d;"
                ind sname k g s sname k dhi sname k dhi
            done;
            let dims = stage.Stage.dims in
            let nown = Array.length dims in
            let stride = Array.make nown 1 in
            for d = nown - 2 downto 0 do
              stride.(d) <- stride.(d + 1) * dims.(d + 1).Stage.extent
            done;
            for k = 0 to own_nd - 1 do
              out "  %s%sfor (int %s = cp_%s_lo%d; %s <= cp_%s_hi%d; %s++) {" ind
                (String.make (2 * k) ' ') (var_name k) sname k (var_name k) sname k (var_name k)
            done;
            let buf_idx =
              String.concat " + "
                (List.init nown (fun d ->
                     spf "(%s - %d) * %d" (var_name d) dims.(d).Stage.lo stride.(d)))
            in
            let scr_idx =
              String.concat " + "
                (List.init own_nd (fun d ->
                     spf "(%s - %s_lo%d) * %s_st%d" (var_name d) (scratch sname) d (scratch sname) d))
            in
            out "  %s%s%s[%s] = %s[%s];" inner_ind "" (buf sname) buf_idx (scratch sname) scr_idx;
            for k = own_nd - 1 downto 0 do
              out "  %s%s}" ind (String.make (2 * k) ' ')
            done
          end)
        ga.Group_analysis.members;
      for d = nd - 1 downto 0 do
        out "  %s}  // tile-space loop t%d" (String.make (2 * d) ' ') d
      done)
    groups;
  out "}";
  Buffer.contents b

let emit_to_file spec path =
  let oc = open_out path in
  output_string oc (emit spec);
  close_out oc

(* ---- Native kernel emission (double precision, per-group ABI) ------ *)

let kernel_abi_version = Pmdp_plan.kernel_abi_version
let kernel_symbol gi = spf "pmdp_kernel_group_%d" gi

let kernel_slots (p : Pipeline.t) (ir : Pmdp_plan.t) =
  Array.to_list
    (Array.map (fun (i : Pipeline.input) -> i.Pipeline.in_name) p.Pipeline.inputs)
  @ ir.Pmdp_plan.liveouts

let emit_kernels (p : Pipeline.t) (ir : Pmdp_plan.t) =
  if ir.Pmdp_plan.pipeline <> p.Pipeline.name then
    invalid_arg
      (spf "C_emit.emit_kernels: plan is for pipeline %S, not %S" ir.Pmdp_plan.pipeline
         p.Pipeline.name);
  let b = Buffer.create (64 * 1024) in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  out "// pmdp native kernels (double precision); pipeline: %s; abi %d" p.Pipeline.name
    kernel_abi_version;
  out "// plan digest: %s" (Pmdp_plan.digest ir);
  out "#include <math.h>";
  out "#include <stdlib.h>";
  out "#define CLAMPI(x, lo, hi) ((x) < (lo) ? (lo) : ((x) > (hi) ? (hi) : (x)))";
  out "#define FDIV(a, b) ((a) >= 0 ? (a) / (b) : -((-(a) + (b) - 1) / (b)))";
  out "#define CDIV(a, b) ((a) >= 0 ? ((a) + (b) - 1) / (b) : -((-(a)) / (b)))";
  out "";
  let slots = kernel_slots p ir in
  let n_inputs = Array.length p.Pipeline.inputs in
  Array.iteri
    (fun gi (group : Pmdp_plan.group) ->
      let ga = Pmdp_plan.group_analysis p group in
      let tile = group.Pmdp_plan.tile in
      let nd = ga.Group_analysis.n_dims in
      let names =
        String.concat ", "
          (Array.to_list
             (Array.map (fun sid -> (Pipeline.stage p sid).Stage.name) ga.Group_analysis.members))
      in
      out "// ---- group %d: {%s}, tile [%s]" gi names
        (String.concat " x " (Array.to_list (Array.map string_of_int tile)));
      out "void %s(double **bufs, int n_threads) {" (kernel_symbol gi);
      List.iteri
        (fun i name ->
          if i < n_inputs then out "  const double *%s = bufs[%d]; (void) %s;" (buf name) i (buf name)
          else out "  double *%s = bufs[%d]; (void) %s;" (buf name) i (buf name))
        slots;
      out "  (void) n_threads;";
      let tiles_per_dim =
        Array.init nd (fun d ->
            let e = Group_analysis.dim_extent ga d in
            (e + tile.(d) - 1) / tile.(d))
      in
      let in_group name =
        let rec go m =
          if m = Array.length ga.Group_analysis.members then None
          else if (Pipeline.stage p ga.Group_analysis.members.(m)).Stage.name = name then Some m
          else go (m + 1)
        in
        go 0
      in
      (* Per-thread scratch arenas live on the heap (per-tile regions
         of the larger apps overflow a thread stack), allocated once
         per thread for the whole tile sweep.  Without OpenMP the
         pragmas are ignored and the block runs once, serially. *)
      out "#pragma omp parallel num_threads(n_threads)";
      out "  {";
      Array.iteri
        (fun m _sid ->
          let stage = Pipeline.stage p ga.Group_analysis.members.(m) in
          let allocs = scratch_alloc_extents ga ~member:m ~tile in
          let max_ext = Array.fold_left ( * ) 1 allocs in
          out "  double *%s = (double *) malloc(%d * sizeof(double));" (scratch stage.Stage.name)
            max_ext)
        ga.Group_analysis.members;
      out "#pragma omp for schedule(static) collapse(%d)" (min 2 nd);
      for d = 0 to nd - 1 do
        out "  %sfor (int t%d = 0; t%d < %d; t%d++) {" (String.make (2 * d) ' ') d d
          tiles_per_dim.(d) d
      done;
      let ind = String.make (2 * (nd + 1)) ' ' in
      for d = 0 to nd - 1 do
        out "  %sint tlo%d = %d + t%d * %d;" ind d ga.Group_analysis.dim_lo.(d) d tile.(d);
        out "  %sint thi%d = tlo%d + %d - 1; if (thi%d > %d) thi%d = %d;" ind d d tile.(d) d
          ga.Group_analysis.dim_hi.(d) d ga.Group_analysis.dim_hi.(d)
      done;
      Array.iteri
        (fun m sid ->
          let stage = Pipeline.stage p sid in
          let sname = stage.Stage.name in
          let own_nd = Stage.ndims stage in
          out "  %s// tile of function %s" ind sname;
          for k = 0 to own_nd - 1 do
            let g = ga.Group_analysis.dim_of_stage.(m).(k) in
            let s = ga.Group_analysis.scales.(m).(g) in
            let elo, ehi = ga.Group_analysis.expansions.(m).(g) in
            let lo, hi = dim_bounds stage.Stage.dims.(k) in
            out "  %sint %s_lo%d = CLAMPI(FDIV(tlo%d - %d, %d), %d, %d);" ind (scratch sname) k g
              elo s lo hi;
            out "  %sint %s_hi%d = CLAMPI(CDIV(thi%d + %d, %d), %d, %d);" ind (scratch sname) k g
              ehi s lo hi
          done;
          let liveout = ga.Group_analysis.liveouts.(m) in
          for k = own_nd - 1 downto 0 do
            if k = own_nd - 1 then out "  %sint %s_st%d = 1;" ind (scratch sname) k
            else
              out "  %sint %s_st%d = %s_st%d * (%s_hi%d - %s_lo%d + 1);" ind (scratch sname) k
                (scratch sname) (k + 1) (scratch sname) (k + 1) (scratch sname) (k + 1)
          done;
          for k = 0 to own_nd - 1 do
            if k = own_nd - 1 then out "%s" "#pragma ivdep";
            out "  %s%sfor (int %s = %s_lo%d; %s <= %s_hi%d; %s++) {" ind
              (String.make (2 * k) ' ') (var_name k) (scratch sname) k (var_name k)
              (scratch sname) k (var_name k)
          done;
          let inner_ind = ind ^ String.make (2 * own_nd) ' ' in
          let ctx = { p; ga; member = m; in_group; f64 = true } in
          ignore ctx.member;
          let dest =
            let parts =
              List.init own_nd (fun d ->
                  spf "(%s - %s_lo%d) * %s_st%d" (var_name d) (scratch sname) d (scratch sname) d)
            in
            spf "%s[%s]" (scratch sname) (String.concat " + " parts)
          in
          (match stage.Stage.def with
          | Stage.Pointwise body -> out "  %s%s = %s;" inner_ind dest (expr_to_c ctx body)
          | Stage.Reduction { op; init; rdom; body } ->
              out "  %sdouble acc = %s;" inner_ind (double_lit init);
              Array.iteri
                (fun r (lo, ext) ->
                  out "  %sfor (int %s = %d; %s < %d; %s++) {" inner_ind
                    (var_name (own_nd + r)) lo (var_name (own_nd + r)) (lo + ext)
                    (var_name (own_nd + r)))
                rdom;
              let acc_op =
                match op with
                | Stage.Rsum -> spf "acc += %s;" (expr_to_c ctx body)
                | Stage.Rmax -> spf "acc = fmax(acc, %s);" (expr_to_c ctx body)
                | Stage.Rmin -> spf "acc = fmin(acc, %s);" (expr_to_c ctx body)
              in
              out "  %s  %s" inner_ind acc_op;
              Array.iteri (fun _ _ -> out "  %s}" inner_ind) rdom;
              out "  %s%s = acc;" inner_ind dest);
          for k = own_nd - 1 downto 0 do
            out "  %s%s}" ind (String.make (2 * k) ' ')
          done;
          if liveout then begin
            out "  %s// copy exact tile of %s to its full buffer" ind sname;
            for k = 0 to own_nd - 1 do
              let g = ga.Group_analysis.dim_of_stage.(m).(k) in
              let s = ga.Group_analysis.scales.(m).(g) in
              let dlo, dhi = dim_bounds stage.Stage.dims.(k) in
              out "  %sint cp_%s_lo%d = CDIV(tlo%d, %d); if (cp_%s_lo%d < %d) cp_%s_lo%d = %d;"
                ind sname k g s sname k dlo sname k dlo;
              out "  %sint cp_%s_hi%d = FDIV(thi%d, %d); if (cp_%s_hi%d > %d) cp_%s_hi%d = %d;"
                ind sname k g s sname k dhi sname k dhi
            done;
            let dims = stage.Stage.dims in
            let nown = Array.length dims in
            let stride = Array.make nown 1 in
            for d = nown - 2 downto 0 do
              stride.(d) <- stride.(d + 1) * dims.(d + 1).Stage.extent
            done;
            for k = 0 to own_nd - 1 do
              out "  %s%sfor (int %s = cp_%s_lo%d; %s <= cp_%s_hi%d; %s++) {" ind
                (String.make (2 * k) ' ') (var_name k) sname k (var_name k) sname k (var_name k)
            done;
            let buf_idx =
              String.concat " + "
                (List.init nown (fun d ->
                     spf "(%s - %d) * %d" (var_name d) dims.(d).Stage.lo stride.(d)))
            in
            let scr_idx =
              String.concat " + "
                (List.init own_nd (fun d ->
                     spf "(%s - %s_lo%d) * %s_st%d" (var_name d) (scratch sname) d (scratch sname) d))
            in
            out "  %s%s[%s] = %s[%s];" inner_ind (buf sname) buf_idx (scratch sname) scr_idx;
            for k = own_nd - 1 downto 0 do
              out "  %s%s}" ind (String.make (2 * k) ' ')
            done
          end)
        ga.Group_analysis.members;
      for d = nd - 1 downto 0 do
        out "  %s}  // tile-space loop t%d" (String.make (2 * d) ' ') d
      done;
      Array.iter
        (fun sid -> out "  free(%s);" (scratch (Pipeline.stage p sid).Stage.name))
        ga.Group_analysis.members;
      out "  }  // omp parallel";
      out "}";
      out "")
    ir.Pmdp_plan.groups;
  Buffer.contents b

let emit_with_harness (spec : Schedule_spec.t) =
  let p = spec.Schedule_spec.pipeline in
  let b = Buffer.create (64 * 1024) in
  Buffer.add_string b (emit spec);
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  out "";
  out "#include <stdio.h>";
  out "#include <stdlib.h>";
  out "static float *read_bin(const char *path, long n) {";
  out "  FILE *f = fopen(path, \"rb\");";
  out "  if (!f) { fprintf(stderr, \"cannot open %%s\\n\", path); exit(2); }";
  out "  float *data = (float *) malloc(n * sizeof(float));";
  out "  if (fread(data, sizeof(float), n, f) != (size_t) n) exit(3);";
  out "  fclose(f);";
  out "  return data;";
  out "}";
  out "static void write_bin(const char *path, const float *data, long n) {";
  out "  FILE *f = fopen(path, \"wb\");";
  out "  if (!f) exit(4);";
  out "  fwrite(data, sizeof(float), n, f);";
  out "  fclose(f);";
  out "}";
  out "int main(void) {";
  Array.iter
    (fun (i : Pipeline.input) ->
      let n = dims_size i.Pipeline.in_dims in
      out "  float *%s = read_bin(\"%s.bin\", %d);" (buf i.Pipeline.in_name) i.Pipeline.in_name n)
    p.Pipeline.inputs;
  out "  pipeline_%s(%s);" p.Pipeline.name
    (String.concat ", "
       (Array.to_list (Array.map (fun (i : Pipeline.input) -> buf i.Pipeline.in_name) p.Pipeline.inputs)));
  List.iter
    (fun sid ->
      let stage = Pipeline.stage p sid in
      out "  write_bin(\"%s.out.bin\", %s, %d);" stage.Stage.name (buf stage.Stage.name)
        (Stage.domain_points stage))
    p.Pipeline.outputs;
  out "  return 0;";
  out "}";
  Buffer.contents b

(** The bounds checker (pass 2 of [pmdp check]).

    Interval analysis over every stage's affine accesses, per group of
    the schedule:

    - [out-of-domain]: a stage-to-stage read whose index interval
      (over the consumer's whole iteration domain) never intersects
      the producer's domain along some dimension — the read can only
      ever observe boundary-clamped values, which is always a bug.
    - [region-containment]: for every tile of the group's tile grid,
      every in-group read (domain-clamped, as executed) must land
      inside the producer's overlap-expanded, domain-clamped per-tile
      region — the guarantee the paper's Alg. 2 line 2 assumes.
      Verified tile by tile at the interval endpoints (the access map
      is monotone, so endpoints realize the extremes).
    - [scratch-overflow]: the per-tile region extents of every member
      must fit the scratch allocations both executors derive — the
      runtime arena of {!Pmdp_exec.Tiled_exec} and the on-stack
      scratch arrays sized by {!Pmdp_codegen.C_emit} — for every tile
      position, proving the emitted [float scr[N]] never overflows. *)

val check : Pmdp_core.Schedule_spec.t -> Diagnostic.t list

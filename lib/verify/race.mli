(** The race detector (pass 3 of [pmdp check]).

    Tiles of a group run in parallel on the domains pool, so the
    write-sets of distinct tile-space iterations must be provably
    disjoint, and together they must cover every output point exactly
    once.  Per live-out member the copy-out box of tile [t] along each
    dimension is the own-coordinate interval
    [\[ceil(tlo/s), floor(thi/s)\]] clamped into the member's domain;
    the boxes are rectangular, so per-dimension disjointness of
    consecutive tiles proves global disjointness.

    Diagnostic kinds:
    - [multi-writer]: one buffer written by more than one group (a
      stage duplicated across groups silently clobbers results).
    - [overlapping-writes]: two tiles of a group write a common point
      of a live-out buffer — a write-write race under the pool.
    - [uncovered-writes]: some point of a live-out buffer is written
      by no tile and would be returned uninitialized.

    {!Pmdp_core.Schedule_spec.validate} refuses schedules with any of
    these once {!Verify.install} has registered the oracle, which is
    how {!Pmdp_exec.Tiled_exec.plan} rejects racy schedules. *)

val check : Pmdp_core.Schedule_spec.t -> Diagnostic.t list

type pass = Legality | Bounds | Race | Lint | Plan
type severity = Error | Warning

type t = {
  pass : pass;
  severity : severity;
  kind : string;
  group : int option;
  stage : string option;
  dim : int option;
  detail : string;
}

let make pass severity ~kind ?group ?stage ?dim detail =
  { pass; severity; kind; group; stage; dim; detail }

let pass_name = function
  | Legality -> "legality"
  | Bounds -> "bounds"
  | Race -> "race"
  | Lint -> "lint"
  | Plan -> "plan"

let severity_name = function Error -> "error" | Warning -> "warning"
let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let of_pass p ds = List.filter (fun d -> d.pass = p) ds

let pp ppf d =
  Format.fprintf ppf "%s %s/%s" (severity_name d.severity) (pass_name d.pass) d.kind;
  Option.iter (fun g -> Format.fprintf ppf " group=%d" g) d.group;
  Option.iter (fun s -> Format.fprintf ppf " stage=%s" s) d.stage;
  Option.iter (fun k -> Format.fprintf ppf " dim=%d" k) d.dim;
  Format.fprintf ppf ": %s" d.detail

let to_string d = Format.asprintf "%a" pp d

let pp_report ppf ds =
  let order = errors ds @ warnings ds in
  List.iter (fun d -> Format.fprintf ppf "%a@," pp d) order

let summary ds =
  Printf.sprintf "%d error(s), %d warning(s)" (List.length (errors ds))
    (List.length (warnings ds))

let to_json d =
  let module J = Pmdp_report.Json in
  let opt f = function Some v -> f v | None -> J.Null in
  J.Obj
    [
      ("severity", J.String (severity_name d.severity));
      ("pass", J.String (pass_name d.pass));
      ("failure_kind", J.String d.kind);
      ("group", opt (fun g -> J.Int g) d.group);
      ("stage", opt (fun s -> J.String s) d.stage);
      ("dim", opt (fun k -> J.Int k) d.dim);
      ("detail", J.String d.detail);
    ]

(** Top-level entry points of the static checker.

    [check_schedule] runs all four passes — {!Legality}, {!Bounds},
    {!Race}, and {!Lint} — over a schedule produced by any scheduler,
    without executing it.  [check_pipeline] runs only the
    schedule-independent lint.  A schedule is considered acceptable
    when it has no [Error]-severity diagnostics ({!is_clean});
    warnings are advisory (performance pathologies and dead code).

    [install] registers the legality + race passes as
    {!Pmdp_core.Schedule_spec}'s legality oracle, after which
    [Schedule_spec.validate] — and therefore
    {!Pmdp_exec.Tiled_exec.plan} and {!Pmdp_codegen.C_emit.emit},
    which validate on entry — refuses illegal or racy schedules. *)

val check_pipeline : Pmdp_dsl.Pipeline.t -> Diagnostic.t list
val check_schedule : Pmdp_core.Schedule_spec.t -> Diagnostic.t list

val errors : Diagnostic.t list -> Diagnostic.t list
val is_clean : Diagnostic.t list -> bool

val check_schedule_result : Pmdp_core.Schedule_spec.t -> (unit, Pmdp_util.Pmdp_error.t) result
(** [check_schedule] folded into the execution stack's typed error
    taxonomy: [Ok ()] when no error-severity diagnostics, otherwise a
    [Plan_invalid] carrying the first diagnostic and the error count —
    the same shape {!Pmdp_exec.Resilient} records, so static rejection
    and runtime rejection render identically in reports. *)

val check_plan :
  ?budget:int -> ?workers:int -> Pmdp_dsl.Pipeline.t -> Pmdp_plan.t -> Diagnostic.t list
(** The whole-plan static analyzer ({!Plan_check.check}) over the
    serializable plan IR: structure/partition fit, tile-coverage and
    bounds soundness, scratch-extent cross-checks against the
    interpreter and the C backend, lowered-level dependence audit, and
    the static memory-budget audit (with [budget], mirroring the
    service's admission formula for [workers] workers). *)

val check_plan_result :
  ?budget:int ->
  ?workers:int ->
  Pmdp_dsl.Pipeline.t ->
  Pmdp_plan.t ->
  (unit, Pmdp_util.Pmdp_error.t) result
(** [check_plan] folded into the typed error taxonomy, like
    {!check_schedule_result}. *)

val install : unit -> unit
(** Register the legality + race error oracle with
    [Schedule_spec.set_legality_oracle]. *)

val uninstall : unit -> unit

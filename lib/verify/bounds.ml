module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage
module Expr = Pmdp_dsl.Expr
module GA = Pmdp_analysis.Group_analysis
module Footprint = Pmdp_analysis.Footprint
module Schedule_spec = Pmdp_core.Schedule_spec
module D = Diagnostic

let err = D.make D.Bounds D.Error

let ceil_div a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)
let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let clamp x lo hi = if x < lo then lo else if x > hi then hi else x

(* A read whose index interval never meets the producer's domain can
   only observe boundary-clamped values: flag it.  Partial overshoot
   is the normal stencil-boundary case and is not flagged. *)
let domain_diags p gi (ga : GA.t) =
  let diags = ref [] in
  Array.iteri
    (fun _ sid ->
      let cstage = Pipeline.stage p sid in
      let cname = cstage.Stage.name in
      List.iter
        (fun prod ->
          let pstage = Pipeline.stage p prod in
          List.iter
            (fun (coords : Expr.coord array) ->
              Array.iteri
                (fun dp coord ->
                  match coord with
                  | Expr.Cdyn _ -> ()
                  | Expr.Cvar { var; scale = a; offset = b } -> (
                      match Affine.var_domain cstage var with
                      | exception Invalid_argument _ -> ()
                      | clo, chi ->
                          let ilo, ihi = Affine.index_interval ~a ~b ~clo ~chi in
                          let d = pstage.Stage.dims.(dp) in
                          let dlo = d.Stage.lo and dhi = d.Stage.lo + d.Stage.extent - 1 in
                          if ihi < dlo || ilo > dhi then
                            diags :=
                              err ~kind:"out-of-domain" ~group:gi ~stage:cname ~dim:dp
                                (Printf.sprintf
                                   "reads %s at indices [%d, %d], entirely outside its domain [%d, %d]"
                                   pstage.Stage.name ilo ihi dlo dhi)
                              :: !diags))
                coords)
            (Pipeline.loads_between p ~consumer:sid ~producer:prod))
        (Pipeline.producers p sid))
    ga.GA.members;
  List.rev !diags

(* Exact per-tile interval model of the executor, per group dimension.

   The executors compute each member over the box
   [floor((tlo-elo)/s), ceil((thi+ehi)/s)] (clamped to the domain);
   edge points of that box may be garbage — their own reads can fall
   outside what the tile computed — but the copy-out takes only the
   exact tile points [ceil(tlo/s), floor(thi/s)].  So the invariant
   that must hold is: every copied-out point is *provably correct*,
   where a point is correct iff every in-group read it issues lands in
   the producer's correct sub-interval.  We compute that correct
   sub-interval exactly, member by member in execution order:

     correct(m) = computed-box(m) ∩ { c | forall reads (a,b) of p:
                                          floor(a*c+b) ∈ correct(p) }

   Since each access maps one consumer var to one producer dim, the
   model decomposes exactly per group dimension, and the inverse image
   of an interval under c ↦ floor(a*c+b) is an interval.

   Reads are border-clamped: {!Compile.read} clamps each index into
   the view's own box, and the reference executor clamps into the full
   domain.  An out-of-region read therefore still matches the
   reference when the region's edge coincides with the domain's edge
   (both clamp to the same point) and that edge point is itself
   correct — which is how tile 0 of a stencil stays exact at the
   image border. *)
let containment_diags p gi (ga : GA.t) ~tile =
  let diags = ref [] in
  let gdims = ga.GA.n_dims in
  let n = Array.length ga.GA.members in
  let local = Hashtbl.create 16 in
  Array.iteri (fun i sid -> Hashtbl.add local sid i) ga.GA.members;
  (* In-group read constraints per consumer member per group dim. *)
  let constraints : (int * Pmdp_util.Rational.t * Pmdp_util.Rational.t) list array array =
    Array.init n (fun _ -> Array.make gdims [])
  in
  let order_ok = ref true in
  Array.iteri
    (fun ci sid ->
      let cstage = Pipeline.stage p sid in
      let cnd = Stage.ndims cstage in
      List.iter
        (fun prod ->
          match Hashtbl.find_opt local prod with
          | None -> ()
          | Some pi ->
              if pi >= ci then begin
                (* run_tile resolves producer views by member order; a
                   producer at or after its consumer has no view yet *)
                order_ok := false;
                diags :=
                  err ~kind:"member-order" ~group:gi ~stage:cstage.Stage.name
                    (Printf.sprintf "in-group producer %s is not computed before its consumer"
                       (Pipeline.stage p prod).Stage.name)
                  :: !diags
              end
              else
                let pnd = Stage.ndims (Pipeline.stage p prod) in
                List.iter
                  (fun (coords : Expr.coord array) ->
                    Array.iteri
                      (fun dp coord ->
                        match coord with
                        | Expr.Cdyn _ -> ()
                        | Expr.Cvar { var = dc; scale = a; offset = b } ->
                            if dc < cnd then begin
                              let g = Affine.right_align ~gdims ~ndims:cnd dc in
                              if g = Affine.right_align ~gdims ~ndims:pnd dp then
                                constraints.(ci).(g) <- (pi, a, b) :: constraints.(ci).(g)
                            end)
                      coords)
                  (Pipeline.loads_between p ~consumer:sid ~producer:prod))
        (Pipeline.producers p sid))
    ga.GA.members;
  if !order_ok then begin
    let neg_inf = min_int / 2 and pos_inf = max_int / 2 in
    let unconstrained = (neg_inf, pos_inf) in
    let own_dim m g =
      let nd = Stage.ndims (Pipeline.stage p ga.GA.members.(m)) in
      let k = g - (gdims - nd) in
      if k >= 0 && k < nd then Some k else None
    in
    for g = 0 to gdims - 1 do
      let n_tiles = (GA.dim_extent ga g + tile.(g) - 1) / tile.(g) in
      let region = Array.make n unconstrained in
      let domain = Array.make n unconstrained in
      let correct = Array.make n unconstrained in
      let reported = Array.make n false in
      for t = 0 to n_tiles - 1 do
        let tlo = ga.GA.dim_lo.(g) + (t * tile.(g)) in
        let thi = min (tlo + tile.(g) - 1) ga.GA.dim_hi.(g) in
        for mi = 0 to n - 1 do
          match own_dim mi g with
          | None ->
              region.(mi) <- unconstrained;
              domain.(mi) <- unconstrained;
              correct.(mi) <- unconstrained
          | Some k ->
              let stage = Pipeline.stage p ga.GA.members.(mi) in
              let s = ga.GA.scales.(mi).(g) in
              let elo, ehi = ga.GA.expansions.(mi).(g) in
              let d = stage.Stage.dims.(k) in
              let dlo = d.Stage.lo and dhi = d.Stage.lo + d.Stage.extent - 1 in
              let rlo = clamp (floor_div (tlo - elo) s) dlo dhi
              and rhi = clamp (ceil_div (thi + ehi) s) dlo dhi in
              region.(mi) <- (rlo, rhi);
              domain.(mi) <- (dlo, dhi);
              let lo = ref rlo and hi = ref rhi in
              List.iter
                (fun (pi, a, b) ->
                  let plo, phi = correct.(pi) in
                  let prlo, prhi = region.(pi) in
                  let pdlo, pdhi = domain.(pi) in
                  (* A read at y < region-lo clamps to region-lo; the
                     reference clamps to domain-lo.  They agree (and
                     are correct) only when region-lo = domain-lo and
                     that point is itself correct — then any y below
                     is fine.  Symmetrically above. *)
                  let l = if prlo = pdlo && plo <= prlo && prlo <= phi then neg_inf else plo
                  and u = if prhi = pdhi && plo <= prhi && prhi <= phi then pos_inf else phi in
                  let r = Pmdp_util.Rational.of_int in
                  (* floor(a*c+b) >= l  <=>  a*c+b >= l
                     floor(a*c+b) <= u  <=>  a*c+b <  u+1 *)
                  match Pmdp_util.Rational.sign a with
                  | 1 ->
                      if l > neg_inf then begin
                        let cmin =
                          Pmdp_util.Rational.ceil
                            (Pmdp_util.Rational.div (Pmdp_util.Rational.sub (r l) b) a)
                        in
                        if cmin > !lo then lo := cmin
                      end;
                      if u < pos_inf then begin
                        let cmax =
                          Pmdp_util.Rational.ceil
                            (Pmdp_util.Rational.div (Pmdp_util.Rational.sub (r (u + 1)) b) a)
                          - 1
                        in
                        if cmax < !hi then hi := cmax
                      end
                  | -1 ->
                      if u < pos_inf then begin
                        let cmin =
                          Pmdp_util.Rational.floor
                            (Pmdp_util.Rational.div (Pmdp_util.Rational.sub (r (u + 1)) b) a)
                          + 1
                        in
                        if cmin > !lo then lo := cmin
                      end;
                      if l > neg_inf then begin
                        let cmax =
                          Pmdp_util.Rational.floor
                            (Pmdp_util.Rational.div (Pmdp_util.Rational.sub (r l) b) a)
                        in
                        if cmax < !hi then hi := cmax
                      end
                  | _ ->
                      let v = Pmdp_util.Rational.floor b in
                      if v < l || v > u then hi := !lo - 1)
                constraints.(mi).(g);
              correct.(mi) <- (!lo, !hi);
              if ga.GA.liveouts.(mi) && not reported.(mi) then begin
                let exact_lo = max dlo (ceil_div tlo s)
                and exact_hi = min dhi (floor_div thi s) in
                if exact_lo <= exact_hi && not (!lo <= exact_lo && exact_hi <= !hi) then begin
                  reported.(mi) <- true;
                  diags :=
                    err ~kind:"region-containment" ~group:gi ~stage:stage.Stage.name ~dim:g
                      (Printf.sprintf
                         "tile %d: copied-out points [%d, %d] exceed the provably-correct region [%d, %d]"
                         t exact_lo exact_hi !lo !hi)
                    :: !diags
                end
              end
        done
      done
    done
  end;
  List.rev !diags

(* The largest per-tile region extent of each member, per own dim,
   must fit both executors' scratch allocations. *)
let scratch_diags p gi (ga : GA.t) ~tile =
  let diags = ref [] in
  Array.iteri
    (fun m sid ->
      let stage = Pipeline.stage p sid in
      let own_nd = Stage.ndims stage in
      let exec_alloc = Pmdp_exec.Tiled_exec.member_scratch_extents ga ~member:m ~tile in
      let c_alloc = Pmdp_codegen.C_emit.scratch_alloc_extents ga ~member:m ~tile in
      for k = 0 to own_nd - 1 do
        let g = ga.GA.dim_of_stage.(m).(k) in
        let s = ga.GA.scales.(m).(g) in
        let elo, ehi = ga.GA.expansions.(m).(g) in
        let d = stage.Stage.dims.(k) in
        let dlo = d.Stage.lo and dhi = d.Stage.lo + d.Stage.extent - 1 in
        let n_tiles = (GA.dim_extent ga g + tile.(g) - 1) / tile.(g) in
        let widest = ref 0 in
        for t = 0 to n_tiles - 1 do
          let tlo = ga.GA.dim_lo.(g) + (t * tile.(g)) in
          let thi = min (tlo + tile.(g) - 1) ga.GA.dim_hi.(g) in
          let lo = clamp (floor_div (tlo - elo) s) dlo dhi in
          let hi = clamp (ceil_div (thi + ehi) s) dlo dhi in
          if hi - lo + 1 > !widest then widest := hi - lo + 1
        done;
        if !widest > exec_alloc.(k) then
          diags :=
            err ~kind:"scratch-overflow" ~group:gi ~stage:stage.Stage.name ~dim:k
              (Printf.sprintf
                 "region extent %d exceeds the runtime arena allocation %d" !widest
                 exec_alloc.(k))
            :: !diags;
        if !widest > c_alloc.(k) then
          diags :=
            err ~kind:"scratch-overflow" ~group:gi ~stage:stage.Stage.name ~dim:k
              (Printf.sprintf
                 "region extent %d exceeds the generated C scratch allocation %d" !widest
                 c_alloc.(k))
            :: !diags
      done)
    ga.GA.members;
  List.rev !diags

let check (spec : Schedule_spec.t) =
  let p = spec.Schedule_spec.pipeline in
  List.concat
    (List.mapi
       (fun gi (g : Schedule_spec.group) ->
         if
           not
             (List.for_all
                (fun sid -> sid >= 0 && sid < Pipeline.n_stages p)
                g.Schedule_spec.stages)
         then []
         else
           match GA.analyze p g.Schedule_spec.stages with
           | Error _ -> []  (* the legality pass reports this *)
           | Ok ga ->
               let dd = domain_diags p gi ga in
               if Array.length g.Schedule_spec.tile_sizes <> ga.GA.n_dims then dd
               else begin
                 let tile = Footprint.clamp_tile ga g.Schedule_spec.tile_sizes in
                 dd @ containment_diags p gi ga ~tile @ scratch_diags p gi ga ~tile
               end)
       spec.Schedule_spec.groups)

(** The DSL lint (pass 4 of [pmdp check]).

    Schedule-independent checks over the pipeline program itself,
    re-derived without trusting {!Pmdp_dsl.Pipeline.build}'s own
    validation:

    - [unused-stage] (warning): a stage from which no pipeline output
      is reachable — dead computation.
    - [unreachable-output] (warning): an output that depends on no
      pipeline input — it is a constant image.
    - [dim-mismatch]: a load whose coordinate count differs from the
      producer's dimensionality.
    - [unknown-producer]: a load naming neither a stage nor an input.
    - [var-out-of-range]: a coordinate using an iteration variable the
      consuming stage does not have.
    - [const-out-of-domain]: an access to a pipeline input whose index
      interval never meets the input's domain along some dimension.

    [check_schedule] additionally lints against the grouping:
    - [non-affine-in-group]: a data-dependent ([Cdyn]) access between
      two stages of the same fused group — such an edge has no
      constant dependence vector, so the group cannot be legally
      overlap-tiled. *)

val check_pipeline : Pmdp_dsl.Pipeline.t -> Diagnostic.t list
val check_schedule : Pmdp_core.Schedule_spec.t -> Diagnostic.t list
(** [check_pipeline] of the schedule's pipeline plus the
    schedule-aware lints. *)

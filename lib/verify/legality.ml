module Rational = Pmdp_util.Rational
module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage
module Expr = Pmdp_dsl.Expr
module GA = Pmdp_analysis.Group_analysis
module Footprint = Pmdp_analysis.Footprint
module Schedule_spec = Pmdp_core.Schedule_spec
module D = Diagnostic

let err = D.make D.Legality D.Error
let warn = D.make D.Legality D.Warning

let stage_name p sid = (Pipeline.stage p sid).Stage.name

let in_range p sid = sid >= 0 && sid < Pipeline.n_stages p

(* The grouping must be a partition of the pipeline's stage ids. *)
let partition_diags (spec : Schedule_spec.t) =
  let p = spec.Schedule_spec.pipeline in
  let n = Pipeline.n_stages p in
  let count = Array.make n 0 in
  let diags = ref [] in
  List.iteri
    (fun gi (g : Schedule_spec.group) ->
      List.iter
        (fun sid ->
          if not (in_range p sid) then
            diags := err ~kind:"partition" ~group:gi
                       (Printf.sprintf "stage id %d out of range [0, %d)" sid n)
                     :: !diags
          else count.(sid) <- count.(sid) + 1)
        g.Schedule_spec.stages)
    spec.Schedule_spec.groups;
  Array.iteri
    (fun sid c ->
      if c = 0 then
        diags := err ~kind:"partition" ~stage:(stage_name p sid)
                   "stage missing from the grouping" :: !diags
      else if c > 1 then
        diags := err ~kind:"partition" ~stage:(stage_name p sid)
                   (Printf.sprintf "stage appears in %d groups" c) :: !diags)
    count;
  List.rev !diags

(* Groups must be listed producers-before-consumers. *)
let order_diags (spec : Schedule_spec.t) =
  let p = spec.Schedule_spec.pipeline in
  let n = Pipeline.n_stages p in
  let seen = Array.make n false in
  let diags = ref [] in
  List.iteri
    (fun gi (g : Schedule_spec.group) ->
      let here sid = List.mem sid g.Schedule_spec.stages in
      List.iter
        (fun sid ->
          if in_range p sid then
            List.iter
              (fun prod ->
                if (not seen.(prod)) && not (here prod) then
                  diags := err ~kind:"group-order" ~group:gi ~stage:(stage_name p sid)
                             (Printf.sprintf "consumes %s, which is scheduled later"
                                (stage_name p prod))
                           :: !diags)
              (Pipeline.producers p sid))
        g.Schedule_spec.stages;
      List.iter (fun sid -> if in_range p sid then seen.(sid) <- true) g.Schedule_spec.stages)
    spec.Schedule_spec.groups;
  List.rev !diags

(* One in-group access, resolved to local member indices. *)
type access = { pi : int; ci : int; coords : Expr.coord array }

let group_accesses p (ga : GA.t) =
  let local = Hashtbl.create 16 in
  Array.iteri (fun i sid -> Hashtbl.add local sid i) ga.GA.members;
  let acc = ref [] in
  Array.iteri
    (fun ci sid ->
      List.iter
        (fun prod ->
          match Hashtbl.find_opt local prod with
          | None -> ()
          | Some pi ->
              List.iter
                (fun coords -> acc := { pi; ci; coords } :: !acc)
                (Pipeline.loads_between p ~consumer:sid ~producer:prod))
        (Pipeline.producers p sid))
    ga.GA.members;
  List.rev !acc

(* Cross-check one analyzed group against its schedule entry. *)
let group_diags p gi (g : Schedule_spec.group) (ga : GA.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n = Array.length ga.GA.members in
  let gdims = ga.GA.n_dims in
  let name m = stage_name p ga.GA.members.(m) in
  (* --- tile-size sanity ------------------------------------------- *)
  let tiles = g.Schedule_spec.tile_sizes in
  let tiles_ok = ref true in
  if Array.length tiles <> gdims then begin
    tiles_ok := false;
    add
      (err ~kind:"tile-arity" ~group:gi
         (Printf.sprintf "tile array has %d entries, group iteration space has %d dims"
            (Array.length tiles) gdims))
  end
  else
    Array.iteri
      (fun d t ->
        if t <= 0 then begin
          tiles_ok := false;
          add (err ~kind:"tile-nonpositive" ~group:gi ~dim:d (Printf.sprintf "tile size %d" t))
        end
        else if t > GA.dim_extent ga d then
          add
            (err ~kind:"tile-exceeds-extent" ~group:gi ~dim:d
               (Printf.sprintf "tile size %d exceeds scaled extent %d" t (GA.dim_extent ga d))))
      tiles;
  (* --- scale positivity ------------------------------------------- *)
  Array.iteri
    (fun m row ->
      Array.iteri
        (fun d s ->
          if s < 1 then
            add
              (err ~kind:"scale-mismatch" ~group:gi ~stage:(name m) ~dim:d
                 (Printf.sprintf "non-positive integer scale %d" s)))
        row)
    ga.GA.scales;
  (* --- per-access re-derivation ----------------------------------- *)
  (* Exact dependence hulls per (producer, consumer) edge, built from
     residue-sampled offsets; used below to re-derive the expansions. *)
  let exact_hulls : (int * int, (int * int) array) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun { pi; ci; coords } ->
      let cstage = Pipeline.stage p ga.GA.members.(ci) in
      let pstage = Pipeline.stage p ga.GA.members.(pi) in
      let cnd = Stage.ndims cstage and pnd = Stage.ndims pstage in
      (* Offsets this one access realizes, per group dim; [None] means
         the access does not move along that dim (offset 0). *)
      let offs : (int * int) option array = Array.make gdims None in
      Array.iteri
        (fun dp coord ->
          match coord with
          | Expr.Cdyn _ ->
              add
                (err ~kind:"analysis-disagreement" ~group:gi ~stage:(name ci)
                   (Printf.sprintf "analysis accepted a dynamic access to %s" (name pi)))
          | Expr.Cvar { var = dc; scale = a; offset = b } ->
              if dc >= cnd then
                add
                  (err ~kind:"analysis-disagreement" ~group:gi ~stage:(name ci)
                     (Printf.sprintf "analysis accepted a reduction-variable access to %s"
                        (name pi)))
              else begin
                let g_c = Affine.right_align ~gdims ~ndims:cnd dc in
                let g_p = Affine.right_align ~gdims ~ndims:pnd dp in
                if g_c <> g_p then
                  add
                    (err ~kind:"alignment" ~group:gi ~stage:(name ci) ~dim:g_c
                       (Printf.sprintf
                          "access to %s maps consumer dim %d to group dim %d but producer dim %d to %d"
                          (name pi) dc g_c dp g_p))
                else begin
                  let s_c = ga.GA.scales.(ci).(g_c) and s_p = ga.GA.scales.(pi).(g_p) in
                  if not (Rational.equal (Rational.of_int s_c) (Rational.mul a (Rational.of_int s_p)))
                  then
                    add
                      (err ~kind:"scale-mismatch" ~group:gi ~stage:(name ci) ~dim:g_c
                         (Printf.sprintf "access to %s with factor %s: %d <> %s * %d" (name pi)
                            (Rational.to_string a) s_c (Rational.to_string a) s_p))
                  else begin
                    let clo, chi = Affine.var_domain cstage dc in
                    let olo, ohi = Affine.exact_offsets ~s_p ~s_c ~a ~b ~clo ~chi in
                    (* the analysis's per-edge hull must cover every
                       offset the access can actually realize *)
                    (match
                       List.find_opt
                         (fun (e : GA.edge) -> e.GA.e_producer = pi && e.GA.e_consumer = ci)
                         ga.GA.edges
                     with
                    | None ->
                        add
                          (err ~kind:"analysis-disagreement" ~group:gi ~stage:(name ci)
                             (Printf.sprintf "analysis records no edge for access to %s" (name pi)))
                    | Some e ->
                        let hlo, hhi = e.GA.hull.(g_c) in
                        if olo < hlo || ohi > hhi then
                          add
                            (err ~kind:"dependence-hull" ~group:gi ~stage:(name ci) ~dim:g_c
                               (Printf.sprintf
                                  "exact offsets [%d, %d] of access to %s escape analysis hull [%d, %d]"
                                  olo ohi (name pi) hlo hhi)));
                    offs.(g_c) <-
                      (match offs.(g_c) with
                      | None -> Some (olo, ohi)
                      | Some (lo, hi) -> Some (min lo olo, max hi ohi))
                  end
                end
              end)
        coords;
      (* Merge this access into the edge's exact hull: per-dim min/max
         over accesses, exactly as the analysis builds its hulls. *)
      let this = Array.map (Option.value ~default:(0, 0)) offs in
      match Hashtbl.find_opt exact_hulls (pi, ci) with
      | None -> Hashtbl.add exact_hulls (pi, ci) this
      | Some hull ->
          Array.iteri
            (fun d (olo, ohi) ->
              let lo, hi = hull.(d) in
              hull.(d) <- (min lo olo, max hi ohi))
            this)
    (group_accesses p ga);
  (* --- expansion soundness ----------------------------------------- *)
  (* Re-accumulate the overlap expansions each producer needs so that
     every in-group consumer's (analysis-sized) region finds its reads
     locally, using the exact hulls; the analysis's expansions must
     dominate them. *)
  let required = Array.init n (fun _ -> Array.make gdims (0, 0)) in
  for mi = n - 1 downto 0 do
    Hashtbl.iter
      (fun (pi, ci) hull ->
        if pi = mi then
          for d = 0 to gdims - 1 do
            let off_lo, off_hi = hull.(d) in
            let c_lo, c_hi = ga.GA.expansions.(ci).(d) in
            let r_lo, r_hi = required.(mi).(d) in
            required.(mi).(d) <-
              (max r_lo (max 0 (c_lo - off_lo)), max r_hi (max 0 (c_hi + off_hi)))
          done)
      exact_hulls
  done;
  for m = 0 to n - 1 do
    for d = 0 to gdims - 1 do
      let elo, ehi = ga.GA.expansions.(m).(d) in
      if elo < 0 || ehi < 0 then
        add
          (err ~kind:"expansion" ~group:gi ~stage:(name m) ~dim:d
             (Printf.sprintf "negative overlap expansion (%d, %d)" elo ehi));
      let r_lo, r_hi = required.(m).(d) in
      if elo < r_lo || ehi < r_hi then
        add
          (err ~kind:"expansion" ~group:gi ~stage:(name m) ~dim:d
             (Printf.sprintf
                "analysis expansion (%d, %d) does not cover required overlap (%d, %d)" elo ehi
                r_lo r_hi))
    done
  done;
  (* --- degenerate overlap trapezoids ------------------------------- *)
  if !tiles_ok then begin
    let tile = Footprint.clamp_tile ga tiles in
    for m = 0 to n - 1 do
      for d = 0 to gdims - 1 do
        let elo, ehi = ga.GA.expansions.(m).(d) in
        let extent = GA.dim_extent ga d in
        let n_tiles = (extent + tile.(d) - 1) / tile.(d) in
        if n_tiles > 1 && elo + ehi > 0 && elo + ehi >= tile.(d) then
          add
            (warn ~kind:"degenerate-overlap" ~group:gi ~stage:(name m) ~dim:d
               (Printf.sprintf
                  "overlap %d+%d is at least the tile width %d: each tile recomputes more than it produces"
                  elo ehi tile.(d)))
      done
    done
  end;
  List.rev !diags

let check (spec : Schedule_spec.t) =
  let p = spec.Schedule_spec.pipeline in
  let part = partition_diags spec in
  let order = order_diags spec in
  let per_group =
    List.concat
      (List.mapi
         (fun gi (g : Schedule_spec.group) ->
           if not (List.for_all (in_range p) g.Schedule_spec.stages) then []
             (* already reported as a partition error *)
           else
             match GA.analyze p g.Schedule_spec.stages with
             | Error f ->
                 [
                   err ~kind:"analysis-failed" ~group:gi
                     (Format.asprintf "%a" GA.pp_failure f);
                 ]
             | Ok ga -> group_diags p gi g ga)
         spec.Schedule_spec.groups)
  in
  part @ order @ per_group

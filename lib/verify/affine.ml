module Rational = Pmdp_util.Rational
module Stage = Pmdp_dsl.Stage

let right_align ~gdims ~ndims k = k + gdims - ndims

let var_domain (s : Stage.t) v =
  let nd = Stage.ndims s in
  if v < 0 then invalid_arg "Affine.var_domain: negative variable";
  if v < nd then begin
    let d = s.Stage.dims.(v) in
    (d.Stage.lo, d.Stage.lo + d.Stage.extent - 1)
  end
  else
    match s.Stage.def with
    | Stage.Reduction { rdom; _ } when v - nd < Array.length rdom ->
        let lo, ext = rdom.(v - nd) in
        (lo, lo + ext - 1)
    | _ -> invalid_arg "Affine.var_domain: variable out of range"

let eval_floor a b c = Rational.floor (Rational.add (Rational.mul a (Rational.of_int c)) b)

let index_interval ~a ~b ~clo ~chi =
  if clo > chi then invalid_arg "Affine.index_interval: empty range";
  let x = eval_floor a b clo and y = eval_floor a b chi in
  (min x y, max x y)

let exact_offsets ~s_p ~s_c ~a ~b ~clo ~chi =
  if clo > chi then invalid_arg "Affine.exact_offsets: empty range";
  let off c = (s_p * eval_floor a b c) - (s_c * c) in
  let period = a.Rational.den in
  let last_sample = min chi (clo + period - 1) in
  let lo = ref (off clo) and hi = ref (off clo) in
  let see v =
    if v < !lo then lo := v;
    if v > !hi then hi := v
  in
  for c = clo + 1 to last_sample do
    see (off c)
  done;
  see (off chi);
  (!lo, !hi)

module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage
module Expr = Pmdp_dsl.Expr
module Dag = Pmdp_dag.Dag
module Schedule_spec = Pmdp_core.Schedule_spec
module D = Diagnostic

let err = D.make D.Lint D.Error
let warn = D.make D.Lint D.Warning

let producer_ndims p name =
  match Array.find_opt (fun (i : Pipeline.input) -> i.Pipeline.in_name = name) p.Pipeline.inputs with
  | Some i -> Some (Array.length i.Pipeline.in_dims)
  | None -> (
      match Pipeline.stage_id p name with
      | sid -> Some (Stage.ndims (Pipeline.stage p sid))
      | exception Not_found -> None)

let check_pipeline (p : Pipeline.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n = Pipeline.n_stages p in
  (* Reachability-based dead-code checks. *)
  for sid = 0 to n - 1 do
    let sname = (Pipeline.stage p sid).Stage.name in
    let reaches_output =
      List.exists (fun o -> Dag.is_reachable p.Pipeline.dag ~src:sid ~dst:o) p.Pipeline.outputs
    in
    if not reaches_output then
      add (warn ~kind:"unused-stage" ~stage:sname "no pipeline output depends on this stage")
  done;
  let loads_inputs = Array.init n (fun sid -> Pipeline.input_loads p sid <> []) in
  List.iter
    (fun o ->
      let from_input =
        let rec depends sid seen =
          loads_inputs.(sid)
          || List.exists
               (fun pr -> (not (List.mem pr seen)) && depends pr (sid :: seen))
               (Pipeline.producers p sid)
        in
        depends o []
      in
      if not from_input then
        add
          (warn ~kind:"unreachable-output" ~stage:(Pipeline.stage p o).Stage.name
             "output depends on no pipeline input; it is a constant image"))
    p.Pipeline.outputs;
  (* Structural checks on every load of every stage body. *)
  for sid = 0 to n - 1 do
    let stage = Pipeline.stage p sid in
    let sname = stage.Stage.name in
    let n_vars = Stage.n_iter_vars stage in
    ignore
      (Expr.fold_loads
         (fun () name coords ->
           (match producer_ndims p name with
           | None ->
               add
                 (err ~kind:"unknown-producer" ~stage:sname
                    (Printf.sprintf "load of %S resolves to no stage or input" name))
           | Some nd ->
               if Array.length coords <> nd then
                 add
                   (err ~kind:"dim-mismatch" ~stage:sname
                      (Printf.sprintf "load of %s has %d coordinates, producer has %d dims" name
                         (Array.length coords) nd)));
           Array.iter
             (fun coord ->
               match coord with
               | Expr.Cdyn _ -> ()
               | Expr.Cvar { var; _ } ->
                   if var < 0 || var >= n_vars then
                     add
                       (err ~kind:"var-out-of-range" ~stage:sname
                          (Printf.sprintf "coordinate uses variable %d; stage has %d" var n_vars)))
             coords;
           ())
         () (Stage.body_expr stage))
  done;
  (* Input accesses that can never land inside the input's domain. *)
  for sid = 0 to n - 1 do
    let stage = Pipeline.stage p sid in
    List.iter
      (fun (name, (coords : Expr.coord array)) ->
        match Array.find_opt (fun (i : Pipeline.input) -> i.Pipeline.in_name = name) p.Pipeline.inputs with
        | None -> ()
        | Some input ->
            Array.iteri
              (fun d coord ->
                match coord with
                | Expr.Cdyn _ -> ()
                | Expr.Cvar { var; scale = a; offset = b } -> (
                    match Affine.var_domain stage var with
                    | exception Invalid_argument _ -> ()
                    | clo, chi ->
                        if d < Array.length input.Pipeline.in_dims then begin
                          let ilo, ihi = Affine.index_interval ~a ~b ~clo ~chi in
                          let dim = input.Pipeline.in_dims.(d) in
                          let dlo = dim.Stage.lo and dhi = dim.Stage.lo + dim.Stage.extent - 1 in
                          if ihi < dlo || ilo > dhi then
                            add
                              (err ~kind:"const-out-of-domain" ~stage:stage.Stage.name ~dim:d
                                 (Printf.sprintf
                                    "reads input %s at indices [%d, %d], entirely outside its domain [%d, %d]"
                                    name ilo ihi dlo dhi))
                        end))
              coords)
      (Pipeline.input_loads p sid)
  done;
  List.rev !diags

let check_schedule (spec : Schedule_spec.t) =
  let p = spec.Schedule_spec.pipeline in
  let diags = ref [] in
  List.iteri
    (fun gi (g : Schedule_spec.group) ->
      let members =
        List.filter (fun sid -> sid >= 0 && sid < Pipeline.n_stages p) g.Schedule_spec.stages
      in
      (* Tile-size smells: legal, but spatial locality is gone.  Needs
         the group's scaled iteration space, so skip groups the
         analysis rejects (legality reports those as errors). *)
      (match Pmdp_analysis.Group_analysis.analyze p members with
      | Error _ -> ()
      | Ok ga ->
          let gdims = ga.Pmdp_analysis.Group_analysis.n_dims in
          let tiles = g.Schedule_spec.tile_sizes in
          if Array.length tiles = gdims then
            Array.iteri
              (fun d t ->
                let extent = Pmdp_analysis.Group_analysis.dim_extent ga d in
                if d = gdims - 1 && t = 1 && extent > 1 then
                  diags :=
                    warn ~kind:"one-wide-innermost" ~group:gi ~dim:d
                      (Printf.sprintf
                         "tile is 1 wide along the innermost dimension (extent %d): no spatial \
                          locality or vectorization"
                         extent)
                    :: !diags;
                if t > extent then
                  diags :=
                    warn ~kind:"tile-oversized" ~group:gi ~dim:d
                      (Printf.sprintf
                         "tile size %d exceeds the iteration extent %d; lowering clamps it" t
                         extent)
                    :: !diags)
              tiles);
      List.iter
        (fun sid ->
          List.iter
            (fun prod ->
              if List.mem prod members then
                List.iter
                  (fun (coords : Expr.coord array) ->
                    if Array.exists (function Expr.Cdyn _ -> true | Expr.Cvar _ -> false) coords
                    then
                      diags :=
                        err ~kind:"non-affine-in-group" ~group:gi
                          ~stage:(Pipeline.stage p sid).Stage.name
                          (Printf.sprintf
                             "data-dependent access to in-group producer %s has no constant dependence vector"
                             (Pipeline.stage p prod).Stage.name)
                        :: !diags)
                  (Pipeline.loads_between p ~consumer:sid ~producer:prod))
            (Pipeline.producers p sid))
        members)
    spec.Schedule_spec.groups;
  check_pipeline p @ List.rev !diags

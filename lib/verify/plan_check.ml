module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage
module GA = Pmdp_analysis.Group_analysis
module Pmdp_error = Pmdp_util.Pmdp_error
module D = Diagnostic

let err = D.make D.Plan D.Error
let warn = D.make D.Plan D.Warning
let ceil_div a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)
let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

(* --- plan/pipeline fit + partition --------------------------------- *)

let structure_diags p (ir : Pmdp_plan.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if ir.Pmdp_plan.pipeline <> p.Pipeline.name then
    add
      (err ~kind:"pipeline-mismatch"
         (Printf.sprintf "plan is for pipeline %S, checking against %S" ir.Pmdp_plan.pipeline
            p.Pipeline.name));
  let n = Pipeline.n_stages p in
  if ir.Pmdp_plan.n_stages <> n then
    add
      (err ~kind:"pipeline-mismatch"
         (Printf.sprintf "plan claims %d stages, pipeline has %d" ir.Pmdp_plan.n_stages n));
  let count = Array.make n 0 in
  Array.iteri
    (fun gi (g : Pmdp_plan.group) ->
      Array.iter
        (fun (m : Pmdp_plan.member) ->
          if m.Pmdp_plan.sid < 0 || m.Pmdp_plan.sid >= n then
            add
              (err ~kind:"partition" ~group:gi
                 (Printf.sprintf "stage id %d out of range [0, %d)" m.Pmdp_plan.sid n))
          else count.(m.Pmdp_plan.sid) <- count.(m.Pmdp_plan.sid) + 1)
        g.Pmdp_plan.members)
    ir.Pmdp_plan.groups;
  Array.iteri
    (fun sid c ->
      let name = (Pipeline.stage p sid).Stage.name in
      if c = 0 then add (err ~kind:"partition" ~stage:name "stage missing from the plan")
      else if c > 1 then
        add (err ~kind:"partition" ~stage:name (Printf.sprintf "stage appears in %d groups" c)))
    count;
  (* The liveouts list is what the executor returns and the service
     reports; it must agree with the member flags, and every pipeline
     output must be materialized somewhere. *)
  let from_members =
    List.concat_map
      (fun (g : Pmdp_plan.group) ->
        List.filter_map
          (fun (m : Pmdp_plan.member) ->
            if m.Pmdp_plan.liveout then Some m.Pmdp_plan.name else None)
          (Array.to_list g.Pmdp_plan.members))
      (Array.to_list ir.Pmdp_plan.groups)
  in
  if from_members <> ir.Pmdp_plan.liveouts then
    add
      (err ~kind:"liveout-list"
         (Printf.sprintf "plan lists live-outs [%s] but member flags give [%s]"
            (String.concat "; " ir.Pmdp_plan.liveouts)
            (String.concat "; " from_members)));
  List.iter
    (fun o ->
      let name = (Pipeline.stage p o).Stage.name in
      if not (List.mem name from_members) then
        add (err ~kind:"output-not-liveout" ~stage:name "pipeline output is not materialized"))
    p.Pipeline.outputs;
  List.rev !diags

(* --- per-group checks over a reconstructed analysis ----------------- *)

(* Tile-coverage and bounds soundness: the tile grid must cover the
   group's scaled hull, and — since copy-out writes each member's
   exact per-tile box [ceil(tlo/s), floor(thi/s)] — the hull's image
   under that rounding must cover every member's own domain.  Tiles
   are disjoint contiguous intervals, so their rounded images are
   disjoint too: together these prove every output point is written
   exactly once. *)
let coverage_diags gi (g : Pmdp_plan.group) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  for d = 0 to g.Pmdp_plan.n_dims - 1 do
    let extent = g.Pmdp_plan.dim_hi.(d) - g.Pmdp_plan.dim_lo.(d) + 1 in
    let expect = (extent + g.Pmdp_plan.tile.(d) - 1) / g.Pmdp_plan.tile.(d) in
    if g.Pmdp_plan.tiles_per_dim.(d) <> expect then
      add
        (err ~kind:"tile-count" ~group:gi ~dim:d
           (Printf.sprintf "%d tiles of width %d over extent %d; %d needed"
              g.Pmdp_plan.tiles_per_dim.(d) g.Pmdp_plan.tile.(d) extent expect))
  done;
  let n_tiles = Array.fold_left ( * ) 1 g.Pmdp_plan.tiles_per_dim in
  if g.Pmdp_plan.n_tiles <> n_tiles then
    add
      (err ~kind:"tile-count" ~group:gi
         (Printf.sprintf "plan claims %d tiles, tile grid has %d" g.Pmdp_plan.n_tiles n_tiles));
  Array.iteri
    (fun m (mir : Pmdp_plan.member) ->
      (* hull envelope: group dims must span every member's scaled domain *)
      for d = 0 to g.Pmdp_plan.n_dims - 1 do
        if
          g.Pmdp_plan.scaled_lo.(m).(d) < g.Pmdp_plan.dim_lo.(d)
          || g.Pmdp_plan.scaled_hi.(m).(d) > g.Pmdp_plan.dim_hi.(d)
        then
          add
            (err ~kind:"hull" ~group:gi ~stage:mir.Pmdp_plan.name ~dim:d
               (Printf.sprintf "member's scaled domain [%d, %d] escapes group hull [%d, %d]"
                  g.Pmdp_plan.scaled_lo.(m).(d) g.Pmdp_plan.scaled_hi.(m).(d)
                  g.Pmdp_plan.dim_lo.(d) g.Pmdp_plan.dim_hi.(d)))
      done;
      if mir.Pmdp_plan.liveout then
        Array.iteri
          (fun k (lo, extent) ->
            let d = g.Pmdp_plan.dim_of_stage.(m).(k) in
            let s = g.Pmdp_plan.scales.(m).(d) in
            let covered_lo = ceil_div g.Pmdp_plan.dim_lo.(d) s
            and covered_hi = floor_div g.Pmdp_plan.dim_hi.(d) s in
            if covered_lo > lo || covered_hi < lo + extent - 1 then
              add
                (err ~kind:"coverage-gap" ~group:gi ~stage:mir.Pmdp_plan.name ~dim:k
                   (Printf.sprintf
                      "tiles copy out points [%d, %d] of a live-out whose domain is [%d, %d]"
                      covered_lo covered_hi lo (lo + extent - 1))))
          mir.Pmdp_plan.dims)
    g.Pmdp_plan.members;
  List.rev !diags

(* Scratch-extent consistency: the IR's claimed extents must equal the
   interpreter's arena-sizing formula and dominate the C backend's
   stack allocation, and the claimed arena sizes must follow. *)
let scratch_diags gi (g : Pmdp_plan.group) (ga : GA.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let tile = g.Pmdp_plan.tile in
  Array.iteri
    (fun m (mir : Pmdp_plan.member) ->
      let interp = Pmdp_exec.Tiled_exec.member_scratch_extents ga ~member:m ~tile in
      if mir.Pmdp_plan.scratch_extents <> interp then
        add
          (err ~kind:"scratch-extent" ~group:gi ~stage:mir.Pmdp_plan.name
             (Printf.sprintf "plan claims scratch extents [%s], executor formula gives [%s]"
                (String.concat "x"
                   (Array.to_list (Array.map string_of_int mir.Pmdp_plan.scratch_extents)))
                (String.concat "x" (Array.to_list (Array.map string_of_int interp)))));
      let cgen = Pmdp_codegen.C_emit.scratch_alloc_extents ga ~member:m ~tile in
      Array.iteri
        (fun k c ->
          if k < Array.length mir.Pmdp_plan.scratch_extents && c > mir.Pmdp_plan.scratch_extents.(k)
          then
            add
              (err ~kind:"scratch-extent" ~group:gi ~stage:mir.Pmdp_plan.name ~dim:k
                 (Printf.sprintf
                    "C backend allocates %d elements along dim %d, plan claims only %d" c k
                    mir.Pmdp_plan.scratch_extents.(k))))
        cgen;
      (* re-derive the direct flag the way the executor does *)
      let stage = Pipeline.stage ga.GA.pipeline mir.Pmdp_plan.sid in
      let direct = ref mir.Pmdp_plan.liveout in
      for k = 0 to Stage.ndims stage - 1 do
        let d = ga.GA.dim_of_stage.(m).(k) in
        let s = ga.GA.scales.(m).(d) in
        if
          ga.GA.expansions.(m).(d) <> (0, 0)
          || s <> 1
          || ga.GA.scaled_lo.(m).(d) <> ga.GA.dim_lo.(d)
          || ga.GA.scaled_hi.(m).(d) <> ga.GA.dim_hi.(d)
        then direct := false
      done;
      for d = 0 to ga.GA.n_dims - 1 do
        if ga.GA.expansions.(m).(d) <> (0, 0) then direct := false
      done;
      if mir.Pmdp_plan.direct <> !direct then
        add
          (err ~kind:"direct-flag" ~group:gi ~stage:mir.Pmdp_plan.name
             (Printf.sprintf "plan marks the member direct=%b, executor derives %b"
                mir.Pmdp_plan.direct !direct));
      let expect =
        if mir.Pmdp_plan.direct then 0
        else Array.fold_left ( * ) 1 mir.Pmdp_plan.scratch_extents
      in
      if mir.Pmdp_plan.max_scratch <> expect then
        add
          (err ~kind:"scratch-size" ~group:gi ~stage:mir.Pmdp_plan.name
             (Printf.sprintf "plan claims a %d-element arena, extents give %d"
                mir.Pmdp_plan.max_scratch expect)))
    g.Pmdp_plan.members;
  List.rev !diags

(* Dependence/race audit at the lowered level: within a group, every
   producer edge must point forward in member order (scratch is filled
   before it is read); across groups, producers must run in an earlier
   group and be materialized. *)
let dependence_diags p group_of liveout_of gi (g : Pmdp_plan.group) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n = Array.length g.Pmdp_plan.members in
  Array.iter
    (fun (e : Pmdp_plan.edge) ->
      if e.Pmdp_plan.e_producer >= e.Pmdp_plan.e_consumer then
        add
          (err ~kind:"dependence" ~group:gi
             ~stage:g.Pmdp_plan.members.(min e.Pmdp_plan.e_consumer (n - 1)).Pmdp_plan.name
             (Printf.sprintf
                "edge %d -> %d does not point forward in member order: consumer would read \
                 unwritten scratch"
                e.Pmdp_plan.e_producer e.Pmdp_plan.e_consumer));
      Array.iteri
        (fun d (lo, hi) ->
          if lo > hi then
            add
              (err ~kind:"hull" ~group:gi ~dim:d
                 (Printf.sprintf "edge %d -> %d has empty dependence hull [%d, %d]"
                    e.Pmdp_plan.e_producer e.Pmdp_plan.e_consumer lo hi)))
        e.Pmdp_plan.hull)
    g.Pmdp_plan.edges;
  Array.iteri
    (fun ci (mir : Pmdp_plan.member) ->
      List.iter
        (fun prod ->
          match group_of.(prod) with
          | None -> () (* already a partition error *)
          | Some gp when gp = gi ->
              let pi =
                let r = ref (-1) in
                Array.iteri
                  (fun m (x : Pmdp_plan.member) -> if x.Pmdp_plan.sid = prod then r := m)
                  g.Pmdp_plan.members;
                !r
              in
              if
                pi >= 0
                && not
                     (Array.exists
                        (fun (e : Pmdp_plan.edge) ->
                          e.Pmdp_plan.e_producer = pi && e.Pmdp_plan.e_consumer = ci)
                        g.Pmdp_plan.edges)
              then
                add
                  (err ~kind:"dependence" ~group:gi ~stage:mir.Pmdp_plan.name
                     (Printf.sprintf "no dependence edge for in-group producer %s"
                        (Pipeline.stage p prod).Stage.name))
          | Some gp ->
              let pname = (Pipeline.stage p prod).Stage.name in
              if gp > gi then
                add
                  (err ~kind:"group-order" ~group:gi ~stage:mir.Pmdp_plan.name
                     (Printf.sprintf "consumes %s, scheduled in later group %d" pname gp));
              if not liveout_of.(prod) then
                add
                  (err ~kind:"not-materialized" ~group:gi ~stage:mir.Pmdp_plan.name
                     (Printf.sprintf
                        "consumes %s from group %d, which never materializes it" pname gp)))
        (Pipeline.producers p mir.Pmdp_plan.sid))
    g.Pmdp_plan.members;
  List.rev !diags

(* Static memory-budget audit: recompute the two admission inputs from
   first principles and, when a budget is given, apply the service's
   admission formula (working set + per-worker scratch x workers). *)
let budget_diags ?budget ?(workers = 1) (ir : Pmdp_plan.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let ws =
    Array.fold_left
      (fun acc (g : Pmdp_plan.group) ->
        Array.fold_left
          (fun acc (m : Pmdp_plan.member) ->
            if m.Pmdp_plan.liveout then
              acc + (Array.fold_left (fun n (_, e) -> n * e) 1 m.Pmdp_plan.dims * 8)
            else acc)
          acc g.Pmdp_plan.members)
      0 ir.Pmdp_plan.groups
  in
  if ir.Pmdp_plan.working_set_bytes <> ws then
    add
      (err ~kind:"working-set"
         (Printf.sprintf "plan claims %d working-set bytes, live-out buffers total %d"
            ir.Pmdp_plan.working_set_bytes ws));
  let scratch =
    Array.fold_left
      (fun acc (g : Pmdp_plan.group) ->
        max acc
          (Array.fold_left
             (fun acc (m : Pmdp_plan.member) ->
               if m.Pmdp_plan.direct then acc else acc + (m.Pmdp_plan.max_scratch * 8))
             0 g.Pmdp_plan.members))
      0 ir.Pmdp_plan.groups
  in
  if ir.Pmdp_plan.scratch_bytes_per_worker <> scratch then
    add
      (err ~kind:"scratch-budget"
         (Printf.sprintf "plan claims %d scratch bytes per worker, arenas total %d"
            ir.Pmdp_plan.scratch_bytes_per_worker scratch));
  (match budget with
  | None -> ()
  | Some b ->
      let est = ws + (scratch * workers) in
      if est > b then
        add
          (err ~kind:"over-budget"
             (Printf.sprintf
                "estimated footprint %d bytes (%d working set + %d scratch x %d workers) \
                 exceeds budget %d"
                est ws scratch workers b)));
  List.rev !diags

(* Lints: performance pathologies that execute correctly. *)
let lint_diags gi (g : Pmdp_plan.group) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let nd = g.Pmdp_plan.n_dims in
  for d = 0 to nd - 1 do
    let extent = g.Pmdp_plan.dim_hi.(d) - g.Pmdp_plan.dim_lo.(d) + 1 in
    if d = nd - 1 && g.Pmdp_plan.tile.(d) = 1 && extent > 1 then
      add
        (warn ~kind:"one-wide-innermost" ~group:gi ~dim:d
           (Printf.sprintf
              "tile is 1 wide along the innermost dimension (extent %d): no spatial locality \
               or vectorization"
              extent));
    if g.Pmdp_plan.tile.(d) > extent then
      add
        (warn ~kind:"tile-oversized" ~group:gi ~dim:d
           (Printf.sprintf "tile size %d exceeds iteration extent %d" g.Pmdp_plan.tile.(d) extent))
  done;
  (* Dead scratch: a non-live-out member no in-group edge consumes
     fills an arena nothing ever reads. *)
  Array.iteri
    (fun m (mir : Pmdp_plan.member) ->
      if
        (not mir.Pmdp_plan.liveout)
        && not
             (Array.exists
                (fun (e : Pmdp_plan.edge) -> e.Pmdp_plan.e_producer = m)
                g.Pmdp_plan.edges)
      then
        add
          (warn ~kind:"dead-scratch" ~group:gi ~stage:mir.Pmdp_plan.name
             "scratch member has no in-group consumer; its arena is written but never read"))
    g.Pmdp_plan.members;
  List.rev !diags

let check ?budget ?workers p (ir : Pmdp_plan.t) =
  let structure = structure_diags p ir in
  let n = Pipeline.n_stages p in
  let group_of = Array.make n None and liveout_of = Array.make n false in
  Array.iteri
    (fun gi (g : Pmdp_plan.group) ->
      Array.iter
        (fun (m : Pmdp_plan.member) ->
          if m.Pmdp_plan.sid >= 0 && m.Pmdp_plan.sid < n then begin
            group_of.(m.Pmdp_plan.sid) <- Some gi;
            if m.Pmdp_plan.liveout then liveout_of.(m.Pmdp_plan.sid) <- true
          end)
        g.Pmdp_plan.members)
    ir.Pmdp_plan.groups;
  let per_group =
    List.concat
      (List.mapi
         (fun gi (g : Pmdp_plan.group) ->
           match Pmdp_plan.group_analysis p g with
           | exception Pmdp_error.Error (Pmdp_error.Plan_invalid { reason; _ }) ->
               [ err ~kind:"structure" ~group:gi reason ]
           | ga ->
               coverage_diags gi g
               @ scratch_diags gi g ga
               @ dependence_diags p group_of liveout_of gi g
               @ lint_diags gi g)
         (Array.to_list ir.Pmdp_plan.groups))
  in
  structure @ per_group @ budget_diags ?budget ?workers ir

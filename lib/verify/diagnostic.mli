(** Structured diagnostics shared by the static-checker passes.

    Every finding is attributed to a pass, has a stable kebab-case
    [kind] slug that tests and tooling can match on, a severity, and
    optional stage/group/dimension provenance.  The printed form is a
    stable one-line machine-readable format:

    {v <severity> <pass>/<kind> [group=N] [stage=S] [dim=D]: <detail> v} *)

type pass = Legality | Bounds | Race | Lint | Plan
type severity = Error | Warning

type t = {
  pass : pass;
  severity : severity;
  kind : string;  (** stable kebab-case slug, e.g. ["degenerate-overlap"] *)
  group : int option;  (** index into the schedule's group list *)
  stage : string option;
  dim : int option;  (** group dimension, unless [stage] implies own dims *)
  detail : string;  (** human-readable, single line *)
}

val make :
  pass ->
  severity ->
  kind:string ->
  ?group:int ->
  ?stage:string ->
  ?dim:int ->
  string ->
  t

val pass_name : pass -> string
val errors : t list -> t list
val warnings : t list -> t list
val of_pass : pass -> t list -> t list

val pp : Format.formatter -> t -> unit
(** The stable one-line format above. *)

val to_string : t -> string

val pp_report : Format.formatter -> t list -> unit
(** One diagnostic per line, errors first. *)

val summary : t list -> string
(** ["N error(s), M warning(s)"]. *)

val to_json : t -> Pmdp_report.Json.t
(** Machine-readable rendering for [pmdp check --json]: an object with
    [severity], [pass], [failure_kind] (the stable [kind] slug), the
    optional provenance fields ([null] when absent), and [detail]. *)

(** Exact interval arithmetic over the DSL's single-variable affine
    access coordinates, shared by the checker passes.

    All computations use the repository's exact rationals — no
    floating point — so the intervals are sound and tight. *)

val right_align : gdims:int -> ndims:int -> int -> int
(** Group dimension of a stage's [k]-th own dimension under the
    right-alignment convention of the scaling analysis. *)

val var_domain : Pmdp_dsl.Stage.t -> int -> int * int
(** Inclusive [(lo, hi)] domain of iteration variable [v] of a stage:
    its own dimension for [v < ndims], the reduction domain otherwise.
    @raise Invalid_argument if [v] is out of range. *)

val index_interval :
  a:Pmdp_util.Rational.t -> b:Pmdp_util.Rational.t -> clo:int -> chi:int -> int * int
(** Inclusive interval of [floor (a*c + b)] as [c] ranges over
    [\[clo, chi\]] (requires [clo <= chi]).  Exact: the map is
    monotone in [c], so the endpoints realize the extremes. *)

val exact_offsets :
  s_p:int ->
  s_c:int ->
  a:Pmdp_util.Rational.t ->
  b:Pmdp_util.Rational.t ->
  clo:int ->
  chi:int ->
  int * int
(** Inclusive interval of the scaled-space dependence offset
    [s_p * floor (a*c + b) - s_c * c] over [c] in [\[clo, chi\]].
    Exact when [s_c = a * s_p] (the scaling-consistency invariant):
    the offset is then periodic in [c] with period [den a], and every
    residue is sampled.  The endpoints are always included, so the
    result is still a sound under-approximation hull otherwise. *)

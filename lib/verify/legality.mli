(** The schedule-legality oracle (pass 1 of [pmdp check]).

    Independently re-derives the facts overlapped tiling depends on —
    partition/topology of the grouping, right-alignment, scaling
    consistency, exact scaled-space dependence offsets (by exhaustive
    residue sampling rather than the analytic interval formula of
    {!Pmdp_analysis.Group_analysis}), and the overlap expansions they
    force — and cross-checks them against what [Group_analysis]
    reports.  Any disagreement means one of the two code paths is
    wrong, exactly the class of silent scheduler bug the paper's
    Alg. 2 line 2 assumes away.

    Also flags tile-size pathologies: wrong arity, non-positive
    entries, entries exceeding the scaled extent, and degenerate
    overlap trapezoids (redundant recompute at least as wide as the
    tile itself).

    Diagnostic kinds: [partition], [group-order], [analysis-failed],
    [analysis-disagreement], [alignment], [scale-mismatch],
    [dependence-hull], [expansion], [tile-arity], [tile-nonpositive],
    [tile-exceeds-extent], [degenerate-overlap]. *)

val check : Pmdp_core.Schedule_spec.t -> Diagnostic.t list

module Schedule_spec = Pmdp_core.Schedule_spec

let check_pipeline = Lint.check_pipeline

let check_schedule spec =
  Legality.check spec @ Bounds.check spec @ Race.check spec @ Lint.check_schedule spec

let errors = Diagnostic.errors
let is_clean ds = errors ds = []

let check_schedule_result spec =
  match errors (check_schedule spec) with
  | [] -> Ok ()
  | d :: _ as errs ->
      Error
        (Pmdp_util.Pmdp_error.Plan_invalid
           {
             context = Printf.sprintf "Verify.check_schedule (%d error(s))" (List.length errs);
             reason = Diagnostic.to_string d;
           })

let check_plan = Plan_check.check

let check_plan_result ?budget ?workers p ir =
  match errors (check_plan ?budget ?workers p ir) with
  | [] -> Ok ()
  | d :: _ as errs ->
      Error
        (Pmdp_util.Pmdp_error.Plan_invalid
           {
             context = Printf.sprintf "Verify.check_plan (%d error(s))" (List.length errs);
             reason = Diagnostic.to_string d;
           })

let oracle spec =
  match errors (Legality.check spec @ Race.check spec) with
  | [] -> None
  | d :: _ -> Some (Diagnostic.to_string d)

let install () = Schedule_spec.set_legality_oracle (Some oracle)
let uninstall () = Schedule_spec.set_legality_oracle None

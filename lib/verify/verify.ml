module Schedule_spec = Pmdp_core.Schedule_spec

let check_pipeline = Lint.check_pipeline

let check_schedule spec =
  Legality.check spec @ Bounds.check spec @ Race.check spec @ Lint.check_schedule spec

let errors = Diagnostic.errors
let is_clean ds = errors ds = []

let oracle spec =
  match errors (Legality.check spec @ Race.check spec) with
  | [] -> None
  | d :: _ -> Some (Diagnostic.to_string d)

let install () = Schedule_spec.set_legality_oracle (Some oracle)
let uninstall () = Schedule_spec.set_legality_oracle None

module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage
module GA = Pmdp_analysis.Group_analysis
module Footprint = Pmdp_analysis.Footprint
module Schedule_spec = Pmdp_core.Schedule_spec
module D = Diagnostic

let err = D.make D.Race D.Error

let ceil_div a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)
let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

(* Which groups write each buffer.  Live-out status is re-derived
   directly from the pipeline (output, or consumed outside the group)
   so this works even for groups the dependence analysis rejects. *)
let multi_writer_diags (spec : Schedule_spec.t) =
  let p = spec.Schedule_spec.pipeline in
  let writers : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun gi (g : Schedule_spec.group) ->
      List.iter
        (fun sid ->
          if sid >= 0 && sid < Pipeline.n_stages p then begin
            let liveout =
              Pipeline.is_output p sid
              || List.exists
                   (fun c -> not (List.mem c g.Schedule_spec.stages))
                   (Pipeline.consumers p sid)
            in
            if liveout then begin
              let name = (Pipeline.stage p sid).Stage.name in
              let prev = Option.value ~default:[] (Hashtbl.find_opt writers name) in
              Hashtbl.replace writers name (gi :: prev)
            end
          end)
        g.Schedule_spec.stages)
    spec.Schedule_spec.groups;
  Hashtbl.fold
    (fun name groups acc ->
      match groups with
      | [] | [ _ ] -> acc
      | _ ->
          err ~kind:"multi-writer" ~stage:name
            (Printf.sprintf "buffer written by groups {%s}"
               (String.concat ","
                  (List.rev_map string_of_int groups)))
          :: acc)
    writers []

(* Per live-out member and dimension, walk the tile grid once: the
   copy-out intervals must be pairwise disjoint (they are monotone in
   the tile index, so consecutive disjointness suffices) and must
   cover the member's whole domain. *)
let tile_write_diags p gi (ga : GA.t) ~tile =
  let diags = ref [] in
  Array.iteri
    (fun m sid ->
      if ga.GA.liveouts.(m) then begin
        let stage = Pipeline.stage p sid in
        let own_nd = Stage.ndims stage in
        for k = 0 to own_nd - 1 do
          let g = ga.GA.dim_of_stage.(m).(k) in
          let s = ga.GA.scales.(m).(g) in
          let d = stage.Stage.dims.(k) in
          let dlo = d.Stage.lo and dhi = d.Stage.lo + d.Stage.extent - 1 in
          let n_tiles = (GA.dim_extent ga g + tile.(g) - 1) / tile.(g) in
          let prev_hi = ref (dlo - 1) in
          for t = 0 to n_tiles - 1 do
            let tlo = ga.GA.dim_lo.(g) + (t * tile.(g)) in
            let thi = min (tlo + tile.(g) - 1) ga.GA.dim_hi.(g) in
            let exact_lo = max dlo (ceil_div tlo s) in
            let exact_hi = min dhi (floor_div thi s) in
            if exact_hi >= exact_lo then begin
              if exact_lo <= !prev_hi then
                diags :=
                  err ~kind:"overlapping-writes" ~group:gi ~stage:stage.Stage.name ~dim:g
                    (Printf.sprintf
                       "tile %d writes own coords [%d, %d] but a previous tile already wrote up to %d"
                       t exact_lo exact_hi !prev_hi)
                  :: !diags
              else if exact_lo > !prev_hi + 1 then
                diags :=
                  err ~kind:"uncovered-writes" ~group:gi ~stage:stage.Stage.name ~dim:g
                    (Printf.sprintf "own coords [%d, %d] are written by no tile" (!prev_hi + 1)
                       (exact_lo - 1))
                  :: !diags;
              if exact_hi > !prev_hi then prev_hi := exact_hi
            end
          done;
          if !prev_hi < dhi then
            diags :=
              err ~kind:"uncovered-writes" ~group:gi ~stage:stage.Stage.name ~dim:g
                (Printf.sprintf "own coords [%d, %d] are written by no tile" (!prev_hi + 1) dhi)
              :: !diags
        done
      end)
    ga.GA.members;
  List.rev !diags

let check (spec : Schedule_spec.t) =
  let p = spec.Schedule_spec.pipeline in
  let per_group =
    List.concat
      (List.mapi
         (fun gi (g : Schedule_spec.group) ->
           if
             not
               (List.for_all
                  (fun sid -> sid >= 0 && sid < Pipeline.n_stages p)
                  g.Schedule_spec.stages)
           then []
           else
             match GA.analyze p g.Schedule_spec.stages with
             | Error _ -> []  (* the legality pass reports this *)
             | Ok ga ->
                 if Array.length g.Schedule_spec.tile_sizes <> ga.GA.n_dims then []
                 else
                   let tile = Footprint.clamp_tile ga g.Schedule_spec.tile_sizes in
                   tile_write_diags p gi ga ~tile)
         spec.Schedule_spec.groups)
  in
  multi_writer_diags spec @ per_group

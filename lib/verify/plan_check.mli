(** Whole-plan static analyzer over the serializable plan IR.

    The schedule-level passes ({!Legality}, {!Bounds}, {!Race},
    {!Lint}) see a {!Pmdp_core.Schedule_spec.t} — the input to
    lowering.  This pass audits the {e output} of lowering, a
    {!Pmdp_plan.t}, against the pipeline it claims to execute, so
    plans loaded from disk (or cached, or shipped) can be vetted
    without executing a single tile.  All diagnostics carry the
    {!Diagnostic.Plan} pass tag.

    Error kinds:
    - [pipeline-mismatch], [partition], [liveout-list],
      [output-not-liveout], [structure] — the plan does not fit the
      pipeline (stale or tampered IR);
    - [tile-count], [coverage-gap], [hull] — tile-coverage and bounds
      soundness: the tile grid must cover the group hull and the
      per-tile copy-out boxes must cover every live-out point exactly
      once;
    - [scratch-extent], [scratch-size], [direct-flag] — the IR's
      scratch claims cross-checked against
      {!Pmdp_exec.Tiled_exec.member_scratch_extents} (the arena the
      interpreter allocates) and
      {!Pmdp_codegen.C_emit.scratch_alloc_extents} (the stack array
      the C backend emits);
    - [dependence], [group-order], [not-materialized] — lowered-level
      dependence/race audit: in-group edges must point forward in
      member order, cross-group producers must run earlier and be
      materialized;
    - [working-set], [scratch-budget], [over-budget] — static
      memory-budget audit mirroring the service's admission formula
      [working_set + scratch_per_worker * workers <= budget].

    Warning kinds: [one-wide-innermost], [tile-oversized],
    [dead-scratch]. *)

val check :
  ?budget:int -> ?workers:int -> Pmdp_dsl.Pipeline.t -> Pmdp_plan.t -> Diagnostic.t list
(** Run every pass.  [budget]/[workers] (default 1) enable the
    admission check; without [budget] only the claim-consistency half
    of the budget audit runs. *)

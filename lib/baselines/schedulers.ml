module Scheduler = Pmdp_core.Scheduler
module Cost_model = Pmdp_core.Cost_model
module Pipeline = Pmdp_dsl.Pipeline
module Buffer = Pmdp_exec.Buffer
module Rng = Pmdp_util.Rng

(* Deterministic synthetic inputs for the autotuner's timing runs:
   the tuner only compares schedules of one pipeline against each
   other, so any well-formed input data works. *)
let synth_inputs (p : Pipeline.t) =
  Array.to_list
    (Array.map
       (fun (inp : Pipeline.input) ->
         let b = Buffer.create inp.Pipeline.in_name inp.Pipeline.in_dims in
         let rng = Rng.create 1 in
         Buffer.fill b (fun _ -> Rng.float rng 1.0);
         (inp.Pipeline.in_name, b))
       p.Pipeline.inputs)

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Scheduler.register Scheduler.Greedy (fun _config p ->
        Polymage_greedy.schedule { Polymage_greedy.tile = 64; overlap_threshold = 0.4 } p);
    Scheduler.register Scheduler.Halide (fun config p ->
        Halide_auto.schedule (Halide_auto.params_for config.Cost_model.machine) p);
    Scheduler.register Scheduler.Manual (fun _config p -> Manual.schedule p);
    Scheduler.register Scheduler.Autotune (fun _config p ->
        let inputs = synth_inputs p in
        let evaluate sched =
          let plan = Pmdp_exec.Tiled_exec.plan sched in
          let t0 = Unix.gettimeofday () in
          ignore (Pmdp_exec.Tiled_exec.run plan ~inputs);
          Unix.gettimeofday () -. t0
        in
        (Autotune.run ~evaluate p).Autotune.best)
  end

(** Plug the baseline schedulers into {!Pmdp_core.Scheduler}.

    [Pmdp_core] cannot depend on this library, so the [Greedy],
    [Autotune], [Halide], and [Manual] variants dispatch through a
    registry; [install] populates it.  Idempotent; call once at
    startup, next to [Pmdp_verify.Verify.install]. *)

val install : unit -> unit

(** First-class schedulers: the one entry point every driver —
    CLI, benchmark harness, and tests — uses to turn a pipeline into
    a {!Schedule_spec.t}.

    The paper's own schedulers ([Dp], [Dp_inc]) are implemented here
    in [Pmdp_core]; the baselines ([Greedy], [Autotune], [Halide],
    [Manual]) live in [Pmdp_baselines], which depends on this
    library, so they plug in through {!register} — call
    [Pmdp_baselines.Schedulers.install ()] once at startup (the same
    pattern as [Pmdp_verify.Verify.install]). *)

type t =
  | Dp  (** the paper's DP fusion + tile-size model (Alg. 1/2) *)
  | Dp_inc  (** bounded incremental DP (Alg. 3), for large graphs *)
  | Greedy  (** PolyMage's greedy heuristic with fixed parameters *)
  | Autotune  (** PolyMage-A: greedy swept by real execution time *)
  | Halide  (** the Halide auto-scheduler reimplementation *)
  | Manual  (** the expert Halide schedules of the paper's §6.1 *)

val all : t list
(** In the order above. *)

val to_string : t -> string
(** Canonical CLI name: "dp", "dp-inc", "greedy", "autotune",
    "halide", "manual". *)

val of_string : string -> t option
(** Case-insensitive inverse of {!to_string}. *)

val names : unit -> string
(** Comma-separated {!to_string} of {!all}, for usage messages. *)

val for_pipeline : t -> Pmdp_dsl.Pipeline.t -> t
(** [Dp] on pipelines of >= 30 stages becomes [Dp_inc] (the full DP's
    state space is intractable there — paper §5, Table 2); everything
    else is unchanged. *)

val schedule : t -> Cost_model.config -> Pmdp_dsl.Pipeline.t -> Schedule_spec.t
(** Run the scheduler.  [Autotune] executes candidate schedules to
    time them, so it is orders of magnitude slower than the rest.
    @raise Invalid_argument for a baseline scheduler whose
    implementation has not been registered. *)

type impl = Cost_model.config -> Pmdp_dsl.Pipeline.t -> Schedule_spec.t

val register : t -> impl -> unit
(** Provide (or replace) the implementation behind a scheduler
    variant.  Called by [Pmdp_baselines.Schedulers.install]. *)

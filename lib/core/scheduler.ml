type t = Dp | Dp_inc | Greedy | Autotune | Halide | Manual

let all = [ Dp; Dp_inc; Greedy; Autotune; Halide; Manual ]

let to_string = function
  | Dp -> "dp"
  | Dp_inc -> "dp-inc"
  | Greedy -> "greedy"
  | Autotune -> "autotune"
  | Halide -> "halide"
  | Manual -> "manual"

let of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun sch -> to_string sch = s) all

let names () = String.concat ", " (List.map to_string all)

type impl = Cost_model.config -> Pmdp_dsl.Pipeline.t -> Schedule_spec.t

let impls : (t * impl) list ref = ref []

let register sch impl = impls := (sch, impl) :: List.filter (fun (s, _) -> s <> sch) !impls

let for_pipeline sch p =
  match sch with
  | Dp when Pmdp_dsl.Pipeline.n_stages p >= 30 -> Dp_inc
  | sch -> sch

let schedule sch config p =
  match sch with
  | Dp -> fst (Schedule_spec.dp config p)
  | Dp_inc ->
      let inc = Inc_grouping.run ~initial_limit:8 ~config p in
      Schedule_spec.of_grouping config p inc.Inc_grouping.groups
  | sch -> (
      match List.assoc_opt sch !impls with
      | Some impl -> impl config p
      | None ->
          invalid_arg
            (Printf.sprintf
               "Scheduler.schedule: %s has no registered implementation (call \
                Pmdp_baselines.Schedulers.install ())"
               (to_string sch)))

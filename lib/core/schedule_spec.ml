module Pipeline = Pmdp_dsl.Pipeline
module Dag = Pmdp_dag.Dag
module Group_analysis = Pmdp_analysis.Group_analysis
module Footprint = Pmdp_analysis.Footprint

type group = { stages : int list; tile_sizes : int array }
type t = { pipeline : Pipeline.t; groups : group list }

let check_partition p groups =
  let all = List.sort compare (List.concat groups) in
  if all <> List.init (Pipeline.n_stages p) Fun.id then
    invalid_arg "Schedule_spec: grouping is not a partition of the pipeline stages"

(* Order groups topologically (producers before consumers). *)
let topo_groups p (groups : group list) =
  let arr = Array.of_list groups in
  let color = Array.make (Pipeline.n_stages p) 0 in
  Array.iteri (fun gi g -> List.iter (fun s -> color.(s) <- gi) g.stages) arr;
  let qdag, _ = Dag.quotient p.Pipeline.dag color in
  let order = Dag.topo_sort qdag in
  List.map (fun gi -> arr.(gi)) order

let default_tiles_for config p stages =
  let v = Cost_model.cost config p stages in
  if v.Cost_model.cost < infinity then Some v.Cost_model.tile_sizes else None

let rec assign config p stages =
  match default_tiles_for config p stages with
  | Some tiles -> [ { stages; tile_sizes = tiles } ]
  | None -> (
      match stages with
      | [ _ ] ->
          (* A singleton is always analyzable; if the cost model ever
             returns infinity here it is a bug upstream. *)
          invalid_arg "Schedule_spec: singleton stage deemed unfusable"
      | _ -> List.concat_map (fun s -> assign config p [ s ]) stages)

let of_grouping config p grouping =
  check_partition p grouping;
  let groups = List.concat_map (fun g -> assign config p g) grouping in
  { pipeline = p; groups = topo_groups p groups }

let fit_tiles (ga : Group_analysis.t) tiles =
  let n = ga.Group_analysis.n_dims in
  let fitted =
    Array.init n (fun g ->
        let from_end = n - 1 - g in
        let src = Array.length tiles - 1 - from_end in
        if src >= 0 then tiles.(src) else Group_analysis.dim_extent ga g)
  in
  Footprint.clamp_tile ga fitted

let rec with_tiles_group p (stages, tiles) =
  match Group_analysis.analyze p stages with
  | Ok ga -> [ { stages; tile_sizes = fit_tiles ga tiles } ]
  | Error _ -> (
      match stages with
      | [ _ ] -> invalid_arg "Schedule_spec: singleton stage failed analysis"
      | _ -> List.concat_map (fun s -> with_tiles_group p ([ s ], tiles)) stages)

let with_tiles p specs =
  check_partition p (List.map fst specs);
  let groups = List.concat_map (with_tiles_group p) specs in
  { pipeline = p; groups = topo_groups p groups }

let dp config p =
  let outcome = Dp_grouping.run ~config p in
  (of_grouping config p outcome.Dp_grouping.groups, outcome)

let n_groups t = List.length t.groups

(* Optional deeper legality check (dependence/overlap/race analysis),
   registered by Pmdp_verify.install.  Kept as a hook so this module
   does not depend on the checker (which depends on the executors,
   which depend on this module). *)
let legality_oracle : (t -> string option) option ref = ref None
let set_legality_oracle o = legality_oracle := o

let validate t =
  check_partition t.pipeline (List.map (fun g -> g.stages) t.groups);
  List.iter
    (fun g ->
      if g.stages <> [] && Array.length g.tile_sizes = 0 then
        invalid_arg "Schedule_spec.validate: empty tile-size array for nonempty group";
      Array.iter
        (fun ts ->
          if ts <= 0 then
            invalid_arg
              (Printf.sprintf "Schedule_spec.validate: non-positive tile size %d" ts))
        g.tile_sizes)
    t.groups;
  (* Groups must appear in topological order. *)
  let seen = Array.make (Pipeline.n_stages t.pipeline) false in
  List.iter
    (fun g ->
      List.iter
        (fun s ->
          List.iter
            (fun prod ->
              if (not seen.(prod)) && not (List.mem prod g.stages) then
                invalid_arg "Schedule_spec.validate: group order violates dependences")
            (Pipeline.producers t.pipeline s))
        g.stages;
      List.iter (fun s -> seen.(s) <- true) g.stages)
    t.groups;
  match !legality_oracle with
  | None -> ()
  | Some oracle -> (
      match oracle t with
      | None -> ()
      | Some msg -> invalid_arg ("Schedule_spec.validate: " ^ msg))

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule for %s (%d groups)@," t.pipeline.Pipeline.name
    (List.length t.groups);
  List.iteri
    (fun i g ->
      Format.fprintf ppf "  group %d: {%s} tiles=[%s]@," i
        (String.concat ","
           (List.map
              (fun s -> (Pipeline.stage t.pipeline s).Pmdp_dsl.Stage.name)
              g.stages))
        (String.concat "x" (Array.to_list (Array.map string_of_int g.tile_sizes))))
    t.groups;
  Format.fprintf ppf "@]"

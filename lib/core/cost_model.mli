(** The paper's cost function with integrated tile-size determination
    (Algorithm 2).

    [cost] evaluates a candidate fused group: it computes the best
    tile sizes for the L1 cache, falls back to L2 sizing when the
    overlap at L1 tile sizes exceeds the tile's compute volume, and
    combines locality, parallelism (cleanup-tile load balance),
    relative overlap, and dimension-extent mismatch into a single
    scalar (§4.1):

    {v
    cost = w1 * (live-in + live-out tile bytes) / tile compute volume
         - w2 * ((n_tiles + cores - 1) mod cores)
         + w3 * relative overlap
         + w4 * dimension size mismatch
    v}

    Groups whose dependences cannot be made constant by
    scaling/alignment — or that fuse a reduction with other stages —
    get infinite cost. *)

module Group_analysis := Pmdp_analysis.Group_analysis

type w2_mode =
  | Idle_penalty
      (** default: the equivalent idle-core penalty
          [w2 * ((C - n_tiles mod C) mod C)].  The paper's printed
          term equals this minus a per-group constant [w2*(C-1)];
          summed over groups by the DP, that constant rewards
          splitting unconditionally, so the well-behaved equivalent
          drops it. *)
  | Literal  (** the paper's printed form, kept for the ablation *)

type calibration = {
  cal_machine : string;  (** machine-model name the weights were fitted on *)
  c0 : float;  (** per-group overhead intercept, seconds *)
  c_mem : float;  (** weight of the load-cost locality term (w1's slot) *)
  c_idle : float;  (** cleanup-wave idle-core term (w2's slot) *)
  c_overlap : float;  (** relative-overlap term (w3's slot) *)
  c_mismatch : float;  (** dimension-mismatch term (w4's slot) *)
}
(** Weights fitted to measured per-group wall times
    ({!Pmdp_tune.Calibration}).  Unlike the dimensionless analytic
    weights, a calibrated cost is a wall-time prediction in seconds. *)

type config = {
  machine : Pmdp_machine.Machine.t;
  paper_n_tiles : bool;
      (** when true, the w2 term uses the paper's footprint-ratio tile
          count (Alg. 2 line 21) — kept as an ablation, since that
          count is essentially arbitrary modulo the core count; the
          default (false) uses the actual per-dimension tile-count
          product *)
  w2_mode : w2_mode;
  fuse_reductions : bool;
      (** default false, the paper's PolyMage rule ("do not yet group
          or optimize reductions"); true lets the model consider
          Halide-style fusion of producer-free reductions *)
  calibrated : calibration option;
      (** when set, costs come from the fitted weights (seconds)
          instead of the analytic Table-1 weights; the DP then
          optimizes predicted wall time *)
}

val config_of_machine : ?calib:calibration -> Pmdp_machine.Machine.t -> config
(** The single constructor every CLI/service/bench path goes through:
    default ablation flags, optional calibration.  Use this instead of
    building configs ad hoc so the calibrated path cannot diverge from
    the analytic one. *)

val default_config : Pmdp_machine.Machine.t -> config
(** [config_of_machine] without calibration. *)

val load_cost : float
(** Relative cost of a main-memory access vs an arithmetic operation
    (the paper's LOAD_COST estimate, §6.1); already folded into
    {!features.f_mem}. *)

type features = {
  f_mem : float;
      (** [load_cost * (live-in + live-out tile bytes) / tile compute volume] *)
  f_idle : float;  (** idle cores in the cleanup wave / number of waves *)
  f_overlap : float;  (** redundant compute as a fraction of tile volume *)
  f_mismatch : float;  (** mean CV of member extents across group dims *)
}
(** The model's four regressors for one (group, tile) choice — exactly
    the terms the analytic weights multiply, so calibration is a
    drop-in reweighting of the same model. *)

val features_for_tile : config -> Group_analysis.t -> tile:int array -> features
(** Regressors for an explicit tile (clamped to the group's scaled
    extents).  Uses the actual per-dimension tile-count product for the
    idle term regardless of [paper_n_tiles]. *)

val group_features :
  config -> Pmdp_dsl.Pipeline.t -> stages:int list -> tile:int array -> features option
(** [features_for_tile] for a stage list, [None] when the group does
    not analyze (unfusable). *)

val analytic_of_features : Pmdp_machine.Machine.t -> features -> float
(** The Table-1 weighting of {!features} (dimensionless cost). *)

val calibrated_of_features : calibration -> features -> float
(** The fitted weighting of {!features} (predicted seconds). *)

val predict : config -> features -> float
(** [calibrated_of_features] when calibrated, else
    [analytic_of_features]. *)

type level = L1 | L2

type verdict = {
  cost : float;  (** [infinity] when the group is unfusable *)
  tile_sizes : int array;  (** scaled-space tile sizes, one per group dim; empty when unfusable *)
  level : level;  (** which cache level the tiles were sized for *)
  analysis : Group_analysis.t option;  (** the underlying analysis, when fusable *)
}

val compute_tile_sizes :
  Group_analysis.t -> tile_footprint_bytes:float -> innermost_tile_size:int -> int array
(** COMPUTETILESIZES of Alg. 2: innermost dimension capped at
    [innermost_tile_size]; remaining dimensions split the allowed
    tile volume proportionally to per-dimension reuse.  Tile sizes
    are not restricted to powers of two. *)

val cost : config -> Pmdp_dsl.Pipeline.t -> int list -> verdict
(** Evaluate one candidate group (list of stage ids). *)

val pp_verdict : Format.formatter -> verdict -> unit

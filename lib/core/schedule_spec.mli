(** The scheduler-independent output of fusion: a grouping plus tile
    sizes per group.

    Every scheduler in the repository — the paper's DP model, the
    PolyMage greedy heuristic, the Halide auto-scheduler
    reimplementation, and manual schedules — produces this type; the
    lowering and executors consume it.  Tile sizes are in the group's
    scaled iteration space (one entry per group dimension). *)

type group = { stages : int list; tile_sizes : int array }
type t = { pipeline : Pmdp_dsl.Pipeline.t; groups : group list }

val of_grouping : Cost_model.config -> Pmdp_dsl.Pipeline.t -> int list list -> t
(** Assign each group the tile sizes the cost model (Alg. 2) picks
    for it.  Groups the model deems unfusable are split into
    singletons (with their own tile sizes), so the result is always
    executable.  Groups are emitted in a valid inter-group
    topological order.
    @raise Invalid_argument if the grouping is not a partition of the
    pipeline's stages. *)

val with_tiles : Pmdp_dsl.Pipeline.t -> (int list * int array) list -> t
(** Build a schedule from explicit groups and tile sizes (used by
    manual schedules and ablations).  Tile arrays shorter than a
    group's dimensionality are padded with the group extent; longer
    ones are truncated.  Unfusable groups are split as in
    {!of_grouping} with the same requested tile sizes.
    @raise Invalid_argument if the grouping is not a partition. *)

val dp : Cost_model.config -> Pmdp_dsl.Pipeline.t -> t * Dp_grouping.outcome
(** Run the full PolyMageDP scheduler: DP grouping then per-group
    tile sizes. *)

val n_groups : t -> int

val set_legality_oracle : (t -> string option) option -> unit
(** Register (or clear, with [None]) a deeper legality check run at
    the end of {!validate}.  The oracle returns [Some message] to
    reject the schedule.  {!Pmdp_verify.Verify.install} registers its
    legality + race passes here, after which the executors — which
    validate on entry — refuse illegal or racy schedules. *)

val validate : t -> unit
(** Re-checks partition/topological validity and that every tile size
    is positive (nonempty groups must carry a nonempty tile array);
    then consults the registered legality oracle, if any.
    @raise Invalid_argument. *)

val pp : Format.formatter -> t -> unit

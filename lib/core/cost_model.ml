module Machine = Pmdp_machine.Machine
module Group_analysis = Pmdp_analysis.Group_analysis
module Footprint = Pmdp_analysis.Footprint
module Reuse = Pmdp_analysis.Reuse
module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage

type w2_mode = Idle_penalty | Literal

(* Weights fitted to measured per-group wall times (lib/tune).  The
   analytic Table-1 weights are dimensionless rankings; calibrated
   weights carry units of seconds-per-feature, so a calibrated cost is
   a wall-time prediction for one group. *)
type calibration = {
  cal_machine : string;
  c0 : float;  (* per-group overhead intercept, seconds *)
  c_mem : float;  (* weight of the load-cost locality term (w1's slot) *)
  c_idle : float;  (* cleanup-wave idle-core term (w2's slot) *)
  c_overlap : float;  (* relative-overlap term (w3's slot) *)
  c_mismatch : float;  (* dimension-mismatch term (w4's slot) *)
}

type config = {
  machine : Machine.t;
  paper_n_tiles : bool;
  w2_mode : w2_mode;
  fuse_reductions : bool;
  calibrated : calibration option;
}

let config_of_machine ?calib machine =
  {
    machine;
    paper_n_tiles = false;
    w2_mode = Idle_penalty;
    fuse_reductions = false;
    calibrated = calib;
  }

let default_config machine = config_of_machine machine

type level = L1 | L2

(* Relative cost of a main-memory access vs an arithmetic operation;
   the paper's LOAD_COST estimate (§6.1). *)
let load_cost = 40.0

type verdict = {
  cost : float;
  tile_sizes : int array;
  level : level;
  analysis : Group_analysis.t option;
}

(* The model's four regressors for one (group, tile) choice — exactly
   the terms the analytic weights multiply, so a calibration fitted
   over these features is a drop-in reweighting of the same model. *)
type features = {
  f_mem : float;  (* load_cost * (live-in + live-out tile bytes) / compute volume *)
  f_idle : float;  (* idle cores in the cleanup wave / number of waves *)
  f_overlap : float;  (* redundant compute as a fraction of tile volume *)
  f_mismatch : float;  (* mean CV of member extents across group dims *)
}

let analytic_of_features (m : Machine.t) f =
  (m.Machine.w1 *. f.f_mem) +. (m.Machine.w2 *. f.f_idle)
  +. (m.Machine.w3 *. f.f_overlap)
  +. (m.Machine.w4 *. f.f_mismatch)

let calibrated_of_features c f =
  c.c0 +. (c.c_mem *. f.f_mem) +. (c.c_idle *. f.f_idle)
  +. (c.c_overlap *. f.f_overlap)
  +. (c.c_mismatch *. f.f_mismatch)

let predict config f =
  match config.calibrated with
  | Some c -> calibrated_of_features c f
  | None -> analytic_of_features config.machine f

(* COMPUTETILESIZES (Alg. 2, lines 30-45).  Tile sizes live in the
   group's scaled iteration space. *)
let compute_tile_sizes (ga : Group_analysis.t) ~tile_footprint_bytes ~innermost_tile_size =
  let n_dims = ga.Group_analysis.n_dims in
  let tile_vol_elems =
    tile_footprint_bytes
    /. float_of_int (Footprint.n_buffers ga)
    /. float_of_int Footprint.bytes_per_elem
  in
  let tile_vol_elems = Float.max 1.0 tile_vol_elems in
  let dim_reuse = Reuse.scores ga in
  let dim_size g = Group_analysis.dim_extent ga g in
  let tile = Array.make n_dims 1 in
  let innermost = n_dims - 1 in
  tile.(innermost) <- min (dim_size innermost) innermost_tile_size;
  if n_dims > 1 then begin
    let tau = ref (tile_vol_elems /. float_of_int tile.(innermost)) in
    let max_reuse = ref dim_reuse.(0) in
    for g = 1 to n_dims - 2 do
      max_reuse := Float.max !max_reuse dim_reuse.(g)
    done;
    for g = 0 to n_dims - 2 do
      tau := !tau /. (dim_reuse.(g) /. !max_reuse)
    done;
    let tau = Float.pow !tau (1.0 /. float_of_int (n_dims - 1)) in
    for g = 0 to n_dims - 2 do
      let proposed = tau *. dim_reuse.(g) /. !max_reuse in
      tile.(g) <- max 1 (min (dim_size g) (int_of_float (Float.round proposed)))
    done
  end;
  tile

(* Relative mismatch between the extents of corresponding fused
   dimensions across the group's stages (the w4 term): the mean, over
   dimensions, of the coefficient of variation of member extents. *)
let dim_size_mismatch (ga : Group_analysis.t) =
  let n = Array.length ga.Group_analysis.members in
  if n <= 1 then 0.0
  else begin
    let total = ref 0.0 in
    for g = 0 to ga.Group_analysis.n_dims - 1 do
      let extents =
        Array.init n (fun m ->
            float_of_int
              (ga.Group_analysis.scaled_hi.(m).(g) - ga.Group_analysis.scaled_lo.(m).(g) + 1))
      in
      total := !total +. Pmdp_util.Stats.coefficient_of_variation extents
    done;
    !total /. float_of_int ga.Group_analysis.n_dims
  end

(* Regressors for an explicit tile choice (clamped to the group's
   scaled extents) — the same terms COSTFORCACHESIZE combines, exposed
   so bench export and tile search can score tiles the DP did not
   pick.  Always uses the actual per-dimension tile-count product
   (measured executions tile that way regardless of ablation flags). *)
let features_for_tile config (ga : Group_analysis.t) ~tile =
  let machine = config.machine in
  let tile = Footprint.clamp_tile ga tile in
  let livein_tile = Footprint.livein_tile_bytes ga ~tile in
  let liveout_tile = Footprint.liveout_tile_bytes ga ~tile in
  let comp_vol = Float.max 1.0 (Footprint.tile_compute_volume ga ~tile) in
  let n_tiles = Footprint.n_tiles ga ~tile in
  let overlap = Footprint.overlap_points ga ~tile in
  let cores = machine.Machine.cores in
  let idle_cores = (cores - (n_tiles mod cores)) mod cores in
  let waves = max 1 ((n_tiles + cores - 1) / cores) in
  {
    f_mem = load_cost *. ((livein_tile +. liveout_tile) /. comp_vol);
    f_idle = float_of_int idle_cores /. float_of_int waves;
    f_overlap = overlap /. comp_vol;
    f_mismatch = dim_size_mismatch ga;
  }

let group_features config pipeline ~stages ~tile =
  match
    Group_analysis.analyze ~allow_fused_reductions:config.fuse_reductions pipeline stages
  with
  | Error _ -> None
  | Ok ga -> Some (features_for_tile config ga ~tile)

(* COSTFORCACHESIZE (Alg. 2, lines 12-28). *)
let cost_for_cache_size config (ga : Group_analysis.t) ~cache_bytes =
  let machine = config.machine in
  let ncores = float_of_int machine.Machine.cores in
  let liveout_size = Footprint.liveouts_bytes ga in
  let total_footprint = Footprint.intermediates_bytes ga +. liveout_size in
  let tile_footprint = Float.min (total_footprint /. ncores) (float_of_int cache_bytes) in
  let tile_footprint = Float.max (float_of_int Footprint.bytes_per_elem) tile_footprint in
  let tile =
    compute_tile_sizes ga ~tile_footprint_bytes:tile_footprint
      ~innermost_tile_size:machine.Machine.innermost_tile_size
  in
  let tile = Footprint.clamp_tile ga tile in
  let livein_tile = Footprint.livein_tile_bytes ga ~tile in
  let liveout_tile = Footprint.liveout_tile_bytes ga ~tile in
  let comp_vol = Float.max 1.0 (Footprint.tile_compute_volume ga ~tile) in
  let n_tiles =
    if config.paper_n_tiles then
      int_of_float (Float.max 1.0 (total_footprint /. tile_footprint))
    else Footprint.n_tiles ga ~tile
  in
  let overlap = Footprint.overlap_points ga ~tile in
  (* Relative overlap: "amount of redundant computation performed as a
     fraction of tile volume" (§4.1 criterion 3).  Alg. 2 line 23
     prints ÷tileFootprint, but normalizing compute points by footprint
     bytes lets deeply-redundant groups (e.g. a whole image pyramid
     fused into one group, recomputing ~50% of its work per tile) look
     like 3% overlap; the prose definition is the meaningful one. *)
  let relative_overlap = overlap /. comp_vol in
  let dim_diff = dim_size_mismatch ga in
  let cores = machine.Machine.cores in
  (* The paper's term -w2*((n_tiles + C - 1) mod C) equals
     -w2*(C-1) + w2*idle_cores: an idle-core (cleanup-wave) penalty
     shifted by a per-group constant.  Summed over groups by the DP,
     the constant rewards splitting regardless of anything else, so
     the default drops it and keeps the equivalent penalty; [Literal]
     keeps the printed form for the ablation study. *)
  let idle_cores = (cores - (n_tiles mod cores)) mod cores in
  let w2_term =
    match config.w2_mode with
    | Idle_penalty ->
        (* Idle cores in the cleanup wave, weighted by the fraction of
           the group's waves that wave represents — the actual load
           imbalance cost.  An unweighted per-group idle term would
           (like the literal form, with opposite sign) mostly reward
           or punish the *number* of groups. *)
        let waves = max 1 ((n_tiles + cores - 1) / cores) in
        machine.Machine.w2 *. float_of_int idle_cores /. float_of_int waves
    | Literal -> -.(machine.Machine.w2 *. float_of_int ((n_tiles + cores - 1) mod cores))
  in
  (* The live-data-to-computation ratio is scaled by the relative
     cost of a memory access vs an arithmetic operation (the same
     LOAD_COST = 40 the paper uses for the Halide baseline, §6.1);
     this puts the w1 term in the same currency as the w3 overlap
     penalty, making the implicit overlap tolerance w2*(C-1)/w3 ≈ 3%
     the actual fusion/recompute trade-off. *)
  let f_mem = load_cost *. ((livein_tile +. liveout_tile) /. comp_vol) in
  let cost =
    match config.calibrated with
    | Some c ->
        (* Calibrated mode predicts seconds; the idle regressor is the
           Idle_penalty form over the same n_tiles the analytic path
           used, so ablation flags keep their meaning. *)
        let waves = max 1 ((n_tiles + cores - 1) / cores) in
        calibrated_of_features c
          {
            f_mem;
            f_idle = float_of_int idle_cores /. float_of_int waves;
            f_overlap = relative_overlap;
            f_mismatch = dim_diff;
          }
    | None ->
        (machine.Machine.w1 *. f_mem)
        +. w2_term
        +. (machine.Machine.w3 *. relative_overlap)
        +. (machine.Machine.w4 *. dim_diff)
  in
  (cost, tile, overlap)

let unfusable = { cost = infinity; tile_sizes = [||]; level = L1; analysis = None }

let cost config pipeline group =
  match
    Group_analysis.analyze ~allow_fused_reductions:config.fuse_reductions pipeline group
  with
  | Error _ -> unfusable
  | Ok ga ->
      let machine = config.machine in
      let c1, tile1, overlap1 = cost_for_cache_size config ga ~cache_bytes:machine.Machine.l1_bytes in
      let tile_volume = Footprint.tile_compute_volume ga ~tile:tile1 in
      if overlap1 > tile_volume then begin
        let c2, tile2, _ = cost_for_cache_size config ga ~cache_bytes:machine.Machine.l2_bytes in
        { cost = c2; tile_sizes = tile2; level = L2; analysis = Some ga }
      end
      else { cost = c1; tile_sizes = tile1; level = L1; analysis = Some ga }

let pp_verdict ppf v =
  if v.cost = infinity then Format.fprintf ppf "unfusable"
  else
    Format.fprintf ppf "cost=%.4g tiles=[%s] level=%s" v.cost
      (String.concat "x" (Array.to_list (Array.map string_of_int v.tile_sizes)))
      (match v.level with L1 -> "L1" | L2 -> "L2")

(** Low-overhead structured execution tracing and metrics.

    The runtime layers ({!Pmdp_exec.Tiled_exec}, {!Pmdp_runtime.Pool},
    {!Pmdp_exec.Resilient}, {!Pmdp_bench.Runner}) carry instrumentation
    sites that record {e spans} (named intervals with a start
    timestamp, a duration, the recording domain, and typed arguments),
    {e instants} (point events), and {e counters} (accumulating deltas
    or sampled gauge levels) into per-domain buffers.  The whole
    recording surface is gated on one global flag: when tracing is
    disabled — the default — a site costs a single atomic load and
    allocates nothing.

    Recorded data exports two ways: {!export}/{!write} produce Chrome
    trace-event JSON (open it at https://ui.perfetto.dev or in
    [chrome://tracing]), and {!pp_summary} renders a plain-text digest
    (per-name span histograms, the slowest tile spans, per-domain
    utilization).  [docs/observability.md] documents the event model,
    every instrumentation point, and the [pmdp trace] / [pmdp run
    --trace] CLI that drives this module.

    Buffers are per-domain and appended to only by their owning
    domain's main execution context (lock-free); a global registry
    gathers them at export.  Helper {e threads} must not record — see
    the watchdog note in [lib/exec/resilient.ml]. *)

type arg = Int of int | Float of float | Str of string | Bool of bool

type event =
  | Span of {
      name : string;
      cat : string;
      ts : float;  (** seconds since the trace epoch *)
      dur : float;  (** seconds *)
      args : (string * arg) list;
    }
  | Instant of { name : string; cat : string; ts : float; args : (string * arg) list }
  | Counter of {
      name : string;
      ts : float;
      value : int;
      cum : bool;  (** [true]: an accumulating delta; [false]: a gauge sample *)
    }

val set_enabled : bool -> unit
(** Enabling (re)starts the trace epoch; events recorded before are
    kept (use {!reset} to drop them). *)

val on : unit -> bool
(** The gate every site checks first: one atomic load, nothing else.
    All recording functions below are no-ops returning immediately
    when it is [false]. *)

val reset : unit -> unit
(** Drop all recorded events and counter totals and restart the trace
    epoch.  Call only while no traced work is in flight. *)

val now : unit -> float
(** Seconds since the trace epoch (wall clock).  Only meaningful — and
    only worth calling — when {!on}. *)

val complete : ?cat:string -> ?args:(string * arg) list -> name:string -> ts:float -> unit -> unit
(** Record a span that started at [ts] (a prior {!now}) and ends now.
    The begin/end pair is folded into one event, so spans recorded by
    one domain nest by construction. *)

val with_span : ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; the span is recorded
    whether [f] returns or raises.  When tracing is off this is just
    [f ()]. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit

val count : string -> int -> unit
(** Accumulate a delta under a counter name.  Exported as a cumulative
    Chrome counter track; {!counter_totals} sums the deltas. *)

val gauge : string -> int -> unit
(** Sample a level (e.g. pool occupancy).  Exported as its own counter
    track; not included in {!counter_totals}. *)

val counter_totals : unit -> (string * int) list
(** Per-name sums of all {!count} deltas recorded since the last
    {!reset}, sorted by name.  Cheap snapshot; used to feed
    {!Pmdp_report.Profile} and the bench JSON. *)

val dump : unit -> (int * event list) list
(** All recorded events, grouped by recording domain id, each group
    sorted by start timestamp.  For tests and the summary. *)

val export : unit -> Pmdp_report.Json.t
(** The Chrome trace-event object: [{"traceEvents": [...],
    "displayTimeUnit": "ms"}].  Spans become ["ph":"X"] complete
    events (microsecond [ts]/[dur]), instants ["ph":"i"], counters
    ["ph":"C"] (accumulating counters as running totals, gauges as
    sampled levels). *)

val write : string -> unit
(** {!export} serialized compactly to a file. *)

val pp_summary : ?top:int -> Format.formatter -> unit -> unit
(** Plain-text digest of the recorded trace: per-name span statistics
    (count, total, mean, p50, p90, max), the [top] (default 10)
    slowest ["tile"] spans with their arguments, and per-domain busy
    time / utilization over the traced interval. *)

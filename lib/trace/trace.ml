module Json = Pmdp_report.Json

type arg = Int of int | Float of float | Str of string | Bool of bool

type event =
  | Span of { name : string; cat : string; ts : float; dur : float; args : (string * arg) list }
  | Instant of { name : string; cat : string; ts : float; args : (string * arg) list }
  | Counter of { name : string; ts : float; value : int; cum : bool }

(* The one word every instrumentation site loads.  Everything else in
   this module is behind it. *)
let enabled = Atomic.make false
let on () = Atomic.get enabled

let epoch = Atomic.make 0.0
let now () = Unix.gettimeofday () -. Atomic.get epoch

(* Per-domain event buffers.  Only the owning domain's main execution
   context appends (a plain list prepend: lock-free, no contention);
   the registry mutex is taken once per domain lifetime at
   registration and again at export/reset, never on the record path. *)
type buf = { tid : int; mutable evs : event list }

let registry : buf list ref = ref []
let reg_lock = Mutex.create ()

let dls_key =
  Domain.DLS.new_key (fun () ->
      let b = { tid = (Domain.self () :> int); evs = [] } in
      Mutex.lock reg_lock;
      registry := b :: !registry;
      Mutex.unlock reg_lock;
      b)

let record ev =
  let b = Domain.DLS.get dls_key in
  b.evs <- ev :: b.evs

let set_enabled v =
  if v && not (Atomic.get enabled) then Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set enabled v

let reset () =
  Mutex.lock reg_lock;
  List.iter (fun b -> b.evs <- []) !registry;
  Mutex.unlock reg_lock;
  Atomic.set epoch (Unix.gettimeofday ())

let complete ?(cat = "") ?(args = []) ~name ~ts () =
  if on () then record (Span { name; cat; ts; dur = now () -. ts; args })

let with_span ?cat ?args name f =
  if not (on ()) then f ()
  else begin
    let ts = now () in
    match f () with
    | v ->
        complete ?cat ?args ~name ~ts ();
        v
    | exception e ->
        complete ?cat ?args ~name ~ts ();
        raise e
  end

let instant ?(cat = "") ?(args = []) name =
  if on () then record (Instant { name; cat; ts = now (); args })

let count name value = if on () then record (Counter { name; ts = now (); value; cum = true })
let gauge name value = if on () then record (Counter { name; ts = now (); value; cum = false })

let buffers () =
  Mutex.lock reg_lock;
  let bufs = !registry in
  Mutex.unlock reg_lock;
  bufs

let event_ts = function Span { ts; _ } | Instant { ts; _ } | Counter { ts; _ } -> ts

let dump () =
  buffers ()
  |> List.filter_map (fun b ->
         match b.evs with
         | [] -> None
         | evs ->
             Some
               ( b.tid,
                 List.sort (fun a b -> compare (event_ts a) (event_ts b)) (List.rev evs) ))
  |> List.sort compare

let counter_totals () =
  let tbl : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (function
          | Counter { name; value; cum = true; _ } -> (
              match Hashtbl.find_opt tbl name with
              | Some r -> r := !r + value
              | None -> Hashtbl.add tbl name (ref value))
          | _ -> ())
        b.evs)
    (buffers ());
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) tbl [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)

let json_of_arg = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.String s
  | Bool b -> Json.Bool b

let us t = Json.Float (t *. 1e6)

let common ~name ~cat ~ts ~tid =
  [
    ("name", Json.String name);
    ("cat", Json.String (if cat = "" then "pmdp" else cat));
    ("ph", Json.String "");  (* replaced per event kind *)
    ("ts", us ts);
    ("pid", Json.Int 1);
    ("tid", Json.Int tid);
  ]

let with_ph ph fields = List.map (function "ph", _ -> ("ph", Json.String ph) | kv -> kv) fields

let args_field args =
  match args with
  | [] -> []
  | args -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ]

let export () =
  let events = dump () in
  let spans_and_instants =
    List.concat_map
      (fun (tid, evs) ->
        List.filter_map
          (function
            | Span { name; cat; ts; dur; args } ->
                Some
                  (Json.Obj
                     (with_ph "X" (common ~name ~cat ~ts ~tid)
                     @ [ ("dur", us dur) ]
                     @ args_field args))
            | Instant { name; cat; ts; args } ->
                Some
                  (Json.Obj
                     (with_ph "i" (common ~name ~cat ~ts ~tid)
                     @ [ ("s", Json.String "t") ]
                     @ args_field args))
            | Counter _ -> None)
          evs)
      events
  in
  (* Counter tracks are process-level: accumulating counters render as
     running totals in global timestamp order, gauges as the sampled
     level. *)
  let counters =
    List.concat_map
      (fun (_, evs) ->
        List.filter_map
          (function Counter { name; ts; value; cum } -> Some (name, ts, value, cum) | _ -> None)
          evs)
      events
    |> List.sort (fun (_, ta, _, _) (_, tb, _, _) -> compare ta tb)
  in
  let totals : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let counter_events =
    List.map
      (fun (name, ts, value, cum) ->
        let level =
          if cum then begin
            let t = Option.value (Hashtbl.find_opt totals name) ~default:0 + value in
            Hashtbl.replace totals name t;
            t
          end
          else value
        in
        Json.Obj
          (with_ph "C" (common ~name ~cat:"counter" ~ts ~tid:0)
          @ [ ("args", Json.Obj [ ("value", Json.Int level) ]) ]))
      counters
  in
  Json.Obj
    [
      ("traceEvents", Json.List (spans_and_instants @ counter_events));
      ("displayTimeUnit", Json.String "ms");
    ]

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (export ())))

(* ------------------------------------------------------------------ *)
(* Text summary                                                        *)

let pp_arg ppf (k, v) =
  match v with
  | Int i -> Format.fprintf ppf "%s=%d" k i
  | Float f -> Format.fprintf ppf "%s=%g" k f
  | Str s -> Format.fprintf ppf "%s=%s" k s
  | Bool b -> Format.fprintf ppf "%s=%b" k b

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(* Merge possibly-nested span intervals of one domain into disjoint
   busy intervals, so utilization never double-counts a tile span
   inside its enclosing group or job span. *)
let busy_time spans =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) spans in
  let rec go acc cur = function
    | [] -> ( match cur with None -> acc | Some (lo, hi) -> acc +. (hi -. lo))
    | (ts, dur) :: rest -> (
        let fin = ts +. dur in
        match cur with
        | None -> go acc (Some (ts, fin)) rest
        | Some (lo, hi) ->
            if ts <= hi then go acc (Some (lo, Float.max hi fin)) rest
            else go (acc +. (hi -. lo)) (Some (ts, fin)) rest)
  in
  go 0.0 None sorted

let pp_summary ?(top = 10) ppf () =
  let events = dump () in
  let all = List.concat_map snd events in
  if all = [] then Format.fprintf ppf "trace: no events recorded@."
  else begin
    let t_lo =
      List.fold_left (fun acc e -> Float.min acc (event_ts e)) Float.infinity all
    in
    let t_hi =
      List.fold_left
        (fun acc e ->
          Float.max acc (match e with Span { ts; dur; _ } -> ts +. dur | e -> event_ts e))
        Float.neg_infinity all
    in
    let wall = Float.max 1e-9 (t_hi -. t_lo) in
    Format.fprintf ppf "@[<v>trace: %d events over %.3f ms@," (List.length all) (wall *. 1000.0);
    (* Per-name span statistics. *)
    let by_name : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (function
        | Span { name; dur; _ } -> (
            match Hashtbl.find_opt by_name name with
            | Some r -> r := dur :: !r
            | None -> Hashtbl.add by_name name (ref [ dur ]))
        | _ -> ())
      all;
    let stats =
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) by_name []
      |> List.map (fun (name, durs) ->
             let a = Array.of_list durs in
             Array.sort compare a;
             let total = Array.fold_left ( +. ) 0.0 a in
             (name, Array.length a, total, a))
      |> List.sort (fun (_, _, ta, _) (_, _, tb, _) -> compare tb ta)
    in
    if stats <> [] then begin
      Format.fprintf ppf "spans:@,";
      Format.fprintf ppf "  %-18s %8s %10s %9s %9s %9s %9s@," "name" "count" "total ms"
        "mean us" "p50 us" "p90 us" "max us";
      List.iter
        (fun (name, n, total, a) ->
          Format.fprintf ppf "  %-18s %8d %10.3f %9.1f %9.1f %9.1f %9.1f@," name n
            (total *. 1000.0)
            (total /. float_of_int n *. 1e6)
            (percentile a 0.5 *. 1e6) (percentile a 0.9 *. 1e6)
            (a.(Array.length a - 1) *. 1e6))
        stats
    end;
    (* Slowest tile spans (fall back to all spans when nothing is
       named "tile", e.g. a trace of a non-executor workload). *)
    let span_tuple = function
      | Span { name; ts; dur; args; _ } -> Some (name, ts, dur, args)
      | _ -> None
    in
    let tiles =
      List.filter_map
        (fun e ->
          match span_tuple e with Some (("tile", _, _, _) as s) -> Some s | _ -> None)
        all
    in
    let slowest_pool = match tiles with [] -> List.filter_map span_tuple all | ts -> ts in
    let slowest =
      List.sort (fun (_, _, da, _) (_, _, db, _) -> compare db da) slowest_pool |> fun l ->
      List.filteri (fun i _ -> i < top) l
    in
    if slowest <> [] then begin
      Format.fprintf ppf "slowest %s:@," (if tiles = [] then "spans" else "tiles");
      List.iter
        (fun (name, ts, dur, args) ->
          Format.fprintf ppf "  %9.1f us  at %9.3f ms  %s" (dur *. 1e6)
            ((ts -. t_lo) *. 1000.0) name;
          List.iter (fun a -> Format.fprintf ppf "  %a" pp_arg a) args;
          Format.fprintf ppf "@,")
        slowest
    end;
    (* Per-domain utilization over the traced interval. *)
    Format.fprintf ppf "domains:@,";
    List.iter
      (fun (tid, evs) ->
        let spans =
          List.filter_map (function Span { ts; dur; _ } -> Some (ts, dur) | _ -> None) evs
        in
        if spans <> [] then
          let busy = busy_time spans in
          Format.fprintf ppf "  tid %-4d %5d spans  busy %10.3f ms  utilization %5.1f%%@," tid
            (List.length spans) (busy *. 1000.0)
            (100.0 *. busy /. wall))
      events;
    let totals = counter_totals () in
    if totals <> [] then begin
      Format.fprintf ppf "counters:@,";
      List.iter (fun (name, v) -> Format.fprintf ppf "  %-18s %d@," name v) totals
    end;
    Format.fprintf ppf "@]"
  end

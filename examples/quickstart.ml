(* Quickstart: the paper's blur example, end to end.

   Builds the two-stage blur pipeline of Fig. 1, runs the DP fusion
   model (PolyMageDP) to get a grouping and tile sizes, prints the
   C++/OpenMP code the schedule corresponds to (the shape of the
   paper's Fig. 3), executes it with the overlapped-tiling executor,
   and checks the result against the unfused reference.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let machine = Pmdp_machine.Machine.xeon in
  let config = Pmdp_core.Cost_model.default_config machine in

  (* 1. Define the pipeline (blurx then blury over a 3-channel image). *)
  let pipeline = Pmdp_apps.Blur.build ~rows:510 ~cols:512 () in
  Format.printf "%a@.@." Pmdp_dsl.Pipeline.pp pipeline;

  (* 2. Run the DP fusion + tile-size model. *)
  let schedule, outcome = Pmdp_core.Schedule_spec.dp config pipeline in
  Format.printf "PolyMageDP grouping (cost %.3f, %d DP states):@.%a@.@."
    outcome.Pmdp_core.Dp_grouping.cost outcome.Pmdp_core.Dp_grouping.enumerated
    Pmdp_core.Schedule_spec.pp schedule;

  (* 3. Show the generated C++ (Fig. 3 shape). *)
  print_endline "Generated C++ (truncated to 40 lines):";
  let code = Pmdp_codegen.C_emit.emit schedule in
  List.iteri
    (fun i line -> if i < 40 then print_endline ("  " ^ line))
    (String.split_on_char '\n' code);
  print_endline "  ...";

  (* 4. Execute and validate against the reference. *)
  let inputs = Pmdp_apps.Blur.inputs pipeline in
  let plan = Pmdp_exec.Tiled_exec.plan schedule in
  let t0 = Unix.gettimeofday () in
  let results = Pmdp_exec.Tiled_exec.run plan ~inputs in
  let tiled_time = Unix.gettimeofday () -. t0 in
  let reference = Pmdp_exec.Reference.run pipeline ~inputs in
  let out = List.assoc "blury" results in
  let expected = List.assoc "blury" reference in
  Format.printf "@.tiled executor: %.1f ms; max |diff| vs reference = %g@."
    (tiled_time *. 1000.0)
    (Pmdp_exec.Buffer.max_abs_diff out expected);

  (* 5. Same schedule on a persistent worker pool (domains are spawned
     once; with_pool joins them on the way out). *)
  Pmdp_runtime.Pool.with_pool 4 (fun pool ->
      let par = Pmdp_exec.Tiled_exec.run ~pool plan ~inputs in
      Format.printf "parallel run agrees: %b@."
        (Pmdp_exec.Buffer.max_abs_diff (List.assoc "blury" par) expected = 0.0))

examples/quickstart.ml: Format List Pmdp_apps Pmdp_codegen Pmdp_core Pmdp_dsl Pmdp_exec Pmdp_machine Pmdp_runtime String Unix

examples/quickstart.mli:

examples/pyramid_blend_demo.ml: Array Format List Pmdp_apps Pmdp_baselines Pmdp_core Pmdp_dsl Pmdp_exec Pmdp_machine Sys Unix

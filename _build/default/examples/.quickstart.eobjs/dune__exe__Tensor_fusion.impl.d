examples/tensor_fusion.ml: Expr Format List Pipeline Pmdp_core Pmdp_dsl Pmdp_exec Pmdp_machine Pmdp_util Stage Unix

examples/pyramid_blend_demo.mli:

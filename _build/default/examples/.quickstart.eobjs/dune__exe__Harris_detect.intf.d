examples/harris_detect.mli:

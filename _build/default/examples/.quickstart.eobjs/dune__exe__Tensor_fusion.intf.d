examples/tensor_fusion.mli:

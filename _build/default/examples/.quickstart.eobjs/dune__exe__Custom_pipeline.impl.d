examples/custom_pipeline.ml: Expr Format List Pipeline Pmdp_apps Pmdp_core Pmdp_dsl Pmdp_exec Pmdp_machine Stage String

(* Harris corner detection under all four schedulers.

   Builds the 11-stage Harris pipeline of the paper's Table 2,
   schedules it with H-manual, H-auto, PolyMage-A (greedy +
   auto-tuning), and PolyMageDP, validates each against the
   reference, and reports sequential execution times plus the
   strongest corner responses found.

   Run with: dune exec examples/harris_detect.exe [scale]
   (scale divides the paper's 4256x2832 image; default 8). *)

let time_schedule schedule inputs =
  let plan = Pmdp_exec.Tiled_exec.plan schedule in
  let t0 = Unix.gettimeofday () in
  let results = Pmdp_exec.Tiled_exec.run plan ~inputs in
  (Unix.gettimeofday () -. t0, results)

let () =
  let scale = try int_of_string Sys.argv.(1) with _ -> 8 in
  let machine = Pmdp_machine.Machine.xeon in
  let config = Pmdp_core.Cost_model.default_config machine in
  let pipeline = Pmdp_apps.Harris.build ~scale () in
  let inputs = Pmdp_apps.Harris.inputs pipeline in
  let reference = Pmdp_exec.Reference.run pipeline ~inputs in
  let expected = List.assoc "harris" reference in
  let evaluate sched = fst (time_schedule sched inputs) in
  let schedules =
    [
      ("H-manual", Pmdp_baselines.Manual.schedule pipeline);
      ("H-auto", Pmdp_baselines.Halide_auto.schedule
                   (Pmdp_baselines.Halide_auto.params_for machine) pipeline);
      ("PolyMage-A", (Pmdp_baselines.Autotune.run ~evaluate pipeline).Pmdp_baselines.Autotune.best);
      ("PolyMageDP", fst (Pmdp_core.Schedule_spec.dp config pipeline));
    ]
  in
  Format.printf "Harris corner, %d stages, scale 1/%d:@." (Pmdp_dsl.Pipeline.n_stages pipeline) scale;
  List.iter
    (fun (name, sched) ->
      let t, results = time_schedule sched inputs in
      let out = List.assoc "harris" results in
      let ok = Pmdp_exec.Buffer.max_abs_diff out expected = 0.0 in
      Format.printf "  %-11s %3d groups  %7.1f ms  correct=%b@." name
        (Pmdp_core.Schedule_spec.n_groups sched) (t *. 1000.0) ok)
    schedules;
  (* Report the strongest response, to show the pipeline does real work. *)
  let best_v = ref neg_infinity and best_i = ref 0 in
  Array.iteri
    (fun i v -> if v > !best_v then begin best_v := v; best_i := i end)
    expected.Pmdp_exec.Buffer.data;
  let cols = expected.Pmdp_exec.Buffer.dims.(1).Pmdp_dsl.Stage.extent in
  Format.printf "strongest corner response %.4g at (%d, %d)@." !best_v (!best_i / cols)
    (!best_i mod cols)

(* Pyramid blending demo: the paper's largest benchmark (44 stages,
   4-level Laplacian pyramids over two images and a mask).

   Shows how the DP model copes with a pyramid DAG — rational scaling
   across levels, per-level fusion — and reports the grouping it
   finds next to the expert manual schedule, along with the
   incremental bounded variant (Alg. 3) at different group limits.

   Run with: dune exec examples/pyramid_blend_demo.exe [scale] *)

let () =
  let scale = try int_of_string Sys.argv.(1) with _ -> 16 in
  let machine = Pmdp_machine.Machine.xeon in
  let config = Pmdp_core.Cost_model.default_config machine in
  let pipeline = Pmdp_apps.Pyramid_blend.build ~scale () in
  Format.printf "pyramid_blend: %d stages at scale 1/%d@."
    (Pmdp_dsl.Pipeline.n_stages pipeline) scale;

  (* Full DP (state-budgeted) vs bounded incremental DP (Alg. 3). *)
  let full = Pmdp_core.Dp_grouping.run ~state_budget:100_000 ~config pipeline in
  Format.printf "  full DP:        cost=%10.1f groups=%2d states=%6d time=%.2fs%s@."
    full.Pmdp_core.Dp_grouping.cost
    (List.length full.Pmdp_core.Dp_grouping.groups)
    full.Pmdp_core.Dp_grouping.enumerated full.Pmdp_core.Dp_grouping.elapsed
    (if full.Pmdp_core.Dp_grouping.complete then "" else " (budget-truncated)");
  List.iter
    (fun limit ->
      let inc = Pmdp_core.Inc_grouping.run ~initial_limit:limit ~config pipeline in
      Format.printf "  inc DP (l=%2d):  cost=%10.1f groups=%2d states=%6d time=%.2fs@." limit
        inc.Pmdp_core.Inc_grouping.cost
        (List.length inc.Pmdp_core.Inc_grouping.groups)
        inc.Pmdp_core.Inc_grouping.total_enumerated inc.Pmdp_core.Inc_grouping.total_elapsed)
    [ 8; 16; 32 ];

  (* Execute the DP schedule and compare against the reference. *)
  let inputs = Pmdp_apps.Pyramid_blend.inputs pipeline in
  let sched = Pmdp_core.Schedule_spec.of_grouping config pipeline full.Pmdp_core.Dp_grouping.groups in
  let plan = Pmdp_exec.Tiled_exec.plan sched in
  let t0 = Unix.gettimeofday () in
  let results = Pmdp_exec.Tiled_exec.run plan ~inputs in
  let dp_time = Unix.gettimeofday () -. t0 in
  let reference = Pmdp_exec.Reference.run pipeline ~inputs in
  let diff =
    Pmdp_exec.Buffer.max_abs_diff (List.assoc "output" results)
      (List.assoc "output" reference)
  in
  Format.printf "  DP schedule executes in %.1f ms, max |diff| vs reference = %g@."
    (dp_time *. 1000.0) diff;

  (* Compare with the expert manual schedule. *)
  let manual = Pmdp_baselines.Manual.schedule pipeline in
  let t0 = Unix.gettimeofday () in
  let mres = Pmdp_exec.Tiled_exec.run (Pmdp_exec.Tiled_exec.plan manual) ~inputs in
  let m_time = Unix.gettimeofday () -. t0 in
  Format.printf "  manual schedule (%d groups): %.1f ms, agrees=%b@."
    (Pmdp_core.Schedule_spec.n_groups manual) (m_time *. 1000.0)
    (Pmdp_exec.Buffer.max_abs_diff (List.assoc "output" mres) (List.assoc "output" reference)
    = 0.0)

(* Building your own pipeline against the public API.

   Defines a small edge-aware smoothing pipeline from scratch —
   gradient magnitude, edge mask, selective blur — schedules it with
   the DP model, inspects the cost model's verdicts for a few
   candidate groups, and executes.

   Run with: dune exec examples/custom_pipeline.exe *)

open Pmdp_dsl
open Expr

let () =
  let rows, cols = (384, 512) in
  let dims = Stage.dim2 rows cols in
  let here name = load name [| cvar 0; cvar 1 |] in
  (* Horizontal and vertical central differences of the input. *)
  let gx =
    Stage.pointwise "gx" dims
      ((load "img" [| cshift 0 1; cvar 1 |] -: load "img" [| cshift 0 (-1); cvar 1 |])
      /: const 2.0)
  in
  let gy =
    Stage.pointwise "gy" dims
      ((load "img" [| cvar 0; cshift 1 1 |] -: load "img" [| cvar 0; cshift 1 (-1) |])
      /: const 2.0)
  in
  let mag = Stage.pointwise "mag" dims (sqrt_ ((here "gx" *: here "gx") +: (here "gy" *: here "gy"))) in
  let smooth_x = Stage.pointwise "smooth_x" dims (Pmdp_apps.Helpers.blur3 "img" ~ndims:2 ~dim:0) in
  let smooth = Stage.pointwise "smooth" dims (Pmdp_apps.Helpers.blur3 "smooth_x" ~ndims:2 ~dim:1) in
  (* Blur flat areas, keep edges crisp. *)
  let result =
    Stage.pointwise "result" dims
      (select (here "mag" >: const 0.08) (load "img" [| cvar 0; cvar 1 |]) (here "smooth"))
  in
  let pipeline =
    Pipeline.build ~name:"edge_aware_smooth"
      ~inputs:[ Pipeline.input2 "img" rows cols ]
      ~stages:[ gx; gy; mag; smooth_x; smooth; result ]
      ~outputs:[ "result" ]
  in
  Format.printf "%a@.@." Pipeline.pp pipeline;

  let machine = Pmdp_machine.Machine.xeon in
  let config = Pmdp_core.Cost_model.default_config machine in

  (* Ask the cost model about specific candidate groups. *)
  let candidates =
    [ [ "gx"; "gy"; "mag" ]; [ "smooth_x"; "smooth" ]; [ "mag"; "result" ];
      [ "gx"; "gy"; "mag"; "smooth_x"; "smooth"; "result" ] ]
  in
  List.iter
    (fun names ->
      let ids = List.map (Pipeline.stage_id pipeline) names in
      let v = Pmdp_core.Cost_model.cost config pipeline ids in
      Format.printf "  cost{%s} = %a@." (String.concat "," names)
        Pmdp_core.Cost_model.pp_verdict v)
    candidates;

  (* Let the DP pick, then execute. *)
  let sched, outcome = Pmdp_core.Schedule_spec.dp config pipeline in
  Format.printf "@.DP chose (%d states explored):@.%a@."
    outcome.Pmdp_core.Dp_grouping.enumerated Pmdp_core.Schedule_spec.pp sched;
  let img = Pmdp_apps.Images.gray "img" ~rows ~cols in
  let results = Pmdp_exec.Tiled_exec.run (Pmdp_exec.Tiled_exec.plan sched) ~inputs:[ ("img", img) ] in
  let reference = Pmdp_exec.Reference.run pipeline ~inputs:[ ("img", img) ] in
  Format.printf "max |diff| vs reference: %g@."
    (Pmdp_exec.Buffer.max_abs_diff (List.assoc "result" results) (List.assoc "result" reference))

(* Dense linear-algebra pipelines (the paper's §1 notes the approach
   "is applicable to DSLs where computations are expressed through
   DAGs where each node is a loop nest working on dense matrices or
   tensors ... DSLs for dense linear algebra are a good match", citing
   TensorFlow/XLA).

   This example builds a transformer-style feed-forward block over a
   (batch x features) tensor — affine transform, GELU-ish activation,
   and a numerically-stable softmax with row reductions — and lets the
   DP model fuse the element-wise chains around the reductions,
   exactly the operator-fusion problem XLA solves.

   Run with: dune exec examples/tensor_fusion.exe *)

open Pmdp_dsl
open Expr

let () =
  let batch, features = (256, 512) in
  let dims2 = Stage.dim2 batch features in
  let dims1 = [| { Stage.dim_name = "b"; lo = 0; extent = batch } |] in
  let here name = load name [| cvar 0; cvar 1 |] in

  (* y = x * w + b, with per-feature weight and bias vectors. *)
  let scaled =
    Stage.pointwise "scaled" dims2
      ((load "x" [| cvar 0; cvar 1 |] *: load "w" [| cvar 1 |]) +: load "bias" [| cvar 1 |])
  in
  (* smooth activation (tanh-free GELU approximation) *)
  let activated =
    Stage.pointwise "activated" dims2
      (here "scaled" /: (const 1.0 +: exp_ (neg (here "scaled"))))
  in
  (* stable softmax over the feature dimension *)
  let rowmax =
    Stage.reduction "rowmax" dims1 ~op:Stage.Rmax ~init:neg_infinity
      ~rdom:[| (0, features) |]
      (load "activated" [| cvar 0; cdyn (var 1) |])
  in
  let shifted =
    Stage.pointwise "shifted" dims2 (exp_ (here "activated" -: load "rowmax" [| cvar 0 |]))
  in
  let rowsum =
    Stage.reduction "rowsum" dims1 ~op:Stage.Rsum ~init:0.0 ~rdom:[| (0, features) |]
      (load "shifted" [| cvar 0; cdyn (var 1) |])
  in
  let softmax =
    Stage.pointwise "softmax" dims2 (here "shifted" /: load "rowsum" [| cvar 0 |])
  in
  (* residual mix with the input *)
  let output =
    Stage.pointwise "output" dims2
      ((const 0.9 *: here "softmax") +: (const 0.1 *: load "x" [| cvar 0; cvar 1 |]))
  in
  let p =
    Pipeline.build ~name:"ffn_softmax"
      ~inputs:
        [
          Pipeline.input2 "x" batch features;
          { Pipeline.in_name = "w"; in_dims = [| { Stage.dim_name = "f"; lo = 0; extent = features } |] };
          { Pipeline.in_name = "bias"; in_dims = [| { Stage.dim_name = "f"; lo = 0; extent = features } |] };
        ]
      ~stages:[ scaled; activated; rowmax; shifted; rowsum; softmax; output ]
      ~outputs:[ "output" ]
  in
  Format.printf "%a@.@." Pipeline.pp p;

  let config = Pmdp_core.Cost_model.default_config Pmdp_machine.Machine.xeon in
  let sched, outcome = Pmdp_core.Schedule_spec.dp config p in
  Format.printf "DP fusion (XLA-style operator fusion), %d states explored:@.%a@.@."
    outcome.Pmdp_core.Dp_grouping.enumerated Pmdp_core.Schedule_spec.pp sched;

  (* Execute and validate. *)
  let rng = Pmdp_util.Rng.create 7 in
  let x = Pmdp_exec.Buffer.create "x" dims2 in
  Pmdp_exec.Buffer.fill x (fun _ -> Pmdp_util.Rng.float rng 2.0 -. 1.0);
  let vec name =
    let b = Pmdp_exec.Buffer.create name [| { Stage.dim_name = "f"; lo = 0; extent = features } |] in
    Pmdp_exec.Buffer.fill b (fun _ -> Pmdp_util.Rng.float rng 1.0);
    b
  in
  let inputs = [ ("x", x); ("w", vec "w"); ("bias", vec "bias") ] in
  let t0 = Unix.gettimeofday () in
  let results = Pmdp_exec.Tiled_exec.run (Pmdp_exec.Tiled_exec.plan sched) ~inputs in
  let elapsed = Unix.gettimeofday () -. t0 in
  let reference = Pmdp_exec.Reference.run p ~inputs in
  let out = List.assoc "output" results in
  Format.printf "executed in %.1f ms; max |diff| vs reference = %g@." (elapsed *. 1000.0)
    (Pmdp_exec.Buffer.max_abs_diff out (List.assoc "output" reference));
  (* softmax rows sum to ~1 (checked via the softmax intermediate in the reference) *)
  let sm = List.assoc "softmax" reference in
  let row0 = ref 0.0 in
  for f = 0 to features - 1 do
    row0 := !row0 +. Pmdp_exec.Buffer.get_clamped sm [| 0; f |]
  done;
  Format.printf "softmax row 0 sums to %.6f@." !row0

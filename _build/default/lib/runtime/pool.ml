type t = { workers : int }

let create n =
  if n < 1 then invalid_arg "Pool.create: need at least one worker";
  { workers = n }

let n_workers t = t.workers

let parallel_for_init t ~n ~init f =
  if n < 0 then invalid_arg "Pool.parallel_for: negative count";
  if t.workers = 1 || n <= 1 then begin
    let state = init () in
    for i = 0 to n - 1 do
      f state i
    done
  end
  else begin
    let next = Atomic.make 0 in
    let error = Atomic.make None in
    let worker () =
      let state = init () in
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get error <> None then continue := false
        else
          try f state i
          with e ->
            ignore (Atomic.compare_and_set error None (Some e));
            continue := false
      done
    in
    let spawned = min (t.workers - 1) (n - 1) in
    let domains = Array.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    match Atomic.get error with Some e -> raise e | None -> ()
  end

let parallel_for t ~n f = parallel_for_init t ~n ~init:(fun () -> ()) (fun () i -> f i)

type sched = Static | Dynamic

let simulate_makespan ?(sched = Static) ~workers durations =
  if workers < 1 then invalid_arg "Pool.simulate_makespan: workers < 1";
  let n = Array.length durations in
  match sched with
  | Static ->
      (* OpenMP schedule(static): contiguous chunks of ~n/workers. *)
      let makespan = ref 0.0 in
      let chunk = (n + workers - 1) / workers in
      let w = ref 0 in
      while !w * chunk < n do
        let lo = !w * chunk and hi = min n ((!w + 1) * chunk) in
        let sum = ref 0.0 in
        for i = lo to hi - 1 do
          sum := !sum +. durations.(i)
        done;
        if !sum > !makespan then makespan := !sum;
        incr w
      done;
      !makespan
  | Dynamic ->
      (* Self-scheduling: each next tile goes to the earliest-free
         worker (a min-heap would be overkill at these sizes). *)
      let free = Array.make workers 0.0 in
      Array.iter
        (fun d ->
          let best = ref 0 in
          for w = 1 to workers - 1 do
            if free.(w) < free.(!best) then best := w
          done;
          free.(!best) <- free.(!best) +. d)
        durations;
      Array.fold_left Float.max 0.0 free

(** Multicore work distribution over OCaml 5 domains.

    The tile-space loops of overlapped tiling are embarrassingly
    parallel (no inter-tile dependences, paper §2.1), so a simple
    fork-join [parallel_for] suffices.  Work is claimed with an
    atomic counter (dynamic self-scheduling), which also matches how
    cleanup tiles spread over cores.

    Since real speedups require real cores — which the evaluation
    host may not have — {!simulate_makespan} reconstructs the
    multicore execution time from measured per-tile durations under
    either OpenMP-style static scheduling (what PolyMage generates:
    [schedule(static)]) or dynamic self-scheduling.  This is the
    multicore-hardware substitution documented in DESIGN.md. *)

type t

val create : int -> t
(** [create n] is a pool targeting [n]-way parallelism ([n >= 1]).
    Domains are spawned per [parallel_for] call and joined before it
    returns, so a pool holds no threads while idle.
    @raise Invalid_argument if [n < 1]. *)

val n_workers : t -> int

val parallel_for : t -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n f] runs [f 0 .. f (n-1)], distributing indices
    over the pool's workers; the calling domain participates.
    Exceptions raised by [f] are re-raised in the caller after all
    workers finish. *)

val parallel_for_init : t -> n:int -> init:(unit -> 'a) -> ('a -> int -> unit) -> unit
(** Like {!parallel_for} but each worker first creates private state
    with [init] (e.g. a scratch arena) that is passed to every index
    it executes. *)

type sched = Static | Dynamic

val simulate_makespan : ?sched:sched -> workers:int -> float array -> float
(** [simulate_makespan ~workers durations] is the simulated parallel
    wall-clock of executing tiles with the given measured durations
    on [workers] cores.  [Static] (default) splits the index range
    into [workers] contiguous chunks; [Dynamic] assigns each next
    tile to the earliest-free worker.
    @raise Invalid_argument if [workers < 1]. *)

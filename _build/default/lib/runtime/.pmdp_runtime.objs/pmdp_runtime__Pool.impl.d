lib/runtime/pool.ml: Array Atomic Domain Float

lib/runtime/pool.mli:

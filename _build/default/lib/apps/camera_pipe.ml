open Pmdp_dsl
open Expr

let paper_rows = 1968
let paper_cols = 2592

(* Half-resolution access d(2x+a, 2y+b). *)
let at2 name a b =
  load name [| Expr.cscale 0 ~num:2 ~den:1 ~off:a; Expr.cscale 1 ~num:2 ~den:1 ~off:b |]

(* Full-resolution stage reading a half-resolution producer at
   (floor((x+a)/2), floor((y+b)/2)). *)
let athalf name a b =
  let half v k =
    Cvar { var = v; scale = Pmdp_util.Rational.make 1 2; offset = Pmdp_util.Rational.make k 2 }
  in
  load name [| half 0 a; half 1 b |]

let even v = Binop (Mod, var v, const 2.0) =: const 0.0

let build ?(scale = 1) () =
  let rows0 = Helpers.scaled paper_rows scale and cols0 = Helpers.scaled paper_cols scale in
  let rows = rows0 / 2 * 2 and cols = cols0 / 2 * 2 in
  let hr = rows / 2 and hc = cols / 2 in
  let full = Stage.dim2 rows cols and half = Stage.dim2 hr hc in
  let here name = load name (Helpers.ident_coords 2) in
  let shifted = Stage.pointwise "shifted" full (load "raw" [| cvar 0; cvar 1 |] /: const 1023.0) in
  let far k l = load "shifted" [| cshift 0 k; cshift 1 l |] in
  let denoised =
    Stage.pointwise "denoised" full
      (clamp (here "shifted")
         ~lo:(min_ (min_ (far (-2) 0) (far 2 0)) (min_ (far 0 (-2)) (far 0 2)))
         ~hi:(max_ (max_ (far (-2) 0) (far 2 0)) (max_ (far 0 (-2)) (far 0 2))))
  in
  (* GRBG deinterleave. *)
  let g_gr = Stage.pointwise "g_gr" half (at2 "denoised" 0 0) in
  let r_r = Stage.pointwise "r_r" half (at2 "denoised" 0 1) in
  let b_b = Stage.pointwise "b_b" half (at2 "denoised" 1 0) in
  let g_gb = Stage.pointwise "g_gb" half (at2 "denoised" 1 1) in
  let avg a b = (a +: b) /: const 2.0 in
  let sh name k l = load name [| cshift 0 k; cshift 1 l |] in
  (* Demosaic interpolations (half resolution). *)
  let gv_r = Stage.pointwise "gv_r" half (avg (sh "g_gb" (-1) 0) (sh "g_gb" 0 0)) in
  let gh_r = Stage.pointwise "gh_r" half (avg (sh "g_gr" 0 0) (sh "g_gr" 0 1)) in
  let g_r = Stage.pointwise "g_r" half (avg (here "gv_r") (here "gh_r")) in
  let gv_b = Stage.pointwise "gv_b" half (avg (sh "g_gr" 0 0) (sh "g_gr" 1 0)) in
  let gh_b = Stage.pointwise "gh_b" half (avg (sh "g_gb" 0 (-1)) (sh "g_gb" 0 0)) in
  let g_b = Stage.pointwise "g_b" half (avg (here "gv_b") (here "gh_b")) in
  let r_gr = Stage.pointwise "r_gr" half (avg (sh "r_r" 0 (-1)) (sh "r_r" 0 0)) in
  let b_gr = Stage.pointwise "b_gr" half (avg (sh "b_b" (-1) 0) (sh "b_b" 0 0)) in
  let r_gb = Stage.pointwise "r_gb" half (avg (sh "r_r" 0 0) (sh "r_r" 1 0)) in
  let b_gb = Stage.pointwise "b_gb" half (avg (sh "b_b" 0 0) (sh "b_b" 0 1)) in
  let r_b = Stage.pointwise "r_b" half (avg (here "r_gr") (here "r_gb")) in
  let b_r = Stage.pointwise "b_r" half (avg (here "b_gr") (here "b_gb")) in
  (* Interleave back to full resolution by pixel parity (GRBG). *)
  let interleave gg rr bb gb =
    select (even 0)
      (select (even 1) (athalf gg 0 0) (athalf rr 0 (-1)))
      (select (even 1) (athalf bb (-1) 0) (athalf gb (-1) (-1)))
  in
  let out_r = Stage.pointwise "out_r" full (interleave "r_gr" "r_r" "r_b" "r_gb") in
  let out_g = Stage.pointwise "out_g" full (interleave "g_gr" "g_r" "g_b" "g_gb") in
  let out_b = Stage.pointwise "out_b" full (interleave "b_gr" "b_r" "b_b" "b_gb") in
  (* Color-matrix correction; the matrix is a 3x4 input. *)
  let m i j =
    load "matrix"
      [| Expr.cscale 0 ~num:0 ~den:1 ~off:i; Expr.cscale 1 ~num:0 ~den:1 ~off:j |]
  in
  let correct row out_name =
    (m row 0 *: here "out_r") +: (m row 1 *: here "out_g") +: (m row 2 *: here "out_b")
    +: m row 3
    |> fun e -> Stage.pointwise out_name full e
  in
  let corr_r = correct 0 "corr_r" in
  let corr_g = correct 1 "corr_g" in
  let corr_b = correct 2 "corr_b" in
  (* Tone curve: data-dependent LUT input access. *)
  let curve src name =
    Stage.pointwise name full
      (load "lut"
         [| cdyn (clamp (here src) ~lo:(const 0.0) ~hi:(const 1.0) *: const 1023.0) |])
  in
  let curved_r = curve "corr_r" "curved_r" in
  let curved_g = curve "corr_g" "curved_g" in
  let curved_b = curve "corr_b" "curved_b" in
  (* Luminance sharpening. *)
  let lum =
    Stage.pointwise "lum" full
      ((here "curved_r" +: here "curved_g" +: here "curved_b") /: const 3.0)
  in
  let usm_x = Stage.pointwise "usm_x" full (Helpers.blur3 "lum" ~ndims:2 ~dim:0) in
  let usm_y = Stage.pointwise "usm_y" full (Helpers.blur3 "usm_x" ~ndims:2 ~dim:1) in
  let detail = Stage.pointwise "detail" full (here "lum" -: here "usm_y") in
  let chan name = load name [| cvar 1; cvar 2 |] in
  let output =
    Stage.pointwise "output" (Stage.dim3 3 rows cols)
      (select (var 0 =: const 0.0)
         (chan "curved_r" +: (const 0.5 *: chan "detail"))
         (select (var 0 =: const 1.0)
            (chan "curved_g" +: (const 0.5 *: chan "detail"))
            (chan "curved_b" +: (const 0.5 *: chan "detail"))))
  in
  Pipeline.build ~name:"camera_pipe"
    ~inputs:
      [
        Pipeline.input2 "raw" rows cols;
        Pipeline.input2 "matrix" 3 4;
        { Pipeline.in_name = "lut"; in_dims = [| { Stage.dim_name = "i"; lo = 0; extent = 1024 } |] };
      ]
    ~stages:
      [
        shifted; denoised; g_gr; r_r; b_b; g_gb; gv_r; gh_r; g_r; gv_b; gh_b; g_b;
        r_gr; b_gr; r_gb; b_gb; r_b; b_r; out_r; out_g; out_b; corr_r; corr_g; corr_b;
        curved_r; curved_g; curved_b; lum; usm_x; usm_y; detail; output;
      ]
    ~outputs:[ "output" ]

let inputs ?(seed = 1) (p : Pipeline.t) =
  let i = Pipeline.find_input p "raw" in
  let rows = i.Pipeline.in_dims.(0).Stage.extent
  and cols = i.Pipeline.in_dims.(1).Stage.extent in
  let matrix = Pmdp_exec.Buffer.create "matrix" (Stage.dim2 3 4) in
  let values =
    [| [| 1.6697; -0.2693; -0.4004; -0.0078 |];
       [| -0.2866; 1.0267; 0.1334; -0.0022 |];
       [| -0.0918; -0.1801; 1.3016; -0.0031 |] |]
  in
  Array.iteri
    (fun r row -> Array.iteri (fun c v -> Pmdp_exec.Buffer.set matrix [| r; c |] v) row)
    values;
  [
    ("raw", Images.bayer ~seed "raw" ~rows ~cols);
    ("matrix", matrix);
    ("lut", Images.lut ~seed:(seed + 3) "lut" 1024);
  ]

open Pmdp_dsl
open Expr

let paper_rows = 1536
let paper_cols = 2560
let levels = 4
let intensity_levels = 8

let extent_at e l = max 2 (e lsr l)

let build ?(scale = 1) () =
  let rows = Helpers.scaled paper_rows scale and cols = Helpers.scaled paper_cols scale in
  let j = intensity_levels in
  let jf = float_of_int (j - 1) in
  let stack_dims_at l =
    [|
      { Stage.dim_name = "j"; lo = 0; extent = j };
      { Stage.dim_name = "x"; lo = 0; extent = extent_at rows l };
      { Stage.dim_name = "y"; lo = 0; extent = extent_at cols l };
    |]
  in
  let dims2_at l = Stage.dim2 (extent_at rows l) (extent_at cols l) in
  let stages = ref [] in
  let push s = stages := s :: !stages in
  (* Luminance of the RGB input. *)
  let chan c = load "img" [| Expr.cscale 0 ~num:0 ~den:1 ~off:c; cvar 0; cvar 1 |] in
  push
    (Stage.pointwise "gray" (dims2_at 0)
       ((const 0.299 *: chan 0) +: (const 0.587 *: chan 1) +: (const 0.114 *: chan 2)));
  (* Remapped intensity stack: one slice per target level k = jj/(J-1),
     pushing values toward/away from k (detail manipulation). *)
  let v = load "gray" [| cvar 1; cvar 2 |] in
  let k = var 0 /: const jf in
  let d = v -: k in
  push
    (Stage.pointwise "remapped" (stack_dims_at 0)
       (v +: (const 0.4 *: (d *: exp_ (neg (d *: d) *: const 8.0)))));
  (* Gaussian pyramid of the stack (separable). *)
  let stack_at l = if l = 0 then "remapped" else Printf.sprintf "gdy%d" l in
  for l = 1 to levels - 1 do
    let mid =
      [|
        { Stage.dim_name = "j"; lo = 0; extent = j };
        { Stage.dim_name = "x"; lo = 0; extent = extent_at rows l };
        { Stage.dim_name = "y"; lo = 0; extent = extent_at cols (l - 1) };
      |]
    in
    push
      (Stage.pointwise (Printf.sprintf "gdx%d" l) mid
         (Helpers.downsample2 (stack_at (l - 1)) ~ndims:3 ~dim:1));
    push
      (Stage.pointwise (Printf.sprintf "gdy%d" l) (stack_dims_at l)
         (Helpers.downsample2 (Printf.sprintf "gdx%d" l) ~ndims:3 ~dim:2))
  done;
  (* Laplacian stack: level minus upsampled next level. *)
  for l = 0 to levels - 2 do
    push
      (Stage.pointwise (Printf.sprintf "lup%d" l) (stack_dims_at l)
         (Pyramid_blend.up2d (stack_at (l + 1)) ~ndims:3));
    push
      (Stage.pointwise (Printf.sprintf "lap%d" l) (stack_dims_at l)
         (load (stack_at l) (Helpers.ident_coords 3)
         -: load (Printf.sprintf "lup%d" l) (Helpers.ident_coords 3)))
  done;
  (* Gaussian pyramid of the input luminance (steering signal). *)
  let gray_at l = if l = 0 then "gray" else Printf.sprintf "igy%d" l in
  for l = 1 to levels - 1 do
    let mid =
      [|
        { Stage.dim_name = "x"; lo = 0; extent = extent_at rows l };
        { Stage.dim_name = "y"; lo = 0; extent = extent_at cols (l - 1) };
      |]
    in
    push
      (Stage.pointwise (Printf.sprintf "igx%d" l) mid
         (Helpers.downsample2 (gray_at (l - 1)) ~ndims:2 ~dim:0));
    push
      (Stage.pointwise (Printf.sprintf "igy%d" l) (dims2_at l)
         (Helpers.downsample2 (Printf.sprintf "igx%d" l) ~ndims:2 ~dim:1))
  done;
  (* Output Laplacian pyramid: per pixel, interpolate between the two
     nearest intensity slices — a data-dependent access along j. *)
  for l = 0 to levels - 1 do
    let src = if l = levels - 1 then stack_at l else Printf.sprintf "lap%d" l in
    let lev =
      clamp (load (gray_at l) [| cvar 0; cvar 1 |]) ~lo:(const 0.0) ~hi:(const 1.0)
      *: const jf
    in
    let j0 = min_ (Unop (Floor, lev)) (const (float_of_int (j - 2))) in
    let f = lev -: j0 in
    let at dj = load src [| cdyn (j0 +: const (float_of_int dj)); cvar 0; cvar 1 |] in
    push
      (Stage.pointwise (Printf.sprintf "outl%d" l) (dims2_at l)
         (((const 1.0 -: f) *: at 0) +: (f *: at 1)))
  done;
  (* Collapse the output pyramid (separable upsampling). *)
  let acc l = if l = levels - 1 then Printf.sprintf "outl%d" l else Printf.sprintf "cadd%d" l in
  for l = levels - 2 downto 0 do
    let mid =
      [|
        { Stage.dim_name = "x"; lo = 0; extent = extent_at rows l };
        { Stage.dim_name = "y"; lo = 0; extent = extent_at cols (l + 1) };
      |]
    in
    push
      (Stage.pointwise (Printf.sprintf "cx%d" l) mid
         (Helpers.upsample2 (acc (l + 1)) ~ndims:2 ~dim:0));
    push
      (Stage.pointwise (Printf.sprintf "cy%d" l) (dims2_at l)
         (Helpers.upsample2 (Printf.sprintf "cx%d" l) ~ndims:2 ~dim:1));
    push
      (Stage.pointwise (Printf.sprintf "cadd%d" l) (dims2_at l)
         (load (Printf.sprintf "outl%d" l) (Helpers.ident_coords 2)
         +: load (Printf.sprintf "cy%d" l) (Helpers.ident_coords 2)))
  done;
  (* Color reconstruction: scale each channel by the luminance ratio. *)
  push
    (Stage.pointwise "output" (Stage.dim3 3 rows cols)
       (clamp
          (load "img" (Helpers.ident_coords 3)
          *: (load "cadd0" [| cvar 1; cvar 2 |]
             /: max_ (load "gray" [| cvar 1; cvar 2 |]) (const 0.01)))
          ~lo:(const 0.0) ~hi:(const 1.0)));
  Pipeline.build ~name:"local_laplacian"
    ~inputs:[ Pipeline.input3 "img" 3 rows cols ]
    ~stages:(List.rev !stages) ~outputs:[ "output" ]

let inputs ?(seed = 1) (p : Pipeline.t) =
  let i = Pipeline.find_input p "img" in
  let rows = i.Pipeline.in_dims.(1).Stage.extent
  and cols = i.Pipeline.in_dims.(2).Stage.extent in
  [ ("img", Images.rgb ~seed "img" ~rows ~cols) ]

(** Morphological gradient pipeline (MG): erosion/dilation chains with
    min/max stencils, opening, top-hat, and gradient — a seventh
    pipeline beyond the paper's benchmarks exercising non-linear
    stencils (the fusion model treats them like any other constant-
    dependence stencil). 10 stages. *)

val paper_rows : int
val paper_cols : int
val radius : int
val build : ?scale:int -> unit -> Pmdp_dsl.Pipeline.t
val inputs : ?seed:int -> Pmdp_dsl.Pipeline.t -> (string * Pmdp_exec.Buffer.t) list

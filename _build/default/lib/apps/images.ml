module Buffer = Pmdp_exec.Buffer
module Stage = Pmdp_dsl.Stage
module Rng = Pmdp_util.Rng

let value rng ~rows ~cols x y =
  let fx = float_of_int x /. float_of_int (max 1 rows) in
  let fy = float_of_int y /. float_of_int (max 1 cols) in
  let smooth = (0.5 *. fx) +. (0.3 *. fy) in
  let texture = 0.1 *. sin ((13.0 *. fx) +. (7.0 *. fy)) in
  let noise = 0.1 *. Rng.float rng 1.0 in
  Float.max 0.0 (Float.min 1.0 (smooth +. texture +. noise))

let plane ?(seed = 1) ~rows ~cols (b : Buffer.t) =
  let rng = Rng.create seed in
  Buffer.fill b (fun idx ->
      let n = Array.length idx in
      value rng ~rows ~cols idx.(n - 2) idx.(n - 1))

let gray ?(seed = 1) name ~rows ~cols =
  let b = Buffer.create name (Stage.dim2 rows cols) in
  plane ~seed ~rows ~cols b;
  b

let rgb ?(seed = 1) name ~rows ~cols =
  let b = Buffer.create name (Stage.dim3 3 rows cols) in
  let rngs = Array.init 3 (fun c -> Rng.create (seed + (97 * (c + 1)))) in
  Buffer.fill b (fun idx -> value rngs.(idx.(0)) ~rows ~cols idx.(1) idx.(2));
  b

let bayer ?(seed = 1) name ~rows ~cols =
  let b = Buffer.create name (Stage.dim2 rows cols) in
  let rng = Rng.create seed in
  Buffer.fill b (fun idx ->
      let base = value rng ~rows ~cols idx.(0) idx.(1) in
      (* GRBG mosaic: green is brighter on average. *)
      let x = idx.(0) and y = idx.(1) in
      let chan_gain =
        match (x land 1, y land 1) with
        | 0, 0 | 1, 1 -> 1.0 (* green *)
        | 0, 1 -> 0.8 (* red *)
        | _ -> 0.9 (* blue *)
      in
      Float.round (base *. chan_gain *. 1023.0));
  b

let lut ?(seed = 1) name len =
  let b = Buffer.create name [| { Stage.dim_name = "i"; lo = 0; extent = len } |] in
  let rng = Rng.create seed in
  let acc = ref 0.0 in
  for i = 0 to len - 1 do
    acc := !acc +. Rng.float rng 1.0;
    b.Buffer.data.(i) <- !acc
  done;
  let total = Float.max 1e-9 !acc in
  for i = 0 to len - 1 do
    b.Buffer.data.(i) <- b.Buffer.data.(i) /. total
  done;
  b

let mask ?(seed = 1) name ~rows ~cols =
  ignore seed;
  let b = Buffer.create name (Stage.dim2 rows cols) in
  Buffer.fill b (fun idx ->
      let fy = float_of_int idx.(1) /. float_of_int (max 1 cols) in
      1.0 /. (1.0 +. exp (-12.0 *. (fy -. 0.5))))
  ;
  b

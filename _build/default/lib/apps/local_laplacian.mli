(** Local Laplacian filter (LL): the classic hard scheduling case from
    the PolyMage/Halide literature (Paris et al.; Halide's
    local_laplacian app), included beyond the paper's six benchmarks
    to stress the DP on a pipeline mixing an intensity-level
    dimension, two interacting pyramids, and data-dependent
    level selection.

    Structure: luminance → a remapped image stack (intensity levels as
    a leading dimension) → Gaussian pyramid of the stack → Laplacian
    stack → per-pixel, data-dependent interpolation across intensity
    levels steered by a Gaussian pyramid of the input → collapse →
    color reconstruction.  34 stages with 4 pyramid levels and 8
    intensity levels. *)

val paper_rows : int
val paper_cols : int
val levels : int  (* pyramid levels *)
val intensity_levels : int
val build : ?scale:int -> unit -> Pmdp_dsl.Pipeline.t
val inputs : ?seed:int -> Pmdp_dsl.Pipeline.t -> (string * Pmdp_exec.Buffer.t) list

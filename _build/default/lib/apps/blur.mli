(** The paper's running example (Fig. 1): two-stage separable blur. *)

val build : ?rows:int -> ?cols:int -> unit -> Pmdp_dsl.Pipeline.t
(** 3-channel blur: blurx then blury (defaults 2046×2048, the sizes
    of the paper's Fig. 3). *)

val inputs : ?seed:int -> Pmdp_dsl.Pipeline.t -> (string * Pmdp_exec.Buffer.t) list

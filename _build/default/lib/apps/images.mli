(** Deterministic synthetic input images.

    The paper's benchmarks run on photographs; pipeline runtime is
    data-independent here (no data-dependent control flow affects the
    amount of work), so seeded synthetic images — smooth structure
    plus noise, and a Bayer mosaic for the camera pipeline — exercise
    identical code paths (see DESIGN.md, substitutions). *)

val plane : ?seed:int -> rows:int -> cols:int -> Pmdp_exec.Buffer.t -> unit
(** Fill a 2-D buffer with a smooth gradient + sinusoid + noise
    pattern in [0, 1]. *)

val gray : ?seed:int -> string -> rows:int -> cols:int -> Pmdp_exec.Buffer.t
(** Fresh filled 2-D image. *)

val rgb : ?seed:int -> string -> rows:int -> cols:int -> Pmdp_exec.Buffer.t
(** Fresh filled 3-D image (3 × rows × cols), channels decorrelated. *)

val bayer : ?seed:int -> string -> rows:int -> cols:int -> Pmdp_exec.Buffer.t
(** Raw sensor mosaic (GRBG pattern) in [0, 1024). *)

val lut : ?seed:int -> string -> int -> Pmdp_exec.Buffer.t
(** Monotone tone-curve lookup table of the given length, values in
    [0, 1]. *)

val mask : ?seed:int -> string -> rows:int -> cols:int -> Pmdp_exec.Buffer.t
(** Smooth blend mask in [0, 1] (sigmoid ramp across columns). *)

open Pmdp_dsl
open Expr

let paper_rows = 2832
let paper_cols = 4256
let radius = 2

(* Separable running min/max over [-radius, radius] along one dim. *)
let extremum op name ~ndims ~dim =
  let at k = load name (Helpers.shifted ndims ~dim k) in
  let rec go k acc = if k > radius then acc else go (k + 1) (op acc (at k)) in
  go (-radius + 1) (at (-radius))

let build ?(scale = 1) () =
  let rows = Helpers.scaled paper_rows scale and cols = Helpers.scaled paper_cols scale in
  let dims = Stage.dim2 rows cols in
  let here name = load name [| cvar 0; cvar 1 |] in
  let stages =
    [
      (* erosion (running minimum) *)
      Stage.pointwise "ero_x" dims (extremum min_ "img" ~ndims:2 ~dim:0);
      Stage.pointwise "ero_y" dims (extremum min_ "ero_x" ~ndims:2 ~dim:1);
      (* opening: dilate the eroded image *)
      Stage.pointwise "open_x" dims (extremum max_ "ero_y" ~ndims:2 ~dim:0);
      Stage.pointwise "open_y" dims (extremum max_ "open_x" ~ndims:2 ~dim:1);
      (* dilation of the original *)
      Stage.pointwise "dil_x" dims (extremum max_ "img" ~ndims:2 ~dim:0);
      Stage.pointwise "dil_y" dims (extremum max_ "dil_x" ~ndims:2 ~dim:1);
      (* morphological gradient, top-hat, and a contrast-enhanced output *)
      Stage.pointwise "gradient" dims (here "dil_y" -: here "ero_y");
      Stage.pointwise "tophat" dims (load "img" [| cvar 0; cvar 1 |] -: here "open_y");
      Stage.pointwise "enhanced" dims
        (clamp
           (load "img" [| cvar 0; cvar 1 |] +: (const 0.5 *: here "tophat"))
           ~lo:(const 0.0) ~hi:(const 1.0));
      Stage.pointwise "output" dims
        (select (here "gradient" >: const 0.25) (here "gradient") (here "enhanced"));
    ]
  in
  Pipeline.build ~name:"morphology"
    ~inputs:[ Pipeline.input2 "img" rows cols ]
    ~stages ~outputs:[ "output" ]

let inputs ?(seed = 1) (p : Pipeline.t) =
  let i = Pipeline.find_input p "img" in
  let rows = i.Pipeline.in_dims.(0).Stage.extent
  and cols = i.Pipeline.in_dims.(1).Stage.extent in
  [ ("img", Images.gray ~seed "img" ~rows ~cols) ]

open Pmdp_dsl
open Expr

let paper_rows = 2832
let paper_cols = 4256

(* 3x3 stencil with per-tap weights over a 2-D producer. *)
let stencil3x3 name weights =
  let acc = ref None in
  List.iteri
    (fun i row ->
      List.iteri
        (fun j w ->
          if w <> 0.0 then begin
            let term =
              const w *: load name [| cshift 0 (i - 1); cshift 1 (j - 1) |]
            in
            acc := Some (match !acc with None -> term | Some a -> a +: term)
          end)
        row)
    weights;
  Option.get !acc

let build ?(scale = 1) () =
  let rows = Helpers.scaled paper_rows scale and cols = Helpers.scaled paper_cols scale in
  let dims = Stage.dim2 rows cols in
  let gray =
    Stage.pointwise "gray" dims
      ((const 0.299 *: load "img" [| Expr.cscale 0 ~num:0 ~den:1 ~off:0; cvar 0; cvar 1 |])
      +: (const 0.587 *: load "img" [| Expr.cscale 0 ~num:0 ~den:1 ~off:1; cvar 0; cvar 1 |])
      +: (const 0.114 *: load "img" [| Expr.cscale 0 ~num:0 ~den:1 ~off:2; cvar 0; cvar 1 |]))
  in
  let s = 1.0 /. 12.0 in
  let ix =
    Stage.pointwise "ix" dims
      (stencil3x3 "gray"
         [ [ -.s; 0.0; s ]; [ -2.0 *. s; 0.0; 2.0 *. s ]; [ -.s; 0.0; s ] ])
  in
  let iy =
    Stage.pointwise "iy" dims
      (stencil3x3 "gray"
         [ [ -.s; -2.0 *. s; -.s ]; [ 0.0; 0.0; 0.0 ]; [ s; 2.0 *. s; s ] ])
  in
  let here name = load name (Helpers.ident_coords 2) in
  let ixx = Stage.pointwise "ixx" dims (here "ix" *: here "ix") in
  let iyy = Stage.pointwise "iyy" dims (here "iy" *: here "iy") in
  let ixy = Stage.pointwise "ixy" dims (here "ix" *: here "iy") in
  let box name = stencil3x3 name [ [ 1.; 1.; 1. ]; [ 1.; 1.; 1. ]; [ 1.; 1.; 1. ] ] in
  let sxx = Stage.pointwise "sxx" dims (box "ixx") in
  let syy = Stage.pointwise "syy" dims (box "iyy") in
  let sxy = Stage.pointwise "sxy" dims (box "ixy") in
  let det = Stage.pointwise "det" dims ((here "sxx" *: here "syy") -: (here "sxy" *: here "sxy")) in
  let harris =
    Stage.pointwise "harris" dims
      (here "det" -: (const 0.04 *: ((here "sxx" +: here "syy") *: (here "sxx" +: here "syy"))))
  in
  Pipeline.build ~name:"harris"
    ~inputs:[ Pipeline.input3 "img" 3 rows cols ]
    ~stages:[ gray; ix; iy; ixx; iyy; ixy; sxx; syy; sxy; det; harris ]
    ~outputs:[ "harris" ]

let inputs ?(seed = 1) (p : Pipeline.t) =
  let i = Pipeline.find_input p "img" in
  let rows = i.Pipeline.in_dims.(1).Stage.extent
  and cols = i.Pipeline.in_dims.(2).Stage.extent in
  [ ("img", Images.rgb ~seed "img" ~rows ~cols) ]

lib/apps/pyramid_blend.mli: Pmdp_dsl Pmdp_exec

lib/apps/camera_pipe.mli: Pmdp_dsl Pmdp_exec

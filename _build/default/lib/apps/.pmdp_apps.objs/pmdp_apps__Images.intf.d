lib/apps/images.mli: Pmdp_exec

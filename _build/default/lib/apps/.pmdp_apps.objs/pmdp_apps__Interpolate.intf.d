lib/apps/interpolate.mli: Pmdp_dsl Pmdp_exec

lib/apps/pyramid_blend.ml: Array Expr Helpers Images List Pipeline Pmdp_dsl Pmdp_util Printf Stage

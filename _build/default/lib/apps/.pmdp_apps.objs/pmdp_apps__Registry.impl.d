lib/apps/registry.ml: Bilateral_grid Blur Camera_pipe Harris Interpolate List Local_laplacian Morphology Pmdp_dsl Pmdp_exec Pyramid_blend String Unsharp

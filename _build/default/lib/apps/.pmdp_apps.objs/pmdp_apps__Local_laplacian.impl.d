lib/apps/local_laplacian.ml: Array Expr Helpers Images List Pipeline Pmdp_dsl Printf Pyramid_blend Stage

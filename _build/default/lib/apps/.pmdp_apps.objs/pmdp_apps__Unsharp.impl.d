lib/apps/unsharp.ml: Array Expr Helpers Images Pipeline Pmdp_dsl Stage

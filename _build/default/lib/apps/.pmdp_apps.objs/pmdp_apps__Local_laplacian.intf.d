lib/apps/local_laplacian.mli: Pmdp_dsl Pmdp_exec

lib/apps/registry.mli: Pmdp_dsl Pmdp_exec

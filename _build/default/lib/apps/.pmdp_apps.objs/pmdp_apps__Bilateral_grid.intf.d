lib/apps/bilateral_grid.mli: Pmdp_dsl Pmdp_exec

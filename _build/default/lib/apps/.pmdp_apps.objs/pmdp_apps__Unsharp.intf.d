lib/apps/unsharp.mli: Pmdp_dsl Pmdp_exec

lib/apps/images.ml: Array Float Pmdp_dsl Pmdp_exec Pmdp_util

lib/apps/morphology.mli: Pmdp_dsl Pmdp_exec

lib/apps/harris.ml: Array Expr Helpers Images List Option Pipeline Pmdp_dsl Stage

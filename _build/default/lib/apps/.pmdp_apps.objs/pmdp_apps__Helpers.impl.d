lib/apps/helpers.ml: Array Expr List Pmdp_dsl Pmdp_util

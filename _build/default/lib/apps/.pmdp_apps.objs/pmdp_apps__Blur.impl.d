lib/apps/blur.ml: Array Helpers Images Pipeline Pmdp_dsl Stage

lib/apps/interpolate.ml: Array Expr Helpers Images List Pipeline Pmdp_dsl Printf Stage

lib/apps/blur.mli: Pmdp_dsl Pmdp_exec

lib/apps/camera_pipe.ml: Array Expr Helpers Images Pipeline Pmdp_dsl Pmdp_exec Pmdp_util Stage

lib/apps/helpers.mli: Expr Pmdp_dsl

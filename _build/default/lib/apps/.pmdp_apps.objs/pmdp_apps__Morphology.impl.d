lib/apps/morphology.ml: Array Expr Helpers Images Pipeline Pmdp_dsl Stage

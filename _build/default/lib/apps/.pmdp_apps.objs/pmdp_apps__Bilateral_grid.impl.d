lib/apps/bilateral_grid.ml: Array Expr Helpers Images Pipeline Pmdp_dsl Pmdp_util Stage

lib/apps/harris.mli: Pmdp_dsl Pmdp_exec

(** Pyramid Blending (PB): 44 stages, paper size 3840×2160×3.

    Two images are blended under a mask by constructing 4-level
    Gaussian pyramids (separable downsampling) for both images and
    the mask, forming Laplacians, blending per level, and collapsing
    with separable upsampling — the structure of the paper's Table 2
    benchmark. *)

val paper_rows : int
val paper_cols : int
val levels : int
val build : ?scale:int -> unit -> Pmdp_dsl.Pipeline.t
val inputs : ?seed:int -> Pmdp_dsl.Pipeline.t -> (string * Pmdp_exec.Buffer.t) list

val up2d : string -> ndims:int -> Pmdp_dsl.Expr.t
(** Single-stage bilinear 2x upsampling of an [ndims]-dimensional
    producer in both spatial (last two) dimensions; shared with the
    Local Laplacian app. *)

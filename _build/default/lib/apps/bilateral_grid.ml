open Pmdp_dsl
open Expr

let paper_rows = 1536
let paper_cols = 2560
let sigma_s = 8
let bins = 12

let build ?(scale = 1) () =
  let rows = Helpers.scaled paper_rows scale and cols = Helpers.scaled paper_cols scale in
  let gr = ((rows - 1) / sigma_s) + 1 and gc = ((cols - 1) / sigma_s) + 1 in
  let dims2 = Stage.dim2 rows cols in
  let grid_dims =
    [|
      { Stage.dim_name = "w"; lo = 0; extent = 2 };
      { Stage.dim_name = "z"; lo = 0; extent = bins };
      { Stage.dim_name = "gx"; lo = 0; extent = gr };
      { Stage.dim_name = "gy"; lo = 0; extent = gc };
    |]
  in
  let clamped =
    Stage.pointwise "clamped" dims2
      (clamp (load "img" [| cvar 0; cvar 1 |]) ~lo:(const 0.0) ~hi:(const 1.0))
  in
  (* grid(w, z, gx, gy): over the sigma_s x sigma_s cell, sum the
     intensities (w=0) and counts (w=1) of pixels whose bin is z.
     Vars: 0=w 1=z 2=gx 3=gy; rvars: 4=di 5=dj. *)
  let cell_value =
    load "clamped"
      [|
        cdyn ((const (float_of_int sigma_s) *: var 2) +: var 4);
        cdyn ((const (float_of_int sigma_s) *: var 3) +: var 5);
      |]
  in
  let bin_of v = Unop (Floor, (v *: const (float_of_int (bins - 2))) +: const 0.5) in
  let grid =
    Stage.reduction "grid" grid_dims ~op:Stage.Rsum ~init:0.0
      ~rdom:[| (0, sigma_s); (0, sigma_s) |]
      (select
         (bin_of cell_value =: var 1)
         (select (var 0 =: const 0.0) cell_value (const 1.0))
         (const 0.0))
  in
  let blurz = Stage.pointwise "blurz" grid_dims
      (Helpers.stencil "grid" ~ndims:4 ~dim:1 [ (-1, 0.25); (0, 0.5); (1, 0.25) ])
  in
  let blurx = Stage.pointwise "blurx" grid_dims
      (Helpers.stencil "blurz" ~ndims:4 ~dim:2 [ (-1, 0.25); (0, 0.5); (1, 0.25) ])
  in
  let blury = Stage.pointwise "blury" grid_dims
      (Helpers.stencil "blurx" ~ndims:4 ~dim:3 [ (-1, 0.25); (0, 0.5); (1, 0.25) ])
  in
  (* slice(w, x, y): bilinear spatial interpolation at the pixel's
     intensity bin.  Vars: 0=w 1=x 2=y. *)
  let zbin = bin_of (load "clamped" [| cvar 1; cvar 2 |]) in
  let s = float_of_int sigma_s in
  let gxf k =
    Cvar { var = 1; scale = Pmdp_util.Rational.make 1 sigma_s; offset = Pmdp_util.Rational.of_int k }
  in
  let gyf k =
    Cvar { var = 2; scale = Pmdp_util.Rational.make 1 sigma_s; offset = Pmdp_util.Rational.of_int k }
  in
  let fx = (var 1 /: const s) -: Unop (Floor, var 1 /: const s) in
  let fy = (var 2 /: const s) -: Unop (Floor, var 2 /: const s) in
  let corner kx ky = load "blury" [| cvar 0; cdyn zbin; gxf kx; gyf ky |] in
  let slice_dims =
    [|
      { Stage.dim_name = "w"; lo = 0; extent = 2 };
      { Stage.dim_name = "x"; lo = 0; extent = rows };
      { Stage.dim_name = "y"; lo = 0; extent = cols };
    |]
  in
  let slice =
    Stage.pointwise "slice" slice_dims
      (((const 1.0 -: fx) *: ((const 1.0 -: fy) *: corner 0 0 +: (fy *: corner 0 1)))
      +: (fx *: ((const 1.0 -: fy) *: corner 1 0 +: (fy *: corner 1 1))))
  in
  let at w = load "slice" [| Expr.cscale 0 ~num:0 ~den:1 ~off:w; cvar 0; cvar 1 |] in
  let out = Stage.pointwise "out" dims2 (at 0 /: max_ (at 1) (const 1e-3)) in
  Pipeline.build ~name:"bilateral_grid"
    ~inputs:[ Pipeline.input2 "img" rows cols ]
    ~stages:[ clamped; grid; blurz; blurx; blury; slice; out ]
    ~outputs:[ "out" ]

let inputs ?(seed = 1) (p : Pipeline.t) =
  let i = Pipeline.find_input p "img" in
  let rows = i.Pipeline.in_dims.(0).Stage.extent
  and cols = i.Pipeline.in_dims.(1).Stage.extent in
  [ ("img", Images.gray ~seed "img" ~rows ~cols) ]

open Pmdp_dsl
open Expr

let paper_rows = 2832
let paper_cols = 4256

let build ?(scale = 1) () =
  let rows = Helpers.scaled paper_rows scale and cols = Helpers.scaled paper_cols scale in
  let dims = Stage.dim3 3 rows cols in
  let weight = 3.0 and threshold = 0.001 in
  let blurx = Stage.pointwise "blurx" dims (Helpers.blur3 "img" ~ndims:3 ~dim:1) in
  let blury = Stage.pointwise "blury" dims (Helpers.blur3 "blurx" ~ndims:3 ~dim:2) in
  let here name = load name (Helpers.ident_coords 3) in
  let sharpen =
    Stage.pointwise "sharpen" dims
      ((const (1.0 +. weight) *: here "img") -: (const weight *: here "blury"))
  in
  let masked =
    Stage.pointwise "masked" dims
      (select
         (abs_ (here "img" -: here "blury") <: const threshold)
         (here "img") (here "sharpen"))
  in
  Pipeline.build ~name:"unsharp"
    ~inputs:[ Pipeline.input3 "img" 3 rows cols ]
    ~stages:[ blurx; blury; sharpen; masked ]
    ~outputs:[ "masked" ]

let inputs ?(seed = 1) (p : Pipeline.t) =
  let i = Pipeline.find_input p "img" in
  let rows = i.Pipeline.in_dims.(1).Stage.extent
  and cols = i.Pipeline.in_dims.(2).Stage.extent in
  [ ("img", Images.rgb ~seed "img" ~rows ~cols) ]

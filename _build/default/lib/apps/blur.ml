open Pmdp_dsl

let build ?(rows = 2046) ?(cols = 2048) () =
  let dims = Stage.dim3 3 rows cols in
  let blurx = Stage.pointwise "blurx" dims (Helpers.blur3 "img" ~ndims:3 ~dim:1) in
  let blury = Stage.pointwise "blury" dims (Helpers.blur3 "blurx" ~ndims:3 ~dim:2) in
  Pipeline.build ~name:"blur"
    ~inputs:[ Pipeline.input3 "img" 3 rows cols ]
    ~stages:[ blurx; blury ] ~outputs:[ "blury" ]

let inputs ?(seed = 1) (p : Pipeline.t) =
  let i = Pipeline.find_input p "img" in
  let rows = i.Pipeline.in_dims.(1).Stage.extent
  and cols = i.Pipeline.in_dims.(2).Stage.extent in
  [ ("img", Images.rgb ~seed "img" ~rows ~cols) ]

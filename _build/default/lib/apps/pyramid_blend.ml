open Pmdp_dsl
open Expr

let paper_rows = 2160
let paper_cols = 3840
let levels = 4

let extent_at e l = max 2 (e lsr l)

(* Single-stage bilinear 2x upsampling in both spatial dims of an
   [ndims]-dim producer (spatial dims are the last two). *)
let up2d name ~ndims =
  let half v k =
    Cvar { var = v; scale = Pmdp_util.Rational.make 1 2; offset = Pmdp_util.Rational.make k 2 }
  in
  let xd = ndims - 2 and yd = ndims - 1 in
  let corner a b =
    load name
      (Array.init ndims (fun d ->
           if d = xd then half xd a else if d = yd then half yd b else Expr.cvar d))
  in
  const 0.25 *: (corner 0 0 +: corner 1 0 +: corner 0 1 +: corner 1 1)

let build ?(scale = 1) () =
  let rows = Helpers.scaled paper_rows scale and cols = Helpers.scaled paper_cols scale in
  let dims3_at l = Stage.dim3 3 (extent_at rows l) (extent_at cols l) in
  let dims2_at l = Stage.dim2 (extent_at rows l) (extent_at cols l) in
  let stages = ref [] in
  let push s = stages := s :: !stages in
  let gauss img l = if l = 0 then "img" ^ img else Printf.sprintf "gdy_%s%d" img l in
  let mask_at l = if l = 0 then "mask" else Printf.sprintf "mdy%d" l in
  (* Gaussian pyramids of both images (separable decimation). *)
  List.iter
    (fun img ->
      for l = 1 to levels - 1 do
        let mid =
          [|
            { Stage.dim_name = "c"; lo = 0; extent = 3 };
            { Stage.dim_name = "x"; lo = 0; extent = extent_at rows l };
            { Stage.dim_name = "y"; lo = 0; extent = extent_at cols (l - 1) };
          |]
        in
        push
          (Stage.pointwise
             (Printf.sprintf "gdx_%s%d" img l)
             mid
             (Helpers.downsample2 (gauss img (l - 1)) ~ndims:3 ~dim:1));
        push
          (Stage.pointwise
             (Printf.sprintf "gdy_%s%d" img l)
             (dims3_at l)
             (Helpers.downsample2 (Printf.sprintf "gdx_%s%d" img l) ~ndims:3 ~dim:2))
      done)
    [ "a"; "b" ];
  (* Mask pyramid (2-D). *)
  for l = 1 to levels - 1 do
    let mid =
      [|
        { Stage.dim_name = "x"; lo = 0; extent = extent_at rows l };
        { Stage.dim_name = "y"; lo = 0; extent = extent_at cols (l - 1) };
      |]
    in
    push
      (Stage.pointwise (Printf.sprintf "mdx%d" l) mid
         (Helpers.downsample2 (mask_at (l - 1)) ~ndims:2 ~dim:0));
    push
      (Stage.pointwise (Printf.sprintf "mdy%d" l) (dims2_at l)
         (Helpers.downsample2 (Printf.sprintf "mdx%d" l) ~ndims:2 ~dim:1))
  done;
  (* Laplacians: level minus upsampled next level. *)
  List.iter
    (fun img ->
      for l = 0 to levels - 2 do
        push
          (Stage.pointwise
             (Printf.sprintf "up_%s%d" img l)
             (dims3_at l)
             (up2d (gauss img (l + 1)) ~ndims:3));
        push
          (Stage.pointwise
             (Printf.sprintf "lap_%s%d" img l)
             (dims3_at l)
             (load (gauss img l) (Helpers.ident_coords 3)
             -: load (Printf.sprintf "up_%s%d" img l) (Helpers.ident_coords 3)))
      done)
    [ "a"; "b" ];
  (* Per-level blends under the mask pyramid. *)
  for l = 0 to levels - 1 do
    let m = load (mask_at l) [| cvar 1; cvar 2 |] in
    let part img =
      if l = levels - 1 then load (gauss img l) (Helpers.ident_coords 3)
      else load (Printf.sprintf "lap_%s%d" img l) (Helpers.ident_coords 3)
    in
    push
      (Stage.pointwise
         (Printf.sprintf "blend%d" l)
         (dims3_at l)
         ((m *: part "a") +: ((const 1.0 -: m) *: part "b")))
  done;
  (* Collapse with separable upsampling. *)
  let acc l = if l = levels - 1 then Printf.sprintf "blend%d" l else Printf.sprintf "coladd%d" l in
  for l = levels - 2 downto 0 do
    let mid =
      [|
        { Stage.dim_name = "c"; lo = 0; extent = 3 };
        { Stage.dim_name = "x"; lo = 0; extent = extent_at rows l };
        { Stage.dim_name = "y"; lo = 0; extent = extent_at cols (l + 1) };
      |]
    in
    push
      (Stage.pointwise (Printf.sprintf "colx%d" l) mid
         (Helpers.upsample2 (acc (l + 1)) ~ndims:3 ~dim:1));
    push
      (Stage.pointwise (Printf.sprintf "coly%d" l) (dims3_at l)
         (Helpers.upsample2 (Printf.sprintf "colx%d" l) ~ndims:3 ~dim:2));
    push
      (Stage.pointwise (Printf.sprintf "coladd%d" l) (dims3_at l)
         (load (Printf.sprintf "blend%d" l) (Helpers.ident_coords 3)
         +: load (Printf.sprintf "coly%d" l) (Helpers.ident_coords 3)))
  done;
  push
    (Stage.pointwise "output" (dims3_at 0)
       (clamp (load "coladd0" (Helpers.ident_coords 3)) ~lo:(const 0.0) ~hi:(const 1.0)));
  Pipeline.build ~name:"pyramid_blend"
    ~inputs:
      [
        Pipeline.input3 "imga" 3 rows cols;
        Pipeline.input3 "imgb" 3 rows cols;
        Pipeline.input2 "mask" rows cols;
      ]
    ~stages:(List.rev !stages) ~outputs:[ "output" ]

let inputs ?(seed = 1) (p : Pipeline.t) =
  let i = Pipeline.find_input p "imga" in
  let rows = i.Pipeline.in_dims.(1).Stage.extent
  and cols = i.Pipeline.in_dims.(2).Stage.extent in
  [
    ("imga", Images.rgb ~seed "imga" ~rows ~cols);
    ("imgb", Images.rgb ~seed:(seed + 11) "imgb" ~rows ~cols);
    ("mask", Images.mask ~seed:(seed + 23) "mask" ~rows ~cols);
  ]

(** Harris Corner Detection (HC): 11 stages, paper size 4256×2832.

    gray → Sobel gradients → products → 3×3 box sums → determinant →
    corner response; stencils and point-wise stages mixed, as in the
    paper's Table 2. *)

val paper_rows : int
val paper_cols : int
val build : ?scale:int -> unit -> Pmdp_dsl.Pipeline.t
val inputs : ?seed:int -> Pmdp_dsl.Pipeline.t -> (string * Pmdp_exec.Buffer.t) list

(** Camera Pipeline (CP): 32 stages, paper size 2592×1968.

    Raw GRBG Bayer mosaic → hot-pixel suppression → 4-way
    deinterleave (stride-2 accesses) → 12 demosaic interpolation
    stages → parity-select interleave back to full resolution →
    color-matrix correction → tone-curve LUT (data-dependent input
    access) → luminance sharpening → interleaved 3-channel output.
    Stencil-like, interleaved, and data-dependent access patterns, as
    the paper describes. *)

val paper_rows : int
val paper_cols : int
val build : ?scale:int -> unit -> Pmdp_dsl.Pipeline.t
val inputs : ?seed:int -> Pmdp_dsl.Pipeline.t -> (string * Pmdp_exec.Buffer.t) list

open Pmdp_dsl
open Expr

let paper_rows = 1536
let paper_cols = 2560
let levels = 10

let extent_at e l = max 2 (e lsr l)

let build ?(scale = 1) () =
  let rows = Helpers.scaled paper_rows scale and cols = Helpers.scaled paper_cols scale in
  let dims_at l = Stage.dim3 3 (extent_at rows l) (extent_at cols l) in
  let stages = ref [] in
  let push s = stages := s :: !stages in
  let clamped =
    Stage.pointwise "clamped" (dims_at 0)
      (clamp (load "img" (Helpers.ident_coords 3)) ~lo:(const 0.0) ~hi:(const 1.0))
  in
  push clamped;
  let premult =
    Stage.pointwise "premult" (dims_at 0)
      (load "clamped" (Helpers.ident_coords 3) *: load "alpha" [| cvar 1; cvar 2 |])
  in
  push premult;
  (* Downsampling chain: down0 = premult; per level l >= 1,
     downx_l decimates x from level l-1, downy_l decimates y. *)
  let down_name l = if l = 0 then "premult" else Printf.sprintf "downy%d" l in
  for l = 1 to levels - 1 do
    let mid_dims =
      [|
        { Stage.dim_name = "c"; lo = 0; extent = 3 };
        { Stage.dim_name = "x"; lo = 0; extent = extent_at rows l };
        { Stage.dim_name = "y"; lo = 0; extent = extent_at cols (l - 1) };
      |]
    in
    push
      (Stage.pointwise
         (Printf.sprintf "downx%d" l)
         mid_dims
         (Helpers.downsample2 (down_name (l - 1)) ~ndims:3 ~dim:1));
    push
      (Stage.pointwise
         (Printf.sprintf "downy%d" l)
         (dims_at l)
         (Helpers.downsample2 (Printf.sprintf "downx%d" l) ~ndims:3 ~dim:2))
  done;
  (* Upsample-and-blend back: u_(levels-1) = coarsest downy; for
     l = levels-2 .. 0: upx_l/upy_l upsample u_(l+1), then
     interp_l blends with down_l. *)
  let u_name l = if l = levels - 1 then down_name (levels - 1) else Printf.sprintf "interp%d" l in
  for l = levels - 2 downto 0 do
    let mid_dims =
      [|
        { Stage.dim_name = "c"; lo = 0; extent = 3 };
        { Stage.dim_name = "x"; lo = 0; extent = extent_at rows l };
        { Stage.dim_name = "y"; lo = 0; extent = extent_at cols (l + 1) };
      |]
    in
    push
      (Stage.pointwise
         (Printf.sprintf "upx%d" l)
         mid_dims
         (Helpers.upsample2 (u_name (l + 1)) ~ndims:3 ~dim:1));
    push
      (Stage.pointwise
         (Printf.sprintf "upy%d" l)
         (dims_at l)
         (Helpers.upsample2 (Printf.sprintf "upx%d" l) ~ndims:3 ~dim:2));
    push
      (Stage.pointwise
         (Printf.sprintf "interp%d" l)
         (dims_at l)
         ((const 0.5 *: load (down_name l) (Helpers.ident_coords 3))
         +: (const 0.5 *: load (Printf.sprintf "upy%d" l) (Helpers.ident_coords 3))))
  done;
  let unpremult =
    Stage.pointwise "unpremult" (dims_at 0)
      (load "interp0" (Helpers.ident_coords 3)
      /: ((const 0.5 *: load "alpha" [| cvar 1; cvar 2 |]) +: const 0.5))
  in
  push unpremult;
  let output =
    Stage.pointwise "output" (dims_at 0)
      (clamp (load "unpremult" (Helpers.ident_coords 3)) ~lo:(const 0.0) ~hi:(const 2.0))
  in
  push output;
  Pipeline.build ~name:"interpolate"
    ~inputs:[ Pipeline.input3 "img" 3 rows cols; Pipeline.input2 "alpha" rows cols ]
    ~stages:(List.rev !stages) ~outputs:[ "output" ]

let inputs ?(seed = 1) (p : Pipeline.t) =
  let i = Pipeline.find_input p "img" in
  let rows = i.Pipeline.in_dims.(1).Stage.extent
  and cols = i.Pipeline.in_dims.(2).Stage.extent in
  [
    ("img", Images.rgb ~seed "img" ~rows ~cols);
    ("alpha", Images.mask ~seed:(seed + 7) "alpha" ~rows ~cols);
  ]

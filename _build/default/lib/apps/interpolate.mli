(** Multiscale Interpolation (MI): 49 stages, paper size 1536×2560×3.

    A 10-level image pyramid: alpha premultiply, 9 levels of
    separable 2x downsampling (downx/downy), then a separable
    upsample-and-blend chain back to full resolution (upx/upy/interp
    per level), and unpremultiply + output.  Fusing across levels
    requires the rational scaling of the paper's §2.2; overlap grows
    geometrically with fused depth, which is what bounds group sizes
    here. *)

val paper_rows : int
val paper_cols : int
val levels : int
val build : ?scale:int -> unit -> Pmdp_dsl.Pipeline.t
val inputs : ?seed:int -> Pmdp_dsl.Pipeline.t -> (string * Pmdp_exec.Buffer.t) list

(** Bilateral Grid (BG): 7 stages, paper size 1536×2560.

    clamped → grid (a histogram-style reduction over each spatial
    cell, 4-D: homogeneous channel × intensity bin × cell) → blurz →
    blurx → blury → slice (data-dependent trilinear-style lookup) →
    out.  The grid construction is a reduction and the slice access
    is data-dependent, so PolyMage-style fusion cannot group either
    with its neighbors — the structural reason the paper gives for
    Halide winning this benchmark. *)

val paper_rows : int
val paper_cols : int
(* sigma_s: spatial cell size (8); bins: intensity bins (12). *)
val sigma_s : int
val bins : int
val build : ?scale:int -> unit -> Pmdp_dsl.Pipeline.t
val inputs : ?seed:int -> Pmdp_dsl.Pipeline.t -> (string * Pmdp_exec.Buffer.t) list

(** Unsharp Mask (UM): 4 stages, paper size 4256×2832×3.

    blurx → blury → sharpen → masked; the classic PolyMage/Halide
    benchmark of the paper's Table 2. *)

val paper_rows : int
val paper_cols : int

val build : ?scale:int -> unit -> Pmdp_dsl.Pipeline.t
(** [scale] divides the paper's image size (default 1 = paper size). *)

val inputs : ?seed:int -> Pmdp_dsl.Pipeline.t -> (string * Pmdp_exec.Buffer.t) list

open Pmdp_dsl

let ident_coords ndims = Array.init ndims Expr.cvar

let shifted ndims ~dim k =
  Array.init ndims (fun d -> if d = dim then Expr.cshift d k else Expr.cvar d)

let stencil name ~ndims ~dim taps =
  match taps with
  | [] -> invalid_arg "Helpers.stencil: empty taps"
  | (k0, w0) :: rest ->
      List.fold_left
        (fun acc (k, w) ->
          Expr.(acc +: (const w *: load name (shifted ndims ~dim k))))
        Expr.(const w0 *: load name (shifted ndims ~dim k0))
        rest

let blur3 name ~ndims ~dim =
  let third = 1.0 /. 3.0 in
  stencil name ~ndims ~dim [ (-1, third); (0, third); (1, third) ]

let downsample2 name ~ndims ~dim =
  let tap k w =
    Expr.(
      const w
      *: load name
           (Array.init ndims (fun d ->
                if d = dim then Expr.cscale d ~num:2 ~den:1 ~off:k else Expr.cvar d)))
  in
  Expr.(tap (-1) 0.25 +: tap 0 0.5 +: tap 1 0.25)

let upsample2 name ~ndims ~dim =
  let at shift =
    (* floor((x + shift) / 2) = floor(x/2 + shift/2) *)
    Expr.load name
      (Array.init ndims (fun d ->
           if d = dim then
             Expr.Cvar
               {
                 var = d;
                 scale = Pmdp_util.Rational.make 1 2;
                 offset = Pmdp_util.Rational.make shift 2;
               }
           else Expr.cvar d))
  in
  Expr.(const 0.5 *: (at 0 +: at 1))

let round_extent e ~multiple ~min =
  let r = e / multiple * multiple in
  if r >= min then r else min

let scaled paper_extent scale = max 16 (paper_extent / scale)

(** Shared expression builders for the benchmark pipelines. *)

open Pmdp_dsl

val ident_coords : int -> Expr.coord array
(** Identity access: coordinate [k] is variable [k]. *)

val shifted : int -> dim:int -> int -> Expr.coord array
(** Identity access of the given arity with dimension [dim] shifted
    by the offset. *)

val stencil : string -> ndims:int -> dim:int -> (int * float) list -> Expr.t
(** [stencil name ~ndims ~dim taps] is [Σ w * name(.., x_dim + k, ..)]
    over [(k, w)] taps. @raise Invalid_argument on empty taps. *)

val blur3 : string -> ndims:int -> dim:int -> Expr.t
(** 3-tap box blur along [dim]: [(f(-1) + f(0) + f(+1)) / 3]. *)

val downsample2 : string -> ndims:int -> dim:int -> Expr.t
(** 3-tap [1/4, 1/2, 1/4] decimation along [dim]: producer read at
    [2*x + {-1,0,1}]. *)

val upsample2 : string -> ndims:int -> dim:int -> Expr.t
(** Linear 2x upsampling along [dim]: average of producer values at
    [floor(x/2)] and [floor((x+1)/2)]. *)

val round_extent : int -> multiple:int -> min:int -> int
(** Round an extent down to a positive multiple (for pyramid apps). *)

val scaled : int -> int -> int
(** [scaled paper_extent scale] = [max 16 (paper_extent / scale)]. *)

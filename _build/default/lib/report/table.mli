(** Aligned text tables for the benchmark harness. *)

type t

val create : string list -> t
(** [create headers] starts a table. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer
    rows raise. @raise Invalid_argument. *)

val print : ?title:string -> t -> unit
(** Render to stdout with column alignment and a separator rule. *)

val fms : float -> string
(** Milliseconds with sensible precision ("8.83" / "191"). *)

val fx : float -> string
(** A speedup factor ("2.31x"). *)

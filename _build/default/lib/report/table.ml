type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row =
  let nh = List.length t.headers and nr = List.length row in
  if nr > nh then invalid_arg "Table.add_row: too many cells";
  let row = row @ List.init (nh - nr) (fun _ -> "") in
  t.rows <- row :: t.rows

let print ?title t =
  (match title with
  | Some s ->
      print_newline ();
      print_endline s;
      print_endline (String.make (String.length s) '=')
  | None -> ());
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      t.headers
  in
  let render row =
    String.concat "  "
      (List.map2 (fun cell w -> cell ^ String.make (w - String.length cell) ' ') row widths)
  in
  print_endline (render t.headers);
  print_endline (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> print_endline (render row)) rows

let fms v = if v >= 100.0 then Printf.sprintf "%.0f" v else Printf.sprintf "%.2f" v
let fx v = Printf.sprintf "%.2fx" v

lib/report/table.mli:

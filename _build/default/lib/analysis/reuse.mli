(** Per-dimension reuse scores of a fused group (paper §4.2).

    Tile sizes are assigned proportionally to reuse along each
    dimension, so the score captures — per group dimension — how much
    data re-access moving along that dimension exposes:

    - {b group/producer-consumer reuse}: a stencil with [k] distinct
      offsets along a dimension re-reads [k-1] previously loaded
      producer values per step along it;
    - {b input reuse}: the same, for accesses to pipeline inputs;
    - {b spatial reuse}: the innermost dimension walks contiguous
      memory, which the model rewards with a fixed bonus.

    Scores are ≥ 1 so ratios are always well defined. *)

val spatial_bonus : float
(** Bonus added to the innermost dimension's score. *)

val scores : Group_analysis.t -> float array
(** One score per group dimension. *)

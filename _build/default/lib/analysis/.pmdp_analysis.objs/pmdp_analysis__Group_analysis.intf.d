lib/analysis/group_analysis.mli: Format Pmdp_dsl

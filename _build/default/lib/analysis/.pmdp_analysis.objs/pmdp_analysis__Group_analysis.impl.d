lib/analysis/group_analysis.ml: Array Format Hashtbl List Option Pmdp_dag Pmdp_dsl Pmdp_util Printf String

lib/analysis/footprint.mli: Group_analysis

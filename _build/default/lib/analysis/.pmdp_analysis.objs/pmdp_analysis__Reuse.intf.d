lib/analysis/reuse.mli: Group_analysis

lib/analysis/reuse.ml: Array Group_analysis Hashtbl List Option Pmdp_dsl Pmdp_util

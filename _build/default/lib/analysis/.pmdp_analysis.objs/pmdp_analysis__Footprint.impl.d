lib/analysis/footprint.ml: Array Float Group_analysis Hashtbl List Option Pmdp_dsl Pmdp_util

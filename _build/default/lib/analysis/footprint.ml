module Expr = Pmdp_dsl.Expr
module Stage = Pmdp_dsl.Stage
module Pipeline = Pmdp_dsl.Pipeline
module Rational = Pmdp_util.Rational

let bytes_per_elem = 4

let stage_of (ga : Group_analysis.t) m = Pipeline.stage ga.pipeline ga.members.(m)

let liveouts_bytes (ga : Group_analysis.t) =
  let acc = ref 0.0 in
  Array.iteri
    (fun m _ ->
      if ga.liveouts.(m) then
        acc := !acc +. float_of_int (Stage.domain_points (stage_of ga m) * bytes_per_elem))
    ga.members;
  !acc

let intermediates_bytes (ga : Group_analysis.t) =
  let acc = ref 0.0 in
  Array.iteri
    (fun m _ ->
      if not ga.liveouts.(m) then
        acc := !acc +. float_of_int (Stage.domain_points (stage_of ga m) * bytes_per_elem))
    ga.members;
  !acc

let total_footprint_bytes ga = liveouts_bytes ga +. intermediates_bytes ga
let n_buffers (ga : Group_analysis.t) = Array.length ga.members

(* Own-resolution points of member [m] within a scaled-space box of
   width [w.(g)] per dimension (interior tile, analytic).
   [floor_one] models the executor, which always computes at least one
   point of every member per tile; without it the count is the true
   average density (used for the useful-work volume, so that the
   difference — the overlap — charges the forced recomputation of
   coarse members correctly). *)
let member_points ?(floor_one = true) (ga : Group_analysis.t) m w =
  let stage = stage_of ga m in
  let pts = ref 1.0 in
  Array.iteri
    (fun k (d : Stage.dim) ->
      let g = ga.dim_of_stage.(m).(k) in
      let s = float_of_int ga.scales.(m).(g) in
      let scaled_extent = float_of_int (ga.scaled_hi.(m).(g) - ga.scaled_lo.(m).(g) + 1) in
      let width = Float.min w.(g) scaled_extent in
      let own = Float.min (width /. s) (float_of_int d.Stage.extent) in
      let own = if floor_one then Float.max 1.0 own else Float.max 0.01 own in
      pts := !pts *. own)
    stage.Stage.dims;
  !pts


let exact_widths (ga : Group_analysis.t) ~tile =
  Array.init ga.n_dims (fun g -> float_of_int tile.(g))

let expanded_widths (ga : Group_analysis.t) m ~tile =
  Array.init ga.n_dims (fun g ->
      let lo, hi = ga.expansions.(m).(g) in
      float_of_int (tile.(g) + lo + hi))

let tile_compute_volume (ga : Group_analysis.t) ~tile =
  let w = exact_widths ga ~tile in
  let acc = ref 0.0 in
  for m = 0 to Array.length ga.members - 1 do
    acc := !acc +. member_points ga m w
  done;
  !acc

let overlap_points (ga : Group_analysis.t) ~tile =
  let w = exact_widths ga ~tile in
  let acc = ref 0.0 in
  for m = 0 to Array.length ga.members - 1 do
    let we = expanded_widths ga m ~tile in
    (* expanded regions are what the executor computes (>= 1 point per
       member); the useful part is the true per-tile density *)
    acc := !acc +. (member_points ga m we -. member_points ~floor_one:false ga m w)
  done;
  !acc

(* Per-tile bytes read from one external producer (input or
   out-of-group stage) by member [m], given the accesses' coordinate
   vectors and the producer's dimension extents. *)
let external_region_bytes (ga : Group_analysis.t) m ~tile accesses (pdims : Stage.dim array) =
  let cdims = Stage.ndims (stage_of ga m) in
  let bytes = ref (float_of_int bytes_per_elem) in
  Array.iteri
    (fun d (pd : Stage.dim) ->
      (* Hull of access widths along producer dim [d]. *)
      let full = float_of_int pd.Stage.extent in
      let width =
        List.fold_left
          (fun acc (coords : Expr.coord array) ->
            match coords.(d) with
            | Expr.Cvar { var; scale; _ } when var < cdims ->
                let g = ga.dim_of_stage.(m).(var) in
                let elo, ehi = ga.expansions.(m).(g) in
                let w_scaled = float_of_int (tile.(g) + elo + ehi) in
                let w_own = w_scaled /. float_of_int ga.scales.(m).(g) in
                Float.max acc (Float.min full ((Rational.to_float scale *. w_own) +. 1.0))
            | Expr.Cvar _ | Expr.Cdyn _ -> full)
          1.0 accesses
      in
      (* Offset spread across accesses widens the region slightly. *)
      let offsets =
        List.filter_map
          (fun (coords : Expr.coord array) ->
            match coords.(d) with
            | Expr.Cvar { offset; _ } -> Some (Rational.to_float offset)
            | Expr.Cdyn _ -> None)
          accesses
      in
      let spread =
        match offsets with
        | [] -> 0.0
        | o :: rest ->
            let lo = List.fold_left Float.min o rest and hi = List.fold_left Float.max o rest in
            hi -. lo
      in
      bytes := !bytes *. Float.min full (width +. spread))
    pdims;
  !bytes

let livein_tile_bytes (ga : Group_analysis.t) ~tile =
  let p = ga.pipeline in
  let in_group sid = Array.exists (fun x -> x = sid) ga.members in
  let acc = ref 0.0 in
  Array.iteri
    (fun m sid ->
      (* Inputs. *)
      let by_name = Hashtbl.create 8 in
      List.iter
        (fun (name, coords) ->
          Hashtbl.replace by_name name
            (coords :: Option.value ~default:[] (Hashtbl.find_opt by_name name)))
        (Pipeline.input_loads p sid);
      Hashtbl.iter
        (fun name accesses ->
          let input = Pipeline.find_input p name in
          acc := !acc +. external_region_bytes ga m ~tile accesses input.Pipeline.in_dims)
        by_name;
      (* Out-of-group producer stages. *)
      List.iter
        (fun prod ->
          if not (in_group prod) then begin
            let accesses = Pipeline.loads_between p ~consumer:sid ~producer:prod in
            let pstage = Pipeline.stage p prod in
            acc := !acc +. external_region_bytes ga m ~tile accesses pstage.Stage.dims
          end)
        (Pipeline.producers p sid))
    ga.members;
  !acc

let liveout_tile_bytes (ga : Group_analysis.t) ~tile =
  let w = exact_widths ga ~tile in
  let acc = ref 0.0 in
  Array.iteri
    (fun m _ ->
      if ga.liveouts.(m) then
        acc := !acc +. (member_points ga m w *. float_of_int bytes_per_elem))
    ga.members;
  !acc

let n_tiles (ga : Group_analysis.t) ~tile =
  let count = ref 1 in
  for g = 0 to ga.n_dims - 1 do
    let extent = Group_analysis.dim_extent ga g in
    count := !count * ((extent + tile.(g) - 1) / tile.(g))
  done;
  !count

let clamp_tile (ga : Group_analysis.t) tile =
  Array.mapi
    (fun g t -> max 1 (min t (Group_analysis.dim_extent ga g)))
    (Array.sub tile 0 ga.n_dims)

module Expr = Pmdp_dsl.Expr
module Stage = Pmdp_dsl.Stage
module Pipeline = Pmdp_dsl.Pipeline

let spatial_bonus = 2.0

(* Count distinct offset intervals along dimension [g] across the
   accesses of one edge; k distinct offsets contribute k-1 reuse. *)
let edge_reuse_along offsets g =
  let distinct =
    List.sort_uniq compare (List.map (fun (o : (int * int) array) -> o.(g)) offsets)
  in
  max 0 (List.length distinct - 1)

let scores (ga : Group_analysis.t) =
  let n = ga.n_dims in
  let s = Array.make n 1.0 in
  (* Producer-consumer reuse on intra-group edges. *)
  List.iter
    (fun (e : Group_analysis.edge) ->
      for g = 0 to n - 1 do
        s.(g) <- s.(g) +. float_of_int (edge_reuse_along e.offsets g)
      done)
    ga.edges;
  (* Input reuse: distinct constant offsets per input per dimension. *)
  Array.iteri
    (fun m sid ->
      let stage = Pipeline.stage ga.pipeline sid in
      let cdims = Stage.ndims stage in
      let loads = Pipeline.input_loads ga.pipeline sid in
      let by_input = Hashtbl.create 8 in
      List.iter
        (fun (name, coords) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_input name) in
          Hashtbl.replace by_input name (coords :: prev))
        loads;
      Hashtbl.iter
        (fun _name accesses ->
          (* offsets along each group dim, keyed by consumer variable *)
          let offsets_along = Array.make n [] in
          List.iter
            (fun coords ->
              Array.iter
                (fun c ->
                  match c with
                  | Expr.Cvar { var; scale; offset }
                    when var < cdims && Pmdp_util.Rational.sign scale <> 0 ->
                      let g = ga.dim_of_stage.(m).(var) in
                      offsets_along.(g) <- offset :: offsets_along.(g)
                  | Expr.Cvar _ | Expr.Cdyn _ -> ())
                coords)
            accesses;
          Array.iteri
            (fun g offs ->
              let distinct = List.length (List.sort_uniq Pmdp_util.Rational.compare offs) in
              if distinct > 1 then s.(g) <- s.(g) +. float_of_int (distinct - 1))
            offsets_along)
        by_input)
    ga.members;
  if n > 0 then s.(n - 1) <- s.(n - 1) +. spatial_bonus;
  s

(** Memory footprints, tile volumes, and overlap sizes of a fused
    group (the quantities consumed by Alg. 2 of the paper).

    All element counts use 32-bit float elements
    ([bytes_per_elem = 4]).  Per-tile quantities are computed
    analytically for an interior (unclipped) tile, in floating point —
    the cost model only needs ratios. *)

val bytes_per_elem : int

val liveouts_bytes : Group_analysis.t -> float
(** Total size of the group's live-out buffers (stages consumed
    outside the group or pipeline outputs), in bytes. *)

val intermediates_bytes : Group_analysis.t -> float
(** Total size of the group's intermediate (non-live-out) stages'
    domains, in bytes. *)

val total_footprint_bytes : Group_analysis.t -> float
(** [intermediates_bytes + liveouts_bytes]. *)

val n_buffers : Group_analysis.t -> int
(** Number of buffers a fused tile touches (one per member stage). *)

val tile_compute_volume : Group_analysis.t -> tile:int array -> float
(** Points computed per tile by all member stages {e without}
    overlap (each member's own-resolution points within the tile
    box). *)

val overlap_points : Group_analysis.t -> tile:int array -> float
(** Redundant points recomputed per tile due to overlap: the sum over
    members of (expanded region volume − exact tile volume), at each
    member's own resolution. *)

val livein_tile_bytes : Group_analysis.t -> tile:int array -> float
(** Bytes loaded per tile from outside the group: accesses to
    pipeline inputs and to out-of-group producer stages, with the
    access region expanded by the member's overlap expansion and the
    access's own extent.  Data-dependent coordinates conservatively
    charge the producer's whole extent along that dimension. *)

val liveout_tile_bytes : Group_analysis.t -> tile:int array -> float
(** Bytes stored per tile to live-out buffers. *)

val n_tiles : Group_analysis.t -> tile:int array -> int
(** Actual number of tiles: product over dimensions of
    [ceil(extent / tile)]. *)

val clamp_tile : Group_analysis.t -> int array -> int array
(** Clamp requested tile sizes to [1 .. dim extent] per dimension. *)

(** Stage inlining — the extension the paper's §6.2 names as the
    reason H-manual beats PolyMageDP on Camera Pipeline ("aggressive
    inlining of several functions, which PolyMage-A and PolyMageDP
    currently do not support").

    Inlining substitutes a point-wise producer's defining expression
    into every consumer, composing access coordinates: a consumer
    access [p(a*v + b)] into a producer body reading [q(c*w + d)]
    becomes a direct access [q(c*(a*v+b) + d)].  The composition is
    exact (rational) when the inner coordinate is integral —
    [floor(c * (a*v+b) + d)] with integer [a*v+b] — and falls back to
    an equivalent data-dependent coordinate otherwise, which the
    executors evaluate identically.

    {b Boundary caveat}: out-of-domain reads clamp at the accessed
    buffer's domain.  Before inlining, a consumer's out-of-range
    access clamps at the {e producer's} domain; after inlining, the
    composed access clamps at whatever the producer itself read.  The
    two agree everywhere except within a stencil-radius of the image
    border (exactly as inlining interacts with boundary conditions in
    Halide).  Interior results are bit-identical. *)

val inline_stage : Pipeline.t -> string -> Pipeline.t
(** [inline_stage p name] removes the named stage, substituting its
    body into all consumers.
    @raise Invalid_argument if the stage does not exist, is a
    reduction, is a pipeline output, or is referenced through a
    reduction variable in a way that cannot be substituted. *)

val inline_all : ?max_cost:int -> Pipeline.t -> Pipeline.t
(** Repeatedly inline every point-wise, non-output stage whose body
    costs at most [max_cost] arithmetic operations (default 4) and
    whose consumers access it only with pure single-variable
    coordinates — the cheap "wrapper" stages aggressive Halide
    schedules inline away.  Stops at a fixed point. *)

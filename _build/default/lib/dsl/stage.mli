(** Pipeline stages ("Functions" in PolyMage terminology).

    A stage maps a dense rectangular integer domain to float values.
    Its body is either a pointwise/stencil expression or a reduction
    over an additional reduction domain (the gather formulation — a
    reduction stage computes each output point by folding its body
    over the reduction variables).

    Domains are concrete at pipeline-construction time, mirroring the
    paper's setting where parameter estimates are available to the
    grouping algorithm. *)

type dim = { dim_name : string; lo : int; extent : int }

type redop = Rsum | Rmax | Rmin

type def =
  | Pointwise of Expr.t
  | Reduction of {
      op : redop;
      init : float;
      rdom : (int * int) array;  (** (lo, extent) per reduction variable *)
      body : Expr.t;
          (** may reference [Var (ndims + k)] for the k-th reduction
              variable *)
    }

type t = { name : string; dims : dim array; def : def }

val pointwise : string -> dim array -> Expr.t -> t
val reduction : string -> dim array -> op:redop -> init:float -> rdom:(int * int) array -> Expr.t -> t

val dim2 : ?name_x:string -> ?name_y:string -> int -> int -> dim array
(** [dim2 rows cols] is a 2-D domain [x:rows, y:cols], zero-based. *)

val dim3 : int -> int -> int -> dim array
(** [dim3 c rows cols] is a 3-D domain with a leading channel
    dimension, zero-based. *)

val ndims : t -> int
val is_reduction : t -> bool

val domain_points : t -> int
(** Product of extents (number of output points). *)

val body_expr : t -> Expr.t
(** The defining expression ([Pointwise] body or reduction body). *)

val n_iter_vars : t -> int
(** Dimensions plus reduction variables. *)

val validate : t -> unit
(** Checks positive extents and that the body references only valid
    iteration variables. @raise Invalid_argument otherwise. *)

val pp : Format.formatter -> t -> unit

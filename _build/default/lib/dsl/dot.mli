(** Graphviz export of pipeline DAGs and groupings (documentation and
    debugging aid). *)

val pipeline : Pipeline.t -> string
(** A dot digraph of the stage DAG, inputs included. *)

val grouping : Pipeline.t -> int list list -> string
(** A dot digraph with one cluster per group of the grouping. *)

module Rational = Pmdp_util.Rational

type binop = Add | Sub | Mul | Div | Min | Max | Mod
type unop = Neg | Abs | Sqrt | Exp | Log | Floor | Sin | Cos
type cmp = Lt | Le | Gt | Ge | Eq | Ne

type coord =
  | Cvar of { var : int; scale : Rational.t; offset : Rational.t }
  | Cdyn of t

and cond = Cmp of cmp * t * t | And of cond * cond | Or of cond * cond | Not of cond

and t =
  | Const of float
  | Var of int
  | Load of string * coord array
  | Binop of binop * t * t
  | Unop of unop * t
  | Select of cond * t * t

let const f = Const f
let int_ i = Const (float_of_int i)
let var i = Var i
let cvar i = Cvar { var = i; scale = Rational.one; offset = Rational.zero }
let cshift i k = Cvar { var = i; scale = Rational.one; offset = Rational.of_int k }

let cscale i ~num ~den ~off =
  Cvar { var = i; scale = Rational.make num den; offset = Rational.of_int off }

let cdyn e = Cdyn e
let load name coords = Load (name, coords)
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let min_ a b = Binop (Min, a, b)
let max_ a b = Binop (Max, a, b)
let clamp e ~lo ~hi = min_ (max_ e lo) hi
let neg a = Unop (Neg, a)
let abs_ a = Unop (Abs, a)
let sqrt_ a = Unop (Sqrt, a)
let exp_ a = Unop (Exp, a)
let select c a b = Select (c, a, b)
let ( <: ) a b = Cmp (Lt, a, b)
let ( <=: ) a b = Cmp (Le, a, b)
let ( >: ) a b = Cmp (Gt, a, b)
let ( >=: ) a b = Cmp (Ge, a, b)
let ( =: ) a b = Cmp (Eq, a, b)
let ( &&: ) a b = And (a, b)
let ( ||: ) a b = Or (a, b)

let rec fold_loads f acc e =
  match e with
  | Const _ | Var _ -> acc
  | Load (name, coords) ->
      let acc = f acc name coords in
      Array.fold_left
        (fun acc c -> match c with Cvar _ -> acc | Cdyn e -> fold_loads f acc e)
        acc coords
  | Binop (_, a, b) -> fold_loads f (fold_loads f acc a) b
  | Unop (_, a) -> fold_loads f acc a
  | Select (c, a, b) -> fold_loads f (fold_loads f (fold_loads_cond f acc c) a) b

and fold_loads_cond f acc = function
  | Cmp (_, a, b) -> fold_loads f (fold_loads f acc a) b
  | And (a, b) | Or (a, b) -> fold_loads_cond f (fold_loads_cond f acc a) b
  | Not a -> fold_loads_cond f acc a

let rec arith_cost = function
  | Const _ | Var _ -> 0
  | Load (_, coords) ->
      Array.fold_left
        (fun acc c -> match c with Cvar _ -> acc | Cdyn e -> acc + 1 + arith_cost e)
        0 coords
  | Binop (_, a, b) -> 1 + arith_cost a + arith_cost b
  | Unop (_, a) -> 1 + arith_cost a
  | Select (c, a, b) -> 1 + cond_cost c + max (arith_cost a) (arith_cost b)

and cond_cost = function
  | Cmp (_, a, b) -> 1 + arith_cost a + arith_cost b
  | And (a, b) | Or (a, b) -> 1 + cond_cost a + cond_cost b
  | Not a -> 1 + cond_cost a

let rec max_var = function
  | Const _ -> -1
  | Var i -> i
  | Load (_, coords) ->
      Array.fold_left
        (fun acc c ->
          match c with Cvar { var; _ } -> max acc var | Cdyn e -> max acc (max_var e))
        (-1) coords
  | Binop (_, a, b) -> max (max_var a) (max_var b)
  | Unop (_, a) -> max_var a
  | Select (c, a, b) -> max (max_var_cond c) (max (max_var a) (max_var b))

and max_var_cond = function
  | Cmp (_, a, b) -> max (max_var a) (max_var b)
  | And (a, b) | Or (a, b) -> max (max_var_cond a) (max_var_cond b)
  | Not a -> max_var_cond a

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Min -> "min"
  | Max -> "max"
  | Mod -> "mod"

let unop_name = function
  | Neg -> "-"
  | Abs -> "abs"
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Floor -> "floor"
  | Sin -> "sin"
  | Cos -> "cos"

let cmp_name = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let rec pp ppf = function
  | Const f -> Format.fprintf ppf "%g" f
  | Var i -> Format.fprintf ppf "v%d" i
  | Load (name, coords) ->
      Format.fprintf ppf "%s(%a)" name
        (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_coord)
        coords
  | Binop (((Min | Max | Mod) as op), a, b) ->
      Format.fprintf ppf "%s(%a, %a)" (binop_name op) pp a pp b
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Unop (op, a) -> Format.fprintf ppf "%s(%a)" (unop_name op) pp a
  | Select (c, a, b) -> Format.fprintf ppf "select(%a, %a, %a)" pp_cond c pp a pp b

and pp_coord ppf = function
  | Cvar { var; scale; offset } ->
      if Rational.equal scale Rational.one && Rational.equal offset Rational.zero then
        Format.fprintf ppf "v%d" var
      else if Rational.equal scale Rational.one then
        Format.fprintf ppf "v%d+%a" var Rational.pp offset
      else Format.fprintf ppf "%a*v%d%s" Rational.pp scale var
             (if Rational.equal offset Rational.zero then ""
              else "+" ^ Rational.to_string offset)
  | Cdyn e -> Format.fprintf ppf "[%a]" pp e

and pp_cond ppf = function
  | Cmp (op, a, b) -> Format.fprintf ppf "%a %s %a" pp a (cmp_name op) pp b
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp_cond a pp_cond b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp_cond a pp_cond b
  | Not a -> Format.fprintf ppf "!(%a)" pp_cond a

(** Expression language of the image-processing DSL.

    A stage's body is an expression over the stage's iteration
    variables.  [Var i] denotes the i-th iteration variable of the
    *consuming* stage (outermost first); indices at or beyond the
    stage's dimensionality denote reduction variables.  Loads
    reference producer stages or pipeline inputs by name, with one
    coordinate per producer dimension.

    Coordinates are either single-variable affine functions with
    rational scale — which is what the scaling/alignment analysis of
    the fusion model consumes — or arbitrary data-dependent
    expressions ([Cdyn]), which are executable but make the edge
    unfusable (non-constant dependence), as with the data-dependent
    slicing of Bilateral Grid. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Min
  | Max
  | Mod  (** computed on truncated integers, result re-floated *)

type unop = Neg | Abs | Sqrt | Exp | Log | Floor | Sin | Cos

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type coord =
  | Cvar of { var : int; scale : Pmdp_util.Rational.t; offset : Pmdp_util.Rational.t }
      (** index = floor(scale * var + offset) *)
  | Cdyn of t  (** index = floor(value of expression) *)

and cond =
  | Cmp of cmp * t * t
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

and t =
  | Const of float
  | Var of int
  | Load of string * coord array
  | Binop of binop * t * t
  | Unop of unop * t
  | Select of cond * t * t

(** {1 Smart constructors} *)

val const : float -> t
val int_ : int -> t
val var : int -> t

val cvar : int -> coord
(** [cvar i] is the identity coordinate on variable [i]. *)

val cshift : int -> int -> coord
(** [cshift i k] is coordinate [var i + k]. *)

val cscale : int -> num:int -> den:int -> off:int -> coord
(** [cscale i ~num ~den ~off] is [floor((num/den) * var i + off)]. *)

val cdyn : t -> coord

val load : string -> coord array -> t

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( /: ) : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val clamp : t -> lo:t -> hi:t -> t
val neg : t -> t
val abs_ : t -> t
val sqrt_ : t -> t
val exp_ : t -> t
val select : cond -> t -> t -> t
val ( <: ) : t -> t -> cond
val ( <=: ) : t -> t -> cond
val ( >: ) : t -> t -> cond
val ( >=: ) : t -> t -> cond
val ( =: ) : t -> t -> cond
val ( &&: ) : cond -> cond -> cond
val ( ||: ) : cond -> cond -> cond

(** {1 Analysis helpers} *)

val fold_loads : ('a -> string -> coord array -> 'a) -> 'a -> t -> 'a
(** Fold over every [Load] in the expression, including loads nested
    inside dynamic coordinates and conditions. *)

val arith_cost : t -> int
(** Number of arithmetic operations evaluated per point (selects count
    both branches' maximum plus one; loads are free — memory cost is
    modelled separately). *)

val max_var : t -> int
(** Largest variable index used, or [-1] if none. *)

val pp : Format.formatter -> t -> unit

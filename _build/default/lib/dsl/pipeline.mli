(** Image-processing pipelines: a DAG of stages over named inputs.

    Construction validates the whole program: unique names, resolvable
    loads with correct arity, in-range iteration variables, and
    acyclicity.  Stage ids are dense integers in topological-friendly
    construction order; the producer-consumer DAG is exposed for the
    fusion algorithms. *)

type input = { in_name : string; in_dims : Stage.dim array }

type t = private {
  name : string;
  inputs : input array;
  stages : Stage.t array;
  outputs : int list;  (** stage ids of pipeline live-outs *)
  dag : Pmdp_dag.Dag.t;  (** nodes are stage ids; edge p -> c when c loads p *)
}

val build :
  name:string -> inputs:input list -> stages:Stage.t list -> outputs:string list -> t
(** @raise Invalid_argument on any validation failure (duplicate or
    unknown names, wrong load arity, cyclic stage references, bad
    variable indices, unknown outputs, or empty outputs). *)

val input2 : string -> int -> int -> input
val input3 : string -> int -> int -> int -> input

val n_stages : t -> int
val stage : t -> int -> Stage.t
val stage_id : t -> string -> int
(** @raise Not_found if no stage has that name. *)

val is_input : t -> string -> bool
val find_input : t -> string -> input
(** @raise Not_found *)

val producers : t -> int -> int list
(** Stage ids loaded by the given stage (deduplicated). *)

val consumers : t -> int -> int list

val loads_between : t -> consumer:int -> producer:int -> Expr.coord array list
(** Every access (coordinate vector) the consumer performs on the
    producer. Empty if there is no edge. *)

val input_loads : t -> int -> (string * Expr.coord array) list
(** Accesses of the given stage to pipeline inputs. *)

val is_output : t -> int -> bool

val total_points : t -> int
(** Sum of all stages' domain points — total computation "volume". *)

val pp : Format.formatter -> t -> unit

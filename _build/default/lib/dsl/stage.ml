type dim = { dim_name : string; lo : int; extent : int }
type redop = Rsum | Rmax | Rmin

type def =
  | Pointwise of Expr.t
  | Reduction of { op : redop; init : float; rdom : (int * int) array; body : Expr.t }

type t = { name : string; dims : dim array; def : def }

let pointwise name dims body = { name; dims; def = Pointwise body }

let reduction name dims ~op ~init ~rdom body =
  { name; dims; def = Reduction { op; init; rdom; body } }

let dim2 ?(name_x = "x") ?(name_y = "y") rows cols =
  [| { dim_name = name_x; lo = 0; extent = rows }; { dim_name = name_y; lo = 0; extent = cols } |]

let dim3 c rows cols =
  [|
    { dim_name = "c"; lo = 0; extent = c };
    { dim_name = "x"; lo = 0; extent = rows };
    { dim_name = "y"; lo = 0; extent = cols };
  |]

let ndims t = Array.length t.dims
let is_reduction t = match t.def with Reduction _ -> true | Pointwise _ -> false
let domain_points t = Array.fold_left (fun acc d -> acc * d.extent) 1 t.dims

let body_expr t = match t.def with Pointwise e -> e | Reduction { body; _ } -> body

let n_iter_vars t =
  ndims t + (match t.def with Pointwise _ -> 0 | Reduction { rdom; _ } -> Array.length rdom)

let validate t =
  if Array.length t.dims = 0 then invalid_arg (t.name ^ ": stage with no dimensions");
  Array.iter
    (fun d ->
      if d.extent <= 0 then invalid_arg (Printf.sprintf "%s: dim %s has extent %d" t.name d.dim_name d.extent))
    t.dims;
  (match t.def with
  | Pointwise _ -> ()
  | Reduction { rdom; _ } ->
      Array.iter
        (fun (_, ext) -> if ext <= 0 then invalid_arg (t.name ^ ": empty reduction domain"))
        rdom);
  let mv = Expr.max_var (body_expr t) in
  if mv >= n_iter_vars t then
    invalid_arg
      (Printf.sprintf "%s: body references variable v%d but only %d iteration variables exist"
         t.name mv (n_iter_vars t))

let pp ppf t =
  let kind = if is_reduction t then "reduce" else "func" in
  Format.fprintf ppf "@[<hov 2>%s %s(%s) =@ %a@]" kind t.name
    (String.concat ", "
       (Array.to_list (Array.map (fun d -> Printf.sprintf "%s:%d+%d" d.dim_name d.lo d.extent) t.dims)))
    Expr.pp (body_expr t)

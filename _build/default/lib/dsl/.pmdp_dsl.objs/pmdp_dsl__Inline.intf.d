lib/dsl/inline.mli: Pipeline

lib/dsl/dot.ml: Array Buffer List Pipeline Printf Stage

lib/dsl/pipeline.ml: Array Expr Format Hashtbl List Pmdp_dag Printf Stage String

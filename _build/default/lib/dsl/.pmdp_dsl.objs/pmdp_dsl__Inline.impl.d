lib/dsl/inline.ml: Array Expr List Pipeline Pmdp_util Stage

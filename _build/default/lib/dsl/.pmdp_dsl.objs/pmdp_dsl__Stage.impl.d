lib/dsl/stage.ml: Array Expr Format Printf String

lib/dsl/expr.mli: Format Pmdp_util

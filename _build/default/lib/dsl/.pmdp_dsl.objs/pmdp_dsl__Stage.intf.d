lib/dsl/stage.mli: Expr Format

lib/dsl/expr.ml: Array Format Pmdp_util

lib/dsl/pipeline.mli: Expr Format Pmdp_dag Stage

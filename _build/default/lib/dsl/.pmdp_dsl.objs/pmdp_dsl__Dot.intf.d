lib/dsl/dot.mli: Pipeline

module Rational = Pmdp_util.Rational

(* The float-expression value of a coordinate: what [Var k] becomes
   when the producer is evaluated at that index. *)
let coord_value (c : Expr.coord) : Expr.t =
  match c with
  | Expr.Cvar { var = v; scale; offset }
    when Rational.is_integer scale && Rational.is_integer offset ->
      let s = Rational.to_int_exn scale and o = Rational.to_int_exn offset in
      let base = if s = 1 then Expr.var v else Expr.(const (float_of_int s) *: var v) in
      if o = 0 then base else Expr.(base +: const (float_of_int o))
  | Expr.Cvar { var = v; scale; offset } ->
      (* floor(scale * v + offset) computed in floats *)
      Expr.(
        Unop
          ( Floor,
            (const (Rational.to_float scale) *: var v) +: const (Rational.to_float offset) ))
  | Expr.Cdyn e -> Expr.(Unop (Floor, e))

(* Compose an inner (consumer-side) coordinate with an outer
   (producer-side) affine map [floor(scale * i + offset)]. *)
let compose_coord ~outer_scale ~outer_offset (inner : Expr.coord) : Expr.coord =
  match inner with
  | Expr.Cvar { var; scale; offset }
    when Rational.is_integer scale && Rational.is_integer offset ->
      (* i = scale*v + offset exactly, so floor(os*i + oo) is affine. *)
      Expr.Cvar
        {
          var;
          scale = Rational.mul outer_scale scale;
          offset = Rational.add (Rational.mul outer_scale offset) outer_offset;
        }
  | _ ->
      (* i itself involves a floor: keep the two-level flooring as a
         dynamic coordinate, which evaluates identically. *)
      Expr.Cdyn
        Expr.(
          (const (Rational.to_float outer_scale) *: coord_value inner)
          +: const (Rational.to_float outer_offset))

(* Substitute: [body] is the producer's body; [args.(k)] is the
   consumer coordinate feeding the producer's k-th variable. *)
let rec subst args (body : Expr.t) : Expr.t =
  match body with
  | Expr.Const _ -> body
  | Expr.Var k -> coord_value args.(k)
  | Expr.Load (name, coords) ->
      Expr.Load
        ( name,
          Array.map
            (fun c ->
              match c with
              | Expr.Cvar { var; scale; offset } ->
                  compose_coord ~outer_scale:scale ~outer_offset:offset args.(var)
              | Expr.Cdyn e -> Expr.Cdyn (subst args e))
            coords )
  | Expr.Binop (op, a, b) -> Expr.Binop (op, subst args a, subst args b)
  | Expr.Unop (op, a) -> Expr.Unop (op, subst args a)
  | Expr.Select (c, a, b) -> Expr.Select (subst_cond args c, subst args a, subst args b)

and subst_cond args (c : Expr.cond) : Expr.cond =
  match c with
  | Expr.Cmp (op, a, b) -> Expr.Cmp (op, subst args a, subst args b)
  | Expr.And (a, b) -> Expr.And (subst_cond args a, subst_cond args b)
  | Expr.Or (a, b) -> Expr.Or (subst_cond args a, subst_cond args b)
  | Expr.Not a -> Expr.Not (subst_cond args a)

(* Replace loads of [target] in an expression by the substituted body. *)
let rec replace_loads target body (e : Expr.t) : Expr.t =
  match e with
  | Expr.Const _ | Expr.Var _ -> e
  | Expr.Load (name, coords) when name = target -> subst coords body
  | Expr.Load (name, coords) ->
      Expr.Load
        ( name,
          Array.map
            (fun c ->
              match c with
              | Expr.Cvar _ -> c
              | Expr.Cdyn ce -> Expr.Cdyn (replace_loads target body ce))
            coords )
  | Expr.Binop (op, a, b) -> Expr.Binop (op, replace_loads target body a, replace_loads target body b)
  | Expr.Unop (op, a) -> Expr.Unop (op, replace_loads target body a)
  | Expr.Select (c, a, b) ->
      Expr.Select
        (replace_cond target body c, replace_loads target body a, replace_loads target body b)

and replace_cond target body (c : Expr.cond) : Expr.cond =
  match c with
  | Expr.Cmp (op, a, b) ->
      Expr.Cmp (op, replace_loads target body a, replace_loads target body b)
  | Expr.And (a, b) -> Expr.And (replace_cond target body a, replace_cond target body b)
  | Expr.Or (a, b) -> Expr.Or (replace_cond target body a, replace_cond target body b)
  | Expr.Not a -> Expr.Not (replace_cond target body a)

let inline_stage (p : Pipeline.t) name =
  let sid = try Pipeline.stage_id p name with Not_found ->
    invalid_arg ("Inline.inline_stage: unknown stage " ^ name)
  in
  let stage = Pipeline.stage p sid in
  let body =
    match stage.Stage.def with
    | Stage.Pointwise b -> b
    | Stage.Reduction _ -> invalid_arg ("Inline.inline_stage: " ^ name ^ " is a reduction")
  in
  if Pipeline.is_output p sid then
    invalid_arg ("Inline.inline_stage: " ^ name ^ " is a pipeline output");
  let stages =
    Array.to_list p.Pipeline.stages
    |> List.filter_map (fun (s : Stage.t) ->
           if s.Stage.name = name then None
           else
             let def =
               match s.Stage.def with
               | Stage.Pointwise b -> Stage.Pointwise (replace_loads name body b)
               | Stage.Reduction r ->
                   Stage.Reduction { r with body = replace_loads name body r.body }
             in
             Some { s with Stage.def })
  in
  let outputs =
    List.map (fun o -> (Pipeline.stage p o).Stage.name) p.Pipeline.outputs
  in
  Pipeline.build ~name:p.Pipeline.name
    ~inputs:(Array.to_list p.Pipeline.inputs)
    ~stages ~outputs

let inline_all ?(max_cost = 4) (p : Pipeline.t) =
  let rec go p =
    let candidate =
      Array.find_opt
        (fun (s : Stage.t) ->
          (not (Stage.is_reduction s))
          && (not (Pipeline.is_output p (Pipeline.stage_id p s.Stage.name)))
          && Expr.arith_cost (Stage.body_expr s) <= max_cost
          && Pipeline.consumers p (Pipeline.stage_id p s.Stage.name) <> [])
        p.Pipeline.stages
    in
    match candidate with
    | Some s -> go (inline_stage p s.Stage.name)
    | None -> p
  in
  go p

module Dag = Pmdp_dag.Dag

type input = { in_name : string; in_dims : Stage.dim array }

type t = {
  name : string;
  inputs : input array;
  stages : Stage.t array;
  outputs : int list;
  dag : Dag.t;
}

let input2 name rows cols = { in_name = name; in_dims = Stage.dim2 rows cols }
let input3 name c rows cols = { in_name = name; in_dims = Stage.dim3 c rows cols }

let build ~name ~inputs ~stages ~outputs =
  let inputs = Array.of_list inputs in
  let stages = Array.of_list stages in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun (i : input) ->
      if Hashtbl.mem seen i.in_name then invalid_arg ("duplicate name: " ^ i.in_name);
      Hashtbl.add seen i.in_name ())
    inputs;
  Array.iter
    (fun (s : Stage.t) ->
      if Hashtbl.mem seen s.Stage.name then invalid_arg ("duplicate name: " ^ s.Stage.name);
      Hashtbl.add seen s.Stage.name ())
    stages;
  Array.iter Stage.validate stages;
  let stage_ids = Hashtbl.create 64 in
  Array.iteri (fun i (s : Stage.t) -> Hashtbl.add stage_ids s.Stage.name i) stages;
  let input_dims = Hashtbl.create 16 in
  Array.iter (fun i -> Hashtbl.add input_dims i.in_name (Array.length i.in_dims)) inputs;
  let dag = Dag.create (Array.length stages) in
  Array.iteri
    (fun ci (s : Stage.t) ->
      let check_load () callee coords =
        let arity = Array.length coords in
        match Hashtbl.find_opt stage_ids callee with
        | Some pi ->
            let pdims = Stage.ndims stages.(pi) in
            if arity <> pdims then
              invalid_arg
                (Printf.sprintf "%s loads %s with %d coords, expected %d" s.Stage.name callee
                   arity pdims);
            if pi = ci then invalid_arg (s.Stage.name ^ ": self reference");
            Dag.add_edge dag pi ci
        | None -> (
            match Hashtbl.find_opt input_dims callee with
            | Some pdims ->
                if arity <> pdims then
                  invalid_arg
                    (Printf.sprintf "%s loads input %s with %d coords, expected %d" s.Stage.name
                       callee arity pdims)
            | None -> invalid_arg (s.Stage.name ^ " references unknown name " ^ callee))
      in
      Expr.fold_loads check_load () (Stage.body_expr s))
    stages;
  if Dag.has_cycle dag then invalid_arg (name ^ ": cyclic stage references");
  if outputs = [] then invalid_arg (name ^ ": no outputs");
  let outputs =
    List.map
      (fun o ->
        match Hashtbl.find_opt stage_ids o with
        | Some i -> i
        | None -> invalid_arg (name ^ ": unknown output stage " ^ o))
      outputs
  in
  { name; inputs; stages; outputs; dag }

let n_stages t = Array.length t.stages
let stage t i = t.stages.(i)

let stage_id t name =
  let rec go i =
    if i >= Array.length t.stages then raise Not_found
    else if t.stages.(i).Stage.name = name then i
    else go (i + 1)
  in
  go 0

let is_input t name = Array.exists (fun i -> i.in_name = name) t.inputs

let find_input t name =
  match Array.find_opt (fun i -> i.in_name = name) t.inputs with
  | Some i -> i
  | None -> raise Not_found

let producers t i = Dag.preds t.dag i
let consumers t i = Dag.succs t.dag i

let loads_between t ~consumer ~producer =
  let pname = t.stages.(producer).Stage.name in
  let collect acc name coords = if name = pname then coords :: acc else acc in
  List.rev (Expr.fold_loads collect [] (Stage.body_expr t.stages.(consumer)))

let input_loads t i =
  let collect acc name coords = if is_input t name then (name, coords) :: acc else acc in
  List.rev (Expr.fold_loads collect [] (Stage.body_expr t.stages.(i)))

let is_output t i = List.mem i t.outputs

let total_points t = Array.fold_left (fun acc s -> acc + Stage.domain_points s) 0 t.stages

let pp ppf t =
  Format.fprintf ppf "@[<v>pipeline %s (%d stages)@," t.name (Array.length t.stages);
  Array.iteri (fun i s -> Format.fprintf ppf "  [%d] %a@," i Stage.pp s) t.stages;
  Format.fprintf ppf "  outputs: %s@]"
    (String.concat ", " (List.map (fun i -> t.stages.(i).Stage.name) t.outputs))

let escape name = "\"" ^ name ^ "\""

let edges_of (p : Pipeline.t) =
  let b = Buffer.create 1024 in
  Array.iteri
    (fun ci (s : Stage.t) ->
      List.iter
        (fun prod ->
          Buffer.add_string b
            (Printf.sprintf "  %s -> %s;\n"
               (escape (Pipeline.stage p prod).Stage.name)
               (escape s.Stage.name)))
        (Pipeline.producers p ci);
      List.iter
        (fun (iname, _) ->
          Buffer.add_string b
            (Printf.sprintf "  %s -> %s;\n" (escape iname) (escape s.Stage.name)))
        (List.sort_uniq compare
           (List.map (fun (n, _) -> (n, ())) (Pipeline.input_loads p ci))))
    p.Pipeline.stages;
  Buffer.contents b

let pipeline (p : Pipeline.t) =
  let b = Buffer.create 2048 in
  Buffer.add_string b (Printf.sprintf "digraph %s {\n  rankdir=TB;\n" (escape p.Pipeline.name));
  Array.iter
    (fun (i : Pipeline.input) ->
      Buffer.add_string b
        (Printf.sprintf "  %s [shape=parallelogram,style=filled,fillcolor=lightgray];\n"
           (escape i.Pipeline.in_name)))
    p.Pipeline.inputs;
  Array.iter
    (fun (s : Stage.t) ->
      let shape = if Stage.is_reduction s then "hexagon" else "box" in
      Buffer.add_string b (Printf.sprintf "  %s [shape=%s];\n" (escape s.Stage.name) shape))
    p.Pipeline.stages;
  Buffer.add_string b (edges_of p);
  Buffer.add_string b "}\n";
  Buffer.contents b

let grouping (p : Pipeline.t) groups =
  let b = Buffer.create 2048 in
  Buffer.add_string b (Printf.sprintf "digraph %s {\n  rankdir=TB;\n" (escape p.Pipeline.name));
  List.iteri
    (fun gi group ->
      Buffer.add_string b (Printf.sprintf "  subgraph cluster_%d {\n    label=\"group %d\";\n" gi gi);
      List.iter
        (fun sid ->
          Buffer.add_string b
            (Printf.sprintf "    %s [shape=box];\n" (escape (Pipeline.stage p sid).Stage.name)))
        group;
      Buffer.add_string b "  }\n")
    groups;
  Buffer.add_string b (edges_of p);
  Buffer.add_string b "}\n";
  Buffer.contents b

lib/util/stats.mli:

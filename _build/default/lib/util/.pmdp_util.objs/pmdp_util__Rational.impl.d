lib/util/rational.ml: Format Stdlib

lib/util/rng.mli:

(** Deterministic pseudo-random number generation (splitmix64).

    All synthetic inputs in the repository (images, workloads) are
    produced through this generator so results are reproducible across
    runs and machines. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal
    streams. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val split : t -> t
(** [split t] is a new independent generator derived from [t];
    [t] advances. *)

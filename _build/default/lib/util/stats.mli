(** Small statistics helpers used by the benchmark harness and the
    cost model (standard deviation of dimension extents, Alg. 2). *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on empty input. *)

val stddev : float array -> float
(** Population standard deviation. @raise Invalid_argument on empty
    input. *)

val coefficient_of_variation : float array -> float
(** [stddev xs /. mean xs]; 0 when the mean is 0. Used as the
    scale-free "relative difference between sizes of dimensions" term
    of the paper's cost function. *)

val min : float array -> float
val max : float array -> float
val median : float array -> float
(** @raise Invalid_argument on empty input. *)

(** Exact rational arithmetic on machine integers.

    Used by the scaling/alignment analysis to represent per-dimension
    scaling factors of pipeline stages (up/downsampling introduces
    factors such as 1/2 or 2).  Values are kept in canonical form:
    positive denominator, numerator and denominator coprime. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the canonical rational [num/den].
    @raise Invalid_argument if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val neg : t -> t
val inv : t -> t
(** @raise Division_by_zero on [inv zero]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int

val is_integer : t -> bool

val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val to_float : t -> float

val floor : t -> int
val ceil : t -> int

val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Address-trace generation for a tiled schedule.

    Walks exactly the loop structure the tiled executor runs — tile
    space, per-member overlap-expanded regions, per-point loads then
    the store — but emits byte addresses into a cache {!Hierarchy}
    instead of computing values.  Full buffers (inputs and group
    live-outs) get disjoint address ranges; per-group scratch buffers
    get fixed arenas that are reused across tiles, as a real
    allocator would.

    Two approximations, documented in DESIGN.md: data-dependent
    coordinates resolve to the producer dimension's midpoint (no
    values are computed), and both branches of a select are charged.
    The Table 5 experiment (Unsharp Mask) contains neither. *)

val run :
  ?max_tiles:int ->
  Pmdp_core.Schedule_spec.t ->
  hierarchy:Hierarchy.t ->
  unit
(** Trace the whole schedule into the hierarchy.  [max_tiles] caps
    the number of tiles traced per group (default: all), since cache
    fractions converge after a modest number of tiles. *)

(** Two-level cache hierarchy with the counters of the paper's
    Table 5: fractions of total accesses that hit in L1, hit in L2,
    and miss L2. *)

type t

val create : ?line_bytes:int -> ?l1_assoc:int -> ?l2_assoc:int -> Pmdp_machine.Machine.t -> t
(** L1 and L2 sized from the machine descriptor (defaults: 64-byte
    lines, 8-way L1 and L2). *)

val access : t -> int -> unit
(** One load/store at a byte address. *)

type fractions = { l1_hit : float; l2_hit : float; l2_miss : float }

val fractions : t -> fractions
(** Fractions of all accesses (summing to 1 when any occurred). *)

val total_accesses : t -> int
val reset : t -> unit

(** Set-associative LRU cache model.

    The substitute for hardware performance counters: the paper's
    Table 5 reports L1/L2 hit and miss fractions measured with PMUs;
    we reproduce the ranking with a software cache simulator fed by
    the executor's address trace (see DESIGN.md). *)

type t

val create : size_bytes:int -> assoc:int -> line_bytes:int -> t
(** @raise Invalid_argument unless sizes are positive, the line size
    a power of two, and the set count works out to at least one. *)

val access : t -> int -> bool
(** [access t addr] touches the byte address; returns [true] on hit.
    On miss the line is filled (LRU eviction). *)

val flush : t -> unit
val accesses : t -> int
val hits : t -> int
val misses : t -> int

val line_bytes : t -> int
val size_bytes : t -> int

module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage
module Expr = Pmdp_dsl.Expr
module Rational = Pmdp_util.Rational
module Group_analysis = Pmdp_analysis.Group_analysis
module Footprint = Pmdp_analysis.Footprint
module Schedule_spec = Pmdp_core.Schedule_spec

let bytes_per_elem = Footprint.bytes_per_elem
let ceil_div a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)
let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

(* A named address range with row-major strides over a box. *)
type region = {
  base : int;  (* byte address of box origin *)
  lo : int array;
  hi : int array;
  stride : int array;  (* element strides *)
}

let region_of_dims base (dims : Stage.dim array) =
  let n = Array.length dims in
  let stride = Array.make n 1 in
  for d = n - 2 downto 0 do
    stride.(d) <- stride.(d + 1) * dims.(d + 1).Stage.extent
  done;
  {
    base;
    lo = Array.map (fun d -> d.Stage.lo) dims;
    hi = Array.map (fun d -> d.Stage.lo + d.Stage.extent - 1) dims;
    stride;
  }

let addr_of region idx =
  let off = ref 0 in
  for d = 0 to Array.length region.stride - 1 do
    let x = idx.(d) in
    let x = if x < region.lo.(d) then region.lo.(d) else if x > region.hi.(d) then region.hi.(d) else x in
    off := !off + ((x - region.lo.(d)) * region.stride.(d))
  done;
  region.base + (!off * bytes_per_elem)

let dims_size (dims : Stage.dim array) =
  Array.fold_left (fun acc d -> acc * d.Stage.extent) 1 dims

(* Evaluate a coordinate for the trace: exact for affine coords,
   producer-dimension midpoint for data-dependent ones. *)
let eval_coord coord vars mid =
  match coord with
  | Expr.Cvar { var; scale; offset } ->
      let p = scale.Rational.num * offset.Rational.den in
      let q = offset.Rational.num * scale.Rational.den in
      let r = scale.Rational.den * offset.Rational.den in
      floor_div ((p * vars.(var)) + q) r
  | Expr.Cdyn _ -> mid

let run ?max_tiles (spec : Schedule_spec.t) ~hierarchy =
  let p = spec.Schedule_spec.pipeline in
  (* Assign full-buffer address ranges: inputs first, then each
     group's live-outs in schedule order. *)
  let next = ref 0 in
  let alloc bytes =
    let base = !next in
    next := (!next + bytes + 63) / 64 * 64;
    base
  in
  let full : (string, region) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (i : Pipeline.input) ->
      Hashtbl.replace full i.Pipeline.in_name
        (region_of_dims (alloc (dims_size i.Pipeline.in_dims * bytes_per_elem)) i.Pipeline.in_dims))
    p.Pipeline.inputs;
  let groups =
    List.map
      (fun (g : Schedule_spec.group) ->
        let ga =
          match Group_analysis.analyze p g.Schedule_spec.stages with
          | Ok ga -> ga
          | Error _ -> invalid_arg "Trace_exec.run: group failed analysis"
        in
        (ga, Footprint.clamp_tile ga g.Schedule_spec.tile_sizes))
      spec.Schedule_spec.groups
  in
  List.iter
    (fun ((ga : Group_analysis.t), _) ->
      Array.iteri
        (fun m sid ->
          if ga.Group_analysis.liveouts.(m) then begin
            let stage = Pipeline.stage p sid in
            Hashtbl.replace full stage.Stage.name
              (region_of_dims (alloc (dims_size stage.Stage.dims * bytes_per_elem)) stage.Stage.dims)
          end)
        ga.Group_analysis.members)
    groups;
  (* Trace each group. *)
  List.iter
    (fun ((ga : Group_analysis.t), tile) ->
      let nd = ga.Group_analysis.n_dims in
      let n_members = Array.length ga.Group_analysis.members in
      let stages = Array.map (Pipeline.stage p) ga.Group_analysis.members in
      let member_of_name name =
        let rec go m =
          if m = n_members then None
          else if stages.(m).Stage.name = name then Some m
          else go (m + 1)
        in
        go 0
      in
      (* Scratch arenas (reused across tiles), sized for the largest
         possible region of each non-live-out member. *)
      let arena_base = Array.make n_members 0 in
      Array.iteri
        (fun m (stage : Stage.t) ->
          if not ga.Group_analysis.liveouts.(m) then begin
            let size = ref 1 in
            Array.iteri
              (fun k (_ : Stage.dim) ->
                let g = ga.Group_analysis.dim_of_stage.(m).(k) in
                let s = ga.Group_analysis.scales.(m).(g) in
                let elo, ehi = ga.Group_analysis.expansions.(m).(g) in
                size := !size * (ceil_div (tile.(g) + elo + ehi) s + 2))
              stage.Stage.dims;
            arena_base.(m) <- alloc (!size * bytes_per_elem)
          end)
        stages;
      (* Per-member loads with pre-resolved targets. *)
      let loads =
        Array.map
          (fun (stage : Stage.t) ->
            List.rev
              (Expr.fold_loads (fun acc name coords -> (name, coords) :: acc) []
                 (Stage.body_expr stage)))
          stages
      in
      let tiles_per_dim =
        Array.init nd (fun d ->
            let extent = Group_analysis.dim_extent ga d in
            (extent + tile.(d) - 1) / tile.(d))
      in
      let n_tiles = Array.fold_left ( * ) 1 tiles_per_dim in
      let n_trace = match max_tiles with None -> n_tiles | Some m -> min m n_tiles in
      let regions : region array = Array.make n_members { base = 0; lo = [||]; hi = [||]; stride = [||] } in
      for t = 0 to n_trace - 1 do
        (* Tile box. *)
        let tlo = Array.make nd 0 and thi = Array.make nd 0 in
        let rem = ref t in
        for d = nd - 1 downto 0 do
          let tc = !rem mod tiles_per_dim.(d) in
          rem := !rem / tiles_per_dim.(d);
          tlo.(d) <- ga.Group_analysis.dim_lo.(d) + (tc * tile.(d));
          thi.(d) <- min (tlo.(d) + tile.(d) - 1) ga.Group_analysis.dim_hi.(d)
        done;
        for m = 0 to n_members - 1 do
          let stage = stages.(m) in
          let own_nd = Stage.ndims stage in
          let own_lo = Array.make own_nd 0 and own_hi = Array.make own_nd 0 in
          for k = 0 to own_nd - 1 do
            let g = ga.Group_analysis.dim_of_stage.(m).(k) in
            let s = ga.Group_analysis.scales.(m).(g) in
            let elo, ehi = ga.Group_analysis.expansions.(m).(g) in
            let dim = stage.Stage.dims.(k) in
            let dlo = dim.Stage.lo and dhi = dim.Stage.lo + dim.Stage.extent - 1 in
            let clamp x = if x < dlo then dlo else if x > dhi then dhi else x in
            own_lo.(k) <- clamp (floor_div (tlo.(g) - elo) s);
            own_hi.(k) <- clamp (ceil_div (thi.(g) + ehi) s)
          done;
          let region =
            if ga.Group_analysis.liveouts.(m) then
              (* live-outs write the full buffer; reads by in-group
                 consumers hit the same addresses *)
              Hashtbl.find full stage.Stage.name
            else begin
              let exts = Array.init own_nd (fun k -> own_hi.(k) - own_lo.(k) + 1) in
              let stride = Array.make own_nd 1 in
              for k = own_nd - 2 downto 0 do
                stride.(k) <- stride.(k + 1) * exts.(k + 1)
              done;
              { base = arena_base.(m); lo = own_lo; hi = own_hi; stride }
            end
          in
          regions.(m) <- region;
          (* Resolve load targets once per member per tile. *)
          let targets =
            List.map
              (fun (name, coords) ->
                let target =
                  match member_of_name name with
                  | Some m' -> regions.(m')
                  | None -> Hashtbl.find full name
                in
                let mids =
                  Array.mapi (fun d _ -> (target.lo.(d) + target.hi.(d)) / 2) coords
                in
                (target, coords, mids))
              loads.(m)
          in
          let vars = Array.make (Stage.n_iter_vars stage) 0 in
          let idx_scratch = Array.make 8 0 in
          let do_point () =
            List.iter
              (fun (target, coords, mids) ->
                let arity = Array.length coords in
                for d = 0 to arity - 1 do
                  idx_scratch.(d) <- eval_coord coords.(d) vars mids.(d)
                done;
                Hierarchy.access hierarchy (addr_of target (Array.sub idx_scratch 0 arity)))
              targets;
            Hierarchy.access hierarchy (addr_of region (Array.sub vars 0 own_nd))
          in
          let body () =
            match stage.Stage.def with
            | Stage.Pointwise _ -> do_point ()
            | Stage.Reduction { rdom; _ } ->
                let nr = Array.length rdom in
                let rec red r =
                  if r = nr then do_point ()
                  else
                    let lo, ext = rdom.(r) in
                    for x = lo to lo + ext - 1 do
                      vars.(own_nd + r) <- x;
                      red (r + 1)
                    done
                in
                red 0
          in
          let rec go k =
            if k = own_nd then body ()
            else
              for x = own_lo.(k) to own_hi.(k) do
                vars.(k) <- x;
                go (k + 1)
              done
          in
          go 0
        done
      done)
    groups

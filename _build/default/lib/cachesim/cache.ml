type t = {
  line_bytes : int;
  n_sets : int;
  assoc : int;
  tags : int array;  (* n_sets * assoc; -1 = invalid *)
  stamps : int array;  (* LRU timestamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
  size_bytes : int;
}

let is_pow2 x = x > 0 && x land (x - 1) = 0

let create ~size_bytes ~assoc ~line_bytes =
  if size_bytes <= 0 || assoc <= 0 then invalid_arg "Cache.create: nonpositive size";
  if not (is_pow2 line_bytes) then invalid_arg "Cache.create: line size not a power of two";
  let n_sets = size_bytes / (assoc * line_bytes) in
  if n_sets < 1 then invalid_arg "Cache.create: fewer than one set";
  {
    line_bytes;
    n_sets;
    assoc;
    tags = Array.make (n_sets * assoc) (-1);
    stamps = Array.make (n_sets * assoc) 0;
    clock = 0;
    accesses = 0;
    hits = 0;
    size_bytes;
  }

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let line = addr / t.line_bytes in
  let set = line mod t.n_sets in
  let base = set * t.assoc in
  let rec find w = if w = t.assoc then -1 else if t.tags.(base + w) = line then w else find (w + 1) in
  match find 0 with
  | w when w >= 0 ->
      t.hits <- t.hits + 1;
      t.stamps.(base + w) <- t.clock;
      true
  | _ ->
      (* LRU victim *)
      let victim = ref 0 in
      for w = 1 to t.assoc - 1 do
        if t.stamps.(base + w) < t.stamps.(base + !victim) then victim := w
      done;
      t.tags.(base + !victim) <- line;
      t.stamps.(base + !victim) <- t.clock;
      false

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.hits <- 0

let accesses t = t.accesses
let hits t = t.hits
let misses t = t.accesses - t.hits
let line_bytes t = t.line_bytes
let size_bytes t = t.size_bytes

lib/cachesim/cache.mli:

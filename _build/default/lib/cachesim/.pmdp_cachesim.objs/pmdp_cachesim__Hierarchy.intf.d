lib/cachesim/hierarchy.mli: Pmdp_machine

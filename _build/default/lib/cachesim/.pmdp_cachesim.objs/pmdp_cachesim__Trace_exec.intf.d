lib/cachesim/trace_exec.mli: Hierarchy Pmdp_core

lib/cachesim/hierarchy.ml: Cache Pmdp_machine

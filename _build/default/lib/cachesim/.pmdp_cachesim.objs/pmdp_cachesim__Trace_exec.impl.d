lib/cachesim/trace_exec.ml: Array Hashtbl Hierarchy List Pmdp_analysis Pmdp_core Pmdp_dsl Pmdp_util

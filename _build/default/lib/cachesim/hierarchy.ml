module Machine = Pmdp_machine.Machine

type t = { l1 : Cache.t; l2 : Cache.t; mutable l1_hits : int; mutable l2_hits : int; mutable l2_misses : int }

let create ?(line_bytes = 64) ?(l1_assoc = 8) ?(l2_assoc = 8) (m : Machine.t) =
  {
    l1 = Cache.create ~size_bytes:m.Machine.l1_bytes ~assoc:l1_assoc ~line_bytes;
    l2 = Cache.create ~size_bytes:m.Machine.l2_bytes ~assoc:l2_assoc ~line_bytes;
    l1_hits = 0;
    l2_hits = 0;
    l2_misses = 0;
  }

let access t addr =
  if Cache.access t.l1 addr then t.l1_hits <- t.l1_hits + 1
  else if Cache.access t.l2 addr then t.l2_hits <- t.l2_hits + 1
  else t.l2_misses <- t.l2_misses + 1

type fractions = { l1_hit : float; l2_hit : float; l2_miss : float }

let total_accesses t = t.l1_hits + t.l2_hits + t.l2_misses

let fractions t =
  let total = float_of_int (max 1 (total_accesses t)) in
  {
    l1_hit = float_of_int t.l1_hits /. total;
    l2_hit = float_of_int t.l2_hits /. total;
    l2_miss = float_of_int t.l2_misses /. total;
  }

let reset t =
  Cache.flush t.l1;
  Cache.flush t.l2;
  t.l1_hits <- 0;
  t.l2_hits <- 0;
  t.l2_misses <- 0

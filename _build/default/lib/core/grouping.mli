(** Canonical representation of groupings.

    A grouping is a set of disjoint groups of node ids.  The DP memo
    table (Alg. 1) is keyed on groupings, so a canonical order —
    groups sorted internally and by first element — and a stable
    string key are provided here. *)

type t = int list list

val canonical : int list list -> t
(** Sort each group and sort groups by their first element.
    @raise Invalid_argument if groups overlap or any is empty. *)

val key : t -> string
(** Stable key, injective on canonical groupings. *)

val members : t -> int list
(** All node ids of the grouping, sorted. *)

val equal : t -> t -> bool
(** Equality of canonical forms. *)

val pp : Format.formatter -> t -> unit

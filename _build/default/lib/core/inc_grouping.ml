module Pipeline = Pmdp_dsl.Pipeline

type round = { limit : int option; outcome : Dp_grouping.outcome }

type t = {
  rounds : round list;
  cost : float;
  groups : int list list;
  total_enumerated : int;
  total_elapsed : float;
}

let run ~initial_limit ?(step = 2) ?(final_unbounded = true) ?(state_budget = 200_000) ~config
    (p : Pipeline.t) =
  if initial_limit < 1 then invalid_arg "Inc_grouping.run: initial_limit < 1";
  if step < 2 then invalid_arg "Inc_grouping.run: step < 2";
  let n = Pipeline.n_stages p in
  let rounds = ref [] in
  let atoms = ref (List.init n (fun i -> [ i ])) in
  let group_limit = ref initial_limit in
  let max_size = ref initial_limit in
  let continue = ref true in
  while !continue do
    let outcome =
      Dp_grouping.run ~atoms:!atoms ~group_limit:!group_limit ~state_budget ~config p
    in
    rounds := { limit = Some !group_limit; outcome } :: !rounds;
    atoms := outcome.Dp_grouping.groups;
    if !max_size >= n then continue := false
    else begin
      group_limit := step;
      max_size := step * !max_size
    end
  done;
  if final_unbounded then begin
    let outcome = Dp_grouping.run ~atoms:!atoms ~state_budget ~config p in
    rounds := { limit = None; outcome } :: !rounds;
    atoms := outcome.Dp_grouping.groups
  end;
  let rounds = List.rev !rounds in
  let last = List.nth rounds (List.length rounds - 1) in
  {
    rounds;
    cost = last.outcome.Dp_grouping.cost;
    groups = last.outcome.Dp_grouping.groups;
    total_enumerated =
      List.fold_left (fun acc r -> acc + r.outcome.Dp_grouping.enumerated) 0 rounds;
    total_elapsed =
      List.fold_left (fun acc r -> acc +. r.outcome.Dp_grouping.elapsed) 0.0 rounds;
  }

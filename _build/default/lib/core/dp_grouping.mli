(** Dynamic-programming grouping (Algorithm 1 / Fig. 5 of the paper).

    The DP evaluates, for a frontier grouping [G], the minimum over
    (Case I) merging any group of [G] with one of its not-yet-grouped
    successors — subject to the cycle check — and (Case II)
    finalizing [G] and restarting from every partition of the union
    of its successors.  Memoization is keyed on the canonical
    grouping, so every valid grouping of the DAG is effectively
    evaluated; for a linear pipeline of n stages this is the full
    2^(n-1) space explored in O(n^2) DP states.

    The algorithm operates on {e atoms}: indivisible sets of stages.
    By default every stage is its own atom; the bounded incremental
    variant (Alg. 3, {!Inc_grouping}) re-runs the DP over coalesced
    atoms. *)

type outcome = {
  cost : float;  (** sum of group costs of the optimal grouping *)
  groups : int list list;  (** stage ids per group, canonical *)
  enumerated : int;  (** DP states evaluated (memo misses) *)
  cost_evals : int;  (** distinct groups whose cost was computed *)
  max_succ : int;  (** max |SUCC(G)| observed (Table 2 column) *)
  elapsed : float;  (** grouping wall-clock time in seconds *)
  complete : bool;  (** false when the state budget truncated the search *)
}

val run :
  ?atoms:int list list ->
  ?group_limit:int ->
  ?state_budget:int ->
  config:Cost_model.config ->
  Pmdp_dsl.Pipeline.t ->
  outcome
(** [run ~config p] groups the whole pipeline.  [atoms] partitions
    the stages into indivisible units (default: singletons; must
    cover all stages with connected, disjoint sets).  [group_limit]
    bounds the number of atoms per group (DP-GROUPING-BOUNDED).
    [state_budget] caps the number of DP states; past the cap the
    search degrades to a greedy forward sweep and the outcome is
    marked incomplete — the result is still a valid grouping.
    @raise Invalid_argument if [atoms] is not a partition of the
    stages or [group_limit < 1]. *)

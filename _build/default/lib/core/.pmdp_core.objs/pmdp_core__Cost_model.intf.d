lib/core/cost_model.mli: Format Pmdp_analysis Pmdp_dsl Pmdp_machine

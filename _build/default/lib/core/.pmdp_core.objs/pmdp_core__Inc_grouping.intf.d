lib/core/inc_grouping.mli: Cost_model Dp_grouping Pmdp_dsl

lib/core/dp_grouping.ml: Array Cost_model Fun Grouping Hashtbl Int List Pmdp_dag Pmdp_dsl Set String Unix

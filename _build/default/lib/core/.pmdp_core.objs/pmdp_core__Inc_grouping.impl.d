lib/core/inc_grouping.ml: Dp_grouping List Pmdp_dsl

lib/core/schedule_spec.mli: Cost_model Dp_grouping Format Pmdp_dsl

lib/core/cost_model.ml: Array Float Format Pmdp_analysis Pmdp_dsl Pmdp_machine Pmdp_util String

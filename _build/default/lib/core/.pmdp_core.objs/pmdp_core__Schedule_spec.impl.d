lib/core/schedule_spec.ml: Array Cost_model Dp_grouping Format Fun List Pmdp_analysis Pmdp_dag Pmdp_dsl String

lib/core/dp_grouping.mli: Cost_model Pmdp_dsl

(** Bounded incremental grouping (Algorithm 3 of the paper).

    Runs the bounded DP with a group-size limit, coalesces the
    resulting groups into atoms, and iterates with a multiplicatively
    growing effective size until groups may span the whole pipeline.
    This caps the DP's state space for large graphs while still
    letting large groups form incrementally (paper §5, Table 2). *)

type round = {
  limit : int option;  (** atom-count limit used this round; [None] = unbounded *)
  outcome : Dp_grouping.outcome;
}

type t = {
  rounds : round list;  (** in execution order *)
  cost : float;  (** final grouping's cost *)
  groups : int list list;  (** final grouping (stage ids) *)
  total_enumerated : int;
  total_elapsed : float;
}

val run :
  initial_limit:int ->
  ?step:int ->
  ?final_unbounded:bool ->
  ?state_budget:int ->
  config:Cost_model.config ->
  Pmdp_dsl.Pipeline.t ->
  t
(** [run ~initial_limit ~config p] follows Alg. 3: the first round
    uses [initial_limit], later rounds use [step] (default 2) as the
    atom-count limit, and the loop stops once the effective reachable
    group size covers the pipeline.  With [final_unbounded] (default
    true, the protocol used for the paper's Table 2), one last round
    runs without any limit over the coalesced atoms.  Every round is
    protected by [state_budget] (default 200k DP states, see
    {!Dp_grouping.run}).
    @raise Invalid_argument if [initial_limit < 1] or [step < 2]. *)

type t = int list list

let canonical groups =
  List.iter (fun g -> if g = [] then invalid_arg "Grouping.canonical: empty group") groups;
  let sorted = List.map (List.sort_uniq compare) groups in
  let all = List.sort compare (List.concat sorted) in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a = b then invalid_arg "Grouping.canonical: overlapping groups";
        check rest
    | _ -> ()
  in
  check all;
  List.sort (fun a b -> compare (List.hd a) (List.hd b)) sorted

let key t =
  String.concat "|" (List.map (fun g -> String.concat "," (List.map string_of_int g)) t)

let members t = List.sort compare (List.concat t)
let equal a b = canonical a = canonical b

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat " "
       (List.map (fun g -> "{" ^ String.concat "," (List.map string_of_int g) ^ "}") t))

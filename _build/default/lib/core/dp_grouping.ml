module Dag = Pmdp_dag.Dag
module Set_partition = Pmdp_dag.Set_partition
module Pipeline = Pmdp_dsl.Pipeline

type outcome = {
  cost : float;
  groups : int list list;
  enumerated : int;
  cost_evals : int;
  max_succ : int;
  elapsed : float;
  complete : bool;
}

module Int_set = Set.Make (Int)

let run ?atoms ?group_limit ?state_budget ~config (p : Pipeline.t) =
  let t0 = Unix.gettimeofday () in
  let n_stages = Pipeline.n_stages p in
  let atoms =
    match atoms with
    | None -> Array.init n_stages (fun i -> [ i ])
    | Some a ->
        let a = Array.of_list a in
        let covered = List.sort compare (List.concat (Array.to_list a)) in
        if covered <> List.init n_stages Fun.id then
          invalid_arg "Dp_grouping.run: atoms do not partition the stages";
        a
  in
  (match group_limit with
  | Some l when l < 1 -> invalid_arg "Dp_grouping.run: group_limit < 1"
  | _ -> ());
  let n_atoms = Array.length atoms in
  (* Quotient the stage DAG by atoms. *)
  let color = Array.make n_stages 0 in
  Array.iteri (fun ai stages -> List.iter (fun s -> color.(s) <- ai) stages) atoms;
  let adag, _ = Dag.quotient p.Pipeline.dag color in
  if Dag.has_cycle adag then invalid_arg "Dp_grouping.run: atoms induce a cyclic quotient";
  (* Reachability matrix for cycle checks. *)
  let reach = Array.init n_atoms (fun v -> Dag.reachable_set adag v) in
  let succ_arr = Array.init n_atoms (fun v -> Dag.succs adag v) in
  (* [block_reaches a b]: some atom of [a] reaches some atom of [b]
     (atom-level paths, which is exact for quotient-cycle detection). *)
  let block_reaches a b = List.exists (fun x -> List.exists (fun y -> reach.(x).(y)) b) a in
  let mutual_reach a b = block_reaches a b && block_reaches b a in
  (* A partition of a successor set is usable only if no two blocks
     are mutually reachable — connected blocks alone do not guarantee
     an acyclic quotient when successors have edges between them. *)
  let acyclic_partition partition =
    let rec go = function
      | [] -> true
      | b :: rest -> List.for_all (fun b' -> not (mutual_reach b b')) rest && go rest
    in
    go partition
  in
  (* Cost of a group of atoms, memoized on the underlying stage set. *)
  let cost_memo : (string, float) Hashtbl.t = Hashtbl.create 256 in
  let cost_evals = ref 0 in
  let stage_ids_of_group group =
    List.sort compare (List.concat_map (fun a -> atoms.(a)) group)
  in
  let group_cost group =
    let stages = stage_ids_of_group group in
    let key = String.concat "," (List.map string_of_int stages) in
    match Hashtbl.find_opt cost_memo key with
    | Some c -> c
    | None ->
        incr cost_evals;
        let v = Cost_model.cost config p stages in
        Hashtbl.replace cost_memo key v.Cost_model.cost;
        v.Cost_model.cost
  in
  let memo : (string, float * Grouping.t) Hashtbl.t = Hashtbl.create 1024 in
  let enumerated = ref 0 in
  let truncated = ref false in
  let max_succ = ref 0 in
  let within_limit size = match group_limit with None -> true | Some l -> size <= l in
  let sources = Dag.sources adag in
  (* DP-GROUPING over frontier groupings of atoms.

     The frontier advances in topological waves: an atom may join the
     frontier (by Case-I merge or as a Case-II partition block) only
     when it is READY — none of its predecessors is a strict
     descendant of the frontier (equivalently, all its predecessors
     are in the frontier or were finalized earlier).  The paper's
     recurrence leaves this implicit; without it, on DAGs with skip
     edges a finalized atom becomes reachable again from a later
     frontier and would be grouped twice.  Readiness guarantees that
     finalized atoms are never descendants of the current frontier,
     so the subproblem — and hence the memo — is fully determined by
     the frontier grouping alone. *)
  let rec dp (g : Grouping.t) : float * Grouping.t =
    let key = Grouping.key g in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
        incr enumerated;
        let over_budget =
          match state_budget with Some b when !enumerated > b -> true | _ -> false
        in
        if over_budget then truncated := true;
        let in_g = Int_set.of_list (List.concat g) in
        let descendant v =
          (not (Int_set.mem v in_g))
          && Int_set.exists (fun a -> reach.(a).(v)) in_g
        in
        let ready s =
          (not (Int_set.mem s in_g))
          && List.for_all (fun q -> not (descendant q)) (Dag.preds adag s)
        in
        let succ_of hi =
          List.concat_map (fun a -> succ_arr.(a)) hi
          |> List.filter ready |> List.sort_uniq compare
        in
        let raw_succ_of hi =
          List.concat_map (fun a -> succ_arr.(a)) hi
          |> List.filter (fun s -> not (List.mem s hi))
          |> List.sort_uniq compare
        in
        let all_succ = List.sort_uniq compare (List.concat_map succ_of g) in
        max_succ := max !max_succ (List.length all_succ);
        let result =
          if all_succ = [] then
            let total = List.fold_left (fun acc hi -> acc +. group_cost hi) 0.0 g in
            (total, g)
          else begin
            let best = ref (infinity, []) in
            let consider (c, grouping) = if c < fst !best then best := (c, grouping) in
            (* Case I: merge a group with one of its ready successors.
               Skipped once the state budget is exhausted — the DP then
               degrades to a forward sweep (finalize + singleton
               partitions), which stays total and fast. *)
            if not over_budget then
            List.iter
              (fun hi ->
                if within_limit (List.length hi + 1) then
                  let raw = raw_succ_of hi in
                  List.iter
                    (fun sj ->
                      if ready sj then begin
                        (* Merging sj into hi is valid iff the merged
                           group is not mutually reachable with any
                           other frontier group.  (The paper's check —
                           lines 9-13, paths through SUCC(hi) only —
                           is subsumed: a cycle through a yet-ungrouped
                           atom u implies, at the time u's group forms,
                           a mutual-reachability conflict that this
                           same test rejects there; see dp_grouping
                           tests.) *)
                        let merged = sj :: hi in
                        let cycle =
                          List.exists
                            (fun hj -> hj != hi && mutual_reach merged hj)
                            g
                        in
                        if not cycle then begin
                          let g' =
                            Grouping.canonical
                              (List.map (fun h -> if h == hi then sj :: h else h) g)
                          in
                          consider (dp g')
                        end
                      end)
                    raw)
              g;
            (* Case II: finalize G, restart from partitions of its
               ready successors. *)
            let finalized = List.fold_left (fun acc hi -> acc +. group_cost hi) 0.0 g in
            let block_ok block = Dag.is_connected_subset adag block in
            (* Successor sets stay small in practice (max 5 in the
               paper's Table 2); beyond a safety bound the partition
               space is pruned to singletons. *)
            let partitions =
              if finalized = infinity || over_budget then
                [ List.map (fun s -> [ s ]) all_succ ]
              else if List.length all_succ <= 12 then
                List.filter acyclic_partition (Set_partition.enumerate ~block_ok all_succ)
              else [ List.map (fun s -> [ s ]) all_succ ]
            in
            List.iter
              (fun partition ->
                let sub_cost, sub_grouping = dp (Grouping.canonical partition) in
                consider (finalized +. sub_cost, g @ sub_grouping))
              partitions;
            (if !best = (infinity, []) then
               (* every branch is infinite (e.g. an unfusable group in
                  the frontier): still return a complete grouping *)
               match partitions with
               | partition :: _ ->
                   let _, sub_grouping = dp (Grouping.canonical partition) in
                   best := (infinity, g @ sub_grouping)
               | [] -> ());
            !best
          end
        in
        Hashtbl.replace memo key result;
        result
  in
  (* Start from the source vertex; with multiple sources, a dummy
     zero-cost source feeds them, which is equivalent to starting from
     all partitions of the source set. *)
  let start_cost, atom_groups =
    match sources with
    | [ s ] -> dp [ [ s ] ]
    | sources ->
        let block_ok block = Dag.is_connected_subset adag block in
        let partitions = Set_partition.enumerate ~block_ok sources in
        List.fold_left
          (fun (bc, bg) partition ->
            let c, g = dp (Grouping.canonical partition) in
            if c < bc then (c, g) else (bc, bg))
          (infinity, []) partitions
  in
  let groups = Grouping.canonical (List.map stage_ids_of_group atom_groups) in
  {
    cost = start_cost;
    groups;
    enumerated = !enumerated;
    cost_evals = !cost_evals;
    max_succ = !max_succ;
    elapsed = Unix.gettimeofday () -. t0;
    complete = not !truncated;
  }

(** PolyMage's prior greedy fusion heuristic (paper §2.2).

    Iteratively merges a group into its unique child when (a) the
    dependences between them can be made constant by scaling and
    alignment and (b) the overlap region, as a fraction of the tile's
    compute volume, stays below the overlap tolerance.  All groups
    share one global tile size — the limitation the paper's Table 2
    auto-tuning space (7 tile sizes × 3 tolerances) works around. *)

type params = {
  tile : int;  (** tile size used for the two innermost dimensions *)
  overlap_threshold : float;  (** overlap tolerance, e.g. 0.2 / 0.4 / 0.5 *)
}

val group : params -> Pmdp_dsl.Pipeline.t -> int list list
(** The grouping the greedy heuristic produces. *)

val schedule : params -> Pmdp_dsl.Pipeline.t -> Pmdp_core.Schedule_spec.t
(** The grouping lowered with the uniform tile size: the two
    innermost dimensions get [tile], outer dimensions are untiled
    (full extent). *)

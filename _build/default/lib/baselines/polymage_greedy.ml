module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage
module Dag = Pmdp_dag.Dag
module Group_analysis = Pmdp_analysis.Group_analysis
module Footprint = Pmdp_analysis.Footprint
module Schedule_spec = Pmdp_core.Schedule_spec

type params = { tile : int; overlap_threshold : float }

(* Uniform tile vector for a group: [tile] on the two innermost
   dimensions, full extent elsewhere. *)
let tile_vector params (ga : Group_analysis.t) =
  Array.init ga.Group_analysis.n_dims (fun d ->
      let extent = Group_analysis.dim_extent ga d in
      if d >= ga.Group_analysis.n_dims - 2 then min params.tile extent else extent)

let merge_ok params p union =
  (* PolyMage never fuses reductions (paper §6.2). *)
  match Group_analysis.analyze ~allow_fused_reductions:false p union with
  | Error _ -> false
  | Ok ga ->
      let tile = Footprint.clamp_tile ga (tile_vector params ga) in
      let overlap = Footprint.overlap_points ga ~tile in
      let volume = Float.max 1.0 (Footprint.tile_compute_volume ga ~tile) in
      overlap /. volume < params.overlap_threshold

let group params (p : Pipeline.t) =
  let n = Pipeline.n_stages p in
  (* group id per stage; groups mutate as merges happen *)
  let groups = ref (List.init n (fun i -> [ i ])) in
  let changed = ref true in
  while !changed do
    changed := false;
    let arr = Array.of_list !groups in
    let color = Array.make n 0 in
    Array.iteri (fun gi stages -> List.iter (fun s -> color.(s) <- gi) stages) arr;
    let qdag, k = Dag.quotient p.Pipeline.dag color in
    (* Candidates: groups with a single child, largest first (by the
       parameter-estimated domain sizes). *)
    let size gi =
      List.fold_left (fun acc s -> acc + Stage.domain_points (Pipeline.stage p s)) 0 arr.(gi)
    in
    let candidates =
      List.init k Fun.id
      |> List.filter (fun gi -> List.length (Dag.succs qdag gi) = 1)
      |> List.sort (fun a b -> compare (size b) (size a))
    in
    let merged_away = Array.make k false in
    List.iter
      (fun gi ->
        if not merged_away.(gi) then
          match Dag.succs qdag gi with
          | [ child ] when not merged_away.(child) ->
              (* A single-child group cannot create a cycle by merging
                 into that child: every path leaving it goes through
                 the child. *)
              let union = arr.(gi) @ arr.(child) in
              if merge_ok params p union then begin
                arr.(child) <- union;
                arr.(gi) <- [];
                merged_away.(gi) <- true;
                changed := true
              end
          | _ -> ())
      candidates;
    groups := List.filter (fun g -> g <> []) (Array.to_list arr)
  done;
  List.map (List.sort compare) !groups

let schedule params (p : Pipeline.t) =
  let grouping = group params p in
  let specs =
    List.map
      (fun stages ->
        match Group_analysis.analyze p stages with
        | Ok ga -> (stages, Footprint.clamp_tile ga (tile_vector params ga))
        | Error _ ->
            (* with_tiles will split it; provide a placeholder vector *)
            (stages, [| params.tile; params.tile |]))
      grouping
  in
  Schedule_spec.with_tiles p specs

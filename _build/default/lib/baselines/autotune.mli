(** PolyMage-A: the greedy heuristic driven by auto-tuning
    (paper §6.1).

    The tuner sweeps the same parameter space the paper used — tile
    sizes {8, 16, 32, 64, 128, 256} for the two tiled dimensions and
    overlap tolerances {0.2, 0.4, 0.5} — generating one schedule per
    point and picking the fastest under a caller-supplied evaluator
    (benchmarks pass real execution time; tests may pass a model). *)

type result = {
  best : Pmdp_core.Schedule_spec.t;
  best_params : Polymage_greedy.params;
  best_time : float;
  evaluated : (Polymage_greedy.params * float) list;  (** full sweep, in order *)
}

val tile_sizes : int list
val thresholds : float list

val run :
  evaluate:(Pmdp_core.Schedule_spec.t -> float) ->
  Pmdp_dsl.Pipeline.t ->
  result
(** Sweep the space; duplicate schedules (different parameters, same
    grouping and tiles) are evaluated once. *)

(** Reimplementation of Halide's model-driven auto-scheduler
    (Mullapudi et al., SIGGRAPH 2016), the H-auto baseline of the
    paper (§2.3, §6.1).

    Greedy pairwise merging: starting from singleton groups, the
    scheduler repeatedly evaluates every producer group with a unique
    consumer group, estimates the benefit of merging (cost unmerged −
    cost merged, each with its analytically-best tile sizes over a
    power-of-two search space), and commits the highest positive
    benefit until none remains.

    The cost of a group with given tile sizes is the arithmetic work
    per tile plus [load_cost] times the data loaded from memory,
    scaled by the number of tiles, with the paper-described
    constraints: at least [parallelism] tiles, a footprint penalty
    beyond the cache size, and at least [vector_width] points along
    the innermost dimension. *)

type params = {
  cache_bytes : int;  (** CACHE_SIZE: 256 KB on Xeon, 1 MB on Opteron *)
  parallelism : int;  (** PARALLELISM threshold = core count *)
  vector_width : int;  (** VECTOR_WIDTH = 16 *)
  load_cost : float;  (** LOAD_COST = 40 *)
}

val params_for : Pmdp_machine.Machine.t -> params
(** The paper's §6.1 settings for the given machine. *)

val group_cost : params -> Pmdp_dsl.Pipeline.t -> int list -> float * int array
(** Best (cost, tile sizes) of one group under the Halide model;
    [infinity] when the group cannot be executed fused. *)

val schedule : params -> Pmdp_dsl.Pipeline.t -> Pmdp_core.Schedule_spec.t
(** Run the auto-scheduler to a full schedule. *)

module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage
module Expr = Pmdp_dsl.Expr
module Dag = Pmdp_dag.Dag
module Machine = Pmdp_machine.Machine
module Group_analysis = Pmdp_analysis.Group_analysis
module Footprint = Pmdp_analysis.Footprint
module Schedule_spec = Pmdp_core.Schedule_spec

type params = {
  cache_bytes : int;
  parallelism : int;
  vector_width : int;
  load_cost : float;
}

let params_for (m : Machine.t) =
  {
    cache_bytes = m.Machine.l2_bytes;
    parallelism = m.Machine.cores;
    vector_width = 16;
    load_cost = 40.0;
  }

(* Power-of-two candidates for one dimension, always including the
   full extent (untiled). *)
let dim_candidates extent =
  let rec go c acc = if c >= extent then List.rev (extent :: acc) else go (c * 2) (c :: acc) in
  go 4 []

(* Arithmetic work of one tile: expanded points of each member times
   its per-point operation count. *)
let tile_work (ga : Group_analysis.t) ~tile =
  let acc = ref 0.0 in
  Array.iteri
    (fun m sid ->
      let stage = Pipeline.stage ga.Group_analysis.pipeline sid in
      let ops = float_of_int (max 1 (Expr.arith_cost (Stage.body_expr stage))) in
      let widths =
        Array.init ga.Group_analysis.n_dims (fun g ->
            let lo, hi = ga.Group_analysis.expansions.(m).(g) in
            float_of_int (tile.(g) + lo + hi))
      in
      (* member's own-resolution points in the expanded tile box *)
      let pts = ref 1.0 in
      Array.iteri
        (fun k (d : Stage.dim) ->
          let g = ga.Group_analysis.dim_of_stage.(m).(k) in
          let s = float_of_int ga.Group_analysis.scales.(m).(g) in
          let extent =
            float_of_int
              (ga.Group_analysis.scaled_hi.(m).(g) - ga.Group_analysis.scaled_lo.(m).(g) + 1)
          in
          let w = Float.min widths.(g) extent in
          pts := !pts *. Float.max 1.0 (Float.min (w /. s) (float_of_int d.Stage.extent)))
        stage.Stage.dims;
      (* reductions repeat their body over the reduction domain *)
      let rmul =
        match stage.Stage.def with
        | Stage.Pointwise _ -> 1.0
        | Stage.Reduction { rdom; _ } ->
            Array.fold_left (fun a (_, e) -> a *. float_of_int e) 1.0 rdom
      in
      acc := !acc +. (!pts *. ops *. rmul))
    ga.Group_analysis.members;
  !acc

let cost_with_tiles params (ga : Group_analysis.t) ~tile =
  let n_tiles = Footprint.n_tiles ga ~tile in
  if n_tiles < params.parallelism then infinity
  else begin
    let innermost = tile.(ga.Group_analysis.n_dims - 1) in
    let extent_inner = Group_analysis.dim_extent ga (ga.Group_analysis.n_dims - 1) in
    if innermost < min params.vector_width extent_inner then infinity
    else begin
      let work = tile_work ga ~tile in
      let loads = Footprint.livein_tile_bytes ga ~tile /. float_of_int Footprint.bytes_per_elem in
      let stores =
        Footprint.liveout_tile_bytes ga ~tile /. float_of_int Footprint.bytes_per_elem
      in
      (* footprint beyond the cache is penalized proportionally *)
      let footprint =
        (Footprint.tile_compute_volume ga ~tile +. Footprint.overlap_points ga ~tile)
        *. float_of_int Footprint.bytes_per_elem
      in
      let pressure = Float.max 1.0 (footprint /. float_of_int params.cache_bytes) in
      let per_tile = work +. (params.load_cost *. pressure *. (loads +. stores)) in
      per_tile *. float_of_int n_tiles
    end
  end

let group_cost params p stages =
  match Group_analysis.analyze p stages with
  | Error _ -> (infinity, [||])
  | Ok ga ->
      let nd = ga.Group_analysis.n_dims in
      let cands = Array.init nd (fun g -> dim_candidates (Group_analysis.dim_extent ga g)) in
      let search params =
        let best = ref (infinity, Array.init nd (fun g -> Group_analysis.dim_extent ga g)) in
        let tile = Array.make nd 1 in
        let rec go d =
          if d = nd then begin
            let t = Footprint.clamp_tile ga tile in
            let c = cost_with_tiles params ga ~tile:t in
            if c < fst !best then best := (c, Array.copy t)
          end
          else
            List.iter
              (fun c ->
                tile.(d) <- c;
                go (d + 1))
              cands.(d)
        in
        go 0;
        !best
      in
      let best = search params in
      if fst best < infinity then best
      else
        (* On small problem instances no tiling can satisfy the
           parallelism/vector constraints; relax them rather than
           refusing to schedule. *)
        search { params with parallelism = 1; vector_width = 1 }

let schedule params (p : Pipeline.t) =
  let n = Pipeline.n_stages p in
  let groups = ref (Array.init n (fun i -> [ i ])) in
  let costs = Hashtbl.create 64 in
  let cost_of stages =
    let key = String.concat "," (List.map string_of_int (List.sort compare stages)) in
    match Hashtbl.find_opt costs key with
    | Some c -> c
    | None ->
        let c = group_cost params p stages in
        Hashtbl.replace costs key c;
        c
  in
  let merged = ref true in
  while !merged do
    merged := false;
    let arr = !groups in
    let k = Array.length arr in
    let color = Array.make n 0 in
    Array.iteri (fun gi stages -> List.iter (fun s -> color.(s) <- gi) stages) arr;
    let qdag, _ = Dag.quotient p.Pipeline.dag color in
    (* Evaluate each single-child producer's merge benefit. *)
    let best = ref None in
    for gi = 0 to k - 1 do
      match Dag.succs qdag gi with
      | [ child ] ->
          let unmerged = fst (cost_of arr.(gi)) +. fst (cost_of arr.(child)) in
          let merged_cost = fst (cost_of (arr.(gi) @ arr.(child))) in
          let benefit = unmerged -. merged_cost in
          if benefit > 0.0 then begin
            match !best with
            | Some (b, _, _) when b >= benefit -> ()
            | _ -> best := Some (benefit, gi, child)
          end
      | _ -> ()
    done;
    match !best with
    | Some (_, gi, child) ->
        let next = ref [] in
        Array.iteri
          (fun j stages ->
            if j = gi then ()
            else if j = child then next := (arr.(gi) @ stages) :: !next
            else next := stages :: !next)
          arr;
        groups := Array.of_list (List.rev !next);
        merged := true
    | None -> ()
  done;
  let specs =
    Array.to_list
      (Array.map
         (fun stages ->
           let stages = List.sort compare stages in
           let _, tiles = cost_of stages in
           if Array.length tiles = 0 then (stages, [| 64; 64 |]) else (stages, tiles))
         !groups)
  in
  Schedule_spec.with_tiles p specs

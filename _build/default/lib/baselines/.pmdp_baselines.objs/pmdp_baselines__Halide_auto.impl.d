lib/baselines/halide_auto.ml: Array Float Hashtbl List Pmdp_analysis Pmdp_core Pmdp_dag Pmdp_dsl Pmdp_machine String

lib/baselines/manual.mli: Pmdp_core Pmdp_dsl

lib/baselines/polymage_greedy.ml: Array Float Fun List Pmdp_analysis Pmdp_core Pmdp_dag Pmdp_dsl

lib/baselines/halide_auto.mli: Pmdp_core Pmdp_dsl Pmdp_machine

lib/baselines/autotune.ml: Array Hashtbl List Pmdp_core Polymage_greedy String

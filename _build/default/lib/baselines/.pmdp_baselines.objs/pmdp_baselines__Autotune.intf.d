lib/baselines/autotune.mli: Pmdp_core Pmdp_dsl Polymage_greedy

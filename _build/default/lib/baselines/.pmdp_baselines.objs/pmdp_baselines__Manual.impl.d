lib/baselines/manual.ml: List Pmdp_core Pmdp_dsl Printf

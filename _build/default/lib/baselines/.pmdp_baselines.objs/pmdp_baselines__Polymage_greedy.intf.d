lib/baselines/polymage_greedy.mli: Pmdp_core Pmdp_dsl

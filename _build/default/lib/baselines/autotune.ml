module Schedule_spec = Pmdp_core.Schedule_spec

type result = {
  best : Schedule_spec.t;
  best_params : Polymage_greedy.params;
  best_time : float;
  evaluated : (Polymage_greedy.params * float) list;
}

let tile_sizes = [ 8; 16; 32; 64; 128; 256 ]
let thresholds = [ 0.2; 0.4; 0.5 ]

let signature (s : Schedule_spec.t) =
  String.concat "|"
    (List.map
       (fun (g : Schedule_spec.group) ->
         String.concat "," (List.map string_of_int g.Schedule_spec.stages)
         ^ ":"
         ^ String.concat "x" (Array.to_list (Array.map string_of_int g.Schedule_spec.tile_sizes)))
       s.Schedule_spec.groups)

let run ~evaluate p =
  let seen : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let best = ref None in
  let evaluated = ref [] in
  List.iter
    (fun tile ->
      List.iter
        (fun overlap_threshold ->
          let params = { Polymage_greedy.tile; overlap_threshold } in
          let sched = Polymage_greedy.schedule params p in
          let key = signature sched in
          let time =
            match Hashtbl.find_opt seen key with
            | Some t -> t
            | None ->
                let t = evaluate sched in
                Hashtbl.replace seen key t;
                t
          in
          evaluated := (params, time) :: !evaluated;
          match !best with
          | Some (_, _, bt) when bt <= time -> ()
          | _ -> best := Some (sched, params, time))
        thresholds)
    tile_sizes;
  match !best with
  | None -> invalid_arg "Autotune.run: empty parameter space"
  | Some (best, best_params, best_time) ->
      { best; best_params; best_time; evaluated = List.rev !evaluated }

module Pipeline = Pmdp_dsl.Pipeline
module Schedule_spec = Pmdp_core.Schedule_spec


let grouping (p : Pipeline.t) =
  match p.Pipeline.name with
  | "blur" -> [ ([ "blurx"; "blury" ], [| 32; 256 |]) ]
  | "unsharp" -> [ ([ "blurx"; "blury"; "sharpen"; "masked" ], [| 32; 256 |]) ]
  | "harris" ->
      [
        ( [ "gray"; "ix"; "iy"; "ixx"; "iyy"; "ixy"; "sxx"; "syy"; "sxy"; "det"; "harris" ],
          [| 128; 128 |] );
      ]
  | "bilateral_grid" ->
      [
        ([ "clamped" ], [| 64; 256 |]);
        (* the Halide schedules group the histogram with the blurs *)
        ([ "grid"; "blurz"; "blurx"; "blury" ], [| 2; 12; 32; 32 |]);
        ([ "slice" ], [| 2; 64; 256 |]);
        ([ "out" ], [| 64; 256 |]);
      ]
  | "interpolate" ->
      (([ "clamped"; "premult" ], [| 3; 32; 256 |])
      :: List.concat
           (List.init 9 (fun i ->
                let l = i + 1 in
                [ ([ Printf.sprintf "downx%d" l; Printf.sprintf "downy%d" l ], [| 3; 16; 128 |]) ])))
      @ List.concat
          (List.init 9 (fun i ->
               let l = 8 - i in
               [
                 ( [
                     Printf.sprintf "upx%d" l;
                     Printf.sprintf "upy%d" l;
                     Printf.sprintf "interp%d" l;
                   ],
                   [| 3; 16; 128 |] );
               ]))
      @ [ ([ "unpremult"; "output" ], [| 3; 32; 256 |]) ]
  | "camera_pipe" ->
      [
        ([ "shifted" ], [| 32; 256 |]);
        ([ "denoised" ], [| 32; 256 |]);
        ( [
            "g_gr"; "r_r"; "b_b"; "g_gb"; "gv_r"; "gh_r"; "g_r"; "gv_b"; "gh_b"; "g_b";
            "r_gr"; "b_gr"; "r_gb"; "b_gb"; "r_b"; "b_r"; "out_r"; "out_g"; "out_b";
            "corr_r"; "corr_g"; "corr_b"; "curved_r"; "curved_g"; "curved_b";
          ],
          [| 32; 256 |] );
        ([ "lum"; "usm_x"; "usm_y"; "detail"; "output" ], [| 3; 32; 256 |]);
      ]
  | "pyramid_blend" ->
      let per_img img =
        List.concat
          (List.init 3 (fun i ->
               let l = i + 1 in
               [
                 ( [ Printf.sprintf "gdx_%s%d" img l; Printf.sprintf "gdy_%s%d" img l ],
                   [| 3; 16; 128 |] );
               ]))
        @ List.concat
            (List.init 3 (fun l ->
                 [
                   ( [ Printf.sprintf "up_%s%d" img l; Printf.sprintf "lap_%s%d" img l ],
                     [| 3; 16; 128 |] );
                 ]))
      in
      per_img "a" @ per_img "b"
      @ List.concat
          (List.init 3 (fun i ->
               let l = i + 1 in
               [ ([ Printf.sprintf "mdx%d" l; Printf.sprintf "mdy%d" l ], [| 16; 128 |]) ]))
      @ List.init 4 (fun l -> ([ Printf.sprintf "blend%d" l ], [| 3; 16; 128 |]))
      @ List.concat
          (List.init 3 (fun i ->
               let l = 2 - i in
               [
                 ( [
                     Printf.sprintf "colx%d" l;
                     Printf.sprintf "coly%d" l;
                     Printf.sprintf "coladd%d" l;
                   ],
                   [| 3; 16; 128 |] );
               ]))
      @ [ ([ "output" ], [| 3; 32; 256 |]) ]
  | "local_laplacian" ->
      [ ([ "gray" ], [| 32; 256 |]); ([ "remapped" ], [| 8; 32; 256 |]) ]
      @ List.concat
          (List.init 3 (fun i ->
               let l = i + 1 in
               [
                 ([ Printf.sprintf "gdx%d" l; Printf.sprintf "gdy%d" l ], [| 8; 16; 128 |]);
                 ([ Printf.sprintf "igx%d" l; Printf.sprintf "igy%d" l ], [| 16; 128 |]);
               ]))
      @ List.concat
          (List.init 3 (fun l ->
               [ ([ Printf.sprintf "lup%d" l; Printf.sprintf "lap%d" l ], [| 8; 16; 128 |]) ]))
      @ List.init 4 (fun l -> ([ Printf.sprintf "outl%d" l ], [| 16; 128 |]))
      @ List.concat
          (List.init 3 (fun i ->
               let l = 2 - i in
               [
                 ( [ Printf.sprintf "cx%d" l; Printf.sprintf "cy%d" l; Printf.sprintf "cadd%d" l ],
                   [| 16; 128 |] );
               ]))
      @ [ ([ "output" ], [| 3; 32; 256 |]) ]
  | "morphology" ->
      [
        ([ "ero_x"; "ero_y" ], [| 32; 256 |]);
        ([ "open_x"; "open_y" ], [| 32; 256 |]);
        ([ "dil_x"; "dil_y" ], [| 32; 256 |]);
        ([ "gradient"; "tophat"; "enhanced"; "output" ], [| 32; 256 |]);
      ]
  | _ -> raise Not_found


let schedule (p : Pipeline.t) =
  let specs =
    List.map
      (fun (names, tiles) -> (List.map (fun n -> Pipeline.stage_id p n) names, tiles))
      (grouping p)
  in
  Schedule_spec.with_tiles p specs

let has_schedule p =
  match grouping p with _ -> true | exception Not_found -> false

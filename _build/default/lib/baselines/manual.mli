(** Expert manual schedules (the paper's H-manual baseline).

    Hand-written groupings and tile sizes mirroring the schedules
    shipped in the Halide repository for these benchmarks: deep
    fusion of stencil chains, per-level fusion for pyramids, fusion
    of Bilateral Grid's histogram with its blurs, and aggressive
    fusion through the camera pipeline's demosaic block.  Tile arrays
    are right-aligned onto each group's dimensions (innermost last).

    @raise Not_found for pipelines without a manual schedule. *)

val grouping : Pmdp_dsl.Pipeline.t -> (string list * int array) list
(** Stage-name groups with tile sizes, as written by the "expert". *)

val schedule : Pmdp_dsl.Pipeline.t -> Pmdp_core.Schedule_spec.t

val has_schedule : Pmdp_dsl.Pipeline.t -> bool

lib/codegen/c_emit.ml: Array Buffer Format List Pmdp_analysis Pmdp_core Pmdp_dsl Pmdp_util Printf String

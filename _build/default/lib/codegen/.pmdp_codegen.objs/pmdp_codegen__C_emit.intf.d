lib/codegen/c_emit.mli: Pmdp_core

lib/machine/machine.ml: String

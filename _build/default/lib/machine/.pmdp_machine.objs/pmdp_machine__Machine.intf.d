lib/machine/machine.mli:

module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage
module Group_analysis = Pmdp_analysis.Group_analysis
module Schedule_spec = Pmdp_core.Schedule_spec

type lifetime = { stage : string; bytes : int; born : int; dies : int }

type report = {
  lifetimes : lifetime list;
  peak_naive_bytes : int;
  peak_reuse_bytes : int;
}

let bytes_per_elem = 4

let lifetimes (spec : Schedule_spec.t) =
  let p = spec.Schedule_spec.pipeline in
  let groups = Array.of_list spec.Schedule_spec.groups in
  let group_of_stage = Array.make (Pipeline.n_stages p) 0 in
  Array.iteri
    (fun gi (g : Schedule_spec.group) ->
      List.iter (fun s -> group_of_stage.(s) <- gi) g.Schedule_spec.stages)
    groups;
  let acc = ref [] in
  Array.iteri
    (fun gi (g : Schedule_spec.group) ->
      match Group_analysis.analyze p g.Schedule_spec.stages with
      | Error _ -> invalid_arg "Storage.lifetimes: group failed analysis"
      | Ok ga ->
          Array.iteri
            (fun m sid ->
              if ga.Group_analysis.liveouts.(m) then begin
                let stage = Pipeline.stage p sid in
                let dies =
                  if Pipeline.is_output p sid then max_int
                  else
                    List.fold_left
                      (fun acc c ->
                        if group_of_stage.(c) <> gi then max acc group_of_stage.(c) else acc)
                      gi (Pipeline.consumers p sid)
                in
                acc :=
                  {
                    stage = stage.Stage.name;
                    bytes = Stage.domain_points stage * bytes_per_elem;
                    born = gi;
                    dies;
                  }
                  :: !acc
              end)
            ga.Group_analysis.members)
    groups;
  List.rev !acc

let report spec =
  let lifetimes = lifetimes spec in
  let n_groups = List.length spec.Schedule_spec.groups in
  (* naive: everything allocated up front and kept *)
  let peak_naive = List.fold_left (fun acc l -> acc + l.bytes) 0 lifetimes in
  (* reuse: first-fit from a free list of dead buffers, walking groups
     in order — mirrors the executor's policy *)
  let free : int list ref = ref [] in
  let live = ref [] in
  let current = ref 0 in
  let peak = ref 0 in
  let rec remove_first x = function
    | [] -> []
    | y :: rest -> if y = x then rest else y :: remove_first x rest
  in
  for gi = 0 to n_groups - 1 do
    List.iter
      (fun l ->
        if l.born = gi then begin
          (* take the smallest free slot that fits, else allocate *)
          let fits = List.sort compare (List.filter (fun b -> b >= l.bytes) !free) in
          (match fits with
          | b :: _ ->
              free := remove_first b !free;
              live := (l, b) :: !live
          | [] ->
              current := !current + l.bytes;
              live := (l, l.bytes) :: !live);
          if !current > !peak then peak := !current
        end)
      lifetimes;
    (* release buffers whose last reader was this group *)
    let dead, alive = List.partition (fun ((l : lifetime), _) -> l.dies <= gi) !live in
    List.iter (fun (_, b) -> free := b :: !free) dead;
    live := alive
  done;
  { lifetimes; peak_naive_bytes = peak_naive; peak_reuse_bytes = !peak }

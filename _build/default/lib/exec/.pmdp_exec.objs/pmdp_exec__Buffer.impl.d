lib/exec/buffer.ml: Array Float Pmdp_dsl Printf

lib/exec/compile.mli: Buffer Pmdp_dsl

lib/exec/tiled_exec.ml: Array Buffer Compile Float Format Hashtbl List Option Pmdp_analysis Pmdp_core Pmdp_dsl Pmdp_runtime Reference String Unix

lib/exec/reference.mli: Buffer Pmdp_dsl

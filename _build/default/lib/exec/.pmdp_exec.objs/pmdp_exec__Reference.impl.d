lib/exec/reference.ml: Array Buffer Compile Float Hashtbl List Option Pmdp_dag Pmdp_dsl

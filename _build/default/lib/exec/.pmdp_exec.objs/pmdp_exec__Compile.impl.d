lib/exec/compile.ml: Array Buffer Float List Pmdp_dsl Pmdp_util

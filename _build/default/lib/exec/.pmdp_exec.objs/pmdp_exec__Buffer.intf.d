lib/exec/buffer.mli: Pmdp_dsl

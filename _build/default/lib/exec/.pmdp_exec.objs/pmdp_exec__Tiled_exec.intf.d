lib/exec/tiled_exec.mli: Buffer Format Pmdp_core Pmdp_runtime

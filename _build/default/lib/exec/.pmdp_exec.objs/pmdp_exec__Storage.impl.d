lib/exec/storage.ml: Array List Pmdp_analysis Pmdp_core Pmdp_dsl

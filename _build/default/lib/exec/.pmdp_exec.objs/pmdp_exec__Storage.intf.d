lib/exec/storage.mli: Pmdp_core

(** Buffer storage optimization (the "storage optimizations performed
    by PolyMageDP" of the paper's §6.2): full buffers of group
    live-outs that are dead — already past their last consumer group —
    are recycled for later live-outs instead of being allocated fresh.

    The analysis is a straightforward lifetime computation over the
    schedule's group order; the executor applies it with a
    capacity-keyed free list ({!Tiled_exec.run} with
    [~reuse_buffers:true]).  Pipeline outputs are never recycled. *)

type lifetime = {
  stage : string;
  bytes : int;
  born : int;  (** group index that produces the buffer *)
  dies : int;  (** last group index that reads it; [max_int] for pipeline outputs *)
}

type report = {
  lifetimes : lifetime list;  (** in group order *)
  peak_naive_bytes : int;  (** all live-outs resident simultaneously *)
  peak_reuse_bytes : int;  (** with dead-buffer recycling *)
}

val lifetimes : Pmdp_core.Schedule_spec.t -> lifetime list
(** Lifetime of every live-out buffer of the schedule. *)

val report : Pmdp_core.Schedule_spec.t -> report
(** Peak resident bytes with and without recycling (capacity-keyed
    first-fit, the same policy the executor applies). *)

module Pipeline = Pmdp_dsl.Pipeline
module Stage = Pmdp_dsl.Stage
module Dag = Pmdp_dag.Dag

let check_inputs (p : Pipeline.t) inputs =
  Array.iter
    (fun (i : Pipeline.input) ->
      match List.assoc_opt i.Pipeline.in_name inputs with
      | None -> invalid_arg ("Reference.run: missing input " ^ i.Pipeline.in_name)
      | Some b ->
          if
            Array.length b.Buffer.dims <> Array.length i.Pipeline.in_dims
            || not
                 (Array.for_all2
                    (fun (a : Stage.dim) (c : Stage.dim) ->
                      a.Stage.extent = c.Stage.extent && a.Stage.lo = c.Stage.lo)
                    b.Buffer.dims i.Pipeline.in_dims)
          then invalid_arg ("Reference.run: input shape mismatch for " ^ i.Pipeline.in_name))
    p.Pipeline.inputs

(* Iterate a stage's full domain (plus reduction domain) evaluating
   its compiled body; shared by all sequential executors. *)
let compute_stage_full (stage : Stage.t) env compiled (out : Buffer.t) =
  let nd = Stage.ndims stage in
  let vars = Array.make (Stage.n_iter_vars stage) 0 in
  match stage.Stage.def with
  | Stage.Pointwise _ ->
      let rec go d off =
        if d = nd then out.Buffer.data.(off) <- compiled env vars
        else
          let dim = stage.Stage.dims.(d) in
          for x = dim.Stage.lo to dim.Stage.lo + dim.Stage.extent - 1 do
            vars.(d) <- x;
            go (d + 1) (off + ((x - dim.Stage.lo) * out.Buffer.stride.(d)))
          done
      in
      go 0 0
  | Stage.Reduction { op; init; rdom; _ } ->
      let nr = Array.length rdom in
      let fold =
        match op with
        | Stage.Rsum -> ( +. )
        | Stage.Rmax -> Float.max
        | Stage.Rmin -> Float.min
      in
      let rec red r acc =
        if r = nr then fold acc (compiled env vars)
        else begin
          let lo, ext = rdom.(r) in
          let acc = ref acc in
          for x = lo to lo + ext - 1 do
            vars.(nd + r) <- x;
            acc := red (r + 1) !acc
          done;
          !acc
        end
      in
      let rec go d off =
        if d = nd then out.Buffer.data.(off) <- red 0 init
        else
          let dim = stage.Stage.dims.(d) in
          for x = dim.Stage.lo to dim.Stage.lo + dim.Stage.extent - 1 do
            vars.(d) <- x;
            go (d + 1) (off + ((x - dim.Stage.lo) * out.Buffer.stride.(d)))
          done
      in
      go 0 0

let run (p : Pipeline.t) ~inputs =
  check_inputs p inputs;
  let results : (string, Buffer.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (name, b) -> Hashtbl.replace results name b) inputs;
  let order = Dag.topo_sort p.Pipeline.dag in
  List.iter
    (fun sid ->
      let stage = Pipeline.stage p sid in
      let slots, compiled = Compile.compile_stage stage in
      let env =
        Array.map
          (fun name ->
            match Hashtbl.find_opt results name with
            | Some b -> Compile.view_of_buffer b
            | None -> invalid_arg ("Reference.run: unresolved name " ^ name))
          slots
      in
      let out = Buffer.of_stage stage in
      compute_stage_full stage env compiled out;
      Hashtbl.replace results stage.Stage.name out)
    order;
  Array.to_list
    (Array.map
       (fun (s : Stage.t) -> (s.Stage.name, Hashtbl.find results s.Stage.name))
       p.Pipeline.stages)

let outputs_only (p : Pipeline.t) results =
  List.filter_map
    (fun sid ->
      let name = (Pipeline.stage p sid).Stage.name in
      Option.map (fun b -> (name, b)) (List.assoc_opt name results))
    p.Pipeline.outputs

(** Unfused reference executor — the correctness oracle.

    Every stage is computed over its full domain in topological
    order, each into its own full buffer; all tiled schedules must
    reproduce these results exactly (the tiled executor evaluates the
    same expressions in the same per-point order, so equality is
    bitwise). *)

val check_inputs : Pmdp_dsl.Pipeline.t -> (string * Buffer.t) list -> unit
(** Validate that every pipeline input is present with the right
    shape. @raise Invalid_argument otherwise. *)

val run :
  Pmdp_dsl.Pipeline.t -> inputs:(string * Buffer.t) list -> (string * Buffer.t) list
(** Returns one buffer per stage, keyed by stage name.
    @raise Invalid_argument if an input buffer is missing or has the
    wrong shape. *)

val outputs_only :
  Pmdp_dsl.Pipeline.t -> (string * Buffer.t) list -> (string * Buffer.t) list
(** Restrict a result set to the pipeline's declared outputs. *)

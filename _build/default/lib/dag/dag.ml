type t = {
  n : int;
  succ : int list array; (* stored reversed; [succs] re-reverses *)
  pred : int list array;
}

let create n =
  if n < 0 then invalid_arg "Dag.create: negative size";
  { n; succ = Array.make n []; pred = Array.make n [] }

let n_nodes g = g.n

let check_node g v name =
  if v < 0 || v >= g.n then invalid_arg (Printf.sprintf "Dag.%s: node %d out of range" name v)

let add_edge g u v =
  check_node g u "add_edge";
  check_node g v "add_edge";
  if u = v then invalid_arg "Dag.add_edge: self loop";
  if not (List.mem v g.succ.(u)) then begin
    g.succ.(u) <- v :: g.succ.(u);
    g.pred.(v) <- u :: g.pred.(v)
  end

let of_edges n edges =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) edges;
  g

let succs g v =
  check_node g v "succs";
  List.rev g.succ.(v)

let preds g v =
  check_node g v "preds";
  List.rev g.pred.(v)

let edges g =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    List.iter (fun w -> acc := (v, w) :: !acc) (succs g v)
  done;
  !acc

(* Kahn's algorithm restricted to [nodes]; returns None on cycle. *)
let topo_of_subset g nodes =
  let in_set = Array.make g.n false in
  List.iter (fun v -> check_node g v "topo"; in_set.(v) <- true) nodes;
  let indeg = Array.make g.n 0 in
  List.iter
    (fun v -> indeg.(v) <- List.length (List.filter (fun p -> in_set.(p)) (preds g v)))
    nodes;
  let queue = Queue.create () in
  List.iter (fun v -> if indeg.(v) = 0 then Queue.add v queue) nodes;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr count;
    List.iter
      (fun w ->
        if in_set.(w) then begin
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then Queue.add w queue
        end)
      (succs g v)
  done;
  if !count = List.length nodes then Some (List.rev !order) else None

let all_nodes g = List.init g.n Fun.id

let has_cycle g = Option.is_none (topo_of_subset g (all_nodes g))

let topo_sort g =
  match topo_of_subset g (all_nodes g) with
  | Some order -> order
  | None -> invalid_arg "Dag.topo_sort: graph has a cycle"

let topo_sort_subset g nodes =
  match topo_of_subset g nodes with
  | Some order -> order
  | None -> invalid_arg "Dag.topo_sort_subset: induced subgraph has a cycle"

let reachable_set g v =
  check_node g v "reachable_set";
  let seen = Array.make g.n false in
  let rec go u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter go (succs g u)
    end
  in
  go v;
  seen

let is_reachable g ~src ~dst =
  check_node g dst "is_reachable";
  (reachable_set g src).(dst)

let sources g = List.filter (fun v -> preds g v = []) (all_nodes g)
let sinks g = List.filter (fun v -> succs g v = []) (all_nodes g)

let is_connected_subset g nodes =
  match nodes with
  | [] -> false
  | first :: _ ->
      let in_set = Array.make g.n false in
      List.iter (fun v -> check_node g v "is_connected_subset"; in_set.(v) <- true) nodes;
      let seen = Array.make g.n false in
      let rec go u =
        if in_set.(u) && not seen.(u) then begin
          seen.(u) <- true;
          List.iter go (succs g u);
          List.iter go (preds g u)
        end
      in
      go first;
      List.for_all (fun v -> seen.(v)) nodes

let quotient g color =
  if Array.length color <> g.n then invalid_arg "Dag.quotient: color size mismatch";
  let k = if g.n = 0 then 0 else 1 + Array.fold_left max 0 color in
  Array.iter (fun c -> if c < 0 || c >= k then invalid_arg "Dag.quotient: bad color") color;
  let q = create k in
  List.iter
    (fun (u, v) -> if color.(u) <> color.(v) then add_edge q color.(u) color.(v))
    (edges g);
  (q, k)

let pp ppf g =
  Format.fprintf ppf "@[<v>dag(%d nodes)" g.n;
  List.iter (fun (u, v) -> Format.fprintf ppf "@,%d -> %d" u v) (edges g);
  Format.fprintf ppf "@]"

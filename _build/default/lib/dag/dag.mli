(** Directed acyclic graphs over dense integer node ids [0 .. n-1].

    This is the graph substrate shared by the DSL (pipeline DAGs), the
    fusion algorithms (reachability and cycle checks of Alg. 1), and
    the schedule lowering (topological orders within a fused group). *)

type t

val create : int -> t
(** [create n] is a graph with [n] nodes and no edges. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph; duplicate edges are kept once.
    @raise Invalid_argument on out-of-range node ids or self loops. *)

val n_nodes : t -> int
val add_edge : t -> int -> int -> unit
(** @raise Invalid_argument on out-of-range ids or self loops. *)

val succs : t -> int -> int list
(** Successors in insertion order, deduplicated. *)

val preds : t -> int -> int list
val edges : t -> (int * int) list

val has_cycle : t -> bool

val topo_sort : t -> int list
(** A topological order of all nodes.
    @raise Invalid_argument if the graph has a cycle. *)

val topo_sort_subset : t -> int list -> int list
(** [topo_sort_subset g nodes] topologically orders [nodes] using only
    edges between members of [nodes].
    @raise Invalid_argument if that induced subgraph has a cycle. *)

val is_reachable : t -> src:int -> dst:int -> bool
(** Reflexive-transitive reachability. [is_reachable g ~src:v ~dst:v]
    is [true]. *)

val reachable_set : t -> int -> bool array
(** [reachable_set g v] marks all nodes reachable from [v]
    (including [v]). *)

val sources : t -> int list
(** Nodes with no predecessors. *)

val sinks : t -> int list
(** Nodes with no successors. *)

val is_connected_subset : t -> int list -> bool
(** Whether [nodes] induces a weakly connected subgraph (edges used in
    both directions). The empty list is not connected; a singleton
    is. *)

val quotient : t -> int array -> t * int
(** [quotient g color] contracts nodes with equal colors.  [color]
    maps each node to a group id in [0 .. k-1] for some [k]; the
    result is the k-node graph with an edge [c1 -> c2] whenever some
    [u -> v] has [color.(u) = c1 <> c2 = color.(v)], paired with [k].
    @raise Invalid_argument if colors are not a prefix of nat. *)

val pp : Format.formatter -> t -> unit

lib/dag/set_partition.ml: Array List

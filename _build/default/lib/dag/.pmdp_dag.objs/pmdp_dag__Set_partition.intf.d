lib/dag/set_partition.mli:

lib/dag/dag.ml: Array Format Fun List Option Printf Queue

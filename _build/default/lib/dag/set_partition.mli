(** Enumeration of set partitions of small sets.

    The DP recurrence of the paper (Fig. 5, Case II) restarts grouping
    from every partition of the union of successor nodes of the
    current grouping.  Successor sets are small in practice (max 5 in
    the paper's Table 2), so exhaustive Bell-number enumeration is
    appropriate; a per-block acceptance predicate prunes blocks that
    are not connected subgraphs of the pipeline. *)

val enumerate : ?block_ok:(int list -> bool) -> int list -> int list list list
(** [enumerate ~block_ok xs] is the list of partitions of [xs], each
    partition being a list of blocks, each block a sorted list.
    Partitions containing a block for which [block_ok] is false are
    skipped ([block_ok] defaults to accepting everything).  Blocks and
    partitions appear in a deterministic order.  [enumerate []] is
    [[[]]] (the single empty partition). Duplicate elements in [xs]
    are an error.
    @raise Invalid_argument on duplicates. *)

val count : int list -> int
(** Number of partitions of the set (the Bell number of its size),
    without any block filter. *)

val bell : int -> int
(** [bell n] is the nth Bell number. @raise Invalid_argument if
    [n < 0] or the value would overflow native ints for [n > 24]. *)

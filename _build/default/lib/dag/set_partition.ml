let check_no_dup xs =
  let sorted = List.sort compare xs in
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then true else dup rest
    | _ -> false
  in
  if dup sorted then invalid_arg "Set_partition: duplicate elements"

(* Enumerate partitions block-first: the block containing the
   smallest remaining element is chosen among subsets accepted by
   [block_ok], then the remainder is partitioned recursively.  With a
   selective [block_ok] (e.g. graph connectivity) this prunes entire
   families of invalid partitions that the classic insert-into-blocks
   construction would generate before filtering — the difference
   between Bell(n) work and near-linear work on sparse inputs. *)
let enumerate ?(block_ok = fun _ -> true) xs =
  check_no_dup xs;
  let xs = List.sort compare xs in
  let rec parts = function
    | [] -> [ [] ]
    | x :: rest ->
        (* Each subset of [rest] (as a sorted list) joined with [x]
           is a candidate block. *)
        let acc = ref [] in
        let rec subsets chosen = function
          | [] ->
              let block = x :: List.rev chosen in
              if block_ok block then begin
                let remainder =
                  List.filter (fun y -> not (List.mem y block)) rest
                in
                List.iter (fun p -> acc := (block :: p) :: !acc) (parts remainder)
              end
          | y :: more ->
              subsets chosen more;
              subsets (y :: chosen) more
        in
        subsets [] rest;
        List.rev !acc
  in
  parts xs

let bell n =
  if n < 0 then invalid_arg "Set_partition.bell: negative";
  if n > 24 then invalid_arg "Set_partition.bell: too large";
  (* Bell triangle *)
  let row = ref [| 1 |] in
  for _ = 1 to n do
    let prev = !row in
    let m = Array.length prev in
    let next = Array.make (m + 1) 0 in
    next.(0) <- prev.(m - 1);
    for i = 1 to m do
      next.(i) <- next.(i - 1) + prev.(i - 1)
    done;
    row := next
  done;
  !row.(0)

let count xs =
  check_no_dup xs;
  bell (List.length xs)

(* Unit and property tests for Pmdp_dag: DAG operations and set
   partitions. *)

module Dag = Pmdp_dag.Dag
module Set_partition = Pmdp_dag.Set_partition

(* A random DAG generator: edges always go from lower to higher ids,
   guaranteeing acyclicity. *)
let arb_dag =
  let gen =
    QCheck.Gen.(
      sized_size (int_range 2 10) (fun n ->
          let* edges =
            list_size (int_range 0 (n * 2))
              (let* u = int_range 0 (n - 2) in
               let* v = int_range (u + 1) (n - 1) in
               return (u, v))
          in
          return (n, List.sort_uniq compare edges)))
  in
  QCheck.make gen ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) edges)))

let diamond () = Dag.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]
let chain n = Dag.of_edges n (List.init (n - 1) (fun i -> (i, i + 1)))

(* -------------------- basics -------------------- *)

let test_build () =
  let g = diamond () in
  Alcotest.(check int) "nodes" 4 (Dag.n_nodes g);
  Alcotest.(check (list int)) "succs 0" [ 1; 2 ] (List.sort compare (Dag.succs g 0));
  Alcotest.(check (list int)) "preds 3" [ 1; 2 ] (List.sort compare (Dag.preds g 3));
  Alcotest.(check int) "edges" 4 (List.length (Dag.edges g))

let test_duplicate_edges () =
  let g = Dag.of_edges 2 [ (0, 1); (0, 1); (0, 1) ] in
  Alcotest.(check int) "dedup" 1 (List.length (Dag.edges g))

let test_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Dag.add_edge: self loop") (fun () ->
      ignore (Dag.of_edges 2 [ (1, 1) ]))

let test_out_of_range () =
  Alcotest.(check bool) "range check raises" true
    (try ignore (Dag.of_edges 2 [ (0, 5) ]); false with Invalid_argument _ -> true)

let test_topo () =
  let order = Dag.topo_sort (diamond ()) in
  Alcotest.(check int) "all nodes" 4 (List.length order);
  let pos = Array.make 4 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  Alcotest.(check bool) "0 before 3" true (pos.(0) < pos.(3))

let test_topo_subset () =
  let g = diamond () in
  let order = Dag.topo_sort_subset g [ 3; 1; 0 ] in
  Alcotest.(check (list int)) "subset order" [ 0; 1; 3 ] order

let test_cycle_detection () =
  let g = Dag.create 3 in
  Dag.add_edge g 0 1;
  Dag.add_edge g 1 2;
  Alcotest.(check bool) "acyclic" false (Dag.has_cycle g);
  Dag.add_edge g 2 0;
  Alcotest.(check bool) "cyclic" true (Dag.has_cycle g)

let test_reachability () =
  let g = diamond () in
  Alcotest.(check bool) "0 reaches 3" true (Dag.is_reachable g ~src:0 ~dst:3);
  Alcotest.(check bool) "reflexive" true (Dag.is_reachable g ~src:2 ~dst:2);
  Alcotest.(check bool) "1 not to 2" false (Dag.is_reachable g ~src:1 ~dst:2)

let test_sources_sinks () =
  let g = diamond () in
  Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Dag.sinks g)

let test_connected_subset () =
  let g = diamond () in
  Alcotest.(check bool) "0,1 connected" true (Dag.is_connected_subset g [ 0; 1 ]);
  Alcotest.(check bool) "1,2 not connected" false (Dag.is_connected_subset g [ 1; 2 ]);
  Alcotest.(check bool) "1,2,3 connected (weakly)" true (Dag.is_connected_subset g [ 1; 2; 3 ]);
  Alcotest.(check bool) "singleton" true (Dag.is_connected_subset g [ 2 ]);
  Alcotest.(check bool) "empty" false (Dag.is_connected_subset g [])

let test_quotient () =
  let g = diamond () in
  (* groups {0,1} and {2,3} *)
  let q, k = Dag.quotient g [| 0; 0; 1; 1 |] in
  Alcotest.(check int) "two groups" 2 k;
  Alcotest.(check (list int)) "edge between groups" [ 1 ] (Dag.succs q 0);
  Alcotest.(check bool) "no self edges" true (Dag.succs q 1 = [])

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topo order respects edges" ~count:200 arb_dag (fun (n, edges) ->
      let g = Dag.of_edges n edges in
      let order = Dag.topo_sort g in
      let pos = Array.make n 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      List.for_all (fun (u, v) -> pos.(u) < pos.(v)) edges)

let prop_reachability_transitive =
  QCheck.Test.make ~name:"reachability contains edges and is transitive" ~count:100 arb_dag
    (fun (n, edges) ->
      let g = Dag.of_edges n edges in
      List.for_all (fun (u, v) -> Dag.is_reachable g ~src:u ~dst:v) edges
      && List.for_all
           (fun (u, v) ->
             List.for_all
               (fun (x, y) -> x <> v || Dag.is_reachable g ~src:u ~dst:y)
               edges)
           edges)

let prop_quotient_acyclic_on_intervals =
  QCheck.Test.make ~name:"interval coloring of a chain quotient is acyclic" ~count:100
    QCheck.(pair (int_range 2 12) (int_range 1 4))
    (fun (n, w) ->
      let g = chain n in
      let color = Array.init n (fun i -> i / w) in
      let q, _ = Dag.quotient g color in
      not (Dag.has_cycle q))

(* -------------------- set partitions -------------------- *)

let test_partition_counts () =
  List.iter
    (fun (n, bell) ->
      let xs = List.init n Fun.id in
      Alcotest.(check int)
        (Printf.sprintf "Bell(%d)" n)
        bell
        (List.length (Set_partition.enumerate xs)))
    [ (0, 1); (1, 1); (2, 2); (3, 5); (4, 15); (5, 52) ]

let test_bell () =
  Alcotest.(check int) "bell 6" 203 (Set_partition.bell 6);
  Alcotest.(check int) "bell 10" 115975 (Set_partition.bell 10);
  Alcotest.(check bool) "bell negative raises" true
    (try ignore (Set_partition.bell (-1)); false with Invalid_argument _ -> true)

let test_partition_duplicates () =
  Alcotest.(check bool) "duplicates rejected" true
    (try ignore (Set_partition.enumerate [ 1; 1 ]); false with Invalid_argument _ -> true)

let test_partition_block_filter () =
  (* Only singletons pass: exactly one partition remains. *)
  let only_singletons b = List.length b = 1 in
  Alcotest.(check int) "singleton filter" 1
    (List.length (Set_partition.enumerate ~block_ok:only_singletons [ 1; 2; 3; 4 ]))

let prop_partitions_cover =
  QCheck.Test.make ~name:"each partition covers the set exactly" ~count:50
    QCheck.(int_range 1 6)
    (fun n ->
      let xs = List.init n Fun.id in
      List.for_all
        (fun p -> List.sort compare (List.concat p) = xs)
        (Set_partition.enumerate xs))

let prop_partitions_distinct =
  QCheck.Test.make ~name:"partitions are pairwise distinct" ~count:20
    QCheck.(int_range 1 6)
    (fun n ->
      let xs = List.init n Fun.id in
      let ps = Set_partition.enumerate xs in
      List.length (List.sort_uniq compare ps) = List.length ps)

let prop_filter_is_subset =
  QCheck.Test.make ~name:"block filter selects a subset of all partitions" ~count:50
    QCheck.(int_range 1 6)
    (fun n ->
      let xs = List.init n Fun.id in
      let all = Set_partition.enumerate xs in
      let filtered = Set_partition.enumerate ~block_ok:(fun b -> List.length b <= 2) xs in
      List.for_all (fun p -> List.mem p all) filtered
      && List.for_all (fun p -> List.for_all (fun b -> List.length b <= 2) p) filtered)

let () =
  Alcotest.run "pmdp_dag"
    [
      ( "dag",
        [
          Alcotest.test_case "build/succs/preds" `Quick test_build;
          Alcotest.test_case "duplicate edges" `Quick test_duplicate_edges;
          Alcotest.test_case "self loop" `Quick test_self_loop;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "topo sort" `Quick test_topo;
          Alcotest.test_case "topo subset" `Quick test_topo_subset;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "sources/sinks" `Quick test_sources_sinks;
          Alcotest.test_case "connected subsets" `Quick test_connected_subset;
          Alcotest.test_case "quotient" `Quick test_quotient;
          QCheck_alcotest.to_alcotest prop_topo_respects_edges;
          QCheck_alcotest.to_alcotest prop_reachability_transitive;
          QCheck_alcotest.to_alcotest prop_quotient_acyclic_on_intervals;
        ] );
      ( "set_partition",
        [
          Alcotest.test_case "Bell counts" `Quick test_partition_counts;
          Alcotest.test_case "bell numbers" `Quick test_bell;
          Alcotest.test_case "duplicates rejected" `Quick test_partition_duplicates;
          Alcotest.test_case "block filter" `Quick test_partition_block_filter;
          QCheck_alcotest.to_alcotest prop_partitions_cover;
          QCheck_alcotest.to_alcotest prop_partitions_distinct;
          QCheck_alcotest.to_alcotest prop_filter_is_subset;
        ] );
    ]

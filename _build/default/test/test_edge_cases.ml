(* Edge cases across the stack: unusual dimensionalities, non-zero
   domain origins, extreme tile sizes, deep chains, and multi-output
   pipelines — all checked end-to-end against the reference. *)

open Pmdp_dsl
module Buffer = Pmdp_exec.Buffer
module Reference = Pmdp_exec.Reference
module Tiled_exec = Pmdp_exec.Tiled_exec
module Schedule_spec = Pmdp_core.Schedule_spec
module Cost_model = Pmdp_core.Cost_model
module Machine = Pmdp_machine.Machine

let config = Cost_model.default_config Machine.xeon

let exact p inputs sched =
  let tiled = Tiled_exec.run (Tiled_exec.plan sched) ~inputs in
  let reference = Reference.run p ~inputs in
  List.iter
    (fun (name, buf) ->
      Alcotest.(check (float 0.0)) ("exact " ^ name) 0.0
        (Buffer.max_abs_diff buf (List.assoc name reference)))
    tiled

let fill_input name dims seed =
  let b = Buffer.create name dims in
  let rng = Pmdp_util.Rng.create seed in
  Buffer.fill b (fun _ -> Pmdp_util.Rng.float rng 1.0);
  b

(* -------------------- 1-D pipelines -------------------- *)

let test_1d_pipeline () =
  let dims = [| { Stage.dim_name = "x"; lo = 0; extent = 300 } |] in
  let open Expr in
  let a =
    Stage.pointwise "a" dims
      ((load "sig" [| cshift 0 (-2) |] +: load "sig" [| cvar 0 |] +: load "sig" [| cshift 0 2 |])
      /: const 3.0)
  in
  let b = Stage.pointwise "b" dims (load "a" [| cshift 0 (-1) |] -: load "a" [| cshift 0 1 |]) in
  let p =
    Pipeline.build ~name:"sig1d"
      ~inputs:[ { Pipeline.in_name = "sig"; in_dims = dims } ]
      ~stages:[ a; b ] ~outputs:[ "b" ]
  in
  let inputs = [ ("sig", fill_input "sig" dims 3) ] in
  exact p inputs (fst (Schedule_spec.dp config p));
  exact p inputs (Schedule_spec.with_tiles p [ ([ 0; 1 ], [| 7 |]) ])

(* -------------------- non-zero domain origin -------------------- *)

let test_nonzero_lo () =
  let dims = [| { Stage.dim_name = "x"; lo = 5; extent = 40 }; { Stage.dim_name = "y"; lo = -3; extent = 37 } |] in
  let open Expr in
  let a = Stage.pointwise "a" dims (load "img" [| cshift 0 (-1); cshift 1 1 |] *: const 0.5) in
  let b = Stage.pointwise "b" dims (load "a" [| cvar 0; cshift 1 (-1) |] +: load "a" [| cvar 0; cshift 1 1 |]) in
  let p =
    Pipeline.build ~name:"shifted_domain"
      ~inputs:[ { Pipeline.in_name = "img"; in_dims = dims } ]
      ~stages:[ a; b ] ~outputs:[ "b" ]
  in
  let inputs = [ ("img", fill_input "img" dims 11) ] in
  exact p inputs (fst (Schedule_spec.dp config p));
  exact p inputs (Schedule_spec.with_tiles p [ ([ 0; 1 ], [| 8; 16 |]) ])

(* -------------------- single-point and tiny extents -------------------- *)

let test_tiny_extents () =
  let dims = [| { Stage.dim_name = "x"; lo = 0; extent = 1 }; { Stage.dim_name = "y"; lo = 0; extent = 3 } |] in
  let open Expr in
  let a = Stage.pointwise "a" dims (load "img" [| cvar 0; cvar 1 |] +: const 1.0) in
  let b = Stage.pointwise "b" dims (load "a" [| cvar 0; cshift 1 1 |]) in
  let p =
    Pipeline.build ~name:"tiny"
      ~inputs:[ { Pipeline.in_name = "img"; in_dims = dims } ]
      ~stages:[ a; b ] ~outputs:[ "b" ]
  in
  let inputs = [ ("img", fill_input "img" dims 4) ] in
  exact p inputs (Schedule_spec.with_tiles p [ ([ 0; 1 ], [| 1; 1 |]) ]);
  exact p inputs (Schedule_spec.with_tiles p [ ([ 0; 1 ], [| 100; 100 |]) ])

(* -------------------- tile sizes at extremes -------------------- *)

let test_tile_one_everywhere () =
  let p = Pmdp_apps.Blur.build ~rows:17 ~cols:19 () in
  let inputs = Pmdp_apps.Blur.inputs ~seed:9 p in
  exact p inputs (Schedule_spec.with_tiles p [ ([ 0; 1 ], [| 1; 1; 1 |]) ])

let test_tile_larger_than_domain () =
  let p = Pmdp_apps.Blur.build ~rows:17 ~cols:19 () in
  let inputs = Pmdp_apps.Blur.inputs ~seed:10 p in
  exact p inputs (Schedule_spec.with_tiles p [ ([ 0; 1 ], [| 99; 999; 999 |]) ])

(* -------------------- deep chain with growing stencils -------------------- *)

let test_deep_stencil_chain () =
  let dims = Stage.dim2 40 44 in
  let stages =
    List.init 10 (fun i ->
        let src = if i = 0 then "img" else Printf.sprintf "s%d" (i - 1) in
        Stage.pointwise (Printf.sprintf "s%d" i) dims
          (Pmdp_apps.Helpers.blur3 src ~ndims:2 ~dim:(i mod 2)))
  in
  let p =
    Pipeline.build ~name:"deep" ~inputs:[ Pipeline.input2 "img" 40 44 ] ~stages
      ~outputs:[ "s9" ]
  in
  let inputs = [ ("img", fill_input "img" (Stage.dim2 40 44) 13) ] in
  (* all fused: the expansions reach 10 on each side *)
  exact p inputs (Schedule_spec.with_tiles p [ ([ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ], [| 8; 8 |]) ]);
  exact p inputs (fst (Schedule_spec.dp config p))

(* -------------------- multiple outputs -------------------- *)

let test_multiple_outputs () =
  let dims = Stage.dim2 30 30 in
  let open Expr in
  let a = Stage.pointwise "a" dims (Pmdp_apps.Helpers.blur3 "img" ~ndims:2 ~dim:0) in
  let b = Stage.pointwise "b" dims (load "a" [| cvar 0; cvar 1 |] *: const 2.0) in
  let c = Stage.pointwise "c" dims (load "a" [| cvar 0; cvar 1 |] +: const 1.0) in
  let p =
    Pipeline.build ~name:"multi" ~inputs:[ Pipeline.input2 "img" 30 30 ]
      ~stages:[ a; b; c ]
      ~outputs:[ "b"; "c" ]
  in
  let inputs = [ ("img", fill_input "img" dims 17) ] in
  let sched = fst (Schedule_spec.dp config p) in
  let results = Tiled_exec.run (Tiled_exec.plan sched) ~inputs in
  Alcotest.(check bool) "b present" true (List.mem_assoc "b" results);
  Alcotest.(check bool) "c present" true (List.mem_assoc "c" results);
  exact p inputs sched

(* -------------------- upsample/downsample odd extents -------------------- *)

let test_updown_odd_extents () =
  (* Odd extents make floor-division boundaries interesting. *)
  let open Expr in
  let base = [| { Stage.dim_name = "x"; lo = 0; extent = 33 }; { Stage.dim_name = "y"; lo = 0; extent = 41 } |] in
  let halfd = [| { Stage.dim_name = "x"; lo = 0; extent = 17 }; { Stage.dim_name = "y"; lo = 0; extent = 41 } |] in
  let a = Stage.pointwise "a" base (load "img" [| cvar 0; cvar 1 |]) in
  let down = Stage.pointwise "down" halfd (Pmdp_apps.Helpers.downsample2 "a" ~ndims:2 ~dim:0) in
  let up = Stage.pointwise "up" base (Pmdp_apps.Helpers.upsample2 "down" ~ndims:2 ~dim:0) in
  let out = Stage.pointwise "out" base (load "up" [| cvar 0; cvar 1 |] +: load "a" [| cvar 0; cvar 1 |]) in
  let p =
    Pipeline.build ~name:"updown"
      ~inputs:[ { Pipeline.in_name = "img"; in_dims = base } ]
      ~stages:[ a; down; up; out ] ~outputs:[ "out" ]
  in
  let inputs = [ ("img", fill_input "img" base 23) ] in
  exact p inputs (fst (Schedule_spec.dp config p));
  (* force everything into one group at several odd tile sizes *)
  List.iter
    (fun tile -> exact p inputs (Schedule_spec.with_tiles p [ ([ 0; 1; 2; 3 ], tile) ]))
    [ [| 5; 7 |]; [| 3; 41 |]; [| 33; 3 |] ]

let prop_updown_random_tiles =
  QCheck.Test.make ~name:"odd up/down pyramid exact under random tiles" ~count:20
    QCheck.(pair (int_range 1 40) (int_range 1 50))
    (fun (tx, ty) ->
      let open Expr in
      let base = [| { Stage.dim_name = "x"; lo = 0; extent = 29 }; { Stage.dim_name = "y"; lo = 0; extent = 31 } |] in
      let halfd = [| { Stage.dim_name = "x"; lo = 0; extent = 15 }; { Stage.dim_name = "y"; lo = 0; extent = 31 } |] in
      let a = Stage.pointwise "a" base (load "img" [| cvar 0; cvar 1 |]) in
      let down = Stage.pointwise "down" halfd (Pmdp_apps.Helpers.downsample2 "a" ~ndims:2 ~dim:0) in
      let up = Stage.pointwise "up" base (Pmdp_apps.Helpers.upsample2 "down" ~ndims:2 ~dim:0) in
      let p =
        Pipeline.build ~name:"updown_rand"
          ~inputs:[ { Pipeline.in_name = "img"; in_dims = base } ]
          ~stages:[ a; down; up ] ~outputs:[ "up" ]
      in
      let inputs = [ ("img", fill_input "img" base (tx + (100 * ty))) ] in
      let sched = Schedule_spec.with_tiles p [ ([ 0; 1; 2 ], [| tx; ty |]) ] in
      let tiled = Tiled_exec.run (Tiled_exec.plan sched) ~inputs in
      let reference = Reference.run p ~inputs in
      Buffer.max_abs_diff (List.assoc "up" tiled) (List.assoc "up" reference) = 0.0)

(* -------------------- 4-D stage grouping -------------------- *)

let test_4d_fused () =
  let gd =
    [|
      { Stage.dim_name = "w"; lo = 0; extent = 2 };
      { Stage.dim_name = "z"; lo = 0; extent = 6 };
      { Stage.dim_name = "x"; lo = 0; extent = 10 };
      { Stage.dim_name = "y"; lo = 0; extent = 12 };
    |]
  in
  let open Expr in
  let a =
    Stage.pointwise "a" gd
      (load "grid" [| cvar 0; cvar 1; cvar 2; cvar 3 |] *: const 2.0)
  in
  let b =
    Stage.pointwise "b" gd
      (Pmdp_apps.Helpers.stencil "a" ~ndims:4 ~dim:1 [ (-1, 0.25); (0, 0.5); (1, 0.25) ])
  in
  let c =
    Stage.pointwise "c" gd
      (Pmdp_apps.Helpers.stencil "b" ~ndims:4 ~dim:2 [ (-1, 0.25); (0, 0.5); (1, 0.25) ])
  in
  let p =
    Pipeline.build ~name:"grid4"
      ~inputs:[ { Pipeline.in_name = "grid"; in_dims = gd } ]
      ~stages:[ a; b; c ] ~outputs:[ "c" ]
  in
  let inputs = [ ("grid", fill_input "grid" gd 31) ] in
  exact p inputs (Schedule_spec.with_tiles p [ ([ 0; 1; 2 ], [| 1; 3; 4; 5 |]) ]);
  exact p inputs (fst (Schedule_spec.dp config p))

(* -------------------- mixed-dimensionality groups -------------------- *)

let test_2d_into_3d_group () =
  let d2 = Stage.dim2 20 24 and d3 = Stage.dim3 3 20 24 in
  let open Expr in
  let m = Stage.pointwise "m" d2 (Pmdp_apps.Helpers.blur3 "mask" ~ndims:2 ~dim:1) in
  let apply =
    Stage.pointwise "apply" d3
      (load "img" (Pmdp_apps.Helpers.ident_coords 3) *: load "m" [| cvar 1; cvar 2 |])
  in
  let p =
    Pipeline.build ~name:"mix"
      ~inputs:[ Pipeline.input3 "img" 3 20 24; Pipeline.input2 "mask" 20 24 ]
      ~stages:[ m; apply ] ~outputs:[ "apply" ]
  in
  let inputs =
    [ ("img", fill_input "img" d3 41); ("mask", fill_input "mask" d2 43) ]
  in
  exact p inputs (Schedule_spec.with_tiles p [ ([ 0; 1 ], [| 2; 7; 9 |]) ]);
  exact p inputs (fst (Schedule_spec.dp config p))

let () =
  Alcotest.run "pmdp_edge_cases"
    [
      ( "edge",
        [
          Alcotest.test_case "1-D pipeline" `Quick test_1d_pipeline;
          Alcotest.test_case "non-zero domain origin" `Quick test_nonzero_lo;
          Alcotest.test_case "tiny extents" `Quick test_tiny_extents;
          Alcotest.test_case "tile = 1 everywhere" `Quick test_tile_one_everywhere;
          Alcotest.test_case "tile > domain" `Quick test_tile_larger_than_domain;
          Alcotest.test_case "deep stencil chain" `Quick test_deep_stencil_chain;
          Alcotest.test_case "multiple outputs" `Quick test_multiple_outputs;
          Alcotest.test_case "up/down odd extents" `Quick test_updown_odd_extents;
          QCheck_alcotest.to_alcotest prop_updown_random_tiles;
          Alcotest.test_case "4-D fused group" `Quick test_4d_fused;
          Alcotest.test_case "2-D into 3-D group" `Quick test_2d_into_3d_group;
        ] );
    ]

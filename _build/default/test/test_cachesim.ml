(* Tests for the cache simulator and the address-trace executor. *)

module Cache = Pmdp_cachesim.Cache
module Hierarchy = Pmdp_cachesim.Hierarchy
module Trace_exec = Pmdp_cachesim.Trace_exec
module Machine = Pmdp_machine.Machine
module Schedule_spec = Pmdp_core.Schedule_spec
module Cost_model = Pmdp_core.Cost_model

let config = Cost_model.default_config Machine.xeon

let test_cache_create_bad () =
  Alcotest.(check bool) "bad line size" true
    (try ignore (Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:48); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "too small" true
    (try ignore (Cache.create ~size_bytes:64 ~assoc:4 ~line_bytes:64); false
     with Invalid_argument _ -> true)

let test_cache_hit_after_miss () =
  let c = Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  Alcotest.(check bool) "first access misses" false (Cache.access c 0);
  Alcotest.(check bool) "second hits" true (Cache.access c 0);
  Alcotest.(check bool) "same line hits" true (Cache.access c 63);
  Alcotest.(check bool) "next line misses" false (Cache.access c 64);
  Alcotest.(check int) "accesses" 4 (Cache.accesses c);
  Alcotest.(check int) "hits" 2 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c)

let test_cache_lru_eviction () =
  (* 2 sets x 2 ways x 64B lines = 256B.  Addresses 0, 128, 256 map to
     set 0; the third fill evicts the LRU (line 0). *)
  let c = Cache.create ~size_bytes:256 ~assoc:2 ~line_bytes:64 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 128);
  Alcotest.(check bool) "0 still cached" true (Cache.access c 0);
  ignore (Cache.access c 256);
  (* now 128 (LRU) was evicted, 0 retained *)
  Alcotest.(check bool) "0 retained" true (Cache.access c 0);
  Alcotest.(check bool) "128 evicted" false (Cache.access c 128)

let test_cache_flush () =
  let c = Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  ignore (Cache.access c 0);
  Cache.flush c;
  Alcotest.(check int) "counters reset" 0 (Cache.accesses c);
  Alcotest.(check bool) "contents gone" false (Cache.access c 0)

let test_cache_working_set () =
  (* A working set fitting in the cache gives 100% hits after warmup. *)
  let c = Cache.create ~size_bytes:4096 ~assoc:8 ~line_bytes:64 in
  for _ = 1 to 10 do
    for a = 0 to 63 do
      ignore (Cache.access c (a * 64))
    done
  done;
  Alcotest.(check int) "only compulsory misses" 64 (Cache.misses c)

let test_hierarchy_fractions () =
  let h = Hierarchy.create Machine.xeon in
  (* touch a 64 KB buffer twice: first pass misses L1+L2, second pass
     misses L1 (32 KB) but hits L2 (256 KB). *)
  for _ = 1 to 2 do
    for a = 0 to 1023 do
      Hierarchy.access h (a * 64)
    done
  done;
  let f = Hierarchy.fractions h in
  Alcotest.(check (Alcotest.float 1e-9)) "half L2 hits" 0.5 f.Hierarchy.l2_hit;
  Alcotest.(check (Alcotest.float 1e-9)) "half L2 misses" 0.5 f.Hierarchy.l2_miss;
  Alcotest.(check int) "total" 2048 (Hierarchy.total_accesses h)

let test_hierarchy_reset () =
  let h = Hierarchy.create Machine.xeon in
  Hierarchy.access h 0;
  Hierarchy.reset h;
  Alcotest.(check int) "reset" 0 (Hierarchy.total_accesses h)

(* -------------------- trace executor -------------------- *)

let unsharp_sched tx ty =
  let p = Pmdp_apps.Unsharp.build ~scale:16 () in
  let stages = List.init (Pmdp_dsl.Pipeline.n_stages p) Fun.id in
  (p, Schedule_spec.with_tiles p [ (stages, [| 3; tx; ty |]) ])

let test_trace_runs_and_counts () =
  let _, sched = unsharp_sched 8 64 in
  let h = Hierarchy.create Machine.xeon in
  Trace_exec.run ~max_tiles:8 sched ~hierarchy:h;
  Alcotest.(check bool) "accesses recorded" true (Hierarchy.total_accesses h > 1000)

let test_trace_small_tiles_better_l1 () =
  (* The Table 5 effect: a tile whose working set fits L1 has a higher
     L1 hit fraction than one that spills it. *)
  let frac tx ty =
    let _, sched = unsharp_sched tx ty in
    let h = Hierarchy.create Machine.xeon in
    Trace_exec.run ~max_tiles:16 sched ~hierarchy:h;
    (Hierarchy.fractions h).Hierarchy.l1_hit
  in
  let small = frac 5 64 and large = frac 64 128 in
  Alcotest.(check bool)
    (Printf.sprintf "L1 hit: small-tile %.3f > large-tile %.3f" small large)
    true (small > large)

let test_trace_dp_schedule () =
  let p = Pmdp_apps.Harris.build ~scale:32 () in
  let sched = fst (Schedule_spec.dp config p) in
  let h = Hierarchy.create Machine.xeon in
  Trace_exec.run sched ~hierarchy:h;
  let f = Hierarchy.fractions h in
  Alcotest.(check bool) "fractions sum to 1" true
    (Float.abs (f.Hierarchy.l1_hit +. f.Hierarchy.l2_hit +. f.Hierarchy.l2_miss -. 1.0) < 1e-9)

let () =
  Alcotest.run "pmdp_cachesim"
    [
      ( "cache",
        [
          Alcotest.test_case "bad params" `Quick test_cache_create_bad;
          Alcotest.test_case "hit after miss" `Quick test_cache_hit_after_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "flush" `Quick test_cache_flush;
          Alcotest.test_case "working set" `Quick test_cache_working_set;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "fractions" `Quick test_hierarchy_fractions;
          Alcotest.test_case "reset" `Quick test_hierarchy_reset;
        ] );
      ( "trace",
        [
          Alcotest.test_case "runs and counts" `Quick test_trace_runs_and_counts;
          Alcotest.test_case "tile size effect (Table 5)" `Quick test_trace_small_tiles_better_l1;
          Alcotest.test_case "dp schedule trace" `Quick test_trace_dp_schedule;
        ] );
    ]

test/test_apps.ml: Alcotest Array Float List Pipeline Pmdp_apps Pmdp_dsl Pmdp_exec Printf Stage

test/test_dag.ml: Alcotest Array Fun List Pmdp_dag Printf QCheck QCheck_alcotest String

test/test_analysis.ml: Alcotest Array Expr List Pipeline Pmdp_analysis Pmdp_apps Pmdp_dsl Stage

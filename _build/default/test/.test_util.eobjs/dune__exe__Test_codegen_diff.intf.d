test/test_codegen_diff.mli:

test/test_misc.ml: Alcotest Array Expr Format Fun List Pipeline Pmdp_apps Pmdp_core Pmdp_dsl Pmdp_exec Pmdp_machine Pmdp_report Pmdp_util Printf Stage String

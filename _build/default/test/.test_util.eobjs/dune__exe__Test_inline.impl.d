test/test_inline.ml: Alcotest Array Dot Expr Float Inline List Pipeline Pmdp_apps Pmdp_core Pmdp_dsl Pmdp_exec Pmdp_machine Stage String

test/test_pool.ml: Alcotest Array Atomic Float List Pmdp_runtime Printf QCheck QCheck_alcotest

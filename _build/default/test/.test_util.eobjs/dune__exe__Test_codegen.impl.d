test/test_codegen.ml: Alcotest Filename List Pmdp_apps Pmdp_codegen Pmdp_core Pmdp_dsl Pmdp_machine Printf String Sys

test/test_codegen_diff.ml: Alcotest Array Char Filename Float Int32 List Pipeline Pmdp_apps Pmdp_codegen Pmdp_core Pmdp_dsl Pmdp_exec Pmdp_machine Printf Stage Sys Unix

test/test_cost_model.ml: Alcotest Array Expr Fun List Option Pipeline Pmdp_analysis Pmdp_apps Pmdp_core Pmdp_dsl Pmdp_machine Printf Stage

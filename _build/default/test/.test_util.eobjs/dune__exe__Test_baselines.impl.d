test/test_baselines.ml: Alcotest Array Expr Float Fun List Pipeline Pmdp_apps Pmdp_baselines Pmdp_core Pmdp_dsl Pmdp_machine Stage

test/test_dsl.ml: Alcotest Expr Format List Pipeline Pmdp_apps Pmdp_dsl Pmdp_util Stage String

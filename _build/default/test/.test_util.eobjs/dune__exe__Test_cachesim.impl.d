test/test_cachesim.ml: Alcotest Float Fun List Pmdp_apps Pmdp_cachesim Pmdp_core Pmdp_dsl Pmdp_machine Printf

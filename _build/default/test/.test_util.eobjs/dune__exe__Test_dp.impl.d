test/test_dp.ml: Alcotest Array Expr Float Fun List Pipeline Pmdp_apps Pmdp_core Pmdp_dag Pmdp_dsl Pmdp_machine Printf QCheck QCheck_alcotest Stage String

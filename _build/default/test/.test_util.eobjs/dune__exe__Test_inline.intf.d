test/test_inline.mli:

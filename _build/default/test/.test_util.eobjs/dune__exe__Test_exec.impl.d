test/test_exec.ml: Alcotest Array Expr List Pipeline Pmdp_apps Pmdp_baselines Pmdp_core Pmdp_dag Pmdp_dsl Pmdp_exec Pmdp_machine Pmdp_runtime QCheck QCheck_alcotest Stage

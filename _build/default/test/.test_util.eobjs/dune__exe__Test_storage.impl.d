test/test_storage.ml: Alcotest Fun List Pipeline Pmdp_apps Pmdp_core Pmdp_dsl Pmdp_exec Pmdp_machine Printf Stage

test/test_edge_cases.ml: Alcotest Expr List Pipeline Pmdp_apps Pmdp_core Pmdp_dsl Pmdp_exec Pmdp_machine Pmdp_util Printf QCheck QCheck_alcotest Stage

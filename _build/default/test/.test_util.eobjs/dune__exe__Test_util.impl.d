test/test_util.ml: Alcotest Pmdp_util QCheck QCheck_alcotest

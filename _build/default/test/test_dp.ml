(* Tests for the DP grouping (Alg. 1), bounded incremental variant
   (Alg. 3), and the canonical grouping representation. *)

open Pmdp_dsl
module Cost_model = Pmdp_core.Cost_model
module Dp = Pmdp_core.Dp_grouping
module Inc = Pmdp_core.Inc_grouping
module Grouping = Pmdp_core.Grouping
module Machine = Pmdp_machine.Machine

let config = Cost_model.default_config Machine.xeon

(* A linear chain of n pointwise stencil stages. *)
let linear n =
  let dims = Stage.dim2 128 128 in
  let stages =
    List.init n (fun i ->
        let src = if i = 0 then "img" else Printf.sprintf "s%d" (i - 1) in
        Stage.pointwise (Printf.sprintf "s%d" i) dims
          (Pmdp_apps.Helpers.blur3 src ~ndims:2 ~dim:(i mod 2)))
  in
  Pipeline.build ~name:(Printf.sprintf "linear%d" n)
    ~inputs:[ Pipeline.input2 "img" 128 128 ]
    ~stages
    ~outputs:[ Printf.sprintf "s%d" (n - 1) ]

(* -------------------- Grouping -------------------- *)

let test_canonical () =
  let g = Grouping.canonical [ [ 3; 1 ]; [ 2 ] ] in
  Alcotest.(check (list (list int))) "sorted" [ [ 1; 3 ]; [ 2 ] ] g;
  Alcotest.(check string) "key" "1,3|2" (Grouping.key g);
  Alcotest.(check (list int)) "members" [ 1; 2; 3 ] (Grouping.members g);
  Alcotest.(check bool) "equal mod order" true (Grouping.equal [ [ 2 ]; [ 1; 3 ] ] [ [ 3; 1 ]; [ 2 ] ])

let test_canonical_overlap () =
  Alcotest.(check bool) "overlap rejected" true
    (try ignore (Grouping.canonical [ [ 1; 2 ]; [ 2; 3 ] ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty group rejected" true
    (try ignore (Grouping.canonical [ []; [ 1 ] ]); false with Invalid_argument _ -> true)

(* -------------------- DP states -------------------- *)

let test_linear_state_count () =
  (* For a linear pipeline of n stages the DP evaluates exactly
     n(n+1)/2 states (§3.3 of the paper; all 2^(n-1) groupings are
     covered by these states). *)
  List.iter
    (fun n ->
      let o = Dp.run ~config (linear n) in
      Alcotest.(check int) (Printf.sprintf "states for n=%d" n) (n * (n + 1) / 2) o.Dp.enumerated;
      Alcotest.(check bool) "complete" true o.Dp.complete)
    [ 2; 3; 4; 5; 8 ]

let test_unsharp_matches_paper () =
  (* Table 2 reports exactly 10 groupings enumerated for Unsharp. *)
  let p = Pmdp_apps.Unsharp.build ~scale:32 () in
  let o = Dp.run ~config p in
  Alcotest.(check int) "unsharp enumerations" 10 o.Dp.enumerated

let valid_partition p groups =
  List.sort compare (List.concat groups) = List.init (Pipeline.n_stages p) Fun.id

let test_result_is_partition () =
  List.iter
    (fun (app : Pmdp_apps.Registry.app) ->
      let p = app.Pmdp_apps.Registry.build ~scale:32 in
      if Pipeline.n_stages p < 30 then begin
        let o = Dp.run ~config p in
        Alcotest.(check bool)
          (app.Pmdp_apps.Registry.name ^ " partition")
          true (valid_partition p o.Dp.groups)
      end)
    Pmdp_apps.Registry.all

let test_groups_connected_and_acyclic () =
  let p = Pmdp_apps.Harris.build ~scale:32 () in
  let o = Dp.run ~config p in
  List.iter
    (fun g ->
      Alcotest.(check bool) "connected" true
        (Pmdp_dag.Dag.is_connected_subset p.Pipeline.dag g))
    o.Dp.groups;
  (* the quotient by groups must be acyclic *)
  let color = Array.make (Pipeline.n_stages p) 0 in
  List.iteri (fun gi g -> List.iter (fun s -> color.(s) <- gi) g) o.Dp.groups;
  let q, _ = Pmdp_dag.Dag.quotient p.Pipeline.dag color in
  Alcotest.(check bool) "acyclic quotient" false (Pmdp_dag.Dag.has_cycle q)

let test_dp_beats_or_matches_manual_groupings () =
  (* DP cost must be <= the cost of the all-singletons grouping and of
     the fuse-everything grouping (when valid). *)
  let p = linear 6 in
  let o = Dp.run ~config p in
  let cost_of groups =
    List.fold_left
      (fun acc g -> acc +. (Cost_model.cost config p g).Cost_model.cost)
      0.0 groups
  in
  let singletons = List.init 6 (fun i -> [ i ]) in
  let everything = [ List.init 6 Fun.id ] in
  Alcotest.(check bool) "dp <= singletons" true (o.Dp.cost <= cost_of singletons +. 1e-9);
  Alcotest.(check bool) "dp <= everything" true (o.Dp.cost <= cost_of everything +. 1e-9)

let prop_dp_optimal_on_linear =
  (* On short linear pipelines, enumerate ALL 2^(n-1) contiguous
     groupings by brute force and check the DP found the minimum. *)
  QCheck.Test.make ~name:"dp optimal vs brute force on linear chains" ~count:6
    (QCheck.int_range 2 6) (fun n ->
      let p = linear n in
      let o = Dp.run ~config p in
      let cost_of groups =
        List.fold_left
          (fun acc g -> acc +. (Cost_model.cost config p g).Cost_model.cost)
          0.0 groups
      in
      (* enumerate splits via bitmask over the n-1 boundaries *)
      let best = ref infinity in
      for mask = 0 to (1 lsl (n - 1)) - 1 do
        let groups = ref [] and current = ref [ 0 ] in
        for i = 1 to n - 1 do
          if mask land (1 lsl (i - 1)) <> 0 then begin
            groups := List.rev !current :: !groups;
            current := [ i ]
          end
          else current := i :: !current
        done;
        groups := List.rev !current :: !groups;
        let c = cost_of (List.rev !groups) in
        if c < !best then best := c
      done;
      Float.abs (o.Dp.cost -. !best) <= 1e-6 *. Float.max 1.0 (Float.abs !best))

(* Synthesize a pipeline from an arbitrary DAG shape: every stage
   reads each of its predecessors (or the input, for sources) with a
   small stencil, so any connected group is fusable and the DP
   explores the full merge space. *)
let pipeline_of_dag n edges =
  let dims = Stage.dim2 64 64 in
  let preds = Array.make n [] in
  List.iter (fun (u, v) -> preds.(v) <- u :: preds.(v)) edges;
  let stages =
    List.init n (fun i ->
        let srcs = if preds.(i) = [] then [ "img" ] else List.map (Printf.sprintf "s%d") preds.(i) in
        let body =
          List.fold_left
            (fun acc src -> Expr.(acc +: Pmdp_apps.Helpers.blur3 src ~ndims:2 ~dim:(i mod 2)))
            (Expr.const 0.0) srcs
        in
        Stage.pointwise (Printf.sprintf "s%d" i) dims body)
  in
  let sinks =
    List.filter (fun v -> not (List.exists (fun (u, _) -> u = v) edges)) (List.init n Fun.id)
  in
  Pipeline.build ~name:"random"
    ~inputs:[ Pipeline.input2 "img" 64 64 ]
    ~stages
    ~outputs:(List.map (Printf.sprintf "s%d") sinks)

let arb_dag =
  let gen =
    QCheck.Gen.(
      sized_size (int_range 3 8) (fun n ->
          let* edges =
            list_size (int_range n (n * 2))
              (let* u = int_range 0 (n - 2) in
               let* v = int_range (u + 1) (n - 1) in
               return (u, v))
          in
          return (n, List.sort_uniq compare edges)))
  in
  QCheck.make gen ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) edges)))

let prop_dp_valid_on_random_dags =
  QCheck.Test.make ~name:"dp yields acyclic connected partitions on random DAGs" ~count:60
    arb_dag (fun (n, edges) ->
      let p = pipeline_of_dag n edges in
      let o = Dp.run ~state_budget:20_000 ~config p in
      valid_partition p o.Dp.groups
      && List.for_all (fun g -> Pmdp_dag.Dag.is_connected_subset p.Pipeline.dag g) o.Dp.groups
      &&
      let color = Array.make n 0 in
      List.iteri (fun gi g -> List.iter (fun s -> color.(s) <- gi) g) o.Dp.groups;
      let q, _ = Pmdp_dag.Dag.quotient p.Pipeline.dag color in
      not (Pmdp_dag.Dag.has_cycle q))

let prop_inc_valid_on_random_dags =
  QCheck.Test.make ~name:"inc grouping valid on random DAGs" ~count:30 arb_dag
    (fun (n, edges) ->
      let p = pipeline_of_dag n edges in
      let o = Inc.run ~initial_limit:2 ~state_budget:20_000 ~config p in
      valid_partition p o.Inc.groups
      &&
      let color = Array.make n 0 in
      List.iteri (fun gi g -> List.iter (fun s -> color.(s) <- gi) g) o.Inc.groups;
      let q, _ = Pmdp_dag.Dag.quotient p.Pipeline.dag color in
      not (Pmdp_dag.Dag.has_cycle q))

let test_group_limit_respected () =
  let p = linear 8 in
  let o = Dp.run ~group_limit:2 ~config p in
  List.iter
    (fun g -> Alcotest.(check bool) "group <= 2" true (List.length g <= 2))
    o.Dp.groups

let test_atoms_respected () =
  let p = linear 6 in
  let atoms = [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ] in
  let o = Dp.run ~atoms ~config p in
  (* every result group must be a union of atoms *)
  List.iter
    (fun g ->
      List.iter
        (fun atom ->
          let inter = List.exists (fun s -> List.mem s g) atom in
          let subset = List.for_all (fun s -> List.mem s g) atom in
          Alcotest.(check bool) "atom not split" true ((not inter) || subset))
        atoms)
    o.Dp.groups

let test_bad_atoms_rejected () =
  let p = linear 4 in
  Alcotest.(check bool) "non-partition atoms" true
    (try ignore (Dp.run ~atoms:[ [ 0; 1 ]; [ 1; 2; 3 ] ] ~config p); false
     with Invalid_argument _ -> true)

let test_state_budget () =
  let p = Pmdp_apps.Camera_pipe.build ~scale:32 () in
  let o = Dp.run ~state_budget:1000 ~config p in
  Alcotest.(check bool) "incomplete" false o.Dp.complete;
  Alcotest.(check bool) "still a partition" true (valid_partition p o.Dp.groups);
  Alcotest.(check bool) "bounded states" true (o.Dp.enumerated < 50_000)

let test_multi_source () =
  (* Two sources feeding one sink: the dummy-source handling. *)
  let open Expr in
  let dims = Stage.dim2 32 32 in
  let a = Stage.pointwise "a" dims (load "img1" [| cvar 0; cvar 1 |]) in
  let b = Stage.pointwise "b" dims (load "img2" [| cvar 0; cvar 1 |]) in
  let c = Stage.pointwise "c" dims (load "a" [| cvar 0; cvar 1 |] +: load "b" [| cvar 0; cvar 1 |]) in
  let p =
    Pipeline.build ~name:"two_src"
      ~inputs:[ Pipeline.input2 "img1" 32 32; Pipeline.input2 "img2" 32 32 ]
      ~stages:[ a; b; c ] ~outputs:[ "c" ]
  in
  let o = Dp.run ~config p in
  Alcotest.(check bool) "partition" true (valid_partition p o.Dp.groups);
  Alcotest.(check bool) "finite" true (o.Dp.cost < infinity)

(* -------------------- Inc grouping -------------------- *)

let test_inc_matches_dp_on_small () =
  let p = linear 6 in
  let dp = Dp.run ~config p in
  let inc = Inc.run ~initial_limit:8 ~config p in
  (* with limit >= n the first round is already unbounded-equivalent *)
  Alcotest.(check bool) "same cost" true (Float.abs (dp.Dp.cost -. inc.Inc.cost) < 1e-9)

let test_inc_partition_and_rounds () =
  let p = Pmdp_apps.Pyramid_blend.build ~scale:32 () in
  let inc = Inc.run ~initial_limit:8 ~config p in
  Alcotest.(check bool) "partition" true (valid_partition p inc.Inc.groups);
  Alcotest.(check bool) "multiple rounds" true (List.length inc.Inc.rounds >= 2);
  Alcotest.(check bool) "enumerated aggregated" true
    (inc.Inc.total_enumerated
    = List.fold_left (fun acc r -> acc + r.Inc.outcome.Dp.enumerated) 0 inc.Inc.rounds)

let test_inc_bad_args () =
  let p = linear 3 in
  Alcotest.(check bool) "limit < 1" true
    (try ignore (Inc.run ~initial_limit:0 ~config p); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "step < 2" true
    (try ignore (Inc.run ~initial_limit:2 ~step:1 ~config p); false
     with Invalid_argument _ -> true)

(* -------------------- Schedule_spec -------------------- *)

let test_schedule_of_grouping () =
  let p = linear 5 in
  let sched = Pmdp_core.Schedule_spec.of_grouping config p [ [ 0; 1; 2 ]; [ 3; 4 ] ] in
  Pmdp_core.Schedule_spec.validate sched;
  Alcotest.(check int) "2 groups" 2 (Pmdp_core.Schedule_spec.n_groups sched)

let test_schedule_splits_unfusable () =
  let open Expr in
  let dims = Stage.dim2 32 32 in
  let a = Stage.pointwise "a" dims (load "img" [| cvar 0; cvar 1 |]) in
  let b = Stage.pointwise "b" dims (load "a" [| cvar 1; cvar 0 |]) in
  let p =
    Pipeline.build ~name:"mis" ~inputs:[ Pipeline.input2 "img" 32 32 ] ~stages:[ a; b ]
      ~outputs:[ "b" ]
  in
  let sched = Pmdp_core.Schedule_spec.of_grouping config p [ [ 0; 1 ] ] in
  Alcotest.(check int) "split into singletons" 2 (Pmdp_core.Schedule_spec.n_groups sched)

let test_schedule_non_partition_rejected () =
  let p = linear 3 in
  Alcotest.(check bool) "non partition" true
    (try ignore (Pmdp_core.Schedule_spec.of_grouping config p [ [ 0; 1 ] ]); false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "pmdp_dp"
    [
      ( "grouping",
        [
          Alcotest.test_case "canonical" `Quick test_canonical;
          Alcotest.test_case "overlap rejected" `Quick test_canonical_overlap;
        ] );
      ( "dp",
        [
          Alcotest.test_case "linear state count" `Quick test_linear_state_count;
          Alcotest.test_case "unsharp matches paper" `Quick test_unsharp_matches_paper;
          Alcotest.test_case "result is a partition" `Quick test_result_is_partition;
          Alcotest.test_case "groups connected, quotient acyclic" `Quick test_groups_connected_and_acyclic;
          Alcotest.test_case "beats naive groupings" `Quick test_dp_beats_or_matches_manual_groupings;
          QCheck_alcotest.to_alcotest prop_dp_optimal_on_linear;
          QCheck_alcotest.to_alcotest prop_dp_valid_on_random_dags;
          QCheck_alcotest.to_alcotest prop_inc_valid_on_random_dags;
          Alcotest.test_case "group limit respected" `Quick test_group_limit_respected;
          Alcotest.test_case "atoms respected" `Quick test_atoms_respected;
          Alcotest.test_case "bad atoms rejected" `Quick test_bad_atoms_rejected;
          Alcotest.test_case "state budget" `Quick test_state_budget;
          Alcotest.test_case "multi source" `Quick test_multi_source;
        ] );
      ( "inc",
        [
          Alcotest.test_case "matches dp on small" `Quick test_inc_matches_dp_on_small;
          Alcotest.test_case "partition and rounds" `Quick test_inc_partition_and_rounds;
          Alcotest.test_case "bad args" `Quick test_inc_bad_args;
        ] );
      ( "schedule_spec",
        [
          Alcotest.test_case "of_grouping" `Quick test_schedule_of_grouping;
          Alcotest.test_case "splits unfusable" `Quick test_schedule_splits_unfusable;
          Alcotest.test_case "non partition rejected" `Quick test_schedule_non_partition_rejected;
        ] );
    ]

(* Cross-validation driver: every app's DP schedule must reproduce
   the reference executor bitwise.  Run directly during development;
   the alcotest suites cover the same ground. *)
let () =
  let scale = try int_of_string Sys.argv.(1) with _ -> 32 in
  let config = Pmdp_core.Cost_model.default_config Pmdp_machine.Machine.xeon in
  List.iter
    (fun (app : Pmdp_apps.Registry.app) ->
      let t0 = Unix.gettimeofday () in
      let p = app.build ~scale in
      let n = Pmdp_dsl.Pipeline.n_stages p in
      Printf.printf "%-14s stages=%d (paper %d)%!" app.name n app.paper_stages;
      let inputs = app.inputs ~seed:1 p in
      let refr = Pmdp_exec.Reference.run p ~inputs in
      (* Large pipelines use the paper's bounded incremental DP
         (Alg. 3), exactly as the paper does for CP and PB. *)
      let sched, enumerated, elapsed =
        if n >= 30 then begin
          let inc = Pmdp_core.Inc_grouping.run ~initial_limit:8 ~config p in
          ( Pmdp_core.Schedule_spec.of_grouping config p inc.Pmdp_core.Inc_grouping.groups,
            inc.Pmdp_core.Inc_grouping.total_enumerated,
            inc.Pmdp_core.Inc_grouping.total_elapsed )
        end
        else begin
          let sched, outcome = Pmdp_core.Schedule_spec.dp config p in
          (sched, outcome.Pmdp_core.Dp_grouping.enumerated, outcome.Pmdp_core.Dp_grouping.elapsed)
        end
      in
      Printf.printf " groups=%d enumerated=%d dp_time=%.2fs%!"
        (Pmdp_core.Schedule_spec.n_groups sched) enumerated elapsed;
      let plan = Pmdp_exec.Tiled_exec.plan sched in
      let tiled = Pmdp_exec.Tiled_exec.run plan ~inputs in
      let worst =
        List.fold_left
          (fun acc (name, buf) ->
            Float.max acc (Pmdp_exec.Buffer.max_abs_diff buf (List.assoc name refr)))
          0.0 tiled
      in
      Printf.printf " maxdiff=%g total=%.2fs\n%!" worst (Unix.gettimeofday () -. t0);
      assert (worst = 0.0))
    Pmdp_apps.Registry.all;
  print_endline "all apps validated"

(* Tests for the scaling/alignment/dependence analysis, reuse scores,
   and footprint math. *)

open Pmdp_dsl
open Expr
module GA = Pmdp_analysis.Group_analysis
module Reuse = Pmdp_analysis.Reuse
module Footprint = Pmdp_analysis.Footprint

let dims = Stage.dim2 64 64
let here name = load name [| cvar 0; cvar 1 |]

let blur () =
  let blurx = Stage.pointwise "blurx" dims (Pmdp_apps.Helpers.blur3 "img" ~ndims:2 ~dim:0) in
  let blury = Stage.pointwise "blury" dims (Pmdp_apps.Helpers.blur3 "blurx" ~ndims:2 ~dim:1) in
  Pipeline.build ~name:"blur2"
    ~inputs:[ Pipeline.input2 "img" 64 64 ]
    ~stages:[ blurx; blury ] ~outputs:[ "blury" ]

(* Two-level downsampling pyramid. *)
let pyramid () =
  let base = Stage.pointwise "base" dims (here "img") in
  let down1 =
    Stage.pointwise "down1" (Stage.dim2 32 64) (Pmdp_apps.Helpers.downsample2 "base" ~ndims:2 ~dim:0)
  in
  let down2 =
    Stage.pointwise "down2" (Stage.dim2 16 64) (Pmdp_apps.Helpers.downsample2 "down1" ~ndims:2 ~dim:0)
  in
  Pipeline.build ~name:"pyr"
    ~inputs:[ Pipeline.input2 "img" 64 64 ]
    ~stages:[ base; down1; down2 ] ~outputs:[ "down2" ]

let ok = function Ok ga -> ga | Error f -> Alcotest.failf "analysis failed: %a" GA.pp_failure f

(* -------------------- scaling & expansions -------------------- *)

let test_blur_fused () =
  let p = blur () in
  let ga = ok (GA.analyze p [ 0; 1 ]) in
  Alcotest.(check int) "2 dims" 2 ga.GA.n_dims;
  Alcotest.(check bool) "unit scales" true
    (Array.for_all (fun row -> Array.for_all (fun s -> s = 1) row) ga.GA.scales);
  (* blurx (member 0) must expand by 1 on each side along y (dim 1)
     because blury reads blurx(y-1..y+1); blury is a live-out. *)
  Alcotest.(check (pair int int)) "blurx y expansion" (1, 1) ga.GA.expansions.(0).(1);
  Alcotest.(check (pair int int)) "blurx x expansion" (0, 0) ga.GA.expansions.(0).(0);
  Alcotest.(check (pair int int)) "blury no expansion" (0, 0) ga.GA.expansions.(1).(1);
  Alcotest.(check bool) "blurx not liveout" false ga.GA.liveouts.(0);
  Alcotest.(check bool) "blury liveout" true ga.GA.liveouts.(1)

let test_blur_edge_offsets () =
  let p = blur () in
  let ga = ok (GA.analyze p [ 0; 1 ]) in
  match ga.GA.edges with
  | [ e ] ->
      Alcotest.(check int) "three accesses" 3 (List.length e.GA.offsets);
      Alcotest.(check (pair int int)) "hull along y" (-1, 1) e.GA.hull.(1);
      Alcotest.(check (pair int int)) "hull along x" (0, 0) e.GA.hull.(0)
  | es -> Alcotest.failf "expected 1 edge, got %d" (List.length es)

let test_pyramid_scales () =
  let p = pyramid () in
  let ga = ok (GA.analyze p [ 0; 1; 2 ]) in
  (* base:down1:down2 scale 1:2:4 along x (dim 0) after normalization. *)
  let scale_of name = ga.GA.scales.(GA.member_index ga (Pipeline.stage_id p name)) in
  Alcotest.(check int) "base x scale" 1 (scale_of "base").(0);
  Alcotest.(check int) "down1 x scale" 2 (scale_of "down1").(0);
  Alcotest.(check int) "down2 x scale" 4 (scale_of "down2").(0);
  Alcotest.(check int) "y scales stay 1" 1 (scale_of "down2").(1);
  (* scaled hull along x covers the base resolution *)
  Alcotest.(check int) "hull extent x" 64 (GA.dim_extent ga 0)

let test_partial_group () =
  let p = pyramid () in
  let ga = ok (GA.analyze p [ 1; 2 ]) in
  Alcotest.(check int) "two members" 2 (Array.length ga.GA.members);
  (* within {down1, down2}: scales 1:2 *)
  let s1 = ga.GA.scales.(GA.member_index ga 1).(0)
  and s2 = ga.GA.scales.(GA.member_index ga 2).(0) in
  Alcotest.(check int) "relative scale" 2 (s2 / s1)

let test_not_connected () =
  let p = pyramid () in
  match GA.analyze p [ 0; 2 ] with
  | Error GA.Not_connected -> ()
  | Ok _ -> Alcotest.fail "base+down2 should not be connected"
  | Error f -> Alcotest.failf "wrong failure: %a" GA.pp_failure f

let test_singleton_always_ok () =
  let p = pyramid () in
  List.iter (fun i -> ignore (ok (GA.analyze p [ i ]))) [ 0; 1; 2 ]

let test_dynamic_access_fails () =
  let a = Stage.pointwise "a" dims (here "img") in
  let b = Stage.pointwise "b" dims (load "a" [| cdyn (here "img"); cvar 1 |]) in
  let p =
    Pipeline.build ~name:"dyn" ~inputs:[ Pipeline.input2 "img" 64 64 ] ~stages:[ a; b ]
      ~outputs:[ "b" ]
  in
  match GA.analyze p [ 0; 1 ] with
  | Error (GA.Dynamic_access _) -> ()
  | _ -> Alcotest.fail "expected Dynamic_access"

let test_zero_scale_fails () =
  let a = Stage.pointwise "a" dims (here "img") in
  let b = Stage.pointwise "b" dims (load "a" [| cscale 0 ~num:0 ~den:1 ~off:3; cvar 1 |]) in
  let p =
    Pipeline.build ~name:"zs" ~inputs:[ Pipeline.input2 "img" 64 64 ] ~stages:[ a; b ]
      ~outputs:[ "b" ]
  in
  match GA.analyze p [ 0; 1 ] with
  | Error (GA.Zero_scale_access _) -> ()
  | _ -> Alcotest.fail "expected Zero_scale_access"

let test_misaligned_fails () =
  (* b reads a transposed: a's dim 0 indexed by b's var 1. *)
  let a = Stage.pointwise "a" dims (here "img") in
  let b = Stage.pointwise "b" dims (load "a" [| cvar 1; cvar 0 |]) in
  let p =
    Pipeline.build ~name:"mis" ~inputs:[ Pipeline.input2 "img" 64 64 ] ~stages:[ a; b ]
      ~outputs:[ "b" ]
  in
  match GA.analyze p [ 0; 1 ] with
  | Error (GA.Misaligned _) -> ()
  | _ -> Alcotest.fail "expected Misaligned"

let test_fused_reduction_policy () =
  let a = Stage.pointwise "a" dims (here "img") in
  let r =
    Stage.reduction "r" dims ~op:Stage.Rsum ~init:0.0 ~rdom:[| (0, 2) |]
      (load "img" [| cdyn (var 0 +: var 2); cvar 1 |])
  in
  let b = Stage.pointwise "b" dims (here "r" +: here "a") in
  let p =
    Pipeline.build ~name:"red" ~inputs:[ Pipeline.input2 "img" 64 64 ] ~stages:[ a; r; b ]
      ~outputs:[ "b" ]
  in
  (* r has no in-group producer: fusable when allowed... *)
  (match GA.analyze ~allow_fused_reductions:true p [ 1; 2 ] with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "reduction with external producers should fuse: %a" GA.pp_failure f);
  (* ...but never under the PolyMage rule. *)
  (match GA.analyze ~allow_fused_reductions:false p [ 1; 2 ] with
  | Error (GA.Fused_reduction _) -> ()
  | _ -> Alcotest.fail "expected Fused_reduction under the PolyMage rule");
  (* and never when a producer is in the group (here it has none, so
     build one: group {a, r, b} still has no a->r edge; use {r} alone ok) *)
  match GA.analyze ~allow_fused_reductions:true p [ 0; 1; 2 ] with
  | Ok _ -> () (* a is not a producer of r, so this is fine *)
  | Error f -> Alcotest.failf "unexpected failure: %a" GA.pp_failure f

let test_reduction_with_in_group_producer_fails () =
  let a = Stage.pointwise "a" dims (here "img") in
  let r =
    Stage.reduction "r" dims ~op:Stage.Rsum ~init:0.0 ~rdom:[| (0, 2) |]
      (load "a" [| cdyn (var 0 +: var 2); cvar 1 |])
  in
  let p =
    Pipeline.build ~name:"red2" ~inputs:[ Pipeline.input2 "img" 64 64 ] ~stages:[ a; r ]
      ~outputs:[ "r" ]
  in
  match GA.analyze ~allow_fused_reductions:true p [ 0; 1 ] with
  | Error (GA.Fused_reduction _) -> ()
  | _ -> Alcotest.fail "reduction reading an in-group producer must not fuse"

let test_points_in_scaled_box () =
  let p = pyramid () in
  let ga = ok (GA.analyze p [ 0; 1; 2 ]) in
  let m1 = GA.member_index ga 1 in
  (* down1 has scale 2 along x: in scaled box x in [0,15], y in [0,63],
     it owns x in {0,2,...,14} -> 8 rows of 64. *)
  let n = GA.stage_points_in_scaled_box ga m1 ~lo:[| 0; 0 |] ~hi:[| 15; 63 |] in
  Alcotest.(check int) "down1 points in box" (8 * 64) n

(* -------------------- reuse -------------------- *)

let test_reuse_blur () =
  let p = blur () in
  let ga = ok (GA.analyze p [ 0; 1 ]) in
  let r = Reuse.scores ga in
  (* y (innermost): blury's 3-tap stencil (+2) plus spatial bonus;
     x: blurx's 3-tap input stencil (+2). *)
  Alcotest.(check bool) "y reuse highest" true (r.(1) > r.(0));
  Alcotest.(check bool) "x has input reuse" true (r.(0) > 1.0)

let test_reuse_min_one () =
  let p = pyramid () in
  let ga = ok (GA.analyze p [ 0 ]) in
  let r = Reuse.scores ga in
  Alcotest.(check bool) "scores >= 1" true (Array.for_all (fun s -> s >= 1.0) r)

(* -------------------- footprint -------------------- *)

let test_footprint_blur () =
  let p = blur () in
  let ga = ok (GA.analyze p [ 0; 1 ]) in
  Alcotest.(check (Alcotest.float 1.0)) "liveouts 64*64*4" (64.0 *. 64.0 *. 4.0)
    (Footprint.liveouts_bytes ga);
  Alcotest.(check (Alcotest.float 1.0)) "intermediates" (64.0 *. 64.0 *. 4.0)
    (Footprint.intermediates_bytes ga);
  Alcotest.(check int) "buffers" 2 (Footprint.n_buffers ga);
  let tile = [| 16; 16 |] in
  Alcotest.(check (Alcotest.float 1.0)) "compute volume 2 tiles' points" (2.0 *. 256.0)
    (Footprint.tile_compute_volume ga ~tile);
  (* overlap: blurx computes 2 extra columns along y -> 32 points *)
  Alcotest.(check (Alcotest.float 0.5)) "overlap" 32.0 (Footprint.overlap_points ga ~tile);
  Alcotest.(check int) "16 tiles" 16 (Footprint.n_tiles ga ~tile);
  Alcotest.(check bool) "livein > 0" true (Footprint.livein_tile_bytes ga ~tile > 0.0);
  Alcotest.(check (Alcotest.float 1.0)) "liveout tile" (256.0 *. 4.0)
    (Footprint.liveout_tile_bytes ga ~tile)

let test_clamp_tile () =
  let p = blur () in
  let ga = ok (GA.analyze p [ 0; 1 ]) in
  Alcotest.(check (array int)) "clamped" [| 64; 1 |] (Footprint.clamp_tile ga [| 1000; 0 |])

let () =
  Alcotest.run "pmdp_analysis"
    [
      ( "scaling",
        [
          Alcotest.test_case "blur fused" `Quick test_blur_fused;
          Alcotest.test_case "blur edge offsets" `Quick test_blur_edge_offsets;
          Alcotest.test_case "pyramid scales" `Quick test_pyramid_scales;
          Alcotest.test_case "partial group scales" `Quick test_partial_group;
          Alcotest.test_case "not connected" `Quick test_not_connected;
          Alcotest.test_case "singletons ok" `Quick test_singleton_always_ok;
          Alcotest.test_case "dynamic access" `Quick test_dynamic_access_fails;
          Alcotest.test_case "zero-scale access" `Quick test_zero_scale_fails;
          Alcotest.test_case "misaligned" `Quick test_misaligned_fails;
          Alcotest.test_case "reduction policy" `Quick test_fused_reduction_policy;
          Alcotest.test_case "reduction w/ producer" `Quick test_reduction_with_in_group_producer_fails;
          Alcotest.test_case "points in scaled box" `Quick test_points_in_scaled_box;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "blur reuse" `Quick test_reuse_blur;
          Alcotest.test_case "scores >= 1" `Quick test_reuse_min_one;
        ] );
      ( "footprint",
        [
          Alcotest.test_case "blur quantities" `Quick test_footprint_blur;
          Alcotest.test_case "clamp tile" `Quick test_clamp_tile;
        ] );
    ]

(* Tests for the C++/OpenMP emitter, including a compile check with
   the system g++ when one is available. *)

module C_emit = Pmdp_codegen.C_emit
module Schedule_spec = Pmdp_core.Schedule_spec
module Cost_model = Pmdp_core.Cost_model
module Machine = Pmdp_machine.Machine

let config = Cost_model.default_config Machine.xeon

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let blur_code () =
  let p = Pmdp_apps.Blur.build ~rows:62 ~cols:64 () in
  let sched = fst (Schedule_spec.dp config p) in
  (p, C_emit.emit sched)

let test_structure () =
  let _, code = blur_code () in
  List.iter
    (fun marker ->
      Alcotest.(check bool) ("contains " ^ marker) true (contains code marker))
    [
      "#pragma omp parallel for schedule(static)";
      "#pragma ivdep";
      "tile of function blurx";
      "tile of function blury";
      "float scr_blurx";
      "static float buf_blury";
      "void pipeline_blur(const float *buf_img)";
      "CLAMPI";
    ]

let test_liveouts_copy_out () =
  let _, code = blur_code () in
  (* live-outs compute into scratch and copy their exact tile part *)
  Alcotest.(check bool) "blury scratch exists" true (contains code "float scr_blury[");
  Alcotest.(check bool) "copy-out loop" true (contains code "copy exact tile of blury")

let test_unfused_schedule_code () =
  let p = Pmdp_apps.Blur.build ~rows:32 ~cols:32 () in
  let sched = Schedule_spec.with_tiles p [ ([ 0 ], [| 3; 16; 16 |]); ([ 1 ], [| 3; 16; 16 |]) ] in
  let code = C_emit.emit sched in
  (* both stages become live-outs with full buffers *)
  Alcotest.(check bool) "blurx full buffer" true (contains code "static float buf_blurx");
  Alcotest.(check bool) "blury full buffer" true (contains code "static float buf_blury")

let test_reduction_codegen () =
  let p = Pmdp_apps.Bilateral_grid.build ~scale:32 () in
  let sched = fst (Schedule_spec.dp config p) in
  let code = C_emit.emit sched in
  Alcotest.(check bool) "accumulator loop" true (contains code "acc +=")

let test_emit_to_file () =
  let p = Pmdp_apps.Blur.build ~rows:32 ~cols:32 () in
  let sched = fst (Schedule_spec.dp config p) in
  let path = Filename.temp_file "pmdp_test" ".cpp" in
  C_emit.emit_to_file sched path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file written" true (len > 500)

let gpp_available () = Sys.command "which g++ > /dev/null 2>&1" = 0

let compile_with_gpp code name =
  let path = Filename.temp_file ("pmdp_" ^ name) ".cpp" in
  let oc = open_out path in
  output_string oc code;
  close_out oc;
  let rc =
    Sys.command
      (Printf.sprintf "g++ -fsyntax-only -fopenmp -Wno-unknown-pragmas %s 2>/dev/null" path)
  in
  Sys.remove path;
  rc = 0

let test_gpp_compiles_all_apps () =
  if not (gpp_available ()) then ()
  else
    List.iter
      (fun (app : Pmdp_apps.Registry.app) ->
        let p = app.Pmdp_apps.Registry.build ~scale:32 in
        let sched =
          if Pmdp_dsl.Pipeline.n_stages p >= 30 then begin
            let inc = Pmdp_core.Inc_grouping.run ~initial_limit:8 ~config p in
            Schedule_spec.of_grouping config p inc.Pmdp_core.Inc_grouping.groups
          end
          else fst (Schedule_spec.dp config p)
        in
        let code = C_emit.emit sched in
        Alcotest.(check bool)
          (app.Pmdp_apps.Registry.name ^ " compiles with g++")
          true
          (compile_with_gpp code app.Pmdp_apps.Registry.name))
      Pmdp_apps.Registry.all

let () =
  Alcotest.run "pmdp_codegen"
    [
      ( "emit",
        [
          Alcotest.test_case "structure markers" `Quick test_structure;
          Alcotest.test_case "live-out copy-out" `Quick test_liveouts_copy_out;
          Alcotest.test_case "unfused schedule" `Quick test_unfused_schedule_code;
          Alcotest.test_case "reduction" `Quick test_reduction_codegen;
          Alcotest.test_case "emit to file" `Quick test_emit_to_file;
          Alcotest.test_case "g++ compiles all apps" `Slow test_gpp_compiles_all_apps;
        ] );
    ]

(* Tests for the domain pool and makespan simulation. *)

module Pool = Pmdp_runtime.Pool

let test_create_bad () =
  Alcotest.(check bool) "zero workers" true
    (try ignore (Pool.create 0); false with Invalid_argument _ -> true)

let test_parallel_for_covers_all () =
  let pool = Pool.create 4 in
  let n = 1000 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Pool.parallel_for pool ~n (fun i -> Atomic.incr hits.(i));
  Array.iteri
    (fun i a -> Alcotest.(check int) (Printf.sprintf "index %d once" i) 1 (Atomic.get a))
    hits

let test_parallel_for_sum () =
  let pool = Pool.create 3 in
  let acc = Atomic.make 0 in
  Pool.parallel_for pool ~n:100 (fun i -> ignore (Atomic.fetch_and_add acc i));
  Alcotest.(check int) "sum" 4950 (Atomic.get acc)

let test_parallel_for_single_worker () =
  let pool = Pool.create 1 in
  let order = ref [] in
  Pool.parallel_for pool ~n:5 (fun i -> order := i :: !order);
  Alcotest.(check (list int)) "sequential order" [ 0; 1; 2; 3; 4 ] (List.rev !order)

let test_parallel_for_zero () =
  let pool = Pool.create 4 in
  Pool.parallel_for pool ~n:0 (fun _ -> Alcotest.fail "must not run")

exception Boom

let test_exception_propagates () =
  let pool = Pool.create 4 in
  Alcotest.(check bool) "raises" true
    (try
       Pool.parallel_for pool ~n:100 (fun i -> if i = 50 then raise Boom);
       false
     with Boom -> true)

let feq = Alcotest.float 1e-12

let test_makespan_static () =
  (* 4 tiles on 2 workers, static: chunks [0;1] and [2;3] *)
  let d = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.check feq "static" 7.0 (Pool.simulate_makespan ~sched:Pool.Static ~workers:2 d);
  Alcotest.check feq "1 worker = sum" 10.0 (Pool.simulate_makespan ~workers:1 d);
  Alcotest.check feq "many workers = max" 4.0
    (Pool.simulate_makespan ~sched:Pool.Static ~workers:8 d)

let test_makespan_dynamic () =
  (* dynamic: [3;1;1;1] on 2 workers: w0=3, w1=1+1+1=3 *)
  let d = [| 3.0; 1.0; 1.0; 1.0 |] in
  Alcotest.check feq "dynamic balances" 3.0
    (Pool.simulate_makespan ~sched:Pool.Dynamic ~workers:2 d);
  (* static on the same input: chunks [3;1] and [1;1] -> 4 *)
  Alcotest.check feq "static is worse here" 4.0
    (Pool.simulate_makespan ~sched:Pool.Static ~workers:2 d)

let test_makespan_empty () =
  Alcotest.check feq "no tiles" 0.0 (Pool.simulate_makespan ~workers:4 [||])

let test_makespan_bad_workers () =
  Alcotest.(check bool) "workers < 1" true
    (try ignore (Pool.simulate_makespan ~workers:0 [| 1.0 |]); false
     with Invalid_argument _ -> true)

let prop_makespan_bounds =
  QCheck.Test.make ~name:"makespan between max and sum" ~count:200
    QCheck.(pair (int_range 1 8) (list_of_size (QCheck.Gen.int_range 1 30) (float_range 0.0 10.0)))
    (fun (workers, durations) ->
      let d = Array.of_list durations in
      let sum = Array.fold_left ( +. ) 0.0 d in
      let mx = Array.fold_left Float.max 0.0 d in
      List.for_all
        (fun sched ->
          let m = Pool.simulate_makespan ~sched ~workers d in
          m >= mx -. 1e-9 && m <= sum +. 1e-9)
        [ Pool.Static; Pool.Dynamic ])

let () =
  Alcotest.run "pmdp_runtime"
    [
      ( "pool",
        [
          Alcotest.test_case "bad size" `Quick test_create_bad;
          Alcotest.test_case "covers all indices" `Quick test_parallel_for_covers_all;
          Alcotest.test_case "sum" `Quick test_parallel_for_sum;
          Alcotest.test_case "single worker" `Quick test_parallel_for_single_worker;
          Alcotest.test_case "zero iterations" `Quick test_parallel_for_zero;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
        ] );
      ( "makespan",
        [
          Alcotest.test_case "static" `Quick test_makespan_static;
          Alcotest.test_case "dynamic" `Quick test_makespan_dynamic;
          Alcotest.test_case "empty" `Quick test_makespan_empty;
          Alcotest.test_case "bad workers" `Quick test_makespan_bad_workers;
          QCheck_alcotest.to_alcotest prop_makespan_bounds;
        ] );
    ]

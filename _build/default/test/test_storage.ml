(* Tests for the storage optimization: lifetime analysis and
   buffer-recycling execution. *)

open Pmdp_dsl
module Storage = Pmdp_exec.Storage
module Buffer = Pmdp_exec.Buffer
module Tiled_exec = Pmdp_exec.Tiled_exec
module Schedule_spec = Pmdp_core.Schedule_spec
module Cost_model = Pmdp_core.Cost_model

let config = Cost_model.default_config Pmdp_machine.Machine.xeon

(* A chain of n stages, scheduled all-unfused: n live-outs with
   strictly nested lifetimes — ideal for recycling. *)
let chain n rows cols =
  let dims = Stage.dim2 rows cols in
  let stages =
    List.init n (fun i ->
        let src = if i = 0 then "img" else Printf.sprintf "s%d" (i - 1) in
        Stage.pointwise (Printf.sprintf "s%d" i) dims
          (Pmdp_apps.Helpers.blur3 src ~ndims:2 ~dim:(i mod 2)))
  in
  Pipeline.build ~name:"chain"
    ~inputs:[ Pipeline.input2 "img" rows cols ]
    ~stages
    ~outputs:[ Printf.sprintf "s%d" (n - 1) ]

let unfused p =
  Schedule_spec.with_tiles p
    (List.init (Pipeline.n_stages p) (fun i -> ([ i ], [| 16; 64 |])))

let test_lifetimes_chain () =
  let p = chain 5 32 32 in
  let sched = unfused p in
  let ls = Storage.lifetimes sched in
  Alcotest.(check int) "five live-outs" 5 (List.length ls);
  List.iteri
    (fun i (l : Storage.lifetime) ->
      Alcotest.(check string) "order" (Printf.sprintf "s%d" i) l.Storage.stage;
      Alcotest.(check int) "born" i l.Storage.born;
      if i < 4 then Alcotest.(check int) "dies at consumer" (i + 1) l.Storage.dies
      else Alcotest.(check int) "output never dies" max_int l.Storage.dies)
    ls

let test_report_savings () =
  let p = chain 8 32 32 in
  let r = Storage.report (unfused p) in
  let per = 32 * 32 * 4 in
  Alcotest.(check int) "naive = 8 buffers" (8 * per) r.Storage.peak_naive_bytes;
  (* the chain needs at most 2 transient buffers + ... first-fit keeps
     the producer and its consumer alive simultaneously *)
  Alcotest.(check bool) "reuse well below naive" true
    (r.Storage.peak_reuse_bytes <= 3 * per)

let test_report_fused_is_smaller () =
  let p = chain 8 64 64 in
  let fused = Schedule_spec.with_tiles p [ (List.init 8 Fun.id, [| 16; 64 |]) ] in
  let r = Storage.report fused in
  (* one live-out only *)
  Alcotest.(check int) "one live-out" 1 (List.length r.Storage.lifetimes);
  Alcotest.(check int) "naive = reuse" r.Storage.peak_naive_bytes r.Storage.peak_reuse_bytes

let test_reuse_execution_correct () =
  List.iter
    (fun (app : Pmdp_apps.Registry.app) ->
      let p = app.Pmdp_apps.Registry.build ~scale:48 in
      let inputs = app.Pmdp_apps.Registry.inputs ~seed:3 p in
      let sched =
        if Pipeline.n_stages p >= 30 then begin
          let inc = Pmdp_core.Inc_grouping.run ~initial_limit:8 ~config p in
          Schedule_spec.of_grouping config p inc.Pmdp_core.Inc_grouping.groups
        end
        else fst (Schedule_spec.dp config p)
      in
      let plan = Tiled_exec.plan sched in
      let plain = Tiled_exec.run plan ~inputs in
      let reused = Tiled_exec.run ~reuse_buffers:true plan ~inputs in
      (* recycled runs return outputs only, and they must be identical *)
      List.iter
        (fun out_id ->
          let name = (Pipeline.stage p out_id).Stage.name in
          Alcotest.(check (float 0.0))
            (app.Pmdp_apps.Registry.name ^ " " ^ name)
            0.0
            (Buffer.max_abs_diff (List.assoc name reused) (List.assoc name plain)))
        p.Pipeline.outputs)
    Pmdp_apps.Registry.all

let test_reuse_only_outputs_returned () =
  let p = chain 4 16 16 in
  let plan = Tiled_exec.plan (unfused p) in
  let inputs = [ ("img", Pmdp_apps.Images.gray ~seed:1 "img" ~rows:16 ~cols:16) ] in
  let results = Tiled_exec.run ~reuse_buffers:true plan ~inputs in
  Alcotest.(check int) "only the output" 1 (List.length results);
  Alcotest.(check bool) "named s3" true (List.mem_assoc "s3" results)

let () =
  Alcotest.run "pmdp_storage"
    [
      ( "storage",
        [
          Alcotest.test_case "chain lifetimes" `Quick test_lifetimes_chain;
          Alcotest.test_case "report savings" `Quick test_report_savings;
          Alcotest.test_case "fused report" `Quick test_report_fused_is_smaller;
          Alcotest.test_case "recycled execution exact" `Slow test_reuse_execution_correct;
          Alcotest.test_case "outputs only" `Quick test_reuse_only_outputs_returned;
        ] );
    ]

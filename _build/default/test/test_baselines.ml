(* Tests for the baseline schedulers: PolyMage greedy (+ auto-tuning)
   and the Halide auto-scheduler reimplementation, plus the manual
   schedules. *)

open Pmdp_dsl
module Greedy = Pmdp_baselines.Polymage_greedy
module Autotune = Pmdp_baselines.Autotune
module Halide = Pmdp_baselines.Halide_auto
module Manual = Pmdp_baselines.Manual
module Schedule_spec = Pmdp_core.Schedule_spec
module Machine = Pmdp_machine.Machine

let is_partition p groups =
  List.sort compare (List.concat groups) = List.init (Pipeline.n_stages p) Fun.id

(* -------------------- PolyMage greedy -------------------- *)

let test_greedy_fuses_blur () =
  let p = Pmdp_apps.Blur.build ~rows:128 ~cols:128 () in
  let g = Greedy.group { Greedy.tile = 32; overlap_threshold = 0.5 } p in
  Alcotest.(check int) "single group" 1 (List.length g)

let test_greedy_threshold_zero_blocks_fusion () =
  (* With zero tolerance, any overlap blocks merging of stencil chains. *)
  let p = Pmdp_apps.Blur.build ~rows:128 ~cols:128 () in
  let g = Greedy.group { Greedy.tile = 32; overlap_threshold = 0.0 } p in
  Alcotest.(check int) "no fusion" 2 (List.length g)

let test_greedy_partition () =
  List.iter
    (fun (app : Pmdp_apps.Registry.app) ->
      let p = app.Pmdp_apps.Registry.build ~scale:32 in
      let g = Greedy.group { Greedy.tile = 64; overlap_threshold = 0.4 } p in
      Alcotest.(check bool) (app.Pmdp_apps.Registry.name ^ " partition") true (is_partition p g))
    Pmdp_apps.Registry.all

let test_greedy_schedule_valid () =
  let p = Pmdp_apps.Harris.build ~scale:32 () in
  let sched = Greedy.schedule { Greedy.tile = 64; overlap_threshold = 0.4 } p in
  Schedule_spec.validate sched

let test_greedy_does_not_fuse_reductions () =
  let p = Pmdp_apps.Bilateral_grid.build ~scale:32 () in
  let g = Greedy.group { Greedy.tile = 32; overlap_threshold = 0.5 } p in
  let grid = Pipeline.stage_id p "grid" in
  let grid_group = List.find (fun gg -> List.mem grid gg) g in
  Alcotest.(check (list int)) "grid stays alone" [ grid ] grid_group

(* -------------------- Autotune -------------------- *)

let test_autotune_picks_minimum () =
  let p = Pmdp_apps.Blur.build ~rows:64 ~cols:64 () in
  (* a fake evaluator that prefers tile 16 *)
  let calls = ref [] in
  let evaluate sched =
    let t =
      List.fold_left
        (fun acc (g : Schedule_spec.group) ->
          acc + Array.fold_left ( + ) 0 g.Schedule_spec.tile_sizes)
        0 sched.Schedule_spec.groups
    in
    calls := t :: !calls;
    Float.abs (float_of_int t -. 35.0)
  in
  let r = Autotune.run ~evaluate p in
  Alcotest.(check bool) "explored the space" true (List.length r.Autotune.evaluated >= 18);
  let best_time = r.Autotune.best_time in
  List.iter
    (fun (_, t) -> Alcotest.(check bool) "best is min" true (best_time <= t))
    r.Autotune.evaluated

let test_autotune_dedups_schedules () =
  let p = Pmdp_apps.Blur.build ~rows:64 ~cols:64 () in
  let count = ref 0 in
  let evaluate _ = incr count; 1.0 in
  ignore (Autotune.run ~evaluate p);
  (* 18 parameter points but far fewer distinct schedules *)
  Alcotest.(check bool) "deduplicated" true (!count < 18)

let test_autotune_space () =
  Alcotest.(check int) "6 tile sizes" 6 (List.length Autotune.tile_sizes);
  Alcotest.(check int) "3 thresholds" 3 (List.length Autotune.thresholds)

(* -------------------- Halide auto-scheduler -------------------- *)

let test_halide_params () =
  let px = Halide.params_for Machine.xeon in
  Alcotest.(check int) "xeon cache" (256 * 1024) px.Halide.cache_bytes;
  Alcotest.(check int) "parallelism" 16 px.Halide.parallelism;
  let po = Halide.params_for Machine.opteron in
  Alcotest.(check int) "opteron cache" (1024 * 1024) po.Halide.cache_bytes

let test_halide_fuses_unsharp () =
  let p = Pmdp_apps.Unsharp.build ~scale:8 () in
  let sched = Halide.schedule (Halide.params_for Machine.xeon) p in
  (* the stencil chain merges into few groups *)
  Alcotest.(check bool) "fused" true (Schedule_spec.n_groups sched < 4);
  Schedule_spec.validate sched

let test_halide_group_cost_monotone_smoke () =
  let p = Pmdp_apps.Blur.build ~rows:512 ~cols:512 () in
  let params = Halide.params_for Machine.xeon in
  let fused, tiles = Halide.group_cost params p [ 0; 1 ] in
  Alcotest.(check bool) "finite" true (fused < infinity);
  Alcotest.(check bool) "tiles returned" true (Array.length tiles > 0);
  let a, _ = Halide.group_cost params p [ 0 ] in
  let b, _ = Halide.group_cost params p [ 1 ] in
  (* merging the blur chain is profitable under the Halide model *)
  Alcotest.(check bool) "merge beneficial" true (fused < a +. b)

let test_halide_all_apps_valid () =
  List.iter
    (fun (app : Pmdp_apps.Registry.app) ->
      let p = app.Pmdp_apps.Registry.build ~scale:32 in
      let sched = Halide.schedule (Halide.params_for Machine.xeon) p in
      Schedule_spec.validate sched)
    Pmdp_apps.Registry.all

(* -------------------- Manual -------------------- *)

let test_manual_all_benchmarks () =
  List.iter
    (fun (app : Pmdp_apps.Registry.app) ->
      let p = app.Pmdp_apps.Registry.build ~scale:32 in
      Alcotest.(check bool) (app.Pmdp_apps.Registry.name ^ " has manual") true
        (Manual.has_schedule p);
      Schedule_spec.validate (Manual.schedule p))
    Pmdp_apps.Registry.all

let test_manual_unknown_pipeline () =
  let open Expr in
  let p =
    Pipeline.build ~name:"mystery"
      ~inputs:[ Pipeline.input2 "img" 8 8 ]
      ~stages:[ Stage.pointwise "s" (Stage.dim2 8 8) (load "img" [| cvar 0; cvar 1 |]) ]
      ~outputs:[ "s" ]
  in
  Alcotest.(check bool) "no schedule" false (Manual.has_schedule p)

let test_manual_bilateral_fuses_reduction () =
  (* The expert schedule groups the histogram with the blurs — the
     structural advantage the paper credits Halide with on BG. *)
  let p = Pmdp_apps.Bilateral_grid.build ~scale:32 () in
  let groups = List.map fst (Manual.grouping p) in
  Alcotest.(check bool) "grid grouped with blurs" true
    (List.exists (fun g -> List.mem "grid" g && List.mem "blurz" g) groups)

let () =
  Alcotest.run "pmdp_baselines"
    [
      ( "greedy",
        [
          Alcotest.test_case "fuses blur" `Quick test_greedy_fuses_blur;
          Alcotest.test_case "zero tolerance blocks" `Quick test_greedy_threshold_zero_blocks_fusion;
          Alcotest.test_case "always a partition" `Quick test_greedy_partition;
          Alcotest.test_case "schedule valid" `Quick test_greedy_schedule_valid;
          Alcotest.test_case "reductions unfused" `Quick test_greedy_does_not_fuse_reductions;
        ] );
      ( "autotune",
        [
          Alcotest.test_case "picks minimum" `Quick test_autotune_picks_minimum;
          Alcotest.test_case "dedups" `Quick test_autotune_dedups_schedules;
          Alcotest.test_case "parameter space" `Quick test_autotune_space;
        ] );
      ( "halide",
        [
          Alcotest.test_case "params" `Quick test_halide_params;
          Alcotest.test_case "fuses unsharp" `Quick test_halide_fuses_unsharp;
          Alcotest.test_case "group cost" `Quick test_halide_group_cost_monotone_smoke;
          Alcotest.test_case "all apps valid" `Slow test_halide_all_apps_valid;
        ] );
      ( "manual",
        [
          Alcotest.test_case "all benchmarks" `Quick test_manual_all_benchmarks;
          Alcotest.test_case "unknown pipeline" `Quick test_manual_unknown_pipeline;
          Alcotest.test_case "bilateral fuses reduction" `Quick test_manual_bilateral_fuses_reduction;
        ] );
    ]

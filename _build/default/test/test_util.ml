(* Unit and property tests for Pmdp_util: rationals, RNG, stats. *)

module Rational = Pmdp_util.Rational
module Rng = Pmdp_util.Rng
module Stats = Pmdp_util.Stats

let rat = Alcotest.testable Rational.pp Rational.equal

let arb_rational =
  QCheck.map
    (fun (n, d) -> Rational.make n (if d = 0 then 1 else d))
    QCheck.(pair (int_range (-1000) 1000) (int_range (-50) 50))

(* -------------------- Rational -------------------- *)

let test_make_canonical () =
  Alcotest.check rat "6/4 = 3/2" (Rational.make 3 2) (Rational.make 6 4);
  Alcotest.check rat "-6/-4 = 3/2" (Rational.make 3 2) (Rational.make (-6) (-4));
  Alcotest.check rat "6/-4 = -3/2" (Rational.make (-3) 2) (Rational.make 6 (-4));
  Alcotest.check rat "0/7 = 0" Rational.zero (Rational.make 0 7)

let test_make_zero_den () =
  Alcotest.check_raises "zero denominator" (Invalid_argument "Rational.make: zero denominator")
    (fun () -> ignore (Rational.make 1 0))

let test_arith () =
  let half = Rational.make 1 2 and third = Rational.make 1 3 in
  Alcotest.check rat "1/2+1/3" (Rational.make 5 6) (Rational.add half third);
  Alcotest.check rat "1/2-1/3" (Rational.make 1 6) (Rational.sub half third);
  Alcotest.check rat "1/2*1/3" (Rational.make 1 6) (Rational.mul half third);
  Alcotest.check rat "1/2 / 1/3" (Rational.make 3 2) (Rational.div half third);
  Alcotest.check rat "neg" (Rational.make (-1) 2) (Rational.neg half);
  Alcotest.check rat "inv" (Rational.of_int 2) (Rational.inv half)

let test_div_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rational.div Rational.one Rational.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Rational.inv Rational.zero))

let test_floor_ceil () =
  Alcotest.(check int) "floor 7/2" 3 (Rational.floor (Rational.make 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (Rational.floor (Rational.make (-7) 2));
  Alcotest.(check int) "ceil 7/2" 4 (Rational.ceil (Rational.make 7 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Rational.ceil (Rational.make (-7) 2));
  Alcotest.(check int) "floor int" 5 (Rational.floor (Rational.of_int 5));
  Alcotest.(check int) "ceil int" 5 (Rational.ceil (Rational.of_int 5))

let test_compare () =
  Alcotest.(check bool) "1/2 < 2/3" true (Rational.compare (Rational.make 1 2) (Rational.make 2 3) < 0);
  Alcotest.(check int) "sign neg" (-1) (Rational.sign (Rational.make (-1) 9));
  Alcotest.(check int) "sign zero" 0 (Rational.sign Rational.zero)

let test_to_int () =
  Alcotest.(check int) "4/2 is 2" 2 (Rational.to_int_exn (Rational.make 4 2));
  Alcotest.(check bool) "1/2 not integer" false (Rational.is_integer (Rational.make 1 2));
  Alcotest.check_raises "to_int_exn 1/2"
    (Invalid_argument "Rational.to_int_exn: not an integer") (fun () ->
      ignore (Rational.to_int_exn (Rational.make 1 2)))

let prop_add_commutative =
  QCheck.Test.make ~name:"rational add commutative" ~count:500
    (QCheck.pair arb_rational arb_rational) (fun (a, b) ->
      Rational.equal (Rational.add a b) (Rational.add b a))

let prop_mul_assoc =
  QCheck.Test.make ~name:"rational mul associative" ~count:500
    (QCheck.triple arb_rational arb_rational arb_rational) (fun (a, b, c) ->
      Rational.equal (Rational.mul a (Rational.mul b c)) (Rational.mul (Rational.mul a b) c))

let prop_canonical =
  QCheck.Test.make ~name:"rational always canonical" ~count:500 arb_rational (fun r ->
      let { Rational.num; den } = r in
      den > 0
      &&
      let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
      gcd (abs num) den = 1 || num = 0)

let prop_floor_le =
  QCheck.Test.make ~name:"floor <= value <= ceil" ~count:500 arb_rational (fun r ->
      let f = float_of_int (Rational.floor r) and c = float_of_int (Rational.ceil r) in
      let v = Rational.to_float r in
      f <= v && v <= c && c -. f <= 1.0)

(* -------------------- Rng -------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 17);
    let f = Rng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_bad_bound () =
  Alcotest.check_raises "nonpositive bound" (Invalid_argument "Rng.int: nonpositive bound")
    (fun () -> ignore (Rng.int (Rng.create 1) 0))

let test_rng_split () =
  let r = Rng.create 3 in
  let s = Rng.split r in
  Alcotest.(check bool) "split independent" true (Rng.next_int64 s <> Rng.next_int64 s)

(* -------------------- Stats -------------------- *)

let feq = Alcotest.float 1e-9

let test_stats_basic () =
  Alcotest.check feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  Alcotest.check feq "stddev const" 0.0 (Stats.stddev [| 5.; 5.; 5. |]);
  Alcotest.check (Alcotest.float 1e-6) "stddev" (sqrt 1.25) (Stats.stddev [| 1.; 2.; 3.; 4. |]);
  Alcotest.check feq "median odd" 2.0 (Stats.median [| 3.; 1.; 2. |]);
  Alcotest.check feq "median even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  Alcotest.check feq "min" 1.0 (Stats.min [| 3.; 1.; 2. |]);
  Alcotest.check feq "max" 3.0 (Stats.max [| 3.; 1.; 2. |])

let test_stats_cv () =
  Alcotest.check feq "cv of constant" 0.0 (Stats.coefficient_of_variation [| 7.; 7. |]);
  Alcotest.(check bool) "cv positive" true (Stats.coefficient_of_variation [| 1.; 3. |] > 0.0)

let test_stats_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats: empty input") (fun () ->
      ignore (Stats.mean [||]))

let () =
  Alcotest.run "pmdp_util"
    [
      ( "rational",
        [
          Alcotest.test_case "canonical form" `Quick test_make_canonical;
          Alcotest.test_case "zero denominator" `Quick test_make_zero_den;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
          Alcotest.test_case "compare/sign" `Quick test_compare;
          Alcotest.test_case "to_int" `Quick test_to_int;
          QCheck_alcotest.to_alcotest prop_add_commutative;
          QCheck_alcotest.to_alcotest prop_mul_assoc;
          QCheck_alcotest.to_alcotest prop_canonical;
          QCheck_alcotest.to_alcotest prop_floor_le;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "bad bound" `Quick test_rng_bad_bound;
          Alcotest.test_case "split" `Quick test_rng_split;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "coefficient of variation" `Quick test_stats_cv;
          Alcotest.test_case "empty input" `Quick test_stats_empty;
        ] );
    ]

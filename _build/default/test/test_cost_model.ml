(* Tests for the cost model (Alg. 2): tile size determination, cache
   level selection, and the cost terms. *)

open Pmdp_dsl
module Cost_model = Pmdp_core.Cost_model
module GA = Pmdp_analysis.Group_analysis
module Machine = Pmdp_machine.Machine

let machine = Machine.xeon
let config = Cost_model.default_config machine

let blur ?(rows = 512) ?(cols = 512) () =
  let dims = Stage.dim2 rows cols in
  let blurx = Stage.pointwise "blurx" dims (Pmdp_apps.Helpers.blur3 "img" ~ndims:2 ~dim:0) in
  let blury = Stage.pointwise "blury" dims (Pmdp_apps.Helpers.blur3 "blurx" ~ndims:2 ~dim:1) in
  Pipeline.build ~name:"blur2"
    ~inputs:[ Pipeline.input2 "img" rows cols ]
    ~stages:[ blurx; blury ] ~outputs:[ "blury" ]

let ok = function Ok ga -> ga | Error _ -> Alcotest.fail "analysis failed"

let test_tile_sizes_bounds () =
  let p = blur () in
  let ga = ok (GA.analyze p [ 0; 1 ]) in
  let tile =
    Cost_model.compute_tile_sizes ga ~tile_footprint_bytes:32768.0 ~innermost_tile_size:256
  in
  Alcotest.(check int) "dims" 2 (Array.length tile);
  Array.iteri
    (fun g t ->
      Alcotest.(check bool) "tile >= 1" true (t >= 1);
      Alcotest.(check bool) "tile <= extent" true (t <= GA.dim_extent ga g))
    tile;
  Alcotest.(check int) "innermost respects IMTS" 256 tile.(1)

let test_innermost_capped_by_extent () =
  let p = blur ~rows:64 ~cols:64 () in
  let ga = ok (GA.analyze p [ 0; 1 ]) in
  let tile =
    Cost_model.compute_tile_sizes ga ~tile_footprint_bytes:32768.0 ~innermost_tile_size:256
  in
  Alcotest.(check int) "innermost = extent" 64 tile.(1)

let test_larger_footprint_larger_tiles () =
  let p = blur () in
  let ga = ok (GA.analyze p [ 0; 1 ]) in
  let small =
    Cost_model.compute_tile_sizes ga ~tile_footprint_bytes:8192.0 ~innermost_tile_size:256
  in
  let large =
    Cost_model.compute_tile_sizes ga ~tile_footprint_bytes:262144.0 ~innermost_tile_size:256
  in
  Alcotest.(check bool) "outer tile grows with footprint" true (large.(0) >= small.(0))

let test_cost_finite_for_fusable () =
  let p = blur () in
  let v = Cost_model.cost config p [ 0; 1 ] in
  Alcotest.(check bool) "finite" true (v.Cost_model.cost < infinity);
  Alcotest.(check bool) "analysis present" true (Option.is_some v.Cost_model.analysis);
  Alcotest.(check int) "tile arity" 2 (Array.length v.Cost_model.tile_sizes)

let test_cost_infinite_for_invalid () =
  let p = blur () in
  (* not connected: single-stage sets are fine, so craft a transposed consumer *)
  let open Expr in
  let dims = Stage.dim2 32 32 in
  let a = Stage.pointwise "a" dims (load "img" [| cvar 0; cvar 1 |]) in
  let b = Stage.pointwise "b" dims (load "a" [| cvar 1; cvar 0 |]) in
  let p2 =
    Pipeline.build ~name:"mis" ~inputs:[ Pipeline.input2 "img" 32 32 ] ~stages:[ a; b ]
      ~outputs:[ "b" ]
  in
  let v = Cost_model.cost config p2 [ 0; 1 ] in
  Alcotest.(check bool) "infinite" true (v.Cost_model.cost = infinity);
  ignore p

let test_fusion_beats_no_fusion_on_blur () =
  let p = blur () in
  let fused = (Cost_model.cost config p [ 0; 1 ]).Cost_model.cost in
  let split =
    (Cost_model.cost config p [ 0 ]).Cost_model.cost
    +. (Cost_model.cost config p [ 1 ]).Cost_model.cost
  in
  Alcotest.(check bool) "fusing the blur chain is cheaper" true (fused < split)

let test_reduction_rule () =
  let open Expr in
  let dims = Stage.dim2 32 32 in
  let r =
    Stage.reduction "r" dims ~op:Stage.Rsum ~init:0.0 ~rdom:[| (0, 2) |]
      (load "img" [| cdyn (var 0 +: var 2); cvar 1 |])
  in
  let b = Stage.pointwise "b" dims (load "r" [| cvar 0; cvar 1 |]) in
  let p =
    Pipeline.build ~name:"red" ~inputs:[ Pipeline.input2 "img" 32 32 ] ~stages:[ r; b ]
      ~outputs:[ "b" ]
  in
  let v = Cost_model.cost config p [ 0; 1 ] in
  Alcotest.(check bool) "PolyMage rule: no reduction fusion" true (v.Cost_model.cost = infinity);
  let v' = Cost_model.cost { config with Cost_model.fuse_reductions = true } p [ 0; 1 ] in
  Alcotest.(check bool) "relaxed rule admits it" true (v'.Cost_model.cost < infinity)

let test_w2_modes_differ () =
  let p = blur () in
  let literal = { config with Cost_model.w2_mode = Cost_model.Literal } in
  let c_default = (Cost_model.cost config p [ 0 ]).Cost_model.cost in
  let c_literal = (Cost_model.cost literal p [ 0 ]).Cost_model.cost in
  (* the literal form subtracts the per-group constant, so it is
     strictly smaller whenever the idle penalty and bonus disagree *)
  Alcotest.(check bool) "literal <= default" true (c_literal <= c_default)

let test_machines_give_different_tiles () =
  let p = blur () in
  let x = Cost_model.cost (Cost_model.default_config Machine.xeon) p [ 0; 1 ] in
  let o = Cost_model.cost (Cost_model.default_config Machine.opteron) p [ 0; 1 ] in
  (* Opteron's IMTS is 128 vs Xeon's 256 *)
  Alcotest.(check bool) "innermost differs" true
    (x.Cost_model.tile_sizes.(1) <> o.Cost_model.tile_sizes.(1))

let test_level_switch_on_heavy_overlap () =
  (* A deep stencil chain forces large overlap at L1-size tiles; the
     model must be able to fall back to L2 sizing (or at least return
     a finite verdict). *)
  let dims = Stage.dim2 2048 2048 in
  let rec chain acc prev i =
    if i = 12 then List.rev acc
    else
      let name = Printf.sprintf "s%d" i in
      let s =
        Stage.pointwise name dims
          (Pmdp_apps.Helpers.stencil prev ~ndims:2 ~dim:0
             [ (-4, 0.1); (-1, 0.2); (0, 0.4); (1, 0.2); (4, 0.1) ])
      in
      chain (s :: acc) name (i + 1)
  in
  let stages = chain [] "img" 0 in
  let p =
    Pipeline.build ~name:"deep"
      ~inputs:[ Pipeline.input2 "img" 2048 2048 ]
      ~stages
      ~outputs:[ "s11" ]
  in
  let v = Cost_model.cost config p (List.init 12 Fun.id) in
  Alcotest.(check bool) "finite verdict" true (v.Cost_model.cost < infinity)

let () =
  Alcotest.run "pmdp_cost_model"
    [
      ( "tile_sizes",
        [
          Alcotest.test_case "bounds" `Quick test_tile_sizes_bounds;
          Alcotest.test_case "innermost capped" `Quick test_innermost_capped_by_extent;
          Alcotest.test_case "footprint monotone" `Quick test_larger_footprint_larger_tiles;
        ] );
      ( "cost",
        [
          Alcotest.test_case "finite for fusable" `Quick test_cost_finite_for_fusable;
          Alcotest.test_case "infinite for invalid" `Quick test_cost_infinite_for_invalid;
          Alcotest.test_case "fusion beats splitting on blur" `Quick test_fusion_beats_no_fusion_on_blur;
          Alcotest.test_case "reduction rule" `Quick test_reduction_rule;
          Alcotest.test_case "w2 modes" `Quick test_w2_modes_differ;
          Alcotest.test_case "machine-specific tiles" `Quick test_machines_give_different_tiles;
          Alcotest.test_case "deep chain stays finite" `Quick test_level_switch_on_heavy_overlap;
        ] );
    ]

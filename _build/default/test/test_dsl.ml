(* Tests for the DSL layer: expressions, stages, pipeline validation. *)

open Pmdp_dsl
open Expr

let dims = Stage.dim2 8 8
let here name = load name [| cvar 0; cvar 1 |]

let blur_pipeline () =
  let blurx = Stage.pointwise "blurx" dims (Pmdp_apps.Helpers.blur3 "img" ~ndims:2 ~dim:0) in
  let blury = Stage.pointwise "blury" dims (Pmdp_apps.Helpers.blur3 "blurx" ~ndims:2 ~dim:1) in
  Pipeline.build ~name:"blur2"
    ~inputs:[ Pipeline.input2 "img" 8 8 ]
    ~stages:[ blurx; blury ] ~outputs:[ "blury" ]

(* -------------------- Expr -------------------- *)

let test_arith_cost () =
  Alcotest.(check int) "const" 0 (arith_cost (const 1.0));
  Alcotest.(check int) "var" 0 (arith_cost (var 0));
  Alcotest.(check int) "add" 1 (arith_cost (const 1.0 +: var 0));
  Alcotest.(check int) "nested" 3 (arith_cost ((var 0 +: var 1) *: (var 0 -: var 1)));
  (* select: condition + 1 + max of branches *)
  Alcotest.(check int) "select" 3
    (arith_cost (select (var 0 <: const 1.0) (var 1 +: var 2) (var 1)))

let test_max_var () =
  Alcotest.(check int) "none" (-1) (max_var (const 1.0));
  Alcotest.(check int) "load coords" 2 (max_var (load "f" [| cvar 2; cvar 0 |]));
  Alcotest.(check int) "dyn coord" 5 (max_var (load "f" [| cdyn (var 5) |]));
  Alcotest.(check int) "cond" 3 (max_var (select (var 3 >: const 0.0) (var 1) (var 0)))

let test_fold_loads () =
  let e = here "a" +: select (here "b" <: const 0.5) (here "a") (load "c" [| cdyn (here "d") |]) in
  let names = fold_loads (fun acc n _ -> n :: acc) [] e in
  Alcotest.(check (list string)) "all loads incl nested dyn" [ "a"; "b"; "a"; "c"; "d" ]
    (List.rev names)

let test_smart_constructors () =
  (match cshift 1 (-2) with
  | Cvar { var = 1; scale; offset } ->
      Alcotest.(check bool) "shift scale 1" true (Pmdp_util.Rational.equal scale Pmdp_util.Rational.one);
      Alcotest.(check int) "shift offset" (-2) (Pmdp_util.Rational.to_int_exn offset)
  | _ -> Alcotest.fail "cshift shape");
  match cscale 0 ~num:1 ~den:2 ~off:0 with
  | Cvar { scale; _ } ->
      Alcotest.(check bool) "half scale" true
        (Pmdp_util.Rational.equal scale (Pmdp_util.Rational.make 1 2))
  | _ -> Alcotest.fail "cscale shape"

let test_pp_roundtrip_smoke () =
  let e = clamp (here "a" *: const 2.0) ~lo:(const 0.0) ~hi:(const 1.0) in
  let s = Format.asprintf "%a" pp e in
  Alcotest.(check bool) "pp nonempty" true (String.length s > 0)

(* -------------------- Stage -------------------- *)

let test_stage_validate_ok () =
  let s = Stage.pointwise "ok" dims (here "img") in
  Stage.validate s;
  Alcotest.(check int) "ndims" 2 (Stage.ndims s);
  Alcotest.(check int) "points" 64 (Stage.domain_points s)

let test_stage_validate_bad_var () =
  let s = Stage.pointwise "bad" dims (var 5) in
  Alcotest.(check bool) "bad var raises" true
    (try Stage.validate s; false with Invalid_argument _ -> true)

let test_stage_validate_bad_extent () =
  let s = Stage.pointwise "bad" [| { Stage.dim_name = "x"; lo = 0; extent = 0 } |] (const 1.0) in
  Alcotest.(check bool) "zero extent raises" true
    (try Stage.validate s; false with Invalid_argument _ -> true)

let test_stage_reduction_vars () =
  let r =
    Stage.reduction "r" dims ~op:Stage.Rsum ~init:0.0 ~rdom:[| (0, 3) |]
      (load "img" [| cdyn (var 0 +: var 2); cvar 1 |])
  in
  Stage.validate r;
  Alcotest.(check int) "iter vars" 3 (Stage.n_iter_vars r);
  Alcotest.(check bool) "is reduction" true (Stage.is_reduction r)

(* -------------------- Pipeline -------------------- *)

let test_pipeline_build () =
  let p = blur_pipeline () in
  Alcotest.(check int) "stages" 2 (Pipeline.n_stages p);
  Alcotest.(check int) "blurx id" 0 (Pipeline.stage_id p "blurx");
  Alcotest.(check (list int)) "producers of blury" [ 0 ] (Pipeline.producers p 1);
  Alcotest.(check (list int)) "consumers of blurx" [ 1 ] (Pipeline.consumers p 0);
  Alcotest.(check bool) "blury is output" true (Pipeline.is_output p 1);
  Alcotest.(check bool) "img is input" true (Pipeline.is_input p "img");
  Alcotest.(check int) "loads between" 3
    (List.length (Pipeline.loads_between p ~consumer:1 ~producer:0));
  Alcotest.(check int) "input loads of blurx" 3 (List.length (Pipeline.input_loads p 0));
  Alcotest.(check int) "total points" 128 (Pipeline.total_points p)

let expect_invalid name f =
  Alcotest.(check bool) name true (try ignore (f ()); false with Invalid_argument _ -> true)

let test_pipeline_duplicate_names () =
  expect_invalid "duplicate stage names" (fun () ->
      Pipeline.build ~name:"dup"
        ~inputs:[ Pipeline.input2 "img" 8 8 ]
        ~stages:[ Stage.pointwise "s" dims (here "img"); Stage.pointwise "s" dims (here "img") ]
        ~outputs:[ "s" ])

let test_pipeline_unknown_load () =
  expect_invalid "unknown load" (fun () ->
      Pipeline.build ~name:"unk"
        ~inputs:[ Pipeline.input2 "img" 8 8 ]
        ~stages:[ Stage.pointwise "s" dims (here "ghost") ]
        ~outputs:[ "s" ])

let test_pipeline_wrong_arity () =
  expect_invalid "wrong arity" (fun () ->
      Pipeline.build ~name:"arity"
        ~inputs:[ Pipeline.input2 "img" 8 8 ]
        ~stages:[ Stage.pointwise "s" dims (load "img" [| cvar 0 |]) ]
        ~outputs:[ "s" ])

let test_pipeline_unknown_output () =
  expect_invalid "unknown output" (fun () ->
      Pipeline.build ~name:"out"
        ~inputs:[ Pipeline.input2 "img" 8 8 ]
        ~stages:[ Stage.pointwise "s" dims (here "img") ]
        ~outputs:[ "nope" ])

let test_pipeline_no_outputs () =
  expect_invalid "no outputs" (fun () ->
      Pipeline.build ~name:"none"
        ~inputs:[ Pipeline.input2 "img" 8 8 ]
        ~stages:[ Stage.pointwise "s" dims (here "img") ]
        ~outputs:[])

let test_pipeline_self_reference () =
  expect_invalid "self reference" (fun () ->
      Pipeline.build ~name:"self"
        ~inputs:[ Pipeline.input2 "img" 8 8 ]
        ~stages:[ Stage.pointwise "s" dims (here "s") ]
        ~outputs:[ "s" ])

let test_pipeline_input_stage_clash () =
  expect_invalid "input/stage name clash" (fun () ->
      Pipeline.build ~name:"clash"
        ~inputs:[ Pipeline.input2 "img" 8 8 ]
        ~stages:[ Stage.pointwise "img" dims (const 0.0) ]
        ~outputs:[ "img" ])

let () =
  Alcotest.run "pmdp_dsl"
    [
      ( "expr",
        [
          Alcotest.test_case "arith cost" `Quick test_arith_cost;
          Alcotest.test_case "max var" `Quick test_max_var;
          Alcotest.test_case "fold loads" `Quick test_fold_loads;
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "pretty printer" `Quick test_pp_roundtrip_smoke;
        ] );
      ( "stage",
        [
          Alcotest.test_case "validate ok" `Quick test_stage_validate_ok;
          Alcotest.test_case "bad variable" `Quick test_stage_validate_bad_var;
          Alcotest.test_case "bad extent" `Quick test_stage_validate_bad_extent;
          Alcotest.test_case "reduction vars" `Quick test_stage_reduction_vars;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "build and query" `Quick test_pipeline_build;
          Alcotest.test_case "duplicate names" `Quick test_pipeline_duplicate_names;
          Alcotest.test_case "unknown load" `Quick test_pipeline_unknown_load;
          Alcotest.test_case "wrong arity" `Quick test_pipeline_wrong_arity;
          Alcotest.test_case "unknown output" `Quick test_pipeline_unknown_output;
          Alcotest.test_case "no outputs" `Quick test_pipeline_no_outputs;
          Alcotest.test_case "self reference" `Quick test_pipeline_self_reference;
          Alcotest.test_case "name clash" `Quick test_pipeline_input_stage_clash;
        ] );
    ]

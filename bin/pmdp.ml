(* pmdp: command-line driver for the PolyMageDP reproduction.

   Subcommands:
     list                         — available pipelines
     schedule <app>               — print the grouping/tiles a scheduler picks
     run <app>                    — execute a schedule and validate vs reference
     bench                        — benchmark apps x schedulers x workers to JSON
     trace <app>                  — run with tracing on and summarize the trace
     emit-c <app>                 — generate C++/OpenMP for a schedule
     cachesim <app>               — simulated L1/L2 hit/miss fractions
     check [app]                  — static legality/bounds/race/lint verification
     serve                        — sharded pipeline-execution service (Unix or TCP socket)
     load                         — drive a service and report latency/throughput
     tune calibrate|<app>         — fit the cost model to bench data / autotune tile sizes
*)

open Cmdliner
module Scheduler = Pmdp_core.Scheduler
module Registry = Pmdp_apps.Registry
module Pool = Pmdp_runtime.Pool
module Trace = Pmdp_trace.Trace

let trace_t =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record an execution trace and write it to $(docv) as Chrome trace-event JSON \
                 (loadable in Perfetto or chrome://tracing).")

(* Enabled before the traced work starts; the JSON is written at the
   first exit point after the pool is quiescent, never from a finally
   (exit 1 paths must still leave a readable trace behind them). *)
let trace_begin trace = Option.iter (fun _ -> Trace.set_enabled true; Trace.reset ()) trace

let trace_end trace =
  Option.iter
    (fun path ->
      Trace.write path;
      Printf.printf "wrote trace %s\n%!" path)
    trace

let machine_conv =
  let parse s =
    match Pmdp_machine.Machine.by_name s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown machine %S (xeon|opteron)" s))
  in
  Arg.conv (parse, fun ppf m -> Format.fprintf ppf "%s" m.Pmdp_machine.Machine.name)

let machine_t =
  Arg.(value & opt machine_conv Pmdp_machine.Machine.xeon & info [ "machine"; "m" ] ~doc:"Machine model (xeon or opteron).")

let scale_t =
  Arg.(value & opt int 8 & info [ "scale" ] ~doc:"Divide the paper's image extents by this factor.")

(* Unknown app names are rejected in Cmdliner's own error channel,
   with the list of valid names. *)
let app_conv =
  let parse s =
    match Registry.find s with
    | Some app -> Ok app
    | None ->
        Error (`Msg (Printf.sprintf "unknown app %S (expected one of: %s)" s (Registry.names ())))
  in
  Arg.conv (parse, fun ppf (a : Registry.app) -> Format.fprintf ppf "%s" a.Registry.name)

let app_t =
  Arg.(required & pos 0 (some app_conv) None & info [] ~docv:"APP" ~doc:"Pipeline name (see `pmdp list`).")

let scheduler_conv =
  let parse s =
    match Scheduler.of_string s with
    | Some sch -> Ok sch
    | None ->
        Error (`Msg (Printf.sprintf "unknown scheduler %S (expected one of: %s)" s (Scheduler.names ())))
  in
  Arg.conv (parse, fun ppf sch -> Format.fprintf ppf "%s" (Scheduler.to_string sch))

let scheduler_t =
  Arg.(value & opt scheduler_conv Scheduler.Dp
       & info [ "scheduler"; "s" ] ~doc:(Printf.sprintf "Scheduler: %s." (Scheduler.names ())))

let pool_sched_conv =
  Arg.enum [ ("static", Pool.Static); ("dynamic", Pool.Dynamic); ("chunked", Pool.Chunked 0) ]

(* Shared by run/bench/serve.  Native execution is opt-in: the
   interpreter is the semantic baseline and every kernel must pass its
   admission gate against it anyway. *)
let native_t =
  Arg.(
    value
    & vflag false
        [
          ( true,
            info [ "native" ]
              ~doc:
                "Compile each plan's fused groups to C, dlopen the shared object, and \
                 execute natively. Kernels are validated against the reference executor \
                 before first use and cached per plan digest; when none can be admitted \
                 (no C compiler, compile or validation failure) execution falls back to \
                 the interpreter." );
          ( false,
            info [ "no-native" ]
              ~doc:"Force the tiled interpreter even where a native kernel could run \
                    (default)." );
        ])

(* -march=native is a separate opt-in from --native: it forfeits
   bitwise reproducibility (the kernels are admitted under the epsilon
   gate only), so asking for it must be explicit.  It implies the
   native backend. *)
let native_march_t =
  Arg.(
    value & flag
    & info [ "native-march" ]
        ~doc:
          "Compile native kernels with -march=native (implies --native): the compiler may \
           vectorize with FMA and wider registers, so kernels can no longer match the \
           interpreter bitwise and are admitted under the relative-epsilon gate only. \
           Compiled objects are cached under a separate key from plain builds.")

(* Every scheduling path in the CLI builds its config through this one
   constructor, so a loaded calibration reaches all of them the same
   way. *)
let make_schedule ?calib scheduler machine pipeline =
  Scheduler.schedule scheduler (Pmdp_core.Cost_model.config_of_machine ?calib machine) pipeline

(* CALIB_<machine>.json -> the fitted weights, with the artifact's
   digest/schema/machine checks applied; any failure is fatal (a
   silently ignored calibration would be worse than none). *)
let load_calib machine path =
  match Pmdp_tune.Calibration.validate path ~machine:machine.Pmdp_machine.Machine.name with
  | Ok c -> c.Pmdp_tune.Calibration.weights
  | Error msg ->
      Printf.eprintf "pmdp: calibration %s: %s\n" path msg;
      exit 1

let calib_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "calib-file" ] ~docv:"FILE"
        ~doc:
          "Load fitted cost-model weights from a $(i,CALIB_<machine>.json) artifact (written \
           by $(b,pmdp tune calibrate)) and schedule under the calibrated model instead of \
           the analytic defaults. The artifact's schema version, content digest, and machine \
           name are verified first.")

let build (app : Registry.app) scale = app.Registry.build ~scale

let list_cmd =
  let doc = "List available pipelines and schedulers." in
  let run () =
    Printf.printf "pipelines:\n";
    List.iter
      (fun (a : Registry.app) ->
        let p = a.Registry.build ~scale:32 in
        Printf.printf "  %-15s %-3s %2d stages (paper: %d)\n" a.Registry.name
          a.Registry.short (Pmdp_dsl.Pipeline.n_stages p) a.Registry.paper_stages)
      Registry.all;
    Printf.printf "schedulers:\n";
    List.iter
      (fun s -> Printf.printf "  %s\n" (Scheduler.to_string s))
      Scheduler.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let schedule_cmd =
  let doc = "Print the grouping and tile sizes a scheduler picks." in
  let run app scale machine scheduler =
    let pipeline = build app scale in
    let sched = make_schedule scheduler machine pipeline in
    Format.printf "%a@." Pmdp_core.Schedule_spec.pp sched
  in
  Cmd.v (Cmd.info "schedule" ~doc)
    Term.(const run $ app_t $ scale_t $ machine_t $ scheduler_t)

(* --inject specs are validated at the Cmdliner layer so a typo is a
   usage error, not a runtime crash. *)
let inject_conv =
  let parse s =
    match Pmdp_runtime.Fault.parse s with Ok specs -> Ok specs | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun ppf specs ->
        Format.fprintf ppf "%s"
          (String.concat "," (List.map Pmdp_runtime.Fault.spec_to_string specs)) )

let run_cmd =
  let doc =
    "Execute a schedule through the resilient driver (fallback chain, memory budget, optional \
     fault injection) and validate against the reference executor."
  in
  let run (app : Registry.app) scale machine scheduler workers pool_sched profile mem_budget
      inject seed timeout native native_march trace =
    let pipeline = build app scale in
    let inputs = app.Registry.inputs ~seed:1 pipeline in
    let sched = make_schedule scheduler machine pipeline in
    trace_begin trace;
    if native || native_march then
      Pmdp_kernel.Native_exec.install (Pmdp_kernel.Native_exec.create ~march:native_march ());
    let pool = if workers > 1 then Some (Pool.create workers) else None in
    let collector =
      Pmdp_report.Profile.collector ~pipeline:pipeline.Pmdp_dsl.Pipeline.name ~workers
    in
    (* --profile prints predicted cost next to measured wall per group;
       the predictions come from the same config the schedule was
       built under. *)
    if profile then begin
      let config = Pmdp_core.Cost_model.config_of_machine machine in
      Pmdp_report.Profile.set_predicted collector
        (List.filteri
           (fun _ (_, c) -> Float.is_finite c)
           (List.mapi
              (fun i (g : Pmdp_core.Schedule_spec.group) ->
                match
                  Pmdp_core.Cost_model.group_features config pipeline
                    ~stages:g.Pmdp_core.Schedule_spec.stages
                    ~tile:g.Pmdp_core.Schedule_spec.tile_sizes
                with
                | Some f -> (i, Pmdp_core.Cost_model.predict config f)
                | None -> (i, Float.nan))
              sched.Pmdp_core.Schedule_spec.groups))
    end;
    let fault = Option.map (fun specs -> Pmdp_runtime.Fault.create ~seed specs) inject in
    let t0 = Unix.gettimeofday () in
    let outcome =
      Pmdp_exec.Resilient.run ?pool ?sched:pool_sched ~profile:collector ~machine ?mem_budget
        ?fault ?timeout sched ~inputs
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    Option.iter Pool.shutdown pool;
    if native || native_march then Pmdp_kernel.Native_exec.uninstall ();
    if Trace.on () then Pmdp_report.Profile.set_counters collector (Trace.counter_totals ());
    trace_end trace;
    match outcome with
    | Error e ->
        Format.eprintf "pmdp run: %a@." Pmdp_util.Pmdp_error.pp e;
        exit 1
    | Ok { Pmdp_exec.Resilient.results; degraded; attempts } ->
        let reference = Pmdp_exec.Reference.run pipeline ~inputs in
        let worst, worst_rel =
          List.fold_left
            (fun ((wa, wr) as acc) (n, b) ->
              match List.assoc_opt n reference with
              | Some r ->
                  let d = Pmdp_exec.Buffer.max_abs_diff b r in
                  let m =
                    Array.fold_left
                      (fun a x -> Float.max a (Float.abs x))
                      0.0 r.Pmdp_exec.Buffer.data
                  in
                  (Float.max wa d, Float.max wr (d /. Float.max 1e-30 m))
              | None -> acc)
            (0.0, 0.0) results
        in
        let completed =
          match List.rev attempts with
          | (st, None) :: _ -> Pmdp_exec.Resilient.step_name st
          | _ -> "?"
        in
        Format.printf "%s via %s: %.1f ms (%d groups, %d workers, %s%s), max |diff| = %g@."
          app.Registry.name (Scheduler.to_string scheduler) (elapsed *. 1000.0)
          (Pmdp_core.Schedule_spec.n_groups sched)
          workers completed
          (if degraded then ", DEGRADED" else "")
          worst;
        if degraded then
          List.iter
            (fun (st, err) ->
              Format.printf "  %-14s %s@."
                (Pmdp_exec.Resilient.step_name st)
                (match err with None -> "ok" | Some e -> Pmdp_util.Pmdp_error.to_string e))
            attempts;
        if profile then
          Format.printf "%a@." Pmdp_report.Profile.pp (Pmdp_report.Profile.result collector);
        (* Bitwise is the bar for the interpreter; a run answered by a
           native kernel is held to the same epsilon its admission gate
           enforces. *)
        if worst <> 0.0 && not (completed = "native" && worst_rel <= 1e-6) then exit 1
  in
  let workers_t = Arg.(value & opt int 1 & info [ "workers"; "j" ] ~doc:"Worker domains.") in
  let pool_sched_t =
    Arg.(value & opt (some pool_sched_conv) None
         & info [ "pool-sched" ] ~doc:"Tile distribution: static, dynamic, or chunked (default).")
  in
  let profile_t =
    Arg.(value & flag & info [ "profile" ] ~doc:"Print the per-group execution profile.")
  in
  let mem_budget_t =
    Arg.(value & opt (some int) None
         & info [ "mem-budget" ]
             ~doc:"Memory budget in bytes (default: 64x the machine's L3). Plans whose scratch \
                   arenas exceed it degrade down the fallback chain; a working set over it is a \
                   typed error.")
  in
  let inject_t =
    Arg.(value & opt (some inject_conv) None
         & info [ "inject" ]
             ~doc:"Fault specs: comma-separated crash@K, kill@K, alloc@K, sleep@K:SECONDS, with \
                   K a tick number or 'r' (seeded random).")
  in
  let seed_t =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Seed resolving random injection positions.")
  in
  let timeout_t =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~doc:"Per-attempt watchdog in seconds (cooperative cancellation).")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ app_t $ scale_t $ machine_t $ scheduler_t $ workers_t $ pool_sched_t
          $ profile_t $ mem_budget_t $ inject_t $ seed_t $ timeout_t $ native_t
          $ native_march_t $ trace_t)

let bench_cmd =
  let doc =
    "Benchmark apps x schedulers x worker counts on the persistent pool, validate every run \
     against the reference executor, and write the results (median/min wall-clock and \
     per-group profiles) as JSON."
  in
  let run machine scale reps workers schedulers pool_sched output apps quiet native
      native_march trace =
    let apps = match apps with [] -> Registry.all | apps -> apps in
    let log = if quiet then fun _ -> () else print_endline in
    trace_begin trace;
    if native || native_march then
      Pmdp_kernel.Native_exec.install (Pmdp_kernel.Native_exec.create ~march:native_march ());
    let outcomes =
      Pmdp_bench.Runner.run_all ?pool_sched ~log ~reps ~scale ~machine ~workers ~schedulers apps
    in
    if native || native_march then Pmdp_kernel.Native_exec.uninstall ();
    trace_end trace;
    let path =
      match output with Some p -> p | None -> Pmdp_bench.Runner.default_path machine
    in
    (match Pmdp_bench.Runner.write_json ~path ~machine ~scale ~reps outcomes with
    | Ok () -> Printf.printf "wrote %s (%d cases)\n" path (List.length outcomes)
    | Error e ->
        Format.eprintf "pmdp bench: %a@." Pmdp_util.Pmdp_error.pp e;
        exit 1);
    if List.exists (fun o -> not (Pmdp_bench.Runner.valid o)) outcomes then begin
      Printf.eprintf "bench: some runs did not validate against the reference executor\n";
      exit 1
    end
  in
  let reps_t =
    Arg.(value & opt int 3 & info [ "reps" ] ~doc:"Repetitions per case (median/min reported).")
  in
  let workers_t =
    Arg.(value & opt (list int) [ 1; 4 ]
         & info [ "workers"; "j" ] ~doc:"Comma-separated pool sizes to benchmark.")
  in
  let schedulers_t =
    Arg.(value & opt (list scheduler_conv)
           Scheduler.[ Dp; Greedy; Halide; Manual ]
         & info [ "scheduler"; "s" ]
             ~doc:(Printf.sprintf
                     "Comma-separated schedulers to benchmark (of: %s). The autotuner is \
                      excluded by default because it executes its own schedule sweep."
                     (Scheduler.names ())))
  in
  let pool_sched_t =
    Arg.(value & opt (some pool_sched_conv) None
         & info [ "pool-sched" ] ~doc:"Tile distribution: static, dynamic, or chunked (default).")
  in
  let out_t =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Output file (default BENCH_<machine>.json).")
  in
  let apps_t =
    Arg.(value & pos_all app_conv [] & info [] ~docv:"APP" ~doc:"Apps to benchmark (default: all).")
  in
  let quiet_t = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-case progress lines.") in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(const run $ machine_t $ scale_t $ reps_t $ workers_t $ schedulers_t $ pool_sched_t
          $ out_t $ apps_t $ quiet_t $ native_t $ native_march_t $ trace_t)

let trace_cmd =
  let doc =
    "Execute a schedule with tracing enabled and summarize the trace: per-span-name histograms, \
     the slowest tiles, per-worker utilization, and counter totals.  Optionally also write the \
     raw Chrome trace-event JSON."
  in
  let run (app : Registry.app) scale machine scheduler workers pool_sched output top =
    let pipeline = build app scale in
    let inputs = app.Registry.inputs ~seed:1 pipeline in
    let sched = make_schedule scheduler machine pipeline in
    Trace.set_enabled true;
    Trace.reset ();
    let pool = if workers > 1 then Some (Pool.create workers) else None in
    let outcome = Pmdp_exec.Resilient.run ?pool ?sched:pool_sched ~machine sched ~inputs in
    Option.iter Pool.shutdown pool;
    (match outcome with
    | Error e ->
        Format.eprintf "pmdp trace: %a@." Pmdp_util.Pmdp_error.pp e;
        exit 1
    | Ok { Pmdp_exec.Resilient.degraded; _ } ->
        if degraded then Format.printf "note: run was DEGRADED (see resilient.step events)@.");
    Option.iter
      (fun path ->
        Trace.write path;
        Printf.printf "wrote trace %s\n%!" path)
      output;
    Trace.pp_summary ~top Format.std_formatter ();
    Format.pp_print_newline Format.std_formatter ()
  in
  let workers_t = Arg.(value & opt int 4 & info [ "workers"; "j" ] ~doc:"Worker domains.") in
  let pool_sched_t =
    Arg.(value & opt (some pool_sched_conv) None
         & info [ "pool-sched" ] ~doc:"Tile distribution: static, dynamic, or chunked (default).")
  in
  let out_t =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Also write the Chrome trace-event JSON here.")
  in
  let top_t =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"How many of the slowest tiles to list.")
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ app_t $ scale_t $ machine_t $ scheduler_t $ workers_t $ pool_sched_t
          $ out_t $ top_t)

let emit_c_cmd =
  let doc = "Emit C++/OpenMP for a schedule (stdout, or -o FILE)." in
  let run app scale machine scheduler output =
    let pipeline = build app scale in
    let sched = make_schedule scheduler machine pipeline in
    let code = Pmdp_codegen.C_emit.emit sched in
    match output with
    | None -> print_string code
    | Some path ->
        Pmdp_codegen.C_emit.emit_to_file sched path;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length code)
  in
  let out_t = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.") in
  Cmd.v (Cmd.info "emit-c" ~doc)
    Term.(const run $ app_t $ scale_t $ machine_t $ scheduler_t $ out_t)

let cachesim_cmd =
  let doc = "Simulated cache hit/miss fractions for a schedule (Table 5 methodology)." in
  let run (app : Registry.app) scale machine scheduler max_tiles =
    let pipeline = build app scale in
    let sched = make_schedule scheduler machine pipeline in
    let h = Pmdp_cachesim.Hierarchy.create machine in
    Pmdp_cachesim.Trace_exec.run ?max_tiles:(Some max_tiles) sched ~hierarchy:h;
    let f = Pmdp_cachesim.Hierarchy.fractions h in
    Format.printf "%s via %s: L1 hit %.2f%%  L2 hit %.2f%%  L2 miss %.2f%%  (%d accesses)@."
      app.Registry.name (Scheduler.to_string scheduler)
      (100.0 *. f.Pmdp_cachesim.Hierarchy.l1_hit)
      (100.0 *. f.Pmdp_cachesim.Hierarchy.l2_hit)
      (100.0 *. f.Pmdp_cachesim.Hierarchy.l2_miss)
      (Pmdp_cachesim.Hierarchy.total_accesses h)
  in
  let tiles_t = Arg.(value & opt int 256 & info [ "max-tiles" ] ~doc:"Tiles traced per group.") in
  Cmd.v (Cmd.info "cachesim" ~doc)
    Term.(const run $ app_t $ scale_t $ machine_t $ scheduler_t $ tiles_t)

let dot_cmd =
  let doc = "Export the pipeline DAG (optionally with a scheduler's grouping) as Graphviz dot." in
  let run app scale machine scheduler grouped output =
    let pipeline = build app scale in
    let dot =
      if grouped then begin
        let sched = make_schedule scheduler machine pipeline in
        Pmdp_dsl.Dot.grouping pipeline
          (List.map (fun (g : Pmdp_core.Schedule_spec.group) -> g.Pmdp_core.Schedule_spec.stages)
             sched.Pmdp_core.Schedule_spec.groups)
      end
      else Pmdp_dsl.Dot.pipeline pipeline
    in
    match output with
    | None -> print_string dot
    | Some path ->
        let oc = open_out path in
        output_string oc dot;
        close_out oc
  in
  let grouped_t = Arg.(value & flag & info [ "grouped"; "g" ] ~doc:"Cluster by the scheduler's groups.") in
  let out_t = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.") in
  Cmd.v (Cmd.info "dot" ~doc)
    Term.(const run $ app_t $ scale_t $ machine_t $ scheduler_t $ grouped_t $ out_t)

let check_cmd =
  let doc =
    "Statically verify schedules (legality, bounds, races, lint) and lowered plan IRs \
     (whole-plan analyzer) without running them.  Exit codes: 0 when clean, 1 on \
     error-severity diagnostics, 2 on a usage error."
  in
  let module D = Pmdp_verify.Diagnostic in
  let module Json = Pmdp_report.Json in
  let run app scale machine schedulers json plan plan_out plan_file =
    let usage msg =
      prerr_endline ("pmdp check: " ^ msg);
      exit 2
    in
    (* One result row per checked case: (app, source, plan digest, diagnostics). *)
    let results = ref [] in
    let add r = results := r :: !results in
    (match plan_file with
    | Some path ->
        let a =
          match app with
          | Some a -> a
          | None -> usage "--plan-file requires an APP to check the plan against"
        in
        let pipeline = a.Registry.build ~scale in
        (match Pmdp_plan.read path with
        | Error e -> add (a.Registry.name, path, None, [ D.make D.Plan D.Error ~kind:"unreadable" e ])
        | Ok (ir, claimed) ->
            let actual = Pmdp_plan.digest ir in
            let digest_ds =
              if actual <> claimed then
                [
                  D.make D.Plan D.Error ~kind:"digest-mismatch"
                    (Printf.sprintf "file claims digest %s but its content digests to %s" claimed
                       actual);
                ]
              else []
            in
            add (a.Registry.name, path, Some actual,
                 digest_ds @ Pmdp_verify.Verify.check_plan pipeline ir))
    | None ->
        let apps = match app with Some a -> [ a ] | None -> Registry.benchmarks in
        if plan_out <> None && (List.length apps <> 1 || List.length schedulers <> 1) then
          usage "--plan-out requires exactly one APP and one --scheduler";
        List.iter
          (fun (app : Registry.app) ->
            let pipeline = app.Registry.build ~scale in
            List.iter
              (fun scheduler ->
                (* Full DP is exponential in practice on the big pipelines;
                   use the incremental variant there, as the tests do. *)
                let scheduler = Scheduler.for_pipeline scheduler pipeline in
                let sched = make_schedule scheduler machine pipeline in
                let ds = Pmdp_verify.Verify.check_schedule sched in
                let ds, digest =
                  if plan || plan_out <> None then
                    match Pmdp_plan.of_spec_result sched with
                    | Error e ->
                        ( ds
                          @ [
                              D.make D.Plan D.Error ~kind:(Pmdp_util.Pmdp_error.kind e)
                                (Pmdp_util.Pmdp_error.message e);
                            ],
                          None )
                    | Ok ir ->
                        Option.iter
                          (fun path ->
                            Pmdp_plan.write path ir;
                            if not json then Printf.printf "wrote %s\n%!" path)
                          plan_out;
                        (ds @ Pmdp_verify.Verify.check_plan pipeline ir, Some (Pmdp_plan.digest ir))
                  else (ds, None)
                in
                add (app.Registry.name, Scheduler.to_string scheduler, digest, ds))
              schedulers)
          apps);
    let results = List.rev !results in
    let had_errors =
      List.exists (fun (_, _, _, ds) -> Pmdp_verify.Verify.errors ds <> []) results
    in
    if json then
      print_endline
        (Json.to_string_pretty
           (Json.Obj
              [
                ("status", Json.String (if had_errors then "error" else "ok"));
                ( "cases",
                  Json.List
                    (List.map
                       (fun (app, source, digest, ds) ->
                         Json.Obj
                           [
                             ("app", Json.String app);
                             ("source", Json.String source);
                             ( "plan_digest",
                               match digest with Some d -> Json.String d | None -> Json.Null );
                             ( "status",
                               Json.String
                                 (if Pmdp_verify.Verify.errors ds <> [] then "error" else "ok") );
                             ("summary", Json.String (D.summary ds));
                             ("diagnostics", Json.List (List.map D.to_json ds));
                           ])
                       results) );
              ]))
    else
      List.iter
        (fun (app, source, digest, ds) ->
          Format.printf "%-15s %-8s %s%s@." app source (D.summary ds)
            (match digest with Some d -> "  plan " ^ d | None -> "");
          List.iter (fun d -> Format.printf "  %a@." D.pp d) ds)
        results;
    if had_errors then exit 1
  in
  let app_opt_t =
    Arg.(value & pos 0 (some app_conv) None
         & info [] ~docv:"APP" ~doc:"Pipeline name (default: all six benchmarks).")
  in
  let scheds_t =
    Arg.(value & opt (list scheduler_conv) Scheduler.[ Dp; Greedy; Halide ]
         & info [ "scheduler"; "s" ] ~doc:"Comma-separated schedulers to check.")
  in
  let json_t =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Machine-readable output: one JSON object with per-case status and \
                   diagnostics (each carrying its failure_kind) on stdout.")
  in
  let plan_t =
    Arg.(value & flag
         & info [ "plan" ]
             ~doc:"Also lower each schedule to the serializable plan IR and run the whole-plan \
                   static analyzer (coverage, scratch consistency, dependences, budget audit).")
  in
  let plan_out_t =
    Arg.(value & opt (some string) None
         & info [ "plan-out" ] ~docv:"FILE"
             ~doc:"Write the lowered plan IR (with its content digest) to $(docv); requires \
                   exactly one APP and one --scheduler.  Implies --plan.")
  in
  let plan_file_t =
    Arg.(value & opt (some string) None
         & info [ "plan-file" ] ~docv:"FILE"
             ~doc:"Verify an on-disk plan IR against APP's pipeline instead of scheduling: \
                   digest check plus the whole-plan analyzer.")
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ app_opt_t $ scale_t $ machine_t $ scheds_t $ json_t $ plan_t $ plan_out_t
          $ plan_file_t)

let storage_cmd =
  let doc = "Report buffer lifetimes and the memory saved by recycling (storage optimization)." in
  let run app scale machine scheduler =
    let pipeline = build app scale in
    let sched = make_schedule scheduler machine pipeline in
    let r = Pmdp_exec.Storage.report sched in
    List.iter
      (fun (l : Pmdp_exec.Storage.lifetime) ->
        Printf.printf "  %-14s %8d bytes  groups %d..%s\n" l.Pmdp_exec.Storage.stage
          l.Pmdp_exec.Storage.bytes l.Pmdp_exec.Storage.born
          (if l.Pmdp_exec.Storage.dies = max_int then "out"
           else string_of_int l.Pmdp_exec.Storage.dies))
      r.Pmdp_exec.Storage.lifetimes;
    Printf.printf "peak resident: naive %d bytes, with recycling %d bytes (%.1fx)\n"
      r.Pmdp_exec.Storage.peak_naive_bytes r.Pmdp_exec.Storage.peak_reuse_bytes
      (float_of_int r.Pmdp_exec.Storage.peak_naive_bytes
      /. float_of_int (max 1 r.Pmdp_exec.Storage.peak_reuse_bytes))
  in
  Cmd.v (Cmd.info "storage" ~doc)
    Term.(const run $ app_t $ scale_t $ machine_t $ scheduler_t)

let socket_t =
  Arg.(value & opt string "pmdp.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path (alias for --endpoint unix://PATH).")

let endpoint_conv =
  let parse s =
    match Pmdp_service.Transport.of_string s with Ok e -> Ok e | Error m -> Error (`Msg m)
  in
  let print ppf e = Format.pp_print_string ppf (Pmdp_service.Transport.to_string e) in
  Arg.conv (parse, print)

let endpoint_t =
  Arg.(value & opt (some endpoint_conv) None
       & info [ "endpoint" ] ~docv:"ENDPOINT"
           ~doc:"Service endpoint, $(i,unix://PATH) or $(i,tcp://HOST:PORT); takes precedence \
                 over --socket.")

let resolve_endpoint endpoint socket =
  match endpoint with Some e -> e | None -> Pmdp_service.Transport.Uds socket

let serve_cmd =
  let doc =
    "Run the pipeline-execution service: fingerprint-routed dispatcher shards behind a \
     Unix-domain or TCP socket, each with a compiled-plan cache and bounded queue, with \
     admission control against the memory budget, priority-based load shedding, \
     same-pipeline request batching, and an optional persistent plan cache on disk. Stops on \
     a client shutdown operation or SIGINT; SIGTERM drains gracefully first (see \
     --drain-timeout)."
  in
  let run machine workers mem_budget max_inflight batch_window validate shards queue_limit
      cache_dir breaker_threshold breaker_cooldown drain_timeout socket endpoint native
      kernel_cache_dir native_march calib_file retune trace =
    trace_begin trace;
    let calib = Option.map (load_calib machine) calib_file in
    let retune =
      if retune then Some Pmdp_service.Retune.default_config else None
    in
    let service =
      Pmdp_service.Service.create ~workers ?mem_budget ~max_inflight ~batch_window ~validate
        ~shards ~queue_limit ?cache_dir ~breaker_threshold ~breaker_cooldown ~native
        ?kernel_cache_dir ~native_march ?calib ?retune ~machine ()
    in
    let server =
      Pmdp_service.Server.start ~service ~endpoint:(resolve_endpoint endpoint socket) ()
    in
    Printf.printf
      "pmdp serve: listening on %s (%d shards x %d workers, machine %s, budget %d bytes%s)\n%!"
      (Pmdp_service.Transport.to_string (Pmdp_service.Server.endpoint server))
      shards workers machine.Pmdp_machine.Machine.name
      (Pmdp_service.Service.mem_budget service)
      ((match cache_dir with None -> "" | Some d -> ", plan cache " ^ d)
      ^ (match kernel_cache_dir with Some d -> ", native kernels in " ^ d | None -> if native then ", native kernels" else ""));
    (* OCaml signal handlers only run when a thread reaches a
       safepoint — and a process whose every thread is parked in C
       (condition waits, accept) never does.  So the handler just
       flips a flag, and the main thread polls it from Thread.delay,
       which re-enters OCaml (and runs pending handlers) each tick. *)
    let stop_requested = Atomic.make false in
    let drain_requested = Atomic.make false in
    let flag a _ = Atomic.set a true in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle (flag stop_requested))
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (flag drain_requested))
     with Invalid_argument _ -> ());
    while
      not
        (Atomic.get stop_requested || Atomic.get drain_requested
        || Pmdp_service.Server.stopped server)
    do
      Thread.delay 0.05
    done;
    if Atomic.get drain_requested && not (Atomic.get stop_requested) then begin
      (* SIGTERM: stop admitting, settle what is in flight, then stop.
         SIGINT (or a second signal) still cuts straight to stop. *)
      Printf.printf "pmdp serve: draining (up to %gs)...\n%!" drain_timeout;
      Pmdp_service.Server.drain ~timeout:drain_timeout server
    end;
    Pmdp_service.Server.stop server;
    Pmdp_service.Server.wait server;
    let s = Pmdp_service.Service.stats service in
    let tot = s.Pmdp_service.Service.total in
    Printf.printf
      "pmdp serve: done — %d submitted, %d completed, %d failed, %d rejected, %d shed, %d \
       expired; %d executions (%d batches covering %d requests); cache %d hits / %d compiles \
       / %d loaded; %d dispatcher restarts; breaker %d trips / %d rejects / %d closes\n%!"
      tot.Pmdp_service.Service.submitted tot.Pmdp_service.Service.completed
      tot.Pmdp_service.Service.failed tot.Pmdp_service.Service.rejected
      tot.Pmdp_service.Service.shed tot.Pmdp_service.Service.expired
      tot.Pmdp_service.Service.executions tot.Pmdp_service.Service.batches
      tot.Pmdp_service.Service.batched_requests
      tot.Pmdp_service.Service.cache.Pmdp_service.Plan_cache.hits
      tot.Pmdp_service.Service.cache.Pmdp_service.Plan_cache.compiles
      tot.Pmdp_service.Service.cache.Pmdp_service.Plan_cache.loads
      tot.Pmdp_service.Service.restarts
      s.Pmdp_service.Service.breaker.Pmdp_service.Breaker.trips
      s.Pmdp_service.Service.breaker.Pmdp_service.Breaker.rejects
      s.Pmdp_service.Service.breaker.Pmdp_service.Breaker.closes;
    (match s.Pmdp_service.Service.retune with
    | None -> ()
    | Some r ->
        Printf.printf
          "pmdp serve: retune — %d observed, %d hot, %d attempts, %d wins, %d losses, %d \
           swaps\n%!"
          r.Pmdp_service.Retune.observed r.Pmdp_service.Retune.hot
          r.Pmdp_service.Retune.started r.Pmdp_service.Retune.wins
          r.Pmdp_service.Retune.losses r.Pmdp_service.Retune.swaps);
    (match Pmdp_service.Service.kernel_stats service with
    | None -> ()
    | Some k ->
        Printf.printf
          "pmdp serve: kernels — %d compiled (%d failed), %d loaded from disk, %d \
           validations (%d rejected), %d native runs, %d plans unavailable\n%!"
          k.Pmdp_kernel.Native_exec.compiles k.Pmdp_kernel.Native_exec.compile_failures
          k.Pmdp_kernel.Native_exec.disk_hits k.Pmdp_kernel.Native_exec.validations
          k.Pmdp_kernel.Native_exec.validation_failures k.Pmdp_kernel.Native_exec.runs
          k.Pmdp_kernel.Native_exec.unavailable);
    trace_end trace
  in
  let workers_t = Arg.(value & opt int 4 & info [ "workers"; "j" ] ~doc:"Worker domains.") in
  let mem_budget_t =
    Arg.(value & opt (some int) None
         & info [ "mem-budget" ]
             ~doc:"Memory budget in bytes (default: 64x the machine's L3); bounds both \
                   admission and execution.")
  in
  let max_inflight_t =
    Arg.(value & opt int 64
         & info [ "max-inflight" ] ~doc:"Admitted-but-unfinished request limit.")
  in
  let batch_window_t =
    Arg.(value & opt float 0.0
         & info [ "batch-window" ]
             ~doc:"Seconds the dispatcher lingers so identical requests can join a batch \
                   (0: batch only what already queued up).")
  in
  let validate_t =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:"Check every execution against the reference executor (reported as \
                   max_abs_diff in responses).")
  in
  let shards_t =
    Arg.(value & opt int 1
         & info [ "shards" ]
             ~doc:"Dispatcher shards; requests route by plan fingerprint (consistent \
                   hashing), so identical requests always share a shard and still batch.")
  in
  let queue_limit_t =
    Arg.(value & opt int 128
         & info [ "queue-limit" ]
             ~doc:"Per-shard queue bound; beyond it the lowest-priority queued request is \
                   shed (or the incoming one refused).")
  in
  let cache_dir_t =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persist compiled plans to $(docv) and warm-load them at startup, so a \
                   restarted server serves its first repeat request without compiling.")
  in
  let breaker_threshold_t =
    Arg.(value & opt int 3
         & info [ "breaker-threshold" ]
             ~doc:"Consecutive compile/execution failures of one plan fingerprint that trip \
                   its circuit open; further requests for that plan are refused instantly \
                   with a retryable circuit-open error.")
  in
  let breaker_cooldown_t =
    Arg.(value & opt float 5.0
         & info [ "breaker-cooldown" ]
             ~doc:"Seconds an open circuit waits before admitting one half-open probe; the \
                   probe's success closes the circuit, its failure re-trips it.")
  in
  let drain_timeout_t =
    Arg.(value & opt float 5.0
         & info [ "drain-timeout" ]
             ~doc:"Seconds a SIGTERM-triggered graceful drain waits for in-flight requests \
                   to settle before stopping; requests still queued at the deadline fail \
                   with a retryable overloaded error.")
  in
  let kernel_cache_dir_t =
    Arg.(value & opt (some string) None
         & info [ "kernel-cache-dir" ] ~docv:"DIR"
             ~doc:"Persist compiled native kernels (shared objects plus provenance \
                   metadata) to $(docv), so a restarted server answers its first request \
                   without invoking the C compiler. Implies --native; loaded objects are \
                   checksum-verified and re-validated before use.")
  in
  let retune_t =
    Arg.(
      value & flag
      & info [ "retune" ]
          ~doc:
            "Enable online re-optimization: per-fingerprint latency EWMAs mark hot plans, a \
             background tuner searches for better tile sizes under the (calibrated) cost \
             model, and the cached plan is atomically swapped only after the candidate wins \
             a guarded A/B comparison. Watch the service.retune.start/win/lose/swap trace \
             counters and the retune block of the stats op.")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ machine_t $ workers_t $ mem_budget_t $ max_inflight_t $ batch_window_t
          $ validate_t $ shards_t $ queue_limit_t $ cache_dir_t $ breaker_threshold_t
          $ breaker_cooldown_t $ drain_timeout_t $ socket_t $ endpoint_t $ native_t
          $ kernel_cache_dir_t $ native_march_t $ calib_file_t $ retune_t $ trace_t)

let load_cmd =
  let doc =
    "Generate load against a service — over its endpoint (Unix-domain or TCP socket), or \
     against an in-process service with --inproc — and write a latency/throughput report \
     (p50/p95/p99) as JSON."
  in
  let run machine socket endpoint inproc clients requests rate apps scale scheduler seeds
      retries backoff workers output quiet =
    let apps =
      match apps with
      | [] -> [ "blur" ]
      | apps -> List.map (fun (a : Registry.app) -> a.Registry.name) apps
    in
    let retry =
      Pmdp_service.Client.Retry_policy.create ~max_attempts:retries ~base_delay:backoff ()
    in
    let cfg =
      Pmdp_service.Load.config ~clients ~requests ?arrival_rate:rate ~apps ~scale ~scheduler
        ~seeds ~retry ()
    in
    let report =
      if inproc then begin
        let service = Pmdp_service.Service.create ~workers ~machine () in
        let r = Pmdp_service.Load.run_inproc service cfg in
        Pmdp_service.Service.shutdown service;
        r
      end
      else Pmdp_service.Load.run_remote ~endpoint:(resolve_endpoint endpoint socket) cfg
    in
    let path = match output with Some p -> p | None -> Pmdp_service.Load.default_path machine in
    let write_result = Pmdp_service.Load.write_json ~path report in
    if not quiet then begin
      Printf.printf
        "%d requests in %.2fs: %d ok, %d failed — %.1f req/s; latency ms p50 %.2f p95 %.2f \
         p99 %.2f max %.2f; %d cache hits, %d batched\n"
        report.Pmdp_service.Load.config.Pmdp_service.Load.requests
        report.Pmdp_service.Load.wall_seconds report.Pmdp_service.Load.succeeded
        report.Pmdp_service.Load.failed report.Pmdp_service.Load.throughput_rps
        report.Pmdp_service.Load.p50_ms report.Pmdp_service.Load.p95_ms
        report.Pmdp_service.Load.p99_ms report.Pmdp_service.Load.max_ms
        report.Pmdp_service.Load.cache_hits report.Pmdp_service.Load.batched;
      List.iter
        (fun (k, n) -> Printf.printf "  %d x %s\n" n k)
        report.Pmdp_service.Load.errors;
      let rs = report.Pmdp_service.Load.retry in
      Printf.printf "retries: %d attempts, %d requests retried, %d gave up\n"
        rs.Pmdp_service.Client.attempts rs.Pmdp_service.Client.retried
        rs.Pmdp_service.Client.gave_up
    end;
    (match write_result with
    | Ok () -> Printf.printf "wrote %s\n" path
    | Error e ->
        Printf.eprintf "pmdp load: %s\n" (Pmdp_util.Pmdp_error.message e);
        exit 1);
    if report.Pmdp_service.Load.succeeded = 0 then exit 1
  in
  let inproc_t =
    Arg.(value & flag
         & info [ "inproc" ]
             ~doc:"Spin up the service in this process instead of connecting to a socket.")
  in
  let clients_t =
    Arg.(value & opt int 4 & info [ "clients"; "c" ] ~doc:"Concurrent client connections.")
  in
  let requests_t = Arg.(value & opt int 100 & info [ "n"; "requests" ] ~doc:"Total requests.") in
  let rate_t =
    Arg.(value & opt (some float) None
         & info [ "rate" ]
             ~doc:"Open-loop arrival rate in req/s (default: closed loop, one request in \
                   flight per client).")
  in
  let apps_t =
    Arg.(value & pos_all app_conv []
         & info [] ~docv:"APP" ~doc:"Request mix, round-robin (default: blur).")
  in
  let seeds_t =
    Arg.(value & opt int 1
         & info [ "seeds" ]
             ~doc:"Rotate input seeds through 1..N (1 maximizes batching opportunity).")
  in
  let retries_t =
    Arg.(value & opt int 1
         & info [ "retries" ]
             ~doc:"Attempts per request, including the first (1 = no retries). Retryable \
                   failures — overloaded, deadline-exceeded, dropped connections, open \
                   circuits — are re-sent with exponential backoff; permanent ones are \
                   not.")
  in
  let backoff_t =
    Arg.(value & opt float 0.005
         & info [ "backoff" ]
             ~doc:"Base backoff delay in seconds before the first retry; doubles per \
                   attempt (jittered, capped at 0.5s).")
  in
  let workers_t =
    Arg.(value & opt int 4 & info [ "workers"; "j" ] ~doc:"Worker domains (--inproc only).")
  in
  let out_t =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Report file (default LOAD_<machine>.json).")
  in
  let quiet_t = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only the report path.") in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(const run $ machine_t $ socket_t $ endpoint_t $ inproc_t $ clients_t $ requests_t
          $ rate_t $ apps_t $ scale_t $ scheduler_t $ seeds_t $ retries_t $ backoff_t
          $ workers_t $ out_t $ quiet_t)

let tune_cmd =
  let doc =
    "Calibrate the cost model against measured bench data, or autotune an app's tile sizes \
     by seeded local search.  $(b,pmdp tune calibrate) fits the model weights to a bench \
     file's per-group timings and writes a digest-stamped CALIB_<machine>.json artifact; \
     $(b,pmdp tune APP) searches neighborhood moves over the DP-chosen tiles, scoring \
     candidates by measured wall time (or the model with --model-only), and validates the \
     winner bitwise against the reference executor."
  in
  let module Calibration = Pmdp_tune.Calibration in
  let module Search = Pmdp_tune.Search in
  let run target machine scale scheduler bench output check calib_file budget seed reps
      plan_out model_only =
    let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("pmdp tune: " ^ msg); exit 1) fmt in
    if target = "calibrate" then begin
      let machine_name = machine.Pmdp_machine.Machine.name in
      if check then begin
        (* Dry-run artifact validation: schema, digest, machine match,
           sanity — runs nothing. *)
        let path =
          match (calib_file, output) with
          | Some p, _ -> p
          | None, Some p -> p
          | None, None -> Calibration.default_path machine_name
        in
        match Calibration.validate path ~machine:machine_name with
        | Error msg -> fail "%s: %s" path msg
        | Ok c ->
            Format.printf "%s: ok@.%a@." path Calibration.pp c
      end
      else begin
        let bench_path =
          match bench with Some p -> p | None -> Pmdp_bench.Runner.default_path machine
        in
        match Calibration.samples_of_bench bench_path with
        | Error msg -> fail "%s: %s" bench_path msg
        | Ok (bench_machine, samples) -> (
            let fit_machine =
              match Pmdp_machine.Machine.by_name bench_machine with
              | Some m -> m
              | None -> fail "%s: unknown machine %S in bench file" bench_path bench_machine
            in
            match
              Calibration.fit ~machine:fit_machine ~source:(Filename.basename bench_path)
                samples
            with
            | Error msg -> fail "fit failed: %s" msg
            | Ok c ->
                let path =
                  match output with
                  | Some p -> p
                  | None -> Calibration.default_path fit_machine.Pmdp_machine.Machine.name
                in
                Calibration.write path c;
                Format.printf "%a@.wrote %s@." Calibration.pp c path)
      end
    end
    else begin
      let app =
        match Registry.find target with
        | Some app -> app
        | None ->
            fail "unknown target %S (expected \"calibrate\" or one of: %s)" target
              (Registry.names ())
      in
      let pipeline = build app scale in
      let inputs = app.Registry.inputs ~seed:1 pipeline in
      let calib = Option.map (load_calib machine) calib_file in
      let config = Pmdp_core.Cost_model.config_of_machine ?calib machine in
      let scheduler = Scheduler.for_pipeline scheduler pipeline in
      let sched = Scheduler.schedule scheduler config pipeline in
      (* Every candidate is re-validated end to end before it is ever
         executed: lower to the plan IR, whole-plan analyzer, then the
         resilient driver — the same gates a served plan passes. *)
      let plan_of_spec spec =
        match Pmdp_plan.of_spec_result spec with
        | Error _ -> None
        | Ok ir -> (
            match Pmdp_verify.Verify.check_plan_result pipeline ir with
            | Error _ -> None
            | Ok () -> (
                match Pmdp_exec.Tiled_exec.instantiate_result pipeline ir with
                | Error _ -> None
                | Ok plan -> Some plan))
      in
      let measure plan =
        let walls =
          Array.init (max 1 reps) (fun _ ->
              let t0 = Unix.gettimeofday () in
              match Pmdp_exec.Resilient.run_plan ~machine plan ~inputs with
              | Ok _ -> Unix.gettimeofday () -. t0
              | Error _ -> Float.infinity)
        in
        let m = Pmdp_util.Stats.median walls in
        if Float.is_finite m then Some m else None
      in
      let evaluate =
        if model_only then Search.model_evaluate config
        else fun spec -> Option.bind (plan_of_spec spec) measure
      in
      let init_score = evaluate sched in
      let tuned, result = Search.tune_spec ~seed ~budget ~evaluate sched in
      let pp_tiles ppf (spec : Pmdp_core.Schedule_spec.t) =
        List.iteri
          (fun i (g : Pmdp_core.Schedule_spec.group) ->
            Format.fprintf ppf "  group %d [%s]: %s@." i
              (String.concat " "
                 (List.map
                    (fun s -> (Pmdp_dsl.Pipeline.stage pipeline s).Pmdp_dsl.Stage.name)
                    g.Pmdp_core.Schedule_spec.stages))
              (String.concat "x"
                 (Array.to_list
                    (Array.map string_of_int g.Pmdp_core.Schedule_spec.tile_sizes))))
          spec.Pmdp_core.Schedule_spec.groups
      in
      let unit = if model_only then "cost" else "s" in
      Format.printf "%s via %s, %d evaluations (%d accepted, %d rejected), budget %d@."
        app.Registry.name (Scheduler.to_string scheduler) result.Search.stats.Search.evaluated
        result.Search.stats.Search.accepted result.Search.stats.Search.rejected budget;
      (match init_score with
      | Some s -> Format.printf "initial: %.6g %s@.%a" s unit pp_tiles sched
      | None -> fail "the initial schedule does not evaluate");
      Format.printf "tuned:   %.6g %s@.%a" result.Search.score unit pp_tiles tuned;
      (* The tuned schedule must still be exactly the pipeline: run it
         through the interpreter and demand bitwise agreement with the
         reference executor. *)
      (match plan_of_spec tuned with
      | None -> fail "tuned schedule failed re-validation"
      | Some plan -> (
          match Pmdp_exec.Resilient.run_plan ~machine plan ~inputs with
          | Error e -> fail "tuned schedule failed to execute: %s" (Pmdp_util.Pmdp_error.to_string e)
          | Ok { Pmdp_exec.Resilient.results; _ } ->
              let reference = Pmdp_exec.Reference.run pipeline ~inputs in
              let worst =
                List.fold_left
                  (fun acc (n, b) ->
                    match List.assoc_opt n reference with
                    | Some r -> Float.max acc (Pmdp_exec.Buffer.max_abs_diff b r)
                    | None -> acc)
                  0.0 results
              in
              if worst <> 0.0 then fail "tuned schedule diverged from reference (max |diff| %g)" worst;
              Format.printf "validated: tuned plan matches the reference bitwise@."));
      match plan_out with
      | None -> ()
      | Some path -> (
          match Pmdp_plan.of_spec_result tuned with
          | Error e -> fail "plan lowering failed: %s" (Pmdp_util.Pmdp_error.to_string e)
          | Ok ir ->
              Pmdp_plan.write path ir;
              Format.printf "wrote %s (digest %s)@." path (Pmdp_plan.digest ir))
    end
  in
  let target_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"$(b,calibrate) to fit the cost model, or a pipeline name to autotune.")
  in
  let bench_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench" ] ~docv:"FILE"
          ~doc:
            "Schema-v3 bench file with per-group timings to calibrate from (default \
             BENCH_<machine>.json, as written by $(b,pmdp bench)).")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Calibration artifact to write (default CALIB_<machine>.json).")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Dry-run: validate an existing calibration artifact (schema version, content \
             digest, machine match, weight sanity) without fitting or running anything. \
             Checks --calib-file, -o, or the default CALIB_<machine>.json, in that order.")
  in
  let budget_t =
    Arg.(
      value & opt int 32
      & info [ "budget" ]
          ~doc:"Evaluation budget of the local search (the initial point counts).")
  in
  let seed_t =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Search seed; the walk is deterministic per seed.")
  in
  let reps_t =
    Arg.(
      value & opt int 3
      & info [ "reps" ] ~doc:"Executions per measured candidate (median is scored).")
  in
  let plan_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan-out" ] ~docv:"FILE"
          ~doc:"Write the tuned schedule's plan IR (digest-stamped golden-plan envelope) to \
                $(docv).")
  in
  let model_only_t =
    Arg.(
      value & flag
      & info [ "model-only" ]
          ~doc:
            "Score candidates by the (calibrated) cost model instead of executing them — \
             deterministic and fast; use with --calib-file for predictions in seconds.")
  in
  Cmd.v (Cmd.info "tune" ~doc)
    Term.(const run $ target_t $ machine_t $ scale_t $ scheduler_t $ bench_t $ out_t $ check_t
          $ calib_file_t $ budget_t $ seed_t $ reps_t $ plan_out_t $ model_only_t)

let () =
  (* Executors validate schedules on entry; with the oracle installed
     they also refuse illegal or racy ones.  The baseline schedulers
     register their Scheduler.t implementations the same way. *)
  Pmdp_verify.Verify.install ();
  Pmdp_baselines.Schedulers.install ();
  let doc = "PolyMageDP: DP-based fusion and tile-size model (PPoPP'18 reproduction)" in
  let info = Cmd.info "pmdp" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; schedule_cmd; run_cmd; bench_cmd; trace_cmd; emit_c_cmd; cachesim_cmd;
            dot_cmd; storage_cmd; check_cmd; serve_cmd; load_cmd; tune_cmd ]))

(* pmdp: command-line driver for the PolyMageDP reproduction.

   Subcommands:
     list                         — available pipelines
     schedule <app>               — print the grouping/tiles a scheduler picks
     run <app>                    — execute a schedule and validate vs reference
     emit-c <app>                 — generate C++/OpenMP for a schedule
     cachesim <app>               — simulated L1/L2 hit/miss fractions
     check [app]                  — static legality/bounds/race/lint verification
*)

open Cmdliner

let machine_conv =
  let parse s =
    match Pmdp_machine.Machine.by_name s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown machine %S (xeon|opteron)" s))
  in
  Arg.conv (parse, fun ppf m -> Format.fprintf ppf "%s" m.Pmdp_machine.Machine.name)

let machine_t =
  Arg.(value & opt machine_conv Pmdp_machine.Machine.xeon & info [ "machine"; "m" ] ~doc:"Machine model (xeon or opteron).")

let scale_t =
  Arg.(value & opt int 8 & info [ "scale" ] ~doc:"Divide the paper's image extents by this factor.")

let app_t =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc:"Pipeline name (see `pmdp list`).")

let scheduler_t =
  Arg.(value & opt string "dp" & info [ "scheduler"; "s" ]
         ~doc:"Scheduler: dp, dp-inc, greedy, autotune, halide, manual.")

let build_app name scale =
  let app = try Pmdp_apps.Registry.find name with Not_found ->
    Printf.eprintf "unknown app %S\n" name; exit 2
  in
  (app, app.Pmdp_apps.Registry.build ~scale)

let make_schedule scheduler machine pipeline inputs =
  let config = Pmdp_core.Cost_model.default_config machine in
  match scheduler with
  | "dp" -> fst (Pmdp_core.Schedule_spec.dp config pipeline)
  | "dp-inc" ->
      let inc = Pmdp_core.Inc_grouping.run ~initial_limit:32 ~config pipeline in
      Pmdp_core.Schedule_spec.of_grouping config pipeline inc.Pmdp_core.Inc_grouping.groups
  | "greedy" ->
      Pmdp_baselines.Polymage_greedy.schedule
        { Pmdp_baselines.Polymage_greedy.tile = 64; overlap_threshold = 0.4 }
        pipeline
  | "autotune" ->
      let evaluate sched =
        let plan = Pmdp_exec.Tiled_exec.plan sched in
        let t0 = Unix.gettimeofday () in
        ignore (Pmdp_exec.Tiled_exec.run plan ~inputs);
        Unix.gettimeofday () -. t0
      in
      (Pmdp_baselines.Autotune.run ~evaluate pipeline).Pmdp_baselines.Autotune.best
  | "halide" ->
      Pmdp_baselines.Halide_auto.schedule (Pmdp_baselines.Halide_auto.params_for machine) pipeline
  | "manual" -> Pmdp_baselines.Manual.schedule pipeline
  | other ->
      Printf.eprintf "unknown scheduler %S\n" other;
      exit 2

let list_cmd =
  let doc = "List available pipelines." in
  let run () =
    List.iter
      (fun (a : Pmdp_apps.Registry.app) ->
        let p = a.Pmdp_apps.Registry.build ~scale:32 in
        Printf.printf "%-15s %-3s %2d stages (paper: %d)\n" a.Pmdp_apps.Registry.name
          a.Pmdp_apps.Registry.short (Pmdp_dsl.Pipeline.n_stages p) a.Pmdp_apps.Registry.paper_stages)
      Pmdp_apps.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let schedule_cmd =
  let doc = "Print the grouping and tile sizes a scheduler picks." in
  let run name scale machine scheduler =
    let app, pipeline = build_app name scale in
    let inputs = app.Pmdp_apps.Registry.inputs ~seed:1 pipeline in
    let sched = make_schedule scheduler machine pipeline inputs in
    Format.printf "%a@." Pmdp_core.Schedule_spec.pp sched
  in
  Cmd.v (Cmd.info "schedule" ~doc)
    Term.(const run $ app_t $ scale_t $ machine_t $ scheduler_t)

let run_cmd =
  let doc = "Execute a schedule and validate against the reference executor." in
  let run name scale machine scheduler workers =
    let app, pipeline = build_app name scale in
    let inputs = app.Pmdp_apps.Registry.inputs ~seed:1 pipeline in
    let sched = make_schedule scheduler machine pipeline inputs in
    let plan = Pmdp_exec.Tiled_exec.plan sched in
    let pool = if workers > 1 then Some (Pmdp_runtime.Pool.create workers) else None in
    let t0 = Unix.gettimeofday () in
    let results = Pmdp_exec.Tiled_exec.run ?pool plan ~inputs in
    let elapsed = Unix.gettimeofday () -. t0 in
    let reference = Pmdp_exec.Reference.run pipeline ~inputs in
    let worst =
      List.fold_left
        (fun acc (n, b) -> Float.max acc (Pmdp_exec.Buffer.max_abs_diff b (List.assoc n reference)))
        0.0 results
    in
    Format.printf "%s via %s: %.1f ms (%d groups, %d tiles, %d workers), max |diff| = %g@."
      name scheduler (elapsed *. 1000.0)
      (Pmdp_core.Schedule_spec.n_groups sched)
      (Pmdp_exec.Tiled_exec.total_tiles plan) workers worst;
    if worst <> 0.0 then exit 1
  in
  let workers_t = Arg.(value & opt int 1 & info [ "workers"; "j" ] ~doc:"Worker domains.") in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ app_t $ scale_t $ machine_t $ scheduler_t $ workers_t)

let emit_c_cmd =
  let doc = "Emit C++/OpenMP for a schedule (stdout, or -o FILE)." in
  let run name scale machine scheduler output =
    let app, pipeline = build_app name scale in
    let inputs = app.Pmdp_apps.Registry.inputs ~seed:1 pipeline in
    let sched = make_schedule scheduler machine pipeline inputs in
    let code = Pmdp_codegen.C_emit.emit sched in
    match output with
    | None -> print_string code
    | Some path ->
        Pmdp_codegen.C_emit.emit_to_file sched path;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length code)
  in
  let out_t = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.") in
  Cmd.v (Cmd.info "emit-c" ~doc)
    Term.(const run $ app_t $ scale_t $ machine_t $ scheduler_t $ out_t)

let cachesim_cmd =
  let doc = "Simulated cache hit/miss fractions for a schedule (Table 5 methodology)." in
  let run name scale machine scheduler max_tiles =
    let app, pipeline = build_app name scale in
    let inputs = app.Pmdp_apps.Registry.inputs ~seed:1 pipeline in
    let sched = make_schedule scheduler machine pipeline inputs in
    let h = Pmdp_cachesim.Hierarchy.create machine in
    Pmdp_cachesim.Trace_exec.run ?max_tiles:(Some max_tiles) sched ~hierarchy:h;
    let f = Pmdp_cachesim.Hierarchy.fractions h in
    Format.printf "%s via %s: L1 hit %.2f%%  L2 hit %.2f%%  L2 miss %.2f%%  (%d accesses)@."
      name scheduler
      (100.0 *. f.Pmdp_cachesim.Hierarchy.l1_hit)
      (100.0 *. f.Pmdp_cachesim.Hierarchy.l2_hit)
      (100.0 *. f.Pmdp_cachesim.Hierarchy.l2_miss)
      (Pmdp_cachesim.Hierarchy.total_accesses h)
  in
  let tiles_t = Arg.(value & opt int 256 & info [ "max-tiles" ] ~doc:"Tiles traced per group.") in
  Cmd.v (Cmd.info "cachesim" ~doc)
    Term.(const run $ app_t $ scale_t $ machine_t $ scheduler_t $ tiles_t)

let dot_cmd =
  let doc = "Export the pipeline DAG (optionally with a scheduler's grouping) as Graphviz dot." in
  let run name scale machine scheduler grouped output =
    let app, pipeline = build_app name scale in
    let dot =
      if grouped then begin
        let inputs = app.Pmdp_apps.Registry.inputs ~seed:1 pipeline in
        let sched = make_schedule scheduler machine pipeline inputs in
        Pmdp_dsl.Dot.grouping pipeline
          (List.map (fun (g : Pmdp_core.Schedule_spec.group) -> g.Pmdp_core.Schedule_spec.stages)
             sched.Pmdp_core.Schedule_spec.groups)
      end
      else Pmdp_dsl.Dot.pipeline pipeline
    in
    match output with
    | None -> print_string dot
    | Some path ->
        let oc = open_out path in
        output_string oc dot;
        close_out oc
  in
  let grouped_t = Arg.(value & flag & info [ "grouped"; "g" ] ~doc:"Cluster by the scheduler's groups.") in
  let out_t = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.") in
  Cmd.v (Cmd.info "dot" ~doc)
    Term.(const run $ app_t $ scale_t $ machine_t $ scheduler_t $ grouped_t $ out_t)

let check_cmd =
  let doc =
    "Statically verify schedules (legality, bounds, races, lint) without running them."
  in
  let run name scale machine schedulers =
    let apps =
      match name with
      | Some n -> (
          try [ Pmdp_apps.Registry.find n ]
          with Not_found ->
            Printf.eprintf "unknown app %S\n" n;
            exit 2)
      | None -> Pmdp_apps.Registry.benchmarks
    in
    let scheds =
      String.split_on_char ',' schedulers
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    if scheds = [] then begin
      Printf.eprintf "no schedulers given\n";
      exit 2
    end;
    let had_errors = ref false in
    List.iter
      (fun (app : Pmdp_apps.Registry.app) ->
        let pipeline = app.Pmdp_apps.Registry.build ~scale in
        let inputs = app.Pmdp_apps.Registry.inputs ~seed:1 pipeline in
        List.iter
          (fun scheduler ->
            (* Full DP is exponential in practice on the big pipelines;
               use the incremental variant there, as the tests do. *)
            let scheduler =
              if scheduler = "dp" && Pmdp_dsl.Pipeline.n_stages pipeline >= 30 then
                "dp-inc"
              else scheduler
            in
            let sched = make_schedule scheduler machine pipeline inputs in
            let ds = Pmdp_verify.Verify.check_schedule sched in
            if Pmdp_verify.Verify.errors ds <> [] then had_errors := true;
            Format.printf "%-15s %-8s %s@." app.Pmdp_apps.Registry.name scheduler
              (Pmdp_verify.Diagnostic.summary ds);
            List.iter (fun d -> Format.printf "  %a@." Pmdp_verify.Diagnostic.pp d) ds)
          scheds)
      apps;
    if !had_errors then exit 1
  in
  let app_opt_t =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"APP" ~doc:"Pipeline name (default: all six benchmarks).")
  in
  let scheds_t =
    Arg.(value & opt string "dp,greedy,halide"
         & info [ "scheduler"; "s" ] ~doc:"Comma-separated schedulers to check.")
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ app_opt_t $ scale_t $ machine_t $ scheds_t)

let storage_cmd =
  let doc = "Report buffer lifetimes and the memory saved by recycling (storage optimization)." in
  let run name scale machine scheduler =
    let app, pipeline = build_app name scale in
    let inputs = app.Pmdp_apps.Registry.inputs ~seed:1 pipeline in
    let sched = make_schedule scheduler machine pipeline inputs in
    let r = Pmdp_exec.Storage.report sched in
    List.iter
      (fun (l : Pmdp_exec.Storage.lifetime) ->
        Printf.printf "  %-14s %8d bytes  groups %d..%s\n" l.Pmdp_exec.Storage.stage
          l.Pmdp_exec.Storage.bytes l.Pmdp_exec.Storage.born
          (if l.Pmdp_exec.Storage.dies = max_int then "out"
           else string_of_int l.Pmdp_exec.Storage.dies))
      r.Pmdp_exec.Storage.lifetimes;
    Printf.printf "peak resident: naive %d bytes, with recycling %d bytes (%.1fx)\n"
      r.Pmdp_exec.Storage.peak_naive_bytes r.Pmdp_exec.Storage.peak_reuse_bytes
      (float_of_int r.Pmdp_exec.Storage.peak_naive_bytes
      /. float_of_int (max 1 r.Pmdp_exec.Storage.peak_reuse_bytes))
  in
  Cmd.v (Cmd.info "storage" ~doc)
    Term.(const run $ app_t $ scale_t $ machine_t $ scheduler_t)

let () =
  (* Executors validate schedules on entry; with the oracle installed
     they also refuse illegal or racy ones. *)
  Pmdp_verify.Verify.install ();
  let doc = "PolyMageDP: DP-based fusion and tile-size model (PPoPP'18 reproduction)" in
  let info = Cmd.info "pmdp" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; schedule_cmd; run_cmd; emit_c_cmd; cachesim_cmd; dot_cmd;
            storage_cmd; check_cmd ]))
